// Differential pinning of the persistent isolation frontier (PR 5):
// the spine-indexed descent must evolve the grammar byte-identically
// to the naive descent across every corpus shape, op mix, and seed —
// the update-layer analogue of TestCompressionParity.
package sltgrammar_test

import (
	"bytes"
	"testing"

	sltgrammar "repro"
	"repro/internal/datasets"
	"repro/internal/grammar"
	"repro/internal/update"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// TestFrontierDifferentialStreams replays inverse-seeded workloads over
// all six corpora through an indexed and a naive update.Cache in
// lockstep and byte-compares the encoded grammars at the end (and so
// every Query/Snapshot either engine could serve).
func TestFrontierDifferentialStreams(t *testing.T) {
	for _, short := range []string{"EW", "XM", "ET", "TB", "MD", "NC"} {
		for _, seed := range []int64{11, 12} {
			c, ok := datasets.ByShort(short)
			if !ok {
				t.Fatalf("unknown corpus %q", short)
			}
			u := c.Generate(0.05, 1)
			seq, err := workload.Updates(u, 250, 90, seed)
			if err != nil {
				t.Fatal(err)
			}
			g0, _ := sltgrammar.Compress(&sltgrammar.Document{Syms: seq.Seed.Syms, Root: seq.Seed.Root})
			gi, gn := g0.Clone(), g0.Clone()
			var ci, cn update.Cache
			cn.Naive = true
			for i := range seq.Ops {
				if _, err := update.ApplyCached(gi, seq.Ops[i], &ci); err != nil {
					t.Fatalf("%s/%d indexed op %d: %v", short, seed, i, err)
				}
				if _, err := update.ApplyCached(gn, seq.Ops[i], &cn); err != nil {
					t.Fatalf("%s/%d naive op %d: %v", short, seed, i, err)
				}
			}
			gi.GarbageCollect()
			gn.GarbageCollect()
			var bi, bn bytes.Buffer
			if err := grammar.Encode(&bi, gi); err != nil {
				t.Fatal(err)
			}
			if err := grammar.Encode(&bn, gn); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bi.Bytes(), bn.Bytes()) {
				t.Fatalf("%s seed %d: indexed and naive grammars diverge", short, seed)
			}
			if fs := ci.FrontierStats(); fs.Jumps == 0 {
				t.Fatalf("%s seed %d: index never engaged: %+v", short, seed, fs)
			}
		}
	}
}

// TestFrontierStreamMatchesTreeGroundTruth replays an EW-style stream
// through the indexed engine and the plain-tree reference semantics and
// compares the final documents — independent of the naive engine, so a
// bug shared by both descent modes cannot hide.
func TestFrontierStreamMatchesTreeGroundTruth(t *testing.T) {
	c, _ := datasets.ByShort("EW")
	u := c.Generate(0.05, 1)
	seq, err := workload.Updates(u, 300, 90, 77)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := sltgrammar.Compress(&sltgrammar.Document{Syms: seq.Seed.Syms, Root: seq.Seed.Root})
	var cache update.Cache
	ref := seq.Seed.Root.Copy()
	for i := range seq.Ops {
		if _, err := update.ApplyCached(g, seq.Ops[i], &cache); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		ref, err = update.ApplyTree(seq.Seed.Syms, ref, seq.Ops[i])
		if err != nil {
			t.Fatalf("ref op %d: %v", i, err)
		}
	}
	g.GarbageCollect()
	got, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, ref) {
		t.Fatal("indexed stream diverged from the plain-tree ground truth")
	}
}
