// Command benchdrift compares two committed BENCH_<n>.json records and
// fails when a benchmark regressed past tolerance — the perf trajectory
// gate that CI runs on every PR. Both records are produced by
// `benchtables -json` on the same machine, so a ratio drift between the
// committed files is a real code regression, not machine noise.
//
// Usage:
//
//	benchdrift -old BENCH_4.json -new BENCH_5.json \
//	    -match StoreUpdateStream/EW,StoreUpdateStream/XM,StoreUpdateStream/TB -tol 0.10
//
// -match takes one or more comma-separated name prefixes (tracks).
// Every benchmark in the new record matching a track and present in the
// old record is compared by ns/op; a run above (1+tol)× its old value
// is a failure. A track matching nothing in the NEW record is a failure
// (a renamed benchmark must not silently disable the gate), but a track
// whose benchmarks are missing from the OLD record is skipped with a
// notice — older records predate newly added tracks, and the gate must
// degrade gracefully across that boundary instead of crashing the CI
// job.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type record struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(rec.Benchmarks))
	for _, b := range rec.Benchmarks {
		out[b.Name] = b.NsPerOp
	}
	return out, nil
}

func main() {
	var (
		oldPath = flag.String("old", "", "baseline BENCH_<n>.json")
		newPath = flag.String("new", "", "candidate BENCH_<n>.json")
		match   = flag.String("match", "", "comma-separated benchmark name prefixes to compare (empty = all shared names)")
		tol     = flag.Float64("tol", 0.10, "allowed fractional ns/op regression")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	oldNs, err := load(*oldPath)
	if err != nil {
		fail(err)
	}
	newNs, err := load(*newPath)
	if err != nil {
		fail(err)
	}

	tracks := strings.Split(*match, ",")
	totalCompared, totalRegressed := 0, 0
	for _, track := range tracks {
		track = strings.TrimSpace(track)
		matched, compared, regressed := 0, 0, 0
		for name, ns := range newNs {
			if !strings.HasPrefix(name, track) {
				continue
			}
			matched++
			base, ok := oldNs[name]
			if !ok || base <= 0 {
				fmt.Printf("%-45s %27s  skipped (not in %s)\n", name, "-", *oldPath)
				continue
			}
			compared++
			ratio := ns / base
			status := "ok"
			if ratio > 1+*tol {
				status = fmt.Sprintf("REGRESSED beyond %.0f%%", *tol*100)
				regressed++
			}
			fmt.Printf("%-45s %12.0f -> %12.0f ns/op  (%+.1f%%)  %s\n",
				name, base, ns, (ratio-1)*100, status)
		}
		if matched == 0 {
			// Nothing in the NEW record matches the track: the gate would
			// silently stop gating. That is an error, unlike a track the
			// OLD record simply predates.
			fail(fmt.Errorf("no benchmark in %s matches prefix %q", *newPath, track))
		}
		if compared == 0 {
			fmt.Printf("benchdrift: notice: track %q not present in %s — skipped (new track?)\n",
				track, *oldPath)
		}
		totalCompared += compared
		totalRegressed += regressed
	}
	if totalRegressed > 0 {
		fail(fmt.Errorf("%d of %d benchmarks regressed more than %.0f%%",
			totalRegressed, totalCompared, *tol*100))
	}
	if totalCompared == 0 {
		// Every track was skipped: nothing was actually gated. Reporting
		// success here would let a record mismatch (wrong -old file, all
		// tracks newer than the baseline) silently disable the gate, so
		// this exits with its own code — distinct from a regression (1)
		// and from usage errors (2) — for CI to treat as a configuration
		// failure.
		fmt.Fprintf(os.Stderr, "benchdrift: no benchmark was compared — every track is missing from %s (baseline too old or wrong file?)\n", *oldPath)
		os.Exit(3)
	}
	fmt.Printf("benchdrift: %d benchmarks within %.0f%% of baseline\n", totalCompared, *tol*100)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdrift:", err)
	os.Exit(1)
}
