// Command benchdrift compares two committed BENCH_<n>.json records and
// fails when a benchmark regressed past tolerance — the perf trajectory
// gate that CI runs on every PR. Both records are produced by
// `benchtables -json` on the same machine, so a ratio drift between the
// committed files is a real code regression, not machine noise.
//
// Usage:
//
//	benchdrift -old BENCH_3.json -new BENCH_4.json -match StoreUpdateStream/ -tol 0.10
//
// Every benchmark in the new record whose name starts with -match and
// that also exists in the old record is compared by ns/op; a run above
// (1+tol)× its old value is a failure. Matching nothing is also a
// failure — a renamed benchmark must not silently disable the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type record struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(rec.Benchmarks))
	for _, b := range rec.Benchmarks {
		out[b.Name] = b.NsPerOp
	}
	return out, nil
}

func main() {
	var (
		oldPath = flag.String("old", "", "baseline BENCH_<n>.json")
		newPath = flag.String("new", "", "candidate BENCH_<n>.json")
		match   = flag.String("match", "", "benchmark name prefix to compare (empty = all shared names)")
		tol     = flag.Float64("tol", 0.10, "allowed fractional ns/op regression")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	oldNs, err := load(*oldPath)
	if err != nil {
		fail(err)
	}
	newNs, err := load(*newPath)
	if err != nil {
		fail(err)
	}

	compared, regressed := 0, 0
	for name, ns := range newNs {
		if !strings.HasPrefix(name, *match) {
			continue
		}
		base, ok := oldNs[name]
		if !ok || base <= 0 {
			continue
		}
		compared++
		ratio := ns / base
		status := "ok"
		if ratio > 1+*tol {
			status = fmt.Sprintf("REGRESSED beyond %.0f%%", *tol*100)
			regressed++
		}
		fmt.Printf("%-45s %12.0f -> %12.0f ns/op  (%+.1f%%)  %s\n",
			name, base, ns, (ratio-1)*100, status)
	}
	if compared == 0 {
		fail(fmt.Errorf("no benchmark in %s matches prefix %q and exists in %s",
			*newPath, *match, *oldPath))
	}
	if regressed > 0 {
		fail(fmt.Errorf("%d of %d benchmarks regressed more than %.0f%%",
			regressed, compared, *tol*100))
	}
	fmt.Printf("benchdrift: %d benchmarks within %.0f%% of baseline\n", compared, *tol*100)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdrift:", err)
	os.Exit(1)
}
