// Command grepair compresses structure-only XML into SLCF tree grammars,
// applies updates to the compressed form, and reports statistics.
//
// Usage:
//
//	grepair stats    < doc.xml        # edges, depth, grammar sizes
//	grepair compress < doc.xml        # print the grammar
//	grepair roundtrip < doc.xml       # compress, decompress, emit XML
//	grepair update -op rename -pos 7 -label chapter < doc.xml
//	grepair update -op delete -pos 9 < doc.xml
//	grepair update -op insert -pos 3 -frag '<note><p/></note>' < doc.xml
//
// Updates address nodes by preorder index in the binary encoding; the
// document is compressed first, the update runs on the grammar via path
// isolation, and the result is decompressed back to XML on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	sltgrammar "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	switch cmd {
	case "stats":
		runStats()
	case "compress":
		runCompress()
	case "roundtrip":
		runRoundtrip()
	case "update":
		runUpdate(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: grepair {stats|compress|roundtrip|update} [flags] < doc.xml")
	os.Exit(2)
}

func parse() *sltgrammar.Unranked {
	u, err := sltgrammar.ParseXML(os.Stdin)
	if err != nil {
		fail(err)
	}
	return u
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "grepair:", err)
	os.Exit(1)
}

func runStats() {
	u := parse()
	doc := sltgrammar.Encode(u)
	gTR, stTR := sltgrammar.Compress(doc)
	gGR, stGR := sltgrammar.CompressTreeGR(doc)
	fmt.Printf("document:       %d elements, %d edges, depth %d\n", u.Nodes(), u.Edges(), u.Depth())
	fmt.Printf("TreeRePair:     %d edges (%.3f%%), %d rounds\n",
		gTR.Size(), 100*float64(gTR.Size())/float64(u.Edges()), stTR.Rounds)
	fmt.Printf("GrammarRePair:  %d edges (%.3f%%), %d rounds, max intermediate %d\n",
		gGR.Size(), 100*float64(gGR.Size())/float64(u.Edges()), stGR.Rounds, stGR.MaxIntermediate)
}

func runCompress() {
	u := parse()
	g, _ := sltgrammar.Compress(sltgrammar.Encode(u))
	fmt.Print(g.String())
}

func runRoundtrip() {
	u := parse()
	g, _ := sltgrammar.Compress(sltgrammar.Encode(u))
	emit(g)
}

func runUpdate(args []string) {
	fs := flag.NewFlagSet("update", flag.ExitOnError)
	op := fs.String("op", "", "rename | insert | delete")
	pos := fs.Int64("pos", -1, "preorder position in the binary encoding")
	label := fs.String("label", "", "new label (rename)")
	frag := fs.String("frag", "", "XML fragment (insert)")
	recompress := fs.Bool("recompress", true, "run GrammarRePair after the update")
	if err := fs.Parse(args); err != nil {
		fail(err)
	}
	u := parse()
	g, _ := sltgrammar.Compress(sltgrammar.Encode(u))

	var o sltgrammar.Op
	switch *op {
	case "rename":
		o = sltgrammar.RenameOp(*pos, *label)
	case "delete":
		o = sltgrammar.DeleteOp(*pos)
	case "insert":
		f, err := sltgrammar.ParseXML(strings.NewReader(*frag))
		if err != nil {
			fail(fmt.Errorf("bad -frag: %w", err))
		}
		o = sltgrammar.InsertOp(*pos, f)
	default:
		fail(fmt.Errorf("unknown -op %q", *op))
	}
	if err := sltgrammar.Apply(g, o); err != nil {
		fail(err)
	}
	if *recompress {
		g, _ = sltgrammar.Recompress(g)
	}
	emit(g)
}

func emit(g *sltgrammar.Grammar) {
	doc, err := sltgrammar.Decompress(g, 0)
	if err != nil {
		fail(err)
	}
	u, err := sltgrammar.Decode(doc)
	if err != nil {
		fail(err)
	}
	if err := sltgrammar.WriteXML(os.Stdout, u); err != nil {
		fail(err)
	}
	fmt.Println()
}
