// Command benchtables regenerates every table and figure of the paper's
// evaluation section on the synthetic corpora (see DESIGN.md §6 for the
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	benchtables -all                 # everything, paper order
//	benchtables -table3 -fig2        # individual artifacts
//	benchtables -fig4 -updates 2000  # dynamic experiment, shorter run
//	benchtables -scale 0.5           # half-size corpora
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment in paper order")
		table3   = flag.Bool("table3", false, "Table III: document statistics and compression ratios")
		static_  = flag.Bool("static", false, "§V-B: TreeRePair vs GrammarRePair comparison")
		fig2     = flag.Bool("fig2", false, "Fig. 2: blow-up during grammar recompression")
		fig3     = flag.Bool("fig3", false, "Fig. 3: effect of the optimization (Gn family)")
		fig4     = flag.Bool("fig4", false, "Fig. 4: updates on moderately compressing corpora")
		fig5     = flag.Bool("fig5", false, "Fig. 5: updates on exponentially compressing corpora")
		fig6     = flag.Bool("fig6", false, "Fig. 6: recompression runtimes + §V-C space")
		ablation = flag.Bool("ablation", false, "ablation: k_in sweep and optimization toggle")

		scale   = flag.Float64("scale", 1.0, "corpus scale multiplier (1.0 = laptop defaults)")
		seed    = flag.Int64("seed", 20160516, "RNG seed for corpora and workloads")
		updates = flag.Int("updates", 4000, "number of update operations for Figs. 4/5")
		batch   = flag.Int("batch", 100, "recompression interval for Figs. 4/5")
		renames = flag.Int("renames", 300, "number of renames for Fig. 6")
		gnMin   = flag.Int("gnmin", 4, "smallest Gn exponent for Fig. 3")
		gnMax   = flag.Int("gnmax", 12, "largest Gn exponent for Fig. 3")
	)
	flag.Parse()

	cfg := experiments.Default(os.Stdout)
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Updates = *updates
	cfg.Batch = *batch
	cfg.Renames = *renames
	cfg.GnMin = *gnMin
	cfg.GnMax = *gnMax

	if *all {
		if err := experiments.All(cfg); err != nil {
			fail(err)
		}
		return
	}
	ran := false
	sep := func() {
		if ran {
			fmt.Println()
		}
		ran = true
	}
	if *table3 {
		sep()
		experiments.Table3(cfg)
	}
	if *static_ {
		sep()
		experiments.Static(cfg)
	}
	if *fig2 {
		sep()
		experiments.Fig2(cfg)
	}
	if *fig3 {
		sep()
		experiments.Fig3(cfg)
	}
	if *fig4 {
		sep()
		if _, err := experiments.DynamicAll(cfg, true); err != nil {
			fail(err)
		}
	}
	if *fig5 {
		sep()
		if _, err := experiments.DynamicAll(cfg, false); err != nil {
			fail(err)
		}
	}
	if *fig6 {
		sep()
		if _, err := experiments.Fig6(cfg); err != nil {
			fail(err)
		}
	}
	if *ablation {
		sep()
		experiments.Ablation(cfg)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchtables:", err)
	os.Exit(1)
}
