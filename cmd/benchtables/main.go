// Command benchtables regenerates every table and figure of the paper's
// evaluation section on the synthetic corpora (see DESIGN.md §6 for the
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	benchtables -all                 # everything, paper order
//	benchtables -table3 -fig2        # individual artifacts
//	benchtables -fig4 -updates 2000  # dynamic experiment, shorter run
//	benchtables -scale 0.5           # half-size corpora
//	benchtables -json 1 -scale 0.08  # machine-readable perf record BENCH_1.json
//
// Profiling (see PERF.md for the workflow):
//
//	benchtables -json 0 -fig6 -cpuprofile cpu.out   # profile an experiment
//	benchtables -json 8 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof -top cpu.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/benchsuite"
	"repro/internal/experiments"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment in paper order")
		table3   = flag.Bool("table3", false, "Table III: document statistics and compression ratios")
		static_  = flag.Bool("static", false, "§V-B: TreeRePair vs GrammarRePair comparison")
		fig2     = flag.Bool("fig2", false, "Fig. 2: blow-up during grammar recompression")
		fig3     = flag.Bool("fig3", false, "Fig. 3: effect of the optimization (Gn family)")
		fig4     = flag.Bool("fig4", false, "Fig. 4: updates on moderately compressing corpora")
		fig5     = flag.Bool("fig5", false, "Fig. 5: updates on exponentially compressing corpora")
		fig6     = flag.Bool("fig6", false, "Fig. 6: recompression runtimes + §V-C space")
		ablation = flag.Bool("ablation", false, "ablation: k_in sweep and optimization toggle")

		scale   = flag.Float64("scale", 1.0, "corpus scale multiplier (1.0 = laptop defaults)")
		seed    = flag.Int64("seed", 20160516, "RNG seed for corpora and workloads")
		updates = flag.Int("updates", 4000, "number of update operations for Figs. 4/5")
		batch   = flag.Int("batch", 100, "recompression interval for Figs. 4/5")
		renames = flag.Int("renames", 300, "number of renames for Fig. 6")
		gnMin   = flag.Int("gnmin", 4, "smallest Gn exponent for Fig. 3")
		gnMax   = flag.Int("gnmax", 12, "largest Gn exponent for Fig. 3")

		jsonN = flag.Int("json", 0, "write BENCH_<n>.json with ns/op, B/op and allocs/op per benchmark (0 = off)")
		best  = flag.Int("best", 1, "with -json: run the suite N times and record each benchmark's fastest run (noise floor on loaded machines)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	flag.Parse()

	// Profiles cover the whole run — experiments or the -json suite —
	// and are written on normal completion (a failed run leaves a
	// truncated CPU profile behind, which pprof still reads up to the
	// failure point).
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settled heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
			}
		}()
	}

	cfg := experiments.Default(os.Stdout)
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Updates = *updates
	cfg.Batch = *batch
	cfg.Renames = *renames
	cfg.GnMin = *gnMin
	cfg.GnMax = *gnMax

	if *jsonN > 0 {
		if *best < 1 {
			*best = 1
		}
		if err := writeBenchJSON(*jsonN, *best, cfg); err != nil {
			fail(err)
		}
		return
	}

	if *all {
		if err := experiments.All(cfg); err != nil {
			fail(err)
		}
		return
	}
	ran := false
	sep := func() {
		if ran {
			fmt.Println()
		}
		ran = true
	}
	if *table3 {
		sep()
		experiments.Table3(cfg)
	}
	if *static_ {
		sep()
		experiments.Static(cfg)
	}
	if *fig2 {
		sep()
		experiments.Fig2(cfg)
	}
	if *fig3 {
		sep()
		experiments.Fig3(cfg)
	}
	if *fig4 {
		sep()
		if _, err := experiments.DynamicAll(cfg, true); err != nil {
			fail(err)
		}
	}
	if *fig5 {
		sep()
		if _, err := experiments.DynamicAll(cfg, false); err != nil {
			fail(err)
		}
	}
	if *fig6 {
		sep()
		if _, err := experiments.Fig6(cfg); err != nil {
			fail(err)
		}
	}
	if *ablation {
		sep()
		experiments.Ablation(cfg)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchtables:", err)
	os.Exit(1)
}

// benchEntry is one benchmark measurement in the BENCH_<n>.json record.
// P50Ns/P99Ns carry the client-observed batch latency quantiles of the
// serving tracks (reported via b.ReportMetric as p50-ns / p99-ns);
// they are absent for tracks that only measure ns/op.
type benchEntry struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	P50Ns       float64 `json:"p50_ns,omitempty"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
}

// benchRecord is the machine-readable perf trajectory record. Every perf
// PR regenerates BENCH_<pr>.json so regressions and wins diff cleanly.
// ExperimentSeed applies to the experiment-driver benchmarks (Table3,
// StaticCompression); the micro benchmarks use the benchsuite-pinned
// corpus/rename seeds so they match `go test -bench` exactly.
type benchRecord struct {
	Date           string       `json:"date"`
	GoVersion      string       `json:"go_version"`
	GOOS           string       `json:"goos"`
	GOARCH         string       `json:"goarch"`
	Scale          float64      `json:"scale"`
	MicroScale     float64      `json:"micro_scale"`
	BestOf         int          `json:"best_of,omitempty"`
	ExperimentSeed int64        `json:"experiment_seed"`
	CorpusSeed     int64        `json:"corpus_seed"`
	RenameSeed     int64        `json:"rename_seed"`
	Benchmarks     []benchEntry `json:"benchmarks"`
}

// writeBenchJSON runs the benchmark suite at the configured scale via
// testing.Benchmark and writes BENCH_<n>.json in the current directory.
// With best > 1 the whole suite runs that many times and each
// benchmark's fastest (lowest ns/op) run is recorded: on a shared or
// single-core machine a single sample carries scheduler noise well past
// the drift gate's tolerance, and the minimum is the standard estimator
// for the code's actual cost under that noise. Comparing records only
// makes sense when both sides used the same -best.
func writeBenchJSON(n, best int, cfg experiments.Config) error {
	quiet := cfg
	quiet.Out = nil
	rec := benchRecord{
		Date:           time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		Scale:          quiet.Scale,
		MicroScale:     benchsuite.MicroScale,
		ExperimentSeed: quiet.Seed,
		CorpusSeed:     benchsuite.CorpusSeed,
		RenameSeed:     benchsuite.RenameSeed,
	}
	if best > 1 {
		rec.BestOf = best
	}
	pass := 0
	add := func(name string, fn func(b *testing.B)) {
		fmt.Fprintf(os.Stderr, "benchtables: running %s...\n", name)
		r := testing.Benchmark(fn)
		e := benchEntry{
			Name:        name,
			Runs:        r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			P50Ns:       r.Extra["p50-ns"],
			P99Ns:       r.Extra["p99-ns"],
		}
		if pass > 0 {
			for i := range rec.Benchmarks {
				if rec.Benchmarks[i].Name == name {
					if e.NsPerOp < rec.Benchmarks[i].NsPerOp {
						rec.Benchmarks[i] = e
					}
					return
				}
			}
		}
		rec.Benchmarks = append(rec.Benchmarks, e)
	}

	for ; pass < best; pass++ {
		if best > 1 {
			fmt.Fprintf(os.Stderr, "benchtables: suite pass %d/%d\n", pass+1, best)
		}
		suite(quiet, add)
	}

	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := fmt.Sprintf("BENCH_%d.json", n)
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchtables: wrote %s (%d benchmarks)\n", path, len(rec.Benchmarks))
	return nil
}

// suite enumerates every benchmark of the BENCH record in order through
// add — one call per (name, function) pair, repeated per -best pass.
func suite(quiet experiments.Config, add func(string, func(b *testing.B))) {
	add("Table3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.Table3(quiet)
		}
	})
	add("StaticCompression", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.Static(quiet)
		}
	})
	for _, short := range benchsuite.MicroShorts {
		add("CompressTreeRePair/"+short, benchsuite.CompressBench(short))
	}
	for _, short := range benchsuite.MicroShorts {
		add("RecompressGrammarRePair/"+short, benchsuite.RecompressBench(short))
	}
	for _, short := range benchsuite.MicroShorts {
		add("StoreUpdateStream/"+short, benchsuite.StoreUpdateStreamBench(short))
	}
	for _, short := range benchsuite.MicroShorts {
		add("PerOpUpdateStream/"+short, benchsuite.PerOpUpdateStreamBench(short))
	}
	for _, short := range benchsuite.MicroShorts {
		for _, m := range benchsuite.DurableFsyncModes {
			add(fmt.Sprintf("StoreUpdateStreamDurable/%s/fsync=%s", short, m.Name),
				benchsuite.StoreUpdateStreamDurableBench(short, m.Fsync))
		}
	}
	for _, shards := range benchsuite.ShardedShardCounts {
		add(fmt.Sprintf("UpdateStreamSharded/XM/docs=%d/shards=%d", benchsuite.ShardedDocs, shards),
			benchsuite.ShardedUpdateStreamBench("XM", shards, benchsuite.ShardedDocs))
	}
	for _, short := range benchsuite.MicroShorts {
		add("StoreReadStream/"+short, benchsuite.StoreReadStreamBench(short))
	}
	for _, short := range benchsuite.MicroShorts {
		add("StorePointQuery/"+short, benchsuite.StorePointQueryBench(short, true))
	}
	for _, short := range benchsuite.MicroShorts {
		add("StorePointQueryNaive/"+short, benchsuite.StorePointQueryBench(short, false))
	}
	add(fmt.Sprintf("ShardedTiered/XM/docs=%d", benchsuite.TieredDocs),
		benchsuite.ShardedTieredBench("XM", benchsuite.TieredDocs))
	for _, short := range benchsuite.MicroShorts {
		add(fmt.Sprintf("ServeStream/%s/conns=%d", short, benchsuite.ServeConns),
			benchsuite.ServeStreamBench(short))
	}
}
