// Command loadgen drives a serving front-end (sltgrammar.Serve) with a
// fleet workload schedule over N client connections and reports what a
// serving deployment is sized by: aggregate update throughput and the
// client-observed p50/p99 batch latency.
//
// With -addr it targets an already-running server; without it, it
// starts an in-process server over a fresh fleet on a loopback
// listener (durable under -wal), so the whole measurement runs from
// one command:
//
//	loadgen -corpus XM -docs 4 -conns 2 -ops 200 -batch 10
//	loadgen -corpus EW -docs 8 -conns 4 -wal /tmp/fleet
//	loadgen -addr 127.0.0.1:7070 -corpus XM -docs 4 -conns 4
//	loadgen -corpus XM -docs 4 -conns 2 -chaos
//
// With -chaos the replay goes through a fault-injecting proxy
// (internal/netchaos: latency, stalls, torn writes, mid-frame resets
// on a seeded schedule) using exactly-once retrying clients, and the
// summary reports the retry/reconnect/timeout counters plus the faults
// injected — a one-command smoke of the fault-tolerant serving path.
//
// Documents are the examples' pinned corpus sessions (deterministic
// per -seed); the schedule interleaves their update streams with
// Zipf-skewed popularity (workload.ZipfFleet), preserving per-document
// op order — connection assignment is by document, so the differential
// guarantees of the store hold over the wire too.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	sltgrammar "repro"
	"repro/internal/examples"
	"repro/internal/loadgen"
	"repro/internal/netchaos"
	"repro/internal/update"
	"repro/internal/workload"
)

func main() {
	var (
		addr   = flag.String("addr", "", "server address (empty = start an in-process server on a loopback listener)")
		corpus = flag.String("corpus", "XM", "corpus short name (EW, XM, TB, ...)")
		docs   = flag.Int("docs", 4, "documents in the fleet")
		conns  = flag.Int("conns", 2, "client connections (batches for one document always share a connection)")
		ops    = flag.Int("ops", 200, "update operations per document")
		batch  = flag.Int("batch", 10, "ops per scheduled batch")
		skew   = flag.Float64("skew", 1.4, "Zipf skew of document popularity (> 1)")
		seed   = flag.Int64("seed", 1, "base RNG seed (documents and schedule derive from it)")
		shards = flag.Int("shards", 4, "shard count of the in-process fleet (ignored with -addr)")
		wal    = flag.String("wal", "", "serve the in-process fleet durably under this directory (ignored with -addr)")
		scale  = flag.Float64("scale", 0.08, "corpus scale of the generated documents")
		chaos  = flag.Bool("chaos", false, "replay through a fault-injecting proxy with exactly-once retrying clients")
	)
	flag.Parse()

	sessions, err := examples.CorpusSessions(*corpus, *scale, *docs, *ops, 90, *seed)
	if err != nil {
		fail(err)
	}

	target := *addr
	var ss *sltgrammar.ShardedStore
	if target == "" {
		cfg := sltgrammar.StoreConfig{Async: true}
		if *wal != "" {
			cfg.Durability = &sltgrammar.Durability{Dir: *wal, Fsync: sltgrammar.FsyncBatch}
			ss, err = sltgrammar.OpenShardedStore(*shards, cfg)
		} else {
			ss = sltgrammar.NewShardedStore(*shards, cfg)
		}
		if err != nil {
			fail(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		srv := sltgrammar.Serve(ln, ss)
		defer srv.Close()
		target = srv.Addr().String()
		fmt.Printf("loadgen: serving %d shards on %s\n", *shards, target)
	}

	// Everything below goes over the wire — including opening the
	// documents — so the run exercises exactly the deployed surface.
	admin, err := sltgrammar.DialServer(target)
	if err != nil {
		fail(err)
	}
	defer admin.Close()
	ids := make([]string, len(sessions))
	streams := make([][]update.Op, len(sessions))
	for d, s := range sessions {
		ids[d] = s.ID
		streams[d] = s.Ops
		if err := admin.Open(s.ID, s.Grammar); err != nil {
			fail(fmt.Errorf("open %s: %w", s.ID, err))
		}
	}
	sched := workload.ZipfFleet(streams, *batch, *skew, *seed)

	runCfg := loadgen.Config{Addr: target, Conns: *conns, IDs: ids, Schedule: sched}
	var proxy *netchaos.Proxy
	if *chaos {
		proxy, err = netchaos.NewProxy(target, netchaos.Config{
			Seed:         *seed,
			Latency:      200 * time.Microsecond,
			StallEvery:   9,
			Stall:        2 * time.Millisecond,
			CutBytes:     4096,
			CutBytesBack: 64,
			MaxCuts:      8 * *conns,
			TearWrites:   true,
		})
		if err != nil {
			fail(err)
		}
		defer proxy.Close()
		runCfg.Addr = proxy.Addr()
		runCfg.Retry = &sltgrammar.RetryConfig{Timeout: 10 * time.Second, Seed: *seed}
		fmt.Printf("loadgen: chaos proxy %s -> %s\n", proxy.Addr(), target)
	}

	rep, err := loadgen.Run(runCfg)
	if err != nil {
		fail(err)
	}
	if err := admin.Quiesce(); err != nil {
		fail(err)
	}

	fmt.Printf("loadgen: %d docs, %d conns, corpus %s, scale %g\n", *docs, *conns, *corpus, *scale)
	fmt.Printf("applied:  %d ops in %d batches over %v\n", rep.Ops, rep.Batches, rep.Elapsed.Round(1e5))
	fmt.Printf("throughput: %.0f ops/s\n", rep.Throughput())
	fmt.Printf("latency:  p50 %v, p99 %v per batch\n", rep.P50, rep.P99)
	if *chaos {
		cs := proxy.Stats()
		fmt.Printf("retry:    %d retries, %d reconnects, %d timeouts\n",
			rep.Retry.Retries, rep.Retry.Reconnects, rep.Retry.Timeouts)
		fmt.Printf("chaos:    %d resets, %d stalls, %d torn writes, %d delayed writes\n",
			cs.Cuts, cs.Stalls, cs.Tears, cs.Delays)
	}
	if ss != nil {
		agg := ss.Stats()
		if line := examples.DurabilityLine(agg); line != "" {
			fmt.Println(line)
		}
		if err := ss.Close(); err != nil {
			fail(fmt.Errorf("close fleet: %w", err))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
