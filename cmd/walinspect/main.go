// Command walinspect dumps and verifies the on-disk durability state
// of a document fleet (see internal/wal for the format). It is
// strictly read-only — safe against a live serving directory or a
// post-crash evidence copy; it never truncates, repairs, or deletes.
//
// Usage:
//
//	walinspect doc <doc-dir>     # per-file dump of one document
//	walinspect fleet <root>      # one summary line per document
//	walinspect verify <root>     # exit 1 if any document has damage
//
// "Damage" for verify means: a snapshot that fails validation, a torn
// or corrupt WAL tail, or a document with no loadable snapshot at all.
// Torn tails are expected after a crash (recovery truncates them); a
// verify failure on a cleanly closed fleet is a bug.
package main

import (
	"fmt"
	"os"

	"repro/internal/wal"
)

func main() {
	if len(os.Args) != 3 {
		usage()
	}
	var err error
	ok := true
	switch os.Args[1] {
	case "doc":
		err = dumpDoc(os.Args[2])
	case "fleet":
		err = dumpFleet(os.Args[2])
	case "verify":
		ok, err = verify(os.Args[2])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "walinspect:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: walinspect {doc <doc-dir> | fleet <root> | verify <root>}")
	os.Exit(2)
}

func dumpDoc(dir string) error {
	info, err := wal.InspectDoc(dir)
	if err != nil {
		return err
	}
	printDoc(info, true)
	return nil
}

func dumpFleet(root string) error {
	docs, err := wal.InspectFleet(root)
	if err != nil {
		return err
	}
	if len(docs) == 0 {
		fmt.Println("no documents")
		return nil
	}
	for _, d := range docs {
		printDoc(d, false)
	}
	return nil
}

func printDoc(d *wal.DocInfo, verbose bool) {
	id := d.ID
	if id == "" {
		id = "(unnamed)"
	}
	var segBytes, torn int64
	for _, s := range d.Segments {
		segBytes += s.Bytes
		torn += s.TornBytes
	}
	// Cold footprint: what rehydrating this document costs a memory-tiered
	// fleet — decode the newest valid snapshot, replay the WAL tail.
	coldBytes, coldPos := int64(-1), int64(-1)
	for _, s := range d.Snapshots {
		if s.Valid && s.Pos > coldPos {
			coldBytes, coldPos = s.Bytes, s.Pos
		}
	}
	fmt.Printf("%-20s durable=%d tail=%d ops  snapshots=%d  segments=%d (%d B", id,
		d.DurablePos, d.TailOps, len(d.Snapshots), len(d.Segments), segBytes)
	if torn > 0 {
		fmt.Printf(", %d B torn", torn)
	}
	fmt.Print(")")
	if coldBytes >= 0 {
		fmt.Printf("  cold=%d B + %d ops replay", coldBytes, d.TailOps)
	}
	fmt.Println()
	if !verbose {
		return
	}
	for _, s := range d.Snapshots {
		state := "ok"
		if !s.Valid {
			state = "CORRUPT: " + s.Err
		}
		fmt.Printf("  %s  pos=%d  %d B  %s\n", s.Name, s.Pos, s.Bytes, state)
	}
	for _, s := range d.Segments {
		fmt.Printf("  %s  ops [%d,%d)  %d records  %d B", s.Name, s.Start, s.End, s.Records, s.Bytes)
		if s.TornBytes > 0 {
			fmt.Printf("  TORN %d B", s.TornBytes)
		}
		if s.Err != "" {
			fmt.Printf("  (%s)", s.Err)
		}
		fmt.Println()
	}
}

func verify(root string) (bool, error) {
	docs, err := wal.InspectFleet(root)
	if err != nil {
		return false, err
	}
	ok := true
	for _, d := range docs {
		for _, s := range d.Snapshots {
			if !s.Valid {
				fmt.Printf("%s: snapshot %s: %s\n", d.Dir, s.Name, s.Err)
				ok = false
			}
		}
		for _, s := range d.Segments {
			if s.TornBytes > 0 || s.Err != "" {
				fmt.Printf("%s: segment %s: %d B torn %s\n", d.Dir, s.Name, s.TornBytes, s.Err)
				ok = false
			}
		}
		if d.DurablePos < 0 {
			fmt.Printf("%s: no loadable snapshot — recovery would refuse\n", d.Dir)
			ok = false
		}
	}
	if ok {
		fmt.Printf("ok: %d documents clean\n", len(docs))
	}
	return ok, nil
}
