// Package sltgrammar is the public API of this reproduction of
//
//	Böttcher, Hartel, Jacobs, Maneth:
//	"Incremental Updates on Compressed XML", ICDE 2016.
//
// It provides grammar-compressed XML document trees (straight-line
// linear context-free tree grammars) that support the paper's three
// atomic update operations — rename, insert-before, delete-subtree —
// directly on the compressed representation, and two compressors:
//
//   - TreeRePair (the paper's baseline [3]): RePair compression of a
//     tree into an SLCF grammar, and
//   - GrammarRePair (the paper's contribution): RePair compression
//     executed directly on a grammar, without decompressing, so a
//     grammar degraded by updates can be recompressed in time and space
//     proportional to the grammar — not the (potentially exponentially
//     larger) tree.
//
// # Quick start
//
//	u, _ := sltgrammar.ParseXML(file)             // structure-only XML
//	doc  := sltgrammar.Encode(u)                  // binary tree encoding
//	g, _ := sltgrammar.Compress(doc)              // TreeRePair
//	_ = sltgrammar.Rename(g, 7, "chapter")        // update in place
//	g2, st := sltgrammar.Recompress(g)            // GrammarRePair
//	fmt.Println(sltgrammar.Size(g2), st.Rounds)
//
// # Serving updates: Store
//
// For a long-lived document under a stream of updates, wrap the grammar
// in a Store instead of calling Apply/Recompress by hand. The Store
// caches size vectors across operations (path isolation then costs
// O(|RHS_S|) per op instead of O(|G|)), garbage-collects once per batch,
// recompresses automatically when the grammar has degraded past a
// configurable ratio of its last compressed size (self-tuning: the
// trigger backs off while recompression isn't paying), and serves
// readers from immutable published generations: Snapshot is a
// lock-free pointer grab (zero allocations, never invalidated by later
// writes), and cursors and aggregate queries run on the pinned
// generation without blocking the writer:
//
//	st := sltgrammar.NewStore(g)                  // takes ownership of g
//	_ = st.ApplyAll(ops)                          // batched updates
//	n, _ := st.CountLabel("item")                 // served under RLock
//	cur, _ := st.Cursor()                         // over a safe snapshot
//	fmt.Printf("%+v\n", st.Stats())               // ops, cache hits, |G|…
//
// Nodes are addressed by preorder index in the binary
// first-child/next-sibling encoding (Fig. 1 of the paper), in which each
// element has rank 2 and missing children are explicit ⊥ leaves.
package sltgrammar

import (
	"io"
	"net"

	"repro/internal/core"
	"repro/internal/grammar"
	"repro/internal/isolate"
	"repro/internal/navigate"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/treerepair"
	"repro/internal/udc"
	"repro/internal/update"
	"repro/internal/wal"
	"repro/internal/xmltree"
)

// Re-exported core types. They are aliases, so values flow freely between
// the public API and the internal packages.
type (
	// Unranked is a plain unranked XML element tree (labels + children).
	Unranked = xmltree.Unranked
	// Document is a binary-encoded XML structure tree plus its symbol
	// table.
	Document = xmltree.Document
	// Grammar is a straight-line linear context-free tree grammar.
	Grammar = grammar.Grammar
	// Op is one atomic update operation (rename / insert / delete).
	Op = update.Op
	// CompressStats reports a GrammarRePair run (rounds, intermediate
	// sizes, final size).
	CompressStats = core.Stats
	// TreeRePairStats reports a TreeRePair run.
	TreeRePairStats = treerepair.Stats
	// UDCStats reports an update-decompress-compress run.
	UDCStats = udc.Stats
	// Cursor is a DOM-style read-only position in the derived tree,
	// navigating the grammar without decompression.
	Cursor = navigate.Cursor
	// Store is the long-lived dynamic-document engine: cached size
	// vectors, batched garbage collection, self-tuning recompression,
	// and generational zero-copy reads — Snapshot returns the immutable
	// published generation (a pointer grab, never a deep copy), the
	// writer clones lazily only when a pinned generation would otherwise
	// be mutated. See repro/internal/store for the lifecycle.
	Store = store.Store
	// StoreConfig tunes a Store's recompression policy (with Async,
	// recompression moves off the write lock) and, via MemoryBudget on a
	// ShardedStore, the fleet's resident-memory tier.
	StoreConfig = store.Config
	// StoreStats is a snapshot of a Store's counters.
	StoreStats = store.Stats
	// ShardedStore serves many documents at once: IDs are hashed across
	// shards, each shard owning its documents' Stores plus one worker
	// applying that shard's update batches, so updates to documents in
	// different shards never contend. With StoreConfig.MemoryBudget set,
	// the fleet runs memory-tiered: when resident bytes exceed the
	// budget, cold documents (LRU by last write or read) evict to their
	// encoded grammar bytes — or, durably, to disk alone — and
	// transparently rehydrate on their next access.
	ShardedStore = store.Sharded
	// ShardedStats aggregates Store counters across all documents of a
	// ShardedStore, plus fleet residency: Resident/Evicted document
	// counts, ResidentBytes, and the Evictions/Hydrations traffic of the
	// memory tier.
	ShardedStats = store.ShardedStats
	// Durability makes a Store or ShardedStore durable: set it on a
	// StoreConfig and every acked update batch is appended to a
	// per-document write-ahead log (per the fsync policy) before the
	// write returns, with encoded-grammar snapshots rolling in the
	// background to bound recovery replay. See repro/internal/wal for
	// the on-disk format and crash-tolerance contract.
	Durability = store.Durability
	// FsyncPolicy selects when the write-ahead log reaches stable
	// storage: FsyncBatch (every acked batch survives any crash),
	// FsyncInterval (bounded loss window), or FsyncOff (the OS decides;
	// a clean Close still loses nothing).
	FsyncPolicy = wal.FsyncPolicy
	// Server is the network serving front-end over a ShardedStore: a
	// CRC-framed binary wire protocol (the write-ahead log's record
	// framing, carrying the update-op codec for writes and the grammar
	// codec for snapshot reads) over TCP, one goroutine per connection,
	// hostile-input hardened exactly like the WAL decoder. See
	// repro/internal/server for the frame and message formats.
	//
	// The server is fault-tolerant: per-connection read/write/idle
	// deadlines shed wedged peers, an in-flight cap backpressures
	// bursts (both tuned via ServeConfig), and Drain performs graceful
	// handoff — stop accepting, GoAway idle connections, finish and
	// flush in-flight batches, force-sync the WAL tails, close.
	Server = server.Server
	// ServeConfig tunes a Server's fault tolerance: ReadTimeout,
	// WriteTimeout, IdleTimeout, MaxInFlight. The zero value selects
	// defaults; negative values disable a limit.
	ServeConfig = server.Config
	// ServerClient is the synchronous wire client of a Server: Open,
	// Apply (acked update batches), PointQuery, CountLabel,
	// Snapshot/SnapshotBytes, Quiesce. One request in flight per
	// client; open one per worker for parallel load. The first
	// transport fault latches: later calls fail fast and the caller
	// reconnects (or uses a RetryClient, which does it automatically).
	ServerClient = server.Client
	// RetryClient is the fault-tolerant wire client: reconnect with
	// jittered exponential backoff, per-call deadlines, and
	// exactly-once Apply — every batch is stamped with a per-document
	// sequence number, so a batch retried after a lost ack is applied
	// once and acked twice, never applied twice. See DialRetry.
	RetryClient = server.RetryClient
	// RetryConfig tunes a RetryClient (address, per-call timeout,
	// attempt cap, backoff, jitter seed).
	RetryConfig = server.RetryConfig
	// RemoteError is an application error reported by the server over a
	// healthy connection — the one error class a retry layer must not
	// resend, because the server answered definitively.
	RemoteError = server.RemoteError
)

// Fsync policies for Durability.
const (
	FsyncBatch    = wal.FsyncBatch
	FsyncInterval = wal.FsyncInterval
	FsyncOff      = wal.FsyncOff
)

// Errors of the multi-document layer.
var (
	// ErrUnknownDoc reports an operation on a document ID that was never
	// opened (or was dropped).
	ErrUnknownDoc = store.ErrUnknownDoc
	// ErrStoreClosed reports a write against a closed ShardedStore.
	ErrStoreClosed = store.ErrClosed
)

// ErrSaturated is returned by Elements (and Store.Elements) when the
// derived tree's node count exceeds the int64 range — exponentially
// compressing grammars saturate rather than overflow.
var ErrSaturated = grammar.ErrSaturated

// NewStore wraps a grammar in a Store, taking ownership of it. Pass a
// StoreConfig to tune the recompression policy; the default triggers
// GrammarRePair when the grammar has grown 1.5× past its last compressed
// size.
func NewStore(g *Grammar, cfg ...StoreConfig) *Store { return store.New(g, cfg...) }

// NewShardedStore returns a multi-document store with the given shard
// count (shards <= 0 selects GOMAXPROCS); every document opened in it
// uses cfg. Open registers documents, ApplyAll routes update batches to
// the owning shard's worker, Get serves reads. cfg.MemoryBudget > 0
// bounds the fleet's resident bytes by evicting cold documents to
// their encoded form (they rehydrate on access). Call Close when done
// ingesting (and Quiesce first when asynchronous recompressions must
// settle):
//
//	ss := sltgrammar.NewShardedStore(8, sltgrammar.StoreConfig{Async: true})
//	defer ss.Close()
//	_, _ = ss.Open("doc-1", g1)
//	_ = ss.ApplyAll("doc-1", ops)       // serialized per shard
//	st, _ := ss.Get("doc-1")            // full read API of a Store
//	n, _ := st.CountLabel("item")
//	_ = n
func NewShardedStore(shards int, cfg ...StoreConfig) *ShardedStore {
	return store.NewSharded(shards, cfg...)
}

// OpenShardedStore reopens a durable multi-document fleet from disk:
// every document directory under cfg.Durability.Dir is recovered —
// newest valid snapshot plus write-ahead-log tail replay, truncating
// any torn tail a crash left behind — and registered under its
// original ID. The directory may be empty or absent (a fresh fleet).
// cfg.Durability must be set; documents opened afterwards with Open
// are created durable in the same directory.
func OpenShardedStore(shards int, cfg StoreConfig) (*ShardedStore, error) {
	return store.OpenSharded(shards, cfg)
}

// Serve starts serving ss over ln (typically a TCP listener) and
// returns immediately. The optional ServeConfig tunes connection
// deadlines and the in-flight cap (omitted = defaults). The returned
// Server owns the listener; for a rolling restart call Drain, which
// stops accepting, tells idle connections to go away, lets in-flight
// batches finish and flush their acks, and syncs the WAL tails so
// every acked write survives the subsequent kill. Close is the
// zero-grace variant. The ShardedStore itself stays open and is still
// the caller's to Close:
//
//	ln, _ := net.Listen("tcp", "127.0.0.1:0")
//	srv := sltgrammar.Serve(ln, ss)
//	defer srv.Close()
//	cl, _ := sltgrammar.DialServer(srv.Addr().String())
//	_ = cl.Apply("doc-1", ops)          // acked update batch
//	n, _ := cl.CountLabel("doc-1", "item")
//	_ = n
func Serve(ln net.Listener, ss *ShardedStore, cfg ...ServeConfig) *Server {
	return server.Serve(ln, ss, cfg...)
}

// DialServer connects a ServerClient to a Server's TCP address.
func DialServer(addr string) (*ServerClient, error) { return server.Dial(addr) }

// DialRetry returns a RetryClient for cfg.Addr. The connection is
// established lazily and re-established (with jittered exponential
// backoff) after any transport fault; Apply batches are stamped with
// per-document sequence numbers so a retry after a lost ack is deduped
// by the server rather than applied twice.
func DialRetry(cfg RetryConfig) (*RetryClient, error) { return server.DialRetry(cfg) }

// NewCursor returns a cursor at the root of the derived tree. Every move
// costs time proportional to the grammar's nesting depth, never to the
// (potentially exponentially larger) tree.
func NewCursor(g *Grammar) (*Cursor, error) { return navigate.NewCursor(g) }

// CountLabel counts occurrences of an element label in the derived tree
// without decompressing (usage-weighted one-pass query).
func CountLabel(g *Grammar, label string) (float64, error) {
	return navigate.CountLabel(g, label)
}

// LabelHistogram returns the occurrence count of every element label in
// the derived tree, computed in one pass over the grammar.
func LabelHistogram(g *Grammar) (map[string]float64, error) {
	return navigate.LabelHistogram(g)
}

// Update-operation constructors.

// RenameOp relabels the node at preorder position pos to label.
func RenameOp(pos int64, label string) Op {
	return Op{Kind: update.Rename, Pos: pos, Label: label}
}

// InsertOp inserts the fragment before the node at pos; inserting at a ⊥
// node appends after the last sibling (or into an empty child list).
func InsertOp(pos int64, frag *Unranked) Op {
	return Op{Kind: update.Insert, Pos: pos, Frag: frag}
}

// DeleteOp deletes the subtree rooted at pos.
func DeleteOp(pos int64) Op {
	return Op{Kind: update.Delete, Pos: pos}
}

// ParseXML reads structure-only XML (all non-element content is
// discarded, as in the paper's datasets).
func ParseXML(r io.Reader) (*Unranked, error) { return xmltree.ParseXML(r) }

// WriteXML serializes an unranked tree as structure-only XML.
func WriteXML(w io.Writer, u *Unranked) error { return xmltree.WriteXML(w, u) }

// NewElement builds an unranked element node.
func NewElement(label string, children ...*Unranked) *Unranked {
	return xmltree.NewUnranked(label, children...)
}

// Encode converts an unranked tree to its binary first-child/next-sibling
// encoding.
func Encode(u *Unranked) *Document { return u.Binary() }

// Decode converts a binary document back to the unranked element tree.
func Decode(d *Document) (*Unranked, error) { return d.ToUnranked() }

// Options configures the compressors.
type Options struct {
	// MaxRank is the paper's k_in: the maximum number of parameters a
	// digram-replacement rule may take. 0 means the default of 4.
	MaxRank int
	// NoOptimize disables the fragment-export optimization of
	// GrammarRePair (Algorithm 8); used by the Fig. 3 experiment.
	NoOptimize bool
}

// Compress runs TreeRePair on a document, producing an SLCF grammar that
// derives exactly the document's binary tree.
func Compress(doc *Document, opt ...Options) (*Grammar, *TreeRePairStats) {
	o := first(opt)
	return treerepair.Compress(doc, treerepair.Options{MaxRank: o.MaxRank})
}

// CompressTreeGR runs GrammarRePair on the document's tree (the paper's
// "GrammarRePair applied to trees" mode).
func CompressTreeGR(doc *Document, opt ...Options) (*Grammar, *CompressStats) {
	o := first(opt)
	return core.CompressDocument(doc, core.Options{MaxRank: o.MaxRank, NoOptimize: o.NoOptimize})
}

// Recompress runs GrammarRePair on a grammar — the paper's contribution:
// the result derives the same tree but is recompressed as if from
// scratch, without ever materializing the tree.
func Recompress(g *Grammar, opt ...Options) (*Grammar, *CompressStats) {
	o := first(opt)
	return core.Compress(g, core.Options{MaxRank: o.MaxRank, NoOptimize: o.NoOptimize})
}

// UDCRecompress is the paper's baseline: decompress the grammar to its
// tree (bounded by maxNodes if > 0) and compress the tree from scratch
// with TreeRePair.
func UDCRecompress(g *Grammar, maxNodes int, opt ...Options) (*Grammar, *UDCStats, error) {
	o := first(opt)
	return udc.Recompress(g, treerepair.Options{MaxRank: o.MaxRank}, maxNodes)
}

// Decompress expands a grammar back to a document. maxNodes > 0 bounds
// the expansion (grammars can compress exponentially).
func Decompress(g *Grammar, maxNodes int) (*Document, error) {
	return udc.Decompress(g, maxNodes)
}

// Apply performs one update operation on the compressed grammar via path
// isolation (only the start rule is modified).
func Apply(g *Grammar, op Op) error { return update.Apply(g, op) }

// ApplyAll performs a sequence of update operations.
func ApplyAll(g *Grammar, ops []Op) error { return update.ApplyAll(g, ops) }

// Rename relabels the node at preorder position pos.
func Rename(g *Grammar, pos int64, label string) error {
	return update.Apply(g, RenameOp(pos, label))
}

// InsertBefore inserts frag before the node at pos.
func InsertBefore(g *Grammar, pos int64, frag *Unranked) error {
	return update.Apply(g, InsertOp(pos, frag))
}

// DeleteSubtree deletes the subtree rooted at pos.
func DeleteSubtree(g *Grammar, pos int64) error {
	return update.Apply(g, DeleteOp(pos))
}

// EncodeGrammar persists a grammar in a compact binary format, so
// compressed documents can be stored and shipped at grammar size.
func EncodeGrammar(w io.Writer, g *Grammar) error { return grammar.Encode(w, g) }

// DecodeGrammar reads a grammar written by EncodeGrammar and validates it.
func DecodeGrammar(r io.Reader) (*Grammar, error) { return grammar.Decode(r) }

// Size returns |G|, the paper's grammar size measure (summed edge count
// of all right-hand sides).
func Size(g *Grammar) int { return g.Size() }

// TreeSize returns the node count of the tree the grammar derives,
// computed without expansion (it may overflow into saturation for
// exponentially compressing grammars).
func TreeSize(g *Grammar) (int64, error) { return g.ValNodeCount() }

// Elements returns the number of element nodes of the encoded document,
// or ErrSaturated when the derived tree exceeds the int64 range (an
// exact count would be bogus).
func Elements(g *Grammar) (int64, error) { return isolate.NonBottomCount(g) }

// Equal reports whether two grammars derive the same tree. It expands
// both (bounded by maxNodes if > 0), so use it on moderate documents or
// with a budget.
func Equal(a, b *Grammar, maxNodes int) (bool, error) {
	ta, err := a.Expand(maxNodes)
	if err != nil {
		return false, err
	}
	tb, err := b.Expand(maxNodes)
	if err != nil {
		return false, err
	}
	return xmltree.Equal(ta, tb), nil
}

func first(opt []Options) Options {
	if len(opt) > 0 {
		return opt[0]
	}
	return Options{}
}
