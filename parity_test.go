// Parity harness: pins the exact grammars (and run statistics) that
// TreeRePair and GrammarRePair produce on the test corpora. Performance
// refactors of the compressor substrate must not change a single byte of
// output; this test fails loudly if they do.
//
// Regenerate the golden file after an *intentional* algorithmic change:
//
//	go test -run TestCompressionParity -update-parity
package sltgrammar_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"testing"

	sltgrammar "repro"
	"repro/internal/datasets"
	"repro/internal/workload"
)

var updateParity = flag.Bool("update-parity", false, "rewrite testdata/parity.json from the current implementation")

const (
	parityFile  = "testdata/parity.json"
	parityScale = 0.05
	paritySeed  = 20160516
)

// paritySnap records one compression run: a hash of the deterministic
// grammar rendering plus the full statistics struct (flattened to JSON).
type paritySnap struct {
	GrammarSHA string          `json:"grammar_sha256"`
	Size       int             `json:"size"`
	Rules      int             `json:"rules"`
	Stats      json.RawMessage `json:"stats"`
}

func snapOf(g *sltgrammar.Grammar, stats any) paritySnap {
	sum := sha256.Sum256([]byte(g.String()))
	raw, err := json.Marshal(stats)
	if err != nil {
		panic(err)
	}
	return paritySnap{
		GrammarSHA: hex.EncodeToString(sum[:]),
		Size:       g.Size(),
		Rules:      g.NumRules(),
		Stats:      raw,
	}
}

// collectParity runs every pinned compression scenario and returns the
// snapshots keyed by scenario name.
func collectParity() map[string]paritySnap {
	out := make(map[string]paritySnap)
	for _, c := range datasets.Corpora() {
		u := c.Generate(parityScale, paritySeed)
		doc := sltgrammar.Encode(u)

		// TreeRePair on the document.
		gTR, stTR := sltgrammar.Compress(doc)
		out[c.Short+"/treerepair"] = snapOf(gTR, stTR)

		// GrammarRePair applied to the tree.
		gGR, stGR := sltgrammar.CompressTreeGR(doc)
		out[c.Short+"/grammarrepair-tree"] = snapOf(gGR, stGR)

		// GrammarRePair recompressing an update-degraded grammar, in both
		// optimized and non-optimized replacement modes.
		ops := workload.Renames(doc, 40, 7)
		base := gTR.Clone()
		if err := sltgrammar.ApplyAll(base, ops); err != nil {
			panic(fmt.Sprintf("%s: applying renames: %v", c.Short, err))
		}
		gRe, stRe := sltgrammar.Recompress(base.Clone())
		out[c.Short+"/recompress-opt"] = snapOf(gRe, stRe)
		gReN, stReN := sltgrammar.Recompress(base.Clone(), sltgrammar.Options{NoOptimize: true})
		out[c.Short+"/recompress-noopt"] = snapOf(gReN, stReN)
	}
	return out
}

func TestCompressionParity(t *testing.T) {
	got := collectParity()
	if *updateParity {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(parityFile, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d scenarios)", parityFile, len(got))
		return
	}
	raw, err := os.ReadFile(parityFile)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-parity first): %v", err)
	}
	var want map[string]paritySnap
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Errorf("scenario count changed: got %d, want %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: scenario missing", name)
			continue
		}
		if g.GrammarSHA != w.GrammarSHA || g.Size != w.Size || g.Rules != w.Rules {
			t.Errorf("%s: grammar diverged: got (sha=%s size=%d rules=%d), want (sha=%s size=%d rules=%d)",
				name, g.GrammarSHA[:12], g.Size, g.Rules, w.GrammarSHA[:12], w.Size, w.Rules)
		}
		var gs, ws map[string]any
		if err := json.Unmarshal(g.Stats, &gs); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(w.Stats, &ws); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gs, ws) {
			t.Errorf("%s: stats diverged:\n got %v\nwant %v", name, gs, ws)
		}
	}
}
