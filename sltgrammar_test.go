package sltgrammar_test

import (
	"bytes"
	"strings"
	"testing"

	sltgrammar "repro"
)

const sampleXML = `<library>
  <shelf><book><title/><author/></book><book><title/><author/></book></shelf>
  <shelf><book><title/><author/></book></shelf>
</library>`

func TestPublicAPIPipeline(t *testing.T) {
	u, err := sltgrammar.ParseXML(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	doc := sltgrammar.Encode(u)
	g, st := sltgrammar.Compress(doc)
	if st.InputEdges != doc.Root.Edges() {
		t.Fatal("stats wrong")
	}
	if err := sltgrammar.Rename(g, 0, "archive"); err != nil {
		t.Fatal(err)
	}
	if err := sltgrammar.InsertBefore(g, 1, sltgrammar.NewElement("index")); err != nil {
		t.Fatal(err)
	}
	g2, cst := sltgrammar.Recompress(g)
	if cst.FinalSize != sltgrammar.Size(g2) {
		t.Fatal("recompress stats wrong")
	}
	out, err := sltgrammar.Decompress(g2, 0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sltgrammar.Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != "archive" || back.Children[0].Label != "index" {
		t.Fatalf("updates lost: %v", back.Label)
	}
	var buf bytes.Buffer
	if err := sltgrammar.WriteXML(&buf, back); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<archive><index/>") {
		t.Fatalf("serialization wrong: %s", buf.String())
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	u, _ := sltgrammar.ParseXML(strings.NewReader(sampleXML))
	doc := sltgrammar.Encode(u)
	gTR, _ := sltgrammar.Compress(doc)
	gGR, _ := sltgrammar.CompressTreeGR(doc)
	eq, err := sltgrammar.Equal(gTR, gGR, 0)
	if err != nil || !eq {
		t.Fatalf("TreeRePair and GrammarRePair must derive the same tree (eq=%v err=%v)", eq, err)
	}
	gU, _, err := sltgrammar.UDCRecompress(gTR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq, _ := sltgrammar.Equal(gTR, gU, 0); !eq {
		t.Fatal("udc changed the document")
	}
}

func TestPublicAPICounts(t *testing.T) {
	u, _ := sltgrammar.ParseXML(strings.NewReader(sampleXML))
	g, _ := sltgrammar.Compress(sltgrammar.Encode(u))
	n, err := sltgrammar.Elements(g)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != u.Nodes() {
		t.Fatalf("Elements = %d, want %d", n, u.Nodes())
	}
	ts, err := sltgrammar.TreeSize(g)
	if err != nil || ts != int64(2*u.Nodes()+1) {
		t.Fatalf("TreeSize = %d, want %d", ts, 2*u.Nodes()+1)
	}
}

func TestPublicAPIOps(t *testing.T) {
	u, _ := sltgrammar.ParseXML(strings.NewReader(sampleXML))
	g, _ := sltgrammar.Compress(sltgrammar.Encode(u))
	ops := []sltgrammar.Op{
		sltgrammar.RenameOp(0, "lib"),
		sltgrammar.DeleteOp(1),
	}
	if err := sltgrammar.ApplyAll(g, ops); err != nil {
		t.Fatal(err)
	}
	doc, _ := sltgrammar.Decompress(g, 0)
	back, _ := sltgrammar.Decode(doc)
	if back.Label != "lib" || len(back.Children) != 1 {
		t.Fatalf("ops failed: %+v", back)
	}
}

func TestPublicAPINavigation(t *testing.T) {
	u, _ := sltgrammar.ParseXML(strings.NewReader(sampleXML))
	g, _ := sltgrammar.Compress(sltgrammar.Encode(u))
	c, err := sltgrammar.NewCursor(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Label() != "library" {
		t.Fatalf("root label %s", c.Label())
	}
	if err := c.FirstChild(); err != nil {
		t.Fatal(err)
	}
	if c.Label() != "shelf" {
		t.Fatalf("first child %s", c.Label())
	}
	n, err := sltgrammar.CountLabel(g, "book")
	if err != nil || n != 3 {
		t.Fatalf("CountLabel(book) = %v, %v", n, err)
	}
	hist, err := sltgrammar.LabelHistogram(g)
	if err != nil || hist["title"] != 3 || hist["shelf"] != 2 {
		t.Fatalf("histogram wrong: %v %v", hist, err)
	}
}

func TestPublicAPISerialization(t *testing.T) {
	u, _ := sltgrammar.ParseXML(strings.NewReader(sampleXML))
	g, _ := sltgrammar.Compress(sltgrammar.Encode(u))
	var buf bytes.Buffer
	if err := sltgrammar.EncodeGrammar(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := sltgrammar.DecodeGrammar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := sltgrammar.Equal(g, back, 0)
	if err != nil || !eq {
		t.Fatalf("serialization round trip broken (eq=%v err=%v)", eq, err)
	}
}

func TestPublicAPIShardedStore(t *testing.T) {
	mk := func() *sltgrammar.Grammar {
		u, _ := sltgrammar.ParseXML(strings.NewReader(sampleXML))
		g, _ := sltgrammar.Compress(sltgrammar.Encode(u))
		return g
	}
	ss := sltgrammar.NewShardedStore(2, sltgrammar.StoreConfig{Ratio: 1.5, Async: true})
	defer ss.Close()
	for _, id := range []string{"a", "b"} {
		if _, err := ss.Open(id, mk()); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.ApplyAll("a", []sltgrammar.Op{
		sltgrammar.RenameOp(0, "archive"),
		sltgrammar.InsertOp(1, sltgrammar.NewElement("index")),
	}); err != nil {
		t.Fatal(err)
	}
	if err := ss.Apply("missing", sltgrammar.RenameOp(0, "x")); err == nil {
		t.Fatal("apply to unknown doc must fail")
	}
	ss.Quiesce()

	// Document b is untouched; document a carries both updates.
	nb, err := ss.CountLabel("b", "archive")
	if err != nil || nb != 0 {
		t.Fatalf("CountLabel(b, archive) = %v, %v", nb, err)
	}
	na, err := ss.CountLabel("a", "archive")
	if err != nil || na != 1 {
		t.Fatalf("CountLabel(a, archive) = %v, %v", na, err)
	}
	st, ok := ss.Get("a")
	if !ok {
		t.Fatal("Get(a) failed")
	}
	if st.Epoch() != 2 {
		t.Fatalf("epoch %d after 2 ops", st.Epoch())
	}
	snap, err := ss.Snapshot("a")
	if err != nil {
		t.Fatal(err)
	}
	out, err := sltgrammar.Decompress(snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sltgrammar.Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != "archive" || back.Children[0].Label != "index" {
		t.Fatal("updates lost through the sharded store")
	}
	agg := ss.Stats()
	if agg.Docs != 2 || agg.Shards != 2 || agg.Ops != 2 {
		t.Fatalf("aggregate stats wrong: %+v", agg)
	}
}
