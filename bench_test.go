// Benchmarks regenerating the paper's tables and figures (DESIGN.md §6).
// Each benchmark wraps the corresponding experiments.* driver at a
// reduced scale so `go test -bench=.` terminates in minutes; use
// cmd/benchtables for full-scale runs and EXPERIMENTS.md for recorded
// results.
package sltgrammar_test

import (
	"fmt"
	"io"
	"testing"

	sltgrammar "repro"
	"repro/internal/benchsuite"
	"repro/internal/datasets"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// benchCfg is the reduced-scale configuration for testing.B runs.
func benchCfg() experiments.Config {
	cfg := experiments.Default(io.Discard)
	cfg.Scale = 0.08
	cfg.Updates = 300
	cfg.Batch = 100
	cfg.Renames = 60
	cfg.GnMin = 4
	cfg.GnMax = 9
	return cfg
}

// BenchmarkTable3 regenerates Table III (document statistics and
// GrammarRePair compression ratios for all six corpora).
func BenchmarkTable3(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Table3(cfg)
	}
}

// BenchmarkStaticCompression regenerates the §V-B comparison of
// TreeRePair, GrammarRePair-on-trees and GrammarRePair-on-grammars.
func BenchmarkStaticCompression(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Static(cfg)
	}
}

// BenchmarkFig2Blowup regenerates Fig. 2 (blow-up while recompressing
// each corpus grammar).
func BenchmarkFig2Blowup(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig2(cfg)
	}
}

// BenchmarkFig3Optimization regenerates Fig. 3 (optimized vs
// non-optimized replacement on the Gn family).
func BenchmarkFig3Optimization(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig3(cfg)
	}
}

// BenchmarkFig4Moderate regenerates Fig. 4 (update sequences on the
// moderately compressing corpora XM/MD/TB).
func BenchmarkFig4Moderate(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DynamicAll(cfg, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Extreme regenerates Fig. 5 (update sequences on the
// exponentially compressing corpora EW/ET/NC).
func BenchmarkFig5Extreme(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DynamicAll(cfg, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Runtimes regenerates Fig. 6 plus the §V-C space
// comparison (recompression after random renames).
func BenchmarkFig6Runtimes(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpace isolates the §V-C space claim on one corpus: peak
// GrammarRePair footprint vs udc's decompressed tree.
func BenchmarkSpace(b *testing.B) {
	cfg := benchCfg()
	cfg.Renames = 40
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.SpaceGrammarRP >= r.SpaceUDC {
				b.Fatalf("%s: space claim violated", r.Name)
			}
		}
	}
}

// Micro-benchmarks of the core operations, per corpus regime.

func BenchmarkCompressTreeRePair(b *testing.B) {
	for _, short := range benchsuite.MicroShorts {
		c, _ := datasets.ByShort(short)
		b.Run(c.Name, benchsuite.CompressBench(short))
	}
}

func BenchmarkRecompressGrammarRePair(b *testing.B) {
	for _, short := range benchsuite.MicroShorts {
		c, _ := datasets.ByShort(short)
		b.Run(c.Name, benchsuite.RecompressBench(short))
	}
}

// BenchmarkStoreUpdateStream measures the Store update path (cached size
// vectors, one GC per batch) against BenchmarkPerOpUpdateStream on the
// identical pinned workload; the ratio is the update-serving speedup
// recorded in BENCH_<n>.json.
func BenchmarkStoreUpdateStream(b *testing.B) {
	for _, short := range benchsuite.MicroShorts {
		c, _ := datasets.ByShort(short)
		b.Run(c.Name, benchsuite.StoreUpdateStreamBench(short))
	}
}

// BenchmarkStoreUpdateStreamDurable is the same workload through a
// durable Store: WAL-encode + append (and under fsync=batch, an fsync)
// per acked batch. The delta against BenchmarkStoreUpdateStream is the
// durability overhead recorded in BENCH_<n>.json.
func BenchmarkStoreUpdateStreamDurable(b *testing.B) {
	for _, short := range benchsuite.MicroShorts {
		c, _ := datasets.ByShort(short)
		for _, m := range benchsuite.DurableFsyncModes {
			b.Run(c.Name+"/fsync="+m.Name, benchsuite.StoreUpdateStreamDurableBench(short, m.Fsync))
		}
	}
}

// BenchmarkStoreReadStream measures serving one read (zero-copy cursor
// + label count over a pinned generation) while a background writer
// ingests continuously; see benchsuite.StoreReadStreamBench.
func BenchmarkStoreReadStream(b *testing.B) {
	for _, short := range benchsuite.MicroShorts {
		c, _ := datasets.ByShort(short)
		b.Run(c.Name, benchsuite.StoreReadStreamBench(short))
	}
}

// BenchmarkStorePointQuery measures random indexed point lookups
// (preorder seeks through the generation's spine view) on a degraded
// grammar under a streaming writer, with the naive size-vector descent
// as the in-record baseline; see benchsuite.StorePointQueryBench.
func BenchmarkStorePointQuery(b *testing.B) {
	for _, short := range benchsuite.MicroShorts {
		c, _ := datasets.ByShort(short)
		b.Run(c.Name, benchsuite.StorePointQueryBench(short, true))
		b.Run(c.Name+"/naive", benchsuite.StorePointQueryBench(short, false))
	}
}

// BenchmarkShardedTiered measures a 256-document fleet under a memory
// budget a quarter of its unbounded resident footprint, driven by the
// pinned Zipf schedule; ns/op includes evictions and rehydrations.
func BenchmarkShardedTiered(b *testing.B) {
	b.Run(fmt.Sprintf("XM/docs=%d", benchsuite.TieredDocs),
		benchsuite.ShardedTieredBench("XM", benchsuite.TieredDocs))
}

// BenchmarkServeStream measures the same multi-document streams served
// over the network front-end (sltgrammar.Serve + wire clients): one op
// replays the pinned Zipf schedule through ServeConns connections, and
// the client-observed batch latency distribution is reported as
// p50-ns / p99-ns extra metrics; see benchsuite.ServeStreamBench.
func BenchmarkServeStream(b *testing.B) {
	for _, short := range benchsuite.MicroShorts {
		c, _ := datasets.ByShort(short)
		b.Run(fmt.Sprintf("%s/conns=%d", c.Name, benchsuite.ServeConns),
			benchsuite.ServeStreamBench(short))
	}
}

// BenchmarkPerOpUpdateStream is the baseline: a fresh ValSizes pass per
// operation and a garbage collection after every delete.
func BenchmarkPerOpUpdateStream(b *testing.B) {
	for _, short := range benchsuite.MicroShorts {
		c, _ := datasets.ByShort(short)
		b.Run(c.Name, benchsuite.PerOpUpdateStreamBench(short))
	}
}

// BenchmarkUpdateStreamSharded measures aggregate multi-document
// ingestion through a ShardedStore across shard counts; one op ingests
// every document's full pinned stream (see benchsuite for the fixture).
func BenchmarkUpdateStreamSharded(b *testing.B) {
	for _, shards := range benchsuite.ShardedShardCounts {
		b.Run(fmt.Sprintf("XM/docs=%d/shards=%d", benchsuite.ShardedDocs, shards),
			benchsuite.ShardedUpdateStreamBench("XM", shards, benchsuite.ShardedDocs))
	}
}

func BenchmarkUpdateRename(b *testing.B) {
	c, _ := datasets.ByShort("XM")
	u := c.Generate(0.08, 1)
	doc := sltgrammar.Encode(u)
	g, _ := sltgrammar.Compress(doc)
	ops := workload.Renames(doc, 1000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := g.Clone()
		b.StartTimer()
		if err := sltgrammar.Apply(cp, ops[i%len(ops)]); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
	}
}

func BenchmarkPathIsolationViaRename(b *testing.B) {
	// Isolation on an exponentially compressed grammar: the whole point
	// of Lemma 1 is that this is O(|G|), not O(tree).
	c, _ := datasets.ByShort("NC")
	u := c.Generate(0.05, 1)
	doc := sltgrammar.Encode(u)
	g, _ := sltgrammar.Compress(doc)
	ops := workload.Renames(doc, 200, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cp := g.Clone()
		if err := sltgrammar.Apply(cp, ops[i%len(ops)]); err != nil {
			b.Fatal(err)
		}
	}
}
