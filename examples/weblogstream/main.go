// weblogstream demonstrates the extreme-compression regime (the paper's
// EXI-Weblog/NCBI corpora): append-heavy event logs kept compressed in
// memory while records stream in.
//
// Appending to a grammar-compressed list breaks its exponential
// structure a little on every insert (path isolation), so without
// recompression the grammar degrades by orders of magnitude — the Fig. 5
// "naive" curve. A sltgrammar.Store with its self-tuning recompression
// policy keeps the log at O(log n) edges without any hand-rolled
// "recompress every batch" loop, and never materializes the log as a
// tree. That is the default single-log narrative.
//
// With -docs N -shards S the demo ingests N independent logs through
// one ShardedStore — appends to different logs updating in parallel and
// every log recompressing asynchronously off its write lock:
//
//	weblogstream -docs 8 -shards 4
package main

import (
	"fmt"
	"log"
	"sync"

	sltgrammar "repro"
	"repro/internal/examples"
)

const (
	initialRecords = 64
	batchRecords   = 64
	batches        = 8
)

func main() {
	serve := examples.ServeFlags(batches*batchRecords, 1)
	serve.Parse()
	if serve.Docs > 1 {
		multiLog(serve)
		return
	}
	singleLog()
}

// seedLog builds the starting log grammar: initialRecords identical
// request records under one root.
func seedLog() *sltgrammar.Grammar {
	root := sltgrammar.NewElement("log")
	for i := 0; i < initialRecords; i++ {
		root.Children = append(root.Children, record())
	}
	g, _ := sltgrammar.Compress(sltgrammar.Encode(root))
	return g
}

// singleLog is the classic naive-vs-tuned comparison on one log.
func singleLog() {
	g := seedLog()
	fmt.Printf("initial log: %d records, grammar %d edges\n\n", initialRecords, sltgrammar.Size(g))
	fmt.Printf("%10s %12s %14s %12s\n", "records", "naive |G|", "store |G|", "log elements")

	// Two stores over the same log: one with recompression disabled (the
	// Fig. 5 naive curve), one whose policy keeps it compressed.
	naive := sltgrammar.NewStore(g.Clone(), sltgrammar.StoreConfig{Ratio: -1})
	tuned := sltgrammar.NewStore(g, sltgrammar.StoreConfig{Ratio: 1.5})

	records := initialRecords
	for batch := 0; batch < batches; batch++ {
		// Append records at the end of the sibling chain: the final ⊥ of
		// the root's child list is the last node in preorder (O(1) off the
		// store's cached sizes).
		for i := 0; i < batchRecords; i++ {
			for _, st := range []*sltgrammar.Store{naive, tuned} {
				n, err := st.TreeSize()
				if err != nil {
					log.Fatal(err)
				}
				if err := st.Apply(sltgrammar.InsertOp(n-1, record())); err != nil {
					log.Fatal(err)
				}
			}
			records++
		}
		elems, err := tuned.Elements()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %12d %14d %12d\n",
			records, naive.Size(), tuned.Size(), elems)
	}

	fmt.Printf("\nnaive grammar is %.1fx larger than the self-tuned store's\n",
		float64(naive.Size())/float64(tuned.Size()))
	ts := tuned.Stats()
	fmt.Printf("store: %d recompressions over %d ops, cache %d hits / %d misses\n",
		ts.Recompressions, ts.Ops, ts.SizeCacheHits, ts.SizeCacheMisses)
	ok, err := sltgrammar.Equal(naive.Snapshot(), tuned.Snapshot(), 0)
	if err != nil || !ok {
		log.Fatal("the two logs diverged")
	}
	fmt.Println("both grammars derive the identical log")
}

// multiLog ingests -docs independent logs through one ShardedStore with
// asynchronous recompression: the appenders never stall on a
// GrammarRePair pass.
func multiLog(serve *examples.Serve) {
	fmt.Printf("streaming into %d logs on %d shards, %d appends each\n",
		serve.Docs, serve.Shards, serve.Ops)
	cfg := sltgrammar.StoreConfig{Ratio: 1.5, Async: true}
	ss, err := serve.OpenStore(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for d := 0; d < serve.Docs; d++ {
		if _, err := ss.Open(examples.DocID(d), seedLog()); err != nil {
			log.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, serve.Docs)
	for d := 0; d < serve.Docs; d++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < serve.Ops; i++ {
				if err := examples.Append(ss, id, record()); err != nil {
					errs <- fmt.Errorf("%s: %w", id, err)
					return
				}
			}
		}(examples.DocID(d))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatal(err)
	}
	ss.Quiesce()

	want := int64(initialRecords+serve.Ops)*5 + 1 // 5 elements per record + root
	for d := 0; d < serve.Docs; d++ {
		st, _ := ss.Get(examples.DocID(d))
		elems, err := st.Elements()
		if err != nil {
			log.Fatal(err)
		}
		if elems != want {
			log.Fatalf("%s: %d elements, want %d", examples.DocID(d), elems, want)
		}
	}
	agg := ss.Stats()
	fmt.Printf("fleet: %d appends over %d logs, |G| total %d, "+
		"%d recompressions (%d async, %d discarded, %d tail ops replayed), "+
		"write-lock stall %.2fms total\n",
		agg.Ops, agg.Docs, agg.Size,
		agg.Recompressions, agg.AsyncRecompressions, agg.DiscardedRecompressions,
		agg.ReplayedTailOps, float64(agg.StallNanos)/1e6)
	if line := examples.ResidencyLine(agg); line != "" {
		fmt.Println(line)
	}
	fmt.Printf("every log holds exactly %d elements, compressed\n", want)

	if serve.WALDir == "" {
		// CloseFleet surfaces the close error instead of deferring it
		// into the void: a failed close is a failed run.
		if err := examples.CloseFleet(ss); err != nil {
			log.Fatal(err)
		}
		return
	}

	// The kill-and-reopen audit: close the fleet (audited — the close
	// outcome lands in the durability summary line, and a failed close
	// aborts the run), recover it from the WAL directory, and re-count
	// every log.
	re, err := serve.Reopen(ss, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for d := 0; d < serve.Docs; d++ {
		st, ok := re.Get(examples.DocID(d))
		if !ok {
			log.Fatalf("%s lost across reopen", examples.DocID(d))
		}
		elems, err := st.Elements()
		if err != nil {
			log.Fatal(err)
		}
		if elems != want {
			log.Fatalf("%s: %d elements after reopen, want %d", examples.DocID(d), elems, want)
		}
	}
	fmt.Printf("reopened from %s: all %d logs recovered intact\n", serve.WALDir, serve.Docs)
	if err := examples.CloseFleet(re); err != nil {
		log.Fatal(err)
	}
}

func record() *sltgrammar.Unranked {
	return sltgrammar.NewElement("request",
		sltgrammar.NewElement("host"),
		sltgrammar.NewElement("time"),
		sltgrammar.NewElement("line"),
		sltgrammar.NewElement("status"))
}
