// weblogstream demonstrates the extreme-compression regime (the paper's
// EXI-Weblog/NCBI corpora): an append-heavy event log kept compressed in
// memory while records stream in.
//
// Appending to a grammar-compressed list breaks its exponential
// structure a little on every insert (path isolation), so without
// recompression the grammar degrades by orders of magnitude — the Fig. 5
// "naive" curve. A sltgrammar.Store with its self-tuning recompression
// policy keeps the log at O(log n) edges without any hand-rolled
// "recompress every batch" loop, and never materializes the log as a
// tree.
package main

import (
	"fmt"
	"log"

	sltgrammar "repro"
)

func main() {
	// Start with a small log of identical request records.
	root := sltgrammar.NewElement("log")
	for i := 0; i < 64; i++ {
		root.Children = append(root.Children, record())
	}
	g, _ := sltgrammar.Compress(sltgrammar.Encode(root))
	fmt.Printf("initial log: %d records, grammar %d edges\n\n", 64, sltgrammar.Size(g))
	fmt.Printf("%10s %12s %14s %12s\n", "records", "naive |G|", "store |G|", "log elements")

	// Two stores over the same log: one with recompression disabled (the
	// Fig. 5 naive curve), one whose policy keeps it compressed.
	naive := sltgrammar.NewStore(g.Clone(), sltgrammar.StoreConfig{Ratio: -1})
	tuned := sltgrammar.NewStore(g, sltgrammar.StoreConfig{Ratio: 1.5})

	records := 64
	for batch := 0; batch < 8; batch++ {
		// Append 64 records: insert at the end of the sibling chain. The
		// append position is the final ⊥ of the root's child list, i.e.
		// the last node in preorder (O(1) off the store's cached sizes).
		for i := 0; i < 64; i++ {
			for _, st := range []*sltgrammar.Store{naive, tuned} {
				n, err := st.TreeSize()
				if err != nil {
					log.Fatal(err)
				}
				if err := st.Apply(sltgrammar.InsertOp(n-1, record())); err != nil {
					log.Fatal(err)
				}
			}
			records++
		}
		elems, err := tuned.Elements()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %12d %14d %12d\n",
			records, naive.Size(), tuned.Size(), elems)
	}

	fmt.Printf("\nnaive grammar is %.1fx larger than the self-tuned store's\n",
		float64(naive.Size())/float64(tuned.Size()))
	ts := tuned.Stats()
	fmt.Printf("store: %d recompressions over %d ops, cache %d hits / %d misses\n",
		ts.Recompressions, ts.Ops, ts.SizeCacheHits, ts.SizeCacheMisses)
	ok, err := sltgrammar.Equal(naive.Snapshot(), tuned.Snapshot(), 0)
	if err != nil || !ok {
		log.Fatal("the two logs diverged")
	}
	fmt.Println("both grammars derive the identical log")
}

func record() *sltgrammar.Unranked {
	return sltgrammar.NewElement("request",
		sltgrammar.NewElement("host"),
		sltgrammar.NewElement("time"),
		sltgrammar.NewElement("line"),
		sltgrammar.NewElement("status"))
}
