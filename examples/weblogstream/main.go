// weblogstream demonstrates the extreme-compression regime (the paper's
// EXI-Weblog/NCBI corpora): an append-heavy event log kept compressed in
// memory while records stream in.
//
// Appending to a grammar-compressed list breaks its exponential
// structure a little on every insert (path isolation), so without
// recompression the grammar degrades by orders of magnitude — the Fig. 5
// "naive" curve. Recompressing with GrammarRePair after every batch keeps
// the log at O(log n) edges, and never materializes the log as a tree.
package main

import (
	"fmt"
	"log"

	sltgrammar "repro"
)

func main() {
	// Start with a small log of identical request records.
	root := sltgrammar.NewElement("log")
	for i := 0; i < 64; i++ {
		root.Children = append(root.Children, record())
	}
	g, _ := sltgrammar.Compress(sltgrammar.Encode(root))
	fmt.Printf("initial log: %d records, grammar %d edges\n\n", 64, sltgrammar.Size(g))
	fmt.Printf("%10s %12s %14s %12s\n", "records", "naive |G|", "recompressed", "log elements")

	naive := g.Clone()
	records := 64
	for batch := 0; batch < 8; batch++ {
		// Append 64 records: insert at the end of the sibling chain. The
		// append position is the final ⊥ of the root's child list, i.e.
		// the last node in preorder.
		for i := 0; i < 64; i++ {
			n, err := sltgrammar.TreeSize(naive)
			if err != nil {
				log.Fatal(err)
			}
			if err := sltgrammar.Apply(naive, sltgrammar.InsertOp(n-1, record())); err != nil {
				log.Fatal(err)
			}
			n2, _ := sltgrammar.TreeSize(g)
			if err := sltgrammar.Apply(g, sltgrammar.InsertOp(n2-1, record())); err != nil {
				log.Fatal(err)
			}
			records++
		}
		// Keep one copy naive, recompress the other.
		g, _ = sltgrammar.Recompress(g)
		elems, _ := sltgrammar.Elements(g)
		fmt.Printf("%10d %12d %14d %12d\n",
			records, sltgrammar.Size(naive), sltgrammar.Size(g), elems)
	}

	fmt.Printf("\nnaive grammar is %.1fx larger than the recompressed one\n",
		float64(sltgrammar.Size(naive))/float64(sltgrammar.Size(g)))
	ok, err := sltgrammar.Equal(naive, g, 0)
	if err != nil || !ok {
		log.Fatal("the two logs diverged")
	}
	fmt.Println("both grammars derive the identical log")
}

func record() *sltgrammar.Unranked {
	return sltgrammar.NewElement("request",
		sltgrammar.NewElement("host"),
		sltgrammar.NewElement("time"),
		sltgrammar.NewElement("line"),
		sltgrammar.NewElement("status"))
}
