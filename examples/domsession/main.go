// domsession simulates the paper's motivating application (Section I and
// the conclusion): a browser-style DOM that changes frequently while
// staying grammar-compressed in memory.
//
// A long editing session runs against an XMark-like document: every
// operation executes on the compressed grammar via path isolation, and
// every 100 operations GrammarRePair recompresses the grammar in place.
// The session prints how the compressed size tracks the
// recompress-from-scratch reference — the Fig. 4 experiment as an
// application loop.
package main

import (
	"fmt"
	"log"

	sltgrammar "repro"
	"repro/internal/datasets"
	"repro/internal/workload"
)

func main() {
	// An auction-site DOM of ~20k edges.
	corpus, _ := datasets.ByShort("XM")
	page := corpus.Generate(0.2, 42)
	fmt.Printf("DOM: %d elements, depth %d\n", page.Nodes(), page.Depth())

	// A realistic editing session: 1000 operations, 90 % inserts / 10 %
	// deletes, derived from the document itself by inverse seeding.
	seq, err := workload.Updates(page, 1000, 90, 7)
	if err != nil {
		log.Fatal(err)
	}
	g, _ := sltgrammar.Compress(seq.Seed)
	fmt.Printf("initial DOM grammar: %d edges (document has %d)\n\n",
		sltgrammar.Size(g), seq.Seed.Root.Edges())
	fmt.Printf("%8s %12s %12s %10s\n", "ops", "|G| live", "|G| scratch", "overhead")

	for done := 0; done < len(seq.Ops); {
		end := min(done+100, len(seq.Ops))
		if err := sltgrammar.ApplyAll(g, seq.Ops[done:end]); err != nil {
			log.Fatal(err)
		}
		done = end

		// Keep the DOM compressed: recompress the grammar directly.
		g, _ = sltgrammar.Recompress(g)

		// Reference: what compressing the current DOM from scratch gives.
		scratch, _, err := sltgrammar.UDCRecompress(g, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d %12d %9.4f\n",
			done, sltgrammar.Size(g), sltgrammar.Size(scratch),
			float64(sltgrammar.Size(g))/float64(sltgrammar.Size(scratch)))
	}

	// The session must have converged to the target document.
	final, err := sltgrammar.Decompress(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	back, _ := sltgrammar.Decode(final)
	fmt.Printf("\nfinal DOM: %d elements (target %d)\n", back.Nodes(), page.Nodes())
	if back.Nodes() != page.Nodes() {
		log.Fatal("session diverged from the target document")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
