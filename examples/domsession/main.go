// domsession simulates the paper's motivating application (Section I and
// the conclusion): a browser-style DOM that changes frequently while
// staying grammar-compressed in memory.
//
// A long editing session runs against an XMark-like document through a
// sltgrammar.Store: every operation executes on the compressed grammar
// via path isolation with the Store's cached size vectors, and the
// Store's self-tuning policy decides when GrammarRePair recompresses the
// grammar in place — no hand-rolled "every N ops" loop. The session
// prints how the compressed size tracks the recompress-from-scratch
// reference — the Fig. 4 experiment as an application loop.
package main

import (
	"fmt"
	"log"

	sltgrammar "repro"
	"repro/internal/datasets"
	"repro/internal/workload"
)

func main() {
	// An auction-site DOM of ~20k edges.
	corpus, _ := datasets.ByShort("XM")
	page := corpus.Generate(0.2, 42)
	fmt.Printf("DOM: %d elements, depth %d\n", page.Nodes(), page.Depth())

	// A realistic editing session: 1000 operations, 90 % inserts / 10 %
	// deletes, derived from the document itself by inverse seeding.
	seq, err := workload.Updates(page, 1000, 90, 7)
	if err != nil {
		log.Fatal(err)
	}
	g, _ := sltgrammar.Compress(seq.Seed)
	fmt.Printf("initial DOM grammar: %d edges (document has %d)\n\n",
		sltgrammar.Size(g), seq.Seed.Root.Edges())

	// The Store owns grammar maintenance: recompress when the grammar
	// grows 1.3× past its last compressed size.
	st := sltgrammar.NewStore(g, sltgrammar.StoreConfig{Ratio: 1.3})

	fmt.Printf("%8s %12s %12s %10s %9s\n", "ops", "|G| live", "|G| scratch", "overhead", "recomps")
	for done := 0; done < len(seq.Ops); {
		end := min(done+100, len(seq.Ops))
		if err := st.ApplyAll(seq.Ops[done:end]); err != nil {
			log.Fatal(err)
		}
		done = end

		// Reference: what compressing the current DOM from scratch gives.
		snap := st.Snapshot()
		scratch, _, err := sltgrammar.UDCRecompress(snap, 0)
		if err != nil {
			log.Fatal(err)
		}
		stats := st.Stats()
		fmt.Printf("%8d %12d %12d %9.4f %9d\n",
			done, stats.Size, sltgrammar.Size(scratch),
			float64(stats.Size)/float64(sltgrammar.Size(scratch)),
			stats.Recompressions)
	}

	// The session must have converged to the target document.
	final, err := sltgrammar.Decompress(st.Snapshot(), 0)
	if err != nil {
		log.Fatal(err)
	}
	back, _ := sltgrammar.Decode(final)
	fmt.Printf("\nfinal DOM: %d elements (target %d)\n", back.Nodes(), page.Nodes())
	if back.Nodes() != page.Nodes() {
		log.Fatal("session diverged from the target document")
	}
	stats := st.Stats()
	fmt.Printf("store: %d ops in %d batches, %d recompressions, "+
		"size-vector cache %d hits / %d misses, peak |G| %d\n",
		stats.Ops, stats.Batches, stats.Recompressions,
		stats.SizeCacheHits, stats.SizeCacheMisses, stats.PeakSize)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
