// domsession simulates the paper's motivating application (Section I and
// the conclusion): browser-style DOMs that change frequently while
// staying grammar-compressed in memory.
//
// In the default single-document mode a long editing session runs
// against an XMark-like document through a sltgrammar.Store: every
// operation executes on the compressed grammar via path isolation with
// the Store's cached size vectors, and the Store's self-tuning policy
// decides when GrammarRePair recompresses the grammar in place. The
// session prints how the compressed size tracks the
// recompress-from-scratch reference — the Fig. 4 experiment as an
// application loop.
//
// With -docs N -shards S the same session runs as a fleet: N distinct
// DOMs served by one ShardedStore, one writer per document, shards
// updating in parallel and recompression running asynchronously off the
// write locks (the serving shape of the ROADMAP's million-user target):
//
//	domsession -docs 8 -shards 4
package main

import (
	"fmt"
	"log"
	"sync"

	sltgrammar "repro"
	"repro/internal/examples"
)

const (
	corpusScale = 0.2
	insertPct   = 90
)

func main() {
	serve := examples.ServeFlags(1000, 42)
	serve.Parse()
	if serve.Docs > 1 {
		multiDoc(serve)
		return
	}
	singleDoc(serve)
}

// singleDoc is the classic narrative: one DOM, compressed-size tracking
// against the from-scratch reference every 100 ops.
func singleDoc(serve *examples.Serve) {
	sessions, err := examples.CorpusSessions("XM", corpusScale, 1, serve.Ops, insertPct, serve.Seed)
	if err != nil {
		log.Fatal(err)
	}
	ses := sessions[0]
	fmt.Printf("DOM session: %d ops toward a %d-element document\n", len(ses.Ops), ses.FinalNodes)
	fmt.Printf("initial DOM grammar: %d edges\n\n", sltgrammar.Size(ses.Grammar))

	// The Store owns grammar maintenance: recompress when the grammar
	// grows 1.3× past its last compressed size.
	st := sltgrammar.NewStore(ses.Grammar, sltgrammar.StoreConfig{Ratio: 1.3})

	fmt.Printf("%8s %12s %12s %10s %9s\n", "ops", "|G| live", "|G| scratch", "overhead", "recomps")
	for done := 0; done < len(ses.Ops); {
		end := min(done+100, len(ses.Ops))
		if err := st.ApplyAll(ses.Ops[done:end]); err != nil {
			log.Fatal(err)
		}
		done = end

		// Reference: what compressing the current DOM from scratch gives.
		snap := st.Snapshot()
		scratch, _, err := sltgrammar.UDCRecompress(snap, 0)
		if err != nil {
			log.Fatal(err)
		}
		stats := st.Stats()
		fmt.Printf("%8d %12d %12d %9.4f %9d\n",
			done, stats.Size, sltgrammar.Size(scratch),
			float64(stats.Size)/float64(sltgrammar.Size(scratch)),
			stats.Recompressions)
	}

	verifyConverged(st, ses)
	stats := st.Stats()
	fmt.Printf("store: %d ops in %d batches, %d recompressions, "+
		"size-vector cache %d hits / %d misses, peak |G| %d\n",
		stats.Ops, stats.Batches, stats.Recompressions,
		stats.SizeCacheHits, stats.SizeCacheMisses, stats.PeakSize)
}

// multiDoc serves -docs DOMs through one ShardedStore: disjoint editing
// sessions run concurrently, recompression happens asynchronously off
// the write locks, and the swap protocol guarantees no session ever
// loses an update to a racing compression.
func multiDoc(serve *examples.Serve) {
	sessions, err := examples.CorpusSessions("XM", corpusScale, serve.Docs, serve.Ops, insertPct, serve.Seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d DOMs on %d shards, %d ops each\n",
		serve.Docs, serve.Shards, serve.Ops)

	cfg := sltgrammar.StoreConfig{Ratio: 1.3, Async: true}
	ss, err := serve.OpenStore(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, ses := range sessions {
		if _, err := ss.Open(ses.ID, ses.Grammar); err != nil {
			log.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(sessions))
	for _, ses := range sessions {
		wg.Add(1)
		go func(ses *examples.Session) {
			defer wg.Done()
			for done := 0; done < len(ses.Ops); {
				end := min(done+100, len(ses.Ops))
				if err := ss.ApplyAll(ses.ID, ses.Ops[done:end]); err != nil {
					errs <- fmt.Errorf("%s: %w", ses.ID, err)
					return
				}
				done = end
			}
		}(ses)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatal(err)
	}
	ss.Quiesce() // let in-flight recompressions settle before the audit

	for _, ses := range sessions {
		st, ok := ss.Get(ses.ID)
		if !ok {
			log.Fatalf("%s vanished", ses.ID)
		}
		verifyConverged(st, ses)
	}
	agg := ss.Stats()
	fmt.Printf("fleet: %d ops over %d docs, |G| total %d, "+
		"%d recompressions (%d async, %d discarded, %d tail ops replayed), "+
		"write-lock stall %.2fms total\n",
		agg.Ops, agg.Docs, agg.Size,
		agg.Recompressions, agg.AsyncRecompressions, agg.DiscardedRecompressions,
		agg.ReplayedTailOps, float64(agg.StallNanos)/1e6)
	if line := examples.ResidencyLine(agg); line != "" {
		fmt.Println(line)
	}
	fmt.Println("all sessions converged to their target documents")

	if serve.WALDir == "" {
		// CloseFleet surfaces the close error instead of deferring it
		// into the void: a failed close is a failed run.
		if err := examples.CloseFleet(ss); err != nil {
			log.Fatal(err)
		}
		return
	}

	// The kill-and-reopen audit: close the fleet (audited — the close
	// outcome lands in the durability summary line, and a failed close
	// aborts the run, since acked state may not have reached disk),
	// recover every DOM from its WAL directory, and re-verify
	// convergence on the recovered state.
	re, err := serve.Reopen(ss, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, ses := range sessions {
		st, ok := re.Get(ses.ID)
		if !ok {
			log.Fatalf("%s lost across reopen", ses.ID)
		}
		verifyConverged(st, ses)
	}
	fmt.Printf("reopened from %s: all %d sessions recovered converged\n", serve.WALDir, serve.Docs)
	if err := examples.CloseFleet(re); err != nil {
		log.Fatal(err)
	}
}

// verifyConverged checks a session landed exactly on its target
// document.
func verifyConverged(st *sltgrammar.Store, ses *examples.Session) {
	final, err := sltgrammar.Decompress(st.Snapshot(), 0)
	if err != nil {
		log.Fatal(err)
	}
	back, err := sltgrammar.Decode(final)
	if err != nil {
		log.Fatal(err)
	}
	if back.Nodes() != ses.FinalNodes {
		log.Fatalf("%s: session diverged (%d elements, want %d)",
			ses.ID, back.Nodes(), ses.FinalNodes)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
