// comparecomp compares the three compression pipelines of the paper's
// §V-B on all six synthetic corpora: TreeRePair on the tree,
// GrammarRePair applied to the tree, and GrammarRePair applied to the
// TreeRePair grammar — a miniature of the static evaluation that prints
// ratios against the document edge count.
package main

import (
	"fmt"
	"time"

	sltgrammar "repro"
	"repro/internal/datasets"
)

func main() {
	scale := 0.1
	fmt.Printf("corpora at %.0f%% of laptop-default size\n\n", scale*100)
	fmt.Printf("%-13s %8s | %9s %9s %9s | %9s\n",
		"dataset", "#edges", "TreeRP", "GrRP/tree", "GrRP/gram", "t(GrRP)")
	for _, c := range datasets.Corpora() {
		u := c.Generate(scale, 2016)
		doc := sltgrammar.Encode(u)

		gTR, _ := sltgrammar.Compress(doc)

		t0 := time.Now()
		gGT, _ := sltgrammar.CompressTreeGR(doc)
		dGT := time.Since(t0)

		gGG, _ := sltgrammar.Recompress(gTR)

		fmt.Printf("%-13s %8d | %8.3f%% %8.3f%% %8.3f%% | %9s\n",
			c.Name, u.Edges(),
			pct(gTR, u.Edges()), pct(gGT, u.Edges()), pct(gGG, u.Edges()),
			dGT.Round(time.Millisecond))
	}
	fmt.Println("\npaper §V-B: all three compress about equally; GrammarRePair")
	fmt.Println("wins on the most compressible corpora (compare the EW/NC rows).")
}

func pct(g *sltgrammar.Grammar, edges int) float64 {
	return 100 * float64(sltgrammar.Size(g)) / float64(edges)
}
