// Quickstart: parse structure-only XML, compress it into an SLCF tree
// grammar, update the compressed form, recompress with GrammarRePair,
// and serialize back to XML — the full public-API pipeline.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	sltgrammar "repro"
)

const doc = `<library>
  <shelf>
    <book><title/><author/><year/></book>
    <book><title/><author/><year/></book>
    <book><title/><author/><year/></book>
  </shelf>
  <shelf>
    <book><title/><author/><year/></book>
    <book><title/><author/><year/></book>
  </shelf>
</library>`

func main() {
	// 1. Parse (text content and attributes are discarded; the paper's
	//    compressors work on the element structure).
	u, err := sltgrammar.ParseXML(strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d elements, %d edges, depth %d\n", u.Nodes(), u.Edges(), u.Depth())

	// 2. Encode to the binary first-child/next-sibling tree and compress
	//    with TreeRePair.
	bin := sltgrammar.Encode(u)
	g, st := sltgrammar.Compress(bin)
	fmt.Printf("compressed: |G| = %d edges after %d digram rounds\n", sltgrammar.Size(g), st.Rounds)
	fmt.Println(g.String())

	// 3. Update the compressed document in place. Positions are preorder
	//    indices of the binary tree; position 0 is the root element.
	if err := sltgrammar.Rename(g, 0, "archive"); err != nil {
		log.Fatal(err)
	}
	note := sltgrammar.NewElement("note", sltgrammar.NewElement("p"))
	if err := sltgrammar.InsertBefore(g, 1, note); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after rename+insert (no recompression): |G| = %d\n", sltgrammar.Size(g))

	// 4. Recompress directly on the grammar — the paper's contribution.
	g2, rst := sltgrammar.Recompress(g)
	fmt.Printf("after GrammarRePair: |G| = %d (max intermediate %d, %d rounds)\n",
		sltgrammar.Size(g2), rst.MaxIntermediate, rst.Rounds)

	// 5. Decompress and serialize.
	out, err := sltgrammar.Decompress(g2, 0)
	if err != nil {
		log.Fatal(err)
	}
	back, err := sltgrammar.Decode(out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("result: ")
	if err := sltgrammar.WriteXML(os.Stdout, back); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
