package xmltree

import "testing"

func arenaTree() *Node {
	st := NewSymbolTable()
	a := st.InternElement("a")
	b := st.InternElement("b")
	return New(Term(a),
		New(Term(b), NewBottom(), NewBottom()),
		New(Term(b), New(Param(1)), NewBottom()))
}

func TestArenaCopyEqualsHeapCopy(t *testing.T) {
	n := arenaTree()
	var a Arena
	cp := n.CopyIn(&a)
	if !Equal(n, cp) {
		t.Fatal("arena copy differs")
	}
	// Mutating the copy must not touch the original.
	cp.Children[0].Label = Param(3)
	if Equal(n, cp) {
		t.Fatal("copy aliases original")
	}
}

func TestArenaCopyMapped(t *testing.T) {
	n := arenaTree()
	var a Arena
	m := make(map[*Node]*Node)
	cp := n.CopyMappedIn(m, &a)
	if !Equal(n, cp) {
		t.Fatal("arena copy differs")
	}
	if len(m) != n.Size() {
		t.Fatalf("mapped %d of %d nodes", len(m), n.Size())
	}
	var check func(orig *Node)
	check = func(orig *Node) {
		if m[orig].Label != orig.Label {
			t.Fatalf("mapping label mismatch at %v", orig.Label)
		}
		for _, c := range orig.Children {
			check(c)
		}
	}
	check(n)
}

func TestArenaFreeReuses(t *testing.T) {
	var a Arena
	n1 := a.New(Term(1))
	a.Free(n1)
	n2 := a.New(Term(2))
	if n1 != n2 {
		t.Fatal("freelist did not reuse the node")
	}
	if n2.Label != Term(2) || n2.Children != nil {
		t.Fatal("recycled node not reset")
	}
}

func TestNilArenaFallsBackToHeap(t *testing.T) {
	var a *Arena
	n := a.New(Term(1))
	n.Children = a.Children(2)
	if n == nil || len(n.Children) != 2 {
		t.Fatal("nil arena allocation failed")
	}
	a.Free(n) // must not panic
}

// TestArenaCopyAllocsAmortized: copying a tree through a warm arena must
// cost far fewer heap allocations than one per node.
func TestArenaCopyAllocsAmortized(t *testing.T) {
	n := arenaTree()
	var a Arena
	// Warm the chunks.
	n.CopyIn(&a)
	allocs := testing.AllocsPerRun(200, func() {
		n.CopyIn(&a)
	})
	// 7 nodes + 3 children slices per copy; amortized chunk refills only.
	if allocs > 1 {
		t.Fatalf("arena copy allocated %.1f times per run", allocs)
	}
}
