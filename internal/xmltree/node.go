package xmltree

import (
	"fmt"
	"strings"
)

// Node is a node of a ranked labeled ordered tree. Grammar right-hand
// sides use the same type: labels may be terminals, nonterminals, or
// parameters. A terminal node must have exactly rank(label) children;
// a parameter node has none; a nonterminal node of rank k has k argument
// subtrees.
type Node struct {
	Label Symbol
	// Aux is scratch space for algorithm-owned dense side tables: an
	// index into a slice the algorithm maintains instead of a
	// pointer-keyed map (the compressor's rule editor stores each node's
	// parent entry this way). Values are meaningless between owners —
	// any reader must validate that its table entry points back at the
	// node before trusting it, because nodes move freely between pooled
	// owners without Aux being reset.
	Aux      int32
	Children []*Node
}

// New returns a node with the given label and children.
func New(label Symbol, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// NewBottom returns a fresh ⊥ leaf.
func NewBottom() *Node { return &Node{Label: Bottom} }

// Copy returns a deep copy of the subtree rooted at n.
func (n *Node) Copy() *Node { return n.CopyIn(nil) }

// CopyMapped deep-copies the subtree and records the mapping from original
// nodes to their copies in m (which must be non-nil). Used when rule
// versions need to re-locate digram occurrence generators inside the copy.
func (n *Node) CopyMapped(m map[*Node]*Node) *Node { return n.CopyMappedIn(m, nil) }

// Size returns the number of nodes in the subtree rooted at n
// (terminals including ⊥, nonterminals, and parameters all count).
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Edges returns Size()-1, the edge count of the subtree (the paper's size
// measure for right-hand sides).
func (n *Node) Edges() int {
	if n == nil {
		return 0
	}
	return n.Size() - 1
}

// Walk visits every node of the subtree in preorder. If f returns false
// the children of the current node are skipped.
func (n *Node) Walk(f func(*Node) bool) {
	if n == nil {
		return
	}
	if !f(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// WalkParent visits every node in preorder together with its parent
// (nil for the root) and its child index within the parent.
func (n *Node) WalkParent(f func(node, parent *Node, idx int) bool) {
	var rec func(node, parent *Node, idx int)
	rec = func(node, parent *Node, idx int) {
		if !f(node, parent, idx) {
			return
		}
		for i, c := range node.Children {
			rec(c, node, i)
		}
	}
	if n != nil {
		rec(n, nil, -1)
	}
}

// Equal reports whether the two subtrees are structurally identical.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Label != b.Label || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// PreorderIndex returns the node at the given preorder index (0-based) of
// the subtree rooted at n, or nil if the index is out of range.
func (n *Node) PreorderIndex(idx int) *Node {
	var found *Node
	i := 0
	n.Walk(func(v *Node) bool {
		if found != nil {
			return false
		}
		if i == idx {
			found = v
			return false
		}
		i++
		return true
	})
	return found
}

// CountLabel returns the number of nodes in the subtree whose label is sym.
func (n *Node) CountLabel(sym Symbol) int {
	c := 0
	n.Walk(func(v *Node) bool {
		if v.Label == sym {
			c++
		}
		return true
	})
	return c
}

// MaxParam returns the largest parameter index appearing in the subtree
// (0 if there are no parameters).
func (n *Node) MaxParam() int {
	m := 0
	n.Walk(func(v *Node) bool {
		if v.Label.Kind == Parameter && int(v.Label.ID) > m {
			m = int(v.Label.ID)
		}
		return true
	})
	return m
}

// String renders the subtree in the paper's term notation, e.g.
// "a(y1, a(⊥, y2))". Terminal names are not available without a symbol
// table, so terminals print as t<ID> (and ⊥ as ⊥); use Format for names.
func (n *Node) String() string {
	var b strings.Builder
	n.format(&b, nil)
	return b.String()
}

// Format renders the subtree with terminal names resolved via st.
func (n *Node) Format(st *SymbolTable) string {
	var b strings.Builder
	n.format(&b, st)
	return b.String()
}

func (n *Node) format(b *strings.Builder, st *SymbolTable) {
	switch n.Label.Kind {
	case Terminal:
		if n.Label.IsBottom() {
			b.WriteString("⊥")
			return
		}
		if st != nil {
			b.WriteString(st.Name(n.Label.ID))
		} else {
			fmt.Fprintf(b, "t%d", n.Label.ID)
		}
	case Nonterminal:
		fmt.Fprintf(b, "N%d", n.Label.ID)
	case Parameter:
		fmt.Fprintf(b, "y%d", n.Label.ID)
	}
	if len(n.Children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		c.format(b, st)
	}
	b.WriteByte(')')
}
