// Package xmltree provides the tree substrate of the reproduction:
// ranked labeled ordered trees with formal parameters (Section II of the
// paper), the binary first-child/next-sibling encoding of XML documents,
// and structure-only XML parsing and serialization.
package xmltree

import "fmt"

// SymKind distinguishes the three symbol classes of the formal model:
// ranked terminals (F), ranked nonterminals (N), and formal parameters (Y).
type SymKind uint8

const (
	// Terminal symbols carry document labels; their rank is fixed by the
	// SymbolTable. The empty node ⊥ is the distinguished terminal BottomID.
	Terminal SymKind = iota
	// Nonterminal symbols name grammar rules; their rank is the number of
	// formal parameters of the rule.
	Nonterminal
	// Parameter symbols y1, y2, ... have rank 0 and ID = parameter index
	// (1-based, matching the paper's y_i notation).
	Parameter
)

func (k SymKind) String() string {
	switch k {
	case Terminal:
		return "terminal"
	case Nonterminal:
		return "nonterminal"
	case Parameter:
		return "parameter"
	}
	return fmt.Sprintf("SymKind(%d)", uint8(k))
}

// Symbol identifies a terminal, nonterminal, or parameter. Symbols are
// value types and compare with ==.
type Symbol struct {
	Kind SymKind
	ID   int32
}

// BottomID is the terminal ID reserved for the empty node ⊥ that stands
// for a non-existing first-child or next-sibling in the binary encoding.
const BottomID int32 = 0

// Bottom is the ⊥ terminal symbol.
var Bottom = Symbol{Kind: Terminal, ID: BottomID}

// Param returns the parameter symbol y_i (1-based).
func Param(i int) Symbol { return Symbol{Kind: Parameter, ID: int32(i)} }

// Term returns the terminal symbol with the given table ID.
func Term(id int32) Symbol { return Symbol{Kind: Terminal, ID: id} }

// Nonterm returns the nonterminal symbol with the given ID.
func Nonterm(id int32) Symbol { return Symbol{Kind: Nonterminal, ID: id} }

// IsBottom reports whether s is the ⊥ terminal.
func (s Symbol) IsBottom() bool { return s.Kind == Terminal && s.ID == BottomID }

// SymbolTable interns terminal names and records terminal ranks.
// ID 0 is always ⊥ with rank 0 and name "⊥". XML element labels are
// registered with rank 2 (first-child, next-sibling). Digram replacement
// introduces fresh terminals with arbitrary ranks.
type SymbolTable struct {
	names []string
	ranks []int
	byKey map[symKey]int32
}

// symKey is the intern-map key: comparable as a value, so lookups never
// build a string (Intern sits on the update and compression hot paths).
type symKey struct {
	name string
	rank int
}

// NewSymbolTable returns a table containing only ⊥.
func NewSymbolTable() *SymbolTable {
	st := &SymbolTable{byKey: make(map[symKey]int32)}
	st.names = append(st.names, "⊥")
	st.ranks = append(st.ranks, 0)
	st.byKey[symKey{"⊥", 0}] = BottomID
	return st
}

// Intern returns the ID of the terminal with the given name and rank,
// creating it if necessary. Two terminals with the same name but different
// ranks are distinct symbols.
func (st *SymbolTable) Intern(name string, rank int) int32 {
	key := symKey{name, rank}
	if id, ok := st.byKey[key]; ok {
		return id
	}
	id := int32(len(st.names))
	st.names = append(st.names, name)
	st.ranks = append(st.ranks, rank)
	st.byKey[key] = id
	return id
}

// InternElement interns an XML element label (rank 2 in the binary encoding).
func (st *SymbolTable) InternElement(name string) int32 { return st.Intern(name, 2) }

// Fresh creates a new terminal that is guaranteed not to collide with any
// existing one (used for the digram pattern nonterminal-turned-terminal X).
func (st *SymbolTable) Fresh(prefix string, rank int) int32 {
	id := int32(len(st.names))
	name := fmt.Sprintf("%s%d", prefix, id)
	st.names = append(st.names, name)
	st.ranks = append(st.ranks, rank)
	st.byKey[symKey{name, rank}] = id
	return id
}

// Name returns the name of terminal id.
func (st *SymbolTable) Name(id int32) string { return st.names[id] }

// Rank returns the rank of terminal id.
func (st *SymbolTable) Rank(id int32) int { return st.ranks[id] }

// Len returns the number of interned terminals (including ⊥).
func (st *SymbolTable) Len() int { return len(st.names) }

// Clone returns a deep copy of the table. Compressors clone the table so
// the input document's table is never mutated.
func (st *SymbolTable) Clone() *SymbolTable {
	cp := &SymbolTable{
		names: append([]string(nil), st.names...),
		ranks: append([]int(nil), st.ranks...),
		byKey: make(map[symKey]int32, len(st.byKey)),
	}
	for k, v := range st.byKey {
		cp.byKey[k] = v
	}
	return cp
}
