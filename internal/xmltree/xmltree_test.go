package xmltree

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSymbolTableIntern(t *testing.T) {
	st := NewSymbolTable()
	if st.Len() != 1 || st.Name(BottomID) != "⊥" || st.Rank(BottomID) != 0 {
		t.Fatalf("fresh table should contain only ⊥: %v", st)
	}
	a := st.InternElement("a")
	b := st.InternElement("b")
	if a == b {
		t.Fatal("distinct names must get distinct IDs")
	}
	if st.InternElement("a") != a {
		t.Fatal("intern must be idempotent")
	}
	if st.Rank(a) != 2 {
		t.Fatalf("element rank = %d, want 2", st.Rank(a))
	}
	a1 := st.Intern("a", 1)
	if a1 == a {
		t.Fatal("same name different rank must be distinct")
	}
}

func TestSymbolTableFresh(t *testing.T) {
	st := NewSymbolTable()
	x1 := st.Fresh("X", 3)
	x2 := st.Fresh("X", 3)
	if x1 == x2 {
		t.Fatal("fresh symbols must be distinct")
	}
	if st.Rank(x1) != 3 {
		t.Fatalf("rank = %d, want 3", st.Rank(x1))
	}
}

func TestSymbolTableClone(t *testing.T) {
	st := NewSymbolTable()
	st.InternElement("a")
	cp := st.Clone()
	cp.InternElement("b")
	if st.Len() != 2 || cp.Len() != 3 {
		t.Fatalf("clone must be independent: %d vs %d", st.Len(), cp.Len())
	}
}

func TestNodeCopyIndependence(t *testing.T) {
	st := NewSymbolTable()
	a := st.InternElement("a")
	n := New(Term(a), NewBottom(), New(Term(a), NewBottom(), NewBottom()))
	cp := n.Copy()
	if !Equal(n, cp) {
		t.Fatal("copy must be equal")
	}
	cp.Children[1].Label = Bottom
	cp.Children[1].Children = nil
	if Equal(n, cp) {
		t.Fatal("mutating the copy must not affect the original")
	}
}

func TestCopyMapped(t *testing.T) {
	st := NewSymbolTable()
	a := st.InternElement("a")
	inner := New(Term(a), NewBottom(), NewBottom())
	n := New(Term(a), inner, NewBottom())
	m := make(map[*Node]*Node)
	cp := n.CopyMapped(m)
	if m[n] != cp {
		t.Fatal("root mapping wrong")
	}
	if m[inner] != cp.Children[0] {
		t.Fatal("inner mapping wrong")
	}
	if len(m) != 5 {
		t.Fatalf("mapping should cover all 5 nodes, got %d", len(m))
	}
}

func TestSizeEdgesWalk(t *testing.T) {
	st := NewSymbolTable()
	a := st.InternElement("a")
	n := New(Term(a), New(Term(a), NewBottom(), NewBottom()), NewBottom())
	if n.Size() != 5 {
		t.Fatalf("size = %d, want 5", n.Size())
	}
	if n.Edges() != 4 {
		t.Fatalf("edges = %d, want 4", n.Edges())
	}
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	if count != 5 {
		t.Fatalf("walk visited %d, want 5", count)
	}
	// Pruned walk: skip children of the root.
	count = 0
	n.Walk(func(v *Node) bool { count++; return v != n })
	if count != 1 {
		t.Fatalf("pruned walk visited %d, want 1", count)
	}
}

func TestWalkParent(t *testing.T) {
	st := NewSymbolTable()
	a := st.InternElement("a")
	n := New(Term(a), NewBottom(), NewBottom())
	type rec struct {
		parent *Node
		idx    int
	}
	got := map[*Node]rec{}
	n.WalkParent(func(v, p *Node, i int) bool {
		got[v] = rec{p, i}
		return true
	})
	if got[n].parent != nil || got[n].idx != -1 {
		t.Fatal("root must have nil parent")
	}
	if got[n.Children[0]].parent != n || got[n.Children[0]].idx != 0 {
		t.Fatal("first child parent info wrong")
	}
	if got[n.Children[1]].idx != 1 {
		t.Fatal("second child index wrong")
	}
}

func TestPreorderIndex(t *testing.T) {
	st := NewSymbolTable()
	a := st.InternElement("a")
	b := st.InternElement("b")
	// a(b(⊥,⊥), ⊥): preorder = a, b, ⊥, ⊥, ⊥
	n := New(Term(a), New(Term(b), NewBottom(), NewBottom()), NewBottom())
	if n.PreorderIndex(0) != n {
		t.Fatal("index 0 must be the root")
	}
	if n.PreorderIndex(1).Label != Term(b) {
		t.Fatal("index 1 must be b")
	}
	if n.PreorderIndex(4) != n.Children[1] {
		t.Fatal("index 4 must be the last ⊥")
	}
	if n.PreorderIndex(5) != nil {
		t.Fatal("out of range must be nil")
	}
}

func TestMaxParamAndCountLabel(t *testing.T) {
	st := NewSymbolTable()
	a := st.InternElement("a")
	n := New(Term(a), New(Param(1)), New(Term(a), New(Param(2)), NewBottom()))
	if n.MaxParam() != 2 {
		t.Fatalf("MaxParam = %d, want 2", n.MaxParam())
	}
	if n.CountLabel(Term(a)) != 2 {
		t.Fatal("CountLabel(a) should be 2")
	}
	if n.CountLabel(Bottom) != 1 {
		t.Fatal("CountLabel(⊥) should be 1")
	}
}

// randomUnranked builds a random unranked tree with exactly n nodes.
func randomUnranked(rng *rand.Rand, n int, labels []string) *Unranked {
	root := &Unranked{Label: labels[rng.Intn(len(labels))]}
	nodes := []*Unranked{root}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := &Unranked{Label: labels[rng.Intn(len(labels))]}
		p.Children = append(p.Children, c)
		nodes = append(nodes, c)
	}
	return root
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := []string{"a", "b", "c", "d"}
	for i := 0; i < 50; i++ {
		u := randomUnranked(rng, 1+rng.Intn(60), labels)
		doc := u.Binary()
		if err := doc.ValidateBinary(); err != nil {
			t.Fatalf("invalid binary encoding: %v", err)
		}
		back, err := doc.ToUnranked()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(u, back) {
			t.Fatalf("round trip mismatch:\n%v\n%v", u, back)
		}
		if doc.BinaryEdges() != u.Edges() {
			t.Fatalf("BinaryEdges = %d, want %d", doc.BinaryEdges(), u.Edges())
		}
	}
}

func TestBinaryEncodingShape(t *testing.T) {
	// Paper Fig. 1: f(a,a,a) with nested a's. Simplest check: f with two
	// a children encodes as f(a(⊥, a(⊥,⊥)), ⊥).
	u := NewUnranked("f", NewUnranked("a"), NewUnranked("a"))
	doc := u.Binary()
	f := doc.Root
	if doc.Syms.Name(f.Label.ID) != "f" {
		t.Fatal("root must be f")
	}
	if !f.Children[1].Label.IsBottom() {
		t.Fatal("root next-sibling must be ⊥")
	}
	a1 := f.Children[0]
	if doc.Syms.Name(a1.Label.ID) != "a" || !a1.Children[0].Label.IsBottom() {
		t.Fatal("first child must be a with ⊥ first-child")
	}
	a2 := a1.Children[1]
	if doc.Syms.Name(a2.Label.ID) != "a" {
		t.Fatal("second child must be chained as next-sibling")
	}
	if !a2.Children[1].Label.IsBottom() {
		t.Fatal("last sibling's next-sibling must be ⊥")
	}
}

func TestBinaryNodeCount(t *testing.T) {
	// A binary encoding of an unranked tree with n nodes has exactly
	// 2n+1 nodes (each element contributes itself + one ⊥ closes each
	// child list and each sibling chain).
	cfg := &quick.Config{MaxCount: 30}
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(size)%80
		u := randomUnranked(rng, n, []string{"x", "y"})
		return u.Binary().Root.Size() == 2*n+1
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseAndWriteXML(t *testing.T) {
	src := `<?xml version="1.0"?><site><regions><item id="1">text</item><item/></regions><people/></site>`
	u, err := ParseXML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := NewUnranked("site",
		NewUnranked("regions", NewUnranked("item"), NewUnranked("item")),
		NewUnranked("people"))
	if !reflect.DeepEqual(u, want) {
		t.Fatalf("parse mismatch: %+v", u)
	}
	var buf bytes.Buffer
	if err := WriteXML(&buf, u); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "<site><regions><item/><item/></regions><people/></site>" {
		t.Fatalf("serialize mismatch: %s", got)
	}
	// Round trip through text.
	u2, err := ParseXML(&buf)
	if err == nil {
		err = func() error { return nil }()
	}
	_ = u2
}

func TestParseXMLErrors(t *testing.T) {
	cases := []string{
		``,
		`<a><b></a></b>`,
		`<a/><b/>`,
	}
	for _, src := range cases {
		if _, err := ParseXML(strings.NewReader(src)); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestXMLTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		u := randomUnranked(rng, 1+rng.Intn(40), []string{"a", "b", "c"})
		var buf bytes.Buffer
		if err := WriteXML(&buf, u); err != nil {
			t.Fatal(err)
		}
		back, err := ParseXML(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(u, back) {
			t.Fatal("XML text round trip mismatch")
		}
	}
}

func TestUnrankedStats(t *testing.T) {
	u := NewUnranked("r",
		NewUnranked("a", NewUnranked("b")),
		NewUnranked("c"))
	if u.Nodes() != 4 || u.Edges() != 3 {
		t.Fatalf("nodes/edges = %d/%d", u.Nodes(), u.Edges())
	}
	if u.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", u.Depth())
	}
}

func TestFormatString(t *testing.T) {
	st := NewSymbolTable()
	a := st.InternElement("a")
	n := New(Term(a), New(Param(1)), New(Nonterm(3), NewBottom()))
	got := n.Format(st)
	if got != "a(y1,N3(⊥))" {
		t.Fatalf("format = %q", got)
	}
	if !strings.Contains(n.String(), "t1") {
		t.Fatalf("String without table should use t<ID>: %q", n.String())
	}
}
