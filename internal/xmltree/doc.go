package xmltree

import (
	"errors"
	"fmt"
)

// Document bundles a binary-encoded XML structure tree with the symbol
// table that resolves its labels. The tree follows the paper's convention
// (Fig. 1): every element label has rank 2 (first-child, next-sibling) and
// missing children are explicit ⊥ leaves. The virtual document root is the
// first element itself; its next-sibling slot is ⊥.
type Document struct {
	Syms *SymbolTable
	Root *Node
}

// Unranked is a plain unranked ordered tree, the natural shape of an XML
// element structure. It is the interchange form between XML text, the
// binary encoding, and the synthetic dataset generators.
type Unranked struct {
	Label    string
	Children []*Unranked
}

// NewUnranked builds an unranked node.
func NewUnranked(label string, children ...*Unranked) *Unranked {
	return &Unranked{Label: label, Children: children}
}

// Edges returns the edge count of the unranked tree (#element nodes − 1),
// the measure Table III calls "#edges".
func (u *Unranked) Edges() int { return u.Nodes() - 1 }

// Nodes returns the number of element nodes in the unranked tree.
func (u *Unranked) Nodes() int {
	if u == nil {
		return 0
	}
	n := 1
	for _, c := range u.Children {
		n += c.Nodes()
	}
	return n
}

// Depth returns the depth of the unranked tree (root = depth 0, as the
// paper reports depth 2 for a root with record children with fields).
func (u *Unranked) Depth() int {
	if u == nil {
		return -1
	}
	d := 0
	for _, c := range u.Children {
		if cd := c.Depth() + 1; cd > d {
			d = cd
		}
	}
	return d
}

// Binary converts the unranked tree into its binary first-child/next-sibling
// encoding, interning labels into a fresh symbol table.
func (u *Unranked) Binary() *Document {
	st := NewSymbolTable()
	root := encodeBinary(u, st, NewBottom())
	return &Document{Syms: st, Root: root}
}

// BinaryInto converts the unranked tree using an existing symbol table and
// returns the binary root; the next-sibling slot of the root is sibling.
// Fragments inserted into an existing document use the document's table.
func (u *Unranked) BinaryInto(st *SymbolTable, sibling *Node) *Node {
	return encodeBinary(u, st, sibling)
}

func encodeBinary(u *Unranked, st *SymbolTable, sibling *Node) *Node {
	id := st.InternElement(u.Label)
	firstChild := NewBottom()
	// Build the child list right-to-left so each child links to the next.
	for i := len(u.Children) - 1; i >= 0; i-- {
		firstChild = encodeBinary(u.Children[i], st, firstChild)
	}
	return New(Term(id), firstChild, sibling)
}

// ErrNotBinaryXML reports a binary tree that is not a valid encoding of an
// XML structure (wrong ranks or a ⊥ root).
var ErrNotBinaryXML = errors.New("xmltree: not a binary XML encoding")

// ToUnranked decodes the binary document back to the unranked form.
func (d *Document) ToUnranked() (*Unranked, error) {
	if d.Root == nil || d.Root.Label.IsBottom() {
		return nil, ErrNotBinaryXML
	}
	list, err := decodeSiblings(d.Root, d.Syms)
	if err != nil {
		return nil, err
	}
	if len(list) != 1 {
		return nil, fmt.Errorf("%w: root has %d siblings", ErrNotBinaryXML, len(list))
	}
	return list[0], nil
}

func decodeSiblings(n *Node, st *SymbolTable) ([]*Unranked, error) {
	var out []*Unranked
	for !n.Label.IsBottom() {
		if n.Label.Kind != Terminal || len(n.Children) != 2 {
			return nil, fmt.Errorf("%w: node %v", ErrNotBinaryXML, n.Label)
		}
		kids, err := decodeSiblings(n.Children[0], st)
		if err != nil {
			return nil, err
		}
		out = append(out, &Unranked{Label: st.Name(n.Label.ID), Children: kids})
		n = n.Children[1]
	}
	return out, nil
}

// DecodeElement decodes the single element rooted at the binary node n
// (label and descendant structure), ignoring n's next-sibling chain.
func DecodeElement(st *SymbolTable, n *Node) (*Unranked, error) {
	if n.Label.IsBottom() || n.Label.Kind != Terminal {
		return nil, ErrNotBinaryXML
	}
	kids, err := decodeSiblings(n.Children[0], st)
	if err != nil {
		return nil, err
	}
	return &Unranked{Label: st.Name(n.Label.ID), Children: kids}, nil
}

// BinaryEdges returns the edge count of the underlying unranked document,
// computed on the binary tree without decoding: every non-⊥ terminal is an
// element node.
func (d *Document) BinaryEdges() int {
	elems := 0
	d.Root.Walk(func(v *Node) bool {
		if v.Label.Kind == Terminal && !v.Label.IsBottom() {
			elems++
		}
		return true
	})
	return elems - 1
}

// ValidateBinary checks that the tree is a well-formed binary encoding:
// every non-⊥ terminal has exactly two children, ⊥ has none, and no
// nonterminals or parameters occur.
func (d *Document) ValidateBinary() error {
	var err error
	d.Root.Walk(func(v *Node) bool {
		switch {
		case v.Label.Kind != Terminal:
			err = fmt.Errorf("%w: non-terminal %v in document", ErrNotBinaryXML, v.Label)
		case v.Label.IsBottom() && len(v.Children) != 0:
			err = fmt.Errorf("%w: ⊥ with children", ErrNotBinaryXML)
		case !v.Label.IsBottom() && len(v.Children) != 2:
			err = fmt.Errorf("%w: element with %d children", ErrNotBinaryXML, len(v.Children))
		}
		return err == nil
	})
	return err
}
