package xmltree

// Arena is a chunked allocator for Nodes and their Children slices, with a
// freelist for nodes the caller can prove dead. The compressors allocate
// millions of short-lived grammar nodes (rule-body copies, inlined version
// templates, digram patterns); allocating them in chunks amortizes the
// allocator cost to one heap allocation per chunk and keeps the nodes
// cache-adjacent.
//
// Nodes handed out by an arena are ordinary *Node values: they may outlive
// the arena (the chunks stay reachable through them) and may be mixed
// freely with heap-allocated nodes. Free returns a single node to the
// arena's freelist for reuse; the caller must guarantee that no reference
// to the node survives — in particular that the pointer is not a key in
// any live map or registered in a live Aux-indexed table (a recycled
// pointer would alias the stale entry).
//
// All methods are nil-receiver safe: a nil *Arena falls back to plain heap
// allocation, so arena use can be threaded through optional parameters.
type Arena struct {
	nodes []Node  // current node chunk, consumed from the front
	ptrs  []*Node // current Children-slab chunk, consumed from the front
	free  []*Node // recycled nodes
}

const (
	arenaNodeChunk = 1024
	arenaPtrChunk  = 4096
)

// New returns a node with the given label and no children.
func (a *Arena) New(label Symbol) *Node {
	if a == nil {
		return &Node{Label: label}
	}
	if n := len(a.free); n > 0 {
		nd := a.free[n-1]
		a.free = a.free[:n-1]
		nd.Label = label
		// A recycled pointer would pass the self-validation of any
		// Aux-indexed table (editor.locs, isolate.Memo) that still holds
		// the dead node's entry; zeroing Aux makes such a table miss and
		// re-register instead of serving the dead node's data.
		nd.Aux = 0
		nd.Children = nil
		return nd
	}
	if len(a.nodes) == 0 {
		a.nodes = make([]Node, arenaNodeChunk)
	}
	nd := &a.nodes[0]
	a.nodes = a.nodes[1:]
	nd.Label = label
	return nd
}

// Children returns a zeroed []*Node of length (and capacity) n carved from
// the arena's pointer slab. Appending past n falls back to an ordinary
// heap-grown slice, so the slices behave like any other.
func (a *Arena) Children(n int) []*Node {
	if n == 0 {
		return nil
	}
	if a == nil {
		return make([]*Node, n)
	}
	if len(a.ptrs) < n {
		size := arenaPtrChunk
		if n > size {
			size = n
		}
		a.ptrs = make([]*Node, size)
	}
	s := a.ptrs[:n:n]
	a.ptrs = a.ptrs[n:]
	return s
}

// Free recycles a node into the arena's freelist. The node's Children
// slice is dropped (its slab space is not reclaimed). See the type comment
// for the aliasing obligations.
func (a *Arena) Free(n *Node) {
	if a == nil || n == nil {
		return
	}
	n.Children = nil
	a.free = append(a.free, n)
}

// CopyIn returns a deep copy of the subtree rooted at n, with every node
// and children slice allocated from the arena.
func (n *Node) CopyIn(a *Arena) *Node {
	if n == nil {
		return nil
	}
	cp := a.New(n.Label)
	if len(n.Children) > 0 {
		cp.Children = a.Children(len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.CopyIn(a)
		}
	}
	return cp
}

// CopyMappedIn is CopyMapped with arena allocation.
func (n *Node) CopyMappedIn(m map[*Node]*Node, a *Arena) *Node {
	if n == nil {
		return nil
	}
	cp := a.New(n.Label)
	m[n] = cp
	if len(n.Children) > 0 {
		cp.Children = a.Children(len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.CopyMappedIn(m, a)
		}
	}
	return cp
}
