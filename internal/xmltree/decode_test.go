package xmltree

import (
	"reflect"
	"testing"
)

func TestDecodeElement(t *testing.T) {
	u := NewUnranked("r",
		NewUnranked("a", NewUnranked("x"), NewUnranked("y")),
		NewUnranked("b"))
	doc := u.Binary()
	// Preorder 1 is the a element; decoding it must ignore sibling b.
	a := doc.Root.PreorderIndex(1)
	got, err := DecodeElement(doc.Syms, a)
	if err != nil {
		t.Fatal(err)
	}
	want := NewUnranked("a", NewUnranked("x"), NewUnranked("y"))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeElementErrors(t *testing.T) {
	u := NewUnranked("r")
	doc := u.Binary()
	bottom := doc.Root.Children[0]
	if _, err := DecodeElement(doc.Syms, bottom); err == nil {
		t.Fatal("decoding ⊥ must fail")
	}
}

func TestToUnrankedErrors(t *testing.T) {
	st := NewSymbolTable()
	// ⊥ root.
	d := &Document{Syms: st, Root: NewBottom()}
	if _, err := d.ToUnranked(); err == nil {
		t.Fatal("⊥ root must fail")
	}
	// Root with a non-⊥ next-sibling (two roots).
	a := st.InternElement("a")
	d = &Document{Syms: st, Root: New(Term(a), NewBottom(), New(Term(a), NewBottom(), NewBottom()))}
	if _, err := d.ToUnranked(); err == nil {
		t.Fatal("multi-root must fail")
	}
}

func TestValidateBinaryErrors(t *testing.T) {
	st := NewSymbolTable()
	a := st.InternElement("a")
	cases := []*Node{
		New(Nonterm(1)),                                 // nonterminal in a document
		New(Term(a), NewBottom()),                       // wrong arity
		{Label: Bottom, Children: []*Node{NewBottom()}}, // ⊥ with children
	}
	for i, root := range cases {
		d := &Document{Syms: st, Root: root}
		if err := d.ValidateBinary(); err == nil {
			t.Fatalf("case %d must fail", i)
		}
	}
}
