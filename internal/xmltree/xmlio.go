package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
)

// ParseXML reads an XML document and returns its element structure as an
// unranked tree. All non-element content (text, attributes, comments,
// processing instructions) is stripped, matching the paper's structure-only
// datasets.
func ParseXML(r io.Reader) (*Unranked, error) {
	dec := xml.NewDecoder(r)
	var stack []*Unranked
	var root *Unranked
	for {
		tok, err := dec.Token()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Unranked{Label: t.Name.Local}
			if len(stack) == 0 {
				if root != nil {
					return nil, errors.New("xmltree: multiple document roots")
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmltree: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return nil, errors.New("xmltree: unexpected EOF inside element")
	}
	if root == nil {
		return nil, errors.New("xmltree: no root element")
	}
	return root, nil
}

// WriteXML serializes the unranked tree as structure-only XML.
func WriteXML(w io.Writer, u *Unranked) error {
	return writeXML(w, u)
}

func writeXML(w io.Writer, u *Unranked) error {
	if len(u.Children) == 0 {
		_, err := fmt.Fprintf(w, "<%s/>", u.Label)
		return err
	}
	if _, err := fmt.Fprintf(w, "<%s>", u.Label); err != nil {
		return err
	}
	for _, c := range u.Children {
		if err := writeXML(w, c); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "</%s>", u.Label)
	return err
}
