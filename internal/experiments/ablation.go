package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/treerepair"
)

// AblationRow records the effect of the two design choices DESIGN.md
// calls out, on one corpus: the k_in parameter limit (digram rank cap)
// and the Algorithm 8 fragment-export optimization.
type AblationRow struct {
	Name string

	// Final grammar size under different k_in values (TreeRePair).
	SizeKin2, SizeKin4, SizeKin8 int

	// GrammarRePair recompression of the TreeRePair grammar with and
	// without the optimization: max intermediate size and runtime.
	OptMax int
	OptDur time.Duration
	NonMax int
	NonDur time.Duration
}

// Ablation sweeps k_in ∈ {2,4,8} over TreeRePair and toggles the
// fragment-export optimization of GrammarRePair on every corpus.
// Expectations: k_in = 4 (the paper's default) is on the sweet spot —
// k_in = 2 forbids the rank-3 element+element digrams of the binary
// encoding and hurts badly; k_in = 8 buys little; and the optimization
// bounds the intermediate grammar especially on the exponentially
// compressing corpora.
func Ablation(cfg Config) []AblationRow {
	cfg.printf("Ablation — k_in sweep and optimization toggle\n")
	cfg.printf("%-13s %9s %9s %9s | %9s %10s | %9s %10s\n",
		"dataset", "kin=2", "kin=4", "kin=8", "opt max", "opt time", "non max", "non time")
	var rows []AblationRow
	for _, c := range datasets.Corpora() {
		u := c.Generate(cfg.Scale, cfg.Seed)
		doc := u.Binary()
		g2, _ := treerepair.Compress(doc, treerepair.Options{MaxRank: 2})
		g4, _ := treerepair.Compress(doc, treerepair.Options{MaxRank: 4})
		g8, _ := treerepair.Compress(doc, treerepair.Options{MaxRank: 8})

		t0 := time.Now()
		_, stOpt := core.Compress(g4, core.Options{})
		dOpt := time.Since(t0)
		t1 := time.Now()
		_, stNon := core.Compress(g4, core.Options{NoOptimize: true})
		dNon := time.Since(t1)

		row := AblationRow{
			Name:     c.Name,
			SizeKin2: g2.Size(), SizeKin4: g4.Size(), SizeKin8: g8.Size(),
			OptMax: stOpt.MaxIntermediate, OptDur: dOpt,
			NonMax: stNon.MaxIntermediate, NonDur: dNon,
		}
		rows = append(rows, row)
		cfg.printf("%-13s %9d %9d %9d | %9d %10s | %9d %10s\n",
			row.Name, row.SizeKin2, row.SizeKin4, row.SizeKin8,
			row.OptMax, row.OptDur.Round(time.Millisecond),
			row.NonMax, row.NonDur.Round(time.Millisecond))
	}
	return rows
}
