// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the synthetic corpora: Table III, the static
// §V-B comparison, Fig. 2 (recompression blow-up), Fig. 3 (effect of the
// optimization), Figs. 4/5 (compression under update sequences), Fig. 6
// (runtime GrammarRePair vs update-decompress-compress) and the §V-C
// space comparison. cmd/benchtables prints them; bench_test.go wraps them
// in testing.B benchmarks. See EXPERIMENTS.md for recorded results.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/grammar"
	"repro/internal/store"
	"repro/internal/treerepair"
	"repro/internal/udc"
	"repro/internal/update"
	"repro/internal/workload"
)

// Config scales the experiments. The zero value is NOT usable; call
// Default() and adjust.
type Config struct {
	Scale   float64   // corpus scale (1.0 = laptop defaults from datasets)
	Seed    int64     // RNG seed for corpora and workloads
	Updates int       // number of ops for Fig. 4/5 (paper: 4000)
	Batch   int       // recompression interval (paper: 100)
	Renames int       // renames for Fig. 6 / space (paper: 300)
	GnMin   int       // smallest Gn exponent for Fig. 3
	GnMax   int       // largest Gn exponent for Fig. 3
	Out     io.Writer // where tables are printed
}

// Default returns the configuration used for the recorded results in
// EXPERIMENTS.md.
func Default(out io.Writer) Config {
	return Config{
		Scale:   1.0,
		Seed:    20160516, // the conference date, for determinism
		Updates: 4000,
		Batch:   100,
		Renames: 300,
		GnMin:   4,
		GnMax:   12,
		Out:     out,
	}
}

func (c Config) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// Table3Row is one row of Table III.
type Table3Row struct {
	Name       string
	Edges      int
	Depth      int
	CEdges     int // GrammarRePair compression result
	RatioPct   float64
	PaperEdges int
	PaperRatio float64
}

// Table3 reproduces Table III: document statistics and GrammarRePair
// compression results per corpus.
func Table3(cfg Config) []Table3Row {
	cfg.printf("Table III — document statistics and GrammarRePair compression\n")
	cfg.printf("%-13s %9s %4s %9s %9s   %s\n", "dataset", "#edges", "dp", "c-edges", "ratio(%)", "paper ratio(%)")
	var rows []Table3Row
	for _, c := range datasets.Corpora() {
		u := c.Generate(cfg.Scale, cfg.Seed)
		doc := u.Binary()
		g, _ := core.CompressDocument(doc, core.Options{})
		row := Table3Row{
			Name:       c.Name,
			Edges:      u.Edges(),
			Depth:      u.Depth(),
			CEdges:     g.Size(),
			RatioPct:   100 * float64(g.Size()) / float64(u.Edges()),
			PaperEdges: c.PaperEdges,
			PaperRatio: c.PaperRatioPct,
		}
		rows = append(rows, row)
		cfg.printf("%-13s %9d %4d %9d %9.3f   %.2f\n",
			row.Name, row.Edges, row.Depth, row.CEdges, row.RatioPct, row.PaperRatio)
	}
	return rows
}

// StaticRow is one row of the §V-B static compression comparison.
type StaticRow struct {
	Name                  string
	Edges                 int
	TreeRePair            int // c-edges by TreeRePair
	GrammarRePairTree     int // c-edges by GrammarRePair applied to the tree
	GrammarRePairGrammar  int // c-edges by GrammarRePair applied to the TreeRePair grammar
	TimeTreeRePair        time.Duration
	TimeGrammarRePairTree time.Duration
}

// Static reproduces the §V-B comparison: TreeRePair vs GrammarRePair
// applied to trees vs GrammarRePair applied to grammars. The paper's
// claim: all three compress about equally well, with GrammarRePair
// winning on the extremely compressible files.
func Static(cfg Config) []StaticRow {
	cfg.printf("§V-B static compression — c-edges by compressor\n")
	cfg.printf("%-13s %9s %10s %10s %10s\n", "dataset", "#edges", "TreeRP", "GrRP/tree", "GrRP/gram")
	var rows []StaticRow
	for _, c := range datasets.Corpora() {
		u := c.Generate(cfg.Scale, cfg.Seed)
		doc := u.Binary()
		t0 := time.Now()
		gTR, _ := treerepair.Compress(doc, treerepair.Options{})
		dTR := time.Since(t0)
		t1 := time.Now()
		gGT, _ := core.CompressDocument(doc, core.Options{})
		dGT := time.Since(t1)
		gGG, _ := core.Compress(gTR, core.Options{})
		row := StaticRow{
			Name: c.Name, Edges: u.Edges(),
			TreeRePair: gTR.Size(), GrammarRePairTree: gGT.Size(), GrammarRePairGrammar: gGG.Size(),
			TimeTreeRePair: dTR, TimeGrammarRePairTree: dGT,
		}
		rows = append(rows, row)
		cfg.printf("%-13s %9d %10d %10d %10d\n",
			row.Name, row.Edges, row.TreeRePair, row.GrammarRePairTree, row.GrammarRePairGrammar)
	}
	return rows
}

// Fig2Row is one bar of Fig. 2: blow-up while recompressing a grammar.
type Fig2Row struct {
	Name            string
	InputGrammar    int     // |G| fed to GrammarRePair
	MaxIntermediate int     // max |G| during the run
	Final           int     // |G| after the run
	BlowUp          float64 // MaxIntermediate / Final
	FinalRatioPct   float64 // final grammar vs document edges
	AtMaxRatioPct   float64 // intermediate max vs document edges
}

// Fig2 reproduces the blow-up measurement: compress each corpus with
// TreeRePair, run GrammarRePair over the resulting grammar, and record
// max intermediate grammar size / final grammar size. Paper: worst just
// over 2 (exponential corpora), a few percent above 1 elsewhere.
func Fig2(cfg Config) []Fig2Row {
	cfg.printf("Fig. 2 — blow-up during grammar recompression\n")
	cfg.printf("%-13s %9s %9s %9s %8s %10s %10s\n",
		"dataset", "|G_in|", "max|G|", "|G_fin|", "blow-up", "ratio(%)", "ratio@max(%)")
	var rows []Fig2Row
	for _, c := range datasets.Corpora() {
		u := c.Generate(cfg.Scale, cfg.Seed)
		doc := u.Binary()
		gin, _ := treerepair.Compress(doc, treerepair.Options{})
		gout, st := core.Compress(gin, core.Options{})
		row := Fig2Row{
			Name:            c.Name,
			InputGrammar:    gin.Size(),
			MaxIntermediate: st.MaxIntermediate,
			Final:           gout.Size(),
			FinalRatioPct:   100 * float64(gout.Size()) / float64(u.Edges()),
			AtMaxRatioPct:   100 * float64(st.MaxIntermediate) / float64(u.Edges()),
		}
		if row.Final > 0 {
			row.BlowUp = float64(row.MaxIntermediate) / float64(row.Final)
		}
		rows = append(rows, row)
		cfg.printf("%-13s %9d %9d %9d %8.2f %10.3f %10.3f\n",
			row.Name, row.InputGrammar, row.MaxIntermediate, row.Final,
			row.BlowUp, row.FinalRatioPct, row.AtMaxRatioPct)
	}
	return rows
}

// Fig3Row is one data point of Fig. 3 (optimized vs non-optimized).
type Fig3Row struct {
	N            int
	InputEdges   int   // |Gn|
	StringLength int64 // length of the generated string
	OptFinal     int
	OptMax       int
	OptBlowUp    float64
	OptTime      time.Duration
	NonFinal     int
	NonMax       int
	NonBlowUp    float64
	NonTime      time.Duration
}

// Fig3 reproduces the optimization effect on the Gn family: with
// Algorithm 8 the blow-up stays small and roughly constant; without it
// the blow-up grows with the (exponentially long) string.
func Fig3(cfg Config) []Fig3Row {
	cfg.printf("Fig. 3 — effect of the fragment-export optimization (Gn family)\n")
	cfg.printf("%3s %7s %11s | %7s %7s %8s %10s | %7s %8s %8s %10s\n",
		"n", "|Gn|", "string", "optFin", "optMax", "optBlow", "optTime",
		"nonMax", "nonBlow", "nonFin", "nonTime")
	var rows []Fig3Row
	for n := cfg.GnMin; n <= cfg.GnMax; n++ {
		g := datasets.Gn(n)
		t0 := time.Now()
		gOpt, stOpt := core.Compress(g, core.Options{})
		dOpt := time.Since(t0)
		t1 := time.Now()
		gNon, stNon := core.Compress(g, core.Options{NoOptimize: true})
		dNon := time.Since(t1)
		row := Fig3Row{
			N: n, InputEdges: g.Size(), StringLength: datasets.GnStringLength(n),
			OptFinal: gOpt.Size(), OptMax: stOpt.MaxIntermediate,
			OptBlowUp: float64(stOpt.MaxIntermediate) / float64(gOpt.Size()), OptTime: dOpt,
			NonFinal: gNon.Size(), NonMax: stNon.MaxIntermediate,
			NonBlowUp: float64(stNon.MaxIntermediate) / float64(gNon.Size()), NonTime: dNon,
		}
		rows = append(rows, row)
		cfg.printf("%3d %7d %11d | %7d %7d %8.2f %10s | %7d %8.2f %8d %10s\n",
			row.N, row.InputEdges, row.StringLength,
			row.OptFinal, row.OptMax, row.OptBlowUp, row.OptTime,
			row.NonMax, row.NonBlowUp, row.NonFinal, row.NonTime)
	}
	return rows
}

// DynamicPoint is one measurement of Figs. 4/5 after a batch of updates.
type DynamicPoint struct {
	Updates        int
	NaiveSize      int     // |G| with no recompression
	RecompSize     int     // |G| after GrammarRePair recompression
	ScratchSize    int     // |G| after decompress + TreeRePair from scratch
	NaiveOverhead  float64 // NaiveSize / ScratchSize
	RecompOverhead float64 // RecompSize / ScratchSize
}

// DynamicResult is the Figs. 4/5 series for one corpus.
type DynamicResult struct {
	Name   string
	Points []DynamicPoint
}

// Dynamic reproduces the Figs. 4/5 protocol for one corpus: an
// inverse-seeded sequence of cfg.Updates operations (90 % inserts, 10 %
// deletes) runs against two Stores — one never recompressed (top
// plots), one recompressed by GrammarRePair every cfg.Batch updates
// (bottom plots) — and both are compared against recompression from
// scratch. Both tracks route through store.Store, so every operation
// uses the cached-size-vector path with one garbage collection per
// batch; recompression stays on the paper's fixed every-cfg.Batch
// schedule (the Stores' auto policy is disabled) to keep the protocol
// comparable with the figures.
func Dynamic(cfg Config, c datasets.Corpus) (*DynamicResult, error) {
	u := c.Generate(cfg.Scale, cfg.Seed)
	seq, err := workload.Updates(u, cfg.Updates, 90, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	g0, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
	naive := store.New(g0.Clone(), store.Config{Ratio: -1})
	rec := store.New(g0, store.Config{Ratio: -1})

	res := &DynamicResult{Name: c.Name}
	cfg.printf("Fig. 4/5 dynamic — %s (%d updates, batch %d)\n", c.Name, len(seq.Ops), cfg.Batch)
	cfg.printf("%8s %10s %10s %10s %12s %12s\n",
		"#updates", "naive|G|", "recomp|G|", "scratch|G|", "naive ovh", "recomp ovh")
	for done := 0; done < len(seq.Ops); {
		end := done + cfg.Batch
		if end > len(seq.Ops) {
			end = len(seq.Ops)
		}
		batch := seq.Ops[done:end]
		if err := naive.ApplyAll(batch); err != nil {
			return nil, fmt.Errorf("naive track: %w", err)
		}
		if err := rec.ApplyAll(batch); err != nil {
			return nil, fmt.Errorf("recomp track: %w", err)
		}
		done = end

		rec.Recompress()

		// Scoped read: udc.Recompress neither mutates nor retains its
		// input, so no Snapshot deep copy is needed.
		var scratch *grammar.Grammar
		if err := rec.Query(func(g *grammar.Grammar) error {
			s, _, err := udc.Recompress(g, treerepair.Options{}, 0)
			scratch = s
			return err
		}); err != nil {
			return nil, err
		}
		pt := DynamicPoint{
			Updates:     done,
			NaiveSize:   naive.Size(),
			RecompSize:  rec.Size(),
			ScratchSize: scratch.Size(),
		}
		if pt.ScratchSize > 0 {
			pt.NaiveOverhead = float64(pt.NaiveSize) / float64(pt.ScratchSize)
			pt.RecompOverhead = float64(pt.RecompSize) / float64(pt.ScratchSize)
		}
		res.Points = append(res.Points, pt)
		cfg.printf("%8d %10d %10d %10d %12.4f %12.4f\n",
			pt.Updates, pt.NaiveSize, pt.RecompSize, pt.ScratchSize,
			pt.NaiveOverhead, pt.RecompOverhead)
	}
	return res, nil
}

// DynamicAll runs Dynamic over the moderate (Fig. 4) or extreme (Fig. 5)
// corpora.
func DynamicAll(cfg Config, moderate bool) ([]*DynamicResult, error) {
	var out []*DynamicResult
	for _, c := range datasets.Corpora() {
		if c.Moderate != moderate {
			continue
		}
		r, err := Dynamic(cfg, c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig6Row is one group of bars of Fig. 6 plus the §V-C space numbers.
type Fig6Row struct {
	Name  string
	Edges int

	Decompress    time.Duration // expanding the updated grammar
	TreeRePair    time.Duration // compressing the expanded tree (TreeRePair)
	GrammarRePTre time.Duration // compressing the expanded tree (GrammarRePair)
	GrammarRePair time.Duration // recompressing the grammar directly

	// Ratios as plotted: recompression time over decompress+compress.
	RatioVsTreeRP  float64
	RatioVsGrRPTre float64

	// §V-C space: peak working set in nodes.
	SpaceGrammarRP int
	SpaceUDC       int
	SpaceRatio     float64
}

// Fig6 reproduces the runtime comparison: 300 random renames to fresh
// labels, then recompression by (a) decompress + TreeRePair, (b)
// decompress + GrammarRePair-on-tree, (c) GrammarRePair on the grammar.
// The paper: (c) loses only on the smallest file and wins increasingly
// with size; it also uses a small fraction of udc's space.
func Fig6(cfg Config) ([]Fig6Row, error) {
	cfg.printf("Fig. 6 — recompression runtime after %d renames (+ §V-C space)\n", cfg.Renames)
	cfg.printf("%-13s %9s %10s %10s %10s %10s %8s %8s %10s\n",
		"dataset", "#edges", "decomp", "TreeRP", "GrRP/tree", "GrRP/gram", "vsTR", "vsGT", "space%")
	var rows []Fig6Row
	for _, c := range datasets.Corpora() {
		u := c.Generate(cfg.Scale, cfg.Seed)
		doc := u.Binary()
		g0, _ := treerepair.Compress(doc, treerepair.Options{})
		ops := workload.Renames(doc, cfg.Renames, cfg.Seed+2)
		g := g0.Clone()
		if err := update.ApplyAll(g, ops); err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}

		t0 := time.Now()
		_, stDirect := core.Compress(g, core.Options{})
		dDirect := time.Since(t0)

		t1 := time.Now()
		tree, err := g.Expand(0)
		if err != nil {
			return nil, err
		}
		dDec := time.Since(t1)

		t2 := time.Now()
		gScr, _ := treerepair.CompressTree(g.Syms, tree, treerepair.Options{})
		dTR := time.Since(t2)

		t3 := time.Now()
		_, _ = core.CompressTree(g.Syms, tree, core.Options{})
		dGT := time.Since(t3)

		row := Fig6Row{
			Name: c.Name, Edges: u.Edges(),
			Decompress: dDec, TreeRePair: dTR, GrammarRePTre: dGT, GrammarRePair: dDirect,
			RatioVsTreeRP:  float64(dDirect) / float64(dDec+dTR),
			RatioVsGrRPTre: float64(dDirect) / float64(dDec+dGT),
			SpaceGrammarRP: stDirect.MaxIntermediate,
			SpaceUDC:       tree.Size() + gScr.NodeCount(),
		}
		row.SpaceRatio = 100 * float64(row.SpaceGrammarRP) / float64(row.SpaceUDC)
		rows = append(rows, row)
		cfg.printf("%-13s %9d %10s %10s %10s %10s %8.2f %8.2f %9.2f%%\n",
			row.Name, row.Edges, row.Decompress.Round(time.Millisecond),
			row.TreeRePair.Round(time.Millisecond), row.GrammarRePTre.Round(time.Millisecond),
			row.GrammarRePair.Round(time.Millisecond),
			row.RatioVsTreeRP, row.RatioVsGrRPTre, row.SpaceRatio)
	}
	return rows, nil
}

// All runs every experiment in paper order.
func All(cfg Config) error {
	Table3(cfg)
	cfg.printf("\n")
	Static(cfg)
	cfg.printf("\n")
	Fig2(cfg)
	cfg.printf("\n")
	Fig3(cfg)
	cfg.printf("\n")
	if _, err := DynamicAll(cfg, true); err != nil {
		return err
	}
	cfg.printf("\n")
	if _, err := DynamicAll(cfg, false); err != nil {
		return err
	}
	cfg.printf("\n")
	_, err := Fig6(cfg)
	return err
}
