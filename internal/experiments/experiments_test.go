package experiments

import (
	"io"
	"strings"
	"testing"

	"repro/internal/datasets"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	cfg := Default(io.Discard)
	cfg.Scale = 0.01
	cfg.Updates = 60
	cfg.Batch = 20
	cfg.Renames = 15
	cfg.GnMin = 3
	cfg.GnMax = 5
	return cfg
}

func TestTable3Shapes(t *testing.T) {
	rows := Table3(tiny())
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.CEdges <= 0 || r.Edges <= 0 {
			t.Fatalf("%s: empty row", r.Name)
		}
		if r.RatioPct <= 0 || r.RatioPct > 100 {
			t.Fatalf("%s: ratio %.2f out of range", r.Name, r.RatioPct)
		}
	}
}

func TestStaticComparableCompressors(t *testing.T) {
	rows := Static(tiny())
	for _, r := range rows {
		// All three compressors must land within a factor ~2 of each
		// other (paper: "hardly a difference").
		if r.GrammarRePairTree > 2*r.TreeRePair+40 || r.TreeRePair > 2*r.GrammarRePairTree+40 {
			t.Errorf("%s: TreeRP=%d vs GrRP/tree=%d differ too much", r.Name, r.TreeRePair, r.GrammarRePairTree)
		}
		if r.GrammarRePairGrammar > 2*r.TreeRePair+40 {
			t.Errorf("%s: GrRP/grammar=%d vs TreeRP=%d", r.Name, r.GrammarRePairGrammar, r.TreeRePair)
		}
	}
}

func TestFig2BlowUpBounded(t *testing.T) {
	rows := Fig2(tiny())
	for _, r := range rows {
		if r.BlowUp < 0.9 {
			t.Errorf("%s: blow-up %.2f below 1", r.Name, r.BlowUp)
		}
		if r.BlowUp > 5 {
			t.Errorf("%s: blow-up %.2f too large for the paper's claim (≈2 worst case)", r.Name, r.BlowUp)
		}
	}
}

func TestFig3OptimizationShape(t *testing.T) {
	cfg := tiny()
	cfg.GnMin, cfg.GnMax = 4, 9
	rows := Fig3(cfg)
	first, last := rows[0], rows[len(rows)-1]
	// Optimized blow-up must stay roughly flat; non-optimized must grow
	// with the string.
	if last.OptBlowUp > 4*first.OptBlowUp {
		t.Errorf("optimized blow-up grows: %.2f -> %.2f", first.OptBlowUp, last.OptBlowUp)
	}
	if last.NonBlowUp < 4*last.OptBlowUp {
		t.Errorf("non-optimized blow-up (%.2f) should far exceed optimized (%.2f) at n=%d",
			last.NonBlowUp, last.OptBlowUp, last.N)
	}
	for _, r := range rows {
		if r.OptFinal > r.InputEdges+8 {
			t.Errorf("n=%d: optimized final %d should not exceed input %d", r.N, r.OptFinal, r.InputEdges)
		}
	}
}

func TestDynamicOverheads(t *testing.T) {
	c, _ := datasets.ByShort("XM")
	cfg := tiny()
	res, err := Dynamic(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != cfg.Updates/cfg.Batch {
		t.Fatalf("want %d points, got %d", cfg.Updates/cfg.Batch, len(res.Points))
	}
	for _, p := range res.Points {
		// The recompressed grammar must track scratch closely; naive must
		// never be better than recompressed.
		if p.RecompOverhead > 1.5 {
			t.Errorf("updates=%d: recompression overhead %.3f too large", p.Updates, p.RecompOverhead)
		}
		if p.NaiveSize < p.RecompSize {
			t.Errorf("updates=%d: naive (%d) smaller than recompressed (%d)?", p.Updates, p.NaiveSize, p.RecompSize)
		}
	}
}

func TestDynamicExtremeCorpus(t *testing.T) {
	c, _ := datasets.ByShort("EW")
	cfg := tiny()
	cfg.Updates = 40
	cfg.Batch = 20
	res, err := Dynamic(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Points[len(res.Points)-1]
	// Exponential corpora: naive updates destroy compression (overhead
	// far above recompressed).
	if last.NaiveOverhead < last.RecompOverhead {
		t.Errorf("naive %.2f should exceed recomp %.2f", last.NaiveOverhead, last.RecompOverhead)
	}
}

func TestFig6RowsComplete(t *testing.T) {
	cfg := tiny()
	rows, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.GrammarRePair <= 0 || r.TreeRePair <= 0 || r.Decompress < 0 {
			t.Fatalf("%s: missing timings", r.Name)
		}
		if r.SpaceGrammarRP <= 0 || r.SpaceUDC <= 0 {
			t.Fatalf("%s: missing space numbers", r.Name)
		}
		// GrammarRePair never materializes the tree, so its peak space
		// must be below udc's for every corpus.
		if r.SpaceGrammarRP >= r.SpaceUDC {
			t.Errorf("%s: GrammarRePair space %d not below udc %d", r.Name, r.SpaceGrammarRP, r.SpaceUDC)
		}
	}
}

func TestAllPrints(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	var b strings.Builder
	cfg := tiny()
	cfg.Out = &b
	if err := All(cfg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table III", "Fig. 2", "Fig. 3", "Fig. 4/5", "Fig. 6"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAblationShapes(t *testing.T) {
	rows := Ablation(tiny())
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	for _, r := range rows {
		// Greedy RePair is not strictly monotone in k_in, so allow a few
		// percent of noise; what must hold is the regime: k_in = 2 never
		// helps meaningfully and k_in = 8 never hurts meaningfully.
		slack := r.SizeKin4/20 + 8
		if r.SizeKin2 < r.SizeKin4-slack {
			t.Errorf("%s: kin=2 (%d) beat kin=4 (%d)?", r.Name, r.SizeKin2, r.SizeKin4)
		}
		if r.SizeKin8 > r.SizeKin4+slack {
			t.Errorf("%s: kin=8 (%d) worse than kin=4 (%d)?", r.Name, r.SizeKin8, r.SizeKin4)
		}
		// The optimization must never make the intermediate grammar
		// meaningfully larger (export rules cost a few edges of overhead
		// when there is nothing to share).
		if r.OptMax > r.NonMax+slack {
			t.Errorf("%s: optimized max %d above non-optimized %d", r.Name, r.OptMax, r.NonMax)
		}
	}
}
