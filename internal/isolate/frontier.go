// The persistent isolation frontier: an incrementally maintained
// order-statistic index over the explicit sibling spines that repeated
// isolations leave unfolded in the start rule's right-hand side.
//
// In the binary first-child/next-sibling encoding, a flat document (the
// EXI-Weblog shape) turns into one long chain of next-sibling links.
// After a handful of updates most of that chain is explicit in RHS_S,
// and every further isolation walks it node by node: O(spine) pointer
// chases per op, each of which also evicts the walked nodes' memo
// entries. The frontier turns that walk into a weighted order-statistic
// seek: a spine is stored as a sequence of chunks, each entry carrying
// the exact number of derived-tree nodes its spine node contributes
// before the chain continues (the node itself plus its first-child
// subtree), so descent skips whole chunks by their weight sums and
// touches O(#chunks + chunkCap) entries instead of O(spine).
//
// Index discipline (what keeps the weights exact):
//
//   - Entries are created only from exact sizes: either a completed
//     subtreeSizeWithin walk during a naive descent, or the known node
//     count of a freshly inserted fragment.
//   - Every descent records the entries whose first-child subtree it
//     exits into (the "crossings" — exactly the indexed ancestors of the
//     mutation the caller is about to make). After the mutation, the
//     update layer commits the op's node delta to those weights.
//   - Structural edits at the isolated position itself add or remove
//     one entry in place; a delete additionally purges every spine
//     contained in the detached subtree.
//   - Anything the discipline cannot maintain exactly (saturated
//     counts, an inconsistent chain) drops the affected spine — the
//     index is a cache over the chain, never the truth, so dropping is
//     always safe and later descents simply re-register.
//
// Storage is keyed off Node.Aux through the same self-validating slot
// table the subtree-size memo uses, so membership probes on the descent
// hot path are one bounds-checked slice load, and the two owners can
// never fight over a node: a slot is either a memoized size or a spine
// position, and spine membership wins.
package isolate

import (
	"repro/internal/grammar"
	"repro/internal/xmltree"
)

const (
	// chunkCap is the maximum number of entries per spine chunk; inserts
	// into a full chunk split it.
	chunkCap = 64
	// chunkFill is the chunk occupancy at registration time — slack for
	// in-place inserts before the first split.
	chunkFill = 48
	// minRun is the shortest naively walked sibling run worth indexing;
	// below it the bookkeeping costs more than the walk it saves (the
	// 6-field record bodies of weblog-shaped documents stay unindexed).
	minRun = 16
)

// spine is one indexed maximal chain of last-child links: consecutive
// entries are directly linked (entry j's last child is entry j+1), and
// each entry's weight is the exact number of derived-tree nodes it
// contributes before the chain continues. Two node shapes qualify:
//
//   - an explicit element terminal, whose chain link is the
//     next-sibling child and whose weight is 1 + val(first child);
//   - a rule call whose derivation puts nothing after its last
//     argument (size(A, rank) = 0), whose chain link is that argument
//     and whose weight is everything derived before it — body segments
//     plus earlier arguments.
//
// The second shape is what makes the index bite on exponentially
// compressing corpora: their degraded start RHS is not a flat explicit
// chain but a nest of tail calls, each carrying the rest of the
// document in its last argument, and the naive descent re-measures
// that nest at every level of every op.
type spine struct {
	chunks []*chunk
	slot   int // position in Memo.spines, for swap-removal
}

// chunk is a contiguous run of spine entries with a weight sum, the
// unit of both the seek skip and the cold-segment re-fold.
type chunk struct {
	sp    *spine
	idx   int // position in sp.chunks
	nodes []*xmltree.Node
	w     []int64 // exact weight of entry i (see spine)
	sum   int64   // Σ w, exact (a sum that would saturate drops the spine)
	touch int64   // Memo.tick of the last weight or structure change
}

// chainChild returns the child index the chain continues through — the
// last child, for both entry shapes.
func chainChild(n *xmltree.Node) int { return len(n.Children) - 1 }

// FrontierStats reports the spine index's activity. Steps/Jumps/Skipped
// and the re-fold counters are cumulative; Entries/Spines are gauges of
// the live index.
type FrontierStats struct {
	Steps         int64 // explicit RHS nodes stepped through naively
	Jumps         int64 // indexed seeks taken instead of walking
	Skipped       int64 // spine entries those seeks skipped over
	Registered    int64 // entries ever added to the index
	Folds         int64 // cold chunks folded back into fresh rules
	FoldedEntries int64 // entries those folds removed from the spine

	Entries int // live indexed entries
	Spines  int // live spines
}

// AddCounters accumulates the cumulative counters of o (gauges are
// taken from o as the more recent snapshot). Used when a retiring memo
// folds its history into a longer-lived total.
func (s FrontierStats) AddCounters(o FrontierStats) FrontierStats {
	s.Steps += o.Steps
	s.Jumps += o.Jumps
	s.Skipped += o.Skipped
	s.Registered += o.Registered
	s.Folds += o.Folds
	s.FoldedEntries += o.FoldedEntries
	s.Entries = o.Entries
	s.Spines = o.Spines
	return s
}

// Frontier returns a snapshot of the index counters.
func (m *Memo) Frontier() FrontierStats {
	if m == nil {
		return FrontierStats{}
	}
	return m.stats
}

// DisableIndex turns the spine index off for this memo: descents walk
// naively (subtree-size memoization stays on). Differential tests pin
// byte-identical output of the indexed and the naive descent with it.
func (m *Memo) DisableIndex() { m.noIndex = true }

// beginDescent resets the per-descent scratch and advances the cold
// clock. A slot table past its limit is rebuilt here, between descents,
// when nothing holds chunk references — registration itself must never
// reset (a reset mid-splice would leave freshly stamped slots pointing
// into chunks the reset just detached).
func (m *Memo) beginDescent() {
	if m == nil {
		return
	}
	if len(m.entries) >= memoLimit {
		m.resetSlots()
	}
	m.runN = m.runN[:0]
	m.runW = m.runW[:0]
	m.crossings = m.crossings[:0]
	m.extend = nil
	m.extendAt = nil
	m.tick++
}

// spineAt returns the spine position of n, if n is an indexed entry.
func (m *Memo) spineAt(n *xmltree.Node) (*chunk, int, bool) {
	if m == nil {
		return nil, 0, false
	}
	if a := n.Aux; uint64(a) < uint64(len(m.entries)) {
		if e := &m.entries[a]; e.self == n && e.ck != nil {
			return e.ck, int(e.off), true
		}
	}
	return nil, 0, false
}

// noteCrossing records that the current descent exits into the
// first-child subtree of n: if n is (or just became) an indexed entry,
// the op's node delta must be committed to its weight.
func (m *Memo) noteCrossing(n *xmltree.Node) {
	if m == nil || m.noIndex {
		return
	}
	m.crossings = append(m.crossings, n)
}

// pushRun appends a naively walked spine node (weight = itself plus its
// exact first-child subtree size) to the current run.
func (m *Memo) pushRun(n *xmltree.Node, w int64) {
	if m == nil || m.noIndex {
		return
	}
	m.runN = append(m.runN, n)
	m.runW = append(m.runW, w)
}

// flushRun ends the current naive sibling run and registers it when
// worthwhile. arrivedAt is the indexed entry the walk ran into (nil when
// the run ended for another reason): a run flowing into the head of an
// existing spine is prepended to it, and a run that directly continues a
// spine the same descent just exhausted is appended to that spine even
// below minRun — that is how an append-heavy stream grows one spine
// instead of fragmenting into many.
func (m *Memo) flushRun(arrivedAt *xmltree.Node) {
	if m == nil || m.noIndex {
		return
	}
	run, w := m.runN, m.runW
	ext, extAt := m.extend, m.extendAt
	m.runN, m.runW = run[:0], w[:0]
	m.extend, m.extendAt = nil, nil
	if len(run) == 0 {
		// A seek exhausted ext and the walk ended with no naive material
		// in between — if it ended at another spine's head, the two
		// spines are directly linked (an earlier descent appended the gap,
		// or there never was one): merge them back into one.
		if ext != nil && arrivedAt != nil && arrivedAt == extAt {
			m.maybeMerge(ext, arrivedAt)
		}
		return
	}
	if ext != nil && extAt == run[0] && len(ext.chunks) > 0 {
		m.spliceChunks(ext, len(ext.chunks), run, w)
		// The appended run may have closed a removeSplit gap: if the walk
		// stopped because it arrived at another spine's head, the two
		// spines are now directly linked — merge them back into one.
		m.maybeMerge(ext, arrivedAt)
		return
	}
	if arrivedAt != nil {
		if ck, off, ok := m.spineAt(arrivedAt); ok && off == 0 && ck.idx == 0 {
			// The run flows into the head of ck's spine: prepend.
			m.spliceChunks(ck.sp, 0, run, w)
			return
		}
	}
	if len(run) >= minRun {
		m.registerSpine(run, w)
	}
}

// registerSpine creates a new spine from a run of (node, weight) pairs.
func (m *Memo) registerSpine(nodes []*xmltree.Node, w []int64) {
	sp := &spine{slot: len(m.spines)}
	m.spines = append(m.spines, sp)
	m.stats.Spines++
	m.spliceChunks(sp, 0, nodes, w)
}

// spliceChunks inserts a run as whole new chunks at chunk position at
// of sp, stamping every entry. Runs that would overflow the slot table
// reset the memo first (the limit path), like put does.
func (m *Memo) spliceChunks(sp *spine, at int, nodes []*xmltree.Node, w []int64) {
	var add []*chunk
	for len(nodes) > 0 {
		n := len(nodes)
		if n > chunkFill {
			n = chunkFill
		}
		ck := &chunk{
			sp:    sp,
			nodes: append(make([]*xmltree.Node, 0, chunkCap), nodes[:n]...),
			w:     append(make([]int64, 0, chunkCap), w[:n]...),
			touch: m.tick,
		}
		for _, wi := range ck.w {
			ck.sum = grammar.SatAdd(ck.sum, wi)
		}
		if grammar.Saturated(ck.sum) {
			// Material too large to sum exactly — refuse to index the
			// rest of the run.
			break
		}
		add = append(add, ck)
		nodes, w = nodes[n:], w[n:]
	}
	if len(nodes) > 0 && at < len(sp.chunks) {
		// A partial splice in front of existing chunks would leave an
		// unindexed gap on the chain between the new material and the
		// old entries — breaking the directly-linked invariant seek and
		// pred depend on. Partial is only safe when appending (the spine
		// simply ends earlier); here, stop trusting the spine entirely.
		// The built chunks were never attached or stamped, so they are
		// simply abandoned.
		m.dropSpine(sp)
		return
	}
	if len(add) == 0 {
		if len(sp.chunks) == 0 {
			m.dropSpine(sp)
		}
		return
	}
	sp.chunks = append(sp.chunks[:at], append(add, sp.chunks[at:]...)...)
	for i := at; i < len(sp.chunks); i++ {
		sp.chunks[i].idx = i
	}
	for _, ck := range add {
		for i, n := range ck.nodes {
			m.stampSpine(n, ck, i)
		}
		m.stats.Entries += len(ck.nodes)
		m.stats.Registered += int64(len(ck.nodes))
	}
}

// maybeMerge merges the spine headed by at onto the end of sp when the
// two are directly chain-linked — the re-join of a removeSplit gap once
// the material between the halves is indexed again. No-op unless at
// heads a different live spine and sp's last entry's chain child is at.
func (m *Memo) maybeMerge(sp *spine, at *xmltree.Node) {
	if at == nil || sp == nil || len(sp.chunks) == 0 {
		return
	}
	ck, off, ok := m.spineAt(at)
	if !ok || off != 0 || ck.idx != 0 || ck.sp == nil || ck.sp == sp {
		return
	}
	lc := sp.chunks[len(sp.chunks)-1]
	last := lc.nodes[len(lc.nodes)-1]
	if len(last.Children) == 0 || last.Children[chainChild(last)] != at {
		return
	}
	m.mergeSpines(sp, ck.sp)
}

// mergeSpines concatenates sp2's chunks onto sp1 and retires sp2.
// Chunk identity is preserved, so the Aux slot table needs no
// restamping — only the chunks' back-references and the registry
// change. Entries gauge is untouched (no entry is created or freed).
func (m *Memo) mergeSpines(sp1, sp2 *spine) {
	base := len(sp1.chunks)
	sp1.chunks = append(sp1.chunks, sp2.chunks...)
	for i := base; i < len(sp1.chunks); i++ {
		sp1.chunks[i].sp = sp1
		sp1.chunks[i].idx = i
	}
	sp2.chunks = nil
	// Swap-remove sp2 from the registry without touching its former
	// chunks' slots (they now belong to sp1).
	last := len(m.spines) - 1
	if last >= 0 && sp2.slot <= last && m.spines[sp2.slot] == sp2 {
		m.spines[sp2.slot] = m.spines[last]
		m.spines[sp2.slot].slot = sp2.slot
		m.spines = m.spines[:last]
		m.stats.Spines--
	}
}

// stampSpine claims n's slot for spine membership (replacing any plain
// memoized size). It may grow the table past memoLimit: the overshoot
// is bounded by the live spine entries (attached RHS nodes), and the
// next beginDescent rebuilds the table — resetting here, mid-splice,
// would detach the very chunks the caller is stamping into.
func (m *Memo) stampSpine(n *xmltree.Node, ck *chunk, off int) {
	if a := n.Aux; uint64(a) < uint64(len(m.entries)) {
		if e := &m.entries[a]; e.self == n || e.self == nil {
			e.self = n
			e.ck = ck
			e.off = int32(off)
			return
		}
	}
	n.Aux = int32(len(m.entries))
	m.entries = append(m.entries, memoEntry{self: n, ck: ck, off: int32(off)})
}

// restamp refreshes the slot offsets of ck's entries from position from.
func (m *Memo) restamp(ck *chunk, from int) {
	for i := from; i < len(ck.nodes); i++ {
		m.stampSpine(ck.nodes[i], ck, i)
	}
}

// resetSlots drops the whole slot table AND every spine (spine slots
// cannot survive a table rebuild). Cumulative counters persist.
func (m *Memo) resetSlots() {
	clear(m.entries)
	m.entries = m.entries[:0]
	for _, sp := range m.spines {
		sp.chunks = nil // stale references (a pending extend) must see an empty spine
	}
	m.spines = m.spines[:0]
	m.stats.Entries = 0
	m.stats.Spines = 0
	m.extend, m.extendAt = nil, nil
}

// ResetFrontier drops every spine but keeps plain memoized sizes.
// Called when an op's node delta cannot be maintained exactly
// (saturated counts).
func (m *Memo) ResetFrontier() {
	if m == nil {
		return
	}
	for len(m.spines) > 0 {
		m.dropSpine(m.spines[len(m.spines)-1])
	}
}

// dropSpine forgets a spine entirely, freeing its entries' slots.
func (m *Memo) dropSpine(sp *spine) {
	for _, ck := range sp.chunks {
		m.clearChunkSlots(ck)
	}
	sp.chunks = nil
	// Swap-remove from the registry.
	last := len(m.spines) - 1
	if last >= 0 && sp.slot <= last && m.spines[sp.slot] == sp {
		m.spines[sp.slot] = m.spines[last]
		m.spines[sp.slot].slot = sp.slot
		m.spines = m.spines[:last]
		m.stats.Spines--
	}
}

// clearChunkSlots frees the slots of every entry in ck.
func (m *Memo) clearChunkSlots(ck *chunk) {
	for _, n := range ck.nodes {
		if a := n.Aux; uint64(a) < uint64(len(m.entries)) {
			if e := &m.entries[a]; e.self == n && e.ck == ck {
				e.self = nil
				e.ck = nil
			}
		}
	}
	m.stats.Entries -= len(ck.nodes)
	ck.sp = nil
}

// seek consumes rem derived-tree nodes along the spine starting at
// entry (ck, off). Outcomes:
//
//   - found && local == 0: the target IS entry (eck, eoff); its chain
//     predecessor is the parent (guaranteed to exist — the first entry
//     can never match with rem > 0).
//   - found && local > 0: the target lies inside the first-child
//     subtree of entry (eck, eoff), at offset local-1 within it.
//   - !found: the spine is exhausted; (eck, eoff) is its last entry and
//     local is the remainder to consume at that entry's next-sibling.
func (m *Memo) seek(ck *chunk, off int, rem int64) (eck *chunk, eoff int, local int64, found bool) {
	var cum int64
	// Partial scan of the first chunk.
	for i := off; i < len(ck.nodes); i++ {
		if cum+ck.w[i] > rem {
			m.stats.Skipped += int64(i - off)
			return ck, i, rem - cum, true
		}
		cum += ck.w[i]
	}
	skipped := int64(len(ck.nodes) - off)
	sp := ck.sp
	for k := ck.idx + 1; k < len(sp.chunks); k++ {
		c := sp.chunks[k]
		if cum+c.sum > rem {
			for i := 0; i < len(c.nodes); i++ {
				if cum+c.w[i] > rem {
					m.stats.Skipped += skipped + int64(i)
					return c, i, rem - cum, true
				}
				cum += c.w[i]
			}
		}
		cum += c.sum
		skipped += int64(len(c.nodes))
	}
	m.stats.Skipped += skipped
	lastCk := sp.chunks[len(sp.chunks)-1]
	return lastCk, len(lastCk.nodes) - 1, rem - cum, false
}

// pred returns the chain predecessor of entry (ck, off).
func (m *Memo) pred(ck *chunk, off int) (*xmltree.Node, bool) {
	if off > 0 {
		return ck.nodes[off-1], true
	}
	if ck.idx > 0 {
		p := ck.sp.chunks[ck.idx-1]
		return p.nodes[len(p.nodes)-1], true
	}
	return nil, false
}

// suffixSum returns the total weight of the spine from entry (ck, off)
// on, plus the node the chain continues at after the last entry. Used
// by the memoized size walk to sum an indexed region in O(#chunks).
func (m *Memo) suffixSum(ck *chunk, off int) (int64, *xmltree.Node) {
	var sum int64
	for i := off; i < len(ck.nodes); i++ {
		sum = grammar.SatAdd(sum, ck.w[i])
	}
	sp := ck.sp
	for k := ck.idx + 1; k < len(sp.chunks); k++ {
		sum = grammar.SatAdd(sum, sp.chunks[k].sum)
	}
	lastCk := sp.chunks[len(sp.chunks)-1]
	last := lastCk.nodes[len(lastCk.nodes)-1]
	return sum, last.Children[chainChild(last)]
}

// removeSplit removes entry (ck, off) and splits its spine there: the
// entries before it keep the spine, the entries after become their own
// spine. Used when the descent lands inside a call entry's head — the
// call is about to be unfolded or entered, and whatever replaces it on
// the chain is unindexed material between the two halves.
func (m *Memo) removeSplit(ck *chunk, off int) {
	n := ck.nodes[off]
	if a := n.Aux; uint64(a) < uint64(len(m.entries)) {
		if e := &m.entries[a]; e.self == n && e.ck == ck {
			e.self = nil
			e.ck = nil
		}
	}
	m.stats.Entries--
	sp := ck.sp
	at := ck.idx
	var right *chunk
	if rest := len(ck.nodes) - off - 1; rest > 0 {
		right = &chunk{
			nodes: append(make([]*xmltree.Node, 0, chunkCap), ck.nodes[off+1:]...),
			w:     append(make([]int64, 0, chunkCap), ck.w[off+1:]...),
			touch: m.tick,
		}
		for _, wi := range right.w {
			right.sum += wi
		}
	}
	ck.sum -= ck.w[off]
	if right != nil {
		ck.sum -= right.sum
	}
	ck.nodes = ck.nodes[:off]
	ck.w = ck.w[:off]
	ck.touch = m.tick
	tail := append([]*chunk(nil), sp.chunks[at+1:]...)
	if len(ck.nodes) > 0 {
		sp.chunks = sp.chunks[:at+1]
	} else {
		sp.chunks = sp.chunks[:at]
		ck.sp = nil
	}
	if len(sp.chunks) == 0 {
		m.dropSpine(sp)
	}
	var s2chunks []*chunk
	if right != nil {
		s2chunks = append(s2chunks, right)
	}
	s2chunks = append(s2chunks, tail...)
	m.splitOff(s2chunks)
	if right != nil && right.sp != nil {
		m.restamp(right, 0)
	}
}

// splitOff registers the given chunks as their own fresh spine (the
// second half of a spine split). Shared by removeSplit and fold so the
// registry/idx/gauge bookkeeping lives in one place.
func (m *Memo) splitOff(chunks []*chunk) {
	if len(chunks) == 0 {
		return
	}
	s2 := &spine{slot: len(m.spines), chunks: chunks}
	m.spines = append(m.spines, s2)
	m.stats.Spines++
	for i, c := range chunks {
		c.sp = s2
		c.idx = i
	}
}

// isLast reports whether (ck, off) is the last entry of its spine.
func (m *Memo) isLast(ck *chunk, off int) bool {
	return off == len(ck.nodes)-1 && ck.idx == len(ck.sp.chunks)-1
}

// insertAt inserts a new entry (node n, weight w) at position pos of ck
// (pos may equal len(ck.nodes) to append). O(chunkCap) for the shift
// and restamp, amortized O(1) chunk splits.
func (m *Memo) insertAt(ck *chunk, pos int, n *xmltree.Node, w int64) {
	if s := grammar.SatAdd(ck.sum, w); grammar.Saturated(s) {
		m.dropSpine(ck.sp)
		return
	}
	if len(ck.nodes) >= chunkCap {
		ck, pos = m.split(ck, pos)
	}
	ck.nodes = append(ck.nodes, nil)
	copy(ck.nodes[pos+1:], ck.nodes[pos:])
	ck.nodes[pos] = n
	ck.w = append(ck.w, 0)
	copy(ck.w[pos+1:], ck.w[pos:])
	ck.w[pos] = w
	ck.sum += w
	ck.touch = m.tick
	m.restamp(ck, pos)
	m.stats.Entries++
	m.stats.Registered++
}

// split halves a full chunk and returns the chunk/position the pending
// insert should go to.
func (m *Memo) split(ck *chunk, pos int) (*chunk, int) {
	half := len(ck.nodes) / 2
	nc := &chunk{
		sp:    ck.sp,
		nodes: append(make([]*xmltree.Node, 0, chunkCap), ck.nodes[half:]...),
		w:     append(make([]int64, 0, chunkCap), ck.w[half:]...),
		touch: ck.touch,
	}
	for _, wi := range nc.w {
		nc.sum += wi
	}
	ck.sum -= nc.sum
	ck.nodes = ck.nodes[:half]
	ck.w = ck.w[:half]
	sp := ck.sp
	sp.chunks = append(sp.chunks[:ck.idx+1], append([]*chunk{nc}, sp.chunks[ck.idx+1:]...)...)
	for i := ck.idx + 1; i < len(sp.chunks); i++ {
		sp.chunks[i].idx = i
	}
	m.restamp(nc, 0)
	if pos > half {
		return nc, pos - half
	}
	return ck, pos
}

// removeAt deletes the entry at (ck, off), freeing its slot; empty
// chunks leave the spine, empty spines are dropped.
func (m *Memo) removeAt(ck *chunk, off int) {
	n := ck.nodes[off]
	if a := n.Aux; uint64(a) < uint64(len(m.entries)) {
		if e := &m.entries[a]; e.self == n && e.ck == ck {
			e.self = nil
			e.ck = nil
		}
	}
	ck.sum -= ck.w[off]
	copy(ck.nodes[off:], ck.nodes[off+1:])
	ck.nodes = ck.nodes[:len(ck.nodes)-1]
	copy(ck.w[off:], ck.w[off+1:])
	ck.w = ck.w[:len(ck.w)-1]
	ck.touch = m.tick
	m.stats.Entries--
	if len(ck.nodes) == 0 {
		sp := ck.sp
		sp.chunks = append(sp.chunks[:ck.idx], sp.chunks[ck.idx+1:]...)
		for i := ck.idx; i < len(sp.chunks); i++ {
			sp.chunks[i].idx = i
		}
		ck.sp = nil
		if len(sp.chunks) == 0 {
			m.dropSpine(sp)
		}
		return
	}
	m.restamp(ck, off)
}

// adjustWeight commits a node-count delta to the entry holding n, if n
// is indexed. Weights that can no longer be represented exactly drop
// the spine.
func (m *Memo) adjustWeight(n *xmltree.Node, delta int64) {
	ck, off, ok := m.spineAt(n)
	if !ok {
		return
	}
	nw := ck.w[off] + delta
	ns := ck.sum + delta
	if nw < 1 || grammar.Saturated(nw) || grammar.Saturated(ns) || ns < 0 {
		m.dropSpine(ck.sp)
		return
	}
	ck.w[off] = nw
	ck.sum = ns
	ck.touch = m.tick
}

// applyCrossings commits the op's node delta to every indexed ancestor
// recorded by the descent, then clears the record.
func (m *Memo) applyCrossings(delta int64) {
	for _, n := range m.crossings {
		m.adjustWeight(n, delta)
	}
	m.crossings = m.crossings[:0]
}

// purgeDetached drops every spine with an entry inside the detached
// subtree (the first-child subtree a delete removes). The walk costs
// O(|subtree|) — the same order the delete already paid to size it.
func (m *Memo) purgeDetached(root *xmltree.Node) {
	root.Walk(func(n *xmltree.Node) bool {
		if ck, _, ok := m.spineAt(n); ok {
			m.dropSpine(ck.sp)
		}
		return true
	})
}

// CommitInsert maintains the index after an insert at the isolated
// position p: crossings gain the fragment's delta nodes, and the fresh
// chain head sub becomes one new entry — before p.Node when that was
// itself an entry, or appended when the insert extended an indexed
// spine at its end (the append-heavy stream case).
func (m *Memo) CommitInsert(p Position, sub *xmltree.Node, delta int64) {
	if m == nil || m.noIndex {
		return
	}
	m.applyCrossings(delta)
	if delta <= 0 || grammar.Saturated(delta) {
		return
	}
	if sub.Label.Kind != xmltree.Terminal || len(sub.Children) != 2 {
		return
	}
	if ck, off, ok := m.spineAt(p.Node); ok {
		m.insertAt(ck, off, sub, delta)
		return
	}
	if p.Parent == nil || p.Index != chainChild(p.Parent) {
		return
	}
	if ck, off, ok := m.spineAt(p.Parent); ok {
		if m.isLast(ck, off) {
			m.insertAt(ck, off+1, sub, delta)
		} else {
			// The entry after p.Parent should have been p.Node — the
			// chain and the index disagree, so stop trusting the spine.
			m.dropSpine(ck.sp)
		}
	}
}

// CommitDelete maintains the index after a delete at the isolated
// position p: crossings lose the removed node count, p.Node's own entry
// (if any) leaves the spine, and spines inside the detached first-child
// subtree are purged.
func (m *Memo) CommitDelete(p Position, removed int64) {
	if m == nil || m.noIndex {
		return
	}
	if grammar.Saturated(removed) {
		// The exact count is unknown — every crossed weight is
		// unrecoverable.
		m.crossings = m.crossings[:0]
		m.ResetFrontier()
		return
	}
	m.applyCrossings(-removed)
	if ck, off, ok := m.spineAt(p.Node); ok {
		m.removeAt(ck, off)
	}
	if len(p.Node.Children) > 0 {
		m.purgeDetached(p.Node.Children[0])
	}
}

// RefoldOptions bounds one incremental re-folding pass.
type RefoldOptions struct {
	// MinAge is how many descents a chunk must have gone untouched
	// (no weight change, no structural edit) to count as cold.
	MinAge int64
	// MaxChunks caps how many chunks one pass may fold.
	MaxChunks int
}

// Refold folds cold indexed segments back into fresh rank-1 rules: a
// cold run of contiguous chunks — each entry with its first-child
// subtree — is moved (not copied) into ONE new rule A(y1) whose
// parameter stands for the chain continuation, and the chain
// predecessor now calls A. The derived document is untouched; the
// explicit spine shrinks by the whole run, so descents, clones, and
// recompressions stop paying for material no recent op has looked at —
// and because a run of any length folds into a single rule, cold
// regions no longer degrade into rank-1 rule chains (one rule per
// chunk, the pre-multi-chunk behavior). The rule's size vector is known
// exactly from the run's weight sums, so sizes stays warm without any
// walk. Only interior runs fold (the predecessor entry is the splice
// point); a fold splits the spine at the removed run.
//
// Returns the number of rules minted (folds) and the spine entries they
// absorbed; opt.MaxChunks bounds the chunks covered per pass.
func (m *Memo) Refold(g *grammar.Grammar, sizes *grammar.SizeTable, opt RefoldOptions) (folds, entries int) {
	if m == nil || m.noIndex || sizes == nil {
		return 0, 0
	}
	if opt.MaxChunks <= 0 {
		return 0, 0
	}
	// Snapshot maximal cold runs first: folding splits spines, which
	// reshuffles the registries being iterated.
	var cand [][]*chunk
	for _, sp := range m.spines {
		var cur []*chunk
		for _, ck := range sp.chunks {
			if ck.idx >= 1 && m.tick-ck.touch >= opt.MinAge {
				cur = append(cur, ck)
				continue
			}
			if len(cur) > 0 {
				cand = append(cand, cur)
				cur = nil
			}
		}
		if len(cur) > 0 {
			cand = append(cand, cur)
		}
	}
	chunks := 0
	for _, run := range cand {
		if chunks >= opt.MaxChunks {
			break
		}
		if budget := opt.MaxChunks - chunks; len(run) > budget {
			run = run[:budget]
		}
		// Re-validate against earlier folds this pass: a fold on the same
		// spine dropped chunks or moved them to a fresh split-off spine.
		sp := run[0].sp
		if sp == nil || run[0].idx < 1 {
			continue
		}
		ok := true
		for i, ck := range run {
			if ck.sp != sp || ck.idx != run[0].idx+i {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if n := m.foldRun(g, sizes, run); n > 0 {
			folds++
			entries += n
			chunks += len(run)
		}
	}
	m.stats.Folds += int64(folds)
	m.stats.FoldedEntries += int64(entries)
	return folds, entries
}

// seedMaxDescents bounds SeedChain's search depth: each step descends
// one tree level toward the heaviest subtree, so the bound only bites
// on pathologically deep explicit RHS shapes.
const seedMaxDescents = 64

// seedWeight computes the exact spine weight of n, or ok=false when n
// is neither indexable entry shape (an explicit element terminal or a
// tail call — see the spine doc above). Saturated weights return
// ok=false too: the index only stores exact counts. Off-chain material
// is measured by SubtreeValSize over disjoint subtrees plus callee size
// vectors, never by expanding a rule.
func seedWeight(n *xmltree.Node, sizes *grammar.SizeTable) (int64, bool) {
	switch n.Label.Kind {
	case xmltree.Terminal:
		if len(n.Children) != 2 {
			return 0, false // ⊥ leaf
		}
		w := grammar.SatAdd(1, grammar.SubtreeValSize(n.Children[0], sizes))
		return w, !grammar.Saturated(w)
	case xmltree.Nonterminal:
		sv := sizes.Get(n.Label.ID)
		k := len(n.Children)
		if sv == nil || k == 0 || len(sv.Seg) != k+1 || sv.Seg[k] != 0 {
			return 0, false // not a tail call: material derives after the last argument
		}
		// Everything derived before the last argument: all body segments
		// (Seg[k] is zero) plus the earlier arguments.
		w := sv.Total
		for i := 0; i < k-1; i++ {
			w = grammar.SatAdd(w, grammar.SubtreeValSize(n.Children[i], sizes))
		}
		return w, w > 0 && !grammar.Saturated(w)
	}
	return 0, false
}

// seedChain searches g's start RHS for the longest maximal chain of
// last-child links reachable without unfolding any rule, and returns it
// as a (node, exact-weight) run — nil when no chain of at least minRun
// qualifying entries exists within seedMaxDescents levels. After a
// recompression the memo is retired with the grammar it served, so
// without seeding every point query on the fresh grammar descends
// naively until write descents happen to re-register runs — the index
// goes dark exactly when the grammar just got cheapest to index.
// Starting at the RHS root the search collects the chain of qualifying
// entries (the same two shapes, with the same exact weights, the write
// descent registers), and when that chain is shorter than the
// registration threshold it descends into the heaviest off-chain
// subtree seen — the material, and with it the long chain, must be down
// there — and retries. The search only reads g and sizes, so it is safe
// on a frozen shared grammar; SeedView packages the run for the
// read side.
func seedChain(g *grammar.Grammar, sizes *grammar.SizeTable) (nodes []*xmltree.Node, w []int64) {
	if sizes == nil {
		return nil, nil
	}
	start := g.StartRule()
	if start == nil {
		return nil, nil
	}
	n := start.RHS
	for depth := 0; n != nil && depth < seedMaxDescents; depth++ {
		nodes, w = nodes[:0], w[:0]
		for c := n; c != nil; {
			wt, ok := seedWeight(c, sizes)
			if !ok {
				break
			}
			nodes = append(nodes, c)
			w = append(w, wt)
			c = c.Children[chainChild(c)]
		}
		if len(nodes) >= minRun {
			return nodes, w
		}
		// Chain too short to be worth indexing — descend into the
		// heaviest element's first-child subtree (tail calls keep their
		// pre-argument material inside the rule body, unreachable without
		// unfolding, so only element entries are descendable).
		var best *xmltree.Node
		var bestW int64 = -1
		for i, e := range nodes {
			if e.Label.Kind == xmltree.Terminal && w[i] > bestW {
				best, bestW = e, w[i]
			}
		}
		// The chain-ending node may dwarf every entry (typically a
		// saturated-weight element carrying the whole document).
		if c := chainEnd(nodes, n); c != nil && c.Label.Kind == xmltree.Terminal && len(c.Children) == 2 {
			if cw := grammar.SatAdd(1, grammar.SubtreeValSize(c.Children[0], sizes)); cw > bestW {
				best = c
			}
		}
		if best == nil {
			return nil, nil
		}
		n = best.Children[0]
	}
	return nil, nil
}

// chainEnd returns the node the collected chain stopped at: the chain
// child of the last entry, or the chain head itself when no entry
// qualified.
func chainEnd(nodes []*xmltree.Node, head *xmltree.Node) *xmltree.Node {
	if len(nodes) == 0 {
		return head
	}
	last := nodes[len(nodes)-1]
	if len(last.Children) == 0 {
		return nil
	}
	return last.Children[chainChild(last)]
}

// foldRun folds one contiguous run of chunks into a single fresh rule;
// returns the number of entries folded (0 = not foldable). The caller
// guarantees the run is contiguous within one spine and does not start
// at chunk 0 (so a chain predecessor exists).
func (m *Memo) foldRun(g *grammar.Grammar, sizes *grammar.SizeTable, run []*chunk) int {
	first := run[0]
	sp := first.sp
	var sum int64
	folded := 0
	for _, ck := range run {
		if len(ck.nodes) == 0 {
			return 0
		}
		sum = grammar.SatAdd(sum, ck.sum)
		folded += len(ck.nodes)
	}
	if grammar.Saturated(sum) {
		return 0
	}
	predNode, ok := m.pred(first, 0)
	if !ok {
		return 0
	}
	head := first.nodes[0]
	if len(predNode.Children) == 0 || predNode.Children[chainChild(predNode)] != head {
		// Chain/index disagreement — the spine cannot be trusted.
		m.dropSpine(sp)
		return 0
	}
	lastCk := run[len(run)-1]
	last := lastCk.nodes[len(lastCk.nodes)-1]
	if len(last.Children) == 0 {
		m.dropSpine(sp)
		return 0
	}
	cont := last.Children[chainChild(last)]

	// Spines nested inside the segment's head subtrees would outlive the
	// move as zombies (the rule body is only ever re-entered as a copy),
	// pinning dead nodes and inflating the Entries gauge the re-fold
	// trigger watches — purge them like a delete purges its detached
	// subtree. The walk is O(segment material), the same order the fold
	// itself moves.
	for _, ck := range run {
		for _, n := range ck.nodes {
			for i := 0; i < len(n.Children)-1; i++ {
				m.purgeDetached(n.Children[i])
			}
		}
	}

	// Detach the whole run into a fresh rule A(y1) and call it in place.
	last.Children[chainChild(last)] = xmltree.New(xmltree.Param(1))
	rule := g.NewRule(1, head)
	predNode.Children[chainChild(predNode)] = xmltree.New(xmltree.Nonterm(rule.ID), cont)
	// The rule derives exactly the run's material before y1:
	// size(A,0) = Σ weights, size(A,1) = 0.
	sizes.Set(rule.ID, &grammar.SizeVectors{Seg: []int64{sum, 0}, Total: sum})

	// Split the spine at the folded run: the chunks before it keep the
	// spine, the chunks after it become their own spine (their chain now
	// hangs off the call's argument).
	for _, ck := range run {
		m.clearChunkSlots(ck)
	}
	at := first.idx
	tail := append([]*chunk(nil), sp.chunks[at+len(run):]...)
	sp.chunks = sp.chunks[:at]
	if len(sp.chunks) == 0 {
		m.dropSpine(sp)
	}
	m.splitOff(tail)
	return folded
}
