package isolate

import (
	"math/rand"
	"testing"

	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/xmltree"
)

func randomUnranked(rng *rand.Rand, n int, labels []string) *xmltree.Unranked {
	root := &xmltree.Unranked{Label: labels[rng.Intn(len(labels))]}
	nodes := []*xmltree.Unranked{root}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := &xmltree.Unranked{Label: labels[rng.Intn(len(labels))]}
		p.Children = append(p.Children, c)
		nodes = append(nodes, c)
	}
	return root
}

// TestIsolateFindsCorrectNode compresses random documents and checks that
// isolating every preorder position yields the same label the plain tree
// has there, and that val is unchanged by the isolation.
func TestIsolateFindsCorrectNode(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		u := randomUnranked(rng, 5+rng.Intn(60), []string{"a", "b", "c"})
		doc := u.Binary()
		total := int64(doc.Root.Size())
		for p := int64(0); p < total; p += 1 + int64(rng.Intn(7)) {
			g, _ := treerepair.Compress(doc, treerepair.Options{})
			pos, err := Isolate(g, p, nil)
			if err != nil {
				t.Fatalf("isolate(%d): %v", p, err)
			}
			wantNode := doc.Root.PreorderIndex(int(p))
			wantName := doc.Syms.Name(wantNode.Label.ID)
			gotName := g.Syms.Name(pos.Node.Label.ID)
			if gotName != wantName {
				t.Fatalf("isolate(%d): label %q, want %q", p, gotName, wantName)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("grammar invalid after isolation: %v", err)
			}
			got, err := g.Expand(0)
			if err != nil {
				t.Fatal(err)
			}
			if !xmltree.Equal(got, doc.Root) {
				t.Fatalf("isolation changed val at p=%d", p)
			}
		}
	}
}

// TestIsolateOnExponentialGrammar reproduces the Section III-A Gexp idea:
// isolating a position deep inside an exponentially compressed list must
// work without expanding the tree.
func TestIsolateOnExponentialGrammar(t *testing.T) {
	root := xmltree.NewUnranked("r")
	for i := 0; i < 4096; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("a"))
	}
	doc := root.Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	baseSize := g.Size()

	// Position 333 of the paper's example: some position deep inside.
	pos, err := Isolate(g, 665, nil) // preorder 665 in the binary tree
	if err != nil {
		t.Fatal(err)
	}
	want := doc.Root.PreorderIndex(665)
	if g.Syms.Name(pos.Node.Label.ID) != doc.Syms.Name(want.Label.ID) {
		t.Fatalf("wrong node isolated")
	}
	// Lemma 1: |iso(G,u)| ≤ 2|G|. The whole grammar after isolation obeys
	// |G'| ≤ 2|G| as well since only the start rule grew.
	if g.Size() > 2*baseSize {
		t.Fatalf("isolation blow-up violates Lemma 1: %d > 2*%d", g.Size(), baseSize)
	}
}

func TestIsolateLemma1ManyPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	u := randomUnranked(rng, 300, []string{"a", "b"})
	doc := u.Binary()
	base, _ := treerepair.Compress(doc, treerepair.Options{})
	total := int64(doc.Root.Size())
	for trial := 0; trial < 40; trial++ {
		g := base.Clone()
		p := int64(rng.Intn(int(total)))
		if _, err := Isolate(g, p, nil); err != nil {
			t.Fatal(err)
		}
		if g.Size() > 2*base.Size() {
			t.Fatalf("Lemma 1 violated at p=%d: %d > 2*%d", p, g.Size(), base.Size())
		}
	}
}

func TestIsolateOutOfRange(t *testing.T) {
	doc := xmltree.NewUnranked("r", xmltree.NewUnranked("a")).Binary()
	g := grammar.FromDocument(doc)
	if _, err := Isolate(g, -1, nil); err == nil {
		t.Fatal("negative position must fail")
	}
	if _, err := Isolate(g, int64(doc.Root.Size()), nil); err == nil {
		t.Fatal("position past the end must fail")
	}
}

func TestIsolateRootPosition(t *testing.T) {
	doc := xmltree.NewUnranked("r", xmltree.NewUnranked("a")).Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	pos, err := Isolate(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pos.Parent != nil {
		t.Fatal("root position must have nil parent")
	}
	if g.Syms.Name(pos.Node.Label.ID) != "r" {
		t.Fatal("root label wrong")
	}
}

func TestNonBottomCount(t *testing.T) {
	u := randomUnranked(rand.New(rand.NewSource(2)), 77, []string{"a"})
	g, _ := treerepair.Compress(u.Binary(), treerepair.Options{})
	n, err := NonBottomCount(g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 77 {
		t.Fatalf("NonBottomCount = %d, want 77", n)
	}
}

// TestGexpPosition333 replays the paper's Section III-A Gexp example: the
// grammar generating a^1024 (as a sibling list under a root) is unfolded
// to make position 333 of the list terminally available. We verify the
// isolated node is exactly the 333rd list element and the grammar stays
// within Lemma 1's bound.
func TestGexpPosition333(t *testing.T) {
	root := xmltree.NewUnranked("f")
	for i := 0; i < 1024; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("a"))
	}
	doc := root.Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	base := g.Size()

	// The k-th list element (1-based) sits at binary preorder 2k-1.
	const k = 333
	pos, err := Isolate(g, 2*k-1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Syms.Name(pos.Node.Label.ID) != "a" {
		t.Fatalf("isolated %q", g.Syms.Name(pos.Node.Label.ID))
	}
	want := doc.Root.PreorderIndex(2*k - 1)
	if doc.Syms.Name(want.Label.ID) != "a" {
		t.Fatal("reference position wrong")
	}
	if g.Size() > 2*base {
		t.Fatalf("Lemma 1 violated: %d > 2*%d", g.Size(), base)
	}
	// Rename it and verify exactly element 333 changed.
	pos.Node.Label = xmltree.Term(g.Syms.InternElement("c"))
	tree, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	un, err := (&xmltree.Document{Syms: g.Syms, Root: tree}).ToUnranked()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range un.Children {
		want := "a"
		if i == k-1 {
			want = "c"
		}
		if c.Label != want {
			t.Fatalf("element %d is %s, want %s", i+1, c.Label, want)
		}
	}
}
