// Package isolate implements path isolation (Section III-A): making the
// node at a given preorder position of val_G(S) terminally available in
// the start rule's right-hand side by unfolding the (unique) derivation
// path to it, using the precomputed size vectors size(A, 0..k).
//
// Lemma 1 guarantees |iso(G,u)| ≤ 2·|G| because every production is
// applied at most once.
package isolate

import (
	"fmt"

	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// Position locates an isolated node inside the start rule's right-hand
// side: the node itself, its parent (nil if it is the RHS root), and its
// child index within the parent.
type Position struct {
	Node   *xmltree.Node
	Parent *xmltree.Node
	Index  int
}

// Replace splices a new subtree into the isolated position and returns it.
func (p Position) Replace(g *grammar.Grammar, sub *xmltree.Node) *xmltree.Node {
	if p.Parent == nil {
		g.StartRule().RHS = sub
	} else {
		p.Parent.Children[p.Index] = sub
	}
	return sub
}

// Memo carries the persistent per-document descent state across
// isolations: memoized val sizes of start-rule subtrees, and the spine
// index of frontier.go — the order-statistic index over explicit
// sibling spines that turns the linear walk down a long unfolded chain
// into a chunk-skipping seek.
//
// Size entries are valid as long as the node's subtree (and every rule
// it calls) is unchanged; Isolate evicts exactly the nodes on its
// derivation path — the ancestors of the mutation the caller is about
// to make — so off-path entries survive from operation to operation and
// repeat isolations stop re-walking the same unchanged sibling
// subtrees. Spine entries are exact weights maintained structurally by
// the CommitInsert/CommitDelete hooks. The owner must drop the memo
// whenever a non-start rule changes (update.Cache clears it together
// with the size vectors).
//
// Storage is a dense slice indexed through Node.Aux (each registered
// node is stamped with its slot) instead of a pointer-keyed map, so the
// per-descent-step probes on the isolation hot path do no hashing. A
// slot speaks for a node only while entries[n.Aux].self == n — stale Aux
// values from other owners (the compressor's editor uses the same
// scratch field) fail that check and simply re-register. One slot holds
// either a memoized size or a spine position, never both: a spine
// node's subtree size changes with every op that lands beyond it (the
// very walks the index skips no longer evict it), so only its
// structurally maintained weight may be trusted.
type Memo struct {
	entries []memoEntry
	spines  []*spine

	// Per-descent scratch, reused so the indexed descent allocates
	// nothing in steady state.
	runN      []*xmltree.Node // current naively walked sibling run
	runW      []int64         // exact weights of that run
	crossings []*xmltree.Node // indexed ancestors the descent exits through
	extend    *spine          // spine the descent exhausted just before the run
	extendAt  *xmltree.Node   // node where the naive continuation began

	tick    int64 // descents started; the cold clock of chunk.touch
	noIndex bool  // naive descent (differential tests / baselines)

	stats FrontierStats
}

// memoEntry is one slot of the dense Aux-indexed table. ck == nil: a
// plain memoized subtree size in val. ck != nil: the node is spine
// entry (ck, off) and val is meaningless.
type memoEntry struct {
	self *xmltree.Node // owner check; nil = evicted slot (reusable)
	val  int64
	ck   *chunk
	off  int32
}

// NewMemo returns an empty memo.
func NewMemo() *Memo { return &Memo{} }

// memoLimit bounds the slot table: entries for subtrees that updates
// have detached keep their nodes alive, so an unbounded table would be
// a leak on delete-heavy streams. Past the limit the table (and with it
// every spine) is simply rebuilt.
const memoLimit = 1 << 18

func (m *Memo) get(n *xmltree.Node) (int64, bool) {
	if m == nil {
		return 0, false
	}
	if a := n.Aux; uint64(a) < uint64(len(m.entries)) {
		if e := &m.entries[a]; e.self == n && e.ck == nil {
			return e.val, true
		}
	}
	return 0, false
}

func (m *Memo) put(n *xmltree.Node, v int64) {
	if a := n.Aux; uint64(a) < uint64(len(m.entries)) {
		if e := &m.entries[a]; e.self == n {
			if e.ck == nil {
				e.val = v
			}
			// Spine entries never hold a size: ops that land beyond a
			// spine node skip it instead of evicting it, so a memoized
			// size there would go stale silently.
			return
		}
		if e := &m.entries[a]; e.self == nil {
			// A slot a previous eviction freed: no live node points here
			// through a passing self check.
			e.self = n
			e.val = v
			e.ck = nil
			return
		}
	}
	if len(m.entries) >= memoLimit {
		// Rebuild: a full table is mostly entries for subtrees that
		// deletes detached — dropping them releases the pinned nodes
		// and makes room for the live working set again. Spines cannot
		// survive the rebuild (their slots die with it); descents
		// re-register them.
		m.resetSlots()
	}
	n.Aux = int32(len(m.entries))
	m.entries = append(m.entries, memoEntry{self: n, val: v})
}

// evict invalidates n's memoized size (a derivation-path ancestor about
// to go stale); the slot is reused by a later put. Spine entries are
// untouched — their weights are maintained structurally, not by path
// eviction.
func (m *Memo) evict(n *xmltree.Node) {
	if m == nil {
		return
	}
	if a := n.Aux; uint64(a) < uint64(len(m.entries)) {
		if e := &m.entries[a]; e.self == n && e.ck == nil {
			e.self = nil
		}
	}
}

// memoMinSubtree is the smallest subtree val size worth an interior memo
// entry. Memoizing every walked node would churn the bounded memo on the
// huge flat sibling chains of weblog-shaped documents; entries below the
// threshold save less than they cost to store.
const memoMinSubtree = 8

// subtreeSizeWithin resolves a child's val size for descent routing: a
// memo hit is exact; otherwise the walk aborts as soon as the size
// provably exceeds limit (the remaining preorder offset) — the caller
// descends into the child then, and an exact size is never needed. Only
// exact sizes are memoized; an aborted child is the descent target and
// would be evicted as a path node anyway.
//
// The walk itself is memo-aware in both directions: it cuts at interior
// nodes whose subtree size is already memoized (or that head an indexed
// spine, whose weight sums are exact), and it memoizes the interior
// subtrees it completes. Successive isolations on a
// repeatedly-unfolded region (the exponential-corpus workload: every op
// walks fresh unfold material around a drifting position) then re-walk
// only the frontier that actually changed, not the whole region.
func subtreeSizeWithin(c *xmltree.Node, sizes *grammar.SizeTable, memo *Memo, limit int64) (int64, bool) {
	if memo == nil {
		return grammar.SubtreeValSizeWithin(c, sizes, limit)
	}
	// walkWithinMemo probes the memo for c itself first, so no separate
	// lookup here.
	acc, ok := walkWithinMemo(c, sizes, memo, limit, 0)
	if ok && acc < memoMinSubtree {
		// The walk memoizes completed subtrees from the interior
		// threshold up; the routing result itself is worth an entry even
		// below it — the same child is re-probed on every later isolation
		// that passes its parent.
		memo.put(c, acc)
	}
	return acc, ok
}

// walkWithinMemo is SubtreeValSizeWithin with memo cuts and interior
// memoization; acc is the running count carried through the recursion
// (no closure, no allocation). Returns (count, count ≤ limit).
func walkWithinMemo(n *xmltree.Node, sizes *grammar.SizeTable, memo *Memo, limit, acc int64) (int64, bool) {
	if v, ok := memo.get(n); ok {
		acc = grammar.SatAdd(acc, v)
		return acc, acc <= limit
	}
	if ck, off, ok := memo.spineAt(n); ok {
		// An indexed spine sums in O(#chunks): every entry's weight is
		// its node plus its first-child subtree, so the walk resumes at
		// the chain continuation after the last entry.
		sum, tail := memo.suffixSum(ck, off)
		acc = grammar.SatAdd(acc, sum)
		if acc > limit {
			return acc, false
		}
		return walkWithinMemo(tail, sizes, memo, limit, acc)
	}
	var self int64 = 1
	if n.Label.Kind == xmltree.Nonterminal {
		self = sizes.Get(n.Label.ID).Total
	}
	sub := self // val size of n's subtree alone
	acc = grammar.SatAdd(acc, self)
	if acc > limit {
		return acc, false
	}
	for _, c := range n.Children {
		before := acc
		var ok bool
		if acc, ok = walkWithinMemo(c, sizes, memo, limit, acc); !ok {
			return acc, false
		}
		sub = grammar.SatAdd(sub, acc-before)
	}
	if sub >= memoMinSubtree {
		memo.put(n, sub)
	}
	return acc, true
}

// Isolate unfolds the grammar along the derivation path to the node with
// the given preorder index (0-based) of val_G(S), mutating only the start
// rule, and returns the now-explicit terminal node. Size vectors may be
// passed in when the caller already computed them (they are valid as long
// as no rule other than the start rule changed); pass nil to compute.
func Isolate(g *grammar.Grammar, preorder int64, sizes *grammar.SizeTable) (Position, error) {
	return IsolateMemo(g, preorder, sizes, nil)
}

// IsolateMemo is Isolate with the persistent descent state shared
// across calls; see Memo for the invalidation contract. With a memo the
// descent both reuses memoized subtree sizes and seeks across indexed
// sibling spines instead of walking them, and it records the indexed
// ancestors of the target so the caller can commit the op's node delta
// (Memo.CommitInsert / Memo.CommitDelete) after mutating.
func IsolateMemo(g *grammar.Grammar, preorder int64, sizes *grammar.SizeTable, memo *Memo) (Position, error) {
	if sizes == nil {
		var err error
		sizes, err = g.ValSizes()
		if err != nil {
			return Position{}, err
		}
	}
	total := sizes.Get(g.Start).Total
	if preorder < 0 || preorder >= total {
		return Position{}, fmt.Errorf("isolate: preorder %d out of range [0,%d)", preorder, total)
	}
	s := g.StartRule()
	var parent *xmltree.Node
	idx := 0
	node := s.RHS
	rem := preorder
	memo.beginDescent()
	indexed := memo != nil && !memo.noIndex
	for {
		// Every node on the derivation path is an ancestor of the
		// mutation the caller makes next: its memoized size is about to
		// go stale, so evict it here (every path node passes through
		// this loop head exactly when it becomes current). Spine entries
		// on the path keep their slots — their weights are adjusted by
		// the commit hooks instead.
		memo.evict(node)
		if node.Label.Kind == xmltree.Terminal && rem == 0 {
			memo.flushRun(nil)
			return Position{Node: node, Parent: parent, Index: idx}, nil
		}
		if indexed {
			if ck, off, ok := memo.spineAt(node); ok {
				memo.flushRun(node)
				memo.stats.Jumps++
				eck, eoff, local, found := memo.seek(ck, off, rem)
				if !found {
					// Spine exhausted: continue at the chain
					// continuation; a following naive run extends
					// this spine.
					last := eck.nodes[eoff]
					li := chainChild(last)
					parent, idx, node = last, li, last.Children[li]
					rem = local
					memo.extend, memo.extendAt = eck.sp, node
					continue
				}
				target := eck.nodes[eoff]
				if target.Label.Kind == xmltree.Nonterminal {
					// The target offset falls before this call's
					// continuation (in its body or an earlier argument):
					// the call is about to be unfolded or entered, so it
					// leaves the index and the spine splits around it.
					// The naive call logic below takes over at the node.
					p, ok := memo.pred(eck, eoff)
					memo.removeSplit(eck, eoff)
					if ok {
						parent, idx = p, chainChild(p)
					}
					node = target
					rem = local
					continue
				}
				if local == 0 {
					// The target IS this entry; its chain predecessor is
					// the parent (the first entry can never match with
					// rem > 0, so it exists).
					p, ok := memo.pred(eck, eoff)
					if !ok {
						return Position{}, fmt.Errorf("isolate: internal spine error (rem=%d)", rem)
					}
					parent, idx, node = p, chainChild(p), target
					rem = 0
					continue
				}
				// Target inside the entry's first-child subtree: the
				// entry's weight covers the mutation to come.
				memo.noteCrossing(target)
				parent, idx, node = target, 0, target.Children[0]
				rem = local - 1
				continue
			}
			memo.stats.Steps++
		}
		switch node.Label.Kind {
		case xmltree.Terminal:
			rem--
			descended := false
			var szC0 int64
			elem := len(node.Children) == 2
			for i, c := range node.Children {
				// Loop invariant: rem < val size of the remaining children.
				// For the last child that makes the containment check — and
				// with it the O(subtree) size walk — redundant. Descending
				// a next-sibling spine (the append-heavy case) always takes
				// the last child, turning the former quadratic re-walk of
				// nested sibling chains into a linear descent (and feeding
				// the run the spine index is built from).
				if i == len(node.Children)-1 {
					if indexed {
						if elem && i == 1 {
							// Sibling step: this node extends the current
							// run with its exact weight (itself plus its
							// first child, whose size iteration 0 computed).
							memo.pushRun(node, 1+szC0)
						} else {
							memo.flushRun(nil)
						}
					}
					parent, idx, node = node, i, c
					descended = true
					break
				}
				sz, exact := subtreeSizeWithin(c, sizes, memo, rem)
				if !exact || rem < sz {
					if indexed {
						if elem && i == 0 {
							if exact {
								// The run may end on this node: its weight
								// is exact even though we descend into its
								// first child — the mutation below is
								// committed to it as a crossing.
								memo.pushRun(node, 1+sz)
							}
							memo.flushRun(nil)
							memo.noteCrossing(node)
						} else {
							memo.flushRun(nil)
						}
					}
					parent, idx, node = node, i, c
					descended = true
					break
				}
				rem -= sz
				if i == 0 {
					szC0 = sz
				}
			}
			if !descended {
				return Position{}, fmt.Errorf("isolate: internal navigation error (rem=%d)", rem)
			}
		case xmltree.Nonterminal:
			sv := sizes.Get(node.Label.ID)
			// val(node) in preorder: Seg[0] body nodes, val(arg1), Seg[1],
			// val(arg2), ..., val(argk), Seg[k]. If the target falls in a
			// body segment we must unfold the rule; if it falls inside an
			// argument we descend without unfolding.
			off := int64(0)
			inBody := rem < sv.Seg[0]
			if !inBody {
				off = sv.Seg[0]
				descended := false
				for i, c := range node.Children {
					// Invariant: rem ≥ off (earlier segments and arguments
					// did not contain the target), so rem-off is a valid
					// abort limit and !exact implies rem < off+sz.
					sz, exact := subtreeSizeWithin(c, sizes, memo, rem-off)
					if !exact || rem < off+sz {
						if indexed {
							if i == len(node.Children)-1 && sv.Seg[i+1] == 0 &&
								off > 0 && !grammar.Saturated(off) {
								// A tail call: the derivation puts nothing
								// after this argument, so the chain runs
								// through it and everything derived before
								// it — body segments plus earlier
								// arguments — is the call's exact weight.
								memo.pushRun(node, off)
							} else {
								memo.flushRun(nil)
							}
						}
						rem -= off
						parent, idx, node = node, i, c
						descended = true
						break
					}
					off += sz
					if rem < off+sv.Seg[i+1] {
						inBody = true
						break
					}
					off += sv.Seg[i+1]
				}
				if descended {
					continue
				}
				if !inBody {
					return Position{}, fmt.Errorf("isolate: internal navigation error in call (rem=%d)", rem)
				}
			}
			// Unfold: inlining does not change val(node) or its preorder,
			// so rem stays put and navigation continues at the body. The
			// body takes the call's place on the chain, so a pending run
			// (and a pending spine extension) continues through it.
			was := node
			node = g.InlineAt(s, parent, idx)
			if parent == nil {
				// Root inline replaced the RHS.
				node = s.RHS
			}
			if memo != nil && memo.extendAt == was {
				memo.extendAt = node
			}
		default:
			return Position{}, fmt.Errorf("isolate: parameter on derivation path")
		}
	}
}

// NonBottomCount returns the number of non-⊥ nodes of val_G(S), i.e. the
// number of element nodes of the encoded document. When the node count
// saturates (exponentially compressing grammars), it returns
// grammar.ErrSaturated instead of a bogus huge count.
func NonBottomCount(g *grammar.Grammar) (int64, error) {
	total, err := g.ValNodeCount()
	if err != nil {
		return 0, err
	}
	if grammar.Saturated(total) {
		return 0, grammar.ErrSaturated
	}
	// In a binary XML encoding with n elements there are n+1 ⊥ leaves:
	// total = 2n+1.
	return (total - 1) / 2, nil
}
