// Package isolate implements path isolation (Section III-A): making the
// node at a given preorder position of val_G(S) terminally available in
// the start rule's right-hand side by unfolding the (unique) derivation
// path to it, using the precomputed size vectors size(A, 0..k).
//
// Lemma 1 guarantees |iso(G,u)| ≤ 2·|G| because every production is
// applied at most once.
package isolate

import (
	"fmt"

	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// Position locates an isolated node inside the start rule's right-hand
// side: the node itself, its parent (nil if it is the RHS root), and its
// child index within the parent.
type Position struct {
	Node   *xmltree.Node
	Parent *xmltree.Node
	Index  int
}

// Replace splices a new subtree into the isolated position and returns it.
func (p Position) Replace(g *grammar.Grammar, sub *xmltree.Node) *xmltree.Node {
	if p.Parent == nil {
		g.StartRule().RHS = sub
	} else {
		p.Parent.Children[p.Index] = sub
	}
	return sub
}

// Isolate unfolds the grammar along the derivation path to the node with
// the given preorder index (0-based) of val_G(S), mutating only the start
// rule, and returns the now-explicit terminal node. Size vectors may be
// passed in when the caller already computed them (they are valid as long
// as no rule other than the start rule changed); pass nil to compute.
func Isolate(g *grammar.Grammar, preorder int64, sizes map[int32]*grammar.SizeVectors) (Position, error) {
	if sizes == nil {
		var err error
		sizes, err = g.ValSizes()
		if err != nil {
			return Position{}, err
		}
	}
	total := sizes[g.Start].Total
	if preorder < 0 || preorder >= total {
		return Position{}, fmt.Errorf("isolate: preorder %d out of range [0,%d)", preorder, total)
	}
	s := g.StartRule()
	var parent *xmltree.Node
	idx := 0
	node := s.RHS
	rem := preorder
	for {
		switch node.Label.Kind {
		case xmltree.Terminal:
			if rem == 0 {
				return Position{Node: node, Parent: parent, Index: idx}, nil
			}
			rem--
			descended := false
			for i, c := range node.Children {
				sz := grammar.SubtreeValSize(c, sizes)
				if rem < sz {
					parent, idx, node = node, i, c
					descended = true
					break
				}
				rem -= sz
			}
			if !descended {
				return Position{}, fmt.Errorf("isolate: internal navigation error (rem=%d)", rem)
			}
		case xmltree.Nonterminal:
			sv := sizes[node.Label.ID]
			// val(node) in preorder: Seg[0] body nodes, val(arg1), Seg[1],
			// val(arg2), ..., val(argk), Seg[k]. If the target falls in a
			// body segment we must unfold the rule; if it falls inside an
			// argument we descend without unfolding.
			off := int64(0)
			inBody := rem < sv.Seg[0]
			if !inBody {
				off = sv.Seg[0]
				descended := false
				for i, c := range node.Children {
					sz := grammar.SubtreeValSize(c, sizes)
					if rem < off+sz {
						rem -= off
						parent, idx, node = node, i, c
						descended = true
						break
					}
					off += sz
					if rem < off+sv.Seg[i+1] {
						inBody = true
						break
					}
					off += sv.Seg[i+1]
				}
				if descended {
					continue
				}
				if !inBody {
					return Position{}, fmt.Errorf("isolate: internal navigation error in call (rem=%d)", rem)
				}
			}
			// Unfold: inlining does not change val(node) or its preorder,
			// so rem stays put and navigation continues at the body.
			node = g.InlineAt(s, parent, idx)
			if parent == nil {
				// Root inline replaced the RHS.
				node = s.RHS
			}
		default:
			return Position{}, fmt.Errorf("isolate: parameter on derivation path")
		}
	}
}

// NonBottomCount returns the number of non-⊥ nodes of val_G(S), i.e. the
// number of element nodes of the encoded document.
func NonBottomCount(g *grammar.Grammar) (int64, error) {
	total, err := g.ValNodeCount()
	if err != nil {
		return 0, err
	}
	// In a binary XML encoding with n elements there are n+1 ⊥ leaves:
	// total = 2n+1.
	return (total - 1) / 2, nil
}
