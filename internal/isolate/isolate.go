// Package isolate implements path isolation (Section III-A): making the
// node at a given preorder position of val_G(S) terminally available in
// the start rule's right-hand side by unfolding the (unique) derivation
// path to it, using the precomputed size vectors size(A, 0..k).
//
// Lemma 1 guarantees |iso(G,u)| ≤ 2·|G| because every production is
// applied at most once.
package isolate

import (
	"fmt"

	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// Position locates an isolated node inside the start rule's right-hand
// side: the node itself, its parent (nil if it is the RHS root), and its
// child index within the parent.
type Position struct {
	Node   *xmltree.Node
	Parent *xmltree.Node
	Index  int
}

// Replace splices a new subtree into the isolated position and returns it.
func (p Position) Replace(g *grammar.Grammar, sub *xmltree.Node) *xmltree.Node {
	if p.Parent == nil {
		g.StartRule().RHS = sub
	} else {
		p.Parent.Children[p.Index] = sub
	}
	return sub
}

// Memo caches val sizes of start-rule subtrees across isolations, keyed
// by node identity. An entry is valid as long as the node's subtree (and
// every rule it calls) is unchanged; Isolate evicts exactly the nodes on
// its derivation path — the ancestors of the mutation the caller is
// about to make — so off-path entries survive from operation to
// operation and repeat isolations stop re-walking the same unchanged
// sibling subtrees. The owner must drop the memo whenever a non-start
// rule changes (update.Cache clears it together with the size vectors).
//
// Storage is a dense slice indexed through Node.Aux (each registered
// node is stamped with its slot) instead of a pointer-keyed map, so the
// per-descent-step probes on the isolation hot path do no hashing. A
// slot speaks for a node only while entries[n.Aux].self == n — stale Aux
// values from other owners (the compressor's editor uses the same
// scratch field) fail that check and simply re-register.
type Memo struct {
	entries []memoEntry
}

type memoEntry struct {
	self *xmltree.Node // owner check; nil = evicted slot (reusable)
	val  int64
}

// NewMemo returns an empty memo.
func NewMemo() *Memo { return &Memo{} }

// memoLimit bounds the memo: entries for subtrees that updates have
// detached keep their nodes alive, so an unbounded memo would be a leak
// on delete-heavy streams. Past the limit the memo is simply rebuilt.
const memoLimit = 1 << 18

func (m *Memo) get(n *xmltree.Node) (int64, bool) {
	if m == nil {
		return 0, false
	}
	if a := n.Aux; uint64(a) < uint64(len(m.entries)) && m.entries[a].self == n {
		return m.entries[a].val, true
	}
	return 0, false
}

func (m *Memo) put(n *xmltree.Node, v int64) {
	if a := n.Aux; uint64(a) < uint64(len(m.entries)) {
		if e := &m.entries[a]; e.self == n || e.self == nil {
			// Own slot, or a slot a previous eviction freed: either way no
			// live node points here through a passing self check.
			e.self = n
			e.val = v
			return
		}
	}
	if len(m.entries) >= memoLimit {
		// Rebuild: a full memo is mostly entries for subtrees that
		// deletes detached — dropping them releases the pinned nodes
		// and makes room for the live working set again.
		clear(m.entries)
		m.entries = m.entries[:0]
	}
	n.Aux = int32(len(m.entries))
	m.entries = append(m.entries, memoEntry{self: n, val: v})
}

// evict invalidates n's entry (a derivation-path ancestor about to go
// stale); the slot is reused by a later put.
func (m *Memo) evict(n *xmltree.Node) {
	if m == nil {
		return
	}
	if a := n.Aux; uint64(a) < uint64(len(m.entries)) && m.entries[a].self == n {
		m.entries[a].self = nil
	}
}

// memoMinSubtree is the smallest subtree val size worth an interior memo
// entry. Memoizing every walked node would churn the bounded memo on the
// huge flat sibling chains of weblog-shaped documents; entries below the
// threshold save less than they cost to store.
const memoMinSubtree = 8

// subtreeSizeWithin resolves a child's val size for descent routing: a
// memo hit is exact; otherwise the walk aborts as soon as the size
// provably exceeds limit (the remaining preorder offset) — the caller
// descends into the child then, and an exact size is never needed. Only
// exact sizes are memoized; an aborted child is the descent target and
// would be evicted as a path node anyway.
//
// The walk itself is memo-aware in both directions: it cuts at interior
// nodes whose subtree size is already memoized, and it memoizes the
// interior subtrees it completes. Successive isolations on a
// repeatedly-unfolded region (the exponential-corpus workload: every op
// walks fresh unfold material around a drifting position) then re-walk
// only the frontier that actually changed, not the whole region.
func subtreeSizeWithin(c *xmltree.Node, sizes *grammar.SizeTable, memo *Memo, limit int64) (int64, bool) {
	if memo == nil {
		return grammar.SubtreeValSizeWithin(c, sizes, limit)
	}
	// walkWithinMemo probes the memo for c itself first, so no separate
	// lookup here.
	acc, ok := walkWithinMemo(c, sizes, memo, limit, 0)
	if ok && acc < memoMinSubtree {
		// The walk memoizes completed subtrees from the interior
		// threshold up; the routing result itself is worth an entry even
		// below it — the same child is re-probed on every later isolation
		// that passes its parent.
		memo.put(c, acc)
	}
	return acc, ok
}

// walkWithinMemo is SubtreeValSizeWithin with memo cuts and interior
// memoization; acc is the running count carried through the recursion
// (no closure, no allocation). Returns (count, count ≤ limit).
func walkWithinMemo(n *xmltree.Node, sizes *grammar.SizeTable, memo *Memo, limit, acc int64) (int64, bool) {
	if v, ok := memo.get(n); ok {
		acc = grammar.SatAdd(acc, v)
		return acc, acc <= limit
	}
	var self int64 = 1
	if n.Label.Kind == xmltree.Nonterminal {
		self = sizes.Get(n.Label.ID).Total
	}
	sub := self // val size of n's subtree alone
	acc = grammar.SatAdd(acc, self)
	if acc > limit {
		return acc, false
	}
	for _, c := range n.Children {
		before := acc
		var ok bool
		if acc, ok = walkWithinMemo(c, sizes, memo, limit, acc); !ok {
			return acc, false
		}
		sub = grammar.SatAdd(sub, acc-before)
	}
	if sub >= memoMinSubtree {
		memo.put(n, sub)
	}
	return acc, true
}

// Isolate unfolds the grammar along the derivation path to the node with
// the given preorder index (0-based) of val_G(S), mutating only the start
// rule, and returns the now-explicit terminal node. Size vectors may be
// passed in when the caller already computed them (they are valid as long
// as no rule other than the start rule changed); pass nil to compute.
func Isolate(g *grammar.Grammar, preorder int64, sizes *grammar.SizeTable) (Position, error) {
	return IsolateMemo(g, preorder, sizes, nil)
}

// IsolateMemo is Isolate with a subtree-size memo shared across calls;
// see Memo for the invalidation contract.
func IsolateMemo(g *grammar.Grammar, preorder int64, sizes *grammar.SizeTable, memo *Memo) (Position, error) {
	if sizes == nil {
		var err error
		sizes, err = g.ValSizes()
		if err != nil {
			return Position{}, err
		}
	}
	total := sizes.Get(g.Start).Total
	if preorder < 0 || preorder >= total {
		return Position{}, fmt.Errorf("isolate: preorder %d out of range [0,%d)", preorder, total)
	}
	s := g.StartRule()
	var parent *xmltree.Node
	idx := 0
	node := s.RHS
	rem := preorder
	for {
		// Every node on the derivation path is an ancestor of the
		// mutation the caller makes next: its memoized size is about to
		// go stale, so evict it here (every path node passes through
		// this loop head exactly when it becomes current).
		memo.evict(node)
		switch node.Label.Kind {
		case xmltree.Terminal:
			if rem == 0 {
				return Position{Node: node, Parent: parent, Index: idx}, nil
			}
			rem--
			descended := false
			for i, c := range node.Children {
				// Loop invariant: rem < val size of the remaining children.
				// For the last child that makes the containment check — and
				// with it the O(subtree) size walk — redundant. Descending
				// a next-sibling spine (the append-heavy case) always takes
				// the last child, turning the former quadratic re-walk of
				// nested sibling chains into a linear descent.
				if i == len(node.Children)-1 {
					parent, idx, node = node, i, c
					descended = true
					break
				}
				sz, exact := subtreeSizeWithin(c, sizes, memo, rem)
				if !exact || rem < sz {
					parent, idx, node = node, i, c
					descended = true
					break
				}
				rem -= sz
			}
			if !descended {
				return Position{}, fmt.Errorf("isolate: internal navigation error (rem=%d)", rem)
			}
		case xmltree.Nonterminal:
			sv := sizes.Get(node.Label.ID)
			// val(node) in preorder: Seg[0] body nodes, val(arg1), Seg[1],
			// val(arg2), ..., val(argk), Seg[k]. If the target falls in a
			// body segment we must unfold the rule; if it falls inside an
			// argument we descend without unfolding.
			off := int64(0)
			inBody := rem < sv.Seg[0]
			if !inBody {
				off = sv.Seg[0]
				descended := false
				for i, c := range node.Children {
					// Invariant: rem ≥ off (earlier segments and arguments
					// did not contain the target), so rem-off is a valid
					// abort limit and !exact implies rem < off+sz.
					sz, exact := subtreeSizeWithin(c, sizes, memo, rem-off)
					if !exact || rem < off+sz {
						rem -= off
						parent, idx, node = node, i, c
						descended = true
						break
					}
					off += sz
					if rem < off+sv.Seg[i+1] {
						inBody = true
						break
					}
					off += sv.Seg[i+1]
				}
				if descended {
					continue
				}
				if !inBody {
					return Position{}, fmt.Errorf("isolate: internal navigation error in call (rem=%d)", rem)
				}
			}
			// Unfold: inlining does not change val(node) or its preorder,
			// so rem stays put and navigation continues at the body.
			node = g.InlineAt(s, parent, idx)
			if parent == nil {
				// Root inline replaced the RHS.
				node = s.RHS
			}
		default:
			return Position{}, fmt.Errorf("isolate: parameter on derivation path")
		}
	}
}

// NonBottomCount returns the number of non-⊥ nodes of val_G(S), i.e. the
// number of element nodes of the encoded document. When the node count
// saturates (exponentially compressing grammars), it returns
// grammar.ErrSaturated instead of a bogus huge count.
func NonBottomCount(g *grammar.Grammar) (int64, error) {
	total, err := g.ValNodeCount()
	if err != nil {
		return 0, err
	}
	if grammar.Saturated(total) {
		return 0, grammar.ErrSaturated
	}
	// In a binary XML encoding with n elements there are n+1 ⊥ leaves:
	// total = 2n+1.
	return (total - 1) / 2, nil
}
