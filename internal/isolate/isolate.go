// Package isolate implements path isolation (Section III-A): making the
// node at a given preorder position of val_G(S) terminally available in
// the start rule's right-hand side by unfolding the (unique) derivation
// path to it, using the precomputed size vectors size(A, 0..k).
//
// Lemma 1 guarantees |iso(G,u)| ≤ 2·|G| because every production is
// applied at most once.
package isolate

import (
	"fmt"

	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// Position locates an isolated node inside the start rule's right-hand
// side: the node itself, its parent (nil if it is the RHS root), and its
// child index within the parent.
type Position struct {
	Node   *xmltree.Node
	Parent *xmltree.Node
	Index  int
}

// Replace splices a new subtree into the isolated position and returns it.
func (p Position) Replace(g *grammar.Grammar, sub *xmltree.Node) *xmltree.Node {
	if p.Parent == nil {
		g.StartRule().RHS = sub
	} else {
		p.Parent.Children[p.Index] = sub
	}
	return sub
}

// Memo caches val sizes of start-rule subtrees across isolations, keyed
// by node identity. An entry is valid as long as the node's subtree (and
// every rule it calls) is unchanged; Isolate evicts exactly the nodes on
// its derivation path — the ancestors of the mutation the caller is
// about to make — so off-path entries survive from operation to
// operation and repeat isolations stop re-walking the same unchanged
// sibling subtrees. The owner must drop the memo whenever a non-start
// rule changes (update.Cache clears it together with the size vectors).
type Memo map[*xmltree.Node]int64

// memoLimit bounds the memo: entries for subtrees that updates have
// detached keep their nodes alive, so an unbounded memo would be a leak
// on delete-heavy streams. Past the limit the memo is simply rebuilt.
const memoLimit = 1 << 18

// subtreeSizeWithin resolves a child's val size for descent routing: a
// memo hit is exact; otherwise the walk aborts as soon as the size
// provably exceeds limit (the remaining preorder offset) — the caller
// descends into the child then, and an exact size is never needed. Only
// exact sizes are memoized; an aborted child is the descent target and
// would be evicted as a path node anyway.
func subtreeSizeWithin(c *xmltree.Node, sizes map[int32]*grammar.SizeVectors, memo Memo, limit int64) (int64, bool) {
	if memo != nil {
		if v, ok := memo[c]; ok {
			return v, true
		}
	}
	v, exact := grammar.SubtreeValSizeWithin(c, sizes, limit)
	if exact && memo != nil {
		if len(memo) >= memoLimit {
			// Rebuild: a full memo is mostly entries for subtrees that
			// deletes detached — dropping them releases the pinned nodes
			// and makes room for the live working set again.
			clear(memo)
		}
		memo[c] = v
	}
	return v, exact
}

// Isolate unfolds the grammar along the derivation path to the node with
// the given preorder index (0-based) of val_G(S), mutating only the start
// rule, and returns the now-explicit terminal node. Size vectors may be
// passed in when the caller already computed them (they are valid as long
// as no rule other than the start rule changed); pass nil to compute.
func Isolate(g *grammar.Grammar, preorder int64, sizes map[int32]*grammar.SizeVectors) (Position, error) {
	return IsolateMemo(g, preorder, sizes, nil)
}

// IsolateMemo is Isolate with a subtree-size memo shared across calls;
// see Memo for the invalidation contract.
func IsolateMemo(g *grammar.Grammar, preorder int64, sizes map[int32]*grammar.SizeVectors, memo Memo) (Position, error) {
	if sizes == nil {
		var err error
		sizes, err = g.ValSizes()
		if err != nil {
			return Position{}, err
		}
	}
	total := sizes[g.Start].Total
	if preorder < 0 || preorder >= total {
		return Position{}, fmt.Errorf("isolate: preorder %d out of range [0,%d)", preorder, total)
	}
	s := g.StartRule()
	var parent *xmltree.Node
	idx := 0
	node := s.RHS
	rem := preorder
	for {
		// Every node on the derivation path is an ancestor of the
		// mutation the caller makes next: its memoized size is about to
		// go stale, so evict it here (every path node passes through
		// this loop head exactly when it becomes current).
		if memo != nil {
			delete(memo, node)
		}
		switch node.Label.Kind {
		case xmltree.Terminal:
			if rem == 0 {
				return Position{Node: node, Parent: parent, Index: idx}, nil
			}
			rem--
			descended := false
			for i, c := range node.Children {
				// Loop invariant: rem < val size of the remaining children.
				// For the last child that makes the containment check — and
				// with it the O(subtree) size walk — redundant. Descending
				// a next-sibling spine (the append-heavy case) always takes
				// the last child, turning the former quadratic re-walk of
				// nested sibling chains into a linear descent.
				if i == len(node.Children)-1 {
					parent, idx, node = node, i, c
					descended = true
					break
				}
				sz, exact := subtreeSizeWithin(c, sizes, memo, rem)
				if !exact || rem < sz {
					parent, idx, node = node, i, c
					descended = true
					break
				}
				rem -= sz
			}
			if !descended {
				return Position{}, fmt.Errorf("isolate: internal navigation error (rem=%d)", rem)
			}
		case xmltree.Nonterminal:
			sv := sizes[node.Label.ID]
			// val(node) in preorder: Seg[0] body nodes, val(arg1), Seg[1],
			// val(arg2), ..., val(argk), Seg[k]. If the target falls in a
			// body segment we must unfold the rule; if it falls inside an
			// argument we descend without unfolding.
			off := int64(0)
			inBody := rem < sv.Seg[0]
			if !inBody {
				off = sv.Seg[0]
				descended := false
				for i, c := range node.Children {
					// Invariant: rem ≥ off (earlier segments and arguments
					// did not contain the target), so rem-off is a valid
					// abort limit and !exact implies rem < off+sz.
					sz, exact := subtreeSizeWithin(c, sizes, memo, rem-off)
					if !exact || rem < off+sz {
						rem -= off
						parent, idx, node = node, i, c
						descended = true
						break
					}
					off += sz
					if rem < off+sv.Seg[i+1] {
						inBody = true
						break
					}
					off += sv.Seg[i+1]
				}
				if descended {
					continue
				}
				if !inBody {
					return Position{}, fmt.Errorf("isolate: internal navigation error in call (rem=%d)", rem)
				}
			}
			// Unfold: inlining does not change val(node) or its preorder,
			// so rem stays put and navigation continues at the body.
			node = g.InlineAt(s, parent, idx)
			if parent == nil {
				// Root inline replaced the RHS.
				node = s.RHS
			}
		default:
			return Position{}, fmt.Errorf("isolate: parameter on derivation path")
		}
	}
}

// NonBottomCount returns the number of non-⊥ nodes of val_G(S), i.e. the
// number of element nodes of the encoded document. When the node count
// saturates (exponentially compressing grammars), it returns
// grammar.ErrSaturated instead of a bogus huge count.
func NonBottomCount(g *grammar.Grammar) (int64, error) {
	total, err := g.ValNodeCount()
	if err != nil {
		return 0, err
	}
	if grammar.Saturated(total) {
		return 0, grammar.ErrSaturated
	}
	// In a binary XML encoding with n elements there are n+1 ⊥ leaves:
	// total = 2n+1.
	return (total - 1) / 2, nil
}
