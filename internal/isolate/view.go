// The read-only spine view: an immutable snapshot of the spine index a
// writer publishes alongside a frozen grammar generation, so read-side
// point queries on a degraded grammar get the same chunk-by-sum seek
// the update descent gets — without ever touching the writer's live
// index.
//
// # Why sharing the live chunk slices is safe
//
// View does NOT copy chunk contents: each view spine aliases the live
// chunks' node and weight slices. That is race-free only under the
// store's generation protocol (internal/store/generation.go): chunks
// are mutated exclusively by the write path (descents, commit hooks,
// re-folding), and every write-path mutation starts by privatizing the
// grammar — if any reader pinned the published generation, the writer
// moves to a fresh clone AND retires the memo (update.Cache.Install),
// so the chunks a published view aliases are never touched again; if no
// reader pinned it, the writer reclaims the generation and the view
// becomes unreachable before the first mutation. A view must therefore
// only ever be handed out together with the frozen grammar generation
// it was built against.
//
// # Why membership is head-only
//
// Spine entries are chained through last-child links, so every entry is
// a tree ancestor of all later entries: any descent that reaches a
// spine's material passes its head first. Probing heads only keeps the
// snapshot O(#spines) map entries instead of O(#entries), and — unlike
// the writer's Aux slot table — a map on private snapshot state cannot
// race the writer's slot reuse.
package isolate

import (
	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// viewSpine is one immutable spine snapshot: per-chunk entry and weight
// slices (aliasing the live chunks) plus per-chunk weight sums.
type viewSpine struct {
	nodes [][]*xmltree.Node
	w     [][]int64
	sums  []int64
}

// SpineView is an immutable snapshot of a Memo's spine index, safe to
// share with any number of concurrent readers. The zero of usefulness
// is nil: every method treats a nil view as an empty index.
type SpineView struct {
	heads   map[*xmltree.Node]int32 // spine head → index into spines
	spines  []viewSpine
	entries int
}

// View snapshots the live spine index into a read-only SpineView in
// O(#chunks), aliasing (not copying) the chunks' node and weight
// slices — see the package comment for why that is safe. Returns nil
// when the index is empty or disabled; callers fall back to naive
// descent then.
func (m *Memo) View() *SpineView {
	if m == nil || m.noIndex || len(m.spines) == 0 {
		return nil
	}
	// One backing array per field across all spines (a view is built at
	// every generation publish, so its allocation count is on the batch
	// path); per-spine slices are capped reslices of these.
	total := 0
	for _, sp := range m.spines {
		total += len(sp.chunks)
	}
	var (
		nodesBuf = make([][]*xmltree.Node, 0, total)
		wBuf     = make([][]int64, 0, total)
		sumsBuf  = make([]int64, 0, total)
	)
	v := &SpineView{
		heads:  make(map[*xmltree.Node]int32, len(m.spines)),
		spines: make([]viewSpine, 0, len(m.spines)),
	}
	for _, sp := range m.spines {
		if len(sp.chunks) == 0 {
			continue
		}
		base := len(sumsBuf)
		ok := true
		n := 0
		for _, ck := range sp.chunks {
			if len(ck.nodes) == 0 || grammar.Saturated(ck.sum) {
				ok = false
				break
			}
			// Full-capacity reslices document intent only — the freeze
			// protocol, not slice limits, is what prevents writer appends
			// from showing through.
			nodesBuf = append(nodesBuf, ck.nodes[:len(ck.nodes):len(ck.nodes)])
			wBuf = append(wBuf, ck.w[:len(ck.w):len(ck.w)])
			sumsBuf = append(sumsBuf, ck.sum)
			n += len(ck.nodes)
		}
		if !ok {
			nodesBuf, wBuf, sumsBuf = nodesBuf[:base], wBuf[:base], sumsBuf[:base]
			continue
		}
		vs := viewSpine{
			nodes: nodesBuf[base:len(nodesBuf):len(nodesBuf)],
			w:     wBuf[base:len(wBuf):len(wBuf)],
			sums:  sumsBuf[base:len(sumsBuf):len(sumsBuf)],
		}
		v.heads[vs.nodes[0][0]] = int32(len(v.spines))
		v.spines = append(v.spines, vs)
		v.entries += n
	}
	if len(v.spines) == 0 {
		return nil
	}
	return v
}

// SeedView builds a single-spine view directly from the start rule's
// dominant chain (see seedChain), bypassing the memo entirely. It is
// the read side's answer to the post-recompression index gap: the memo
// is retired with the grammar a recompression replaced, so the next
// published generation has no chunks to snapshot and its first point
// queries would degrade to naive descent. The generation instead calls
// SeedView lazily, on the first read that wants indexed descent — the
// writer pays nothing at publish, write-only workloads never seed, and
// because the search and the view construction only READ the frozen
// grammar and size table (no Aux stamping, no memo mutation), the build
// is race-free even when several published generations share one frozen
// grammar. Returns nil when no chain worth indexing exists; callers
// fall back to naive descent then, exactly as with an empty memo.
func SeedView(g *grammar.Grammar, sizes *grammar.SizeTable) *SpineView {
	nodes, w := seedChain(g, sizes)
	if len(nodes) == 0 {
		return nil
	}
	nchunks := (len(nodes) + chunkFill - 1) / chunkFill
	v := &SpineView{
		heads: map[*xmltree.Node]int32{nodes[0]: 0},
	}
	vs := viewSpine{
		nodes: make([][]*xmltree.Node, 0, nchunks),
		w:     make([][]int64, 0, nchunks),
		sums:  make([]int64, 0, nchunks),
	}
	for len(nodes) > 0 {
		n := len(nodes)
		if n > chunkFill {
			n = chunkFill
		}
		var sum int64
		for _, wi := range w[:n] {
			sum = grammar.SatAdd(sum, wi)
		}
		if grammar.Saturated(sum) {
			// Material too large to sum exactly — index the prefix only,
			// like the write path's spliceChunks.
			break
		}
		vs.nodes = append(vs.nodes, nodes[:n:n])
		vs.w = append(vs.w, w[:n:n])
		vs.sums = append(vs.sums, sum)
		v.entries += n
		nodes, w = nodes[n:], w[n:]
	}
	if len(vs.nodes) == 0 {
		return nil
	}
	v.spines = []viewSpine{vs}
	return v
}

// Entries returns the number of indexed entries the view covers.
func (v *SpineView) Entries() int {
	if v == nil {
		return 0
	}
	return v.entries
}

// Spines returns the number of spines the view covers.
func (v *SpineView) Spines() int {
	if v == nil {
		return 0
	}
	return len(v.spines)
}

// At reports whether n heads an indexed spine, returning the spine's
// handle for Seek/Sum.
func (v *SpineView) At(n *xmltree.Node) (int32, bool) {
	if v == nil {
		return 0, false
	}
	s, ok := v.heads[n]
	return s, ok
}

// Seek consumes rem derived-tree nodes along spine s from its head,
// mirroring Memo.seek. Outcomes:
//
//   - found && local == 0: the target IS entry n.
//   - found && local > 0: the target lies at offset local within what n
//     derives before the chain continues — inside its first-child
//     subtree for an element entry, inside its body or an earlier
//     argument for a tail-call entry.
//   - !found: the spine is exhausted; n is the chain continuation after
//     the last entry and local the remainder to consume there.
//
// skipped counts the entries the seek stepped over (read-side stats).
func (v *SpineView) Seek(s int32, rem int64) (n *xmltree.Node, local int64, skipped int64, found bool) {
	vs := &v.spines[s]
	var cum int64
	for k := 0; k < len(vs.sums); k++ {
		if cum+vs.sums[k] > rem {
			nodes, w := vs.nodes[k], vs.w[k]
			for i := 0; i < len(nodes); i++ {
				if cum+w[i] > rem {
					return nodes[i], rem - cum, skipped + int64(i), true
				}
				cum += w[i]
			}
		}
		cum += vs.sums[k]
		skipped += int64(len(vs.nodes[k]))
	}
	lastNodes := vs.nodes[len(vs.nodes)-1]
	last := lastNodes[len(lastNodes)-1]
	return last.Children[chainChild(last)], rem - cum, skipped, false
}

// Sum returns the spine's total weight plus the node the chain
// continues at after its last entry — the read-side suffixSum, used to
// sum an indexed region in O(#chunks) during size measurement.
func (v *SpineView) Sum(s int32) (int64, *xmltree.Node) {
	vs := &v.spines[s]
	var sum int64
	for _, cs := range vs.sums {
		sum = grammar.SatAdd(sum, cs)
	}
	lastNodes := vs.nodes[len(vs.nodes)-1]
	last := lastNodes[len(lastNodes)-1]
	return sum, last.Children[chainChild(last)]
}
