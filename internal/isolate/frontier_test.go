package isolate

import (
	"math/rand"
	"testing"

	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/xmltree"
)

// modelSpine is the reference the chunked index is checked against: a
// plain slice of (node, weight) in chain order.
type modelSpine struct {
	nodes []*xmltree.Node
	w     []int64
}

// spineModel drives the chunked spine index and the slice model through
// the same operation sequence and cross-checks them after every step.
type spineModel struct {
	t      *testing.T
	m      *Memo
	spines []*modelSpine
}

func elemNode() *xmltree.Node {
	return xmltree.New(xmltree.Term(1), xmltree.NewBottom(), xmltree.NewBottom())
}

func (sm *spineModel) register(n int, rng *rand.Rand) {
	nodes := make([]*xmltree.Node, n)
	w := make([]int64, n)
	for i := range nodes {
		nodes[i] = elemNode()
		w[i] = 1 + int64(rng.Intn(50))
		if i > 0 {
			// Chain-link the entries like a real sibling spine, so the
			// pred/continuity checks of re-folding and spine merging see
			// consistent material.
			nodes[i-1].Children[1] = nodes[i]
		}
	}
	sm.m.registerSpine(nodes, w)
	sm.spines = append(sm.spines, &modelSpine{nodes: nodes, w: w})
}

// locate returns the model spine and position of an entry, via the
// index's own slot table.
func (sm *spineModel) pick(rng *rand.Rand) (msi, pos int) {
	for try := 0; try < 32; try++ {
		msi = rng.Intn(len(sm.spines))
		if len(sm.spines[msi].nodes) > 0 {
			return msi, rng.Intn(len(sm.spines[msi].nodes))
		}
	}
	return -1, 0
}

func (sm *spineModel) insert(msi, pos int, rng *rand.Rand) {
	ms := sm.spines[msi]
	n := elemNode()
	w := 1 + int64(rng.Intn(50))
	ck, off, ok := sm.m.spineAt(ms.nodes[pos])
	if !ok {
		sm.t.Fatalf("insert: entry %d/%d lost its slot", msi, pos)
	}
	// Splice the new entry into the chain like a real insert does.
	n.Children[1] = ms.nodes[pos]
	if pos > 0 {
		ms.nodes[pos-1].Children[1] = n
	}
	sm.m.insertAt(ck, off, n, w)
	ms.nodes = append(ms.nodes[:pos], append([]*xmltree.Node{n}, ms.nodes[pos:]...)...)
	ms.w = append(ms.w[:pos], append([]int64{w}, ms.w[pos:]...)...)
}

func (sm *spineModel) remove(msi, pos int) {
	ms := sm.spines[msi]
	ck, off, ok := sm.m.spineAt(ms.nodes[pos])
	if !ok {
		sm.t.Fatalf("remove: entry %d/%d lost its slot", msi, pos)
	}
	// Splice the entry out of the chain like a real delete does.
	if pos > 0 {
		ms.nodes[pos-1].Children[1] = ms.nodes[pos].Children[1]
	}
	sm.m.removeAt(ck, off)
	ms.nodes = append(ms.nodes[:pos], ms.nodes[pos+1:]...)
	ms.w = append(ms.w[:pos], ms.w[pos+1:]...)
}

func (sm *spineModel) removeSplit(msi, pos int) {
	ms := sm.spines[msi]
	ck, off, ok := sm.m.spineAt(ms.nodes[pos])
	if !ok {
		sm.t.Fatalf("removeSplit: entry %d/%d lost its slot", msi, pos)
	}
	sm.m.removeSplit(ck, off)
	right := &modelSpine{
		nodes: append([]*xmltree.Node(nil), ms.nodes[pos+1:]...),
		w:     append([]int64(nil), ms.w[pos+1:]...),
	}
	ms.nodes = ms.nodes[:pos]
	ms.w = ms.w[:pos]
	sm.spines = append(sm.spines, right)
}

// splitMerge exercises the removeSplit→re-join cycle: split a spine at
// pos, close the chain gap (as a real descent does when it re-registers
// the unfolded material), and merge the halves back into one spine.
func (sm *spineModel) splitMerge(msi, pos int) {
	ms := sm.spines[msi]
	if pos == 0 || pos+1 >= len(ms.nodes) {
		sm.removeSplit(msi, pos)
		return
	}
	sm.removeSplit(msi, pos)
	left := sm.spines[msi]
	right := sm.spines[len(sm.spines)-1]
	// The detached entry's material is gone: the left run chains directly
	// into the right head again.
	leftLast := left.nodes[len(left.nodes)-1]
	leftLast.Children[1] = right.nodes[0]
	ck, _, ok := sm.m.spineAt(leftLast)
	if !ok {
		sm.t.Fatalf("splitMerge: left tail lost its slot")
	}
	sm.m.maybeMerge(ck.sp, right.nodes[0])
	left.nodes = append(left.nodes, right.nodes...)
	left.w = append(left.w, right.w...)
	sm.spines = sm.spines[:len(sm.spines)-1]
}

// refold runs a bounded multi-chunk re-fold pass and reconciles the
// model: entries whose slots were cleared either folded into a fresh
// rule or were dropped defensively; the surviving runs of each spine are
// now separate spines. checkInvariants then validates that the index's
// chunk structure, weights, and gauges match the reconciled model.
func (sm *spineModel) refold(g *grammar.Grammar, sizes *grammar.SizeTable, maxChunks int) {
	sm.m.Refold(g, sizes, RefoldOptions{MinAge: 0, MaxChunks: maxChunks})
	var next []*modelSpine
	for _, ms := range sm.spines {
		var cur *modelSpine
		for i, n := range ms.nodes {
			if _, _, ok := sm.m.spineAt(n); ok {
				if cur == nil {
					cur = &modelSpine{}
				}
				cur.nodes = append(cur.nodes, n)
				cur.w = append(cur.w, ms.w[i])
			} else if cur != nil {
				next = append(next, cur)
				cur = nil
			}
		}
		if cur != nil {
			next = append(next, cur)
		}
	}
	sm.spines = next
}

// checkView snapshots a frozen read-only view and checks it against the
// model: every non-empty spine must be covered, totals and continuation
// nodes must agree, and a random seek must route exactly like the
// model's prefix-sum answer (the index-vs-naive agreement property at
// the unit level).
func (sm *spineModel) checkView(rng *rand.Rand) {
	v := sm.m.View()
	live := 0
	for msi, ms := range sm.spines {
		if len(ms.nodes) == 0 {
			continue
		}
		live++
		s, ok := v.At(ms.nodes[0])
		if !ok {
			sm.t.Fatalf("view: spine %d head not mapped", msi)
		}
		var total int64
		for _, wi := range ms.w {
			total += wi
		}
		last := ms.nodes[len(ms.nodes)-1]
		sum, tail := v.Sum(s)
		if sum != total {
			sm.t.Fatalf("view: spine %d Sum %d, model %d", msi, sum, total)
		}
		if tail != last.Children[1] {
			sm.t.Fatalf("view: spine %d continuation mismatch", msi)
		}
		rem := rng.Int63n(total + 20)
		n, local, _, found := v.Seek(s, rem)
		var cum int64
		matched := false
		for i := 0; i < len(ms.nodes); i++ {
			if cum+ms.w[i] > rem {
				if !found || n != ms.nodes[i] || local != rem-cum {
					sm.t.Fatalf("view seek(%d): spine %d model entry %d local %d, view local %d found %v",
						rem, msi, i, rem-cum, local, found)
				}
				matched = true
				break
			}
			cum += ms.w[i]
		}
		if !matched {
			if found {
				sm.t.Fatalf("view seek(%d): model exhausts, view found local %d", rem, local)
			}
			if n != last.Children[1] || local != rem-cum {
				sm.t.Fatalf("view seek(%d): exhaust remainder %d, view %d", rem, rem-cum, local)
			}
		}
	}
	if live > 0 && v.Spines() != live {
		sm.t.Fatalf("view covers %d spines, model has %d live", v.Spines(), live)
	}
	if live == 0 && v != nil {
		sm.t.Fatalf("view non-nil over an empty model")
	}
}

func (sm *spineModel) adjust(msi, pos int, delta int64) {
	ms := sm.spines[msi]
	if ms.w[pos]+delta < 1 {
		return
	}
	sm.m.adjustWeight(ms.nodes[pos], delta)
	ms.w[pos] += delta
}

// checkSeek compares a seek from a random entry against the model's
// prefix-sum answer.
func (sm *spineModel) checkSeek(msi, pos int, rng *rand.Rand) {
	ms := sm.spines[msi]
	var total int64
	for _, wi := range ms.w[pos:] {
		total += wi
	}
	rem := int64(rng.Intn(int(total) + 20))
	ck, off, ok := sm.m.spineAt(ms.nodes[pos])
	if !ok {
		sm.t.Fatalf("seek: entry %d/%d lost its slot", msi, pos)
	}
	eck, eoff, local, found := sm.m.seek(ck, off, rem)
	// Model answer.
	var cum int64
	for i := pos; i < len(ms.nodes); i++ {
		if cum+ms.w[i] > rem {
			if !found {
				sm.t.Fatalf("seek(%d): model finds entry %d, index exhausted", rem, i)
			}
			if eck.nodes[eoff] != ms.nodes[i] || local != rem-cum {
				sm.t.Fatalf("seek(%d): model entry %d local %d, index entry %p local %d",
					rem, i, rem-cum, eck.nodes[eoff], local)
			}
			return
		}
		cum += ms.w[i]
	}
	if found {
		sm.t.Fatalf("seek(%d): model exhausts, index found local %d", rem, local)
	}
	if eck.nodes[eoff] != ms.nodes[len(ms.nodes)-1] || local != rem-cum {
		sm.t.Fatalf("seek(%d): exhaust remainder %d, index %d", rem, rem-cum, local)
	}
}

// checkInvariants validates the chunked storage against the model:
// entry order, weights, chunk sums, slot table round-trips, and the
// live-entry gauge.
func (sm *spineModel) checkInvariants() {
	totalEntries := 0
	for msi, ms := range sm.spines {
		totalEntries += len(ms.nodes)
		if len(ms.nodes) == 0 {
			continue
		}
		ck, off, ok := sm.m.spineAt(ms.nodes[0])
		if !ok {
			sm.t.Fatalf("spine %d: head lost its slot", msi)
		}
		sp := ck.sp
		if off != 0 || ck.idx != 0 {
			sm.t.Fatalf("spine %d: head at chunk %d off %d", msi, ck.idx, off)
		}
		i := 0
		for _, c := range sp.chunks {
			var sum int64
			for j, n := range c.nodes {
				if i >= len(ms.nodes) || n != ms.nodes[i] {
					sm.t.Fatalf("spine %d: entry %d mismatch", msi, i)
				}
				if c.w[j] != ms.w[i] {
					sm.t.Fatalf("spine %d: entry %d weight %d, want %d", msi, i, c.w[j], ms.w[i])
				}
				cck, coff, ok := sm.m.spineAt(n)
				if !ok || cck != c || coff != j {
					sm.t.Fatalf("spine %d: entry %d slot does not round-trip", msi, i)
				}
				sum += c.w[j]
				i++
			}
			if sum != c.sum {
				sm.t.Fatalf("spine %d: chunk sum %d, want %d", msi, c.sum, sum)
			}
			if c.sp != sp {
				sm.t.Fatal("chunk belongs to the wrong spine")
			}
		}
		if i != len(ms.nodes) {
			sm.t.Fatalf("spine %d: %d entries indexed, model has %d", msi, i, len(ms.nodes))
		}
	}
	if sm.m.stats.Entries != totalEntries {
		sm.t.Fatalf("Entries gauge %d, model %d", sm.m.stats.Entries, totalEntries)
	}
}

// driveSpineModel runs one scripted op sequence; ops come from data so
// the same body serves the deterministic test and the fuzz target.
func driveSpineModel(t *testing.T, data []byte) {
	sm := &spineModel{t: t, m: NewMemo()}
	rng := rand.New(rand.NewSource(1))
	g := grammar.New(nil)
	sizes := grammar.NewSizeTable(g)
	sm.register(40+int(uint(len(data))%200), rng)
	sm.checkInvariants()
	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i], data[i+1]
		msi, pos := sm.pick(rng)
		if msi < 0 {
			sm.register(20, rng)
			sm.checkInvariants()
			continue
		}
		switch op % 8 {
		case 0:
			sm.insert(msi, pos, rng)
		case 1:
			sm.remove(msi, pos)
		case 2:
			sm.removeSplit(msi, pos)
		case 3:
			sm.adjust(msi, pos, int64(int8(arg)))
		case 4:
			sm.checkSeek(msi, pos, rng)
		case 5:
			sm.splitMerge(msi, pos)
		case 6:
			sm.refold(g, sizes, 1+int(arg%8))
		case 7:
			sm.checkView(rng)
		}
		sm.checkInvariants()
	}
}

// TestSpineIndexModel drives the chunked spine index against the slice
// model with scripted and random sequences covering splits, removals,
// weight adjustments, and seeks.
func TestSpineIndexModel(t *testing.T) {
	seqs := [][]byte{
		{0, 0, 0, 0, 4, 9, 1, 0, 4, 7},
		{2, 0, 4, 1, 2, 0, 4, 2, 1, 0, 4, 3},
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		seq := make([]byte, 160)
		rng.Read(seq)
		seqs = append(seqs, seq)
	}
	for i, seq := range seqs {
		t.Run("", func(t *testing.T) {
			_ = i
			driveSpineModel(t, seq)
		})
	}
}

// FuzzSpineIndex fuzzes the spine-index invariants against the
// reference slice model (CI runs a short smoke of this; see the fuzz
// job).
func FuzzSpineIndex(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{2, 0, 2, 0, 2, 0, 4, 9})
	f.Add([]byte{1, 1, 1, 1, 0, 0, 0, 0, 3, 200, 4, 4})
	f.Add([]byte{5, 0, 5, 1, 5, 2, 7, 0})               // split→merge cycles + view
	f.Add([]byte{6, 3, 7, 0, 6, 7, 4, 9, 5, 0, 6, 1})   // refold, view, merge interleaved
	f.Add([]byte{2, 0, 0, 0, 6, 200, 7, 7, 1, 1, 6, 0}) // split, insert, deep refold, view
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		driveSpineModel(t, data)
	})
}

// TestSlotTableLimitRebuild pins the memoLimit path: registering a
// spine with the slot table at its limit must keep the spine fully
// functional (stamping may overshoot the limit), and the next descent
// rebuilds the table without leaving zombie spine slots behind — no
// seek may ever observe a dropped spine's empty chunk list.
func TestSlotTableLimitRebuild(t *testing.T) {
	m := NewMemo()
	// Fill the table to the limit with plain entries.
	filler := make([]*xmltree.Node, 0, memoLimit)
	for len(m.entries) < memoLimit {
		n := xmltree.NewBottom()
		m.put(n, 9)
		filler = append(filler, n)
	}
	// Register a spine entirely past the limit.
	nodes := make([]*xmltree.Node, 100)
	w := make([]int64, 100)
	for i := range nodes {
		nodes[i] = elemNode()
		w[i] = 3
	}
	m.registerSpine(nodes, w)
	ck, off, ok := m.spineAt(nodes[0])
	if !ok {
		t.Fatal("spine registered at the limit lost its slots")
	}
	// The spine must be consistent: a deep seek walks all chunks.
	if eck, eoff, local, found := m.seek(ck, off, 3*99+1); !found || eck.nodes[eoff] != nodes[99] || local != 1 {
		t.Fatalf("seek across the over-limit spine misrouted (found=%v local=%d)", found, local)
	}
	// The next descent rebuilds the table and drops every spine cleanly.
	m.beginDescent()
	if len(m.entries) != 0 || m.stats.Entries != 0 || m.stats.Spines != 0 {
		t.Fatalf("rebuild incomplete: %d slots, %+v", len(m.entries), m.stats)
	}
	for _, n := range nodes {
		if _, _, ok := m.spineAt(n); ok {
			t.Fatal("zombie spine slot survived the rebuild")
		}
	}
	_ = filler
}

// flatChainGrammar builds an uncompressed single-rule grammar over a
// flat document of n records — one long explicit next-sibling chain.
func flatChainGrammar(n int) *grammar.Grammar {
	root := xmltree.NewUnranked("log")
	for i := 0; i < n; i++ {
		root.Children = append(root.Children,
			xmltree.NewUnranked("rec", xmltree.NewUnranked("f1"), xmltree.NewUnranked("f2")))
	}
	doc := root.Binary()
	return grammar.FromDocument(doc)
}

// TestRefoldPreservesValAndSizes registers a long spine by descending a
// flat explicit chain, folds its cold interior chunks into fresh rules,
// and verifies the grammar still validates, derives the identical tree,
// and got exact size vectors for the new rules.
func TestRefoldPreservesValAndSizes(t *testing.T) {
	g := flatChainGrammar(400)
	want, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := g.ValSizes()
	if err != nil {
		t.Fatal(err)
	}
	memo := NewMemo()
	total := sizes.Get(g.Start).Total
	// Deep descents register the chain.
	for i := 0; i < 8; i++ {
		if _, err := IsolateMemo(g, total-2, sizes, memo); err != nil {
			t.Fatal(err)
		}
	}
	if memo.Frontier().Entries < 2*chunkFill {
		t.Fatalf("chain not indexed: %+v", memo.Frontier())
	}
	memo.tick += 100 // age every chunk
	folds, entries := memo.Refold(g, sizes, RefoldOptions{MinAge: 50, MaxChunks: 4})
	if folds == 0 || entries == 0 {
		t.Fatalf("nothing folded: %+v", memo.Frontier())
	}
	if g.NumRules() != 1+folds {
		t.Fatalf("expected %d fresh rules, have %d rules", folds, g.NumRules())
	}
	// Multi-chunk: the cold interior is one contiguous run, so a 4-chunk
	// budget folds into ONE rule absorbing several chunks' entries — not
	// the pre-PR-8 one-rule-per-chunk chain.
	if folds != 1 {
		t.Fatalf("contiguous cold run split into %d folds", folds)
	}
	if entries <= 2*chunkFill {
		t.Fatalf("fold absorbed only %d entries, want a multi-chunk run", entries)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("grammar invalid after refold: %v", err)
	}
	got, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, want) {
		t.Fatal("refold changed the derived tree")
	}
	// The installed vectors must match a from-scratch recomputation.
	fresh, err := g.ValSizes()
	if err != nil {
		t.Fatal(err)
	}
	g.Rules(func(r *grammar.Rule) {
		sv, fv := sizes.Get(r.ID), fresh.Get(r.ID)
		if sv == nil {
			t.Fatalf("rule N%d missing from the warm table", r.ID)
		}
		if sv.Total != fv.Total || len(sv.Seg) != len(fv.Seg) {
			t.Fatalf("rule N%d vectors diverge: %+v vs %+v", r.ID, sv, fv)
		}
		for i := range sv.Seg {
			if sv.Seg[i] != fv.Seg[i] {
				t.Fatalf("rule N%d Seg[%d]: %d vs %d", r.ID, i, sv.Seg[i], fv.Seg[i])
			}
		}
	})
	// Isolation still lands on the right nodes through the folded rules.
	for p := int64(0); p < total; p += 97 {
		pos, err := IsolateMemo(g, p, sizes, memo)
		if err != nil {
			t.Fatalf("isolate(%d) after refold: %v", p, err)
		}
		wantNode := want.PreorderIndex(int(p))
		if pos.Node.Label != wantNode.Label {
			t.Fatalf("isolate(%d) after refold: wrong label", p)
		}
	}
}

// TestIndexedDescentAllocFree pins the steady-state indexed descent at
// zero allocations: once the spine is registered, repeat isolations of
// a deep position must only probe, seek, and return.
func TestIndexedDescentAllocFree(t *testing.T) {
	g := flatChainGrammar(600)
	sizes, err := g.ValSizes()
	if err != nil {
		t.Fatal(err)
	}
	memo := NewMemo()
	total := sizes.Get(g.Start).Total
	pos := total - 2
	for i := 0; i < 8; i++ { // register + settle
		if _, err := IsolateMemo(g, pos, sizes, memo); err != nil {
			t.Fatal(err)
		}
	}
	if memo.Frontier().Entries == 0 {
		t.Fatalf("spine not indexed: %+v", memo.Frontier())
	}
	jumpsBefore := memo.Frontier().Jumps
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := IsolateMemo(g, pos, sizes, memo); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("indexed descent allocates: %v allocs/op", allocs)
	}
	if memo.Frontier().Jumps == jumpsBefore {
		t.Fatal("descents did not use the index")
	}
}

// TestFrontierDescentMatchesNaive cross-checks the indexed descent
// against a naive memo on compressed random documents: every preorder
// position must isolate to the same label with identical val.
func TestFrontierDescentMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		u := randomUnranked(rng, 40+rng.Intn(200), []string{"a", "b", "c"})
		doc := u.Binary()
		gi, _ := treerepair.Compress(doc, treerepair.Options{})
		gn := gi.Clone()
		si, err := gi.ValSizes()
		if err != nil {
			t.Fatal(err)
		}
		sn, err := gn.ValSizes()
		if err != nil {
			t.Fatal(err)
		}
		mi, mn := NewMemo(), NewMemo()
		mn.DisableIndex()
		total := si.Get(gi.Start).Total
		for p := int64(0); p < total; p++ {
			pi, err := IsolateMemo(gi, p, si, mi)
			if err != nil {
				t.Fatalf("indexed isolate(%d): %v", p, err)
			}
			pn, err := IsolateMemo(gn, p, sn, mn)
			if err != nil {
				t.Fatalf("naive isolate(%d): %v", p, err)
			}
			if pi.Node.Label != pn.Node.Label {
				t.Fatalf("p=%d: indexed label %v, naive %v", p, pi.Node.Label, pn.Node.Label)
			}
		}
		ti, err := gi.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		if !xmltree.Equal(ti, doc.Root) {
			t.Fatal("indexed isolation changed val")
		}
	}
}
