package core

import (
	"sort"

	"repro/internal/digram"
	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// usageCap saturates usage counts: exponentially compressing grammars
// generate trees with astronomically many nodes, and only the ordering of
// frequencies matters. Using a large finite cap (instead of +Inf) keeps
// count deltas well-defined.
const usageCap = 1e300

// parentRef records the in-rule parent of a parameter node: the node and
// the 0-based child index the parameter occupies.
type parentRef struct {
	node *xmltree.Node
	idx  int
}

// ruleOccs caches everything the index knows about one rule. Occurrence
// generators are flat-hashed on the packed digram key instead of living in
// a per-rule Go map.
type ruleOccs struct {
	gens         digram.Table[[]*xmltree.Node] // occurrence generators by digram
	calls        map[int32]int                 // callee rule -> #occurrences
	nodes        int                           // node count of the RHS
	paramParents []parentRef                   // local parent of y1..yk
	usageApplied float64                       // usage weight its gens contribute with
}

// resolved is a fully resolved tree parent or tree child: the terminal
// node (somewhere in the grammar), its label, and — for parents — the
// child index of the edge.
type resolved struct {
	node  *xmltree.Node
	label int32
	idx   int // 1-based child index (parents only)
}

// iface is the label-level interface of a rule: the terminal its root
// chain resolves to and, per parameter, the terminal above it. When a
// rule's interface changes, every caller's digrams may change, so callers
// are rescanned.
type iface struct {
	root   int32
	params []resolved
}

func (a *iface) equal(b *iface) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.root != b.root || len(a.params) != len(b.params) {
		return false
	}
	for i := range a.params {
		if a.params[i].label != b.params[i].label || a.params[i].idx != b.params[i].idx {
			return false
		}
	}
	return true
}

// occIndex maintains, incrementally across replacement rounds, the
// Algorithm 4 (RETRIEVEOCCS) state: per-rule digram occurrence generators,
// usage-weighted global frequencies, and the non-overlap bookkeeping for
// equal-label digrams. Global counts and the equal-label sets are keyed by
// packed digram keys in open-addressed tables; all per-rule state lives in
// dense rule-ID-indexed slices (rule IDs are dense and never reused), so
// the refresh path does no hashing at all.
type occIndex struct {
	g       *grammar.Grammar
	maxRank int

	perRule []*ruleOccs // by rule ID; nil = deleted / never seen
	counts  digram.Table[float64]
	usage   []float64 // by rule ID
	queue   digram.Queue
	// genSet holds, per equal-label digram, the set of stored generator
	// nodes (all of which are terminal tree children); a candidate whose
	// resolved tree parent is in this set would overlap (Alg. 4 line 11).
	genSet digram.Table[map[*xmltree.Node]bool]

	ifaces []*iface // by rule ID
	// per-refresh resolution memos and scratch sets, reused across rounds
	// (all by rule ID; cleared, not reallocated, between refreshes)
	rootMemo  []*resolved
	paramMemo [][]*resolved
	changed   []bool
	dirty     []bool
	topoState []uint8
	topoBuf   []int32
}

func newOccIndex(g *grammar.Grammar, maxRank int) *occIndex {
	ix := &occIndex{g: g, maxRank: maxRank}
	ix.refresh(g.RuleIDs(), nil)
	return ix
}

// grow sizes every dense table for the rule IDs the grammar has assigned
// so far; called at each refresh (replacement rounds create rules).
func (ix *occIndex) grow() {
	n := int(ix.g.MaxRuleID())
	ix.perRule = grammar.GrowTo(ix.perRule, n)
	ix.usage = grammar.GrowTo(ix.usage, n)
	ix.ifaces = grammar.GrowTo(ix.ifaces, n)
	ix.rootMemo = grammar.GrowTo(ix.rootMemo, n)
	ix.paramMemo = grammar.GrowTo(ix.paramMemo, n)
	ix.changed = grammar.GrowTo(ix.changed, n)
	ix.dirty = grammar.GrowTo(ix.dirty, n)
	ix.topoState = grammar.GrowTo(ix.topoState, n)
}

// live reports the current frequency of d (for the priority queue).
func (ix *occIndex) live(d digram.Digram) float64 {
	c, _ := ix.counts.Get(d.Key())
	return c
}

// best pops the most frequent digram with ≥ 2 occurrences.
func (ix *occIndex) best() (digram.Digram, float64, bool) {
	return ix.queue.PopBest(ix.live)
}

// rulesWithGenerators returns the IDs of rules holding generators of d,
// in ascending rule-ID order (the dense scan produces it sorted).
func (ix *occIndex) rulesWithGenerators(d digram.Digram) []int32 {
	k := d.Key()
	var out []int32
	for rid, ro := range ix.perRule {
		if ro == nil {
			continue
		}
		if gens, _ := ro.gens.Get(k); len(gens) > 0 {
			out = append(out, int32(rid))
		}
	}
	return out
}

// generators returns the generator nodes of d within rule rid.
func (ix *occIndex) generators(rid int32, d digram.Digram) []*xmltree.Node {
	if ro := ix.perRule[rid]; ro != nil {
		gens, _ := ro.gens.Get(d.Key())
		return gens
	}
	return nil
}

// totalNodes returns the summed RHS node count over all rules (tracked for
// intermediate-size instrumentation).
func (ix *occIndex) totalNodes() int {
	t := 0
	for _, ro := range ix.perRule {
		if ro != nil {
			t += ro.nodes
		}
	}
	return t
}

// refresh brings the index up to date after a replacement round that
// edited (or created) the given rules and deleted others. Passing all
// rule IDs as edited performs the initial full build.
func (ix *occIndex) refresh(edited []int32, deleted []int32) {
	// Replacement rounds create rules; size every dense table first.
	ix.grow()
	// Drop deleted rules entirely.
	for _, rid := range deleted {
		ix.dropContributions(rid)
		ix.perRule[rid] = nil
		ix.ifaces[rid] = nil
	}
	// Phase A: rebuild local structure (calls, parameter parents, node
	// counts) for every edited rule, so interface resolution below sees
	// current trees.
	for _, rid := range edited {
		if ix.g.Rule(rid) == nil {
			continue
		}
		ix.rebuildLocal(rid)
	}
	// Phase B: recompute every rule's interface with fresh memos and
	// collect the rules whose interface changed.
	clear(ix.rootMemo)
	clear(ix.paramMemo)
	changed := ix.changed
	clear(changed)
	nChanged := 0
	for _, rid := range ix.g.RuleIDs() {
		ni := ix.computeIface(rid)
		if !ni.equal(ix.ifaces[rid]) {
			changed[rid] = true
			nChanged++
		}
		ix.ifaces[rid] = ni
	}
	// Phase C: dirty = edited ∪ callers of interface-changed rules.
	dirty := ix.dirty
	clear(dirty)
	for _, rid := range edited {
		if ix.g.Rule(rid) != nil {
			dirty[rid] = true
		}
	}
	if nChanged > 0 {
		for rid, ro := range ix.perRule {
			if ro == nil || dirty[rid] {
				continue
			}
			for callee := range ro.calls {
				if changed[callee] {
					dirty[rid] = true
					break
				}
			}
		}
	}
	// Phase D: rescan dirty rules in anti-SL order (callees first), which
	// keeps the equal-label greedy alignment close to Algorithm 4's.
	order := ix.topoAntiSL()
	for _, rid := range order {
		if dirty[rid] {
			ix.rescanGenerators(rid)
		}
	}
	// Phase E: recompute usage and fix up the weight every rule's
	// generators contribute with.
	ix.refreshUsage(order)
}

// dropContributions removes rule rid's generator contributions from the
// global counts and the equal-label sets.
func (ix *occIndex) dropContributions(rid int32) {
	ro := ix.perRule[rid]
	if ro == nil {
		return
	}
	ro.gens.Range(func(k digram.Key, gens *[]*xmltree.Node) bool {
		if len(*gens) == 0 {
			return true
		}
		d := k.Digram()
		ix.addCount(d, -ro.usageApplied*float64(len(*gens)))
		if d.EqualLabels() {
			if set, _ := ix.genSet.Get(k); set != nil {
				for _, gnode := range *gens {
					delete(set, gnode)
				}
			}
		}
		return true
	})
	ro.gens.Clear()
}

func (ix *occIndex) addCount(d digram.Digram, delta float64) {
	if delta == 0 {
		return
	}
	p := ix.counts.Ref(d.Key())
	c := *p + delta
	if c > usageCap {
		c = usageCap
	}
	if c <= 1e-9 {
		c = 0
	}
	*p = c
	ix.queue.Update(d, c)
}

// rebuildLocal re-derives the structural caches of one rule.
func (ix *occIndex) rebuildLocal(rid int32) {
	r := ix.g.Rule(rid)
	ro := ix.perRule[rid]
	if ro == nil {
		ro = &ruleOccs{}
		ix.perRule[rid] = ro
	}
	if ro.calls == nil {
		ro.calls = make(map[int32]int)
	} else {
		clear(ro.calls)
	}
	ro.paramParents = ro.paramParents[:0]
	for i := 0; i < r.Rank; i++ {
		ro.paramParents = append(ro.paramParents, parentRef{})
	}
	ro.nodes = 0
	r.RHS.WalkParent(func(n, p *xmltree.Node, i int) bool {
		ro.nodes++
		switch n.Label.Kind {
		case xmltree.Nonterminal:
			ro.calls[n.Label.ID]++
		case xmltree.Parameter:
			ro.paramParents[n.Label.ID-1] = parentRef{node: p, idx: i}
		}
		return true
	})
}

// computeIface resolves the rule's root chain and parameter parents to
// terminal labels (memoized per refresh).
func (ix *occIndex) computeIface(rid int32) *iface {
	r := ix.g.Rule(rid)
	fi := &iface{params: make([]resolved, r.Rank)}
	fi.root = ix.resolveRoot(rid).label
	for i := 1; i <= r.Rank; i++ {
		fi.params[i-1] = *ix.resolveParamParent(rid, i)
	}
	return fi
}

// resolveRoot implements TREECHILD's rule-root chain: the terminal node a
// nonterminal generator's tree child resolves to (Algorithm 2).
func (ix *occIndex) resolveRoot(rid int32) *resolved {
	if r := ix.rootMemo[rid]; r != nil {
		return r
	}
	root := ix.g.Rule(rid).RHS
	var res *resolved
	if root.Label.Kind == xmltree.Terminal {
		res = &resolved{node: root, label: root.Label.ID}
	} else {
		res = ix.resolveRoot(root.Label.ID)
	}
	ix.rootMemo[rid] = res
	return res
}

// resolveParamParent implements TREEPARENT's upward chain (Algorithm 3):
// the terminal node directly above parameter y_i of rule rid in the
// derived tree, and the 1-based child index of that edge.
func (ix *occIndex) resolveParamParent(rid int32, i int) *resolved {
	memo := ix.paramMemo[rid]
	if memo == nil {
		memo = make([]*resolved, ix.g.Rule(rid).Rank)
		ix.paramMemo[rid] = memo
	}
	if memo[i-1] != nil {
		return memo[i-1]
	}
	pr := ix.perRule[rid].paramParents[i-1]
	var res *resolved
	if pr.node.Label.Kind == xmltree.Terminal {
		res = &resolved{node: pr.node, label: pr.node.Label.ID, idx: pr.idx + 1}
	} else {
		// y_i is the (pr.idx+1)-th argument of a nonterminal call: the
		// real parent sits above that callee's parameter.
		res = ix.resolveParamParent(pr.node.Label.ID, pr.idx+1)
	}
	memo[i-1] = res
	return res
}

// resolveChildOf resolves the tree child of a generator node (Alg. 2).
// Returned by value: this runs once per scanned node, and a pointer
// result would heap-allocate on the terminal fast path.
func (ix *occIndex) resolveChildOf(n *xmltree.Node) resolved {
	if n.Label.Kind == xmltree.Terminal {
		return resolved{node: n, label: n.Label.ID}
	}
	return *ix.resolveRoot(n.Label.ID)
}

// resolveParentOf resolves the tree parent of a node at child index i
// (0-based) under p (Alg. 3).
func (ix *occIndex) resolveParentOf(p *xmltree.Node, i int) resolved {
	if p.Label.Kind == xmltree.Terminal {
		return resolved{node: p, label: p.Label.ID, idx: i + 1}
	}
	return *ix.resolveParamParent(p.Label.ID, i+1)
}

// rescanGenerators re-derives rule rid's occurrence generators
// (Algorithm 4's inner loop, lines 3–12) and updates global counts.
func (ix *occIndex) rescanGenerators(rid int32) {
	ix.dropContributions(rid)
	r := ix.g.Rule(rid)
	ro := ix.perRule[rid]
	u := ro.usageApplied
	r.RHS.WalkParent(func(n, p *xmltree.Node, i int) bool {
		if p == nil || n.Label.Kind == xmltree.Parameter {
			return true
		}
		child := ix.resolveChildOf(n)
		parent := ix.resolveParentOf(p, i)
		d := digram.Digram{A: parent.label, I: parent.idx, B: child.label}
		if d.Rank(ix.g.Syms) > ix.maxRank {
			return true
		}
		k := d.Key()
		if d.EqualLabels() {
			// Equal-label digrams: never across a rule root (nonterminal
			// generator), and never overlapping a stored occurrence.
			if n.Label.Kind == xmltree.Nonterminal {
				return true
			}
			setp := ix.genSet.Ref(k)
			if *setp == nil {
				*setp = make(map[*xmltree.Node]bool)
			} else if (*setp)[parent.node] {
				return true
			}
			(*setp)[n] = true
		}
		gp := ro.gens.Ref(k)
		*gp = append(*gp, n)
		ix.addCount(d, u)
		return true
	})
}

// topoAntiSL orders live rules callee-before-caller using the cached call
// multisets (cheaper than re-walking every RHS). The returned slice is
// reused by the next call.
func (ix *occIndex) topoAntiSL() []int32 {
	ids := ix.g.RuleIDs()
	state := ix.topoState
	clear(state)
	out := ix.topoBuf[:0]
	var visit func(id int32)
	visit = func(id int32) {
		if state[id] != 0 {
			return
		}
		state[id] = 1
		callees := make([]int32, 0, len(ix.perRule[id].calls))
		for c := range ix.perRule[id].calls {
			callees = append(callees, c)
		}
		sort.Slice(callees, func(i, j int) bool { return callees[i] < callees[j] })
		for _, c := range callees {
			visit(c)
		}
		state[id] = 2
		out = append(out, id)
	}
	for _, id := range ids {
		visit(id)
	}
	ix.topoBuf = out
	return out
}

// refreshUsage recomputes usage_G for all rules from the call multisets
// and adjusts every affected digram count by the usage delta.
func (ix *occIndex) refreshUsage(antiSL []int32) {
	newUsage := ix.usage
	clear(newUsage)
	newUsage[ix.g.Start] = 1
	// SL order: reverse of anti-SL.
	for i := len(antiSL) - 1; i >= 0; i-- {
		rid := antiSL[i]
		u := newUsage[rid]
		if u == 0 {
			continue
		}
		for callee, cnt := range ix.perRule[rid].calls {
			nu := newUsage[callee] + u*float64(cnt)
			if nu > usageCap {
				nu = usageCap
			}
			newUsage[callee] = nu
		}
	}
	for _, rid := range antiSL {
		ro := ix.perRule[rid]
		delta := newUsage[rid] - ro.usageApplied
		if delta != 0 {
			ro.gens.Range(func(k digram.Key, gens *[]*xmltree.Node) bool {
				if len(*gens) > 0 {
					ix.addCount(k.Digram(), delta*float64(len(*gens)))
				}
				return true
			})
			ro.usageApplied = newUsage[rid]
		}
	}
}
