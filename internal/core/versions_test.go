package core

import (
	"testing"

	"repro/internal/digram"
	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// grammar2 builds the Section IV-E example ("Grammar 2"):
//
//	C → A(⊥, A(A(B,⊥), A(B, A(⊥,⊥))))
//	A(y1,y2) → b(a(y1, c(d(a(y2,⊥),⊥),⊥)),⊥)
//	B → b(⊥,⊥)
//
// with A and C (but not B) called elsewhere. The digram α = (a,1,b) has
// six occurrence generators in C, and replacing it requires four
// different versions of A (A^r, A^y2, A^{r,y1}, A^{r,y1,y2}).
func grammar2(t *testing.T) (*grammar.Grammar, int32, int32) {
	t.Helper()
	st := xmltree.NewSymbolTable()
	a := st.InternElement("a")
	b := st.InternElement("b")
	c := st.InternElement("c")
	d := st.InternElement("d")
	g := grammar.New(st)
	B := g.NewRule(0, xmltree.New(xmltree.Term(b), xmltree.NewBottom(), xmltree.NewBottom()))
	A := g.NewRule(2, xmltree.New(xmltree.Term(b),
		xmltree.New(xmltree.Term(a),
			xmltree.New(xmltree.Param(1)),
			xmltree.New(xmltree.Term(c),
				xmltree.New(xmltree.Term(d),
					xmltree.New(xmltree.Term(a), xmltree.New(xmltree.Param(2)), xmltree.NewBottom()),
					xmltree.NewBottom()),
				xmltree.NewBottom())),
		xmltree.NewBottom()))
	aCall := func(c1, c2 *xmltree.Node) *xmltree.Node {
		return xmltree.New(xmltree.Nonterm(A.ID), c1, c2)
	}
	bCall := func() *xmltree.Node { return xmltree.New(xmltree.Nonterm(B.ID)) }
	C := g.NewRule(0, aCall(
		xmltree.NewBottom(),
		aCall(
			aCall(bCall(), xmltree.NewBottom()),
			aCall(bCall(), aCall(xmltree.NewBottom(), xmltree.NewBottom())))))
	// A and C are called elsewhere: an extra rule keeps refs(A) > 1 so
	// the export optimization applies, exactly as the paper assumes.
	extra := g.NewRule(0, aCall(xmltree.New(xmltree.Nonterm(C.ID)), xmltree.NewBottom()))
	g.StartRule().RHS = xmltree.New(xmltree.Term(c),
		xmltree.New(xmltree.Nonterm(C.ID)), xmltree.New(xmltree.Nonterm(extra.ID)))
	if err := g.Validate(); err != nil {
		t.Fatalf("grammar 2 invalid: %v", err)
	}
	return g, a, b
}

// TestGrammar2MultipleVersions replays the Section IV-E replacement and
// checks that several distinct versions of rule A are demanded, that val
// is preserved, and that the intermediate grammar stays bounded.
func TestGrammar2MultipleVersions(t *testing.T) {
	g, a, b := grammar2(t)
	want, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := g.Size()

	ix := newOccIndex(g, 4)
	d := digram.Digram{A: a, I: 1, B: b}
	if ix.live(d) < 4 {
		t.Fatalf("count(a,1,b) = %v, want several occurrences", ix.live(d))
	}
	x := g.Syms.Fresh("X", 3)
	r := newReplacer(g, ix, newScratch(), d, x, true)
	r.run()

	// The ReplacementDAG must have contained multiple versions of A
	// (the paper derives A^y2, A^{r,y1,y2}, A^{r,y1}, A^r).
	versionsOfA := map[string]bool{}
	for k := range r.versions {
		versionsOfA[k.fs] = true
	}
	if len(versionsOfA) < 3 {
		t.Fatalf("expected ≥3 distinct version flag sets, got %v", versionsOfA)
	}

	if err := g.Validate(); err != nil {
		t.Fatalf("invalid after replacement: %v\n%s", err, g)
	}
	// A single round duplicates fragments that later rounds re-share;
	// the bound here only guards against tree-scale explosion.
	if g.Size() > 6*sizeBefore {
		t.Fatalf("grammar grew from %d to %d", sizeBefore, g.Size())
	}

	// Convert X to its rule and compare val.
	xr := g.NewRule(3, d.PatternRHS(g.Syms))
	ntOf := map[int32]int32{x: xr.ID}
	g.Rules(func(rule *grammar.Rule) { convertGenerated(rule.RHS, ntOf) })
	got, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, want) {
		t.Fatal("val changed by the multi-version replacement")
	}
	// Every explicit (a,1,b) occurrence must be gone — except inside the
	// X pattern rule, which by definition is that digram.
	g.Rules(func(rule *grammar.Rule) {
		if rule.ID == xr.ID {
			return
		}
		rule.RHS.Walk(func(n *xmltree.Node) bool {
			if n.Label == xmltree.Term(a) && len(n.Children) > 0 &&
				n.Children[0].Label == xmltree.Term(b) {
				t.Errorf("unreplaced occurrence in rule N%d", rule.ID)
			}
			return true
		})
	})
}

// TestMaxRankRespected: digrams above k_in are never replaced, so all
// generated rules have rank ≤ k_in.
func TestMaxRankRespected(t *testing.T) {
	root := xmltree.NewUnranked("r")
	for i := 0; i < 200; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("a", xmltree.NewUnranked("b")))
	}
	for _, kin := range []int{1, 2, 4} {
		g, _ := CompressDocument(root.Binary(), Options{MaxRank: kin})
		g.Rules(func(r *grammar.Rule) {
			if r.Rank > kin {
				t.Errorf("kin=%d: rule N%d has rank %d", kin, r.ID, r.Rank)
			}
		})
		got, err := g.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Size() != root.Binary().Root.Size() {
			t.Fatalf("kin=%d: val size changed", kin)
		}
	}
}

// TestEngineAgreement: TreeRePair and GrammarRePair-on-tree must produce
// grammars of comparable size on the same document (§V-B's claim), and
// identical vals.
func TestEngineAgreement(t *testing.T) {
	root := xmltree.NewUnranked("log")
	for i := 0; i < 300; i++ {
		rec := xmltree.NewUnranked("entry", xmltree.NewUnranked("h"), xmltree.NewUnranked("t"))
		if i%3 == 0 {
			rec.Children = append(rec.Children, xmltree.NewUnranked("x"))
		}
		root.Children = append(root.Children, rec)
	}
	doc := root.Binary()
	gTR, _ := CompressDocument(doc, Options{})
	// Build the same with the treerepair package via the facade-free
	// path: the core engine on a FromTree grammar.
	g2 := grammar.FromTree(doc.Syms.Clone(), doc.Root.Copy())
	gGR, _ := Compress(g2, Options{})
	a, _ := gTR.Expand(0)
	b, _ := gGR.Expand(0)
	if !xmltree.Equal(a, b) {
		t.Fatal("engines disagree on val")
	}
	if gTR.Size() > 2*gGR.Size()+20 || gGR.Size() > 2*gTR.Size()+20 {
		t.Fatalf("engine sizes diverge: %d vs %d", gTR.Size(), gGR.Size())
	}
}

// TestIdempotentRecompression: running GrammarRePair twice must not grow
// the grammar the second time.
func TestIdempotentRecompression(t *testing.T) {
	g, _, _ := grammar2(t)
	g1, _ := Compress(g, Options{})
	g2, st := Compress(g1, Options{})
	if g2.Size() > g1.Size()+2 {
		t.Fatalf("second pass grew the grammar: %d -> %d", g1.Size(), g2.Size())
	}
	if st.MaxIntermediate > 2*g1.Size()+10 {
		t.Fatalf("second pass blow-up: %d vs %d", st.MaxIntermediate, g1.Size())
	}
}
