// Package core implements GrammarRePair, the paper's contribution:
// RePair compression executed directly on an SLCF tree grammar
// (Algorithms 1–8), without decompressing to the tree.
package core

import (
	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// editor wraps one rule body with a parent/child-index map so that
// inlining steps (which splice trees in place) stay O(size of the
// inlined body) instead of re-walking the whole rule. Editors are pooled
// by the per-run scratch; loc survives between uses and is cleared on
// reacquisition.
type editor struct {
	g     *grammar.Grammar
	rule  *grammar.Rule
	arena *xmltree.Arena
	loc   map[*xmltree.Node]parentRef
}

func (ed *editor) reset(g *grammar.Grammar, rule *grammar.Rule, arena *xmltree.Arena) {
	ed.g = g
	ed.rule = rule
	ed.arena = arena
	if ed.loc == nil {
		ed.loc = make(map[*xmltree.Node]parentRef)
	} else {
		clear(ed.loc)
	}
	rule.RHS.WalkParent(func(n, p *xmltree.Node, i int) bool {
		ed.loc[n] = parentRef{node: p, idx: i}
		return true
	})
}

// parent returns the current parent of n within the rule (nil for root)
// and n's child index in it.
func (ed *editor) parent(n *xmltree.Node) (*xmltree.Node, int) {
	pr := ed.loc[n]
	return pr.node, pr.idx
}

// splice replaces the node old (which must be in the rule) by sub,
// updating the parent maps for every node of sub except the interiors of
// the subtrees listed in keep (whose maps are already correct because the
// subtrees were simply relocated).
func (ed *editor) splice(old, sub *xmltree.Node, keep []*xmltree.Node) {
	p, i := ed.parent(old)
	if p == nil {
		ed.rule.RHS = sub
	} else {
		p.Children[i] = sub
	}
	var walk func(n, parent *xmltree.Node, idx int)
	walk = func(n, parent *xmltree.Node, idx int) {
		ed.loc[n] = parentRef{node: parent, idx: idx}
		for _, k := range keep {
			if k == n {
				return // relocated subtree: interior maps still valid
			}
		}
		for j, c := range n.Children {
			walk(c, n, j)
		}
	}
	walk(sub, p, i)
}

// inlineCall replaces the nonterminal call node with an instantiation of
// body (a template that is copied) and returns the new subtree root.
// The call's argument subtrees are spliced by reference.
func (ed *editor) inlineCall(call *xmltree.Node, body *xmltree.Node) *xmltree.Node {
	args := call.Children
	sub := grammar.SubstituteParamsIn(body.CopyIn(ed.arena), args, ed.arena)
	ed.splice(call, sub, args)
	return sub
}

// inlineRule inlines the grammar rule called at node call.
func (ed *editor) inlineRule(call *xmltree.Node) *xmltree.Node {
	callee := ed.g.Rule(call.Label.ID)
	return ed.inlineCall(call, callee.RHS)
}

// replaceDigramScan replaces every explicit occurrence of the digram
// (a, i, b) in the rule body by a node labeled with the generated
// terminal x, top-down greedily (the generalization of left-greedy
// matching the paper mandates in Section III-C). Returns the number of
// replacements. The editor's maps are NOT maintained; callers must treat
// the editor as spent afterwards (the occurrence index rescans the rule).
func replaceDigramScan(rule *grammar.Rule, a int32, i int, b int32, x int32, arena *xmltree.Arena) int {
	n := 0
	var rec func(v *xmltree.Node) *xmltree.Node
	rec = func(v *xmltree.Node) *xmltree.Node {
		if v.Label == xmltree.Term(a) && i-1 < len(v.Children) {
			w := v.Children[i-1]
			if w.Label == xmltree.Term(b) {
				nc := arena.Children(len(v.Children) - 1 + len(w.Children))
				k := copy(nc, v.Children[:i-1])
				k += copy(nc[k:], w.Children)
				copy(nc[k:], v.Children[i:])
				xn := arena.New(xmltree.Term(x))
				xn.Children = nc
				v = xn
				n++
			}
		}
		for j, c := range v.Children {
			v.Children[j] = rec(c)
		}
		return v
	}
	rule.RHS = rec(rule.RHS)
	return n
}
