// Package core implements GrammarRePair, the paper's contribution:
// RePair compression executed directly on an SLCF tree grammar
// (Algorithms 1–8), without decompressing to the tree.
package core

import (
	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// locEntry is one slot of the editor's dense parent table. self guards
// against stale Node.Aux values: an entry speaks for node n only when
// locs[n.Aux].self == n — anything else means n was registered by an
// earlier editor session (or never) and must be (re)registered.
type locEntry struct {
	self   *xmltree.Node // the node this entry belongs to
	parent *xmltree.Node // nil for the rule root
	idx    int32         // child index within parent
}

// editor wraps one rule body with a parent/child-index table so that
// inlining steps (which splice trees in place) stay O(size of the
// inlined body) instead of re-walking the whole rule. The table is a
// dense slice indexed through Node.Aux — registering a node stamps its
// slot index into the node — replacing the pointer-keyed map that was
// rebuilt (and rehashed) on every rule visit. Editors are pooled by the
// per-run scratch; locs keeps its capacity between uses and is truncated
// on reacquisition, so steady-state visits allocate nothing.
type editor struct {
	g     *grammar.Grammar
	rule  *grammar.Rule
	arena *xmltree.Arena
	locs  []locEntry
}

func (ed *editor) reset(g *grammar.Grammar, rule *grammar.Rule, arena *xmltree.Arena) {
	ed.g = g
	ed.rule = rule
	ed.arena = arena
	ed.locs = ed.locs[:0]
	rule.RHS.WalkParent(func(n, p *xmltree.Node, i int) bool {
		ed.setLoc(n, p, i)
		return true
	})
}

// setLoc records n's parent entry, reusing n's existing slot when n is
// already registered in this session and appending a fresh one otherwise.
func (ed *editor) setLoc(n, parent *xmltree.Node, idx int) {
	if a := n.Aux; uint64(a) < uint64(len(ed.locs)) && ed.locs[a].self == n {
		ed.locs[a].parent = parent
		ed.locs[a].idx = int32(idx)
		return
	}
	n.Aux = int32(len(ed.locs))
	ed.locs = append(ed.locs, locEntry{self: n, parent: parent, idx: int32(idx)})
}

// parent returns the current parent of n within the rule (nil for root)
// and n's child index in it. An unregistered node reads as a root,
// matching the zero value the old map returned on a miss.
func (ed *editor) parent(n *xmltree.Node) (*xmltree.Node, int) {
	if a := n.Aux; uint64(a) < uint64(len(ed.locs)) && ed.locs[a].self == n {
		return ed.locs[a].parent, int(ed.locs[a].idx)
	}
	return nil, 0
}

// splice replaces the node old (which must be in the rule) by sub,
// updating the parent table for every node of sub except the interiors of
// the subtrees listed in keep (whose entries are already correct because
// the subtrees were simply relocated).
func (ed *editor) splice(old, sub *xmltree.Node, keep []*xmltree.Node) {
	p, i := ed.parent(old)
	if p == nil {
		ed.rule.RHS = sub
	} else {
		p.Children[i] = sub
	}
	var walk func(n, parent *xmltree.Node, idx int)
	walk = func(n, parent *xmltree.Node, idx int) {
		ed.setLoc(n, parent, idx)
		for _, k := range keep {
			if k == n {
				return // relocated subtree: interior entries still valid
			}
		}
		for j, c := range n.Children {
			walk(c, n, j)
		}
	}
	walk(sub, p, i)
}

// inlineCall replaces the nonterminal call node with an instantiation of
// body (a template that is copied) and returns the new subtree root.
// The call's argument subtrees are spliced by reference.
func (ed *editor) inlineCall(call *xmltree.Node, body *xmltree.Node) *xmltree.Node {
	args := call.Children
	sub := grammar.SubstituteParamsIn(body.CopyIn(ed.arena), args, ed.arena)
	ed.splice(call, sub, args)
	return sub
}

// inlineRule inlines the grammar rule called at node call.
func (ed *editor) inlineRule(call *xmltree.Node) *xmltree.Node {
	callee := ed.g.Rule(call.Label.ID)
	return ed.inlineCall(call, callee.RHS)
}

// replaceDigramScan replaces every explicit occurrence of the digram
// (a, i, b) in the rule body by a node labeled with the generated
// terminal x, top-down greedily (the generalization of left-greedy
// matching the paper mandates in Section III-C). Returns the number of
// replacements. The editor's maps are NOT maintained; callers must treat
// the editor as spent afterwards (the occurrence index rescans the rule).
func replaceDigramScan(rule *grammar.Rule, a int32, i int, b int32, x int32, arena *xmltree.Arena) int {
	n := 0
	var rec func(v *xmltree.Node) *xmltree.Node
	rec = func(v *xmltree.Node) *xmltree.Node {
		if v.Label == xmltree.Term(a) && i-1 < len(v.Children) {
			w := v.Children[i-1]
			if w.Label == xmltree.Term(b) {
				nc := arena.Children(len(v.Children) - 1 + len(w.Children))
				k := copy(nc, v.Children[:i-1])
				k += copy(nc[k:], w.Children)
				copy(nc[k:], v.Children[i:])
				xn := arena.New(xmltree.Term(x))
				xn.Children = nc
				v = xn
				n++
			}
		}
		for j, c := range v.Children {
			v.Children[j] = rec(c)
		}
		return v
	}
	rule.RHS = rec(rule.RHS)
	return n
}
