// Package core implements GrammarRePair, the paper's contribution:
// RePair compression executed directly on an SLCF tree grammar
// (Algorithms 1–8), without decompressing to the tree.
package core

import (
	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// editor wraps one rule body with parent/child-index maps so that
// inlining steps (which splice trees in place) stay O(size of the
// inlined body) instead of re-walking the whole rule.
type editor struct {
	g    *grammar.Grammar
	rule *grammar.Rule
	par  map[*xmltree.Node]*xmltree.Node
	idx  map[*xmltree.Node]int
}

func newEditor(g *grammar.Grammar, rule *grammar.Rule) *editor {
	ed := &editor{
		g:    g,
		rule: rule,
		par:  make(map[*xmltree.Node]*xmltree.Node),
		idx:  make(map[*xmltree.Node]int),
	}
	rule.RHS.WalkParent(func(n, p *xmltree.Node, i int) bool {
		ed.par[n] = p
		ed.idx[n] = i
		return true
	})
	return ed
}

// parent returns the current parent of n within the rule (nil for root)
// and n's child index in it.
func (ed *editor) parent(n *xmltree.Node) (*xmltree.Node, int) {
	return ed.par[n], ed.idx[n]
}

// splice replaces the node old (which must be in the rule) by sub,
// updating the parent maps for every node of sub except the interiors of
// the subtrees listed in keep (whose maps are already correct because the
// subtrees were simply relocated).
func (ed *editor) splice(old, sub *xmltree.Node, keep map[*xmltree.Node]bool) {
	p, i := ed.parent(old)
	if p == nil {
		ed.rule.RHS = sub
	} else {
		p.Children[i] = sub
	}
	var walk func(n, parent *xmltree.Node, idx int)
	walk = func(n, parent *xmltree.Node, idx int) {
		ed.par[n] = parent
		ed.idx[n] = idx
		if keep[n] {
			return // relocated subtree: interior maps still valid
		}
		for j, c := range n.Children {
			walk(c, n, j)
		}
	}
	walk(sub, p, i)
}

// inlineCall replaces the nonterminal call node with an instantiation of
// body (a template that is copied) and returns the new subtree root.
// The call's argument subtrees are spliced by reference.
func (ed *editor) inlineCall(call *xmltree.Node, body *xmltree.Node) *xmltree.Node {
	args := call.Children
	keep := make(map[*xmltree.Node]bool, len(args))
	for _, a := range args {
		keep[a] = true
	}
	sub := grammar.SubstituteParams(body.Copy(), args)
	ed.splice(call, sub, keep)
	return sub
}

// inlineRule inlines the grammar rule called at node call.
func (ed *editor) inlineRule(call *xmltree.Node) *xmltree.Node {
	callee := ed.g.Rule(call.Label.ID)
	return ed.inlineCall(call, callee.RHS)
}

// replaceDigramScan replaces every explicit occurrence of the digram
// (a, i, b) in the rule body by a node labeled with the generated
// terminal x, top-down greedily (the generalization of left-greedy
// matching the paper mandates in Section III-C). Returns the number of
// replacements. The editor's maps are NOT maintained; callers must treat
// the editor as spent afterwards (the occurrence index rescans the rule).
func replaceDigramScan(rule *grammar.Rule, a int32, i int, b int32, x int32) int {
	n := 0
	var rec func(v *xmltree.Node) *xmltree.Node
	rec = func(v *xmltree.Node) *xmltree.Node {
		if v.Label == xmltree.Term(a) && i-1 < len(v.Children) {
			w := v.Children[i-1]
			if w.Label == xmltree.Term(b) {
				nc := make([]*xmltree.Node, 0, len(v.Children)-1+len(w.Children))
				nc = append(nc, v.Children[:i-1]...)
				nc = append(nc, w.Children...)
				nc = append(nc, v.Children[i:]...)
				v = xmltree.New(xmltree.Term(x), nc...)
				n++
			}
		}
		for j, c := range v.Children {
			v.Children[j] = rec(c)
		}
		return v
	}
	rule.RHS = rec(rule.RHS)
	return n
}
