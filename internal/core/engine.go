package core

import (
	"repro/internal/digram"
	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// Options configures GrammarRePair.
type Options struct {
	// MaxRank is the paper's k_in (default 4): digrams whose replacement
	// rule would need more parameters are never replaced.
	MaxRank int
	// NoOptimize disables the Algorithm 6–8 optimization (ReplacementDAG
	// with fragment export) and falls back to Algorithm 5's plain
	// dependency-DAG inlining. Fig. 3 measures this mode against the
	// optimized default.
	NoOptimize bool
}

func (o Options) maxRank() int {
	if o.MaxRank <= 0 {
		return 4
	}
	return o.MaxRank
}

// Stats reports what happened during a recompression run.
type Stats struct {
	Rounds          int   // digram replacements performed
	Replaced        int   // total occurrences replaced across rounds
	InputSize       int   // |G| of the input grammar
	MaxIntermediate int   // max |G| observed after any round
	FinalSize       int   // |G| after pruning
	PrunedRules     int   // rules removed by the pruning phase
	Sizes           []int // |G| after each round (Fig. 2 / Fig. 3)
}

// Compress runs GrammarRePair (Algorithm 1) on the grammar and returns a
// new, recompressed grammar with the same val. The input grammar is not
// modified.
func Compress(in *grammar.Grammar, opt Options) (*grammar.Grammar, *Stats) {
	g := in.Clone()
	st := &Stats{InputSize: g.Size()}
	ix := newOccIndex(g, opt.maxRank())
	sc := newScratch()

	type made struct {
		term int32
		d    digram.Digram
	}
	var rules []made
	extraEdges := 0 // Σ edges of the (conceptual) X → t_X rules

	for {
		d, _, ok := ix.best()
		if !ok {
			break
		}
		x := g.Syms.Fresh("X", d.Rank(g.Syms))
		rules = append(rules, made{term: x, d: d})
		extraEdges += g.Syms.Rank(d.A) + g.Syms.Rank(d.B)

		r := newReplacer(g, ix, sc, d, x, !opt.NoOptimize)
		edited, deleted := r.run()
		st.Replaced += r.replaced
		ix.refresh(edited, deleted)

		st.Rounds++
		size := ix.totalNodes() - g.NumRules() + extraEdges
		st.Sizes = append(st.Sizes, size)
		if size > st.MaxIntermediate {
			st.MaxIntermediate = size
		}
	}

	// Materialize the X → t_X rules: every generated terminal becomes a
	// nonterminal whose rule body is its digram pattern.
	ntOf := make(map[int32]int32, len(rules))
	for _, m := range rules {
		rhs := m.d.PatternRHSIn(g.Syms, sc.arena)
		convertGenerated(rhs, ntOf)
		nr := g.NewRule(m.d.Rank(g.Syms), rhs)
		ntOf[m.term] = nr.ID
	}
	g.Rules(func(r *grammar.Rule) {
		convertGenerated(r.RHS, ntOf)
	})
	g.GarbageCollect() // X rules for digrams whose uses all got re-replaced
	st.PrunedRules = g.Prune()
	st.FinalSize = g.Size()
	// Detach the rule bodies from the run's scratch arena: a single live
	// node would otherwise keep its whole allocation chunk (and every dead
	// transient copy in it) reachable for the grammar's lifetime. The
	// final grammar is small, so one plain-heap copy per rule bounds
	// retention to the actual output.
	g.Rules(func(r *grammar.Rule) {
		r.RHS = r.RHS.Copy()
	})
	return g, st
}

// convertGenerated rewrites generated-terminal labels into nonterminal
// calls using the terminal→rule mapping.
func convertGenerated(n *xmltree.Node, ntOf map[int32]int32) {
	if n.Label.Kind == xmltree.Terminal {
		if nt, ok := ntOf[n.Label.ID]; ok {
			n.Label = xmltree.Nonterm(nt)
		}
	}
	for _, c := range n.Children {
		convertGenerated(c, ntOf)
	}
}

// CompressTree is a convenience wrapper: it wraps a plain tree into a
// single-rule grammar and runs GrammarRePair over it ("GrammarRePair
// applied to trees" in the paper's experiments).
func CompressTree(st *xmltree.SymbolTable, root *xmltree.Node, opt Options) (*grammar.Grammar, *Stats) {
	g := grammar.FromTree(st.Clone(), root.Copy())
	return Compress(g, opt)
}

// CompressDocument compresses a binary XML document.
func CompressDocument(doc *xmltree.Document, opt Options) (*grammar.Grammar, *Stats) {
	return CompressTree(doc.Syms, doc.Root, opt)
}
