package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/digram"
	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/xmltree"
)

// grammar1 builds the paper's "Grammar 1" (Section IV-A), wrapped in a
// start rule S → C so usages are defined:
//
//	C → A(B(⊥), ⊥)
//	A(y1,y2) → a(y1, a(B(⊥), a(⊥, y2)))
//	B(y1) → b(y1, ⊥)
func grammar1(t *testing.T) (g *grammar.Grammar, a, b int32, A, B, C int32) {
	t.Helper()
	st := xmltree.NewSymbolTable()
	a = st.InternElement("a")
	b = st.InternElement("b")
	g = grammar.New(st)
	Brule := g.NewRule(1, xmltree.New(xmltree.Term(b), xmltree.New(xmltree.Param(1)), xmltree.NewBottom()))
	Arule := g.NewRule(2, xmltree.New(xmltree.Term(a),
		xmltree.New(xmltree.Param(1)),
		xmltree.New(xmltree.Term(a),
			xmltree.New(xmltree.Nonterm(Brule.ID), xmltree.NewBottom()),
			xmltree.New(xmltree.Term(a), xmltree.NewBottom(), xmltree.New(xmltree.Param(2))))))
	Crule := g.NewRule(0, xmltree.New(xmltree.Nonterm(Arule.ID),
		xmltree.New(xmltree.Nonterm(Brule.ID), xmltree.NewBottom()),
		xmltree.NewBottom()))
	g.StartRule().RHS = xmltree.New(xmltree.Nonterm(Crule.ID))
	if err := g.Validate(); err != nil {
		t.Fatalf("grammar 1 invalid: %v", err)
	}
	return g, a, b, Arule.ID, Brule.ID, Crule.ID
}

// TestRetrieveOccsGrammar1 checks the occurrence counting of Tables I/II:
// digram (a,1,b) has two generators — (A,4) and (C,2) — and the
// overlapping equal-label occurrence at (A,6) is not recorded.
func TestRetrieveOccsGrammar1(t *testing.T) {
	g, a, b, A, B, C := grammar1(t)
	_ = B
	ix := newOccIndex(g, 4)

	dab := digram.Digram{A: a, I: 1, B: b}
	if got := ix.live(dab); got != 2 {
		t.Fatalf("count(a,1,b) = %v, want 2", got)
	}
	daa := digram.Digram{A: a, I: 2, B: a}
	if got := ix.live(daa); got != 1 {
		t.Fatalf("count(a,2,a) = %v, want 1 (overlap must be excluded)", got)
	}
	// Generators live in the expected rules.
	if len(ix.generators(A, dab)) != 1 {
		t.Fatalf("rule A should hold 1 generator of (a,1,b)")
	}
	if len(ix.generators(C, dab)) != 1 {
		t.Fatalf("rule C should hold 1 generator of (a,1,b)")
	}
	if len(ix.generators(A, daa)) != 1 {
		t.Fatalf("rule A should hold 1 generator of (a,2,a)")
	}
}

// TestResolutionAcrossRules checks TREECHILD/TREEPARENT (Algorithms 2/3)
// through nested rule and parameter boundaries.
func TestResolutionAcrossRules(t *testing.T) {
	g, a, b, A, B, C := grammar1(t)
	_, _ = A, C
	ix := newOccIndex(g, 4)
	// Root chain of B resolves to the b terminal.
	res := ix.resolveRoot(B)
	if res.label != b {
		t.Fatalf("rootTerm(B) = %d, want b=%d", res.label, b)
	}
	// Parent of B's parameter y1 is the b node itself at child index 1.
	pp := ix.resolveParamParent(B, 1)
	if pp.label != b || pp.idx != 1 {
		t.Fatalf("paramParent(B,1) = (%d,%d), want (b,1)", pp.label, pp.idx)
	}
	// Parent of A's y1 is the root a at index 1; of y2 the inner a at 2.
	pp = ix.resolveParamParent(A, 1)
	if pp.label != a || pp.idx != 1 {
		t.Fatalf("paramParent(A,1) = (%d,%d), want (a,1)", pp.label, pp.idx)
	}
	pp = ix.resolveParamParent(A, 2)
	if pp.label != a || pp.idx != 2 {
		t.Fatalf("paramParent(A,2) = (%d,%d), want (a,2)", pp.label, pp.idx)
	}
}

// TestReplaceRoundGrammar1 replaces (a,1,b) in Grammar 1 (the concluding
// example's digram) and checks the grammar still derives the same tree
// with no occurrence of the digram left.
func TestReplaceRoundGrammar1(t *testing.T) {
	for _, optimized := range []bool{true, false} {
		g, a, b, _, _, _ := grammar1(t)
		want, err := g.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		ix := newOccIndex(g, 4)
		d := digram.Digram{A: a, I: 1, B: b}
		x := g.Syms.Fresh("X", d.Rank(g.Syms))
		r := newReplacer(g, ix, newScratch(), d, x, optimized)
		edited, deleted := r.run()
		ix.refresh(edited, deleted)

		if err := g.Validate(); err != nil {
			t.Fatalf("optimized=%v: invalid after replacement: %v\n%s", optimized, err, g)
		}
		if got := ix.live(d); got != 0 {
			t.Fatalf("optimized=%v: count(a,1,b) = %v after replacement", optimized, got)
		}
		if r.replaced != 2 {
			t.Fatalf("optimized=%v: replaced %d occurrences, want 2", optimized, r.replaced)
		}
		// val must be preserved modulo the X terminal → re-expand and
		// rewrite X back: easier — expand and replace X nodes by their
		// pattern meaning. Instead we check val after full conversion in
		// TestCompressPreservesVal; here compare sizes via the digram
		// count of x occurrences: every replaced occurrence must produce
		// an x-labeled node somewhere.
		found := 0
		g.Rules(func(rule *grammar.Rule) {
			found += rule.RHS.CountLabel(xmltree.Term(x))
		})
		if found == 0 {
			t.Fatalf("optimized=%v: no X nodes produced", optimized)
		}
		_ = want
	}
}

// TestConcludingExample replays Section IV-F: replacing α = (a,1,b) on
// Grammar 1 with the optimization enabled must leave rules of the shapes
// C → X(⊥,⊥,D(⊥)), D(y) → X(⊥,⊥,a(⊥,y)), with B gone or unreferenced.
func TestConcludingExample(t *testing.T) {
	g, a, b, A, B, C := grammar1(t)
	// The paper's fragment assumes A, B, C are called elsewhere, so the
	// export condition |refs| > 1 holds for A and B. Add extra callers.
	extra := g.NewRule(0, xmltree.New(xmltree.Term(a),
		xmltree.New(xmltree.Nonterm(A),
			xmltree.New(xmltree.Nonterm(B), xmltree.NewBottom()),
			xmltree.NewBottom()),
		xmltree.New(xmltree.Nonterm(C))))
	s := g.StartRule()
	s.RHS = xmltree.New(xmltree.Term(a), xmltree.New(xmltree.Nonterm(C)), xmltree.New(xmltree.Nonterm(extra.ID)))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}

	ix := newOccIndex(g, 4)
	d := digram.Digram{A: a, I: 1, B: b}
	x := g.Syms.Fresh("X", 3)
	r := newReplacer(g, ix, newScratch(), d, x, true)
	r.run()
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid: %v\n%s", err, g)
	}

	// Convert x into its rule and compare val with the original.
	xr := g.NewRule(3, d.PatternRHS(g.Syms))
	ntOf := map[int32]int32{x: xr.ID}
	g.Rules(func(rule *grammar.Rule) { convertGenerated(rule.RHS, ntOf) })
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid after conversion: %v\n%s", err, g)
	}
	got, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, want) {
		t.Fatalf("val changed:\n got %s\nwant %s", got.Format(g.Syms), want.Format(g.Syms))
	}
	// Rule C must have been rewritten to X(⊥,⊥,D(⊥)) — i.e. its body is
	// a call to the X rule whose third argument is a rank-1 export rule.
	crhs := g.Rule(C).RHS
	if crhs.Label != xmltree.Nonterm(xr.ID) {
		t.Fatalf("C body should be an X call, got %s", crhs.Format(g.Syms))
	}
	third := crhs.Children[2]
	if third.Label.Kind != xmltree.Nonterminal {
		t.Fatalf("C's third argument should be an export-rule call, got %s", third.Format(g.Syms))
	}
	dRule := g.Rule(third.Label.ID)
	if dRule.Rank != 1 {
		t.Fatalf("export rule rank = %d, want 1", dRule.Rank)
	}
	// And the export rule D is X(⊥,⊥,a(⊥,y1)).
	if dRule.RHS.Label != xmltree.Nonterm(xr.ID) {
		t.Fatalf("D body should call X, got %s", dRule.RHS.Format(g.Syms))
	}
}

// compressAndCompare compresses a document with GrammarRePair applied to
// the tree and asserts val preservation.
func compressAndCompare(t *testing.T, doc *xmltree.Document, opt Options) *grammar.Grammar {
	t.Helper()
	g, st := CompressDocument(doc, opt)
	if err := g.Validate(); err != nil {
		t.Fatalf("compressed grammar invalid: %v", err)
	}
	got, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, doc.Root) {
		t.Fatalf("val(G) != input tree")
	}
	if st.FinalSize != g.Size() {
		t.Fatalf("stats FinalSize %d != %d", st.FinalSize, g.Size())
	}
	return g
}

func randomUnranked(rng *rand.Rand, n int, labels []string) *xmltree.Unranked {
	root := &xmltree.Unranked{Label: labels[rng.Intn(len(labels))]}
	nodes := []*xmltree.Unranked{root}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := &xmltree.Unranked{Label: labels[rng.Intn(len(labels))]}
		p.Children = append(p.Children, c)
		nodes = append(nodes, c)
	}
	return root
}

func TestCompressTreePreservesVal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		u := randomUnranked(rng, 1+rng.Intn(80), []string{"a", "b", "c"})
		compressAndCompare(t, u.Binary(), Options{})
	}
}

func TestCompressTreeNonOptimizedPreservesVal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		u := randomUnranked(rng, 1+rng.Intn(80), []string{"a", "b", "c"})
		compressAndCompare(t, u.Binary(), Options{NoOptimize: true})
	}
}

// TestCompressGrammarPreservesVal runs GrammarRePair on grammars produced
// by TreeRePair (the paper's primary pipeline: compress, update, then
// recompress the grammar).
func TestCompressGrammarPreservesVal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		u := randomUnranked(rng, 20+rng.Intn(150), []string{"a", "b", "c", "d"})
		doc := u.Binary()
		tg, _ := treerepair.Compress(doc, treerepair.Options{})
		want, err := tg.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		g2, _ := Compress(tg, Options{})
		if err := g2.Validate(); err != nil {
			t.Fatalf("invalid: %v", err)
		}
		got, err := g2.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		if !xmltree.Equal(got, want) {
			t.Fatal("val changed by grammar recompression")
		}
	}
}

func TestCompressList(t *testing.T) {
	root := xmltree.NewUnranked("r")
	for i := 0; i < 512; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("a"))
	}
	g := compressAndCompare(t, root.Binary(), Options{})
	if g.Size() > 60 {
		t.Fatalf("512-list should compress exponentially, |G| = %d", g.Size())
	}
}

func TestCompressGrammarOnAlreadyCompressed(t *testing.T) {
	// Recompressing an exponentially compressing grammar must not blow it
	// up: the whole point of GrammarRePair.
	root := xmltree.NewUnranked("r")
	for i := 0; i < 1024; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("a"))
	}
	doc := root.Binary()
	g1, _ := CompressDocument(doc, Options{})
	g2, st := Compress(g1, Options{})
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	if g2.Size() > g1.Size()+4 {
		t.Fatalf("recompression grew the grammar: %d -> %d", g1.Size(), g2.Size())
	}
	if st.MaxIntermediate > 3*g1.Size()+20 {
		t.Fatalf("blow-up too large: max %d vs input %d", st.MaxIntermediate, g1.Size())
	}
	n1, _ := g1.ValNodeCount()
	n2, _ := g2.ValNodeCount()
	if n1 != n2 {
		t.Fatalf("val size changed: %d -> %d", n1, n2)
	}
}

func TestPropertyCompressGrammar(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	f := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + int(size)%150
		u := randomUnranked(rng, n, []string{"a", "b", "c"})
		doc := u.Binary()
		tg, _ := treerepair.Compress(doc, treerepair.Options{})
		g2, _ := Compress(tg, Options{})
		if g2.Validate() != nil {
			return false
		}
		got, err := g2.Expand(0)
		if err != nil {
			return false
		}
		return xmltree.Equal(got, doc.Root)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFlagSet(t *testing.T) {
	f := &flagSet{}
	f.addY(3)
	f.addY(1)
	f.addY(3)
	f.r = true
	if f.key() != "r,y1,y3" {
		t.Fatalf("key = %q", f.key())
	}
	if len(f.ys) != 2 {
		t.Fatalf("duplicate y added: %v", f.ys)
	}
	g := &flagSet{}
	if g.key() != "" {
		t.Fatalf("empty key = %q", g.key())
	}
}

func TestStatsSizes(t *testing.T) {
	root := xmltree.NewUnranked("r")
	for i := 0; i < 64; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("a"))
	}
	_, st := CompressDocument(root.Binary(), Options{})
	if st.Rounds != len(st.Sizes) || st.Rounds == 0 {
		t.Fatalf("rounds %d, sizes %d", st.Rounds, len(st.Sizes))
	}
	max := 0
	for _, s := range st.Sizes {
		if s > max {
			max = s
		}
	}
	if max != st.MaxIntermediate {
		t.Fatalf("MaxIntermediate mismatch: %d vs %d", st.MaxIntermediate, max)
	}
}
