package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/digram"
	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// flagSet is the paper's version key F ⊆ {r, y1..yk}: which nodes of a
// rule body must be isolated (made terminally available) before the body
// is inlined at a call site — r for the root (tree-child resolution) and
// y_i for the parent of parameter i (tree-parent resolution).
type flagSet struct {
	r  bool
	ys []int // sorted, 1-based parameter indices
}

func (f *flagSet) addY(i int) {
	pos := sort.SearchInts(f.ys, i)
	if pos < len(f.ys) && f.ys[pos] == i {
		return
	}
	f.ys = append(f.ys, 0)
	copy(f.ys[pos+1:], f.ys[pos:])
	f.ys[pos] = i
}

func (f *flagSet) key() string {
	var b strings.Builder
	if f.r {
		b.WriteByte('r')
	}
	for _, y := range f.ys {
		fmt.Fprintf(&b, ",y%d", y)
	}
	return b.String()
}

// versionKey identifies a rule version in the ReplacementDAG RDα.
type versionKey struct {
	rule int32
	fs   string
}

// scratch owns the allocation state shared by every replacement round of
// one compression run: the node arena the round's tree surgery allocates
// from, the per-rule flag/splice maps (cleared, not reallocated, between
// rules), and pools for the maps and editors that the recursive version
// construction needs one instance of per activation.
type scratch struct {
	arena    *xmltree.Arena
	flags    map[*xmltree.Node]*flagSet      // processRule flag accumulation
	spliced  map[*xmltree.Node]*xmltree.Node // processRule inline records
	order    []*xmltree.Node                 // processRule preorder buffer
	flagMaps []map[*xmltree.Node]*flagSet
	boolMaps []map[*xmltree.Node]bool
	editors  []*editor

	// Per-round dense rule-ID tables (born/edited/live flags, topo
	// positions), pooled so a compression run does not reallocate and
	// re-zero O(MaxRuleID) slices on every digram round.
	born, edited, live []bool
	pos                []int
}

// resetBools grows a pooled dense table to length n and zeroes it.
func resetBools(s []bool, n int) []bool {
	s = grammar.GrowTo(s, n)
	clear(s)
	return s
}

func newScratch() *scratch {
	return &scratch{
		arena:   &xmltree.Arena{},
		flags:   make(map[*xmltree.Node]*flagSet),
		spliced: make(map[*xmltree.Node]*xmltree.Node),
	}
}

func (sc *scratch) getEditor(g *grammar.Grammar, rule *grammar.Rule) *editor {
	var ed *editor
	if n := len(sc.editors); n > 0 {
		ed = sc.editors[n-1]
		sc.editors = sc.editors[:n-1]
	} else {
		ed = &editor{}
	}
	ed.reset(g, rule, sc.arena)
	return ed
}

func (sc *scratch) putEditor(ed *editor) {
	ed.g = nil
	ed.rule = nil
	// Zero the entries so a pooled editor does not pin the last rule's
	// nodes; capacity is kept for the next visit.
	clear(ed.locs)
	ed.locs = ed.locs[:0]
	sc.editors = append(sc.editors, ed)
}

func (sc *scratch) getFlagMap() map[*xmltree.Node]*flagSet {
	if n := len(sc.flagMaps); n > 0 {
		m := sc.flagMaps[n-1]
		sc.flagMaps = sc.flagMaps[:n-1]
		return m
	}
	return make(map[*xmltree.Node]*flagSet)
}

func (sc *scratch) putFlagMap(m map[*xmltree.Node]*flagSet) {
	clear(m)
	sc.flagMaps = append(sc.flagMaps, m)
}

func (sc *scratch) getBoolMap() map[*xmltree.Node]bool {
	if n := len(sc.boolMaps); n > 0 {
		m := sc.boolMaps[n-1]
		sc.boolMaps = sc.boolMaps[:n-1]
		return m
	}
	return make(map[*xmltree.Node]bool)
}

func (sc *scratch) putBoolMap(m map[*xmltree.Node]bool) {
	clear(m)
	sc.boolMaps = append(sc.boolMaps, m)
}

// replacer executes one digram-replacement round over the grammar:
// Algorithm 5 (non-optimized, plain DependencyDAG inlining) or
// Algorithms 6–8 (optimized, ReplacementDAG with fragment export).
type replacer struct {
	g         *grammar.Grammar
	ix        *occIndex
	sc        *scratch
	d         digram.Digram
	x         int32 // generated terminal standing for the new nonterminal X
	optimized bool

	// refs0 snapshots |ref_G(Q)| at round start (dense, indexed by rule
	// ID). Algorithm 8's export condition must see the pre-round counts:
	// a rule referenced from several sites keeps (or shares) its
	// fragments via export rules even when every one of those sites
	// inlines a version during this round — evaluating against live
	// counts would let the last inline copy the full body and double the
	// grammar level by level. Rules born during the round lie past the
	// snapshot's length and read as 0.
	refs0 []int
	// born marks export rules created during this round (dense, grown as
	// rules appear). They are always referenced from at least one
	// surviving body, so inlining one of their fragments without export
	// would duplicate it — they get the export treatment unconditionally
	// (refs0 cannot know about them).
	born     []bool
	versions map[versionKey]*xmltree.Node // processed version bodies (templates)
	edited   []bool                       // rules whose bodies changed or were created
	replaced int
}

func newReplacer(g *grammar.Grammar, ix *occIndex, sc *scratch, d digram.Digram, x int32, optimized bool) *replacer {
	n := int(g.MaxRuleID())
	sc.born = resetBools(sc.born, n)
	sc.edited = resetBools(sc.edited, n)
	return &replacer{
		g:         g,
		ix:        ix,
		sc:        sc,
		d:         d,
		x:         x,
		optimized: optimized,
		refs0:     g.RefCounts(),
		born:      sc.born,
		versions:  make(map[versionKey]*xmltree.Node),
		edited:    sc.edited,
	}
}

// refCount0 reads the pre-round reference count (0 for rules born since).
func (r *replacer) refCount0(id int32) int {
	if int(id) < len(r.refs0) {
		return r.refs0[id]
	}
	return 0
}

func (r *replacer) isBorn(id int32) bool {
	return int(id) < len(r.born) && r.born[id]
}

func (r *replacer) markEdited(id int32) {
	r.edited = grammar.GrowTo(r.edited, int(id)+1)
	r.edited[id] = true
}

// run replaces every tracked occurrence of the digram. It returns the set
// of edited/created rules and the rules deleted because they became
// unreachable (paper: "If afterwards |ref_G(Q)| = 0, we delete rule Q").
func (r *replacer) run() (edited []int32, deleted []int32) {
	withGens := r.ix.rulesWithGenerators(r.d)
	// Process bottom-up: callees before callers (Algorithm 5 line 2 /
	// Algorithm 6 line 2). pos needs no clear: the topo loop writes every
	// live ID and only live IDs are read.
	r.sc.pos = grammar.GrowTo(r.sc.pos, int(r.g.MaxRuleID()))
	pos := r.sc.pos
	for i, id := range r.ix.topoAntiSL() {
		pos[id] = i
	}
	sort.Slice(withGens, func(i, j int) bool { return pos[withGens[i]] < pos[withGens[j]] })
	for _, rid := range withGens {
		r.processRule(rid)
	}
	before := r.g.RuleIDs()
	r.g.GarbageCollect()
	r.sc.live = resetBools(r.sc.live, int(r.g.MaxRuleID()))
	live := r.sc.live
	for _, id := range r.g.RuleIDs() {
		live[id] = true
	}
	// before is creation order, which decoded grammars may present out of
	// ID order, so deleted gets an explicit sort; edited comes off the
	// dense-slice scan already ascending.
	for _, id := range before {
		if !live[id] {
			deleted = append(deleted, id)
		}
	}
	sort.Slice(deleted, func(i, j int) bool { return deleted[i] < deleted[j] })
	for id, e := range r.edited {
		if e && live[id] {
			edited = append(edited, int32(id))
		}
	}
	// markEdited/exportOne may have regrown the pooled tables past the
	// scratch's references; hand the larger backings back for reuse.
	r.sc.born = r.born
	r.sc.edited = r.edited
	return edited, deleted
}

// processRule isolates every occurrence of the digram generated in rule
// rid and replaces the now-explicit occurrences by the generated terminal.
func (r *replacer) processRule(rid int32) {
	rule := r.g.Rule(rid)
	if rule == nil {
		return
	}
	gens := r.ix.generators(rid, r.d)
	if len(gens) == 0 {
		return
	}
	ed := r.sc.getEditor(r.g, rule)

	// RDα construction for this rule (Section IV-E): accumulate flags per
	// nonterminal node — r on generator call nodes, y_i on call nodes that
	// are parents of generators.
	flags := r.sc.flags
	clear(flags)
	getFlags := func(n *xmltree.Node) *flagSet {
		f := flags[n]
		if f == nil {
			f = &flagSet{}
			flags[n] = f
		}
		return f
	}
	for _, gnode := range gens {
		if gnode.Label.Kind == xmltree.Nonterminal {
			getFlags(gnode).r = true
		}
		p, i := ed.parent(gnode)
		if p != nil && p.Label.Kind == xmltree.Nonterminal {
			getFlags(p).addY(i + 1)
		}
	}

	// Inline the demanded version at every flagged node (preorder of the
	// pre-inline body, for determinism), recording what replaced each
	// inlined call so generator positions can be re-anchored.
	spliced := r.sc.spliced
	clear(spliced)
	if len(flags) > 0 {
		order := r.sc.order[:0]
		rule.RHS.Walk(func(n *xmltree.Node) bool {
			if _, ok := flags[n]; ok {
				order = append(order, n)
			}
			return true
		})
		r.sc.order = order
		for _, call := range order {
			spliced[call] = r.inlineVersionAt(ed, call, flags[call])
		}
	}

	// Residual chains: with the optimized versions the flagged inlines
	// already isolated everything; in non-optimized mode (plain bodies)
	// the chains may need several inlining steps (Algorithm 5).
	for _, gnode := range gens {
		anchor := gnode
		if s, ok := spliced[gnode]; ok {
			anchor = s
		}
		for anchor.Label.Kind == xmltree.Nonterminal {
			anchor = r.inlineVersionAt(ed, anchor, &flagSet{r: true})
		}
		for {
			p, i := ed.parent(anchor)
			if p == nil || p.Label.Kind != xmltree.Nonterminal {
				break
			}
			r.inlineVersionAt(ed, p, &flagSet{ys: []int{i + 1}})
		}
	}

	r.replaced += replaceDigramScan(rule, r.d.A, r.d.I, r.d.B, r.x, r.sc.arena)
	r.markEdited(rid)
	r.sc.putEditor(ed)
}

// inlineVersionAt inlines the processed version (optimized mode) or the
// plain current body (non-optimized mode) of the callee at the call node,
// maintains the approximate reference counts, and returns the subtree
// that took the call's place.
func (r *replacer) inlineVersionAt(ed *editor, call *xmltree.Node, fs *flagSet) *xmltree.Node {
	callee := call.Label.ID
	var body *xmltree.Node
	if r.optimized {
		body = r.version(callee, fs)
	} else {
		body = r.g.Rule(callee).RHS
	}
	return ed.inlineCall(call, body)
}

// version returns (building and memoizing on demand) the processed
// version body of rule rid for flag set fs: a tree with val equal to the
// rule's val in which the root (if r ∈ F) and the parent of each flagged
// parameter are terminal, and — if the rule keeps other references — all
// fragments not needed for the isolation exported into fresh rules
// (Algorithms 7–8). The returned tree is a template; inlineCall copies it.
func (r *replacer) version(rid int32, fs *flagSet) *xmltree.Node {
	key := versionKey{rule: rid, fs: fs.key()}
	if v, ok := r.versions[key]; ok {
		return v
	}
	rule := r.g.Rule(rid)
	work := &grammar.Rule{ID: rid, Rank: rule.Rank, RHS: rule.RHS.CopyIn(r.sc.arena)}
	ed := r.sc.getEditor(r.g, work)

	paramNode := make([]*xmltree.Node, rule.Rank)
	work.RHS.Walk(func(n *xmltree.Node) bool {
		if n.Label.Kind == xmltree.Parameter {
			paramNode[n.Label.ID-1] = n
		}
		return true
	})

	// Flag propagation into the version copy (Section IV-E): the root
	// gets r, the parent of each flagged parameter gets the matching y;
	// a single node can accumulate several flags.
	vflags := r.sc.getFlagMap()
	getFlags := func(n *xmltree.Node) *flagSet {
		f := vflags[n]
		if f == nil {
			f = &flagSet{}
			vflags[n] = f
		}
		return f
	}
	if fs.r && work.RHS.Label.Kind == xmltree.Nonterminal {
		getFlags(work.RHS).r = true
	}
	for _, y := range fs.ys {
		p, i := ed.parent(paramNode[y-1])
		if p != nil && p.Label.Kind == xmltree.Nonterminal {
			getFlags(p).addY(i + 1)
		}
	}
	if len(vflags) > 0 {
		var order []*xmltree.Node
		work.RHS.Walk(func(n *xmltree.Node) bool {
			if _, ok := vflags[n]; ok {
				order = append(order, n)
			}
			return true
		})
		for _, call := range order {
			r.inlineTemplateAt(ed, call, vflags[call])
		}
	}
	r.sc.putFlagMap(vflags)

	// Residual chains plus marking of the isolated nodes (Algorithm 7
	// lines 6–13).
	var marks []*xmltree.Node
	if fs.r {
		for work.RHS.Label.Kind == xmltree.Nonterminal {
			r.inlineTemplateAt(ed, work.RHS, &flagSet{r: true})
		}
		marks = append(marks, work.RHS)
	}
	for _, y := range fs.ys {
		for {
			p, i := ed.parent(paramNode[y-1])
			if p.Label.Kind != xmltree.Nonterminal {
				marks = append(marks, p)
				break
			}
			r.inlineTemplateAt(ed, p, &flagSet{ys: []int{i + 1}})
		}
	}
	r.sc.putEditor(ed)

	body := work.RHS
	if r.optimized && (r.refCount0(rid) > 1 || r.isBorn(rid)) && len(marks) > 0 {
		body = r.exportFragments(body, marks)
	}
	r.versions[key] = body
	return body
}

// inlineTemplateAt inlines a sub-version (or plain body) into a version
// template under construction. Unlike inlineVersionAt this does NOT touch
// the reference counts: templates are not part of the grammar — their
// calls are accounted for when the finished template is inlined at a real
// call site.
func (r *replacer) inlineTemplateAt(ed *editor, call *xmltree.Node, fs *flagSet) *xmltree.Node {
	var body *xmltree.Node
	if r.optimized {
		body = r.version(call.Label.ID, fs)
	} else {
		body = r.g.Rule(call.Label.ID).RHS
	}
	return ed.inlineCall(call, body)
}

// exportFragments implements Algorithm 8: every maximal connected
// fragment of ≥ 2 unmarked, non-parameter nodes is exported into a fresh
// rule and replaced by a call to it. Returns the (possibly new) body root.
func (r *replacer) exportFragments(body *xmltree.Node, marks []*xmltree.Node) *xmltree.Node {
	marked := r.sc.getBoolMap()
	for _, m := range marks {
		marked[m] = true
	}
	fragmentable := func(n *xmltree.Node) bool {
		return !marked[n] && n.Label.Kind != xmltree.Parameter
	}
	var process func(n *xmltree.Node, parentFrag bool) *xmltree.Node
	process = func(n *xmltree.Node, parentFrag bool) *xmltree.Node {
		if fragmentable(n) && !parentFrag && fragmentSize(n, fragmentable) >= 2 {
			call := r.exportOne(n, fragmentable)
			// The call's arguments are the fragment's holes (marked or
			// parameter subtrees); fragments nested below them are
			// exported independently.
			for i, a := range call.Children {
				call.Children[i] = process(a, false)
			}
			return call
		}
		for i, c := range n.Children {
			n.Children[i] = process(c, fragmentable(n))
		}
		return n
	}
	out := process(body, false)
	r.sc.putBoolMap(marked)
	return out
}

// fragmentSize counts the connected fragmentable nodes reachable downward
// from n (n included).
func fragmentSize(n *xmltree.Node, fragmentable func(*xmltree.Node) bool) int {
	s := 1
	for _, c := range n.Children {
		if fragmentable(c) {
			s += fragmentSize(c, fragmentable)
		}
	}
	return s
}

// exportOne exports the fragment rooted at n into a fresh rule U → t_U
// and returns the call U(t1..tk) replacing it. The fragment's holes —
// subtrees rooted at marked or parameter nodes — become U's parameters in
// preorder; the actual hole subtrees become the call's arguments.
func (r *replacer) exportOne(n *xmltree.Node, fragmentable func(*xmltree.Node) bool) *xmltree.Node {
	ar := r.sc.arena
	var args []*xmltree.Node
	var build func(v *xmltree.Node) *xmltree.Node
	build = func(v *xmltree.Node) *xmltree.Node {
		if !fragmentable(v) {
			args = append(args, v)
			return ar.New(xmltree.Param(len(args)))
		}
		cp := ar.New(v.Label)
		if len(v.Children) > 0 {
			cp.Children = ar.Children(len(v.Children))
			for i, c := range v.Children {
				cp.Children[i] = build(c)
			}
		}
		return cp
	}
	tu := build(n)
	u := r.g.NewRule(len(args), tu)
	r.markEdited(u.ID)
	r.born = grammar.GrowTo(r.born, int(u.ID)+1)
	r.born[u.ID] = true
	call := ar.New(xmltree.Nonterm(u.ID))
	call.Children = ar.Children(len(args))
	copy(call.Children, args)
	return call
}
