// Package benchsuite pins the corpus setup shared by the repo's go-test
// micro benchmarks (bench_test.go) and the machine-readable perf record
// (`benchtables -json`). Both surfaces must measure the same documents
// and the same degraded grammars, or BENCH_<n>.json stops being
// comparable with `go test -bench` output across perf PRs.
package benchsuite

import (
	"fmt"
	"testing"

	sltgrammar "repro"
	"repro/internal/datasets"
	"repro/internal/workload"
)

// Seeds and workload sizes of the micro benchmarks.
const (
	// MicroScale is the corpus scale every micro benchmark runs at,
	// regardless of the experiment-driver scale: BENCH_<n>.json entries
	// are only comparable across PRs (and with `go test -bench`) when
	// they measure the same documents.
	MicroScale = 0.08
	// CorpusSeed generates the micro-benchmark documents.
	CorpusSeed = 1
	// RenameSeed drives the rename workload that degrades the grammar
	// measured by the recompression benchmarks.
	RenameSeed = 7
	// RenameOps is the number of renames applied before recompression.
	RenameOps = 30
)

// MicroShorts are the corpora the micro benchmarks run on: one
// exponentially compressing (EW), one moderate (XM), one hard (TB).
var MicroShorts = []string{"EW", "XM", "TB"}

// doc returns the pinned micro-benchmark document for a corpus.
func doc(short string) *sltgrammar.Document {
	c, ok := datasets.ByShort(short)
	if !ok {
		panic(fmt.Sprintf("benchsuite: unknown corpus %q", short))
	}
	return sltgrammar.Encode(c.Generate(MicroScale, CorpusSeed))
}

// degraded returns the corpus document's TreeRePair grammar after the
// pinned rename workload — the input the recompression benchmarks
// measure.
func degraded(short string) *sltgrammar.Grammar {
	d := doc(short)
	g0, _ := sltgrammar.Compress(d)
	ops := workload.Renames(d, RenameOps, RenameSeed)
	g := g0.Clone()
	if err := sltgrammar.ApplyAll(g, ops); err != nil {
		panic(fmt.Sprintf("benchsuite: degrading %s: %v", short, err))
	}
	return g
}

// CompressBench returns the micro benchmark body measuring TreeRePair on
// the pinned corpus document (setup happens at call time, outside the
// measured loop). Both `go test -bench` and `benchtables -json` run this
// exact body.
func CompressBench(short string) func(b *testing.B) {
	d := doc(short)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sltgrammar.Compress(d)
		}
	}
}

// RecompressBench returns the micro benchmark body measuring
// GrammarRePair recompression of the pinned degraded grammar.
func RecompressBench(short string) func(b *testing.B) {
	g := degraded(short)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sltgrammar.Recompress(g)
		}
	}
}
