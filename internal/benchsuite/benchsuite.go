// Package benchsuite pins the corpus setup shared by the repo's go-test
// micro benchmarks (bench_test.go) and the machine-readable perf record
// (`benchtables -json`). Both surfaces must measure the same documents
// and the same degraded grammars, or BENCH_<n>.json stops being
// comparable with `go test -bench` output across perf PRs.
package benchsuite

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	sltgrammar "repro"
	"repro/internal/datasets"
	"repro/internal/loadgen"
	"repro/internal/store"
	"repro/internal/update"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Seeds and workload sizes of the micro benchmarks.
const (
	// MicroScale is the corpus scale every micro benchmark runs at,
	// regardless of the experiment-driver scale: BENCH_<n>.json entries
	// are only comparable across PRs (and with `go test -bench`) when
	// they measure the same documents.
	MicroScale = 0.08
	// CorpusSeed generates the micro-benchmark documents.
	CorpusSeed = 1
	// RenameSeed drives the rename workload that degrades the grammar
	// measured by the recompression benchmarks.
	RenameSeed = 7
	// RenameOps is the number of renames applied before recompression.
	RenameOps = 30
	// UpdateStreamOps is the length of the inverse-seeded workload the
	// update-stream benchmarks replay (90 % inserts, the paper's mix).
	UpdateStreamOps = 200
	// UpdateStreamSeed drives that workload.
	UpdateStreamSeed = 11
	// UpdateStreamBatch is the ingestion granularity of the Store track:
	// a serving engine sees the stream as a sequence of small batches,
	// which is what lets the recompression policy act mid-stream.
	UpdateStreamBatch = 20
	// ShardedDocs is the document count of the multi-document
	// (UpdateStreamSharded) track: enough documents that hashing spreads
	// them over every shard configuration being compared.
	ShardedDocs = 8
)

// Read-stream track: the zero-copy read path measured against a live
// writer (generational reads — see repro/internal/store).
const (
	// ReadStreamRenames is the length of the position-stable rename
	// cycle the background writer replays for the duration of the
	// measured loop. Renames never move preorder positions, so the
	// cycle can repeat forever against the same document.
	ReadStreamRenames = 64
	// ReadStreamSeed drives that rename cycle.
	ReadStreamSeed = 13
	// ReadStreamLabel is the element label the measured query counts.
	// The writer's first cycle renames a node to it, so the query runs
	// against label-usage state the writer keeps republishing.
	ReadStreamLabel = "fresh0"
)

// Point-query track: random preorder lookups on the degraded grammar
// the pinned update stream leaves behind, while a writer keeps the
// document moving — the serving regime the read-side spine view exists
// for.
const (
	// PointQuerySeed draws the pinned pseudo-random lookup positions.
	PointQuerySeed = 19
	// PointQueryCount is how many lookups one benchmark op performs.
	PointQueryCount = 64
)

// Tiered-fleet track: many documents under a memory budget a fraction
// of the fleet's resident footprint, driven by a Zipf-skewed schedule —
// the regime the ShardedStore memory tier exists for.
const (
	// TieredDocs is the fleet size.
	TieredDocs = 256
	// TieredPoolDocs is the number of distinct pinned documents the
	// fleet is cloned from: setup cost stays tractable at TieredDocs
	// documents while the fleet still mixes genuinely different
	// grammars and streams.
	TieredPoolDocs = 8
	// TieredBatch, TieredSkew and TieredSeed pin the ZipfFleet
	// schedule interleaving the per-document streams.
	TieredBatch = 10
	TieredSkew  = 1.4
	TieredSeed  = 17
	// TieredBudgetDiv sets the memory budget: the unbounded fleet's
	// initial resident bytes divided by this, forcing the cold tail to
	// evict while the Zipf head stays resident.
	TieredBudgetDiv = 4
)

// Serve-stream track: the pinned multi-document streams replayed over
// the network front-end (sltgrammar.Serve) by concurrent wire clients,
// so BENCH_<n>.json records serving latency (p50/p99 per acked batch)
// alongside ns/op — the number a deployment is actually sized by.
const (
	// ServeConns is the client connection count; batches for one
	// document always ride one connection, preserving per-document op
	// order over the wire.
	ServeConns = 4
	// ServeShards is the served fleet's shard count.
	ServeShards = 4
	// ServeBatch, ServeSkew and ServeSeed pin the ZipfFleet schedule
	// interleaving the per-document streams.
	ServeBatch = 10
	ServeSkew  = 1.4
	ServeSeed  = 23
)

// ShardedShardCounts are the shard configurations the multi-document
// track sweeps; aggregate throughput across them is the scaling record.
var ShardedShardCounts = []int{1, 2, 4}

// MicroShorts are the corpora the micro benchmarks run on: one
// exponentially compressing (EW), one moderate (XM), one hard (TB).
var MicroShorts = []string{"EW", "XM", "TB"}

// doc returns the pinned micro-benchmark document for a corpus.
func doc(short string) *sltgrammar.Document {
	c, ok := datasets.ByShort(short)
	if !ok {
		panic(fmt.Sprintf("benchsuite: unknown corpus %q", short))
	}
	return sltgrammar.Encode(c.Generate(MicroScale, CorpusSeed))
}

// degraded returns the corpus document's TreeRePair grammar after the
// pinned rename workload — the input the recompression benchmarks
// measure.
func degraded(short string) *sltgrammar.Grammar {
	d := doc(short)
	g0, _ := sltgrammar.Compress(d)
	ops := workload.Renames(d, RenameOps, RenameSeed)
	g := g0.Clone()
	if err := sltgrammar.ApplyAll(g, ops); err != nil {
		panic(fmt.Sprintf("benchsuite: degrading %s: %v", short, err))
	}
	return g
}

// CompressBench returns the micro benchmark body measuring TreeRePair on
// the pinned corpus document (setup happens at call time, outside the
// measured loop). Both `go test -bench` and `benchtables -json` run this
// exact body.
func CompressBench(short string) func(b *testing.B) {
	d := doc(short)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sltgrammar.Compress(d)
		}
	}
}

// RecompressBench returns the micro benchmark body measuring
// GrammarRePair recompression of the pinned degraded grammar.
func RecompressBench(short string) func(b *testing.B) {
	g := degraded(short)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sltgrammar.Recompress(g)
		}
	}
}

// updateStream returns the pinned update-stream input: the corpus
// document's seed grammar and the inverse-seeded operation sequence that
// replays it back to the corpus.
func updateStream(short string) (*sltgrammar.Grammar, []sltgrammar.Op) {
	c, ok := datasets.ByShort(short)
	if !ok {
		panic(fmt.Sprintf("benchsuite: unknown corpus %q", short))
	}
	u := c.Generate(MicroScale, CorpusSeed)
	seq, err := workload.Updates(u, UpdateStreamOps, 90, UpdateStreamSeed)
	if err != nil {
		panic(fmt.Sprintf("benchsuite: workload for %s: %v", short, err))
	}
	g, _ := sltgrammar.Compress(seq.Seed)
	return g, seq.Ops
}

// StoreUpdateStreamBench measures ingesting the pinned workload through
// a Store — cached size vectors, one garbage collection per batch — fed
// in UpdateStreamBatch-sized batches like a serving engine would see
// them. Auto-recompression is disabled so the Store does exactly the
// same semantic work as the per-op baseline and the two numbers isolate
// the update-path win; recompression amortizes only over much longer
// streams than a pinned micro benchmark.
func StoreUpdateStreamBench(short string) func(b *testing.B) {
	g, ops := updateStream(short)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cp := g.Clone()
			b.StartTimer()
			// NewStore's cache warm-up (one cold ValSizes pass) is part of
			// the engine's cost and stays inside the timed region.
			st := sltgrammar.NewStore(cp, sltgrammar.StoreConfig{Ratio: -1})
			for done := 0; done < len(ops); done += UpdateStreamBatch {
				end := done + UpdateStreamBatch
				if end > len(ops) {
					end = len(ops)
				}
				if err := st.ApplyAll(ops[done:end]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// DurableFsyncModes are the fsync policies the durable update-stream
// track sweeps: "batch" is the no-loss contract (one fsync per acked
// batch — the dominant cost), "off" isolates the WAL encode+write
// overhead itself.
var DurableFsyncModes = []struct {
	Name  string
	Fsync wal.FsyncPolicy
}{
	{"batch", wal.FsyncBatch},
	{"off", wal.FsyncOff},
}

// StoreUpdateStreamDurableBench measures the same pinned workload as
// StoreUpdateStreamBench through a durable Store: every batch is
// op-encoded and appended to the write-ahead log (and, under
// fsync=batch, fsynced) before the ack. The delta against the
// in-memory track is the price of durability; snapshots are disabled
// so the number isolates the append path.
func StoreUpdateStreamDurableBench(short string, fsync wal.FsyncPolicy) func(b *testing.B) {
	g, ops := updateStream(short)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cp := g.Clone()
			dir := b.TempDir()
			b.StartTimer()
			st, err := store.CreateDurable("bench", cp, store.Config{
				Ratio: -1,
				Durability: &store.Durability{
					Dir:              dir,
					Fsync:            fsync,
					SnapshotEveryOps: -1,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			for done := 0; done < len(ops); done += UpdateStreamBatch {
				end := min(done+UpdateStreamBatch, len(ops))
				if err := st.ApplyAll(ops[done:end]); err != nil {
					b.Fatal(err)
				}
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// shardedInput is the pinned multi-document workload: document d of a
// corpus is generated with seed CorpusSeed+d and replayed by the
// inverse-seeded sequence with seed UpdateStreamSeed+d, so the
// documents are genuinely distinct but every run (and every shard
// configuration) measures exactly the same streams.
type shardedInput struct {
	ids  []string
	gs   []*sltgrammar.Grammar
	opss [][]sltgrammar.Op
}

var (
	shardedMu     sync.Mutex
	shardedInputs = map[string]*shardedInput{}
)

func shardedStream(short string, docs int) *shardedInput {
	shardedMu.Lock()
	defer shardedMu.Unlock()
	key := fmt.Sprintf("%s/%d", short, docs)
	if in, ok := shardedInputs[key]; ok {
		return in
	}
	c, ok := datasets.ByShort(short)
	if !ok {
		panic(fmt.Sprintf("benchsuite: unknown corpus %q", short))
	}
	in := &shardedInput{}
	for d := 0; d < docs; d++ {
		u := c.Generate(MicroScale, CorpusSeed+int64(d))
		seq, err := workload.Updates(u, UpdateStreamOps, 90, UpdateStreamSeed+int64(d))
		if err != nil {
			panic(fmt.Sprintf("benchsuite: workload for %s doc %d: %v", short, d, err))
		}
		g, _ := sltgrammar.Compress(seq.Seed)
		in.ids = append(in.ids, fmt.Sprintf("%s-doc-%02d", short, d))
		in.gs = append(in.gs, g)
		in.opss = append(in.opss, seq.Ops)
	}
	shardedInputs[key] = in
	return in
}

// ShardedUpdateStreamBench measures aggregate multi-document ingestion
// through a ShardedStore: ShardedDocs disjoint documents, one writer
// goroutine per document, batches routed to the owning shard's worker.
// One benchmark iteration ingests every document's full stream, so
// ns/op is the aggregate wall-clock of the whole fleet — comparing it
// across shard counts is the scaling record. Recompression is disabled
// for the same reason as StoreUpdateStreamBench: every configuration
// must do identical semantic work.
func ShardedUpdateStreamBench(short string, shards, docs int) func(b *testing.B) {
	in := shardedStream(short, docs)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			clones := make([]*sltgrammar.Grammar, len(in.gs))
			for d, g := range in.gs {
				clones[d] = g.Clone()
			}
			b.StartTimer()
			ss := sltgrammar.NewShardedStore(shards, sltgrammar.StoreConfig{Ratio: -1})
			for d, g := range clones {
				if _, err := ss.Open(in.ids[d], g); err != nil {
					b.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			for d := range in.opss {
				wg.Add(1)
				go func(d int) {
					defer wg.Done()
					ops := in.opss[d]
					for done := 0; done < len(ops); done += UpdateStreamBatch {
						end := min(done+UpdateStreamBatch, len(ops))
						if err := ss.ApplyAll(in.ids[d], ops[done:end]); err != nil {
							b.Error(err)
							return
						}
					}
				}(d)
			}
			wg.Wait()
			ss.Close()
		}
	}
}

// ServeStreamBench measures serving the pinned multi-document streams
// over the network front-end: a loopback server over a ShardedDocs
// fleet, the pinned ZipfFleet schedule replayed by ServeConns wire
// clients (loadgen), every batch a full request/ack round trip through
// frame codec, shard worker, and back. One benchmark iteration replays
// the whole schedule, so ns/op is the aggregate wall-clock of the
// served fleet; the client-observed batch latency distribution is
// merged across iterations and reported as p50-ns / p99-ns extra
// metrics. Recompression is disabled so every run does identical
// semantic work (the in-memory tracks' rule); the delta against
// UpdateStreamSharded on the same streams is the price of the wire.
func ServeStreamBench(short string) func(b *testing.B) {
	in := shardedStream(short, ShardedDocs)
	sched := workload.ZipfFleet(in.opss, ServeBatch, ServeSkew, ServeSeed)
	return func(b *testing.B) {
		b.ReportAllocs()
		var lats []time.Duration
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			clones := make([]*sltgrammar.Grammar, len(in.gs))
			for d, g := range in.gs {
				clones[d] = g.Clone()
			}
			ss := sltgrammar.NewShardedStore(ServeShards, sltgrammar.StoreConfig{Ratio: -1})
			for d, g := range clones {
				if _, err := ss.Open(in.ids[d], g); err != nil {
					b.Fatal(err)
				}
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := sltgrammar.Serve(ln, ss)
			b.StartTimer()
			rep, err := loadgen.Run(loadgen.Config{
				Addr:     srv.Addr().String(),
				Conns:    ServeConns,
				IDs:      in.ids,
				Schedule: sched,
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			lats = append(lats, rep.Latencies...)
			srv.Close()
			ss.Close()
			b.StartTimer()
		}
		b.StopTimer()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		b.ReportMetric(float64(loadgen.Quantile(lats, 0.50)), "p50-ns")
		b.ReportMetric(float64(loadgen.Quantile(lats, 0.99)), "p99-ns")
	}
}

// StoreReadStreamBench measures the generational read path against a
// live writer: a background goroutine keeps replaying the pinned
// position-stable rename cycle in UpdateStreamBatch-sized batches while
// the measured loop opens a cursor over a zero-copy snapshot, descends
// to a leaf, and counts a label. With reads pinning published
// generations instead of holding a lock, ns/op is the cost of serving
// one read during ingestion — it must not scale with writer throughput
// (the pre-generational read path serialized against the write lock).
func StoreReadStreamBench(short string) func(b *testing.B) {
	d := doc(short)
	g0, _ := sltgrammar.Compress(d)
	renames := workload.Renames(d, ReadStreamRenames, ReadStreamSeed)
	return func(b *testing.B) {
		b.ReportAllocs()
		st := sltgrammar.NewStore(g0.Clone(), sltgrammar.StoreConfig{Ratio: -1})
		// First cycle before the clock starts: ReadStreamLabel exists
		// from here on, and the steady state is re-renames only.
		if err := st.ApplyAll(renames); err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				for off := 0; off < len(renames); off += UpdateStreamBatch {
					select {
					case <-stop:
						return
					default:
					}
					end := min(off+UpdateStreamBatch, len(renames))
					if err := st.ApplyAll(renames[off:end]); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cur, err := st.Cursor()
			if err != nil {
				b.Fatal(err)
			}
			for cur.FirstChild() == nil {
			}
			if _, err := st.CountLabel(ReadStreamLabel); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		<-done
	}
}

// StorePointQueryBench measures random point lookups against a
// degraded grammar under a streaming writer: the store first ingests
// the pinned insert-heavy stream (leaving the long unfolded chains
// point queries must cross), then a background goroutine keeps
// replaying the position-stable rename cycle while the measured loop
// performs PointQueryCount preorder lookups at pinned pseudo-random
// positions. indexed selects the generation's frozen spine view
// (chunk-by-sum seeks); false forces the naive size-vector descent —
// the differential baseline in the same record, doing identical
// semantic work on the identical document.
func StorePointQueryBench(short string, indexed bool) func(b *testing.B) {
	g, ops := updateStream(short)
	// The stream replays the document back to the pinned corpus, so the
	// corpus rename cycle stays position-stable forever.
	renames := workload.Renames(doc(short), ReadStreamRenames, ReadStreamSeed)
	return func(b *testing.B) {
		b.ReportAllocs()
		st := sltgrammar.NewStore(g.Clone(), sltgrammar.StoreConfig{Ratio: -1})
		for done := 0; done < len(ops); done += UpdateStreamBatch {
			end := min(done+UpdateStreamBatch, len(ops))
			if err := st.ApplyAll(ops[done:end]); err != nil {
				b.Fatal(err)
			}
		}
		total, err := st.TreeSize()
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(PointQuerySeed))
		positions := make([]int64, PointQueryCount)
		for i := range positions {
			positions[i] = rng.Int63n(total)
		}
		stop := make(chan struct{})
		writerDone := make(chan struct{})
		go func() {
			defer close(writerDone)
			for {
				for off := 0; off < len(renames); off += UpdateStreamBatch {
					select {
					case <-stop:
						return
					default:
					}
					end := min(off+UpdateStreamBatch, len(renames))
					if err := st.ApplyAll(renames[off:end]); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range positions {
				var err error
				if indexed {
					_, err = st.PointQuery(p)
				} else {
					_, err = st.PointQueryNaive(p)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		close(stop)
		<-writerDone
	}
}

// ShardedTieredBench measures the memory-tiered fleet: TieredDocs
// documents (cloned from TieredPoolDocs distinct pinned pool entries)
// opened under a memory budget of 1/TieredBudgetDiv of the unbounded
// fleet's initial resident bytes, then driven sequentially through the
// pinned ZipfFleet schedule. One benchmark iteration ingests the whole
// schedule, so ns/op folds in the tier's full cost — evicting cold
// documents to encoded bytes and rehydrating them when the schedule's
// tail comes back around — on top of the updates themselves.
func ShardedTieredBench(short string, docs int) func(b *testing.B) {
	pool := shardedStream(short, TieredPoolDocs)
	ids := make([]string, docs)
	streams := make([][]sltgrammar.Op, docs)
	for d := 0; d < docs; d++ {
		ids[d] = fmt.Sprintf("tier-%03d", d)
		streams[d] = pool.opss[d%TieredPoolDocs]
	}
	// The budget is pinned relative to the unbounded fleet: per pool
	// entry, what one freshly opened Store of it keeps resident.
	var unbounded int64
	for _, g := range pool.gs {
		st := store.New(g.Clone(), store.Config{Ratio: -1})
		unbounded += st.ResidentBytes() * int64(docs/TieredPoolDocs)
	}
	budget := unbounded / TieredBudgetDiv
	sched := workload.ZipfFleet(streams, TieredBatch, TieredSkew, TieredSeed)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			clones := make([]*sltgrammar.Grammar, docs)
			for d := range clones {
				clones[d] = pool.gs[d%TieredPoolDocs].Clone()
			}
			b.StartTimer()
			ss := sltgrammar.NewShardedStore(4, sltgrammar.StoreConfig{
				Ratio:        -1,
				MemoryBudget: budget,
			})
			for d, g := range clones {
				if _, err := ss.Open(ids[d], g); err != nil {
					b.Fatal(err)
				}
			}
			for _, fb := range sched {
				if err := ss.ApplyAll(ids[fb.Doc], fb.Ops); err != nil {
					b.Fatal(err)
				}
			}
			fs := ss.Stats()
			if err := ss.Close(); err != nil {
				b.Fatal(err)
			}
			if fs.Evictions == 0 {
				b.Fatal("tiered bench never evicted: budget no longer binding")
			}
		}
	}
}

// PerOpUpdateStreamBench measures the same workload through the per-op
// update path — a fresh O(|G|) ValSizes pass per operation and a
// garbage collection after every delete (the pre-Store behavior of
// update.ApplyAll).
func PerOpUpdateStreamBench(short string) func(b *testing.B) {
	g, ops := updateStream(short)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cp := g.Clone()
			b.StartTimer()
			for _, op := range ops {
				if err := update.Apply(cp, op); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
