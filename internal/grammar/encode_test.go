package grammar

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g, _, _ := paperGrammar(t)
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Start != g.Start || back.NumRules() != g.NumRules() {
		t.Fatal("structure mismatch")
	}
	a, _ := g.Expand(0)
	b, _ := back.Expand(0)
	if !xmltree.Equal(a, b) {
		t.Fatal("val changed by serialization")
	}
	if back.Syms.Len() != g.Syms.Len() {
		t.Fatal("symbol table mismatch")
	}
	// The decoded grammar stays usable: add a rule without ID collision.
	r := back.NewRule(0, xmltree.NewBottom())
	if back.Rule(r.ID) == nil || g.Rule(r.ID) != nil && r.ID < g.nextNT {
		t.Fatal("fresh rule ID collides")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	g, _, _ := paperGrammar(t)
	var b1, b2 bytes.Buffer
	if err := Encode(&b1, g); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b2, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("encoding not deterministic")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"XXXX",
		"SLTG\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01", // absurd version
	}
	for i, src := range cases {
		if _, err := Decode(strings.NewReader(src)); err == nil {
			t.Fatalf("case %d must fail", i)
		}
	}
	// Valid header, truncated rest.
	g, _, _ := paperGrammar(t)
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{6, buf.Len() / 2, buf.Len() - 1} {
		if _, err := Decode(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d must fail", cut)
		}
	}
}

func TestEncodeCompactness(t *testing.T) {
	// The serialized form must be within a small factor of |G| bytes —
	// that is the point of persisting grammars instead of documents.
	g, _, _ := paperGrammar(t)
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 16*g.NodeCount()+256 {
		t.Fatalf("encoding too large: %d bytes for %d nodes", buf.Len(), g.NodeCount())
	}
}
