package grammar

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/xmltree"
)

// ErrSaturated reports that a derived-tree node count overflowed the int64
// range and was clamped to math.MaxInt64. Grammars can compress
// exponentially, so saturation is an expected state, not corruption —
// callers that need an exact element count (sltgrammar.Elements,
// isolate.NonBottomCount, Store.Stats) return this sentinel instead of a
// bogus huge number.
var ErrSaturated = errors.New("grammar: derived tree size saturated (exceeds int64)")

// Saturated reports whether a node count hit the saturation ceiling of
// ValSizes/ValNodeCount.
func Saturated(n int64) bool { return n == math.MaxInt64 }

// RefCounts returns, for every live rule ID, the number of occurrences of
// its nonterminal on right-hand sides (the paper's |ref_G(Q)|).
func (g *Grammar) RefCounts() map[int32]int {
	refs := make(map[int32]int, len(g.rules))
	for _, id := range g.order {
		refs[id] += 0
		g.rules[id].RHS.Walk(func(v *xmltree.Node) bool {
			if v.Label.Kind == xmltree.Nonterminal {
				refs[v.Label.ID]++
			}
			return true
		})
	}
	return refs
}

// Usage returns usage_G(Q) for every rule: the number of times Q is used
// to generate val_G(S). usage(S) = 1 and usage(Q) = Σ_{(R,n)∈ref(Q)}
// usage(R), computed in SL order (callers before callees). Usage counts
// can be astronomically large for exponentially compressing grammars, so
// they are computed in float64 and saturate at +Inf; digram-frequency
// comparisons only need ordering, for which this is sufficient.
func (g *Grammar) Usage() (map[int32]float64, error) {
	sl, err := g.SLOrder()
	if err != nil {
		return nil, err
	}
	usage := make(map[int32]float64, len(g.rules))
	for _, id := range sl {
		usage[id] += 0
	}
	usage[g.Start] = 1
	for _, id := range sl {
		u := usage[id]
		if u == 0 {
			continue // unreachable rule
		}
		g.rules[id].RHS.Walk(func(v *xmltree.Node) bool {
			if v.Label.Kind == xmltree.Nonterminal {
				usage[v.Label.ID] += u
				if math.IsInf(usage[v.Label.ID], 1) {
					usage[v.Label.ID] = math.Inf(1)
				}
			}
			return true
		})
	}
	return usage, nil
}

// GarbageCollect deletes every rule unreachable from the start rule and
// returns the number of rules removed. Updates that delete subtrees can
// strand rules; experiments call this after each update batch.
func (g *Grammar) GarbageCollect() int {
	reach := make(map[int32]bool, len(g.rules))
	var mark func(id int32)
	mark = func(id int32) {
		if reach[id] {
			return
		}
		reach[id] = true
		if r := g.rules[id]; r != nil {
			r.RHS.Walk(func(v *xmltree.Node) bool {
				if v.Label.Kind == xmltree.Nonterminal {
					mark(v.Label.ID)
				}
				return true
			})
		}
	}
	mark(g.Start)
	removed := 0
	for _, id := range g.RuleIDs() {
		if !reach[id] {
			g.DeleteRule(id)
			removed++
		}
	}
	return removed
}

// SizeVectors holds, for one rule A of rank k, the paper's
// size(A,0..k): the number of nodes of val(A) that appear before y1 in
// preorder, between y1 and y2, ..., after yk (parameter nodes themselves
// are not counted, matching the paper's example). Total is the node count
// of val(A) with parameters excluded.
type SizeVectors struct {
	Seg   []int64 // length rank+1
	Total int64   // Σ Seg
}

// ValSizes computes size vectors for every rule in one bottom-up pass
// (anti-SL order), as required by path isolation (Section III-A). Counts
// saturate at math.MaxInt64 to stay safe on exponentially compressing
// grammars.
func (g *Grammar) ValSizes() (map[int32]*SizeVectors, error) {
	anti, err := g.AntiSLOrder()
	if err != nil {
		return nil, err
	}
	sizes := make(map[int32]*SizeVectors, len(g.rules))
	for _, id := range anti {
		sv, err := g.RuleValSizes(id, sizes)
		if err != nil {
			return nil, err
		}
		sizes[id] = sv
	}
	return sizes, nil
}

// RuleValSizes computes the size vector of one rule from already-computed
// callee vectors in sizes. It is the per-rule body of ValSizes, exposed so
// callers that know only the start rule changed (path isolation keeps
// every other rule intact) can refresh a cached size-vector map in
// O(|RHS|) instead of recomputing all rules.
func (g *Grammar) RuleValSizes(id int32, sizes map[int32]*SizeVectors) (*SizeVectors, error) {
	r := g.rules[id]
	if r == nil {
		return nil, fmt.Errorf("grammar: RuleValSizes: no rule N%d", id)
	}
	sv := &SizeVectors{Seg: make([]int64, r.Rank+1)}
	seg := 0
	var walk func(n *xmltree.Node) error
	walk = func(n *xmltree.Node) error {
		switch n.Label.Kind {
		case xmltree.Parameter:
			seg = int(n.Label.ID)
			return nil
		case xmltree.Terminal:
			sv.Seg[seg] = satAdd(sv.Seg[seg], 1)
			for _, c := range n.Children {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		case xmltree.Nonterminal:
			callee := sizes[n.Label.ID]
			if callee == nil {
				return fmt.Errorf("grammar: ValSizes: rule N%d not yet computed", n.Label.ID)
			}
			sv.Seg[seg] = satAdd(sv.Seg[seg], callee.Seg[0])
			for i, c := range n.Children {
				if err := walk(c); err != nil {
					return err
				}
				sv.Seg[seg] = satAdd(sv.Seg[seg], callee.Seg[i+1])
			}
			return nil
		}
		return fmt.Errorf("grammar: ValSizes: bad symbol kind")
	}
	if err := walk(r.RHS); err != nil {
		return nil, err
	}
	for _, s := range sv.Seg {
		sv.Total = satAdd(sv.Total, s)
	}
	return sv, nil
}

func satAdd(a, b int64) int64 {
	s := a + b
	if s < a {
		return math.MaxInt64
	}
	return s
}

// SatAdd adds two non-negative node counts, saturating at math.MaxInt64
// (the same ceiling Saturated tests for). Exported so callers composing
// their own count arithmetic (update's delete accounting) share one
// saturation rule.
func SatAdd(a, b int64) int64 { return satAdd(a, b) }

// SubtreeValSizeWithin computes SubtreeValSize(t) with an early abort:
// it returns (size, true) when val(t) has at most limit nodes, and
// (partial, false) as soon as the running count exceeds limit — without
// walking the rest of the subtree. Path isolation uses it to prove "the
// target position lies inside this child" after walking only enough of
// the child to cover the target's offset, instead of measuring subtrees
// it is about to descend into anyway.
func SubtreeValSizeWithin(t *xmltree.Node, sizes map[int32]*SizeVectors, limit int64) (int64, bool) {
	var acc int64
	var walk func(n *xmltree.Node) bool
	walk = func(n *xmltree.Node) bool {
		if n.Label.Kind == xmltree.Nonterminal {
			acc = satAdd(acc, sizes[n.Label.ID].Total)
		} else {
			acc = satAdd(acc, 1)
		}
		if acc > limit {
			return false
		}
		for _, c := range n.Children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	ok := walk(t)
	return acc, ok
}

// ValNodeCount returns the node count of val_G(S) (excluding nothing;
// the start rule has no parameters so this is the full tree size),
// computed without expansion.
func (g *Grammar) ValNodeCount() (int64, error) {
	sizes, err := g.ValSizes()
	if err != nil {
		return 0, err
	}
	return sizes[g.Start].Total, nil
}

// SubtreeValSize returns the node count of val(t) for a subtree t of a
// right-hand side, given precomputed rule size vectors. Parameter nodes
// count as 1 placeholder node (they stand for externally supplied trees;
// path isolation only uses this on the start rule, which has none).
func SubtreeValSize(t *xmltree.Node, sizes map[int32]*SizeVectors) int64 {
	switch t.Label.Kind {
	case xmltree.Parameter:
		return 1
	case xmltree.Terminal:
		var s int64 = 1
		for _, c := range t.Children {
			s = satAdd(s, SubtreeValSize(c, sizes))
		}
		return s
	case xmltree.Nonterminal:
		sv := sizes[t.Label.ID]
		s := sv.Total
		for _, c := range t.Children {
			s = satAdd(s, SubtreeValSize(c, sizes))
		}
		return s
	}
	return 0
}
