package grammar

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/xmltree"
)

// ErrSaturated reports that a derived-tree node count overflowed the int64
// range and was clamped to math.MaxInt64. Grammars can compress
// exponentially, so saturation is an expected state, not corruption —
// callers that need an exact element count (sltgrammar.Elements,
// isolate.NonBottomCount, Store.Stats) return this sentinel instead of a
// bogus huge number.
var ErrSaturated = errors.New("grammar: derived tree size saturated (exceeds int64)")

// Saturated reports whether a node count hit the saturation ceiling of
// ValSizes/ValNodeCount.
func Saturated(n int64) bool { return n == math.MaxInt64 }

// RefCounts returns |ref_G(Q)| — the number of occurrences of each rule's
// nonterminal on right-hand sides — as a dense slice indexed by rule ID
// (length MaxRuleID; dead IDs hold 0). Rule IDs are never reused, so the
// slice form replaces the former map without any hashing per lookup.
func (g *Grammar) RefCounts() []int {
	refs := make([]int, g.nextNT)
	for _, id := range g.order {
		g.rules[id].RHS.Walk(func(v *xmltree.Node) bool {
			if v.Label.Kind == xmltree.Nonterminal {
				refs[v.Label.ID]++
			}
			return true
		})
	}
	return refs
}

// Usage returns usage_G(Q) for every rule as a dense slice indexed by rule
// ID: the number of times Q is used to generate val_G(S). usage(S) = 1 and
// usage(Q) = Σ_{(R,n)∈ref(Q)} usage(R), computed in SL order (callers
// before callees). Usage counts can be astronomically large for
// exponentially compressing grammars, so they are computed in float64 and
// saturate at +Inf; digram-frequency comparisons only need ordering, for
// which this is sufficient. Dead rule IDs (and unreachable rules) hold 0.
func (g *Grammar) Usage() ([]float64, error) {
	sl, err := g.SLOrder()
	if err != nil {
		return nil, err
	}
	usage := make([]float64, g.nextNT)
	usage[g.Start] = 1
	for _, id := range sl {
		u := usage[id]
		if u == 0 {
			continue // unreachable rule
		}
		g.rules[id].RHS.Walk(func(v *xmltree.Node) bool {
			if v.Label.Kind == xmltree.Nonterminal {
				usage[v.Label.ID] += u
				if math.IsInf(usage[v.Label.ID], 1) {
					usage[v.Label.ID] = math.Inf(1)
				}
			}
			return true
		})
	}
	return usage, nil
}

// GarbageCollect deletes every rule unreachable from the start rule and
// returns the number of rules removed. Updates that delete subtrees can
// strand rules; experiments call this after each update batch.
func (g *Grammar) GarbageCollect() int {
	removed, _, _ := g.GarbageCollectSized()
	return removed
}

// GarbageCollectSized is GarbageCollect plus the surviving grammar size
// |G| (summed RHS edge count) and the start rule's share of it, both
// measured during the reachability walk itself: the walk already visits
// every node of every surviving rule, so callers that need the
// post-collection sizes (the Store's batch policy) get them without a
// second pass over any rule.
func (g *Grammar) GarbageCollectSized() (removed, size, startEdges int) {
	reach := make([]bool, g.nextNT)
	var mark func(id int32)
	mark = func(id int32) {
		if reach[id] {
			return
		}
		reach[id] = true
		if r := g.Rule(id); r != nil {
			nodes := 0
			r.RHS.Walk(func(v *xmltree.Node) bool {
				nodes++
				if v.Label.Kind == xmltree.Nonterminal {
					mark(v.Label.ID)
				}
				return true
			})
			size += nodes - 1
			if id == g.Start {
				startEdges = nodes - 1
			}
		}
	}
	mark(g.Start)
	for _, id := range g.RuleIDs() {
		if !reach[id] {
			g.DeleteRule(id)
			removed++
		}
	}
	return removed, size, startEdges
}

// SizeVectors holds, for one rule A of rank k, the paper's
// size(A,0..k): the number of nodes of val(A) that appear before y1 in
// preorder, between y1 and y2, ..., after yk (parameter nodes themselves
// are not counted, matching the paper's example). Total is the node count
// of val(A) with parameters excluded.
type SizeVectors struct {
	Seg   []int64 // length rank+1
	Total int64   // Σ Seg
}

// SizeTable is a dense rule-ID-indexed table of size vectors: the shape
// ValSizes returns and path isolation, the update cache, and the Store
// probe on every operation. Because rule IDs are dense and never reused,
// a slice lookup replaces the former map[int32] probe — no hashing on the
// isolation hot path. A nil entry means "no vector" (dead rule or not yet
// computed), exactly like a missing map key.
type SizeTable struct {
	vec []*SizeVectors
}

// NewSizeTable returns an empty table sized for every rule ID the grammar
// has assigned so far.
func NewSizeTable(g *Grammar) *SizeTable {
	return &SizeTable{vec: make([]*SizeVectors, g.MaxRuleID())}
}

// Get returns the vector for rule id (nil if absent). Out-of-range IDs
// return nil rather than panicking, matching map-miss semantics.
func (t *SizeTable) Get(id int32) *SizeVectors {
	if uint64(id) >= uint64(len(t.vec)) {
		return nil
	}
	return t.vec[id]
}

// Set stores the vector for rule id, growing the table as needed.
func (t *SizeTable) Set(id int32, sv *SizeVectors) {
	t.vec = GrowTo(t.vec, int(id)+1)
	t.vec[id] = sv
}

// Drop removes the vector for rule id.
func (t *SizeTable) Drop(id int32) {
	if uint64(id) < uint64(len(t.vec)) {
		t.vec[id] = nil
	}
}

// Snapshot returns a copy of the table that a writer takes for itself
// when a reader has pinned the original into a frozen grammar
// generation. Only the start rule's vector is ever mutated in place by
// the update cache (adjustStartTotal), so the copy is shallow except
// for that one vector; the fresh backing slice keeps later
// Set/Drop/GrowTo on the copy from showing through to the original.
func (t *SizeTable) Snapshot(start int32) *SizeTable {
	nv := append([]*SizeVectors(nil), t.vec...)
	if uint64(start) < uint64(len(nv)) && nv[start] != nil {
		sv := nv[start]
		nv[start] = &SizeVectors{Seg: append([]int64(nil), sv.Seg...), Total: sv.Total}
	}
	return &SizeTable{vec: nv}
}

// Range calls f for every present vector in ascending rule-ID order until
// f returns false. f may Drop entries (including the current one).
func (t *SizeTable) Range(f func(id int32, sv *SizeVectors) bool) {
	for id, sv := range t.vec {
		if sv != nil && !f(int32(id), sv) {
			return
		}
	}
}

// ValSizes computes size vectors for every rule in one bottom-up pass
// (anti-SL order), as required by path isolation (Section III-A). Counts
// saturate at math.MaxInt64 to stay safe on exponentially compressing
// grammars.
func (g *Grammar) ValSizes() (*SizeTable, error) {
	anti, err := g.AntiSLOrder()
	if err != nil {
		return nil, err
	}
	sizes := NewSizeTable(g)
	for _, id := range anti {
		sv, err := g.RuleValSizes(id, sizes)
		if err != nil {
			return nil, err
		}
		sizes.vec[id] = sv
	}
	return sizes, nil
}

// RuleValSizes computes the size vector of one rule from already-computed
// callee vectors in sizes. It is the per-rule body of ValSizes, exposed so
// callers that know only the start rule changed (path isolation keeps
// every other rule intact) can refresh a cached size-vector table in
// O(|RHS|) instead of recomputing all rules.
func (g *Grammar) RuleValSizes(id int32, sizes *SizeTable) (*SizeVectors, error) {
	r := g.Rule(id)
	if r == nil {
		return nil, fmt.Errorf("grammar: RuleValSizes: no rule N%d", id)
	}
	sv := &SizeVectors{Seg: make([]int64, r.Rank+1)}
	seg := 0
	var walk func(n *xmltree.Node) error
	walk = func(n *xmltree.Node) error {
		switch n.Label.Kind {
		case xmltree.Parameter:
			seg = int(n.Label.ID)
			return nil
		case xmltree.Terminal:
			sv.Seg[seg] = satAdd(sv.Seg[seg], 1)
			for _, c := range n.Children {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		case xmltree.Nonterminal:
			callee := sizes.Get(n.Label.ID)
			if callee == nil {
				return fmt.Errorf("grammar: ValSizes: rule N%d not yet computed", n.Label.ID)
			}
			sv.Seg[seg] = satAdd(sv.Seg[seg], callee.Seg[0])
			for i, c := range n.Children {
				if err := walk(c); err != nil {
					return err
				}
				sv.Seg[seg] = satAdd(sv.Seg[seg], callee.Seg[i+1])
			}
			return nil
		}
		return fmt.Errorf("grammar: ValSizes: bad symbol kind")
	}
	if err := walk(r.RHS); err != nil {
		return nil, err
	}
	for _, s := range sv.Seg {
		sv.Total = satAdd(sv.Total, s)
	}
	return sv, nil
}

func satAdd(a, b int64) int64 {
	s := a + b
	if s < a {
		return math.MaxInt64
	}
	return s
}

// SatAdd adds two non-negative node counts, saturating at math.MaxInt64
// (the same ceiling Saturated tests for). Exported so callers composing
// their own count arithmetic (update's delete accounting) share one
// saturation rule.
func SatAdd(a, b int64) int64 { return satAdd(a, b) }

// SubtreeValSizeWithin computes SubtreeValSize(t) with an early abort:
// it returns (size, true) when val(t) has at most limit nodes, and
// (partial, false) as soon as the running count exceeds limit — without
// walking the rest of the subtree. Path isolation uses it to prove "the
// target position lies inside this child" after walking only enough of
// the child to cover the target's offset, instead of measuring subtrees
// it is about to descend into anyway. The recursion carries the running
// count in plain arguments (no closure), so the isolation hot path
// allocates nothing.
func SubtreeValSizeWithin(t *xmltree.Node, sizes *SizeTable, limit int64) (int64, bool) {
	return subtreeWithin(t, sizes, limit, 0)
}

func subtreeWithin(n *xmltree.Node, sizes *SizeTable, limit, acc int64) (int64, bool) {
	if n.Label.Kind == xmltree.Nonterminal {
		acc = satAdd(acc, sizes.Get(n.Label.ID).Total)
	} else {
		acc = satAdd(acc, 1)
	}
	if acc > limit {
		return acc, false
	}
	for _, c := range n.Children {
		var ok bool
		if acc, ok = subtreeWithin(c, sizes, limit, acc); !ok {
			return acc, false
		}
	}
	return acc, true
}

// ValNodeCount returns the node count of val_G(S) (excluding nothing;
// the start rule has no parameters so this is the full tree size),
// computed without expansion.
func (g *Grammar) ValNodeCount() (int64, error) {
	sizes, err := g.ValSizes()
	if err != nil {
		return 0, err
	}
	return sizes.Get(g.Start).Total, nil
}

// SubtreeValSize returns the node count of val(t) for a subtree t of a
// right-hand side, given precomputed rule size vectors. Parameter nodes
// count as 1 placeholder node (they stand for externally supplied trees;
// path isolation only uses this on the start rule, which has none).
func SubtreeValSize(t *xmltree.Node, sizes *SizeTable) int64 {
	switch t.Label.Kind {
	case xmltree.Parameter:
		return 1
	case xmltree.Terminal:
		var s int64 = 1
		for _, c := range t.Children {
			s = satAdd(s, SubtreeValSize(c, sizes))
		}
		return s
	case xmltree.Nonterminal:
		sv := sizes.Get(t.Label.ID)
		s := sv.Total
		for _, c := range t.Children {
			s = satAdd(s, SubtreeValSize(c, sizes))
		}
		return s
	}
	return 0
}
