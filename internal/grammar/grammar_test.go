package grammar

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// paperGrammar builds the Section II example:
//
//	S -> f(A(B,B), ⊥)
//	B -> A(⊥,⊥)
//	A(y1,y2) -> a(⊥, a(y1,y2))
//
// which derives f(a(⊥,a(t,t)),⊥) with t = a(⊥,a(⊥,⊥)).
func paperGrammar(t *testing.T) (*Grammar, int32, int32) {
	t.Helper()
	st := xmltree.NewSymbolTable()
	f := st.InternElement("f")
	a := st.InternElement("a")
	g := New(st)
	A := g.NewRule(2, xmltree.New(xmltree.Term(a),
		xmltree.NewBottom(),
		xmltree.New(xmltree.Term(a), xmltree.New(xmltree.Param(1)), xmltree.New(xmltree.Param(2)))))
	B := g.NewRule(0, xmltree.New(xmltree.Nonterm(A.ID), xmltree.NewBottom(), xmltree.NewBottom()))
	g.StartRule().RHS = xmltree.New(xmltree.Term(f),
		xmltree.New(xmltree.Nonterm(A.ID),
			xmltree.New(xmltree.Nonterm(B.ID)),
			xmltree.New(xmltree.Nonterm(B.ID))),
		xmltree.NewBottom())
	if err := g.Validate(); err != nil {
		t.Fatalf("paper grammar invalid: %v", err)
	}
	return g, A.ID, B.ID
}

func TestPaperExampleExpansion(t *testing.T) {
	g, _, _ := paperGrammar(t)
	tree, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	// t = a(⊥, a(⊥,⊥)); val(S) = f(a(⊥, a(t,t)), ⊥)  — 13 nodes total.
	want := "f(a(⊥,a(a(⊥,a(⊥,⊥)),a(⊥,a(⊥,⊥)))),⊥)"
	if got := tree.Format(g.Syms); got != want {
		t.Fatalf("val(S) = %s, want %s", got, want)
	}
}

func TestExpandBudget(t *testing.T) {
	g, _, _ := paperGrammar(t)
	if _, err := g.Expand(5); !errors.Is(err, ErrExpandBudget) {
		t.Fatalf("want budget error, got %v", err)
	}
	if _, err := g.Expand(15); err != nil {
		t.Fatalf("15 nodes should fit exactly: %v", err)
	}
}

func TestExpandRuleKeepsParameters(t *testing.T) {
	g, A, _ := paperGrammar(t)
	tr, err := g.ExpandRule(A, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Format(g.Syms); got != "a(⊥,a(y1,y2))" {
		t.Fatalf("val(A) = %s", got)
	}
}

func TestSizeAndNodeCount(t *testing.T) {
	g, _, _ := paperGrammar(t)
	// RHS sizes: S has 6 nodes (f, A, B, B, ⊥ plus... f(A(B,B),⊥):
	// f, A, B, B, ⊥ = 5 nodes, 4 edges. A: a,⊥,a,y1,y2 = 5 nodes, 4 edges.
	// B: A,⊥,⊥ = 3 nodes, 2 edges. |G| = 10.
	if got := g.Size(); got != 10 {
		t.Fatalf("|G| = %d, want 10", got)
	}
	if got := g.NodeCount(); got != 13 {
		t.Fatalf("node count = %d, want 13", got)
	}
}

func TestRefCounts(t *testing.T) {
	g, A, B := paperGrammar(t)
	refs := g.RefCounts()
	if refs[A] != 2 {
		t.Fatalf("refs(A) = %d, want 2 (S and B call it)", refs[A])
	}
	if refs[B] != 2 {
		t.Fatalf("refs(B) = %d, want 2", refs[B])
	}
	if refs[g.Start] != 0 {
		t.Fatalf("refs(S) = %d, want 0", refs[g.Start])
	}
}

func TestUsage(t *testing.T) {
	g, A, B := paperGrammar(t)
	usage, err := g.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if usage[g.Start] != 1 {
		t.Fatal("usage(S) must be 1")
	}
	if usage[B] != 2 {
		t.Fatalf("usage(B) = %v, want 2", usage[B])
	}
	// A is called once from S (usage 1) and once from B (usage 2) = 3.
	if usage[A] != 3 {
		t.Fatalf("usage(A) = %v, want 3", usage[A])
	}
}

func TestAntiSLOrder(t *testing.T) {
	g, A, B := paperGrammar(t)
	anti, err := g.AntiSLOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int32]int{}
	for i, id := range anti {
		pos[id] = i
	}
	if !(pos[A] < pos[B] && pos[B] < pos[g.Start]) {
		t.Fatalf("anti-SL order wrong: %v", anti)
	}
	sl, err := g.SLOrder()
	if err != nil {
		t.Fatal(err)
	}
	if sl[0] != g.Start {
		t.Fatalf("SL order must start with S: %v", sl)
	}
}

func TestValidateRejectsRecursion(t *testing.T) {
	st := xmltree.NewSymbolTable()
	g := New(st)
	A := g.NewRule(0, nil)
	B := g.NewRule(0, xmltree.New(xmltree.Nonterm(A.ID)))
	A.RHS = xmltree.New(xmltree.Nonterm(B.ID))
	g.StartRule().RHS = xmltree.New(xmltree.Nonterm(A.ID))
	if err := g.Validate(); err == nil {
		t.Fatal("recursive grammar must be rejected")
	}
}

func TestValidateRejectsBadArity(t *testing.T) {
	st := xmltree.NewSymbolTable()
	a := st.InternElement("a")
	g := New(st)
	g.StartRule().RHS = xmltree.New(xmltree.Term(a), xmltree.NewBottom()) // a needs 2 children
	if err := g.Validate(); err == nil {
		t.Fatal("terminal arity violation must be rejected")
	}
}

func TestValidateRejectsParamOrderAndLinearity(t *testing.T) {
	st := xmltree.NewSymbolTable()
	a := st.InternElement("a")
	g := New(st)
	// A(y1,y2) -> a(y2, y1): parameters out of preorder order.
	A := g.NewRule(2, xmltree.New(xmltree.Term(a),
		xmltree.New(xmltree.Param(2)), xmltree.New(xmltree.Param(1))))
	g.StartRule().RHS = xmltree.New(xmltree.Nonterm(A.ID), xmltree.NewBottom(), xmltree.NewBottom())
	if err := g.Validate(); err == nil {
		t.Fatal("out-of-order parameters must be rejected")
	}
	// A(y1,y2) -> a(y1, y1): y1 twice, y2 missing.
	A.RHS = xmltree.New(xmltree.Term(a),
		xmltree.New(xmltree.Param(1)), xmltree.New(xmltree.Param(1)))
	if err := g.Validate(); err == nil {
		t.Fatal("non-linear parameters must be rejected")
	}
}

func TestValidateRejectsStartOnRHS(t *testing.T) {
	st := xmltree.NewSymbolTable()
	a := st.InternElement("a")
	g := New(st)
	A := g.NewRule(0, xmltree.New(xmltree.Nonterm(g.Start)))
	g.StartRule().RHS = xmltree.New(xmltree.Term(a),
		xmltree.New(xmltree.Nonterm(A.ID)), xmltree.NewBottom())
	if err := g.Validate(); err == nil {
		t.Fatal("start symbol on a RHS must be rejected")
	}
}

func TestInlineAt(t *testing.T) {
	g, A, B := paperGrammar(t)
	// Inline B at node (S,3): S -> f(A(A(⊥,⊥), B), ⊥), paper Section II.
	s := g.StartRule()
	aCall := s.RHS.Children[0] // the A(B,B) node
	g.InlineAt(s, aCall, 0)
	want := "f(N" // sanity: A id formatting
	_ = want
	got := s.RHS.Format(g.Syms)
	if !strings.Contains(got, "N1(N1(⊥,⊥)") && !strings.Contains(got, "N1(N1(⊥,⊥),N2)") {
		// A has id 1, B id 2 given creation order after start (id 0).
		t.Fatalf("inline result unexpected: %s", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("grammar invalid after inline: %v", err)
	}
	// val must be unchanged by inlining.
	tree, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Format(g.Syms) != "f(a(⊥,a(a(⊥,a(⊥,⊥)),a(⊥,a(⊥,⊥)))),⊥)" {
		t.Fatalf("val changed by inlining: %s", tree.Format(g.Syms))
	}
	_ = A
	_ = B
}

func TestInlineAtRoot(t *testing.T) {
	st := xmltree.NewSymbolTable()
	a := st.InternElement("a")
	g := New(st)
	A := g.NewRule(0, xmltree.New(xmltree.Term(a), xmltree.NewBottom(), xmltree.NewBottom()))
	g.StartRule().RHS = xmltree.New(xmltree.Nonterm(A.ID))
	sub := g.InlineAt(g.StartRule(), nil, 0)
	if g.StartRule().RHS != sub {
		t.Fatal("root inline must replace the rule RHS")
	}
	if got := g.StartRule().RHS.Format(g.Syms); got != "a(⊥,⊥)" {
		t.Fatalf("got %s", got)
	}
}

func TestValSizesPaperExample(t *testing.T) {
	// Paper: valG(A) = f(y1, g(h(a,y2), g(a,y3))) ⇒ size(A,·) = 1,3,2,0.
	st := xmltree.NewSymbolTable()
	f := st.InternElement("f") // rank 2
	gsym := st.Intern("g", 2)
	h := st.Intern("h", 2)
	a := st.Intern("a", 0)
	g := New(st)
	A := g.NewRule(3, xmltree.New(xmltree.Term(f),
		xmltree.New(xmltree.Param(1)),
		xmltree.New(xmltree.Term(gsym),
			xmltree.New(xmltree.Term(h), xmltree.New(xmltree.Term(a)), xmltree.New(xmltree.Param(2))),
			xmltree.New(xmltree.Term(gsym), xmltree.New(xmltree.Term(a)), xmltree.New(xmltree.Param(3))))))
	g.StartRule().RHS = xmltree.New(xmltree.Nonterm(A.ID),
		xmltree.New(xmltree.Term(a)), xmltree.New(xmltree.Term(a)), xmltree.New(xmltree.Term(a)))
	sizes, err := g.ValSizes()
	if err != nil {
		t.Fatal(err)
	}
	sv := sizes.Get(A.ID)
	want := []int64{1, 3, 2, 0}
	for i, w := range want {
		if sv.Seg[i] != w {
			t.Fatalf("size(A,%d) = %d, want %d (all: %v)", i, sv.Seg[i], w, sv.Seg)
		}
	}
	if sv.Total != 6 {
		t.Fatalf("total = %d, want 6", sv.Total)
	}
	// val(S) = val(A) with three a-leaves substituted: 6 + 3 = 9 nodes.
	n, err := g.ValNodeCount()
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("ValNodeCount = %d, want 9", n)
	}
}

func TestValSizesNestedCalls(t *testing.T) {
	g, _, _ := paperGrammar(t)
	n, err := g.ValNodeCount()
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := g.Expand(0)
	if int64(tree.Size()) != n {
		t.Fatalf("ValNodeCount = %d, expansion has %d nodes", n, tree.Size())
	}
}

func TestSubtreeValSize(t *testing.T) {
	g, _, _ := paperGrammar(t)
	sizes, err := g.ValSizes()
	if err != nil {
		t.Fatal(err)
	}
	s := g.StartRule()
	got := SubtreeValSize(s.RHS, sizes)
	if got != 15 {
		t.Fatalf("SubtreeValSize(S rhs) = %d, want 15", got)
	}
	// The A(B,B) subtree: val has 15-2 = 13 nodes (minus f and ⊥).
	if got := SubtreeValSize(s.RHS.Children[0], sizes); got != 13 {
		t.Fatalf("SubtreeValSize(A(B,B)) = %d, want 13", got)
	}
}

func TestGarbageCollect(t *testing.T) {
	g, _, _ := paperGrammar(t)
	dead := g.NewRule(0, xmltree.NewBottom())
	dead2 := g.NewRule(0, xmltree.New(xmltree.Nonterm(dead.ID)))
	if n := g.GarbageCollect(); n != 2 {
		t.Fatalf("collected %d rules, want 2", n)
	}
	if g.Rule(dead.ID) != nil || g.Rule(dead2.ID) != nil {
		t.Fatal("dead rules must be removed")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g, A, _ := paperGrammar(t)
	cp := g.Clone()
	cp.Rule(A).RHS = xmltree.NewBottom()
	cp.Rule(A).Rank = 0
	if g.Rule(A).RHS.Label.IsBottom() {
		t.Fatal("clone must not share RHS nodes")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRule(t *testing.T) {
	g, _, _ := paperGrammar(t)
	r := g.NewRule(0, xmltree.NewBottom())
	before := g.NumRules()
	g.DeleteRule(r.ID)
	if g.NumRules() != before-1 {
		t.Fatal("rule not deleted")
	}
	g.DeleteRule(r.ID) // idempotent
	if g.NumRules() != before-1 {
		t.Fatal("double delete changed count")
	}
}

func TestStringRendering(t *testing.T) {
	g, _, _ := paperGrammar(t)
	s := g.String()
	if !strings.Contains(s, "->") || !strings.Contains(s, "y1") {
		t.Fatalf("rendering looks wrong:\n%s", s)
	}
	// Start rule must come first.
	if !strings.HasPrefix(s, "N0 ->") {
		t.Fatalf("start rule must lead:\n%s", s)
	}
}

func TestFromDocument(t *testing.T) {
	u := xmltree.NewUnranked("r", xmltree.NewUnranked("a"))
	doc := u.Binary()
	g := FromDocument(doc)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	tree, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(tree, doc.Root) {
		t.Fatal("FromDocument expansion must equal the document")
	}
}

func TestUsageUnreachableRule(t *testing.T) {
	g, _, _ := paperGrammar(t)
	dead := g.NewRule(0, xmltree.NewBottom())
	usage, err := g.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if usage[dead.ID] != 0 {
		t.Fatalf("unreachable rule usage = %v, want 0", usage[dead.ID])
	}
}
