// Package grammar implements straight-line linear context-free (SLCF) tree
// grammars exactly as defined in Section II of the paper: a 4-tuple
// G = (F, N, P, S) where every nonterminal R of rank m has exactly one rule
// R → t_R, t_R is linear in the parameters y1..ym (each occurs exactly
// once, in preorder order), the start symbol S never occurs on a right-hand
// side, and the call relation is acyclic (straight-line).
package grammar

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmltree"
)

// Rule is a grammar production R → RHS. Rank is the number of formal
// parameters of R; each of y1..yRank occurs exactly once in RHS.
type Rule struct {
	ID   int32
	Rank int
	RHS  *xmltree.Node
}

// Grammar is a mutable SLCF tree grammar. Rules are identified by
// nonterminal ID; iteration order over rules is the deterministic order of
// creation (kept in order), which experiments rely on for reproducibility.
//
// Rule IDs are dense: NewRule assigns them sequentially and they are never
// reused, so rules live in a slice indexed by ID (deleted rules leave nil
// gaps) and every per-rule analysis table (RefCounts, Usage, SizeTable,
// the compressor's occurrence index) is a plain slice bounded by
// MaxRuleID — no hashing on any per-rule lookup.
type Grammar struct {
	Syms  *xmltree.SymbolTable
	Start int32

	rules  []*Rule // indexed by rule ID; nil = deleted / never created
	order  []int32 // creation order of live rule IDs
	nextNT int32

	// epoch counts document-content mutations (update operations) applied
	// to this grammar instance. It is bumped by the update path, copied by
	// Clone, and compared by the store's asynchronous recompression swap
	// protocol: a snapshot whose epoch still matches the live grammar's
	// derives the same document, so the recompressed copy can be swapped
	// in. Rule surgery that preserves the document (GC, inlining,
	// recompression itself) does not bump it.
	epoch uint64

	// frozen marks a published (shared, immutable) grammar: the store's
	// generational read path hands the same Grammar instance to any
	// number of lock-free readers, so the writer freezes it at publish
	// time and every mutation entry point asserts against the flag. The
	// assertion is a development tripwire, not a synchronization
	// mechanism — correctness comes from the store's publish protocol.
	frozen bool
}

// Epoch returns the grammar's update epoch. See the field comment.
func (g *Grammar) Epoch() uint64 { return g.epoch }

// BumpEpoch records one document-content mutation and returns the new
// epoch. Callers that mutate val(G) outside the update path must bump,
// or epoch-guarded snapshot swaps would resurrect overwritten content.
func (g *Grammar) BumpEpoch() uint64 {
	g.assertMutable()
	g.epoch++
	return g.epoch
}

// Freeze marks the grammar published: from now on any structural
// mutation or epoch bump panics. Freezing is idempotent; Clone always
// returns an unfrozen copy, and the owner that published the grammar
// may Unfreeze it again once it has proven no reader shares it (the
// store's generation-reclaim path).
func (g *Grammar) Freeze() { g.frozen = true }

// Unfreeze re-arms mutation on a frozen grammar. Only the publisher may
// call it, and only while it can prove no reader holds the instance.
func (g *Grammar) Unfreeze() { g.frozen = false }

// Frozen reports whether the grammar is in published/immutable mode.
func (g *Grammar) Frozen() bool { return g.frozen }

// assertMutable panics on mutation of a published grammar — the debug
// tripwire of the store's generational read protocol.
func (g *Grammar) assertMutable() {
	if g.frozen {
		panic("grammar: mutation of a frozen (published) grammar")
	}
}

// New returns an empty grammar over the given symbol table with a start
// rule S (rank 0) whose right-hand side is a single ⊥ node.
func New(st *xmltree.SymbolTable) *Grammar {
	g := &Grammar{Syms: st}
	s := g.NewRule(0, xmltree.NewBottom())
	g.Start = s.ID
	return g
}

// FromTree wraps a plain tree (no nonterminals, no parameters) into a
// single-rule grammar S → t. The tree is not copied.
func FromTree(st *xmltree.SymbolTable, t *xmltree.Node) *Grammar {
	g := New(st)
	g.rules[g.Start].RHS = t
	return g
}

// MaxRuleID returns an exclusive upper bound on every rule ID the grammar
// has ever assigned (deleted IDs included — they are never reused). Dense
// rule-ID-indexed tables size themselves by this bound.
func (g *Grammar) MaxRuleID() int32 { return g.nextNT }

// FromDocument wraps a binary-encoded document into a single-rule grammar.
func FromDocument(d *xmltree.Document) *Grammar {
	return FromTree(d.Syms, d.Root)
}

// NewRule creates a fresh nonterminal of the given rank with the given
// right-hand side and registers its rule.
func (g *Grammar) NewRule(rank int, rhs *xmltree.Node) *Rule {
	g.assertMutable()
	id := g.nextNT
	g.nextNT++
	r := &Rule{ID: id, Rank: rank, RHS: rhs}
	g.setRule(id, r)
	g.order = append(g.order, id)
	return r
}

// setRule grows the dense rule slice to cover id and stores r there.
func (g *Grammar) setRule(id int32, r *Rule) {
	g.assertMutable()
	g.rules = GrowTo(g.rules, int(id)+1)
	g.rules[id] = r
}

// GrowTo extends a dense rule-ID-indexed slice to length n (new
// elements zero), reusing spare capacity. One helper for every dense
// table keyed by rule ID — the grammar's rule slice, SizeTable, and the
// compressor's occurrence-index state.
func GrowTo[T any](s []T, n int) []T {
	if n <= len(s) {
		return s
	}
	if n <= cap(s) {
		t := s[:n]
		// Spare capacity is zero after any append-grow, but clear
		// defensively so no truncation pattern can ever leak old values.
		clear(t[len(s):])
		return t
	}
	return append(s, make([]T, n-len(s))...)
}

// Rule returns the rule for nonterminal id (nil if deleted/unknown).
func (g *Grammar) Rule(id int32) *Rule {
	if uint64(id) >= uint64(len(g.rules)) {
		return nil
	}
	return g.rules[id]
}

// StartRule returns the start rule.
func (g *Grammar) StartRule() *Rule { return g.Rule(g.Start) }

// DeleteRule removes the rule for id. The caller must ensure no remaining
// right-hand side references id.
func (g *Grammar) DeleteRule(id int32) {
	g.assertMutable()
	if g.Rule(id) == nil {
		return
	}
	g.rules[id] = nil
	for i, rid := range g.order {
		if rid == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
}

// NumRules returns the number of live rules.
func (g *Grammar) NumRules() int { return len(g.order) }

// RuleIDs returns the live rule IDs in creation order. The returned slice
// is a copy and safe to mutate.
func (g *Grammar) RuleIDs() []int32 {
	return append([]int32(nil), g.order...)
}

// Rules calls f for every live rule in creation order. f must not add or
// delete rules.
func (g *Grammar) Rules(f func(*Rule)) {
	for _, id := range g.order {
		f(g.rules[id])
	}
}

// Size returns |G| = Σ_rules edges(RHS), the paper's grammar size measure.
func (g *Grammar) Size() int {
	s := 0
	for _, id := range g.order {
		s += g.rules[id].RHS.Edges()
	}
	return s
}

// NodeCount returns the total number of right-hand-side nodes.
func (g *Grammar) NodeCount() int {
	s := 0
	for _, id := range g.order {
		s += g.rules[id].RHS.Size()
	}
	return s
}

// Clone returns a deep copy of the grammar (rules and symbol table).
// The copy preserves the epoch and every rule ID but is always unfrozen:
// cloning is how a writer obtains a private mutable working copy of a
// published generation.
func (g *Grammar) Clone() *Grammar {
	cp := &Grammar{
		Syms:   g.Syms.Clone(),
		Start:  g.Start,
		rules:  make([]*Rule, len(g.rules)),
		order:  append([]int32(nil), g.order...),
		nextNT: g.nextNT,
		epoch:  g.epoch,
	}
	for id, r := range g.rules {
		if r != nil {
			cp.rules[id] = &Rule{ID: r.ID, Rank: r.Rank, RHS: r.RHS.Copy()}
		}
	}
	return cp
}

// errValidate wraps validation failures.
var errValidate = errors.New("grammar: invalid")

// Validate checks every structural invariant of the SLCF model:
// terminal arities, nonterminal arities against rule ranks, parameter
// linearity and preorder ordering, start-symbol non-occurrence,
// straight-lineness, and that every referenced rule exists.
func (g *Grammar) Validate() error {
	if g.Rule(g.Start) == nil {
		// Decoded streams are untrusted: a dangling start ID must fail
		// here, not nil-deref on first use.
		return fmt.Errorf("%w: start rule N%d does not exist", errValidate, g.Start)
	}
	for _, id := range g.order {
		r := g.rules[id]
		if r == nil {
			return fmt.Errorf("%w: rule N%d in order but not stored", errValidate, id)
		}
		if r.RHS == nil {
			return fmt.Errorf("%w: rule N%d has nil RHS", errValidate, id)
		}
		if r.RHS.Label.Kind == xmltree.Parameter {
			return fmt.Errorf("%w: rule N%d RHS is a bare parameter", errValidate, id)
		}
		seen := 0
		var err error
		r.RHS.Walk(func(v *xmltree.Node) bool {
			switch v.Label.Kind {
			case xmltree.Terminal:
				if want := g.Syms.Rank(v.Label.ID); len(v.Children) != want {
					err = fmt.Errorf("%w: rule N%d: terminal %s has %d children, rank %d",
						errValidate, id, g.Syms.Name(v.Label.ID), len(v.Children), want)
				}
			case xmltree.Nonterminal:
				callee := g.Rule(v.Label.ID)
				if callee == nil {
					err = fmt.Errorf("%w: rule N%d references missing rule N%d", errValidate, id, v.Label.ID)
				} else if len(v.Children) != callee.Rank {
					err = fmt.Errorf("%w: rule N%d: call N%d has %d args, rank %d",
						errValidate, id, v.Label.ID, len(v.Children), callee.Rank)
				}
				if v.Label.ID == g.Start {
					err = fmt.Errorf("%w: start symbol occurs in rule N%d", errValidate, id)
				}
			case xmltree.Parameter:
				if len(v.Children) != 0 {
					err = fmt.Errorf("%w: rule N%d: parameter with children", errValidate, id)
				}
				if int(v.Label.ID) != seen+1 {
					err = fmt.Errorf("%w: rule N%d: parameter y%d out of order (expected y%d)",
						errValidate, id, v.Label.ID, seen+1)
				}
				seen++
			}
			return err == nil
		})
		if err != nil {
			return err
		}
		if seen != r.Rank {
			return fmt.Errorf("%w: rule N%d has %d parameters, rank %d", errValidate, id, seen, r.Rank)
		}
	}
	if _, err := g.AntiSLOrder(); err != nil {
		return err
	}
	return nil
}

// AntiSLOrder returns all live rule IDs in anti-straight-line order:
// callees strictly before callers (so the start rule is last, and whenever
// calls*(Q,R) holds, Q precedes R). Returns an error if the grammar is
// recursive.
func (g *Grammar) AntiSLOrder() ([]int32, error) {
	const (
		gray  = 1
		black = 2
	)
	color := make([]uint8, g.nextNT)
	out := make([]int32, 0, len(g.order))
	var visit func(id int32) error
	visit = func(id int32) error {
		r := g.Rule(id)
		if r == nil {
			return fmt.Errorf("%w: missing rule N%d", errValidate, id)
		}
		switch color[id] {
		case gray:
			return fmt.Errorf("%w: recursion through N%d", errValidate, id)
		case black:
			return nil
		}
		color[id] = gray
		var err error
		r.RHS.Walk(func(v *xmltree.Node) bool {
			if err != nil {
				return false
			}
			if v.Label.Kind == xmltree.Nonterminal {
				err = visit(v.Label.ID)
			}
			return err == nil
		})
		if err != nil {
			return err
		}
		color[id] = black
		out = append(out, id)
		return nil
	}
	// Deterministic: visit in creation order; unreachable rules still get
	// a consistent position.
	for _, id := range g.order {
		if err := visit(id); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SLOrder returns rule IDs in straight-line order (callers before callees).
func (g *Grammar) SLOrder() ([]int32, error) {
	anti, err := g.AntiSLOrder()
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(anti)-1; i < j; i, j = i+1, j-1 {
		anti[i], anti[j] = anti[j], anti[i]
	}
	return anti, nil
}

// String renders the grammar in the paper's notation, one rule per line in
// creation order, start rule first.
func (g *Grammar) String() string {
	var b strings.Builder
	ids := g.RuleIDs()
	sort.Slice(ids, func(i, j int) bool {
		if ids[i] == g.Start {
			return true
		}
		if ids[j] == g.Start {
			return false
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		r := g.rules[id]
		fmt.Fprintf(&b, "N%d", id)
		if r.Rank > 0 {
			b.WriteByte('(')
			for i := 1; i <= r.Rank; i++ {
				if i > 1 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "y%d", i)
			}
			b.WriteByte(')')
		}
		b.WriteString(" -> ")
		b.WriteString(r.RHS.Format(g.Syms))
		b.WriteByte('\n')
	}
	return b.String()
}
