package grammar

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/xmltree"
)

// The on-disk grammar format: a compact varint encoding so compressed
// documents can be persisted and shipped at grammar size. Layout:
//
//	magic "SLTG" | version 1
//	symbol table: count, then (name, rank) per terminal (⊥ implied)
//	start rule ID
//	rules: count, then per rule: ID, rank, body preorder stream
//
// Body nodes are encoded in preorder as (tag, id): tag 0 = terminal,
// 1 = nonterminal, 2 = parameter; child counts are implied by ranks.
const magic = "SLTG"

// Encode writes the grammar in the binary format.
func Encode(w io.Writer, g *Grammar) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	writeUvarint(bw, 1) // version
	// Symbol table (skip ⊥, which every table has implicitly).
	writeUvarint(bw, uint64(g.Syms.Len()-1))
	for id := int32(1); id < int32(g.Syms.Len()); id++ {
		writeString(bw, g.Syms.Name(id))
		writeUvarint(bw, uint64(g.Syms.Rank(id)))
	}
	writeUvarint(bw, uint64(g.Start))
	ids := g.RuleIDs()
	writeUvarint(bw, uint64(len(ids)))
	for _, id := range ids {
		r := g.Rule(id)
		writeUvarint(bw, uint64(r.ID))
		writeUvarint(bw, uint64(r.Rank))
		writeUvarint(bw, uint64(r.RHS.Size()))
		var err error
		r.RHS.Walk(func(n *xmltree.Node) bool {
			switch n.Label.Kind {
			case xmltree.Terminal:
				writeUvarint(bw, 0)
			case xmltree.Nonterminal:
				writeUvarint(bw, 1)
			case xmltree.Parameter:
				writeUvarint(bw, 2)
			}
			writeUvarint(bw, uint64(n.Label.ID))
			if n.Label.Kind == xmltree.Nonterminal {
				writeUvarint(bw, uint64(len(n.Children)))
			}
			return err == nil
		})
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a grammar written by Encode and validates it.
func Decode(r io.Reader) (*Grammar, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("grammar: decode: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("grammar: decode: bad magic %q", head)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil || ver != 1 {
		return nil, fmt.Errorf("grammar: decode: unsupported version %d (%v)", ver, err)
	}
	st := xmltree.NewSymbolTable()
	nsyms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nsyms; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		rank, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		st.Intern(name, int(rank))
	}
	start, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	nrules, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	g := &Grammar{Syms: st, Start: int32(start), rules: make(map[int32]*Rule)}
	for i := uint64(0); i < nrules; i++ {
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		rank, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		left := int(size)
		rhs, err := readNode(br, st, &left)
		if err != nil {
			return nil, fmt.Errorf("grammar: decode rule %d: %w", id, err)
		}
		if left != 0 {
			return nil, fmt.Errorf("grammar: decode rule %d: size mismatch", id)
		}
		rid := int32(id)
		g.rules[rid] = &Rule{ID: rid, Rank: int(rank), RHS: rhs}
		g.order = append(g.order, rid)
		if rid >= g.nextNT {
			g.nextNT = rid + 1
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("grammar: decode: %w", err)
	}
	return g, nil
}

func readNode(br *bufio.Reader, st *xmltree.SymbolTable, left *int) (*xmltree.Node, error) {
	if *left <= 0 {
		return nil, fmt.Errorf("truncated body")
	}
	*left--
	tag, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	id, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	var n *xmltree.Node
	var kids int
	switch tag {
	case 0:
		if id >= uint64(st.Len()) {
			return nil, fmt.Errorf("unknown terminal %d", id)
		}
		n = xmltree.New(xmltree.Term(int32(id)))
		kids = st.Rank(int32(id))
	case 1:
		n = xmltree.New(xmltree.Nonterm(int32(id)))
		k, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		kids = int(k)
	case 2:
		n = xmltree.New(xmltree.Param(int(id)))
	default:
		return nil, fmt.Errorf("bad node tag %d", tag)
	}
	if kids > 0 {
		n.Children = make([]*xmltree.Node, kids)
		for i := 0; i < kids; i++ {
			c, err := readNode(br, st, left)
			if err != nil {
				return nil, err
			}
			n.Children[i] = c
		}
	}
	return n, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("grammar: decode: string too long (%d)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
