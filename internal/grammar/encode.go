package grammar

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/xmltree"
)

// The on-disk grammar format: a compact varint encoding so compressed
// documents can be persisted and shipped at grammar size. Layout:
//
//	magic "SLTG" | version 1
//	symbol table: count, then (name, rank) per terminal (⊥ implied)
//	start rule ID
//	rules: count, then per rule: ID, rank, body preorder stream
//
// Body nodes are encoded in preorder as (tag, id): tag 0 = terminal,
// 1 = nonterminal, 2 = parameter; child counts are implied by ranks.
const magic = "SLTG"

// Encode writes the grammar in the binary format.
func Encode(w io.Writer, g *Grammar) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := writeUvarint(bw, 1); err != nil { // version
		return err
	}
	// Symbol table (skip ⊥, which every table has implicitly).
	if err := writeUvarint(bw, uint64(g.Syms.Len()-1)); err != nil {
		return err
	}
	for id := int32(1); id < int32(g.Syms.Len()); id++ {
		if err := writeString(bw, g.Syms.Name(id)); err != nil {
			return err
		}
		if err := writeUvarint(bw, uint64(g.Syms.Rank(id))); err != nil {
			return err
		}
	}
	if err := writeUvarint(bw, uint64(g.Start)); err != nil {
		return err
	}
	ids := g.RuleIDs()
	if err := writeUvarint(bw, uint64(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		r := g.Rule(id)
		for _, v := range []uint64{uint64(r.ID), uint64(r.Rank), uint64(r.RHS.Size())} {
			if err := writeUvarint(bw, v); err != nil {
				return err
			}
		}
		var err error
		r.RHS.Walk(func(n *xmltree.Node) bool {
			switch n.Label.Kind {
			case xmltree.Terminal:
				err = writeUvarint(bw, 0)
			case xmltree.Nonterminal:
				err = writeUvarint(bw, 1)
			case xmltree.Parameter:
				err = writeUvarint(bw, 2)
			}
			if err == nil {
				err = writeUvarint(bw, uint64(n.Label.ID))
			}
			if err == nil && n.Label.Kind == xmltree.Nonterminal {
				err = writeUvarint(bw, uint64(len(n.Children)))
			}
			return err == nil
		})
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a grammar written by Encode and validates it.
func Decode(r io.Reader) (*Grammar, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("grammar: decode: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("grammar: decode: bad magic %q", head)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil || ver != 1 {
		return nil, fmt.Errorf("grammar: decode: unsupported version %d (%v)", ver, err)
	}
	st := xmltree.NewSymbolTable()
	nsyms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nsyms; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		rank, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if rank > maxSymbolRank {
			return nil, fmt.Errorf("grammar: decode: terminal rank %d too large", rank)
		}
		st.Intern(name, int(rank))
	}
	start, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if start > maxRuleID {
		return nil, fmt.Errorf("grammar: decode: start rule ID %d out of range", start)
	}
	nrules, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	g := &Grammar{Syms: st, Start: int32(start)}
	for i := uint64(0); i < nrules; i++ {
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if id > maxRuleID {
			return nil, fmt.Errorf("grammar: decode: rule ID %d out of range", id)
		}
		rank, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if size > maxBodyNodes {
			return nil, fmt.Errorf("grammar: decode rule %d: body size %d too large", id, size)
		}
		if rank > size {
			// Every parameter is a body node, so rank can never exceed the
			// declared body size.
			return nil, fmt.Errorf("grammar: decode rule %d: rank %d exceeds body size %d", id, rank, size)
		}
		left := int(size)
		rhs, err := readNode(br, st, &left, 0)
		if err != nil {
			return nil, fmt.Errorf("grammar: decode rule %d: %w", id, err)
		}
		if left != 0 {
			return nil, fmt.Errorf("grammar: decode rule %d: size mismatch", id)
		}
		rid := int32(id)
		if g.Rule(rid) != nil {
			return nil, fmt.Errorf("grammar: decode: duplicate rule N%d", rid)
		}
		g.setRule(rid, &Rule{ID: rid, Rank: int(rank), RHS: rhs})
		g.order = append(g.order, rid)
		if rid >= g.nextNT {
			g.nextNT = rid + 1
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("grammar: decode: %w", err)
	}
	return g, nil
}

// Decode hardening bounds. A decoded stream is untrusted input: every
// count that sizes an allocation or is narrowed to a smaller integer type
// must be validated first, or a few bytes can demand a multi-GB
// allocation (kids, rank, size) or alias unrelated rules via int32
// wraparound (rule IDs, start).
const (
	// maxSymbolRank bounds terminal ranks. Digram replacement introduces
	// terminals of rank ≤ 2·k_in; anything near this bound is corrupt.
	maxSymbolRank = 1 << 16
	// maxBodyNodes bounds a single rule body's declared node count, and
	// with it the node budget every child-count is clamped against.
	maxBodyNodes = 1 << 30
	// maxChildPrealloc caps the children capacity allocated before the
	// children actually decode, so a lying child count can never demand
	// more memory than the bytes backing it.
	maxChildPrealloc = 1 << 10
	// maxRuleID bounds decoded rule IDs. Encoders assign IDs
	// sequentially (deletions leave gaps but never inflate them), and
	// dense rule-ID-indexed structures (the rules slice itself, RefCounts,
	// Usage, SizeTable) size by the largest ID — an unbounded ID would let
	// ~30 bytes of input demand a multi-GB slice or overflow nextNT past
	// int32.
	maxRuleID = 1 << 20
	// maxBodyDepth bounds rule-body nesting. readNode (and every
	// recursive pass that follows: Validate, Walk, expansion) recurses
	// per level, so without a bound a ~30 MB chain-of-single-children
	// stream would kill the process by stack exhaustion instead of
	// failing with an error. Real bodies are orders of magnitude
	// shallower.
	maxBodyDepth = 1 << 16
)

func readNode(br *bufio.Reader, st *xmltree.SymbolTable, left *int, depth int) (*xmltree.Node, error) {
	if depth > maxBodyDepth {
		return nil, fmt.Errorf("body nesting exceeds depth %d", maxBodyDepth)
	}
	if *left <= 0 {
		return nil, fmt.Errorf("truncated body")
	}
	*left--
	tag, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	id, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	var n *xmltree.Node
	var kids int
	switch tag {
	case 0:
		if id >= uint64(st.Len()) {
			return nil, fmt.Errorf("unknown terminal %d", id)
		}
		n = xmltree.New(xmltree.Term(int32(id)))
		kids = st.Rank(int32(id))
	case 1:
		if id > math.MaxInt32 {
			return nil, fmt.Errorf("nonterminal ID %d out of range", id)
		}
		n = xmltree.New(xmltree.Nonterm(int32(id)))
		k, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		kids = int(k)
	case 2:
		if id == 0 || id > maxSymbolRank {
			return nil, fmt.Errorf("parameter index %d out of range", id)
		}
		n = xmltree.New(xmltree.Param(int(id)))
	default:
		return nil, fmt.Errorf("bad node tag %d", tag)
	}
	if kids > *left {
		// Each child consumes at least one node of the remaining budget.
		return nil, fmt.Errorf("child count %d exceeds remaining body budget %d", kids, *left)
	}
	if kids > 0 {
		prealloc := kids
		if prealloc > maxChildPrealloc {
			prealloc = maxChildPrealloc
		}
		n.Children = make([]*xmltree.Node, 0, prealloc)
		for i := 0; i < kids; i++ {
			c, err := readNode(br, st, left, depth+1)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		}
	}
	return n, nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("grammar: decode: string too long (%d)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
