package grammar

import (
	"fmt"

	"repro/internal/xmltree"
)

// InlineEverywhere replaces every call of rule id on any right-hand side by
// a fresh instantiation of its body and deletes the rule. The start rule
// cannot be inlined away.
func (g *Grammar) InlineEverywhere(id int32) error {
	if id == g.Start {
		return fmt.Errorf("grammar: cannot inline start rule")
	}
	target := g.Rule(id)
	if target == nil {
		return fmt.Errorf("grammar: no rule N%d", id)
	}
	for _, rid := range g.order {
		if rid == id {
			continue
		}
		host := g.rules[rid]
		g.inlineCallsIn(host, target)
	}
	g.DeleteRule(id)
	return nil
}

// inlineCallsIn replaces every call of target inside host's RHS.
func (g *Grammar) inlineCallsIn(host *Rule, target *Rule) {
	var rec func(n *xmltree.Node) *xmltree.Node
	rec = func(n *xmltree.Node) *xmltree.Node {
		// Process children first so nested calls inside arguments are
		// rewritten before the argument subtrees get spliced into a body.
		for i, c := range n.Children {
			n.Children[i] = rec(c)
		}
		if n.Label.Kind == xmltree.Nonterminal && n.Label.ID == target.ID {
			return SubstituteParams(target.RHS.Copy(), n.Children)
		}
		return n
	}
	host.RHS = rec(host.RHS)
}

// Sav returns the paper's productiveness measure of rule R:
//
//	sav_G(R) = |ref_G(R)| · (size(t_R) − rank(R)) − size(t_R)
//
// with size(t_R) the edge count of the right-hand side. A rule with
// sav < 0 is unproductive.
func Sav(refs int, edges int, rank int) int {
	return refs*(edges-rank) - edges
}

// inlineEverywhereRefs is InlineEverywhere with incremental refcount
// maintenance: with k call sites, every nonterminal occurring n times in
// the inlined body gains (k-1)·n references (k fresh copies minus the
// deleted original), and the inlined rule itself drops to zero.
func (g *Grammar) inlineEverywhereRefs(id int32, refs []int) error {
	target := g.Rule(id)
	if target == nil {
		return fmt.Errorf("grammar: no rule N%d", id)
	}
	k := refs[id]
	rhs := target.RHS // survives the DeleteRule inside InlineEverywhere
	if err := g.InlineEverywhere(id); err != nil {
		// Nothing was inlined; refs must stay untouched.
		return err
	}
	rhs.Walk(func(v *xmltree.Node) bool {
		if v.Label.Kind == xmltree.Nonterminal {
			refs[v.Label.ID] += k - 1
		}
		return true
	})
	refs[id] = 0
	return nil
}

// deleteRuleRefs is DeleteRule with incremental refcount maintenance: the
// deleted rule's right-hand side no longer contributes references.
func (g *Grammar) deleteRuleRefs(id int32, refs []int) {
	r := g.Rule(id)
	if r == nil {
		return
	}
	r.RHS.Walk(func(v *xmltree.Node) bool {
		if v.Label.Kind == xmltree.Nonterminal {
			refs[v.Label.ID]--
		}
		return true
	})
	g.DeleteRule(id)
}

// Prune implements the pruning phase (Algorithm 1 line 7 / Section IV-D):
// first every rule with exactly one reference is inlined away, then rules
// are analyzed in anti-SL order and every rule with sav < 0 is inlined
// everywhere. The two passes repeat until no rule changes, matching
// TreeRePair's greedy strategy. Unreachable rules are collected as well.
// Returns the number of rules removed.
//
// Refcounts are kept in the dense rule-ID-indexed slice RefCounts
// returns, maintained across every inline and delete, so decisions never
// see stale counts (deletes used to leave counts unadjusted) and the full
// recount runs only once per Prune call.
func (g *Grammar) Prune() int {
	removed := 0
	refs := g.RefCounts()
	for {
		changed := false
		// Pass 1: |refs| == 1 rules are never worth keeping.
		for _, id := range g.RuleIDs() {
			if id == g.Start || g.Rule(id) == nil {
				continue
			}
			if refs[id] == 1 {
				if err := g.inlineEverywhereRefs(id, refs); err == nil {
					removed++
					changed = true
				}
			} else if refs[id] == 0 {
				g.deleteRuleRefs(id, refs)
				removed++
				changed = true
			}
		}
		// Pass 2: unproductive rules in anti-SL order.
		anti, err := g.AntiSLOrder()
		if err != nil {
			// A broken grammar is a programming error upstream; pruning
			// must not mask it.
			panic(err)
		}
		for _, id := range anti {
			if id == g.Start {
				continue
			}
			r := g.Rule(id)
			if r == nil {
				continue
			}
			if Sav(refs[id], r.RHS.Edges(), r.Rank) < 0 {
				if err := g.inlineEverywhereRefs(id, refs); err == nil {
					removed++
					changed = true
				}
			}
		}
		if !changed {
			return removed
		}
	}
}
