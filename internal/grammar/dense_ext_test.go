// Differential coverage for the dense rule-ID-indexed analysis tables:
// the slice-backed RefCounts, Usage, and ValSizes must agree exactly with
// independent map-based reference implementations (the shapes the code
// used before the dense refactor) on real compressed grammars across the
// workload corpora, before and after update degradation. External test
// package so the corpora generators and compressors can be imported.
package grammar_test

import (
	"math"
	"testing"

	"repro/internal/datasets"
	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// refCountsRef recomputes |ref_G(Q)| into a map, independent of RefCounts.
func refCountsRef(g *grammar.Grammar) map[int32]int {
	refs := make(map[int32]int)
	g.Rules(func(r *grammar.Rule) {
		refs[r.ID] += 0
		r.RHS.Walk(func(v *xmltree.Node) bool {
			if v.Label.Kind == xmltree.Nonterminal {
				refs[v.Label.ID]++
			}
			return true
		})
	})
	return refs
}

// usageRef recomputes usage_G into a map, independent of Usage.
func usageRef(t *testing.T, g *grammar.Grammar) map[int32]float64 {
	t.Helper()
	sl, err := g.SLOrder()
	if err != nil {
		t.Fatal(err)
	}
	usage := make(map[int32]float64)
	usage[g.Start] = 1
	for _, id := range sl {
		u := usage[id]
		if u == 0 {
			continue
		}
		g.Rule(id).RHS.Walk(func(v *xmltree.Node) bool {
			if v.Label.Kind == xmltree.Nonterminal {
				usage[v.Label.ID] += u
			}
			return true
		})
	}
	return usage
}

// valSizesRef recomputes every rule's size vector into a map, with its
// own walker, independent of ValSizes/RuleValSizes.
func valSizesRef(t *testing.T, g *grammar.Grammar) map[int32]*grammar.SizeVectors {
	t.Helper()
	anti, err := g.AntiSLOrder()
	if err != nil {
		t.Fatal(err)
	}
	sizes := make(map[int32]*grammar.SizeVectors)
	for _, id := range anti {
		r := g.Rule(id)
		sv := &grammar.SizeVectors{Seg: make([]int64, r.Rank+1)}
		seg := 0
		var walk func(n *xmltree.Node)
		walk = func(n *xmltree.Node) {
			switch n.Label.Kind {
			case xmltree.Parameter:
				seg = int(n.Label.ID)
			case xmltree.Terminal:
				sv.Seg[seg]++
				for _, c := range n.Children {
					walk(c)
				}
			case xmltree.Nonterminal:
				callee := sizes[n.Label.ID]
				sv.Seg[seg] += callee.Seg[0]
				for i, c := range n.Children {
					walk(c)
					sv.Seg[seg] += callee.Seg[i+1]
				}
			}
		}
		walk(r.RHS)
		for _, s := range sv.Seg {
			sv.Total += s
		}
		sizes[id] = sv
	}
	return sizes
}

// degradedCorpusGrammars yields each micro corpus's TreeRePair grammar
// fresh and after an update workload has degraded it (isolation unfolds,
// stranded-rule GC — the states the serving engine actually probes).
func degradedCorpusGrammars(t *testing.T, fn func(name string, g *grammar.Grammar)) {
	t.Helper()
	for _, short := range []string{"EW", "XM", "TB"} {
		c, ok := datasets.ByShort(short)
		if !ok {
			t.Fatalf("unknown corpus %q", short)
		}
		u := c.Generate(0.05, 1)
		doc := u.Binary()
		g, _ := treerepair.Compress(doc, treerepair.Options{})
		fn(short+"/fresh", g)

		seq, err := workload.Updates(u, 60, 90, 3)
		if err != nil {
			t.Fatalf("%s workload: %v", short, err)
		}
		gd, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
		if err := update.ApplyAll(gd, seq.Ops); err != nil {
			t.Fatalf("%s degrade: %v", short, err)
		}
		fn(short+"/degraded", gd)
	}
}

func TestDenseTablesMatchMapReference(t *testing.T) {
	degradedCorpusGrammars(t, func(name string, g *grammar.Grammar) {
		dense := g.RefCounts()
		if len(dense) != int(g.MaxRuleID()) {
			t.Fatalf("%s: RefCounts length %d, MaxRuleID %d", name, len(dense), g.MaxRuleID())
		}
		for id, want := range refCountsRef(g) {
			if dense[id] != want {
				t.Fatalf("%s: refs(N%d) dense %d, reference %d", name, id, dense[id], want)
			}
		}

		usage, err := g.Usage()
		if err != nil {
			t.Fatal(err)
		}
		for id, want := range usageRef(t, g) {
			if usage[id] != want {
				t.Fatalf("%s: usage(N%d) dense %v, reference %v", name, id, usage[id], want)
			}
		}

		sizes, err := g.ValSizes()
		if err != nil {
			t.Fatal(err)
		}
		ref := valSizesRef(t, g)
		seen := 0
		sizes.Range(func(id int32, sv *grammar.SizeVectors) bool {
			seen++
			want := ref[id]
			if want == nil {
				t.Fatalf("%s: SizeTable has vector for dead rule N%d", name, id)
			}
			if sv.Total != want.Total || len(sv.Seg) != len(want.Seg) {
				t.Fatalf("%s: sizes(N%d) dense %+v, reference %+v", name, id, sv, want)
			}
			for i := range sv.Seg {
				if sv.Seg[i] != want.Seg[i] {
					t.Fatalf("%s: sizes(N%d) seg %d: dense %d, reference %d",
						name, id, i, sv.Seg[i], want.Seg[i])
				}
			}
			return true
		})
		if seen != len(ref) {
			t.Fatalf("%s: SizeTable has %d vectors, reference %d", name, seen, len(ref))
		}
	})
}

// TestSizeTableMissSemantics pins the map-miss contract dense callers
// rely on: out-of-range and dead IDs read as nil / zero, never panic.
func TestSizeTableMissSemantics(t *testing.T) {
	st := xmltree.NewSymbolTable()
	g := grammar.New(st)
	sizes, err := g.ValSizes()
	if err != nil {
		t.Fatal(err)
	}
	if sizes.Get(-1) != nil || sizes.Get(g.MaxRuleID()) != nil || sizes.Get(math.MaxInt32) != nil {
		t.Fatal("out-of-range Get must return nil")
	}
	sizes.Drop(math.MaxInt32) // must not panic
	sizes.Set(5, &grammar.SizeVectors{Total: 7})
	if got := sizes.Get(5); got == nil || got.Total != 7 {
		t.Fatal("Set past the current length must grow the table")
	}
	refs := g.RefCounts()
	if len(refs) != int(g.MaxRuleID()) {
		t.Fatalf("RefCounts sized %d, want %d", len(refs), g.MaxRuleID())
	}
}

// TestDenseSizeLookupAllocs guards the dense size-vector lookup path: a
// warm-table probe (SizeTable.Get) and the early-abort subtree measure
// that isolation runs per descent step must not allocate.
func TestDenseSizeLookupAllocs(t *testing.T) {
	c, _ := datasets.ByShort("EW")
	doc := c.Generate(0.05, 1).Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	sizes, err := g.ValSizes()
	if err != nil {
		t.Fatal(err)
	}
	ids := g.RuleIDs()
	var sink int64
	if avg := testing.AllocsPerRun(200, func() {
		for _, id := range ids {
			if sv := sizes.Get(id); sv != nil {
				sink += sv.Total
			}
		}
	}); avg != 0 {
		t.Fatalf("SizeTable.Get allocates %.1f per run, want 0", avg)
	}
	rhs := g.StartRule().RHS
	if avg := testing.AllocsPerRun(200, func() {
		for _, child := range rhs.Children {
			n, _ := grammar.SubtreeValSizeWithin(child, sizes, 1<<40)
			sink += n
		}
	}); avg != 0 {
		t.Fatalf("SubtreeValSizeWithin allocates %.1f per run, want 0", avg)
	}
	_ = sink
}
