package grammar

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/xmltree"
)

// uv appends a uvarint to a hand-crafted malicious stream.
func uv(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.Write(tmp[:n])
}

// header writes magic, version, a one-symbol table ("a"/rank 2), start 0.
func header(b *bytes.Buffer) {
	b.WriteString(magic)
	uv(b, 1) // version
	uv(b, 1) // one symbol
	uv(b, 1)
	b.WriteString("a")
	uv(b, 2) // rank 2
	uv(b, 0) // start rule ID
}

// TestDecodeHugeChildCount: a nonterminal node declaring 2^40 children
// must fail against the remaining node budget instead of allocating a
// multi-GB children slice.
func TestDecodeHugeChildCount(t *testing.T) {
	var b bytes.Buffer
	header(&b)
	uv(&b, 1) // one rule
	uv(&b, 0) // rule ID
	uv(&b, 0) // rank
	uv(&b, 3) // body size
	uv(&b, 1) // tag: nonterminal
	uv(&b, 5) // callee ID
	uv(&b, 1<<40)
	if _, err := Decode(&b); err == nil {
		t.Fatal("huge child count must fail")
	}
}

// TestDecodeHugeBodySize: a rule body declaring more nodes than
// maxBodyNodes must be rejected before any decoding work happens.
func TestDecodeHugeBodySize(t *testing.T) {
	var b bytes.Buffer
	header(&b)
	uv(&b, 1)
	uv(&b, 0)
	uv(&b, 0)
	uv(&b, uint64(maxBodyNodes)+1)
	if _, err := Decode(&b); err == nil {
		t.Fatal("huge body size must fail")
	}
}

// TestDecodeChildCountExceedsBudget: child counts are clamped against the
// remaining declared body budget, so a lying count cannot outgrow the
// stream that backs it.
func TestDecodeChildCountExceedsBudget(t *testing.T) {
	var b bytes.Buffer
	header(&b)
	uv(&b, 1)
	uv(&b, 0)
	uv(&b, 0)
	uv(&b, 2) // body size 2: after the root, only 1 node remains
	uv(&b, 1) // nonterminal
	uv(&b, 5)
	uv(&b, 2) // claims 2 children, budget has 1
	if _, err := Decode(&b); err == nil {
		t.Fatal("child count beyond budget must fail")
	}
}

// TestDecodeIDWraparound: rule IDs and the start ID above maxRuleID
// (they size dense rule-ID-indexed slices and nextNT), and nonterminal
// IDs above MaxInt32 (int32 wraparound would alias rules), must all be
// rejected before Validate ever sees them.
func TestDecodeIDWraparound(t *testing.T) {
	big := uint64(math.MaxInt32) + 2

	var start bytes.Buffer
	start.WriteString(magic)
	uv(&start, 1)
	uv(&start, 0) // empty symbol table
	uv(&start, big)
	if _, err := Decode(&start); err == nil {
		t.Fatal("huge start ID must fail")
	}

	var rule bytes.Buffer
	header(&rule)
	uv(&rule, 1)
	uv(&rule, big) // rule ID
	if _, err := Decode(&rule); err == nil {
		t.Fatal("huge rule ID must fail")
	}

	var nt bytes.Buffer
	header(&nt)
	uv(&nt, 1)
	uv(&nt, 0)
	uv(&nt, 0)
	uv(&nt, 2)
	uv(&nt, 1)   // nonterminal
	uv(&nt, big) // callee ID wraps int32
	uv(&nt, 0)
	if _, err := Decode(&nt); err == nil {
		t.Fatal("huge nonterminal ID must fail")
	}

	// Boundary rule IDs just under MaxInt32 would still make nextNT
	// overflow int32 (ID MaxInt32) or size a multi-GB dense refcount
	// slice (ID MaxInt32-100); the maxRuleID cap rejects both.
	for _, boundary := range []uint64{math.MaxInt32, math.MaxInt32 - 100, maxRuleID + 1} {
		var rb bytes.Buffer
		header(&rb)
		uv(&rb, 1)
		uv(&rb, boundary) // rule ID
		uv(&rb, 0)
		uv(&rb, 1)
		uv(&rb, 0) // terminal ⊥
		uv(&rb, 0)
		if _, err := Decode(&rb); err == nil {
			t.Fatalf("boundary rule ID %d must fail", boundary)
		}
	}
}

// TestDecodeBadRankAndParam covers the remaining narrowing checks: symbol
// ranks sizing terminal children, rule ranks against body size, parameter
// indices, and duplicate rule IDs.
func TestDecodeBadRankAndParam(t *testing.T) {
	var sym bytes.Buffer
	sym.WriteString(magic)
	uv(&sym, 1)
	uv(&sym, 1)
	uv(&sym, 1)
	sym.WriteString("a")
	uv(&sym, 1<<40) // absurd terminal rank
	if _, err := Decode(&sym); err == nil {
		t.Fatal("huge symbol rank must fail")
	}

	var rank bytes.Buffer
	header(&rank)
	uv(&rank, 1)
	uv(&rank, 0)
	uv(&rank, 9) // rank 9 on a 1-node body
	uv(&rank, 1)
	if _, err := Decode(&rank); err == nil {
		t.Fatal("rank beyond body size must fail")
	}

	var par bytes.Buffer
	header(&par)
	uv(&par, 1)
	uv(&par, 0)
	uv(&par, 0)
	uv(&par, 1)
	uv(&par, 2) // parameter
	uv(&par, 0) // index 0 is invalid (1-based)
	if _, err := Decode(&par); err == nil {
		t.Fatal("parameter index 0 must fail")
	}

	var dup bytes.Buffer
	header(&dup)
	uv(&dup, 2)
	for i := 0; i < 2; i++ { // the same rule twice
		uv(&dup, 0) // ID 0 both times
		uv(&dup, 0)
		uv(&dup, 1)
		uv(&dup, 0) // terminal ⊥
		uv(&dup, 0)
	}
	if _, err := Decode(&dup); err == nil {
		t.Fatal("duplicate rule ID must fail")
	}
}

// TestDecodeDepthBound: a chain-of-single-children body deeper than
// maxBodyDepth must fail with an error instead of exhausting the stack
// (readNode and every later recursive pass recurse per level).
func TestDecodeDepthBound(t *testing.T) {
	depth := maxBodyDepth + 10
	var b bytes.Buffer
	header(&b)
	uv(&b, 1)
	uv(&b, 0)
	uv(&b, 0)
	uv(&b, uint64(depth)+1)
	for i := 0; i < depth; i++ {
		uv(&b, 1) // nonterminal
		uv(&b, 1)
		uv(&b, 1) // one child each
	}
	uv(&b, 0) // terminal ⊥ closing the chain
	uv(&b, 0)
	if _, err := Decode(&b); err == nil {
		t.Fatal("over-deep body must fail")
	}
}

// TestDecodeDanglingStart: a stream whose start ID names no rule must
// fail in Decode/Validate, not nil-deref on first use of the grammar.
func TestDecodeDanglingStart(t *testing.T) {
	var b bytes.Buffer
	b.WriteString(magic)
	uv(&b, 1)
	uv(&b, 0) // empty symbol table
	uv(&b, 7) // start ID with no matching rule
	uv(&b, 1) // one rule...
	uv(&b, 0) // ...with ID 0
	uv(&b, 0)
	uv(&b, 1)
	uv(&b, 0) // terminal ⊥
	uv(&b, 0)
	g, err := Decode(&b)
	if err == nil {
		// Must not panic either way; reaching ValNodeCount would.
		if _, nerr := g.ValNodeCount(); nerr == nil {
			t.Fatal("dangling start rule must fail to decode")
		}
		t.Fatal("dangling start rule must fail to decode")
	}
}

// TestPruneRefcountsAfterDelete: a rule referenced only by an unreachable
// rule must be recognized as dead in the same sweep — the old code read
// stale refcounts after DeleteRule.
func TestPruneRefcountsAfterDelete(t *testing.T) {
	st := xmltree.NewSymbolTable()
	f := st.InternElement("f")
	a := st.Intern("a", 0)
	g := New(st)
	// C is referenced twice by the dead rule B and once by S. B itself is
	// unreferenced. After deleting B, C's true refcount is 1 (not 3), so
	// the same Prune sweep must inline it away.
	C := g.NewRule(0, xmltree.New(xmltree.Term(a)))
	g.NewRule(0, xmltree.New(xmltree.Term(f),
		xmltree.New(xmltree.Nonterm(C.ID)), xmltree.New(xmltree.Nonterm(C.ID))))
	g.StartRule().RHS = xmltree.New(xmltree.Term(f),
		xmltree.New(xmltree.Nonterm(C.ID)), xmltree.NewBottom())
	want, _ := g.Expand(0)

	removed := g.Prune()
	if removed < 2 {
		t.Fatalf("Prune removed %d rules, want at least B and C", removed)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid after prune: %v\n%s", err, g)
	}
	if g.NumRules() != 1 {
		t.Fatalf("only the start rule should survive, have %d", g.NumRules())
	}
	got, _ := g.Expand(0)
	if !xmltree.Equal(got, want) {
		t.Fatal("val changed by prune")
	}
}

// TestPruneRefcountsStayExact cross-checks the incrementally maintained
// dense refcounts against a fresh recount after pruning a larger grammar.
func TestPruneRefcountsStayExact(t *testing.T) {
	g, _, _ := paperGrammar(t)
	g.Prune()
	// Independent map-based recount as the reference for the dense slice.
	fresh := make(map[int32]int)
	g.Rules(func(r *Rule) {
		fresh[r.ID] += 0
		r.RHS.Walk(func(v *xmltree.Node) bool {
			if v.Label.Kind == xmltree.Nonterminal {
				fresh[v.Label.ID]++
			}
			return true
		})
	})
	dense := g.RefCounts()
	for id, want := range fresh {
		if dense[id] != want {
			t.Fatalf("rule N%d: dense %d, fresh %d", id, dense[id], want)
		}
	}
}

// TestRuleValSizesMatchesFull: refreshing a single rule from cached
// callee vectors must agree with a full ValSizes pass.
func TestRuleValSizesMatchesFull(t *testing.T) {
	g, _, _ := paperGrammar(t)
	sizes, err := g.ValSizes()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range g.RuleIDs() {
		sv, err := g.RuleValSizes(id, sizes)
		if err != nil {
			t.Fatal(err)
		}
		want := sizes.Get(id)
		if sv.Total != want.Total || len(sv.Seg) != len(want.Seg) {
			t.Fatalf("rule N%d: refreshed vector diverges", id)
		}
		for i := range sv.Seg {
			if sv.Seg[i] != want.Seg[i] {
				t.Fatalf("rule N%d seg %d: %d != %d", id, i, sv.Seg[i], want.Seg[i])
			}
		}
	}
}
