// FuzzDecode locks in the decoder hardening of the binary grammar
// format: Decode runs on untrusted input, so no byte stream — however
// corrupt — may panic, exhaust memory, or produce a grammar that fails
// its own invariants. Any grammar that does decode must round-trip
// through Encode byte-exactly and survive the cheap analyses.
//
// External test package: the seed corpus is built with the real
// compressors on the same corpus constructions the parity harness
// (testdata/parity.json) pins, which would be an import cycle from
// inside package grammar.
package grammar_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/datasets"
	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/workload"
)

// fuzzUv appends a uvarint to a hand-crafted seed stream.
func fuzzUv(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.Write(tmp[:n])
}

func FuzzDecode(f *testing.F) {
	addGrammar := func(g *grammar.Grammar) {
		var b bytes.Buffer
		if err := grammar.Encode(&b, g); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}

	// Real encodings: every parity corpus at tiny scale, compressed with
	// TreeRePair, plus an update-degraded variant — the same shapes the
	// parity harness pins, so the fuzzer starts from the streams the
	// repo actually produces.
	for _, c := range datasets.Corpora() {
		u := c.Generate(0.01, 20160516)
		doc := u.Binary()
		g, _ := treerepair.Compress(doc, treerepair.Options{})
		addGrammar(g)
		degraded := g.Clone()
		if err := update.ApplyAll(degraded, workload.Renames(doc, 10, 7)); err == nil {
			addGrammar(degraded)
		}
	}

	// Hostile shapes from the hardening tests: lying child counts, rank
	// beyond body size, deep nesting prefixes, truncations.
	var hostile bytes.Buffer
	hostile.WriteString("SLTG")
	fuzzUv(&hostile, 1) // version
	fuzzUv(&hostile, 1) // one symbol
	fuzzUv(&hostile, 1)
	hostile.WriteString("a")
	fuzzUv(&hostile, 2) // rank 2
	fuzzUv(&hostile, 0) // start ID
	fuzzUv(&hostile, 1) // one rule
	fuzzUv(&hostile, 0)
	fuzzUv(&hostile, 0)
	fuzzUv(&hostile, 3)
	fuzzUv(&hostile, 1)
	fuzzUv(&hostile, 5)
	fuzzUv(&hostile, 1<<40)
	f.Add(hostile.Bytes())
	f.Add([]byte("SLTG"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			// The hardening bounds are about per-byte leverage, not about
			// surviving arbitrarily large genuine inputs; keep iterations
			// fast.
			return
		}
		g, err := grammar.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decode validates internally; a grammar that slipped through with
		// broken invariants is exactly the crasher class this target
		// exists to catch.
		if err := g.Validate(); err != nil {
			t.Fatalf("decoded grammar fails validation: %v", err)
		}
		var b bytes.Buffer
		if err := grammar.Encode(&b, g); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		g2, err := grammar.Decode(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		var b2 bytes.Buffer
		if err := grammar.Encode(&b2, g2); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(b.Bytes(), b2.Bytes()) {
			t.Fatal("Encode/Decode round-trip changed the grammar")
		}
		// The cheap analyses must be total on any valid grammar:
		// saturation is reported through errors, never through panics or
		// bogus values.
		_ = g.Size()
		if n, err := g.ValNodeCount(); err == nil && n < 1 {
			t.Fatalf("derived tree has %d nodes", n)
		}
	})
}
