package grammar

import (
	"testing"

	"repro/internal/xmltree"
)

// chainGrammar builds S → f(A(⊥), ⊥), A(y) → g(B(y), ⊥), B(y) → h(y, ⊥)
// over rank-2 terminals (binary-tree style).
func chainGrammar(t *testing.T) (*Grammar, int32, int32) {
	t.Helper()
	st := xmltree.NewSymbolTable()
	f := st.InternElement("f")
	gg := st.InternElement("g")
	h := st.InternElement("h")
	g := New(st)
	B := g.NewRule(1, xmltree.New(xmltree.Term(h), xmltree.New(xmltree.Param(1)), xmltree.NewBottom()))
	A := g.NewRule(1, xmltree.New(xmltree.Term(gg),
		xmltree.New(xmltree.Nonterm(B.ID), xmltree.New(xmltree.Param(1))), xmltree.NewBottom()))
	g.StartRule().RHS = xmltree.New(xmltree.Term(f),
		xmltree.New(xmltree.Nonterm(A.ID), xmltree.NewBottom()), xmltree.NewBottom())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, A.ID, B.ID
}

func TestInlineEverywhere(t *testing.T) {
	g, A, B := chainGrammar(t)
	want, _ := g.Expand(0)
	if err := g.InlineEverywhere(B); err != nil {
		t.Fatal(err)
	}
	if g.Rule(B) != nil {
		t.Fatal("B must be deleted")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid after inline: %v\n%s", err, g)
	}
	got, _ := g.Expand(0)
	if !xmltree.Equal(got, want) {
		t.Fatal("val changed")
	}
	// A's body must now contain h directly.
	if g.Rule(A).RHS.CountLabel(xmltree.Term(g.Syms.Intern("h", 2))) != 1 {
		t.Fatalf("h not inlined into A: %s", g.Rule(A).RHS.Format(g.Syms))
	}
}

func TestInlineEverywhereMultipleSites(t *testing.T) {
	st := xmltree.NewSymbolTable()
	f := st.InternElement("f")
	a := st.Intern("a", 0)
	g := New(st)
	A := g.NewRule(0, xmltree.New(xmltree.Term(a)))
	g.StartRule().RHS = xmltree.New(xmltree.Term(f),
		xmltree.New(xmltree.Nonterm(A.ID)), xmltree.New(xmltree.Nonterm(A.ID)))
	if err := g.InlineEverywhere(A.ID); err != nil {
		t.Fatal(err)
	}
	if got := g.StartRule().RHS.Format(g.Syms); got != "f(a,a)" {
		t.Fatalf("got %s", got)
	}
}

func TestInlineEverywhereNestedCalls(t *testing.T) {
	// A rule called with arguments that themselves call the same rule:
	// B(y) appears as B(B(⊥)) — inlining must rewrite inner calls first.
	st := xmltree.NewSymbolTable()
	f := st.InternElement("f")
	h := st.Intern("h", 1)
	g := New(st)
	B := g.NewRule(1, xmltree.New(xmltree.Term(h), xmltree.New(xmltree.Param(1))))
	g.StartRule().RHS = xmltree.New(xmltree.Term(f),
		xmltree.New(xmltree.Nonterm(B.ID),
			xmltree.New(xmltree.Nonterm(B.ID), xmltree.NewBottom())),
		xmltree.NewBottom())
	want, _ := g.Expand(0)
	if err := g.InlineEverywhere(B.ID); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	got, _ := g.Expand(0)
	if !xmltree.Equal(got, want) {
		t.Fatalf("val changed: %s vs %s", got.Format(st), want.Format(st))
	}
}

func TestInlineEverywhereErrors(t *testing.T) {
	g, _, _ := chainGrammar(t)
	if err := g.InlineEverywhere(g.Start); err == nil {
		t.Fatal("inlining the start rule must fail")
	}
	if err := g.InlineEverywhere(999); err == nil {
		t.Fatal("inlining a missing rule must fail")
	}
}

func TestSav(t *testing.T) {
	// sav(R) = refs·(size − rank) − size. The paper's measure: a rank-1
	// rule with 3 edges referenced 4 times saves 4·2−3 = 5.
	if got := Sav(4, 3, 1); got != 5 {
		t.Fatalf("Sav = %d, want 5", got)
	}
	// A rule referenced once is never productive: 1·(s−r)−s = −r ≤ 0.
	if got := Sav(1, 5, 2); got != -2 {
		t.Fatalf("Sav = %d, want -2", got)
	}
}

func TestPruneRemovesSingleRefRules(t *testing.T) {
	g, A, B := chainGrammar(t)
	want, _ := g.Expand(0)
	removed := g.Prune()
	if removed != 2 {
		t.Fatalf("removed %d rules, want 2 (A and B each have one ref)", removed)
	}
	if g.Rule(A) != nil || g.Rule(B) != nil {
		t.Fatal("single-ref rules must be inlined away")
	}
	got, _ := g.Expand(0)
	if !xmltree.Equal(got, want) {
		t.Fatal("val changed by pruning")
	}
}

func TestPruneKeepsProductiveRules(t *testing.T) {
	// A rank-0 rule with a large body and many references must survive.
	st := xmltree.NewSymbolTable()
	f := st.InternElement("f")
	a := st.Intern("a", 1)
	z := st.Intern("z", 0)
	g := New(st)
	body := xmltree.New(xmltree.Term(z))
	for i := 0; i < 5; i++ {
		body = xmltree.New(xmltree.Term(a), body)
	}
	A := g.NewRule(0, body) // 5 edges, rank 0
	g.StartRule().RHS = xmltree.New(xmltree.Term(f),
		xmltree.New(xmltree.Nonterm(A.ID)), xmltree.New(xmltree.Nonterm(A.ID)))
	sizeBefore := g.Size()
	if n := g.Prune(); n != 0 {
		t.Fatalf("pruned %d rules from an optimal grammar", n)
	}
	if g.Size() != sizeBefore {
		t.Fatal("prune changed an optimal grammar")
	}
}

func TestPruneRemovesUnproductiveRules(t *testing.T) {
	// A rank-1 rule with a 2-edge body called twice: sav = 2·(2−1)−2 = 0,
	// kept. With a 1-edge body... use refs=2, edges=3, rank=2:
	// sav = 2·1−3 = −1 → inlined away.
	st := xmltree.NewSymbolTable()
	f := st.InternElement("f")
	a := st.Intern("a", 2)
	z := st.Intern("z", 0)
	g := New(st)
	A := g.NewRule(2, xmltree.New(xmltree.Term(a),
		xmltree.New(xmltree.Param(1)), xmltree.New(xmltree.Param(2))))
	zn := func() *xmltree.Node { return xmltree.New(xmltree.Term(z)) }
	g.StartRule().RHS = xmltree.New(xmltree.Term(f),
		xmltree.New(xmltree.Nonterm(A.ID), zn(), zn()),
		xmltree.New(xmltree.Nonterm(A.ID), zn(), zn()))
	want, _ := g.Expand(0)
	if g.Prune() != 1 {
		t.Fatal("unproductive rule must be pruned")
	}
	if g.Rule(A.ID) != nil {
		t.Fatal("A must be gone")
	}
	got, _ := g.Expand(0)
	if !xmltree.Equal(got, want) {
		t.Fatal("val changed")
	}
}

func TestPruneDropsUnreachable(t *testing.T) {
	g, _, _ := chainGrammar(t)
	g.NewRule(0, xmltree.NewBottom()) // refs = 0
	before := g.NumRules()
	if g.Prune() == 0 {
		t.Fatal("unreachable rule must be removed")
	}
	if g.NumRules() >= before {
		t.Fatal("rule count must drop")
	}
}
