package update

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/xmltree"
)

// Binary op codec — the WAL's record payload format. Update operations
// are tiny (Kind/Pos/Label/Frag), so the encoding is a plain varint
// stream:
//
//	op     := kind uvarint | pos uvarint | body
//	rename := label string
//	insert := frag
//	delete := (empty)
//	frag   := nodeCount uvarint | node*          (preorder)
//	node   := label string | childCount uvarint
//	string := len uvarint | bytes
//
// A decoded stream is untrusted input (a WAL on disk can be torn or
// hostile), so every count that sizes an allocation is bounded before
// it is trusted: label lengths, the fragment's declared node count,
// and per-node child counts against the remaining node budget. The
// fragment decoder is iterative — a deeply nested fragment can never
// exhaust the stack.
const (
	// MaxOpLabel bounds label byte lengths (matches the grammar
	// decoder's string cap).
	MaxOpLabel = 1 << 20
	// MaxFragNodes bounds one insert fragment's element count. A real
	// fragment is a handful of nodes; a WAL record is CRC-framed, so a
	// count near this bound is hostile input, not data.
	MaxFragNodes = 1 << 22
	// maxChildPrealloc caps the children capacity allocated before the
	// children actually decode, so a lying child count cannot demand
	// more memory than the bytes backing it.
	maxChildPrealloc = 1 << 10
	// MaxBatchOps bounds one encoded batch's declared op count — shared
	// by the WAL record codec and the network frame codec, so a record
	// accepted from either transport replays through the other.
	MaxBatchOps = 1 << 20
	// maxOpsPrealloc caps the op-slice capacity allocated before the ops
	// actually decode (same rationale as maxChildPrealloc).
	maxOpsPrealloc = 1 << 10
)

// AppendOp appends the binary encoding of op to dst and returns the
// extended slice. Ops with a negative position, a rename label past
// MaxOpLabel, or an insert without (or with an oversized) fragment are
// rejected — they could never be applied, so they must not be logged.
func AppendOp(dst []byte, op Op) ([]byte, error) {
	if op.Pos < 0 {
		return dst, fmt.Errorf("update: encode: negative position %d", op.Pos)
	}
	dst = binary.AppendUvarint(dst, uint64(op.Kind))
	dst = binary.AppendUvarint(dst, uint64(op.Pos))
	switch op.Kind {
	case Rename:
		if len(op.Label) > MaxOpLabel {
			return dst, fmt.Errorf("update: encode: label of %d bytes", len(op.Label))
		}
		dst = appendString(dst, op.Label)
	case Insert:
		if op.Frag == nil {
			return dst, fmt.Errorf("update: encode: insert without fragment")
		}
		n := op.Frag.Nodes()
		if n > MaxFragNodes {
			return dst, fmt.Errorf("update: encode: fragment of %d nodes", n)
		}
		dst = binary.AppendUvarint(dst, uint64(n))
		var err error
		dst, err = appendFrag(dst, op.Frag)
		if err != nil {
			return dst, err
		}
	case Delete:
	default:
		return dst, fmt.Errorf("update: encode: unknown op kind %v", op.Kind)
	}
	return dst, nil
}

func appendFrag(dst []byte, u *xmltree.Unranked) ([]byte, error) {
	if len(u.Label) > MaxOpLabel {
		return dst, fmt.Errorf("update: encode: label of %d bytes", len(u.Label))
	}
	dst = appendString(dst, u.Label)
	dst = binary.AppendUvarint(dst, uint64(len(u.Children)))
	for _, c := range u.Children {
		var err error
		dst, err = appendFrag(dst, c)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeOp decodes one op from the front of data and returns it with
// the number of bytes consumed. The input is untrusted: any
// malformation — a truncated varint, an unknown kind, a count past its
// bound, a fragment whose shape contradicts its declared node count —
// is an error, never a panic or an oversized allocation.
func DecodeOp(data []byte) (Op, int, error) {
	var op Op
	n := 0
	kind, err := readUvarint(data, &n)
	if err != nil {
		return op, n, fmt.Errorf("update: decode kind: %w", err)
	}
	pos, err := readUvarint(data, &n)
	if err != nil {
		return op, n, fmt.Errorf("update: decode pos: %w", err)
	}
	if pos > math.MaxInt64 {
		return op, n, fmt.Errorf("update: decode: position %d out of range", pos)
	}
	op.Pos = int64(pos)
	switch Kind(kind) {
	case Rename:
		op.Kind = Rename
		op.Label, err = readString(data, &n)
		if err != nil {
			return op, n, fmt.Errorf("update: decode label: %w", err)
		}
	case Insert:
		op.Kind = Insert
		op.Frag, err = readFrag(data, &n)
		if err != nil {
			return op, n, fmt.Errorf("update: decode fragment: %w", err)
		}
	case Delete:
		op.Kind = Delete
	default:
		return op, n, fmt.Errorf("update: decode: unknown op kind %d", kind)
	}
	return op, n, nil
}

// AppendOps appends a count-prefixed op sequence to dst: the batch body
// of a WAL record and of a network apply frame. Empty batches and
// batches past MaxBatchOps are rejected — they could never decode.
func AppendOps(dst []byte, ops []Op) ([]byte, error) {
	if len(ops) == 0 {
		return dst, fmt.Errorf("update: encode: empty op batch")
	}
	if len(ops) > MaxBatchOps {
		return dst, fmt.Errorf("update: encode: batch of %d ops exceeds %d", len(ops), MaxBatchOps)
	}
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for i := range ops {
		var err error
		dst, err = AppendOp(dst, ops[i])
		if err != nil {
			return dst, fmt.Errorf("update: encode: batch op %d: %w", i, err)
		}
	}
	return dst, nil
}

// DecodeOps decodes a count-prefixed op sequence from the front of data
// and returns it with the number of bytes consumed. Untrusted input:
// the declared count is bounded before it sizes anything, and every op
// decodes through DecodeOp's own caps.
func DecodeOps(data []byte) ([]Op, int, error) {
	n := 0
	count, err := readUvarint(data, &n)
	if err != nil {
		return nil, n, fmt.Errorf("update: decode batch op count: %w", err)
	}
	if count == 0 || count > MaxBatchOps {
		return nil, n, fmt.Errorf("update: decode: batch op count %d out of range", count)
	}
	ops := make([]Op, 0, min(int(count), maxOpsPrealloc))
	for i := uint64(0); i < count; i++ {
		op, used, err := DecodeOp(data[n:])
		if err != nil {
			return nil, n, fmt.Errorf("update: decode: batch op %d: %w", i, err)
		}
		n += used
		ops = append(ops, op)
	}
	return ops, n, nil
}

// readFrag decodes a fragment iteratively (an explicit stack instead of
// recursion, so hostile nesting depth costs memory it pays for in input
// bytes, never goroutine stack).
func readFrag(data []byte, n *int) (*xmltree.Unranked, error) {
	declared, err := readUvarint(data, n)
	if err != nil {
		return nil, err
	}
	if declared == 0 || declared > MaxFragNodes {
		return nil, fmt.Errorf("fragment node count %d out of range", declared)
	}
	budget := int64(declared)
	readNode := func() (*xmltree.Unranked, int, error) {
		if budget <= 0 {
			return nil, 0, fmt.Errorf("fragment exceeds declared %d nodes", declared)
		}
		budget--
		label, err := readString(data, n)
		if err != nil {
			return nil, 0, err
		}
		kids, err := readUvarint(data, n)
		if err != nil {
			return nil, 0, err
		}
		// Compare unsigned: a hostile varint can exceed MaxInt64, and
		// converting it to int64 first would wrap negative and pass.
		if kids > uint64(budget) {
			return nil, 0, fmt.Errorf("child count %d exceeds remaining node budget %d", kids, budget)
		}
		u := &xmltree.Unranked{Label: label}
		if kids > 0 {
			u.Children = make([]*xmltree.Unranked, 0, min(int(kids), maxChildPrealloc))
		}
		return u, int(kids), nil
	}
	root, kids, err := readNode()
	if err != nil {
		return nil, err
	}
	// stack holds nodes still owed children; want the number owed.
	type pending struct {
		node *xmltree.Unranked
		want int
	}
	stack := []pending{{root, kids}}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.want == 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		top.want--
		child, kids, err := readNode()
		if err != nil {
			return nil, err
		}
		top.node.Children = append(top.node.Children, child)
		if kids > 0 {
			stack = append(stack, pending{child, kids})
		}
	}
	if budget != 0 {
		return nil, fmt.Errorf("fragment declared %d nodes, encoded %d", declared, int64(declared)-budget)
	}
	return root, nil
}

func readUvarint(data []byte, n *int) (uint64, error) {
	v, w := binary.Uvarint(data[*n:])
	if w <= 0 {
		return 0, fmt.Errorf("truncated varint at offset %d", *n)
	}
	*n += w
	return v, nil
}

func readString(data []byte, n *int) (string, error) {
	l, err := readUvarint(data, n)
	if err != nil {
		return "", err
	}
	if l > MaxOpLabel {
		return "", fmt.Errorf("string of %d bytes at offset %d", l, *n)
	}
	if uint64(len(data)-*n) < l {
		return "", fmt.Errorf("truncated string at offset %d", *n)
	}
	s := string(data[*n : *n+int(l)])
	*n += int(l)
	return s, nil
}
