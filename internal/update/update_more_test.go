package update

import (
	"strings"
	"testing"

	"repro/internal/treerepair"
	"repro/internal/xmltree"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Rename: "rename", Insert: "insert", Delete: "delete", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}

func TestApplyTreeErrors(t *testing.T) {
	u := xmltree.NewUnranked("r", xmltree.NewUnranked("a"))
	doc := u.Binary()
	if _, err := ApplyTree(doc.Syms, doc.Root, Op{Kind: Rename, Pos: 99, Label: "x"}); err == nil {
		t.Fatal("out of range must fail")
	}
	if _, err := ApplyTree(doc.Syms, doc.Root, Op{Kind: Rename, Pos: 2, Label: "x"}); err == nil {
		t.Fatal("rename ⊥ must fail")
	}
	if _, err := ApplyTree(doc.Syms, doc.Root, Op{Kind: Delete, Pos: 2}); err == nil {
		t.Fatal("delete ⊥ must fail")
	}
	if _, err := ApplyTree(doc.Syms, doc.Root, Op{Kind: Insert, Pos: 0}); err == nil {
		t.Fatal("insert without frag must fail")
	}
	if _, err := ApplyTree(doc.Syms, doc.Root, Op{Kind: Kind(7), Pos: 0}); err == nil {
		t.Fatal("unknown kind must fail")
	}
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	if err := Apply(g, Op{Kind: Kind(7), Pos: 0}); err == nil {
		t.Fatal("unknown kind must fail on grammars too")
	}
}

func TestApplyTreeAllErrorPosition(t *testing.T) {
	u := xmltree.NewUnranked("r", xmltree.NewUnranked("a"))
	doc := u.Binary()
	ops := []Op{
		{Kind: Rename, Pos: 1, Label: "b"},
		{Kind: Delete, Pos: 99},
	}
	_, err := ApplyTreeAll(doc.Syms, doc.Root, ops)
	if err == nil || !strings.Contains(err.Error(), "op 1") {
		t.Fatalf("error must name the failing op: %v", err)
	}
}

// TestDeleteRoot deletes the document root: legal on the binary tree
// (replaced by its next-sibling ⊥) and on the grammar.
func TestDeleteRootLeavesBottom(t *testing.T) {
	u := xmltree.NewUnranked("r", xmltree.NewUnranked("a"))
	doc := u.Binary()
	root, err := ApplyTree(doc.Syms, doc.Root.Copy(), Op{Kind: Delete, Pos: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !root.Label.IsBottom() {
		t.Fatalf("deleting the root must leave ⊥, got %v", root.Label)
	}
}

// TestInsertGrowsByFragment checks element accounting after inserts.
func TestInsertGrowsByFragment(t *testing.T) {
	u := xmltree.NewUnranked("r", xmltree.NewUnranked("a"), xmltree.NewUnranked("b"))
	doc := u.Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	frag := xmltree.NewUnranked("x", xmltree.NewUnranked("y"), xmltree.NewUnranked("z"))
	if err := Apply(g, Op{Kind: Insert, Pos: 1, Frag: frag}); err != nil {
		t.Fatal(err)
	}
	tree, _ := g.Expand(0)
	if got, want := tree.Size(), doc.Root.Size()+2*frag.Nodes(); got != want {
		t.Fatalf("size after insert = %d, want %d", got, want)
	}
}
