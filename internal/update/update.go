// Package update implements the three atomic update operations of
// Section III / V-C on grammar-compressed binary XML trees — rename,
// insert-before, and delete-subtree — via path isolation, plus reference
// implementations of the same operations on plain trees (used by the
// experiments to validate grammar updates against uncompressed ground
// truth and to replay workloads).
package update

import (
	"fmt"
	"math"

	"repro/internal/grammar"
	"repro/internal/isolate"
	"repro/internal/xmltree"
)

// Op is one atomic update. Pos addresses a node by its preorder index in
// the binary tree val_G(S) at the time the operation is applied.
type Op struct {
	Kind  Kind
	Pos   int64
	Label string            // Rename: the new element label
	Frag  *xmltree.Unranked // Insert: the fragment to insert before Pos
}

// Kind enumerates the update operations.
type Kind uint8

const (
	// Rename relabels the node at Pos (σ ≠ ⊥ and label(u) ≠ ⊥).
	Rename Kind = iota
	// Insert inserts Frag as previous sibling of the node at Pos; if Pos
	// addresses a ⊥ node this is the "insert after the last element /
	// into an empty child list" case.
	Insert
	// Delete removes the subtree rooted at Pos (the element and its
	// descendants; following siblings splice up).
	Delete
)

func (k Kind) String() string {
	switch k {
	case Rename:
		return "rename"
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Cache holds the grammar's size vectors across a sequence of operations.
// Path isolation mutates only the start rule, so every non-start vector
// stays valid from op to op (internal/isolate/isolate.go); only the start
// rule's vector is refreshed after a mutation, in O(|RHS_S|) instead of
// the O(|G|) full ValSizes pass the per-op path pays. The cache must be
// invalidated whenever any non-start rule changes — in practice, after
// recompression (which builds a new grammar anyway).
//
// The memo the cache owns is more than the subtree-size store: it also
// carries the persistent isolation frontier (internal/isolate's spine
// index over the explicit sibling spines of the start RHS). ApplyCached
// keeps that index exact by committing every op's node delta to it
// after the mutation, so repeat isolations seek across long unfolded
// chains instead of walking them.
//
// A Cache serves exactly one grammar; Hits/Misses count warm vs cold
// Sizes calls and feed Store.Stats.
type Cache struct {
	sizes *grammar.SizeTable
	memo  *isolate.Memo // subtree sizes + spine index across ops

	// Naive disables the spine index on memos this cache creates, so
	// descents walk every explicit node. Differential tests pin
	// byte-identical output of the indexed and the naive engine with it;
	// it must be set before the first ApplyCached call.
	Naive bool

	Hits   int64 // Sizes calls served from the warm cache
	Misses int64 // Sizes calls that recomputed all vectors

	// fstats accumulates the frontier counters of retired memos
	// (Invalidate/Install drop the memo with the grammar they served).
	fstats isolate.FrontierStats
}

// FrontierStats returns the cache's cumulative spine-index counters —
// retired memos' history plus the live memo's state.
func (c *Cache) FrontierStats() isolate.FrontierStats {
	return c.fstats.AddCounters(c.memo.Frontier())
}

// retireMemo folds the live memo's counters into the cumulative totals
// before the memo is dropped.
func (c *Cache) retireMemo() {
	if c.memo != nil {
		c.fstats = c.fstats.AddCounters(c.memo.Frontier())
		c.fstats.Entries = 0
		c.fstats.Spines = 0
	}
	c.memo = nil
}

// Sizes returns the cached size-vector table, computing it on first use.
func (c *Cache) Sizes(g *grammar.Grammar) (*grammar.SizeTable, error) {
	if c.sizes != nil {
		c.Hits++
		return c.sizes, nil
	}
	c.Misses++
	sizes, err := g.ValSizes()
	if err != nil {
		return nil, err
	}
	c.sizes = sizes
	return sizes, nil
}

// Peek returns the cached vectors without filling the cache or touching
// the hit counters (nil when cold). It is the read-only accessor for
// callers that hold only a read lock over the owning structure.
func (c *Cache) Peek() *grammar.SizeTable { return c.sizes }

// Invalidate drops the cached vectors and the memo (subtree sizes and
// spine index); the next Sizes call recomputes.
func (c *Cache) Invalidate() {
	c.sizes = nil
	c.retireMemo()
}

// Install hands the cache a precomputed size-vector table for the
// grammar it is about to serve, dropping any previous state. This is the
// cache hand-off of the store's asynchronous recompression swap: the
// background goroutine computes the new grammar's ValSizes off the write
// lock and the swap installs the result here, so readers and writers
// never pay an O(|G|) warm-up pass under the lock. Counted as neither
// hit nor miss — the work happened, just elsewhere.
func (c *Cache) Install(sizes *grammar.SizeTable) {
	c.sizes = sizes
	c.retireMemo()
}

// RefreshStart recomputes only the start rule's vector from the cached
// callee vectors. Call it after an operation changed val_G(S)'s node
// count (insert/delete); renames and isolation unfolding preserve sizes.
func (c *Cache) RefreshStart(g *grammar.Grammar) error {
	if c.sizes == nil {
		return nil
	}
	sv, err := g.RuleValSizes(g.Start, c.sizes)
	if err != nil {
		return err
	}
	c.sizes.Set(g.Start, sv)
	return nil
}

// adjustStartTotal maintains the start rule's cached vector by a known
// node-count delta, avoiding the O(|RHS_S|) re-walk of RefreshStart:
// an insert adds exactly the fragment's binary encoding, a delete
// removes exactly the element and its first-child subtree. The start
// rule has rank 0, so its vector is the single segment Total. Saturated
// states fall back to a full refresh — exactness cannot be recovered
// arithmetically there.
func (c *Cache) adjustStartTotal(g *grammar.Grammar, delta int64) error {
	if c.sizes == nil {
		return nil
	}
	sv := c.sizes.Get(g.Start)
	if sv == nil || len(sv.Seg) != 1 || grammar.Saturated(sv.Total) {
		return c.RefreshStart(g)
	}
	t := sv.Total + delta
	if delta > 0 && t < sv.Total {
		t = math.MaxInt64 // saturate on overflow
	}
	sv.Total = t
	sv.Seg[0] = t
	return nil
}

// DropDeleted removes cache entries whose rule no longer exists (after a
// garbage-collection pass), so a long-lived cache does not accumulate
// vectors for dead rule IDs.
func (c *Cache) DropDeleted(g *grammar.Grammar) {
	if c.sizes == nil {
		return
	}
	c.sizes.Range(func(id int32, _ *grammar.SizeVectors) bool {
		if g.Rule(id) == nil {
			c.sizes.Drop(id)
		}
		return true
	})
}

// ApplyCached performs one operation using the shared size-vector cache
// and refreshes the cache afterwards. Unlike Apply it never garbage
// collects: deletes can strand rules, and the caller decides when to run
// one GarbageCollect for a whole batch (stranded rules are unreachable
// from the start rule, so they are invisible to isolation and queries in
// the meantime). The returned stranded flag reports whether such a pass
// is due.
func ApplyCached(g *grammar.Grammar, op Op, c *Cache) (stranded bool, err error) {
	sizes, err := c.Sizes(g)
	if err != nil {
		return false, err
	}
	if c.memo == nil {
		c.memo = isolate.NewMemo()
		if c.Naive {
			c.memo.DisableIndex()
		}
	}
	pos, err := isolate.IsolateMemo(g, op.Pos, sizes, c.memo)
	if err != nil {
		return false, err
	}
	switch op.Kind {
	case Rename:
		if pos.Node.Label.IsBottom() {
			return false, fmt.Errorf("update: rename of ⊥ node at %d", op.Pos)
		}
		id := g.Syms.InternElement(op.Label)
		pos.Node.Label = xmltree.Term(id)
		g.BumpEpoch()
		// Renames (and the isolation unfolding itself) do not change any
		// val size, so the cached start vector — and every spine weight —
		// stays valid.
		return false, nil
	case Insert:
		if op.Frag == nil {
			return false, fmt.Errorf("update: insert without fragment")
		}
		// insert(t,u,s): the fragment's right-most ⊥ becomes the subtree
		// currently rooted at u (for u = ⊥ this degenerates to t[u/s]).
		// A fragment of k elements becomes a binary tree of 2k+1 nodes
		// whose right-most ⊥ is replaced by the existing subtree: exactly
		// 2k nodes join val_G(S) — which is also the fresh chain head's
		// spine weight (itself plus its first-child subtree).
		fragNodes := int64(op.Frag.Nodes())
		sub := op.Frag.BinaryInto(g.Syms, pos.Node)
		pos.Replace(g, sub)
		g.BumpEpoch()
		c.memo.CommitInsert(pos, sub, 2*fragNodes)
		return false, c.adjustStartTotal(g, 2*fragNodes)
	case Delete:
		if pos.Node.Label.IsBottom() {
			return false, fmt.Errorf("update: delete of ⊥ node at %d", op.Pos)
		}
		// t[u / u.2]: drop the element and its first-child subtree, keep
		// the next-sibling chain — exactly 1 + |val(u.1)| nodes leave.
		removed := grammar.SatAdd(1, grammar.SubtreeValSize(pos.Node.Children[0], sizes))
		c.memo.CommitDelete(pos, removed)
		pos.Replace(g, pos.Node.Children[1])
		g.BumpEpoch()
		if grammar.Saturated(removed) {
			return true, c.RefreshStart(g)
		}
		return true, c.adjustStartTotal(g, -removed)
	}
	return false, fmt.Errorf("update: unknown op kind %v", op.Kind)
}

// Refold runs one bounded incremental re-folding pass (see
// isolate.Memo.Refold): spine segments no op has touched for coldOps
// operations are folded back into fresh rank-1 rules, shrinking the
// explicit start RHS without a recompression. The cache stays warm —
// the new rules' size vectors are known exactly from the folded
// weights — and the derived document is untouched, so no epoch bump.
// Returns the number of rules minted (one per contiguous cold run) and
// the spine entries those folds absorbed.
func (c *Cache) Refold(g *grammar.Grammar, coldOps int64, maxChunks int) (folds, entries int) {
	if c.memo == nil || c.sizes == nil {
		return 0, 0
	}
	return c.memo.Refold(g, c.sizes, isolate.RefoldOptions{MinAge: coldOps, MaxChunks: maxChunks})
}

// Memo exposes the live isolation memo (nil when naive or not yet
// materialized) so a store can hand it to a frozen grammar generation
// at publish time — readers then build the spine view from it lazily,
// keeping the publish itself allocation-free. Callers must pair it
// with the generation protocol described in isolate's view.go: the
// memo is only safe to read after the generation is pinned shared,
// which guarantees the writer's next mutation retires it first.
func (c *Cache) Memo() *isolate.Memo {
	if c.Naive {
		return nil
	}
	return c.memo
}

// SpineView snapshots the live spine index into an immutable read-only
// view (nil when the index is empty, disabled, or running naive) — the
// navigation accelerator a store publishes alongside each frozen
// grammar generation. Callers must pair it with the generation protocol
// described in isolate's view.go: the view aliases live chunk state and
// is only safe to read while that state is retired from mutation.
func (c *Cache) SpineView() *isolate.SpineView {
	if c.Naive {
		return nil
	}
	return c.memo.View()
}

// Apply performs the operation on the grammar via path isolation. Only
// the start rule is modified (plus garbage collection after deletes).
// The one-shot cache descends naively: the spine index only pays when
// its state persists across operations, so registering spines a
// throwaway cache immediately discards would be pure overhead.
func Apply(g *grammar.Grammar, op Op) error {
	c := Cache{Naive: true}
	stranded, err := ApplyCached(g, op, &c)
	if err != nil {
		return err
	}
	if stranded {
		g.GarbageCollect()
	}
	return nil
}

// ApplyAll applies a sequence of operations in order. The size-vector
// cache is shared across the whole sequence and garbage collection runs
// once at the end instead of after every delete, so a batch of n ops
// costs one ValSizes pass plus n start-rule refreshes.
func ApplyAll(g *grammar.Grammar, ops []Op) error {
	var c Cache
	stranded := false
	defer func() {
		// Also on the error path: deletes already applied must not leave
		// stranded rules behind.
		if stranded {
			g.GarbageCollect()
		}
	}()
	for i, op := range ops {
		s, err := ApplyCached(g, op, &c)
		if err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		stranded = stranded || s
	}
	return nil
}

// ApplyTree performs the same operation on a plain binary tree (the
// uncompressed reference semantics). It returns the possibly-new root.
func ApplyTree(st *xmltree.SymbolTable, root *xmltree.Node, op Op) (*xmltree.Node, error) {
	node, parent, idx, err := findPreorder(root, op.Pos)
	if err != nil {
		return nil, err
	}
	splice := func(sub *xmltree.Node) {
		if parent == nil {
			root = sub
		} else {
			parent.Children[idx] = sub
		}
	}
	switch op.Kind {
	case Rename:
		if node.Label.IsBottom() {
			return nil, fmt.Errorf("update: rename of ⊥ node at %d", op.Pos)
		}
		node.Label = xmltree.Term(st.InternElement(op.Label))
	case Insert:
		if op.Frag == nil {
			return nil, fmt.Errorf("update: insert without fragment")
		}
		splice(op.Frag.BinaryInto(st, node))
	case Delete:
		if node.Label.IsBottom() {
			return nil, fmt.Errorf("update: delete of ⊥ node at %d", op.Pos)
		}
		splice(node.Children[1])
	default:
		return nil, fmt.Errorf("update: unknown op kind %v", op.Kind)
	}
	return root, nil
}

// ApplyTreeAll applies a sequence of operations to a plain tree.
func ApplyTreeAll(st *xmltree.SymbolTable, root *xmltree.Node, ops []Op) (*xmltree.Node, error) {
	var err error
	for i, op := range ops {
		root, err = ApplyTree(st, root, op)
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
	}
	return root, nil
}

func findPreorder(root *xmltree.Node, pos int64) (node, parent *xmltree.Node, idx int, err error) {
	var i int64
	var rec func(n, p *xmltree.Node, ix int) bool
	rec = func(n, p *xmltree.Node, ix int) bool {
		if i == pos {
			node, parent, idx = n, p, ix
			return true
		}
		i++
		for j, c := range n.Children {
			if rec(c, n, j) {
				return true
			}
		}
		return false
	}
	if !rec(root, nil, -1) {
		return nil, nil, 0, fmt.Errorf("update: preorder %d out of range", pos)
	}
	return node, parent, idx, nil
}
