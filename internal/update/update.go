// Package update implements the three atomic update operations of
// Section III / V-C on grammar-compressed binary XML trees — rename,
// insert-before, and delete-subtree — via path isolation, plus reference
// implementations of the same operations on plain trees (used by the
// experiments to validate grammar updates against uncompressed ground
// truth and to replay workloads).
package update

import (
	"fmt"

	"repro/internal/grammar"
	"repro/internal/isolate"
	"repro/internal/xmltree"
)

// Op is one atomic update. Pos addresses a node by its preorder index in
// the binary tree val_G(S) at the time the operation is applied.
type Op struct {
	Kind  Kind
	Pos   int64
	Label string            // Rename: the new element label
	Frag  *xmltree.Unranked // Insert: the fragment to insert before Pos
}

// Kind enumerates the update operations.
type Kind uint8

const (
	// Rename relabels the node at Pos (σ ≠ ⊥ and label(u) ≠ ⊥).
	Rename Kind = iota
	// Insert inserts Frag as previous sibling of the node at Pos; if Pos
	// addresses a ⊥ node this is the "insert after the last element /
	// into an empty child list" case.
	Insert
	// Delete removes the subtree rooted at Pos (the element and its
	// descendants; following siblings splice up).
	Delete
)

func (k Kind) String() string {
	switch k {
	case Rename:
		return "rename"
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Apply performs the operation on the grammar via path isolation. Only
// the start rule is modified (plus garbage collection after deletes).
func Apply(g *grammar.Grammar, op Op) error {
	pos, err := isolate.Isolate(g, op.Pos, nil)
	if err != nil {
		return err
	}
	switch op.Kind {
	case Rename:
		if pos.Node.Label.IsBottom() {
			return fmt.Errorf("update: rename of ⊥ node at %d", op.Pos)
		}
		id := g.Syms.InternElement(op.Label)
		pos.Node.Label = xmltree.Term(id)
	case Insert:
		if op.Frag == nil {
			return fmt.Errorf("update: insert without fragment")
		}
		// insert(t,u,s): the fragment's right-most ⊥ becomes the subtree
		// currently rooted at u (for u = ⊥ this degenerates to t[u/s]).
		sub := op.Frag.BinaryInto(g.Syms, pos.Node)
		pos.Replace(g, sub)
	case Delete:
		if pos.Node.Label.IsBottom() {
			return fmt.Errorf("update: delete of ⊥ node at %d", op.Pos)
		}
		// t[u / u.2]: drop the element and its first-child subtree, keep
		// the next-sibling chain.
		pos.Replace(g, pos.Node.Children[1])
		g.GarbageCollect()
	default:
		return fmt.Errorf("update: unknown op kind %v", op.Kind)
	}
	return nil
}

// ApplyAll applies a sequence of operations in order.
func ApplyAll(g *grammar.Grammar, ops []Op) error {
	for i, op := range ops {
		if err := Apply(g, op); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
	}
	return nil
}

// ApplyTree performs the same operation on a plain binary tree (the
// uncompressed reference semantics). It returns the possibly-new root.
func ApplyTree(st *xmltree.SymbolTable, root *xmltree.Node, op Op) (*xmltree.Node, error) {
	node, parent, idx, err := findPreorder(root, op.Pos)
	if err != nil {
		return nil, err
	}
	splice := func(sub *xmltree.Node) {
		if parent == nil {
			root = sub
		} else {
			parent.Children[idx] = sub
		}
	}
	switch op.Kind {
	case Rename:
		if node.Label.IsBottom() {
			return nil, fmt.Errorf("update: rename of ⊥ node at %d", op.Pos)
		}
		node.Label = xmltree.Term(st.InternElement(op.Label))
	case Insert:
		if op.Frag == nil {
			return nil, fmt.Errorf("update: insert without fragment")
		}
		splice(op.Frag.BinaryInto(st, node))
	case Delete:
		if node.Label.IsBottom() {
			return nil, fmt.Errorf("update: delete of ⊥ node at %d", op.Pos)
		}
		splice(node.Children[1])
	default:
		return nil, fmt.Errorf("update: unknown op kind %v", op.Kind)
	}
	return root, nil
}

// ApplyTreeAll applies a sequence of operations to a plain tree.
func ApplyTreeAll(st *xmltree.SymbolTable, root *xmltree.Node, ops []Op) (*xmltree.Node, error) {
	var err error
	for i, op := range ops {
		root, err = ApplyTree(st, root, op)
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
	}
	return root, nil
}

func findPreorder(root *xmltree.Node, pos int64) (node, parent *xmltree.Node, idx int, err error) {
	var i int64
	var rec func(n, p *xmltree.Node, ix int) bool
	rec = func(n, p *xmltree.Node, ix int) bool {
		if i == pos {
			node, parent, idx = n, p, ix
			return true
		}
		i++
		for j, c := range n.Children {
			if rec(c, n, j) {
				return true
			}
		}
		return false
	}
	if !rec(root, nil, -1) {
		return nil, nil, 0, fmt.Errorf("update: preorder %d out of range", pos)
	}
	return node, parent, idx, nil
}
