// FuzzOpDecode locks in the op codec's hostile-input hardening: WAL
// records come off disk, so no byte stream — torn, bit-flipped, or
// adversarial — may panic the decoder, demand an allocation larger
// than the bytes backing it, or decode into an op the encoder would
// refuse to produce. Any op that does decode must re-encode into a
// stream that decodes to the same op again (the codec reaches a fixed
// point after one round trip; non-minimal varints in the input may
// shorten, nothing else may change).
package update

import (
	"bytes"
	"testing"
)

func FuzzOpDecode(f *testing.F) {
	addOp := func(op Op) {
		b, err := AppendOp(nil, op)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	for _, op := range codecOps() {
		addOp(op)
	}
	// Two ops back to back: the decoder must consume exact lengths.
	two, _ := AppendOp(nil, Op{Kind: Rename, Pos: 5, Label: "ab"})
	two, _ = AppendOp(two, Op{Kind: Delete, Pos: 1})
	f.Add(two)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0xff, 0xff, 0x7f})       // lying fragment count
	f.Add([]byte{1, 0, 2, 1, 'a', 5})           // child count past budget
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80}) // torn varint

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		op, n, err := DecodeOp(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc, err := AppendOp(nil, op)
		if err != nil {
			t.Fatalf("decoded op does not re-encode: %v", err)
		}
		op2, n2, err := DecodeOp(enc)
		if err != nil {
			t.Fatalf("re-encoded op does not decode: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		if op2.Kind != op.Kind || op2.Pos != op.Pos || op2.Label != op.Label || !fragEqual(op.Frag, op2.Frag) {
			t.Fatal("round trip changed the op")
		}
		enc2, err := AppendOp(nil, op2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}
