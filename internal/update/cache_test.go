package update

import (
	"math/rand"
	"testing"

	"repro/internal/treerepair"
	"repro/internal/xmltree"
)

// TestCachedMatchesPerOp: applying a random sequence through the shared
// size-vector cache (ApplyAll's batched path) must produce exactly the
// same grammar-derived tree as applying each op with fresh sizes and
// per-delete garbage collection.
func TestCachedMatchesPerOp(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		u := randomUnranked(rng, 40+rng.Intn(80), []string{"a", "b", "c"})
		doc := u.Binary()
		gCached, _ := treerepair.Compress(doc, treerepair.Options{})
		gPerOp := gCached.Clone()
		ref := doc.Root.Copy()
		refSyms := doc.Syms.Clone()

		// Generate ops against the evolving reference tree so positions
		// stay valid for all three replicas.
		var ops []Op
		for i := 0; i < 30; i++ {
			op := randomOp(rng, ref)
			var err error
			ref, err = ApplyTree(refSyms, ref, op)
			if err != nil {
				t.Fatal(err)
			}
			ops = append(ops, op)
		}

		var c Cache
		stranded := false
		for i, op := range ops {
			s, err := ApplyCached(gCached, op, &c)
			if err != nil {
				t.Fatalf("trial %d cached op %d: %v", trial, i, err)
			}
			stranded = stranded || s
			if err := Apply(gPerOp, op); err != nil {
				t.Fatalf("trial %d per-op %d: %v", trial, i, err)
			}
			// Mid-sequence cross-check: both replicas derive the reference
			// prefix state.
			if i == len(ops)/2 {
				a, _ := gCached.Expand(0)
				b, _ := gPerOp.Expand(0)
				if !xmltree.Equal(a, b) {
					t.Fatalf("trial %d: cached and per-op diverged mid-sequence", trial)
				}
			}
		}
		if stranded {
			gCached.GarbageCollect()
		}
		if c.Misses != 1 || c.Hits != int64(len(ops))-1 {
			t.Fatalf("trial %d: cache hits=%d misses=%d, want %d/1", trial, c.Hits, c.Misses, len(ops)-1)
		}

		got, err := gCached.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		perOp, err := gPerOp.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		// Grammar and reference tree intern new labels into separate
		// symbol tables, so compare by label name.
		if !sameLabeledTree(gCached.Syms, got, refSyms, ref) {
			t.Fatalf("trial %d: cached path diverged from tree ground truth", trial)
		}
		if !sameLabeledTree(gPerOp.Syms, perOp, refSyms, ref) {
			t.Fatalf("trial %d: per-op path diverged from tree ground truth", trial)
		}
		if err := gCached.Validate(); err != nil {
			t.Fatalf("trial %d: invalid grammar after batch: %v", trial, err)
		}
	}
}

// TestCacheRefreshStart: after an insert/delete the cached start vector
// must equal a freshly computed one.
func TestCacheRefreshStart(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := randomUnranked(rng, 60, []string{"a", "b"})
	doc := u.Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})

	var c Cache
	ref := doc.Root.Copy()
	refSyms := doc.Syms.Clone()
	for i := 0; i < 20; i++ {
		op := randomOp(rng, ref)
		var err error
		ref, err = ApplyTree(refSyms, ref, op)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ApplyCached(g, op, &c); err != nil {
			t.Fatal(err)
		}
		fresh, err := g.ValSizes()
		if err != nil {
			t.Fatal(err)
		}
		cached, err := c.Sizes(g)
		if err != nil {
			t.Fatal(err)
		}
		if cached.Get(g.Start).Total != fresh.Get(g.Start).Total {
			t.Fatalf("op %d: cached start total %d, fresh %d",
				i, cached.Get(g.Start).Total, fresh.Get(g.Start).Total)
		}
	}
}
