package update

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// codecOps is a representative op mix: every kind, empty and deep and
// wide fragments, unicode and empty labels.
func codecOps() []Op {
	deep := xmltree.NewUnranked("d0")
	tip := deep
	for i := 0; i < 40; i++ {
		next := xmltree.NewUnranked("d")
		tip.Children = []*xmltree.Unranked{next}
		tip = next
	}
	wide := xmltree.NewUnranked("w")
	for i := 0; i < 64; i++ {
		wide.Children = append(wide.Children, xmltree.NewUnranked("c"))
	}
	return []Op{
		{Kind: Rename, Pos: 0, Label: "a"},
		{Kind: Rename, Pos: 1<<40 + 7, Label: ""},
		{Kind: Rename, Pos: 3, Label: "röôt→"},
		{Kind: Delete, Pos: 12345},
		{Kind: Insert, Pos: 2, Frag: xmltree.NewUnranked("leaf")},
		{Kind: Insert, Pos: 9, Frag: xmltree.NewUnranked("r",
			xmltree.NewUnranked("x", xmltree.NewUnranked("y")),
			xmltree.NewUnranked("z"))},
		{Kind: Insert, Pos: 0, Frag: deep},
		{Kind: Insert, Pos: 77, Frag: wide},
	}
}

func fragEqual(a, b *xmltree.Unranked) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Label != b.Label || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !fragEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func TestOpCodecRoundTrip(t *testing.T) {
	var buf []byte
	ops := codecOps()
	for _, op := range ops {
		var err error
		buf, err = AppendOp(buf, op)
		if err != nil {
			t.Fatalf("AppendOp(%v): %v", op.Kind, err)
		}
	}
	off := 0
	for i, want := range ops {
		got, n, err := DecodeOp(buf[off:])
		if err != nil {
			t.Fatalf("DecodeOp op %d: %v", i, err)
		}
		off += n
		if got.Kind != want.Kind || got.Pos != want.Pos || got.Label != want.Label {
			t.Fatalf("op %d: got %+v want %+v", i, got, want)
		}
		if !fragEqual(got.Frag, want.Frag) {
			t.Fatalf("op %d: fragment mismatch", i)
		}
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestOpCodecRejectsInvalidEncodes(t *testing.T) {
	cases := []struct {
		name string
		op   Op
	}{
		{"negative pos", Op{Kind: Delete, Pos: -1}},
		{"insert without fragment", Op{Kind: Insert, Pos: 0}},
		{"unknown kind", Op{Kind: Kind(9), Pos: 0}},
		{"oversized label", Op{Kind: Rename, Pos: 0, Label: strings.Repeat("x", MaxOpLabel+1)}},
	}
	for _, c := range cases {
		if _, err := AppendOp(nil, c.op); err == nil {
			t.Errorf("%s: encode succeeded", c.name)
		}
	}
}

func TestOpCodecRejectsHostileDecodes(t *testing.T) {
	enc := func(op Op) []byte {
		b, err := AppendOp(nil, op)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	valid := enc(Op{Kind: Insert, Pos: 1, Frag: xmltree.NewUnranked("a", xmltree.NewUnranked("b"))})
	// Every strict prefix of a valid op must fail cleanly, never panic.
	for cut := 0; cut < len(valid); cut++ {
		if _, _, err := DecodeOp(valid[cut:cut]); err == nil && cut != len(valid) {
			t.Fatalf("empty decode at %d succeeded", cut)
		}
		if _, _, err := DecodeOp(valid[:cut]); err == nil {
			t.Fatalf("truncated decode at %d succeeded", cut)
		}
	}
	hostile := [][]byte{
		{},     // empty
		{0x80}, // torn varint
		{9, 0}, // unknown kind
		{0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0}, // pos > MaxInt64
		append([]byte{0, 0, 0xff, 0xff, 0xff, 0x7f}, make([]byte, 64)...),  // label length lies past cap? (within cap but truncated)
		{1, 0, 0},                       // insert with zero-node fragment
		{1, 0, 0xff, 0xff, 0x7f},        // fragment node count huge vs bytes
		{1, 0, 2, 1, 'a', 5},            // child count exceeds node budget
		{1, 0, 3, 1, 'a', 1, 1, 'b', 0}, // declared 3 nodes, encoded 2
	}
	for i, data := range hostile {
		if _, _, err := DecodeOp(data); err == nil {
			t.Errorf("hostile stream %d decoded", i)
		}
	}
}

func TestOpCodecAppliesIdentically(t *testing.T) {
	// A decoded op must drive the update engine exactly like the
	// original: replay both against the same plain tree.
	st := xmltree.NewSymbolTable()
	mk := func() *xmltree.Node {
		return xmltree.NewUnranked("r",
			xmltree.NewUnranked("a", xmltree.NewUnranked("b")),
			xmltree.NewUnranked("c")).BinaryInto(st, xmltree.NewBottom())
	}
	ops := []Op{
		{Kind: Rename, Pos: 2, Label: "q"},
		{Kind: Insert, Pos: 4, Frag: xmltree.NewUnranked("n", xmltree.NewUnranked("m"))},
		{Kind: Delete, Pos: 1},
	}
	var buf []byte
	for _, op := range ops {
		var err error
		if buf, err = AppendOp(buf, op); err != nil {
			t.Fatal(err)
		}
	}
	var decoded []Op
	for off := 0; off < len(buf); {
		op, n, err := DecodeOp(buf[off:])
		if err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, op)
		off += n
	}
	want, err := ApplyTreeAll(st, mk(), ops)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ApplyTreeAll(st, mk(), decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(want, got) {
		t.Fatal("decoded ops diverged from originals")
	}
}
