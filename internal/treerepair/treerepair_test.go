package treerepair

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/digram"
	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// expandAndCompare asserts val(g) equals the original tree.
func expandAndCompare(t *testing.T, g *grammar.Grammar, want *xmltree.Node) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("compressed grammar invalid: %v", err)
	}
	got, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, want) {
		t.Fatalf("val(G) != input:\n got %s\nwant %s", got, want)
	}
}

func list(label string, n int) *xmltree.Unranked {
	root := xmltree.NewUnranked("root")
	for i := 0; i < n; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked(label))
	}
	return root
}

func TestCompressLongList(t *testing.T) {
	// A list of 1024 identical children must compress exponentially:
	// grammar size O(log n) ≪ n.
	doc := list("a", 1024).Binary()
	g, st := Compress(doc, Options{})
	if g.Size() > 60 {
		t.Fatalf("list of 1024 should compress to O(log n) edges, got %d", g.Size())
	}
	if st.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	expandAndCompare(t, g, doc.Root)
}

func TestCompressPreservesVal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 40; trial++ {
		u := randomUnranked(rng, 1+rng.Intn(120), labels)
		doc := u.Binary()
		g, _ := Compress(doc, Options{})
		expandAndCompare(t, g, doc.Root)
	}
}

func randomUnranked(rng *rand.Rand, n int, labels []string) *xmltree.Unranked {
	root := &xmltree.Unranked{Label: labels[rng.Intn(len(labels))]}
	nodes := []*xmltree.Unranked{root}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := &xmltree.Unranked{Label: labels[rng.Intn(len(labels))]}
		p.Children = append(p.Children, c)
		nodes = append(nodes, c)
	}
	return root
}

func TestCompressRegularRecords(t *testing.T) {
	// A weblog-like file: root with n identical records, each with 4 fields.
	root := xmltree.NewUnranked("log")
	for i := 0; i < 500; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("entry",
			xmltree.NewUnranked("host"), xmltree.NewUnranked("time"),
			xmltree.NewUnranked("req"), xmltree.NewUnranked("status")))
	}
	doc := root.Binary()
	g, _ := Compress(doc, Options{})
	if ratio := float64(g.Size()) / float64(root.Edges()); ratio > 0.02 {
		t.Fatalf("regular records should compress below 2%%, got %.4f (size %d / %d)",
			ratio, g.Size(), root.Edges())
	}
	expandAndCompare(t, g, doc.Root)
}

func TestCompressIncompressible(t *testing.T) {
	// Every node gets a unique label: nothing repeats, so no digram has
	// two occurrences and the output is (close to) the input.
	root := xmltree.NewUnranked("r0")
	cur := root
	for i := 1; i < 30; i++ {
		c := xmltree.NewUnranked(labelN(i))
		cur.Children = append(cur.Children, c)
		cur = c
	}
	doc := root.Binary()
	g, st := Compress(doc, Options{})
	expandAndCompare(t, g, doc.Root)
	if st.Rounds > 2 {
		// (⊥,⊥)-padding digrams like (x,1,⊥) never repeat here since all
		// labels are distinct.
		t.Fatalf("unique-label chain should need ~0 rounds, got %d", st.Rounds)
	}
}

func labelN(i int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	s := ""
	for {
		s = string(alpha[i%26]) + s
		i /= 26
		if i == 0 {
			return "u" + s
		}
	}
}

func TestStatsMonotoneAndConsistent(t *testing.T) {
	doc := list("a", 256).Binary()
	g, st := Compress(doc, Options{})
	if st.InputEdges != doc.Root.Edges() {
		t.Fatalf("InputEdges = %d, want %d", st.InputEdges, doc.Root.Edges())
	}
	if len(st.Sizes) != st.Rounds {
		t.Fatalf("Sizes len %d != Rounds %d", len(st.Sizes), st.Rounds)
	}
	max := 0
	for _, s := range st.Sizes {
		if s > max {
			max = s
		}
	}
	if max != st.MaxIntermediate {
		t.Fatalf("MaxIntermediate %d != max(Sizes) %d", st.MaxIntermediate, max)
	}
	if st.FinalSize != g.Size() {
		t.Fatalf("FinalSize %d != grammar size %d", st.FinalSize, g.Size())
	}
}

func TestMaxRankLimitsDigramRank(t *testing.T) {
	// With MaxRank 1 only digrams with rank(a)+rank(b)-1 ≤ 1 are replaced
	// (e.g. element+⊥ pairs); the grammar stays valid regardless.
	doc := list("a", 64).Binary()
	g, _ := Compress(doc, Options{MaxRank: 1})
	expandAndCompare(t, g, doc.Root)
	g.Rules(func(r *grammar.Rule) {
		if r.Rank > 1 {
			t.Fatalf("rule N%d has rank %d > MaxRank 1", r.ID, r.Rank)
		}
	})
}

func TestCompressDoesNotMutateInput(t *testing.T) {
	doc := list("a", 50).Binary()
	before := doc.Root.Copy()
	symsBefore := doc.Syms.Len()
	Compress(doc, Options{})
	if !xmltree.Equal(doc.Root, before) {
		t.Fatal("input tree was mutated")
	}
	if doc.Syms.Len() != symsBefore {
		t.Fatal("input symbol table was mutated")
	}
}

func TestPropertyValPreservation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(size)%200
		u := randomUnranked(rng, n, []string{"a", "b", "c", "d", "e"})
		doc := u.Binary()
		g, _ := Compress(doc, Options{})
		if g.Validate() != nil {
			return false
		}
		got, err := g.Expand(0)
		if err != nil {
			return false
		}
		return xmltree.Equal(got, doc.Root)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompressedNotLarger(t *testing.T) {
	// Pruning guarantees the grammar is never larger than the input tree
	// plus a small constant (rules with sav<0 are inlined away).
	cfg := &quick.Config{MaxCount: 20}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randomUnranked(rng, 150, []string{"a", "b"})
		doc := u.Binary()
		g, _ := Compress(doc, Options{})
		return g.Size() <= doc.Root.Edges()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestIntrusiveOccBookkeeping checks add/remove/stored behaviour of the
// intrusive occurrence positions (the replacement for the old occSet
// position map) on a(b, b, a(b, b, b)): digram (a,1,b) occurs twice
// (parents: root and the inner a).
func TestIntrusiveOccBookkeeping(t *testing.T) {
	st := xmltree.NewSymbolTable()
	a := st.Intern("a", 3)
	b := st.Intern("b", 0)
	tree := xmltree.New(xmltree.Term(a),
		xmltree.New(xmltree.Term(b)),
		xmltree.New(xmltree.Term(b)),
		xmltree.New(xmltree.Term(a),
			xmltree.New(xmltree.Term(b)),
			xmltree.New(xmltree.Term(b)),
			xmltree.New(xmltree.Term(b))))
	e := newEngine(st.Clone(), tree, 4)
	e.buildOccurrences()

	d := digram.Digram{A: a, I: 1, B: b}
	if got := e.liveCount(d); got != 2 {
		t.Fatalf("liveCount(%v) = %v, want 2", d, got)
	}
	root := e.arena.at(e.root)
	if !e.stored(root, d) {
		t.Fatal("root must be a stored parent of (a,1,b)")
	}
	inner := root.children[2]
	if !e.stored(e.arena.at(inner), d) {
		t.Fatal("inner a must be a stored parent of (a,1,b)")
	}
	// Double-add must be a no-op.
	churn := e.churn
	e.tryAdd(e.root, d)
	if e.churn != churn || e.liveCount(d) != 2 {
		t.Fatal("duplicate add must not change state")
	}
	// Remove root's occurrence; the swapped-in survivor keeps a correct
	// intrusive position.
	e.removeOcc(e.root, d)
	if e.stored(root, d) {
		t.Fatal("root still stored after remove")
	}
	if e.liveCount(d) != 1 || !e.stored(e.arena.at(inner), d) {
		t.Fatal("survivor lost after swap-delete")
	}
	e.removeOcc(e.root, d) // second remove is a no-op
	if e.liveCount(d) != 1 {
		t.Fatal("double remove changed state")
	}
}

func BenchmarkCompressList4096(b *testing.B) {
	doc := list("a", 4096).Binary()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compress(doc, Options{})
	}
}
