// Package treerepair implements the paper's baseline compressor
// TreeRePair [3]: RePair compression of a labeled ordered ranked tree into
// an SLCF tree grammar. Digram occurrences are maintained incrementally
// (the Larsson–Moffat style bookkeeping the paper refers to), so the whole
// compression runs in near-linear time.
//
// The udc baseline (update–decompress–compress) and Fig. 6's
// "decompress + compress" series are built on this package.
package treerepair

import (
	"repro/internal/digram"
	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// Options configures the compressor.
type Options struct {
	// MaxRank is the paper's k_in: digrams whose replacement rule would
	// need more than MaxRank parameters are never replaced. 0 means the
	// default of 4.
	MaxRank int
}

func (o Options) maxRank() int {
	if o.MaxRank <= 0 {
		return 4
	}
	return o.MaxRank
}

// Stats reports what happened during a compression run.
type Stats struct {
	Rounds          int   // number of digram replacements
	InputEdges      int   // edges of the input tree
	MaxIntermediate int   // max grammar size observed after any round
	FinalSize       int   // grammar size after pruning
	PrunedRules     int   // rules removed by the pruning phase
	Sizes           []int // grammar size after each round (for Fig. 2/3)
}

// Compress runs TreeRePair on the binary document and returns the
// resulting grammar (over a cloned symbol table; the document is not
// modified) together with run statistics.
func Compress(doc *xmltree.Document, opt Options) (*grammar.Grammar, *Stats) {
	return CompressTree(doc.Syms, doc.Root, opt)
}

// CompressTree runs TreeRePair on an arbitrary ranked tree of terminals.
func CompressTree(st *xmltree.SymbolTable, root *xmltree.Node, opt Options) (*grammar.Grammar, *Stats) {
	e := newEngine(st.Clone(), root, opt.maxRank())
	e.buildOccurrences()
	for {
		d, _, ok := e.queue.PopBest(e.liveCount)
		if !ok {
			break
		}
		e.replaceAll(d)
		e.maybeRebuild()
	}
	g := e.toGrammar()
	e.stats.PrunedRules = g.Prune()
	e.stats.FinalSize = g.Size()
	return g, e.stats
}

// tnode is the mutable tree node used during compression: a plain terminal
// tree with parent links so occurrences can be replaced in O(1).
type tnode struct {
	label    int32
	parent   *tnode
	idx      int // index within parent.children
	children []*tnode
}

// occSet is an order-preserving set of occurrence parents with O(1)
// membership, insertion, and deletion (swap-delete keeps iteration
// deterministic given a deterministic operation sequence).
type occSet struct {
	items []*tnode
	pos   map[*tnode]int
}

func newOccSet() *occSet { return &occSet{pos: make(map[*tnode]int)} }

func (s *occSet) contains(v *tnode) bool { _, ok := s.pos[v]; return ok }

func (s *occSet) add(v *tnode) bool {
	if s.contains(v) {
		return false
	}
	s.pos[v] = len(s.items)
	s.items = append(s.items, v)
	return true
}

func (s *occSet) remove(v *tnode) bool {
	i, ok := s.pos[v]
	if !ok {
		return false
	}
	last := len(s.items) - 1
	s.items[i] = s.items[last]
	s.pos[s.items[i]] = i
	s.items = s.items[:last]
	delete(s.pos, v)
	return true
}

func (s *occSet) len() int { return len(s.items) }

type madeRule struct {
	term int32 // the generated terminal standing for X
	d    digram.Digram
}

type engine struct {
	st      *xmltree.SymbolTable
	root    *tnode
	maxRank int

	occs  map[digram.Digram]*occSet
	queue digram.Queue
	rules []madeRule

	nodeCount int // live nodes in the tree
	ruleEdges int // Σ edges of created rules
	churn     int // adds+removes since last full rebuild

	stats *Stats
}

func newEngine(st *xmltree.SymbolTable, root *xmltree.Node, maxRank int) *engine {
	e := &engine{
		st:      st,
		maxRank: maxRank,
		occs:    make(map[digram.Digram]*occSet),
		stats:   &Stats{InputEdges: root.Edges()},
	}
	e.root = e.convert(root, nil, 0)
	e.nodeCount = root.Size()
	return e
}

func (e *engine) convert(n *xmltree.Node, parent *tnode, idx int) *tnode {
	t := &tnode{label: n.Label.ID, parent: parent, idx: idx}
	if len(n.Children) > 0 {
		t.children = make([]*tnode, len(n.Children))
		for i, c := range n.Children {
			t.children[i] = e.convert(c, t, i)
		}
	}
	return t
}

func (e *engine) liveCount(d digram.Digram) float64 {
	if s := e.occs[d]; s != nil {
		return float64(s.len())
	}
	return 0
}

// tracked reports whether occurrences of d are worth tracking: only
// digrams whose replacement rule would be appropriate (rank ≤ k_in) can
// ever be replaced.
func (e *engine) tracked(d digram.Digram) bool {
	return d.Rank(e.st) <= e.maxRank
}

// tryAdd registers the occurrence whose tree parent is v for digram d,
// enforcing the non-overlap rule for equal-label digrams: the child must
// not already be a stored parent, and the parent must not already be a
// stored child (i.e. v sits at child index d.I of a stored parent).
func (e *engine) tryAdd(v *tnode, d digram.Digram) {
	if !e.tracked(d) {
		return
	}
	s := e.occs[d]
	if s == nil {
		s = newOccSet()
		e.occs[d] = s
	}
	if d.EqualLabels() {
		w := v.children[d.I-1]
		if s.contains(w) {
			return
		}
		if v.parent != nil && v.idx == d.I-1 && v.parent.label == d.A && s.contains(v.parent) {
			return
		}
	}
	if s.add(v) {
		e.churn++
		e.queue.Update(d, float64(s.len()))
	}
}

func (e *engine) removeOcc(v *tnode, d digram.Digram) {
	if s := e.occs[d]; s != nil && s.remove(v) {
		e.churn++
		e.queue.Update(d, float64(s.len()))
	}
}

// buildOccurrences scans the whole tree in postorder (bottom-up greedy,
// as TreeRePair does) and registers every non-overlapping occurrence.
func (e *engine) buildOccurrences() {
	e.occs = make(map[digram.Digram]*occSet)
	e.queue.Reset()
	var rec func(v *tnode)
	rec = func(v *tnode) {
		for _, c := range v.children {
			rec(c)
		}
		for i, c := range v.children {
			e.tryAdd(v, digram.Digram{A: v.label, I: i + 1, B: c.label})
		}
	}
	rec(e.root)
	e.churn = 0
}

// maybeRebuild re-derives all occurrence sets from scratch once enough
// incremental churn has accumulated. Incremental adds after deletions can
// leave equal-label chains slightly below their maximal non-overlapping
// packing; a periodic rebuild restores exact greedy alignment at amortized
// linear cost.
func (e *engine) maybeRebuild() {
	if e.churn > e.nodeCount {
		e.buildOccurrences()
	}
}

// replaceAll replaces every stored occurrence of d by a fresh generated
// terminal X and performs the Section IV-C context updates around each
// replacement site.
func (e *engine) replaceAll(d digram.Digram) {
	s := e.occs[d]
	if s == nil || s.len() < 2 {
		return
	}
	x := e.st.Fresh("X", d.Rank(e.st))
	e.rules = append(e.rules, madeRule{term: x, d: d})
	e.ruleEdges += e.st.Rank(d.A) + e.st.Rank(d.B)

	snapshot := append([]*tnode(nil), s.items...)
	for _, v := range snapshot {
		if !s.contains(v) {
			continue
		}
		e.replaceOne(v, d, x)
	}
	delete(e.occs, d)
	e.stats.Rounds++
	size := e.grammarSizeNow()
	e.stats.Sizes = append(e.stats.Sizes, size)
	if size > e.stats.MaxIntermediate {
		e.stats.MaxIntermediate = size
	}
}

func (e *engine) grammarSizeNow() int {
	return (e.nodeCount - 1) + e.ruleEdges
}

func (e *engine) replaceOne(v *tnode, d digram.Digram, x int32) {
	w := v.children[d.I-1]
	// Context removals: every stored occurrence that shares a node with
	// (v, w) is keyed by p (parent of v), by v, or by w.
	if p := v.parent; p != nil {
		e.removeOcc(p, digram.Digram{A: p.label, I: v.idx + 1, B: v.label})
	}
	for i, c := range v.children {
		e.removeOcc(v, digram.Digram{A: v.label, I: i + 1, B: c.label})
	}
	for i, c := range w.children {
		e.removeOcc(w, digram.Digram{A: w.label, I: i + 1, B: c.label})
	}

	// Structural replacement: X(v.1..v.(i-1), w.1..w.n, v.(i+1)..v.m).
	nc := make([]*tnode, 0, len(v.children)-1+len(w.children))
	nc = append(nc, v.children[:d.I-1]...)
	nc = append(nc, w.children...)
	nc = append(nc, v.children[d.I:]...)
	xn := &tnode{label: x, parent: v.parent, idx: v.idx, children: nc}
	for i, c := range nc {
		c.parent = xn
		c.idx = i
	}
	if v.parent == nil {
		e.root = xn
	} else {
		v.parent.children[v.idx] = xn
	}
	e.nodeCount--

	// Context additions: (p, X) and (X, c) digrams.
	if p := xn.parent; p != nil {
		e.tryAdd(p, digram.Digram{A: p.label, I: xn.idx + 1, B: x})
	}
	for i, c := range xn.children {
		e.tryAdd(xn, digram.Digram{A: x, I: i + 1, B: c.label})
	}
}

// toGrammar converts the compressed tree plus the generated rules into an
// SLCF grammar: every generated terminal becomes a nonterminal whose rule
// body is its digram pattern (with nested generated terminals converted
// recursively).
func (e *engine) toGrammar() *grammar.Grammar {
	g := grammar.New(e.st)
	ntOf := make(map[int32]int32, len(e.rules))
	for _, mr := range e.rules {
		rhs := e.convertPattern(mr.d.PatternRHS(e.st), ntOf)
		r := g.NewRule(mr.d.Rank(e.st), rhs)
		ntOf[mr.term] = r.ID
	}
	g.StartRule().RHS = e.convertTree(e.root, ntOf)
	return g
}

func (e *engine) convertPattern(n *xmltree.Node, ntOf map[int32]int32) *xmltree.Node {
	if n.Label.Kind == xmltree.Terminal {
		if nt, ok := ntOf[n.Label.ID]; ok {
			n.Label = xmltree.Nonterm(nt)
		}
	}
	for _, c := range n.Children {
		e.convertPattern(c, ntOf)
	}
	return n
}

func (e *engine) convertTree(v *tnode, ntOf map[int32]int32) *xmltree.Node {
	var lbl xmltree.Symbol
	if nt, ok := ntOf[v.label]; ok {
		lbl = xmltree.Nonterm(nt)
	} else {
		lbl = xmltree.Term(v.label)
	}
	n := xmltree.New(lbl)
	if len(v.children) > 0 {
		n.Children = make([]*xmltree.Node, len(v.children))
		for i, c := range v.children {
			n.Children[i] = e.convertTree(c, ntOf)
		}
	}
	return n
}
