// Package treerepair implements the paper's baseline compressor
// TreeRePair [3]: RePair compression of a labeled ordered ranked tree into
// an SLCF tree grammar. Digram occurrences are maintained incrementally
// (the Larsson–Moffat style bookkeeping the paper refers to), so the whole
// compression runs in near-linear time.
//
// The mutable working tree lives in a chunked node arena addressed by
// int32 indices, occurrence sets are flat-hashed on packed digram keys,
// and each node carries its occurrence-list position intrusively (one slot
// per child edge), so the inner loop performs no per-node heap allocation
// and no pointer-keyed map probes.
//
// The udc baseline (update–decompress–compress) and Fig. 6's
// "decompress + compress" series are built on this package.
package treerepair

import (
	"repro/internal/digram"
	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// Options configures the compressor.
type Options struct {
	// MaxRank is the paper's k_in: digrams whose replacement rule would
	// need more than MaxRank parameters are never replaced. 0 means the
	// default of 4.
	MaxRank int
}

func (o Options) maxRank() int {
	if o.MaxRank <= 0 {
		return 4
	}
	return o.MaxRank
}

// Stats reports what happened during a compression run.
type Stats struct {
	Rounds          int   // number of digram replacements
	InputEdges      int   // edges of the input tree
	MaxIntermediate int   // max grammar size observed after any round
	FinalSize       int   // grammar size after pruning
	PrunedRules     int   // rules removed by the pruning phase
	Sizes           []int // grammar size after each round (for Fig. 2/3)
}

// Compress runs TreeRePair on the binary document and returns the
// resulting grammar (over a cloned symbol table; the document is not
// modified) together with run statistics.
func Compress(doc *xmltree.Document, opt Options) (*grammar.Grammar, *Stats) {
	return CompressTree(doc.Syms, doc.Root, opt)
}

// CompressTree runs TreeRePair on an arbitrary ranked tree of terminals.
func CompressTree(st *xmltree.SymbolTable, root *xmltree.Node, opt Options) (*grammar.Grammar, *Stats) {
	e := newEngine(st.Clone(), root, opt.maxRank())
	e.buildOccurrences()
	for {
		d, _, ok := e.queue.PopBest(e.liveCount)
		if !ok {
			break
		}
		e.replaceAll(d)
		e.maybeRebuild()
	}
	g := e.toGrammar()
	e.stats.PrunedRules = g.Prune()
	e.stats.FinalSize = g.Size()
	return g, e.stats
}

// tnode is the mutable tree node used during compression. Nodes live in a
// chunked arena and reference each other by int32 index; children and occ
// are carved from a shared int32 slab. occ[i] is the node's position in
// the occurrence list of the digram (label, i+1, label(children[i])) when
// the node is a stored occurrence parent for child edge i, and -1
// otherwise — the intrusive replacement for the old per-set position map.
type tnode struct {
	label    int32
	parent   int32 // arena index of the parent; -1 for the root
	idx      int32 // index within parent's children
	children []int32
	occ      []int32
}

const (
	nilNode       = int32(-1)
	nodeChunkBits = 13
	nodeChunkSize = 1 << nodeChunkBits
)

// nodeArena allocates tnodes in fixed-size chunks. Chunk backing arrays
// never move, so *tnode pointers obtained via at() stay valid across
// later allocations. Freed nodes are recycled through a freelist, which
// bounds arena growth by the input size (each replacement frees two nodes
// and allocates one).
type nodeArena struct {
	chunks [][]tnode
	free   []int32
	n      int32 // high-water mark of allocated indices
}

func (a *nodeArena) alloc() int32 {
	if n := len(a.free); n > 0 {
		id := a.free[n-1]
		a.free = a.free[:n-1]
		*a.at(id) = tnode{}
		return id
	}
	if int(a.n)>>nodeChunkBits >= len(a.chunks) {
		a.chunks = append(a.chunks, make([]tnode, nodeChunkSize))
	}
	id := a.n
	a.n++
	return id
}

func (a *nodeArena) at(id int32) *tnode {
	return &a.chunks[id>>nodeChunkBits][id&(nodeChunkSize-1)]
}

// release recycles a node. The caller must have removed every occurrence
// reference to it first; stale indices held elsewhere (e.g. a replacement
// snapshot) are harmless because the recycled node's label can never match
// the digram being replaced.
func (a *nodeArena) release(id int32) { a.free = append(a.free, id) }

// i32Slab hands out []int32 scratch carved from chunked buffers. Slices
// are never reclaimed individually; superseded ones simply leak into their
// chunk, which the replacement freelist keeps bounded.
type i32Slab struct {
	cur []int32
}

const i32ChunkSize = 1 << 14

func (s *i32Slab) alloc(n int) []int32 {
	if n == 0 {
		return nil
	}
	if len(s.cur) < n {
		size := i32ChunkSize
		if n > size {
			size = n
		}
		s.cur = make([]int32, size)
	}
	out := s.cur[:n:n]
	s.cur = s.cur[n:]
	return out
}

type madeRule struct {
	term int32 // the generated terminal standing for X
	d    digram.Digram
}

type engine struct {
	st      *xmltree.SymbolTable
	arena   nodeArena
	slab    i32Slab
	root    int32
	maxRank int

	occs  digram.Table[[]int32] // packed digram key -> stored parent indices
	queue digram.Queue
	rules []madeRule
	snap  []int32 // reusable replacement snapshot

	nodeCount int // live nodes in the tree
	ruleEdges int // Σ edges of created rules
	churn     int // adds+removes since last full rebuild

	stats *Stats
}

func newEngine(st *xmltree.SymbolTable, root *xmltree.Node, maxRank int) *engine {
	e := &engine{
		st:      st,
		maxRank: maxRank,
		stats:   &Stats{InputEdges: root.Edges()},
	}
	e.root = e.convert(root, nilNode, 0)
	e.nodeCount = root.Size()
	return e
}

func (e *engine) convert(n *xmltree.Node, parent, idx int32) int32 {
	id := e.arena.alloc()
	t := e.arena.at(id)
	t.label = n.Label.ID
	t.parent = parent
	t.idx = idx
	if len(n.Children) > 0 {
		t.children = e.slab.alloc(len(n.Children))
		t.occ = e.slab.alloc(len(n.Children))
		for i, c := range n.Children {
			t.occ[i] = -1
			// t stays valid: arena chunks never move.
			t.children[i] = e.convert(c, id, int32(i))
		}
	}
	return id
}

func (e *engine) liveCount(d digram.Digram) float64 {
	s, _ := e.occs.Get(d.Key())
	return float64(len(s))
}

// tracked reports whether occurrences of d are worth tracking: only
// digrams whose replacement rule would be appropriate (rank ≤ k_in) can
// ever be replaced.
func (e *engine) tracked(d digram.Digram) bool {
	return d.Rank(e.st) <= e.maxRank
}

// stored reports whether v is currently a stored occurrence parent for
// digram d. The label checks make the answer exact even when v's index
// was recycled or v sits in a different digram's list at the same child
// edge.
func (e *engine) stored(v *tnode, d digram.Digram) bool {
	i := d.I - 1
	return v.label == d.A && i < len(v.children) &&
		v.occ[i] >= 0 && e.arena.at(v.children[i]).label == d.B
}

// tryAdd registers the occurrence whose tree parent is vid for digram d,
// enforcing the non-overlap rule for equal-label digrams: the child must
// not already be a stored parent, and the parent must not already be a
// stored child (i.e. v sits at child index d.I of a stored parent).
func (e *engine) tryAdd(vid int32, d digram.Digram) {
	if !e.tracked(d) {
		return
	}
	v := e.arena.at(vid)
	if d.EqualLabels() {
		w := e.arena.at(v.children[d.I-1])
		if e.stored(w, d) {
			return
		}
		if v.parent != nilNode && int(v.idx) == d.I-1 {
			if p := e.arena.at(v.parent); p.label == d.A && e.stored(p, d) {
				return
			}
		}
	}
	if v.occ[d.I-1] >= 0 {
		return // already stored
	}
	lst := e.occs.Ref(d.Key())
	v.occ[d.I-1] = int32(len(*lst))
	*lst = append(*lst, vid)
	e.churn++
	e.queue.Update(d, float64(len(*lst)))
}

func (e *engine) removeOcc(vid int32, d digram.Digram) {
	v := e.arena.at(vid)
	i := d.I - 1
	if i >= len(v.occ) || v.occ[i] < 0 {
		return
	}
	// Callers construct d from the node's current labels, so occ[i] ≥ 0
	// means v sits in exactly d's occurrence list.
	lst := e.occs.Ref(d.Key())
	pos := v.occ[i]
	last := len(*lst) - 1
	moved := (*lst)[last]
	(*lst)[pos] = moved
	e.arena.at(moved).occ[i] = pos
	*lst = (*lst)[:last]
	v.occ[i] = -1
	e.churn++
	e.queue.Update(d, float64(last))
}

// buildOccurrences scans the whole tree in postorder (bottom-up greedy,
// as TreeRePair does) and registers every non-overlapping occurrence.
// Intrusive positions are wiped preorder (parents before their subtrees)
// so the postorder re-registration never sees stale state.
func (e *engine) buildOccurrences() {
	e.occs.Clear()
	e.queue.Reset()
	var rec func(vid int32)
	rec = func(vid int32) {
		v := e.arena.at(vid)
		for i := range v.occ {
			v.occ[i] = -1
		}
		for _, c := range v.children {
			rec(c)
		}
		for i, c := range v.children {
			e.tryAdd(vid, digram.Digram{A: v.label, I: i + 1, B: e.arena.at(c).label})
		}
	}
	rec(e.root)
	e.churn = 0
}

// maybeRebuild re-derives all occurrence sets from scratch once enough
// incremental churn has accumulated. Incremental adds after deletions can
// leave equal-label chains slightly below their maximal non-overlapping
// packing; a periodic rebuild restores exact greedy alignment at amortized
// linear cost.
func (e *engine) maybeRebuild() {
	if e.churn > e.nodeCount {
		e.buildOccurrences()
	}
}

// replaceAll replaces every stored occurrence of d by a fresh generated
// terminal X and performs the Section IV-C context updates around each
// replacement site.
func (e *engine) replaceAll(d digram.Digram) {
	s, _ := e.occs.Get(d.Key())
	if len(s) < 2 {
		return
	}
	x := e.st.Fresh("X", d.Rank(e.st))
	e.rules = append(e.rules, madeRule{term: x, d: d})
	e.ruleEdges += e.st.Rank(d.A) + e.st.Rank(d.B)

	e.snap = append(e.snap[:0], s...)
	for _, vid := range e.snap {
		if !e.stored(e.arena.at(vid), d) {
			continue
		}
		e.replaceOne(vid, d, x)
	}
	e.stats.Rounds++
	size := e.grammarSizeNow()
	e.stats.Sizes = append(e.stats.Sizes, size)
	if size > e.stats.MaxIntermediate {
		e.stats.MaxIntermediate = size
	}
}

func (e *engine) grammarSizeNow() int {
	return (e.nodeCount - 1) + e.ruleEdges
}

func (e *engine) replaceOne(vid int32, d digram.Digram, x int32) {
	v := e.arena.at(vid)
	wid := v.children[d.I-1]
	w := e.arena.at(wid)
	// Context removals: every stored occurrence that shares a node with
	// (v, w) is keyed by p (parent of v), by v, or by w.
	if v.parent != nilNode {
		p := e.arena.at(v.parent)
		e.removeOcc(v.parent, digram.Digram{A: p.label, I: int(v.idx) + 1, B: v.label})
	}
	for i, c := range v.children {
		e.removeOcc(vid, digram.Digram{A: v.label, I: i + 1, B: e.arena.at(c).label})
	}
	for i, c := range w.children {
		e.removeOcc(wid, digram.Digram{A: w.label, I: i + 1, B: e.arena.at(c).label})
	}

	// Structural replacement: X(v.1..v.(i-1), w.1..w.n, v.(i+1)..v.m).
	n := len(v.children) - 1 + len(w.children)
	nc := e.slab.alloc(n)
	occ := e.slab.alloc(n)
	k := copy(nc, v.children[:d.I-1])
	k += copy(nc[k:], w.children)
	copy(nc[k:], v.children[d.I:])
	parent, idx := v.parent, v.idx
	// v and w are fully detached (no occurrence references remain); let the
	// arena recycle them. v/w must not be touched below this point.
	e.arena.release(vid)
	e.arena.release(wid)
	xid := e.arena.alloc()
	xn := e.arena.at(xid)
	xn.label = x
	xn.parent = parent
	xn.idx = idx
	xn.children = nc
	xn.occ = occ
	for i, c := range nc {
		occ[i] = -1
		cn := e.arena.at(c)
		cn.parent = xid
		cn.idx = int32(i)
	}
	if parent == nilNode {
		e.root = xid
	} else {
		e.arena.at(parent).children[idx] = xid
	}
	e.nodeCount--

	// Context additions: (p, X) and (X, c) digrams.
	if parent != nilNode {
		p := e.arena.at(parent)
		e.tryAdd(parent, digram.Digram{A: p.label, I: int(idx) + 1, B: x})
	}
	for i, c := range nc {
		e.tryAdd(xid, digram.Digram{A: x, I: i + 1, B: e.arena.at(c).label})
	}
}

// toGrammar converts the compressed tree plus the generated rules into an
// SLCF grammar: every generated terminal becomes a nonterminal whose rule
// body is its digram pattern (with nested generated terminals converted
// recursively).
func (e *engine) toGrammar() *grammar.Grammar {
	g := grammar.New(e.st)
	ntOf := make(map[int32]int32, len(e.rules))
	for _, mr := range e.rules {
		rhs := e.convertPattern(mr.d.PatternRHS(e.st), ntOf)
		r := g.NewRule(mr.d.Rank(e.st), rhs)
		ntOf[mr.term] = r.ID
	}
	g.StartRule().RHS = e.convertTree(e.root, ntOf)
	return g
}

func (e *engine) convertPattern(n *xmltree.Node, ntOf map[int32]int32) *xmltree.Node {
	if n.Label.Kind == xmltree.Terminal {
		if nt, ok := ntOf[n.Label.ID]; ok {
			n.Label = xmltree.Nonterm(nt)
		}
	}
	for _, c := range n.Children {
		e.convertPattern(c, ntOf)
	}
	return n
}

func (e *engine) convertTree(vid int32, ntOf map[int32]int32) *xmltree.Node {
	v := e.arena.at(vid)
	var lbl xmltree.Symbol
	if nt, ok := ntOf[v.label]; ok {
		lbl = xmltree.Nonterm(nt)
	} else {
		lbl = xmltree.Term(v.label)
	}
	n := xmltree.New(lbl)
	if len(v.children) > 0 {
		n.Children = make([]*xmltree.Node, len(v.children))
		for i, c := range v.children {
			n.Children[i] = e.convertTree(c, ntOf)
		}
	}
	return n
}
