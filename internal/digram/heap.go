package digram

// Queue is a max-priority queue of digram frequencies with lazy
// invalidation: every frequency change pushes a fresh entry, and stale
// entries (whose recorded count no longer matches the live count supplied
// at pop time) are discarded. This is the standard trick for RePair-style
// compressors whose counts change by small deltas on every replacement.
//
// The heap is hand-rolled over a concrete entry slice rather than
// container/heap: the interface-based API boxes every pushed and popped
// element into an allocation, and Update/PopBest sit on the hottest
// compressor path.
//
// Frequencies are float64 because GrammarRePair weights generators by rule
// usage counts, which grow exponentially on highly compressible grammars.
// Ties are broken by lexicographic digram order so compression runs are
// deterministic.
type Queue struct {
	h []entry
}

type entry struct {
	count float64
	d     Digram
}

// less orders entries max-first by count, then by digram order.
func (q *Queue) less(i, j int) bool {
	if q.h[i].count != q.h[j].count {
		return q.h[i].count > q.h[j].count
	}
	return q.h[i].d.Less(q.h[j].d)
}

func (q *Queue) up(j int) {
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !q.less(j, i) {
			break
		}
		q.h[i], q.h[j] = q.h[j], q.h[i]
		j = i
	}
}

func (q *Queue) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q.less(j2, j1) {
			j = j2
		}
		if !q.less(j, i) {
			break
		}
		q.h[i], q.h[j] = q.h[j], q.h[i]
		i = j
	}
}

// Update records a new frequency for d. Call it after every change,
// including decreases; older entries become stale automatically.
func (q *Queue) Update(d Digram, count float64) {
	q.h = append(q.h, entry{count: count, d: d})
	q.up(len(q.h) - 1)
}

// pop removes and returns the best entry.
func (q *Queue) pop() entry {
	n := len(q.h) - 1
	q.h[0], q.h[n] = q.h[n], q.h[0]
	q.down(0, n)
	e := q.h[n]
	q.h = q.h[:n]
	return e
}

// PopBest returns the digram with the highest live frequency ≥ 2.
// live reports the current frequency of a digram (0 if gone). Entries
// whose recorded count differs from the live count are discarded.
// Returns ok=false when no digram with live frequency ≥ 2 remains.
func (q *Queue) PopBest(live func(Digram) float64) (Digram, float64, bool) {
	for len(q.h) > 0 {
		e := q.pop()
		cur := live(e.d)
		if cur != e.count {
			continue // stale
		}
		if cur < 2 {
			continue
		}
		return e.d, cur, true
	}
	return Digram{}, 0, false
}

// Len returns the number of (possibly stale) queued entries.
func (q *Queue) Len() int { return len(q.h) }

// Reset empties the queue.
func (q *Queue) Reset() { q.h = q.h[:0] }
