package digram

import "container/heap"

// Queue is a max-priority queue of digram frequencies with lazy
// invalidation: every frequency change pushes a fresh entry, and stale
// entries (whose recorded count no longer matches the live count supplied
// at pop time) are discarded. This is the standard trick for RePair-style
// compressors whose counts change by small deltas on every replacement.
//
// Frequencies are float64 because GrammarRePair weights generators by rule
// usage counts, which grow exponentially on highly compressible grammars.
// Ties are broken by lexicographic digram order so compression runs are
// deterministic.
type Queue struct {
	h entryHeap
}

type entry struct {
	count float64
	d     Digram
}

type entryHeap []entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count > h[j].count
	}
	return h[i].d.Less(h[j].d)
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(entry)) }
func (h *entryHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Update records a new frequency for d. Call it after every change,
// including decreases; older entries become stale automatically.
func (q *Queue) Update(d Digram, count float64) {
	heap.Push(&q.h, entry{count: count, d: d})
}

// PopBest returns the digram with the highest live frequency ≥ 2.
// live reports the current frequency of a digram (0 if gone). Entries
// whose recorded count differs from the live count are discarded.
// Returns ok=false when no digram with live frequency ≥ 2 remains.
func (q *Queue) PopBest(live func(Digram) float64) (Digram, float64, bool) {
	for q.h.Len() > 0 {
		e := heap.Pop(&q.h).(entry)
		cur := live(e.d)
		if cur != e.count {
			continue // stale
		}
		if cur < 2 {
			continue
		}
		return e.d, cur, true
	}
	return Digram{}, 0, false
}

// Len returns the number of (possibly stale) queued entries.
func (q *Queue) Len() int { return q.h.Len() }

// Reset empties the queue.
func (q *Queue) Reset() { q.h = q.h[:0] }
