// Package digram provides the digram model shared by TreeRePair and
// GrammarRePair: the digram triple (a, i, b) of Section II, the pattern
// tree t_X that a replacement rule's right-hand side takes, and a
// max-priority queue over digram frequencies with lazy invalidation.
package digram

import "repro/internal/xmltree"

// Digram is the triple (a, i, b): an edge from an a-labeled node to its
// i-th (1-based) b-labeled child. A and B are terminal IDs.
type Digram struct {
	A int32
	I int
	B int32
}

// Rank returns rank(α) = rank(a) + rank(b) − 1, the number of parameters
// of the replacement rule X → t_X.
func (d Digram) Rank(st *xmltree.SymbolTable) int {
	return st.Rank(d.A) + st.Rank(d.B) - 1
}

// EqualLabels reports whether the digram has a == b; only such digrams can
// have overlapping occurrences.
func (d Digram) EqualLabels() bool { return d.A == d.B }

// Less orders digrams lexicographically; used for deterministic
// tie-breaking when two digrams have the same frequency.
func (d Digram) Less(o Digram) bool {
	if d.A != o.A {
		return d.A < o.A
	}
	if d.I != o.I {
		return d.I < o.I
	}
	return d.B < o.B
}

// PatternRHS builds the pattern t_X representing the digram:
//
//	a(y1, ..., y_{i-1}, b(y_i, ..., y_{i+n-1}), y_{i+n}, ..., y_{m+n-1})
//
// with m = rank(a) and n = rank(b). Labels stay terminal symbols; callers
// that assemble a final grammar convert generated terminals to
// nonterminal calls.
func (d Digram) PatternRHS(st *xmltree.SymbolTable) *xmltree.Node {
	return d.PatternRHSIn(st, nil)
}

// PatternRHSIn is PatternRHS with the nodes allocated from the arena
// (nil arena = heap).
func (d Digram) PatternRHSIn(st *xmltree.SymbolTable, ar *xmltree.Arena) *xmltree.Node {
	m := st.Rank(d.A)
	n := st.Rank(d.B)
	a := ar.New(xmltree.Term(d.A))
	a.Children = ar.Children(m)
	p := 1
	for k := 0; k < m; k++ {
		if k == d.I-1 {
			b := ar.New(xmltree.Term(d.B))
			b.Children = ar.Children(n)
			for j := 0; j < n; j++ {
				b.Children[j] = ar.New(xmltree.Param(p))
				p++
			}
			a.Children[k] = b
		} else {
			a.Children[k] = ar.New(xmltree.Param(p))
			p++
		}
	}
	return a
}
