package digram

// This file implements the flat hashing substrate the compressor inner
// loops run on: a digram packed into a single machine word, and an
// open-addressed hash table keyed by that word. Compared with a Go
// map[Digram]V, the flat table avoids per-entry bucket allocations,
// hashes one uint64 instead of a 3-field struct, and supports O(capacity)
// Clear without returning memory to the GC.

// Key is a Digram packed into one uint64: A in the top 24 bits, I in the
// middle 16, B in the low 24. Because A is the most significant field and
// B the least, numeric Key order coincides with Digram.Less lexicographic
// order. Key 0 never encodes a real digram (I is 1-based), so 0 doubles
// as the table's empty-slot sentinel.
type Key uint64

const (
	keyBBits = 24
	keyIBits = 16
	keyIMax  = 1<<keyIBits - 1
	keyABMax = 1<<keyBBits - 1
)

// Key packs the digram. Symbol IDs must fit in 24 bits and the child
// index in 16; both bounds are far above anything the compressors
// generate (one fresh symbol per replacement round), and are checked so
// corruption cannot pass silently.
func (d Digram) Key() Key {
	if uint32(d.A) > keyABMax || uint32(d.B) > keyABMax || uint(d.I) > keyIMax {
		panic("digram: key field overflow")
	}
	return Key(uint64(d.A)<<(keyIBits+keyBBits) | uint64(d.I)<<keyBBits | uint64(d.B))
}

// Digram unpacks the key.
func (k Key) Digram() Digram {
	return Digram{
		A: int32(k >> (keyIBits + keyBBits)),
		I: int(uint64(k) >> keyBBits & keyIMax),
		B: int32(uint64(k) & keyABMax),
	}
}

// hash mixes the key into a table slot distribution (splitmix64 finisher;
// the multiplicative constants spread the packed bit fields well).
func (k Key) hash() uint64 {
	h := uint64(k)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Table is an open-addressed, linear-probing hash map from Key to V.
// There is no delete: compressor bookkeeping only ever zeroes values
// (counts that reach 0, occurrence lists that drain), so slots are
// reused by overwriting. Clear keeps the allocated capacity.
//
// The zero Table is ready to use.
type Table[V any] struct {
	keys []Key // len is a power of two; 0 = empty slot
	vals []V
	n    int // occupied slots
}

const tableMinCap = 16

// Len returns the number of occupied slots (including slots whose value
// has been zeroed by the caller).
func (t *Table[V]) Len() int { return t.n }

// Get returns the value stored for k (the zero V if absent).
func (t *Table[V]) Get(k Key) (V, bool) {
	if t.n == 0 {
		var zero V
		return zero, false
	}
	mask := uint64(len(t.keys) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			return t.vals[i], true
		case 0:
			var zero V
			return zero, false
		}
	}
}

// Ref returns a pointer to the value slot for k, inserting a zero V if
// absent. The pointer is invalidated by the next Ref or Put on the table
// (growth may move slots); use it immediately.
func (t *Table[V]) Ref(k Key) *V {
	if k == 0 {
		panic("digram: zero key")
	}
	if len(t.keys) == 0 || t.n >= len(t.keys)-len(t.keys)/4 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			return &t.vals[i]
		case 0:
			t.keys[i] = k
			t.n++
			return &t.vals[i]
		}
	}
}

// Put stores v for k.
func (t *Table[V]) Put(k Key, v V) { *t.Ref(k) = v }

// Range calls f for every occupied slot until f returns false. Iteration
// order is the (deterministic for a given insertion history) slot order;
// callers must not depend on it and must not mutate the table during
// iteration.
func (t *Table[V]) Range(f func(k Key, v *V) bool) {
	for i, k := range t.keys {
		if k != 0 {
			if !f(k, &t.vals[i]) {
				return
			}
		}
	}
}

// Clear removes every entry, keeping capacity.
func (t *Table[V]) Clear() {
	clear(t.keys)
	clear(t.vals)
	t.n = 0
}

func (t *Table[V]) grow() {
	newCap := tableMinCap
	if len(t.keys) > 0 {
		newCap = len(t.keys) * 2
	}
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]Key, newCap)
	t.vals = make([]V, newCap)
	mask := uint64(newCap - 1)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := k.hash() & mask
		for t.keys[j] != 0 {
			j = (j + 1) & mask
		}
		t.keys[j] = k
		t.vals[j] = oldVals[i]
	}
}
