package digram

import (
	"math/rand"
	"testing"
)

func TestKeyRoundTrip(t *testing.T) {
	cases := []Digram{
		{A: 1, I: 1, B: 0},
		{A: 0, I: 1, B: 1},
		{A: 5, I: 3, B: 7},
		{A: keyABMax, I: keyIMax, B: keyABMax},
	}
	for _, d := range cases {
		if got := d.Key().Digram(); got != d {
			t.Errorf("round trip %v -> %v", d, got)
		}
	}
}

func TestKeyOrderMatchesLess(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := Digram{A: rng.Int31n(500), I: 1 + rng.Intn(6), B: rng.Int31n(500)}
		b := Digram{A: rng.Int31n(500), I: 1 + rng.Intn(6), B: rng.Int31n(500)}
		if a.Less(b) != (a.Key() < b.Key()) {
			t.Fatalf("key order mismatch: %v vs %v", a, b)
		}
	}
}

func TestKeyOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Digram{A: keyABMax + 1, I: 1, B: 0}.Key()
}

func TestTableBasics(t *testing.T) {
	var tab Table[int]
	ref := make(map[Key]int)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		d := Digram{A: rng.Int31n(200), I: 1 + rng.Intn(4), B: rng.Int31n(200)}
		k := d.Key()
		*tab.Ref(k) += i
		ref[k] += i
	}
	if tab.Len() != len(ref) {
		t.Fatalf("len: got %d want %d", tab.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tab.Get(k)
		if !ok || got != v {
			t.Fatalf("get %v: got (%d,%v) want %d", k.Digram(), got, ok, v)
		}
	}
	if _, ok := tab.Get(Digram{A: 9999, I: 9, B: 9999}.Key()); ok {
		t.Fatal("phantom key present")
	}
	seen := 0
	tab.Range(func(k Key, v *int) bool {
		if *v != ref[k] {
			t.Fatalf("range %v: got %d want %d", k.Digram(), *v, ref[k])
		}
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("range visited %d of %d", seen, len(ref))
	}
	tab.Clear()
	if tab.Len() != 0 {
		t.Fatal("clear left entries")
	}
	if _, ok := tab.Get(Digram{A: 1, I: 1, B: 1}.Key()); ok {
		t.Fatal("entry survived clear")
	}
	// Capacity is retained: refilling must not grow.
	allocs := testing.AllocsPerRun(1, func() {
		for k := range ref {
			tab.Put(k, 1)
		}
		tab.Clear()
	})
	if allocs != 0 {
		t.Fatalf("refill after clear allocated %.0f times", allocs)
	}
}

// TestTableOpsAllocFree guards the compressor inner loop: once a table is
// warmed, lookups and in-place updates must not allocate.
func TestTableOpsAllocFree(t *testing.T) {
	var tab Table[float64]
	keys := make([]Key, 0, 512)
	for a := int32(1); a <= 32; a++ {
		for b := int32(1); b <= 16; b++ {
			k := Digram{A: a, I: 1, B: b}.Key()
			tab.Put(k, 1)
			keys = append(keys, k)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, k := range keys {
			*tab.Ref(k)++
			if _, ok := tab.Get(k); !ok {
				t.Fatal("key vanished")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("table ops allocated %.1f times per run", allocs)
	}
}
