package digram

import (
	"testing"

	"repro/internal/xmltree"
)

func TestRankAndPattern(t *testing.T) {
	st := xmltree.NewSymbolTable()
	a := st.InternElement("a") // rank 2
	b := st.InternElement("b") // rank 2
	d := Digram{A: a, I: 1, B: b}
	if d.Rank(st) != 3 {
		t.Fatalf("rank = %d, want 3", d.Rank(st))
	}
	// Pattern for (a,1,b): a(b(y1,y2), y3).
	p := d.PatternRHS(st)
	if got := p.Format(st); got != "a(b(y1,y2),y3)" {
		t.Fatalf("pattern = %s", got)
	}
	// Pattern for (a,2,b): a(y1, b(y2,y3)).
	d2 := Digram{A: a, I: 2, B: b}
	if got := d2.PatternRHS(st).Format(st); got != "a(y1,b(y2,y3))" {
		t.Fatalf("pattern = %s", got)
	}
}

func TestPatternWithBottom(t *testing.T) {
	st := xmltree.NewSymbolTable()
	a := st.InternElement("a")
	d := Digram{A: a, I: 1, B: xmltree.BottomID}
	if d.Rank(st) != 1 {
		t.Fatalf("rank = %d, want 1", d.Rank(st))
	}
	if got := d.PatternRHS(st).Format(st); got != "a(⊥,y1)" {
		t.Fatalf("pattern = %s", got)
	}
	if d.PatternRHS(st).MaxParam() != 1 {
		t.Fatal("pattern must have exactly one parameter")
	}
}

func TestPatternParameterLinearity(t *testing.T) {
	st := xmltree.NewSymbolTable()
	a := st.Intern("a", 3)
	b := st.Intern("b", 2)
	for i := 1; i <= 3; i++ {
		d := Digram{A: a, I: i, B: b}
		p := d.PatternRHS(st)
		if p.MaxParam() != 4 {
			t.Fatalf("pattern rank must be 4, got %d", p.MaxParam())
		}
		// Every parameter 1..4 exactly once, in preorder order.
		seen := 0
		ok := true
		p.Walk(func(n *xmltree.Node) bool {
			if n.Label.Kind == xmltree.Parameter {
				seen++
				if int(n.Label.ID) != seen {
					ok = false
				}
			}
			return true
		})
		if !ok || seen != 4 {
			t.Fatalf("pattern params broken at i=%d: %s", i, p)
		}
	}
}

func TestEqualLabelsAndLess(t *testing.T) {
	d1 := Digram{A: 1, I: 1, B: 1}
	d2 := Digram{A: 1, I: 1, B: 2}
	d3 := Digram{A: 1, I: 2, B: 1}
	if !d1.EqualLabels() || d2.EqualLabels() {
		t.Fatal("EqualLabels wrong")
	}
	if !d1.Less(d2) || !d1.Less(d3) || d2.Less(d1) {
		t.Fatal("Less ordering wrong")
	}
	if !d2.Less(d3) { // I compared before B
		t.Fatal("Less must order by A, then I, then B")
	}
}

func TestQueueBasic(t *testing.T) {
	var q Queue
	counts := map[Digram]float64{}
	set := func(d Digram, c float64) {
		counts[d] = c
		q.Update(d, c)
	}
	live := func(d Digram) float64 { return counts[d] }

	d1 := Digram{A: 1, I: 1, B: 2}
	d2 := Digram{A: 2, I: 1, B: 3}
	set(d1, 5)
	set(d2, 9)
	d, c, ok := q.PopBest(live)
	if !ok || d != d2 || c != 9 {
		t.Fatalf("best = %v/%v, want d2/9", d, c)
	}
	// d2's count changed after the entry was queued: stale entries skipped.
	set(d2, 9) // re-add
	counts[d2] = 3
	q.Update(d2, 3)
	d, c, ok = q.PopBest(live)
	if !ok || d != d1 || c != 5 {
		t.Fatalf("best = %v/%v, want d1/5", d, c)
	}
}

func TestQueueCountBelowTwo(t *testing.T) {
	var q Queue
	d := Digram{A: 1, I: 1, B: 2}
	q.Update(d, 1)
	if _, _, ok := q.PopBest(func(Digram) float64 { return 1 }); ok {
		t.Fatal("count 1 must never be selected")
	}
}

func TestQueueDeterministicTieBreak(t *testing.T) {
	var q Queue
	d1 := Digram{A: 2, I: 1, B: 2}
	d2 := Digram{A: 1, I: 1, B: 2}
	q.Update(d1, 4)
	q.Update(d2, 4)
	live := func(Digram) float64 { return 4 }
	d, _, ok := q.PopBest(live)
	if !ok || d != d2 {
		t.Fatalf("tie must break to lexicographically smaller digram, got %v", d)
	}
}

func TestQueueResetAndLen(t *testing.T) {
	var q Queue
	q.Update(Digram{A: 1, I: 1, B: 1}, 2)
	if q.Len() != 1 {
		t.Fatal("len wrong")
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("reset failed")
	}
}
