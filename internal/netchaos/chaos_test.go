package netchaos_test

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/grammar"
	"repro/internal/netchaos"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/workload"
)

// fixture builds docs pinned documents over the XM corpus with
// inverse-seeded update streams (the repo's standard differential
// recipe at test scale).
func fixture(t testing.TB, docs, ops int) (ids []string, seeds []*grammar.Grammar, streams [][]update.Op) {
	t.Helper()
	c, ok := datasets.ByShort("XM")
	if !ok {
		t.Fatal("no XM corpus")
	}
	for d := 0; d < docs; d++ {
		u := c.Generate(0.05, int64(5+d))
		seq, err := workload.Updates(u, ops, 90, int64(17+d))
		if err != nil {
			t.Fatal(err)
		}
		g, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
		ids = append(ids, fmt.Sprintf("doc-%02d", d))
		seeds = append(seeds, g)
		streams = append(streams, seq.Ops)
	}
	return ids, seeds, streams
}

func encoded(t testing.TB, g *grammar.Grammar) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := grammar.Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runChaosReplay replays the schedule through a chaos proxy with one
// RetryClient per document and returns the served fleet (still open),
// the proxy stats, and the retry stats summed over clients.
func runChaosReplay(t *testing.T, seed int64, ids []string, seeds []*grammar.Grammar,
	schedule []workload.FleetBatch) (*store.Sharded, netchaos.Stats, server.RetryStats) {
	t.Helper()
	ss := store.NewSharded(2, store.Config{Ratio: -1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Serve(ln, ss)
	t.Cleanup(func() { srv.Close() })
	for i, id := range ids {
		if _, err := ss.Open(id, seeds[i].Clone()); err != nil {
			t.Fatal(err)
		}
	}

	proxy, err := netchaos.NewProxy(srv.Addr().String(), netchaos.Config{
		Seed:         seed,
		Latency:      200 * time.Microsecond,
		StallEvery:   9,
		Stall:        2 * time.Millisecond,
		CutBytes:     600,
		CutBytesBack: 30,
		MaxCuts:      16,
		TearWrites:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	// Partition the schedule per document (order preserved): one
	// retrying client per document, replayed concurrently — per-doc
	// batch order is exactly what the sequence chain requires.
	parts := make([][]workload.FleetBatch, len(ids))
	for _, fb := range schedule {
		parts[fb.Doc] = append(parts[fb.Doc], fb)
	}
	var wg sync.WaitGroup
	errc := make(chan error, len(ids))
	var mu sync.Mutex
	var rstats server.RetryStats
	for d := range ids {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			rc, err := server.DialRetry(server.RetryConfig{
				Addr:    proxy.Addr(),
				Timeout: 5 * time.Second,
				Seed:    seed + int64(d),
			})
			if err != nil {
				errc <- err
				return
			}
			defer rc.Close()
			for _, fb := range parts[d] {
				if err := rc.Apply(ids[fb.Doc], fb.Ops); err != nil {
					errc <- fmt.Errorf("doc %s: %w", ids[fb.Doc], err)
					return
				}
			}
			st := rc.Stats()
			mu.Lock()
			rstats.Retries += st.Retries
			rstats.Reconnects += st.Reconnects
			rstats.Timeouts += st.Timeouts
			mu.Unlock()
		}(d)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	return ss, proxy.Stats(), rstats
}

// TestChaosDifferential is the harness's main theorem: a zipf fleet
// schedule pushed through a fault-injecting proxy — added latency,
// stalls, torn writes, and mid-frame resets — by exactly-once retrying
// clients must converge to the byte-identical state of a clean,
// directly driven replay, with every acked batch applied exactly once.
// At least one injected reset must land between apply and ack (a
// duplicate re-send the server dedups), or the run tries the next
// seed — chaos timing is seeded but scheduling-dependent.
func TestChaosDifferential(t *testing.T) {
	ids, seeds, streams := fixture(t, 3, 60)
	schedule := workload.ZipfFleet(streams, 8, 1.3, 42)

	// Clean reference: the same schedule applied directly.
	direct := store.NewSharded(2, store.Config{Ratio: -1})
	defer direct.Close()
	for i, id := range ids {
		if _, err := direct.Open(id, seeds[i].Clone()); err != nil {
			t.Fatal(err)
		}
	}
	for _, fb := range schedule {
		if err := direct.ApplyAll(ids[fb.Doc], fb.Ops); err != nil {
			t.Fatal(err)
		}
	}
	direct.Quiesce()
	want := make(map[string][]byte)
	for _, id := range ids {
		g, err := direct.Snapshot(id)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = encoded(t, g)
	}

	dupSeen := false
	for seed := int64(1); seed <= 5; seed++ {
		ss, cstats, rstats := runChaosReplay(t, seed, ids, seeds, schedule)
		ss.Quiesce()
		for _, id := range ids {
			g, err := ss.Snapshot(id)
			if err != nil {
				t.Fatal(err)
			}
			if got := encoded(t, g); !bytes.Equal(got, want[id]) {
				t.Fatalf("seed %d doc %s: chaos replay diverged from clean replay (%d vs %d bytes; %+v %+v)",
					seed, id, len(got), len(want[id]), cstats, rstats)
			}
		}
		ds := ss.Stats()
		if cstats.Cuts == 0 {
			t.Fatalf("seed %d: proxy injected no resets — the harness tested nothing", seed)
		}
		t.Logf("seed %d: cuts=%d stalls=%d tears=%d retries=%d reconnects=%d dup=%d",
			seed, cstats.Cuts, cstats.Stalls, cstats.Tears, rstats.Retries, rstats.Reconnects, ds.DupBatches)
		ss.Close()
		if ds.DupBatches >= 1 {
			// An ack was dropped after its batch applied, and the retry
			// was deduped — exactly-once, pinned under live faults.
			dupSeen = true
			break
		}
	}
	if !dupSeen {
		t.Fatal("no injected reset landed between apply and ack in 5 seeds; exactly-once path untested")
	}
}

// TestInjectorDeterminism pins the seeded schedule: two injectors with
// the same seed must cut the same connection at the same byte.
func TestInjectorDeterminism(t *testing.T) {
	cut := func(seed int64) (int, bool) {
		a, b := net.Pipe()
		defer b.Close()
		go func() { // drain the peer
			buf := make([]byte, 1<<12)
			for {
				if _, err := b.Read(buf); err != nil {
					return
				}
			}
		}()
		in := netchaos.New(netchaos.Config{Seed: seed, CutBytes: 512, MaxCuts: 1})
		c := in.Wrap(a)
		defer c.Close()
		total := 0
		for i := 0; i < 64; i++ {
			n, err := c.Write(make([]byte, 64))
			total += n
			if err != nil {
				return total, true
			}
		}
		return total, false
	}
	n1, cut1 := cut(7)
	n2, cut2 := cut(7)
	if !cut1 || !cut2 || n1 != n2 {
		t.Fatalf("same seed, different schedule: (%d,%v) vs (%d,%v)", n1, cut1, n2, cut2)
	}
	n3, cut3 := cut(8)
	if cut3 && n3 == n1 {
		t.Logf("distinct seeds produced the same cut point (possible, just unlikely): %d", n3)
	}
}
