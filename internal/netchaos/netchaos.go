// Package netchaos is the network fault-injection harness: net.Conn
// and net.Listener wrappers — and a TCP proxy built from them — that
// perturb traffic from a seeded schedule: added latency, write stalls,
// torn writes (one frame delivered as many small segments), and
// mid-frame connection resets on a byte budget. It is the network
// analogue of the write-ahead log's wal.Injector: the same repo-wide
// testing doctrine (differential replay under injected faults, byte
// convergence as the oracle) pointed at the serving path instead of
// the disk.
//
// Faults are injected on the WRITE side of a wrapped connection, which
// covers both directions of a proxied stream: the client→server pump
// tears and cuts requests (the server sees torn frames and resets
// mid-request), the server→client pump tears and cuts responses — and
// a response-side cut always lands between apply and ack, the exact
// window exactly-once retry exists for.
//
// Schedules are seeded: the same Config.Seed yields the same per-
// connection fault plan, modulo goroutine scheduling. MaxCuts bounds
// the total injected resets so a retrying workload always terminates.
package netchaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config is one injector's fault schedule.
type Config struct {
	// Seed derives every per-connection random schedule (0 is a valid,
	// fixed seed).
	Seed int64
	// Latency, when > 0, delays each write by a uniform duration in
	// [0, Latency].
	Latency time.Duration
	// StallEvery, when > 0, freezes every Nth write for Stall — the
	// slow-peer shape the server's deadlines exist to shed.
	StallEvery int
	// Stall is the freeze duration (default 50ms when StallEvery > 0).
	Stall time.Duration
	// CutBytes, when > 0, is the mean byte budget between injected
	// resets on one connection: once a connection has carried roughly
	// this many bytes, a write is truncated mid-buffer and the
	// connection closed — a torn frame on the wire, exactly like a
	// crashed peer or a dropped route.
	CutBytes int64
	// CutBytesBack, when > 0, is a separate budget for a Proxy's
	// response direction. Responses (acks) are an order of magnitude
	// smaller than requests, so without a smaller budget a reset would
	// almost never land in the apply-to-ack window — the window
	// exactly-once retry exists for. 0 uses CutBytes.
	CutBytesBack int64
	// MaxCuts caps the total resets across the injector (0 = no cuts).
	// Retrying clients make progress between cuts, so the cap bounds
	// the whole chaos run.
	MaxCuts int
	// TearWrites, when true, splits each write into several smaller
	// writes, so frame boundaries and segment boundaries decouple.
	TearWrites bool
}

// Stats counts what an Injector actually did.
type Stats struct {
	// Conns is how many connections were wrapped.
	Conns int64
	// Cuts is how many connections were reset mid-write.
	Cuts int64
	// Stalls, Tears, and Delays count the non-fatal perturbations.
	Stalls int64
	Tears  int64
	Delays int64
	// Bytes is the total payload carried through wrapped writes
	// (including the truncated prefixes of cut writes).
	Bytes int64
}

// Injector hands out chaos-wrapped connections sharing one seeded
// schedule and one global cut budget.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	next  int64 // per-connection seed counter
	cuts  int
	stats Stats
}

// New returns an Injector for cfg.
func New(cfg Config) *Injector {
	if cfg.StallEvery > 0 && cfg.Stall == 0 {
		cfg.Stall = 50 * time.Millisecond
	}
	return &Injector{cfg: cfg}
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// grantCut consumes one unit of the global cut budget; false once
// MaxCuts is exhausted (the connection then runs clean).
func (in *Injector) grantCut() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.MaxCuts <= 0 || in.cuts >= in.cfg.MaxCuts {
		return false
	}
	in.cuts++
	in.stats.Cuts++
	return true
}

// Wrap returns c with the injector's faults applied to its writes.
// Each wrapped connection gets its own rng stream derived from the
// seed, so schedules are reproducible per accept order.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	return in.wrapBudget(c, in.cfg.CutBytes)
}

// wrapBudget is Wrap with a per-connection cut budget (the proxy's
// response direction runs a smaller one).
func (in *Injector) wrapBudget(c net.Conn, cutBytes int64) net.Conn {
	in.mu.Lock()
	seed := in.cfg.Seed + 0x9e3779b9*in.next
	in.next++
	in.stats.Conns++
	in.mu.Unlock()
	cc := &conn{Conn: c, in: in, cutBytes: cutBytes, rng: rand.New(rand.NewSource(seed))}
	cc.armCut()
	return cc
}

// WrapListener returns ln with every accepted connection wrapped.
func (in *Injector) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Wrap(c), nil
}

// conn injects the schedule on writes. Reads pass through — in a
// proxied stream each direction is somebody's write side.
type conn struct {
	net.Conn
	in       *Injector
	rng      *rand.Rand
	cutBytes int64

	mu     sync.Mutex
	writes int64
	budget int64 // bytes until the next cut attempt; <0 = none armed
}

// armCut draws the byte budget to the next cut: uniform in
// [cutBytes/2, 3*cutBytes/2], so cuts neither synchronize across
// connections nor drift unboundedly late.
func (c *conn) armCut() {
	cb := c.cutBytes
	if cb <= 0 || c.in.cfg.MaxCuts <= 0 {
		c.budget = -1
		return
	}
	c.budget = cb/2 + c.rng.Int63n(cb+1)
}

// plan decides, under the connection mutex (the rng is not
// goroutine-safe), what this write suffers. tearAt are the split
// points of a torn write, strictly increasing, exclusive of 0 and n.
func (c *conn) plan(n int) (delay, stall time.Duration, cutAt int, tearAt []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg := &c.in.cfg
	c.writes++
	if cfg.Latency > 0 {
		delay = time.Duration(c.rng.Int63n(int64(cfg.Latency) + 1))
	}
	if cfg.StallEvery > 0 && c.writes%int64(cfg.StallEvery) == 0 {
		stall = cfg.Stall
	}
	cutAt = -1
	if c.budget >= 0 {
		if int64(n) >= c.budget {
			// The budget expires inside this write: cut mid-buffer —
			// mid-frame, when the buffer is a frame — if the global
			// budget still grants it.
			if c.in.grantCut() {
				cutAt = int(c.budget)
				if cutAt > n {
					cutAt = n
				}
			}
			c.armCut()
		} else {
			c.budget -= int64(n)
		}
	}
	if cfg.TearWrites && n > 1 {
		for i := 1 + c.rng.Intn(3); i > 0; i-- {
			at := 1 + c.rng.Intn(n-1)
			tearAt = append(tearAt, at)
		}
		sortInts(tearAt)
	}
	return delay, stall, cutAt, tearAt
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func (c *conn) bump(stalls, tears, delays, bytes int64) {
	c.in.mu.Lock()
	c.in.stats.Stalls += stalls
	c.in.stats.Tears += tears
	c.in.stats.Delays += delays
	c.in.stats.Bytes += bytes
	c.in.mu.Unlock()
}

func (c *conn) Write(b []byte) (int, error) {
	delay, stall, cutAt, tearAt := c.plan(len(b))
	var nStall, nTear, nDelay int64
	if delay > 0 {
		nDelay++
		time.Sleep(delay)
	}
	if stall > 0 {
		nStall++
		time.Sleep(stall)
	}
	if cutAt >= 0 {
		// Deliver a prefix, then reset: the peer sees a torn frame and
		// a dead connection — the injected fault exactly-once retry
		// must absorb.
		n, _ := c.Conn.Write(b[:cutAt])
		c.Conn.Close()
		c.bump(nStall, nTear, nDelay, int64(n))
		return n, fmt.Errorf("netchaos: injected reset after %d of %d bytes", n, len(b))
	}
	if len(tearAt) > 0 {
		nTear++
		written := 0
		for _, at := range append(tearAt, len(b)) {
			if at <= written {
				continue
			}
			n, err := c.Conn.Write(b[written:at])
			written += n
			if err != nil {
				c.bump(nStall, nTear, nDelay, int64(written))
				return written, err
			}
		}
		c.bump(nStall, nTear, nDelay, int64(written))
		return written, nil
	}
	n, err := c.Conn.Write(b)
	c.bump(nStall, nTear, nDelay, int64(n))
	return n, err
}
