package netchaos

import (
	"io"
	"net"
	"sync"
)

// Proxy is a chaos TCP proxy: it accepts connections on its own
// loopback listener, dials the target for each, and pumps bytes both
// ways through chaos-wrapped writers — so requests tear and reset on
// their way to the server, and responses (the acks exactly-once retry
// protects) tear and reset on their way back. Clients dial
// Proxy.Addr() instead of the server; everything else is unchanged.
type Proxy struct {
	ln     net.Listener
	target string
	inj    *Injector

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewProxy starts a chaos proxy in front of target (a TCP address)
// with cfg's fault schedule.
func NewProxy(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, inj: New(cfg), conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's dial target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats returns the injector's fault counters.
func (p *Proxy) Stats() Stats { return p.inj.Stats() }

// Close stops the proxy and severs every proxied connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return
		}
		sc, err := net.Dial("tcp", p.target)
		if err != nil {
			cc.Close()
			continue
		}
		if !p.track(cc) || !p.track(sc) {
			cc.Close()
			sc.Close()
			return
		}
		// Each direction is one pump writing through its own chaos
		// wrapper; a fault in either direction severs both ends, like a
		// real mid-path reset. The response direction cuts on its own
		// (smaller) budget so resets also land between apply and ack.
		back := p.inj.cfg.CutBytesBack
		if back <= 0 {
			back = p.inj.cfg.CutBytes
		}
		chaosToServer := p.inj.Wrap(sc)
		chaosToClient := p.inj.wrapBudget(cc, back)
		p.wg.Add(2)
		go p.pump(chaosToServer, cc, cc, sc)
		go p.pump(chaosToClient, sc, cc, sc)
	}
}

// pump copies src into the chaos-wrapped dst until either side dies,
// then severs the pair.
func (p *Proxy) pump(dst io.Writer, src net.Conn, cc, sc net.Conn) {
	defer p.wg.Done()
	io.Copy(dst, src) //nolint:errcheck — any error means the pair is done
	cc.Close()
	sc.Close()
	p.forget(cc)
	p.forget(sc)
}
