// FuzzFrameDecode locks in the wire decoder's hostile-network
// hardening, mirroring the WAL's FuzzWALDecode and the op codec's
// FuzzOpDecode: no byte stream a peer can send may panic the frame or
// request parsers, make them claim bytes they did not validate, or
// demand an allocation larger than the bound. A frame that does decode
// must re-frame into bytes that decode to the same payload, and the
// streaming decoder (what the server actually runs) must agree with
// the in-memory one byte for byte.
package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/update"
	"repro/internal/wal"
	"repro/internal/xmltree"
)

func FuzzFrameDecode(f *testing.F) {
	frame := func(payload []byte) []byte {
		b, err := AppendFrame(nil, payload)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	// Well-formed request frames of every type, so the fuzzer mutates
	// from real protocol bytes toward the edges.
	hdr := func(kind byte, doc string) []byte {
		p, err := appendRequestHeader(nil, kind, doc)
		if err != nil {
			f.Fatal(err)
		}
		return p
	}
	ops, err := update.AppendOps(hdr(reqApply, "doc-00"), []update.Op{
		{Kind: update.Rename, Pos: 3, Label: "item"},
		{Kind: update.Insert, Pos: 1, Frag: xmltree.NewUnranked("x", xmltree.NewUnranked("y"))},
		{Kind: update.Delete, Pos: 2},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame(ops))
	// A sequenced apply (the exactly-once retry stamp) and its edges:
	// a maximal in-range sequence, and the out-of-range one past it.
	f.Add(frame(binary.AppendUvarint(ops, 7)))
	f.Add(frame(binary.AppendUvarint(ops, wal.MaxBatchSeq)))
	f.Add(frame(binary.AppendUvarint(ops, wal.MaxBatchSeq+1)))
	f.Add(frame(binary.AppendUvarint(hdr(reqPointQuery, "doc-00"), 42)))
	f.Add(frame(appendWireString(hdr(reqCountLabel, "doc-00"), "item")))
	f.Add(frame(hdr(reqSnapshot, "doc-00")))
	f.Add(frame(hdr(reqLastSeq, "doc-00")))
	f.Add(frame([]byte{reqQuiesce}))
	f.Add(frame(append(hdr(reqOpen, "doc-00"), 0xde, 0xad)))
	// Response shapes: the drain GoAway and a watermark answer, so the
	// response parser fuzzes from real protocol bytes too.
	f.Add(frame([]byte{respGoAway}))
	f.Add(frame(binary.AppendUvarint([]byte{respSeq}, 42)))
	// Two frames back to back: exact-length consumption.
	f.Add(append(frame([]byte{reqQuiesce}), frame(hdr(reqSnapshot, "d"))...))
	// Edges: empty, torn length, lying length, flipped CRC.
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	bad := frame([]byte{reqQuiesce})
	bad[len(bad)-1] ^= 0xff
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		payload, n, err := DecodeFrame(data)

		// The streaming decoder must agree with the in-memory one: same
		// accept/reject verdict, same payload bytes.
		sPayload, _, sErr := readFrame(bufio.NewReader(bytes.NewReader(data)), nil)
		if (err == nil) != (sErr == nil) {
			t.Fatalf("decoders disagree: bytes err=%v, stream err=%v", err, sErr)
		}
		if err != nil {
			return
		}
		if !bytes.Equal(payload, sPayload) {
			t.Fatal("decoders returned different payloads")
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}

		// Re-framing the payload must reach a fixed point (non-minimal
		// length varints in the input may shorten, nothing else changes).
		enc, err := AppendFrame(nil, payload)
		if err != nil {
			t.Fatalf("decoded payload does not re-frame: %v", err)
		}
		p2, n2, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-framed payload does not decode: %v", err)
		}
		if n2 != len(enc) || !bytes.Equal(p2, payload) {
			t.Fatal("frame round trip changed the payload")
		}

		// The response parser shares the payload space: it too must
		// reject or fully validate, never panic, and a decoded error
		// must be the RemoteError application class.
		if _, _, rerr := parseResponse(payload); rerr != nil {
			var re *RemoteError
			if len(payload) > 0 && payload[0] == respErr && !errors.As(rerr, &re) {
				t.Fatalf("respErr decoded to a non-remote error: %v", rerr)
			}
		}

		// A frame-valid payload is still untrusted: the request parser
		// must reject or fully validate it, never panic. A request that
		// does decode must carry in-bounds fields.
		req, err := decodeRequest(payload)
		if err != nil {
			return
		}
		if len(req.doc) > maxDocIDLen {
			t.Fatalf("decoded doc ID of %d bytes", len(req.doc))
		}
		if req.kind == reqApply && (len(req.ops) == 0 || len(req.ops) > update.MaxBatchOps) {
			t.Fatalf("decoded apply with %d ops", len(req.ops))
		}
		// The sequence bound: a decoded request may never carry a
		// sequence the WAL would refuse to journal, and only an apply
		// may carry one at all.
		if req.seq > wal.MaxBatchSeq {
			t.Fatalf("decoded batch sequence %d past the bound", req.seq)
		}
		if req.kind != reqApply && req.seq != 0 {
			t.Fatalf("request 0x%02x decoded with a sequence", req.kind)
		}
		if req.kind == reqPointQuery && req.pre < 0 {
			t.Fatalf("decoded negative position %d", req.pre)
		}
	})
}
