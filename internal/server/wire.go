package server

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/update"
	"repro/internal/wal"
)

// Message types. Requests occupy the low half of the byte, responses
// the high half, so a stream captured in a trace is self-describing.
const (
	reqOpen       = 0x01 // doc string | encoded grammar (rest of payload)
	reqApply      = 0x02 // doc string | op batch | [seq uvarint, if > 0]
	reqPointQuery = 0x03 // doc string | pre uvarint
	reqCountLabel = 0x04 // doc string | label string
	reqSnapshot   = 0x05 // doc string
	reqQuiesce    = 0x06 // (empty body)
	reqLastSeq    = 0x07 // doc string

	respOK      = 0x80 // (empty body)
	respErr     = 0x81 // message string
	respLabel   = 0x82 // label string
	respCount   = 0x83 // float64 bits, LE uint64
	respGrammar = 0x84 // encoded grammar (rest of payload)
	respGoAway  = 0x85 // (empty body): server draining, reconnect elsewhere
	respSeq     = 0x86 // seq uvarint
)

// Wire bounds. Frames already cap total payload size; these cap the
// fields whose lengths a hostile peer declares independently.
const (
	// maxDocIDLen bounds a document ID on the wire. Real IDs are short
	// keys; a kilobyte-scale ID is hostile input, not a name.
	maxDocIDLen = 1 << 12
	// maxErrLen bounds an error message a client will accept (and a
	// server will send) — errors are diagnostics, not payloads.
	maxErrLen = 1 << 12
)

// request is one decoded client request. Fields beyond kind and doc are
// populated per kind; gram and ops alias the frame payload they were
// decoded from and are only valid until the next frame read.
type request struct {
	kind  byte
	doc   string
	ops   []update.Op // reqApply
	seq   uint64      // reqApply: client batch sequence, 0 = unsequenced
	pre   int64       // reqPointQuery
	label string      // reqCountLabel
	gram  []byte      // reqOpen: encoded grammar bytes
}

// decodeRequest parses a request payload. The payload passed the frame
// CRC, but the peer may still be hostile or version-skewed, so every
// field is bounded and trailing bytes are a defect. Any error closes
// the connection (see Server.handle) — a malformed request is never
// answered.
func decodeRequest(payload []byte) (request, error) {
	var req request
	if len(payload) == 0 {
		return req, fmt.Errorf("server: empty request payload")
	}
	req.kind = payload[0]
	body := payload[1:]
	if req.kind == reqQuiesce {
		if len(body) != 0 {
			return req, fmt.Errorf("server: %d trailing bytes after quiesce", len(body))
		}
		return req, nil
	}
	n := 0
	doc, err := readWireString(body, &n, maxDocIDLen)
	if err != nil {
		return req, fmt.Errorf("server: decode doc ID: %w", err)
	}
	req.doc = doc
	rest := body[n:]
	switch req.kind {
	case reqOpen:
		if len(rest) == 0 {
			return req, fmt.Errorf("server: open without grammar")
		}
		req.gram = rest
	case reqApply:
		ops, used, err := update.DecodeOps(rest)
		if err != nil {
			return req, fmt.Errorf("server: decode op batch: %w", err)
		}
		req.ops = ops
		if used != len(rest) {
			// Optional trailing batch sequence — the exactly-once retry
			// stamp. It must consume the rest exactly, and zero may not be
			// encoded (zero IS the absence of the field).
			sq, sw := binary.Uvarint(rest[used:])
			if sw <= 0 || used+sw != len(rest) {
				return req, fmt.Errorf("server: %d trailing bytes after op batch", len(rest)-used)
			}
			if sq == 0 || sq > wal.MaxBatchSeq {
				return req, fmt.Errorf("server: batch sequence %d out of range", sq)
			}
			req.seq = sq
		}
	case reqPointQuery:
		pre, w := binary.Uvarint(rest)
		if w <= 0 || pre > math.MaxInt64 {
			return req, fmt.Errorf("server: bad preorder position")
		}
		if w != len(rest) {
			return req, fmt.Errorf("server: %d trailing bytes after position", len(rest)-w)
		}
		req.pre = int64(pre)
	case reqCountLabel:
		m := 0
		label, err := readWireString(rest, &m, update.MaxOpLabel)
		if err != nil {
			return req, fmt.Errorf("server: decode label: %w", err)
		}
		if m != len(rest) {
			return req, fmt.Errorf("server: %d trailing bytes after label", len(rest)-m)
		}
		req.label = label
	case reqSnapshot, reqLastSeq:
		if len(rest) != 0 {
			return req, fmt.Errorf("server: %d trailing bytes after request", len(rest))
		}
	default:
		return req, fmt.Errorf("server: unknown request type 0x%02x", req.kind)
	}
	return req, nil
}

// appendRequestHeader starts a request payload: type byte plus the
// document ID every per-document request carries.
func appendRequestHeader(dst []byte, kind byte, doc string) ([]byte, error) {
	if len(doc) > maxDocIDLen {
		return dst, fmt.Errorf("server: document ID of %d bytes exceeds %d", len(doc), maxDocIDLen)
	}
	dst = append(dst, kind)
	return appendWireString(dst, doc), nil
}

func appendWireString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// readWireString decodes a length-prefixed string bounded by max —
// the bound is checked before the length is trusted for anything.
func readWireString(data []byte, n *int, max int) (string, error) {
	l, w := binary.Uvarint(data[*n:])
	if w <= 0 {
		return "", fmt.Errorf("truncated string length at offset %d", *n)
	}
	*n += w
	if l > uint64(max) {
		return "", fmt.Errorf("string of %d bytes exceeds %d", l, max)
	}
	if uint64(len(data)-*n) < l {
		return "", fmt.Errorf("truncated string at offset %d", *n)
	}
	s := string(data[*n : *n+int(l)])
	*n += int(l)
	return s, nil
}

// appendErrResponse encodes an application error, truncating the
// message to the wire bound (an error is a diagnostic, not a payload).
func appendErrResponse(dst []byte, err error) []byte {
	msg := err.Error()
	if len(msg) > maxErrLen {
		msg = msg[:maxErrLen]
	}
	dst = append(dst, respErr)
	return appendWireString(dst, msg)
}

// RemoteError is an application error reported by the server over a
// healthy connection (unknown document, invalid op position, sequence
// gap, oversize snapshot). It is the one error class that does NOT
// poison a Client: the connection keeps serving, and a retry layer must
// not blindly resend — the server already gave a definitive answer.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "server: remote: " + e.Msg }

// parseResponse splits a response payload into its type and body,
// surfacing respErr as a *RemoteError. The body aliases the payload.
func parseResponse(payload []byte) (kind byte, body []byte, err error) {
	if len(payload) == 0 {
		return 0, nil, fmt.Errorf("server: empty response payload")
	}
	kind, body = payload[0], payload[1:]
	if kind == respErr {
		n := 0
		msg, err := readWireString(body, &n, maxErrLen)
		if err != nil {
			return kind, nil, fmt.Errorf("server: decode error response: %w", err)
		}
		return kind, nil, &RemoteError{Msg: msg}
	}
	return kind, body, nil
}
