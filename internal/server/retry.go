package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/grammar"
	"repro/internal/update"
)

// RetryConfig tunes a RetryClient. The zero value of every field
// selects a sane default; only Addr is required.
type RetryConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Timeout is the per-call deadline on the underlying connection
	// (default 10s; negative disables). A call that exceeds it counts
	// as a transport fault: the connection is abandoned and the call
	// retried on a fresh one.
	Timeout time.Duration
	// MaxAttempts caps how many times one call may hit the wire,
	// including the first attempt (default 8; negative = unlimited —
	// only sensible when something else bounds the outage).
	MaxAttempts int
	// BackoffBase is the first reconnect delay (default 10ms); it
	// doubles per consecutive failure up to BackoffMax (default 1s),
	// with uniform jitter over the final interval so a fleet of
	// retrying clients does not thunder back in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed seeds the jitter (0 selects a fixed seed; tests that need
	// distinct schedules pass distinct seeds).
	Seed int64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	return c
}

// RetryStats counts a RetryClient's fault-handling work.
type RetryStats struct {
	// Retries is the number of re-sent calls (attempts beyond each
	// call's first).
	Retries int64
	// Reconnects is the number of connections established beyond the
	// first.
	Reconnects int64
	// Timeouts is the subset of transport faults that were deadline
	// expiries.
	Timeouts int64
}

// RetryClient wraps Client with fault tolerance: it reconnects through
// transport failures with exponentially backed-off, jittered redials,
// applies per-call deadlines, and stamps every Apply with a per-document
// sequence number so a batch retried after a lost ack is applied
// exactly once — the server acks the duplicate without re-applying.
//
// The sequence chain lives on the server (the store's durable
// watermark): a fresh RetryClient first asks for the current watermark
// and continues from it, so handoff across client restarts is safe as
// long as one writer owns a document at a time — the same single-writer
// ordering the underlying store requires anyway.
//
// Safe for concurrent use; calls serialize on the connection.
type RetryClient struct {
	cfg RetryConfig

	mu    sync.Mutex
	cl    *Client // nil between connections
	rng   *rand.Rand
	seq   map[string]uint64 // next sequence per document; absent = ask the server
	stats RetryStats
}

// DialRetry returns a RetryClient for addr-and-policy cfg. The first
// connection is established lazily, so DialRetry succeeds even while
// the server is still coming up (or draining); the first call pays the
// redial loop instead.
func DialRetry(cfg RetryConfig) (*RetryClient, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("server: DialRetry without an address")
	}
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &RetryClient{
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed)),
		seq: make(map[string]uint64),
	}, nil
}

// Stats returns the fault-handling counters so far.
func (rc *RetryClient) Stats() RetryStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.stats
}

// Close closes the current connection, if any. The RetryClient is
// dead afterwards only in the sense that nobody should call it; a
// call would just reconnect.
func (rc *RetryClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.cl == nil {
		return nil
	}
	err := rc.cl.Close()
	rc.cl = nil
	return err
}

// conn returns a healthy connection, dialing if necessary. Callers
// hold rc.mu.
func (rc *RetryClient) connLocked(attempt int) (*Client, error) {
	if rc.cl != nil {
		return rc.cl, nil
	}
	cl, err := Dial(rc.cfg.Addr)
	if err != nil {
		return nil, err
	}
	if rc.cfg.Timeout > 0 {
		cl.SetTimeout(rc.cfg.Timeout)
	}
	if attempt > 0 {
		rc.stats.Reconnects++
	}
	rc.cl = cl
	return cl, nil
}

// dropLocked abandons the current connection after a transport fault
// and classifies the fault for the counters.
func (rc *RetryClient) dropLocked(err error) {
	if rc.cl != nil {
		rc.cl.Close()
		rc.cl = nil
	}
	var ne interface{ Timeout() bool }
	if errors.As(err, &ne) && ne.Timeout() {
		rc.stats.Timeouts++
	}
}

// backoffLocked sleeps the jittered exponential delay for the given
// 0-based failure count. The lock is released while sleeping.
func (rc *RetryClient) backoffLocked(failures int) {
	d := rc.cfg.BackoffBase << uint(failures)
	if d <= 0 || d > rc.cfg.BackoffMax {
		d = rc.cfg.BackoffMax
	}
	// Full jitter: uniform in [d/2, d] — enough spread to decorrelate a
	// fleet, never less than half the intended pause.
	d = d/2 + time.Duration(rc.rng.Int63n(int64(d/2)+1))
	rc.mu.Unlock()
	time.Sleep(d)
	rc.mu.Lock()
}

// isRemote reports whether err is a definitive application answer from
// the server (never retried) rather than a transport fault.
func isRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// call runs fn against a live connection, retrying through transport
// faults with reconnect and backoff. fn must be idempotent (reads) or
// sequence-stamped (Apply). Remote errors return immediately.
func (rc *RetryClient) call(fn func(cl *Client) error) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var lastErr error
	for attempt := 0; rc.cfg.MaxAttempts < 0 || attempt < rc.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.stats.Retries++
			rc.backoffLocked(attempt - 1)
		}
		cl, err := rc.connLocked(attempt)
		if err != nil {
			lastErr = err
			continue
		}
		err = fn(cl)
		if err == nil || isRemote(err) {
			return err
		}
		lastErr = err
		rc.dropLocked(err)
	}
	return fmt.Errorf("server: %d attempts exhausted: %w", rc.cfg.MaxAttempts, lastErr)
}

// Open registers document id on the server (retrying through faults; a
// duplicate-open remote error after a retry means the first attempt
// landed and is reported as-is).
func (rc *RetryClient) Open(id string, g *grammar.Grammar) error {
	return rc.call(func(cl *Client) error { return cl.Open(id, g) })
}

// Apply sends one update batch for document id with exactly-once
// semantics: the batch is stamped with the next sequence in the
// document's chain, and a retry after a lost ack re-sends the same
// sequence — the server detects the duplicate and acks without
// re-applying. When Apply returns nil the batch has been applied
// exactly once; when it returns a remote error the server refused it
// definitively (and the local sequence cache resets, to be re-learned
// from the server's watermark).
func (rc *RetryClient) Apply(id string, ops []update.Op) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var lastErr error
	for attempt := 0; rc.cfg.MaxAttempts < 0 || attempt < rc.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.stats.Retries++
			rc.backoffLocked(attempt - 1)
		}
		cl, err := rc.connLocked(attempt)
		if err != nil {
			lastErr = err
			continue
		}
		seq, known := rc.seq[id]
		if !known {
			// New document for this client session: continue the chain
			// from the server's durable watermark instead of guessing.
			last, err := cl.LastSeq(id)
			if err != nil {
				if isRemote(err) {
					return err
				}
				lastErr = err
				rc.dropLocked(err)
				continue
			}
			seq = last + 1
		}
		err = cl.ApplySeq(id, ops, seq)
		if err == nil {
			rc.seq[id] = seq + 1
			return nil
		}
		if isRemote(err) {
			// A definitive refusal — but the server may have consumed the
			// sequence anyway (a batch that failed part-way through is
			// logged up to the failure, watermark included). Forget the
			// local chain; the next Apply re-learns it from the server.
			delete(rc.seq, id)
			return err
		}
		// Transport fault: the ack may be lost after the apply landed.
		// Pin the sequence and re-send it — the server dedups.
		rc.seq[id] = seq
		lastErr = err
		rc.dropLocked(err)
	}
	return fmt.Errorf("server: %d attempts exhausted: %w", rc.cfg.MaxAttempts, lastErr)
}

// PointQuery returns the label at preorder index pre of document id,
// retrying through transport faults (reads are idempotent).
func (rc *RetryClient) PointQuery(id string, pre int64) (string, error) {
	var out string
	err := rc.call(func(cl *Client) error {
		var err error
		out, err = cl.PointQuery(id, pre)
		return err
	})
	return out, err
}

// CountLabel returns the occurrence count of label in document id.
func (rc *RetryClient) CountLabel(id, label string) (float64, error) {
	var out float64
	err := rc.call(func(cl *Client) error {
		var err error
		out, err = cl.CountLabel(id, label)
		return err
	})
	return out, err
}

// SnapshotBytes returns document id's current published generation in
// the encoded grammar format.
func (rc *RetryClient) SnapshotBytes(id string) ([]byte, error) {
	var out []byte
	err := rc.call(func(cl *Client) error {
		var err error
		out, err = cl.SnapshotBytes(id)
		return err
	})
	return out, err
}

// Snapshot returns document id's current published generation as a
// decoded grammar.
func (rc *RetryClient) Snapshot(id string) (*grammar.Grammar, error) {
	var out *grammar.Grammar
	err := rc.call(func(cl *Client) error {
		var err error
		out, err = cl.Snapshot(id)
		return err
	})
	return out, err
}

// Quiesce blocks until the server's store has no asynchronous
// recompression in flight.
func (rc *RetryClient) Quiesce() error {
	return rc.call(func(cl *Client) error { return cl.Quiesce() })
}
