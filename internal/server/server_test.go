package server

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/datasets"
	"repro/internal/grammar"
	"repro/internal/store"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/wal"
	"repro/internal/workload"
)

const testBatch = 10

// session is one test document: seed grammar plus its update stream.
type session struct {
	id  string
	g   *grammar.Grammar
	ops []update.Op
}

// sessions builds docs distinct pinned documents over the XM corpus,
// each with an inverse-seeded update stream (the examples' fixture
// recipe, shrunk to test scale).
func sessions(t testing.TB, docs, ops int) []*session {
	t.Helper()
	c, ok := datasets.ByShort("XM")
	if !ok {
		t.Fatal("no XM corpus")
	}
	out := make([]*session, docs)
	for d := 0; d < docs; d++ {
		u := c.Generate(0.05, int64(3+d))
		seq, err := workload.Updates(u, ops, 90, int64(11+d))
		if err != nil {
			t.Fatal(err)
		}
		g, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
		out[d] = &session{id: fmt.Sprintf("doc-%02d", d), g: g, ops: seq.Ops}
	}
	return out
}

// serve starts a Server over a fresh in-memory fleet on a loopback
// listener and registers cleanup.
func serve(t testing.TB, ss *store.Sharded) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, ss)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dial(t testing.TB, srv *Server) *Client {
	t.Helper()
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func encodedGrammar(t testing.TB, g *grammar.Grammar) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := grammar.Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeDifferential is the end-to-end differential the network
// front-end must pass: the same multi-document op streams applied (a)
// through concurrent wire clients against a served fleet and (b)
// directly against a ShardedStore must leave byte-identical encoded
// grammars. Run under -race this also exercises the per-connection
// goroutines against the shard workers.
func TestServeDifferential(t *testing.T) {
	sess := sessions(t, 4, 60)

	ss := store.NewSharded(4, store.Config{Ratio: -1})
	defer ss.Close()
	srv := serve(t, ss)

	direct := store.NewSharded(4, store.Config{Ratio: -1})
	defer direct.Close()
	for _, s := range sess {
		if _, err := direct.Open(s.id, s.g.Clone()); err != nil {
			t.Fatal(err)
		}
	}

	// One client per document, opened and replayed concurrently: the
	// server must keep per-document batch order (one connection per doc)
	// while connections interleave freely.
	var wg sync.WaitGroup
	errc := make(chan error, len(sess))
	for _, s := range sess {
		wg.Add(1)
		go func(s *session) {
			defer wg.Done()
			cl, err := Dial(srv.Addr().String())
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			if err := cl.Open(s.id, s.g); err != nil {
				errc <- err
				return
			}
			for off := 0; off < len(s.ops); off += testBatch {
				end := min(off+testBatch, len(s.ops))
				if err := cl.Apply(s.id, s.ops[off:end]); err != nil {
					errc <- err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	for _, s := range sess {
		for off := 0; off < len(s.ops); off += testBatch {
			end := min(off+testBatch, len(s.ops))
			if err := direct.ApplyAll(s.id, s.ops[off:end]); err != nil {
				t.Fatal(err)
			}
		}
	}

	cl := dial(t, srv)
	if err := cl.Quiesce(); err != nil {
		t.Fatal(err)
	}
	direct.Quiesce()
	for _, s := range sess {
		got, err := cl.SnapshotBytes(s.id)
		if err != nil {
			t.Fatal(err)
		}
		dg, err := direct.Snapshot(s.id)
		if err != nil {
			t.Fatal(err)
		}
		if want := encodedGrammar(t, dg); !bytes.Equal(got, want) {
			t.Fatalf("doc %s: served snapshot differs from direct application (%d vs %d bytes)",
				s.id, len(got), len(want))
		}
	}
}

// TestServeReads pins the read surface: point queries and label counts
// over the wire must answer exactly what the store answers directly.
func TestServeReads(t *testing.T) {
	sess := sessions(t, 1, 40)
	s := sess[0]

	ss := store.NewSharded(2, store.Config{Ratio: -1})
	defer ss.Close()
	srv := serve(t, ss)
	cl := dial(t, srv)

	if err := cl.Open(s.id, s.g); err != nil {
		t.Fatal(err)
	}
	if err := cl.Apply(s.id, s.ops); err != nil {
		t.Fatal(err)
	}
	st, ok := ss.Get(s.id)
	if !ok {
		t.Fatal("document not in store")
	}
	n, err := st.TreeSize()
	if err != nil {
		t.Fatal(err)
	}
	for _, pre := range []int64{0, 1, n / 3, n / 2, n - 1} {
		got, err := cl.PointQuery(s.id, pre)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ss.PointQuery(s.id, pre)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("PointQuery(%d) over the wire = %q, direct = %q", pre, got, want)
		}
	}
	for _, label := range []string{"a", "item", "no-such-label"} {
		got, err := cl.CountLabel(s.id, label)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ss.CountLabel(s.id, label)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("CountLabel(%q) over the wire = %v, direct = %v", label, got, want)
		}
	}
}

// TestServeDurableKillReopen puts the server in front of a durable
// fleet: batches acked over the wire must survive closing the fleet
// and recovering it from disk, byte for byte.
func TestServeDurableKillReopen(t *testing.T) {
	sess := sessions(t, 2, 40)
	dir := t.TempDir()
	cfg := store.Config{Ratio: -1, Durability: &store.Durability{Dir: dir, Fsync: wal.FsyncBatch}}

	ss, err := store.OpenSharded(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve(t, ss)
	cl := dial(t, srv)
	want := make(map[string][]byte)
	for _, s := range sess {
		if err := cl.Open(s.id, s.g); err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(s.ops); off += testBatch {
			end := min(off+testBatch, len(s.ops))
			if err := cl.Apply(s.id, s.ops[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := cl.SnapshotBytes(s.id)
		if err != nil {
			t.Fatal(err)
		}
		want[s.id] = snap
	}

	// Kill: front-end down, fleet closed, then recovered from disk with
	// a fresh server in front.
	srv.Close()
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	ss2, err := store.OpenSharded(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ss2.Close()
	srv2 := serve(t, ss2)
	cl2 := dial(t, srv2)
	for _, s := range sess {
		got, err := cl2.SnapshotBytes(s.id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[s.id]) {
			t.Fatalf("doc %s: recovered snapshot differs from pre-kill snapshot (%d vs %d bytes)",
				s.id, len(got), len(want[s.id]))
		}
	}
}

// TestServeHostileBytes pins never-fail-open at the connection level:
// garbage, torn frames, and corrupted CRCs close the offending
// connection without a reply, and the server keeps serving others.
func TestServeHostileBytes(t *testing.T) {
	ss := store.NewSharded(1, store.Config{Ratio: -1})
	defer ss.Close()
	srv := serve(t, ss)

	hostile := [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),                             // not our protocol
		{0xff, 0xff, 0xff, 0xff, 0x7f},                               // frame length past the cap
		{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}, // unterminated length varint
	}
	valid, err := AppendFrame(nil, []byte{reqQuiesce})
	if err != nil {
		t.Fatal(err)
	}
	flipped := bytes.Clone(valid)
	flipped[len(flipped)-1] ^= 0x01
	hostile = append(hostile, flipped)
	unknown, err := AppendFrame(nil, []byte{0x7f})
	if err != nil {
		t.Fatal(err)
	}
	hostile = append(hostile, unknown)

	for i, payload := range hostile {
		c, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(payload); err != nil {
			t.Fatalf("hostile %d: write: %v", i, err)
		}
		// Half-close so a torn frame reads as EOF rather than blocking
		// the server on bytes that will never come. The server must then
		// close without replying: the read drains to EOF with zero
		// response bytes.
		if err := c.(*net.TCPConn).CloseWrite(); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		n, _ := c.Read(buf)
		if n != 0 {
			t.Fatalf("hostile %d: server replied %d bytes to a protocol defect", i, n)
		}
		c.Close()
	}

	// A well-behaved client right after the hostile parade: still served.
	cl := dial(t, srv)
	if err := cl.Quiesce(); err != nil {
		t.Fatalf("server stopped serving after hostile connections: %v", err)
	}
}

// TestServeAppErrors pins the split between protocol defects and
// application errors: an unknown document travels back as an error
// response and the connection keeps serving.
func TestServeAppErrors(t *testing.T) {
	sess := sessions(t, 1, 10)
	s := sess[0]
	ss := store.NewSharded(1, store.Config{Ratio: -1})
	defer ss.Close()
	srv := serve(t, ss)
	cl := dial(t, srv)

	if _, err := cl.PointQuery("no-such-doc", 0); err == nil {
		t.Fatal("point query on unknown document succeeded")
	} else if !strings.Contains(err.Error(), "remote") {
		t.Fatalf("expected a remote error, got %v", err)
	}
	if err := cl.Open(s.id, s.g); err != nil {
		t.Fatalf("connection unusable after app error: %v", err)
	}
	if err := cl.Open(s.id, s.g); err == nil {
		t.Fatal("double open succeeded")
	}
	if err := cl.Apply(s.id, s.ops); err != nil {
		t.Fatalf("connection unusable after app error: %v", err)
	}
}
