package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/grammar"
	"repro/internal/store"
)

// connBufSize sizes each connection's read and write buffers: large
// enough that a pipelined batch of small requests coalesces into one
// syscall each way.
const connBufSize = 64 << 10

// Default fault-tolerance knobs (see Config). The read/write deadlines
// are generous — they exist to shed wedged peers, not to police slow
// ones — and the in-flight cap is far above what the shard workers can
// absorb, so healthy traffic never notices either.
const (
	DefaultReadTimeout  = 30 * time.Second
	DefaultWriteTimeout = 30 * time.Second
	DefaultIdleTimeout  = 2 * time.Minute
	DefaultMaxInFlight  = 256
)

// maxResponsePayload bounds a single response payload. It equals
// MaxFramePayload in production; tests shrink it to reach the oversize
// path without building a 64 MiB grammar.
var maxResponsePayload = MaxFramePayload

// Config tunes the server's fault-tolerance behavior. The zero value
// selects the defaults above; a negative duration or count disables
// that limit entirely.
type Config struct {
	// ReadTimeout bounds reading one request frame once its first byte
	// has arrived. A peer that tears a frame and stalls mid-payload is
	// cut off — the connection closes, it never fails open.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing (and flushing) one response. A peer
	// that stops reading cannot wedge a connection goroutine forever.
	WriteTimeout time.Duration
	// IdleTimeout bounds the wait for the NEXT request's first byte.
	// Idle connections past it are closed; clients reconnect.
	IdleTimeout time.Duration
	// MaxInFlight caps concurrently dispatched requests across all
	// connections — backpressure: excess requests wait in the accept
	// order of their connection goroutines instead of piling onto the
	// store.
	MaxInFlight int
}

func (c Config) withDefaults() Config {
	if c.ReadTimeout == 0 {
		c.ReadTimeout = DefaultReadTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	return c
}

// Server serves a ShardedStore over a listener: one goroutine per
// accepted connection, requests dispatched in order per connection
// (writes to one document arrive in the order the client sent them),
// connections served independently of each other. Protocol defects —
// torn frames, bad CRCs, malformed requests — close the offending
// connection without a reply; application errors (unknown document,
// invalid op position, sequence gap) travel back as error responses
// and the connection keeps serving.
//
// The server is fault-tolerant by construction: per-connection read,
// write, and idle deadlines shed wedged peers (never failing open), a
// bounded in-flight cap backpressures bursts, and Drain performs a
// graceful handoff — stop accepting, tell idle clients to go away,
// let in-flight batches finish and flush, force-sync the WAL tails so
// every acked write is durable, then close.
type Server struct {
	ln  net.Listener
	ss  *store.Sharded
	cfg Config
	sem chan struct{} // in-flight cap, nil = unlimited

	mu       sync.Mutex
	conns    map[*srvConn]struct{}
	draining atomic.Bool
	wg       sync.WaitGroup
}

// srvConn is one accepted connection plus the state Drain coordinates
// with the connection goroutine: busy marks a request in flight (read
// begun, response not yet flushed), goAway marks the drain decision.
// The mutex guards both and serializes writes to bw, which Drain uses
// from outside the connection goroutine.
type srvConn struct {
	c  net.Conn
	bw *bufio.Writer

	mu     sync.Mutex
	busy   bool
	goAway bool
	frame  []byte // write-side frame scratch, guarded by mu
}

// sendGoAway writes the GoAway frame and flushes, best effort: the
// peer may already be gone, and either way the connection is about to
// close. Callers hold sc.mu.
func (sc *srvConn) sendGoAwayLocked(writeTimeout time.Duration) {
	if writeTimeout > 0 {
		sc.c.SetWriteDeadline(time.Now().Add(writeTimeout))
	}
	var err error
	sc.frame, err = writeFrame(sc.bw, sc.frame, []byte{respGoAway})
	if err == nil {
		sc.bw.Flush()
	}
}

// Serve starts serving ss on ln and returns immediately; the returned
// Server owns the listener. An optional Config tunes deadlines and the
// in-flight cap (zero values select defaults). Close stops accepting,
// closes every live connection, and waits for the per-connection
// goroutines to drain (it does not close ss — the store outlives its
// front-end).
func Serve(ln net.Listener, ss *store.Sharded, cfg ...Config) *Server {
	var c Config
	if len(cfg) > 0 {
		c = cfg[0]
	}
	c = c.withDefaults()
	s := &Server{ln: ln, ss: ss, cfg: c, conns: make(map[*srvConn]struct{})}
	if c.MaxInFlight > 0 {
		s.sem = make(chan struct{}, c.MaxInFlight)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address (the dial target, useful with
// a ":0" listener).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Drain gracefully stops the server: the listener closes (no new
// connections), every idle connection receives a GoAway frame and
// closes, and connections with a request in flight finish it, flush
// the response, then receive their GoAway and close. When the last
// connection has drained — or ctx expires, at which point the stragglers
// are force-closed — the store's WAL tails are force-synced, so every
// batch acked before Drain returned survives an immediate kill even
// under a relaxed fsync policy.
//
// Drain returns ctx.Err() if the grace period expired (some responses
// may not have flushed), else the WAL sync error, else nil. The
// ShardedStore stays open either way.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.ln.Close()

	// Snapshot the connection set, then decide per connection: idle ones
	// get GoAway and close here; busy ones get the flag and their own
	// goroutine finishes the in-flight request first.
	s.mu.Lock()
	conns := make([]*srvConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.mu.Lock()
		if !sc.goAway {
			sc.goAway = true
			if !sc.busy {
				sc.sendGoAwayLocked(s.cfg.WriteTimeout)
				sc.c.Close()
			}
		}
		sc.mu.Unlock()
	}

	drained := make(chan struct{})
	go func() { s.wg.Wait(); close(drained) }()
	var ctxErr error
	select {
	case <-drained:
	case <-ctx.Done():
		ctxErr = ctx.Err()
		// Grace expired: cut the stragglers. Their goroutines exit on
		// the next read or write against the dead connection.
		s.mu.Lock()
		for sc := range s.conns {
			sc.c.Close()
		}
		s.mu.Unlock()
		<-drained
	}

	// Every ack that made it onto the wire covers a batch the store has
	// applied and (on a durable fleet) appended; the sync pushes those
	// appends to stable storage regardless of the fsync policy.
	syncErr := s.ss.SyncWAL()
	if ctxErr != nil {
		return ctxErr
	}
	return syncErr
}

// Close stops the server immediately: a drain with zero grace. The
// listener closes, every live connection closes (in-flight requests
// are cut, but anything already acked is WAL-synced), and all
// per-connection goroutines finish before Close returns. The
// underlying ShardedStore is untouched.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Drain(ctx)
	if errors.Is(err, context.Canceled) {
		// Zero grace always "expires"; that is not a failure of Close.
		return nil
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			// The listener is dead (usually: Drain/Close). There is
			// nothing to retry — connections already accepted keep
			// draining.
			return
		}
		sc := &srvConn{c: c, bw: bufio.NewWriterSize(c, connBufSize)}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(sc)
	}
}

func (s *Server) forget(sc *srvConn) {
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
}

// handle serves one connection until EOF, a protocol defect, a
// deadline, or drain. Responses are flushed when the read side has no
// buffered input left: a synchronous client gets its reply
// immediately, a pipelining client's replies coalesce into one flush
// per burst — the network analogue of the store's batch-boundary
// bookkeeping.
func (s *Server) handle(sc *srvConn) {
	defer s.wg.Done()
	defer s.forget(sc)
	defer sc.c.Close()
	br := bufio.NewReaderSize(sc.c, connBufSize)
	var in, out []byte
	var snap bytes.Buffer
	for {
		// Wait for the next request's first byte under the idle
		// deadline; the connection is not busy until one arrives.
		if br.Buffered() == 0 {
			if s.cfg.IdleTimeout > 0 {
				sc.c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
			}
			if _, err := br.Peek(1); err != nil {
				return // EOF, idle timeout, or drain closed the conn
			}
		}
		sc.mu.Lock()
		if sc.goAway {
			// Drain raced the next request: flush any pipelined acks
			// still buffered, say goodbye, and stop. The request just
			// peeked (or still queued) is never begun — the client never
			// saw an ack for it, so its retry layer resends elsewhere.
			if s.cfg.WriteTimeout > 0 {
				sc.c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			sc.bw.Flush()
			sc.sendGoAwayLocked(s.cfg.WriteTimeout)
			sc.mu.Unlock()
			return
		}
		sc.busy = true
		sc.mu.Unlock()

		// The frame has begun: the rest of it must arrive under the
		// read deadline — a peer stalled mid-frame is shed, not waited
		// on forever.
		if s.cfg.ReadTimeout > 0 {
			sc.c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		payload, grown, err := readFrame(br, in)
		in = grown
		if err != nil {
			return // torn or hostile frame: close, never fail open
		}
		req, err := decodeRequest(payload)
		if err != nil {
			return // malformed request: protocol defect, not an app error
		}
		if s.sem != nil {
			s.sem <- struct{}{}
		}
		out = s.dispatch(req, out[:0], &snap)
		if s.sem != nil {
			<-s.sem
		}

		sc.mu.Lock()
		if s.cfg.WriteTimeout > 0 {
			sc.c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		sc.frame, err = writeFrame(sc.bw, sc.frame, out)
		if err != nil {
			sc.mu.Unlock()
			return
		}
		if br.Buffered() == 0 {
			if err := sc.bw.Flush(); err != nil {
				sc.mu.Unlock()
				return
			}
			if sc.goAway {
				// Drain arrived while this request was in flight. Its
				// response (the ack) is flushed — and the store work it
				// acks is done — so now say goodbye and close.
				sc.sendGoAwayLocked(s.cfg.WriteTimeout)
				sc.mu.Unlock()
				return
			}
			sc.busy = false
		}
		sc.mu.Unlock()
	}
}

// dispatch runs one request against the store and appends the response
// payload to dst. Application errors become respErr payloads; only
// transport problems terminate the connection, and those are the
// caller's business.
func (s *Server) dispatch(req request, dst []byte, snap *bytes.Buffer) []byte {
	switch req.kind {
	case reqOpen:
		g, err := grammar.Decode(bytes.NewReader(req.gram))
		if err != nil {
			return appendErrResponse(dst, err)
		}
		if _, err := s.ss.Open(req.doc, g); err != nil {
			return appendErrResponse(dst, err)
		}
		return append(dst, respOK)
	case reqApply:
		if err := s.ss.ApplyAllSeq(req.doc, req.ops, req.seq); err != nil {
			return appendErrResponse(dst, err)
		}
		return append(dst, respOK)
	case reqPointQuery:
		label, err := s.ss.PointQuery(req.doc, req.pre)
		if err != nil {
			return appendErrResponse(dst, err)
		}
		dst = append(dst, respLabel)
		return appendWireString(dst, label)
	case reqCountLabel:
		n, err := s.ss.CountLabel(req.doc, req.label)
		if err != nil {
			return appendErrResponse(dst, err)
		}
		dst = append(dst, respCount)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(n))
	case reqSnapshot:
		g, err := s.ss.Snapshot(req.doc)
		if err != nil {
			return appendErrResponse(dst, err)
		}
		snap.Reset()
		if err := grammar.Encode(snap, g); err != nil {
			return appendErrResponse(dst, err)
		}
		if snap.Len()+1 > maxResponsePayload {
			// A grammar too large for one frame is an application-level
			// refusal on a live connection, not a transport failure: the
			// client gets a definitive error and keeps its connection.
			return appendErrResponse(dst, errSnapshotTooLarge)
		}
		dst = append(dst, respGrammar)
		return append(dst, snap.Bytes()...)
	case reqLastSeq:
		seq, err := s.ss.LastSeq(req.doc)
		if err != nil {
			return appendErrResponse(dst, err)
		}
		dst = append(dst, respSeq)
		return binary.AppendUvarint(dst, seq)
	case reqQuiesce:
		s.ss.Quiesce()
		return append(dst, respOK)
	}
	// decodeRequest admits no other kind; an unreachable default still
	// must not fail open.
	return appendErrResponse(dst, errUnknownRequest)
}

var (
	errUnknownRequest   = errString("server: unknown request")
	errSnapshotTooLarge = errString("server: snapshot exceeds the frame payload bound")
)

type errString string

func (e errString) Error() string { return string(e) }
