package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/grammar"
	"repro/internal/store"
)

// connBufSize sizes each connection's read and write buffers: large
// enough that a pipelined batch of small requests coalesces into one
// syscall each way.
const connBufSize = 64 << 10

// Server serves a ShardedStore over a listener: one goroutine per
// accepted connection, requests dispatched in order per connection
// (writes to one document arrive in the order the client sent them),
// connections served independently of each other. Protocol defects —
// torn frames, bad CRCs, malformed requests — close the offending
// connection without a reply; application errors (unknown document,
// invalid op position) travel back as error responses and the
// connection keeps serving.
type Server struct {
	ln net.Listener
	ss *store.Sharded

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
}

// Serve starts serving ss on ln and returns immediately; the returned
// Server owns the listener. Close stops accepting, closes every live
// connection, and waits for the per-connection goroutines to drain (it
// does not close ss — the store outlives its front-end).
func Serve(ln net.Listener, ss *store.Sharded) *Server {
	s := &Server{ln: ln, ss: ss, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address (the dial target, useful with
// a ":0" listener).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server: the listener closes, every live connection
// closes, and all per-connection goroutines finish before Close
// returns. The underlying ShardedStore is untouched.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			// The listener is dead (usually: Close). There is nothing to
			// retry — connections already accepted keep draining.
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(c)
	}
}

func (s *Server) forget(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// handle serves one connection until EOF, a protocol defect, or server
// close. Responses are flushed when the read side has no buffered
// input left: a synchronous client gets its reply immediately, a
// pipelining client's replies coalesce into one flush per burst — the
// network analogue of the store's batch-boundary bookkeeping.
func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer s.forget(c)
	defer c.Close()
	br := bufio.NewReaderSize(c, connBufSize)
	bw := bufio.NewWriterSize(c, connBufSize)
	var in, out, frame []byte
	var snap bytes.Buffer
	for {
		payload, grown, err := readFrame(br, in)
		in = grown
		if err != nil {
			return // EOF or hostile frame: close, never fail open
		}
		req, err := decodeRequest(payload)
		if err != nil {
			return // malformed request: protocol defect, not an app error
		}
		out = s.dispatch(req, out[:0], &snap)
		frame, err = writeFrame(bw, frame, out)
		if err != nil {
			return
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// dispatch runs one request against the store and appends the response
// payload to dst. Application errors become respErr payloads; only
// transport problems terminate the connection, and those are the
// caller's business.
func (s *Server) dispatch(req request, dst []byte, snap *bytes.Buffer) []byte {
	switch req.kind {
	case reqOpen:
		g, err := grammar.Decode(bytes.NewReader(req.gram))
		if err != nil {
			return appendErrResponse(dst, err)
		}
		if _, err := s.ss.Open(req.doc, g); err != nil {
			return appendErrResponse(dst, err)
		}
		return append(dst, respOK)
	case reqApply:
		if err := s.ss.ApplyAll(req.doc, req.ops); err != nil {
			return appendErrResponse(dst, err)
		}
		return append(dst, respOK)
	case reqPointQuery:
		label, err := s.ss.PointQuery(req.doc, req.pre)
		if err != nil {
			return appendErrResponse(dst, err)
		}
		dst = append(dst, respLabel)
		return appendWireString(dst, label)
	case reqCountLabel:
		n, err := s.ss.CountLabel(req.doc, req.label)
		if err != nil {
			return appendErrResponse(dst, err)
		}
		dst = append(dst, respCount)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(n))
	case reqSnapshot:
		g, err := s.ss.Snapshot(req.doc)
		if err != nil {
			return appendErrResponse(dst, err)
		}
		snap.Reset()
		if err := grammar.Encode(snap, g); err != nil {
			return appendErrResponse(dst, err)
		}
		dst = append(dst, respGrammar)
		return append(dst, snap.Bytes()...)
	case reqQuiesce:
		s.ss.Quiesce()
		return append(dst, respOK)
	}
	// decodeRequest admits no other kind; an unreachable default still
	// must not fail open.
	return appendErrResponse(dst, errUnknownRequest)
}

var errUnknownRequest = errString("server: unknown request")

type errString string

func (e errString) Error() string { return string(e) }
