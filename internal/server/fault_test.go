package server

import (
	"bytes"
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/update"
	"repro/internal/wal"
)

// syncCounter is a pass-through wal.Injector that counts WAL fsyncs,
// so a test can prove Drain forced the sync a relaxed fsync policy
// would otherwise skip.
type syncCounter struct{ walSyncs atomic.Int64 }

func (s *syncCounter) Inject(file wal.FileKind, op wal.OpKind, p []byte) (int, error) {
	if op == wal.OpSync && file == wal.FileWAL {
		s.walSyncs.Add(1)
	}
	return len(p), nil
}

// TestDrainAckedWritesSurviveKill is the drain-then-kill-then-reopen
// pin: a durable fleet under FsyncOff (no fsync on the ack path at
// all) serves acked batches, Drain runs, the process "dies" (the fleet
// is abandoned without Close), and a reopen from disk must serve every
// acked batch byte for byte — because Drain force-synced the WAL
// tails, observed here via the injected sync counter.
func TestDrainAckedWritesSurviveKill(t *testing.T) {
	sess := sessions(t, 2, 40)
	dir := t.TempDir()
	inj := &syncCounter{}
	cfg := store.Config{Ratio: -1, Durability: &store.Durability{
		Dir: dir, Fsync: wal.FsyncOff, Injector: inj,
	}}

	ss, err := store.OpenSharded(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve(t, ss)
	cl := dial(t, srv)
	want := make(map[string][]byte)
	for _, s := range sess {
		if err := cl.Open(s.id, s.g); err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(s.ops); off += testBatch {
			end := min(off+testBatch, len(s.ops))
			if err := cl.Apply(s.id, s.ops[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := cl.SnapshotBytes(s.id)
		if err != nil {
			t.Fatal(err)
		}
		want[s.id] = snap
	}

	before := inj.walSyncs.Load()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := inj.walSyncs.Load(); got <= before {
		t.Fatalf("drain did not force a WAL sync (count %d before, %d after)", before, got)
	}

	// Kill: the fleet is abandoned without Close — nothing past Drain's
	// sync ever reaches disk. Reopen from the directory alone.
	ss2, err := store.OpenSharded(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ss2.Close()
	for _, s := range sess {
		g, err := ss2.Snapshot(s.id)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodedGrammar(t, g); !bytes.Equal(got, want[s.id]) {
			t.Fatalf("doc %s: reopened snapshot differs from acked pre-drain state (%d vs %d bytes)",
				s.id, len(got), len(want[s.id]))
		}
	}
}

// TestDrainGoAwayAndClientLatch pins the idle-connection drain path
// and the client's sticky-error latch: an idle client receives GoAway,
// its next call fails with ErrGoAway, and every call after that fails
// fast on the latched error without touching the wire.
func TestDrainGoAwayAndClientLatch(t *testing.T) {
	ss := store.NewSharded(1, store.Config{Ratio: -1})
	defer ss.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, ss)
	cl := dial(t, srv)
	if err := cl.Quiesce(); err != nil { // connection established and healthy
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The GoAway frame was flushed to this idle connection before it
	// closed: it is sitting in the receive buffer.
	kind, _, err := cl.roundTripRead(t)
	if err != nil || kind != respGoAway {
		t.Fatalf("idle connection did not receive GoAway: kind=0x%02x err=%v", kind, err)
	}
	// The next call hits the dead connection and latches (as GoAway or
	// as the reset, whichever the kernel surfaces first)...
	if err := cl.Quiesce(); err == nil {
		t.Fatal("call on a drained connection succeeded")
	}
	if cl.Err() == nil {
		t.Fatal("transport fault did not latch")
	}
	// ...and every call after that fails fast on the latch, without
	// touching the wire again.
	err = cl.Quiesce()
	if err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("fail-fast error does not name the latch: %v", err)
	}
}

// TestDrainFlushesInFlightAck pins the busy-connection drain path: a
// request whose first byte arrived before Drain is fully served — the
// ack flushes, then GoAway, then close — even though the rest of the
// frame arrives mid-drain.
func TestDrainFlushesInFlightAck(t *testing.T) {
	sess := sessions(t, 1, 10)
	s := sess[0]
	ss := store.NewSharded(1, store.Config{Ratio: -1})
	defer ss.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, ss)
	defer srv.Close()
	cl := dial(t, srv)
	if err := cl.Open(s.id, s.g); err != nil {
		t.Fatal(err)
	}

	// Hand-feed an Apply frame byte by byte: first byte before the
	// drain (the server marks the connection busy), the rest after the
	// drain has begun.
	payload, err := appendRequestHeader(nil, reqApply, s.id)
	if err != nil {
		t.Fatal(err)
	}
	payload, err = update.AppendOps(payload, s.ops)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := AppendFrame(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(frame[:1]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // server peeks the byte, marks busy

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	time.Sleep(100 * time.Millisecond) // drain sees the busy connection
	if _, err := c.Write(frame[1:]); err != nil {
		t.Fatalf("finishing the in-flight frame: %v", err)
	}

	// The ack must arrive, then GoAway, then EOF.
	rc := NewClient(c) // reuse the frame reader; ownership of c is shared with the defer above
	kind, _, err := rc.roundTripRead(t)
	if err != nil || kind != respOK {
		t.Fatalf("in-flight request not acked across drain: kind=0x%02x err=%v", kind, err)
	}
	kind, _, err = rc.roundTripRead(t)
	if err != nil || kind != respGoAway {
		t.Fatalf("no GoAway after the flushed ack: kind=0x%02x err=%v", kind, err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The acked batch is in the store.
	g, err := ss.Snapshot(s.id)
	if err != nil {
		t.Fatal(err)
	}
	direct := store.NewSharded(1, store.Config{Ratio: -1})
	defer direct.Close()
	if _, err := direct.Open(s.id, s.g.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := direct.ApplyAll(s.id, s.ops); err != nil {
		t.Fatal(err)
	}
	dg, err := direct.Snapshot(s.id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodedGrammar(t, g), encodedGrammar(t, dg)) {
		t.Fatal("batch acked across drain is not in the store")
	}
}

// roundTripRead reads one response frame off a raw client (test helper
// for hand-fed frames).
func (cl *Client) roundTripRead(t *testing.T) (byte, []byte, error) {
	t.Helper()
	payload, grown, err := readFrame(cl.br, cl.in)
	cl.in = grown
	if err != nil {
		return 0, nil, err
	}
	return parseResponse(payload)
}

// dropListener wraps a listener so the Nth write the server issues (on
// any accepted connection, counted globally) is swallowed and the
// connection reset — a deterministic ack drop landing exactly between
// apply and ack.
type dropListener struct {
	net.Listener
	ctr    *atomic.Int32
	dropAt int32
}

func (l *dropListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &dropConn{Conn: c, ctr: l.ctr, dropAt: l.dropAt}, nil
}

type dropConn struct {
	net.Conn
	ctr    *atomic.Int32
	dropAt int32
}

func (c *dropConn) Write(b []byte) (int, error) {
	if c.ctr.Add(1) == c.dropAt {
		c.Conn.Close()
		return 0, errors.New("injected ack drop")
	}
	return c.Conn.Write(b)
}

// TestRetryExactlyOnceAckDrop is the deterministic exactly-once pin:
// the server's write of one Apply ack is dropped AFTER the batch was
// applied, the RetryClient reconnects and re-sends the same sequence,
// and the server must dup-ack without re-applying — the final state
// matches a clean direct replay byte for byte, with exactly one
// duplicate counted.
func TestRetryExactlyOnceAckDrop(t *testing.T) {
	sess := sessions(t, 1, 60)
	s := sess[0]
	ss := store.NewSharded(1, store.Config{Ratio: -1})
	defer ss.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var writes atomic.Int32
	// Server writes on the retrying connection: #1 answers LastSeq,
	// #2 acks batch 1, #3 acks batch 2 — dropped, after the apply.
	srv := Serve(&dropListener{Listener: ln, ctr: &writes, dropAt: 3}, ss)
	defer srv.Close()

	cl := dial(t, srv) // a plain client for Open (write #0 territory is fine:
	// its own connection precedes the retrying one, so bump dropAt past it)
	writes.Store(-1) // discount Open's ack so the drop lands on the apply path
	if err := cl.Open(s.id, s.g); err != nil {
		t.Fatal(err)
	}

	rc, err := DialRetry(RetryConfig{Addr: srv.Addr().String(), Timeout: 5 * time.Second, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var batches int
	for off := 0; off < len(s.ops); off += testBatch {
		end := min(off+testBatch, len(s.ops))
		if err := rc.Apply(s.id, s.ops[off:end]); err != nil {
			t.Fatal(err)
		}
		batches++
	}

	st := rc.Stats()
	if st.Retries < 1 || st.Reconnects < 1 {
		t.Fatalf("drop did not force a retry: %+v", st)
	}
	ds := ss.Stats()
	if ds.DupBatches != 1 {
		t.Fatalf("DupBatches = %d, want exactly 1 (the dropped ack's re-send)", ds.DupBatches)
	}
	if seq, err := ss.LastSeq(s.id); err != nil || seq != uint64(batches) {
		t.Fatalf("watermark %d, %v; want %d", seq, err, batches)
	}

	direct := store.NewSharded(1, store.Config{Ratio: -1})
	defer direct.Close()
	if _, err := direct.Open(s.id, s.g.Clone()); err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(s.ops); off += testBatch {
		end := min(off+testBatch, len(s.ops))
		if err := direct.ApplyAll(s.id, s.ops[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	ss.Quiesce()
	direct.Quiesce()
	g, err := ss.Snapshot(s.id)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := direct.Snapshot(s.id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodedGrammar(t, g), encodedGrammar(t, dg)) {
		t.Fatal("state after ack-drop retry differs from clean replay (double apply?)")
	}
}

// TestCloseRacesInFlight pins Server.Close against live traffic: Close
// may cut connections mid-call (clients see transport errors, never
// wrong answers), every per-connection goroutine exits, and the
// ShardedStore stays open and fully usable.
func TestCloseRacesInFlight(t *testing.T) {
	sess := sessions(t, 2, 30)
	ss := store.NewSharded(2, store.Config{Ratio: -1})
	defer ss.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	srv := Serve(ln, ss)
	for _, s := range sess {
		if _, err := ss.Open(s.id, s.g.Clone()); err != nil {
			t.Fatal(err)
		}
	}

	// Hammer Apply and Snapshot from several connections while Close
	// lands mid-traffic. Errors are expected (cut connections); panics,
	// deadlocks, and goroutine leaks are not.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr().String())
			if err != nil {
				return
			}
			defer cl.Close()
			s := sess[w%len(sess)]
			for i := 0; ; i++ {
				off := (i * testBatch) % len(s.ops)
				end := min(off+testBatch, len(s.ops))
				if err := cl.Apply(s.id, s.ops[off:end]); err != nil {
					return
				}
				if _, err := cl.SnapshotBytes(s.id); err != nil {
					return
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()

	// Every server goroutine must be gone (poll: the runtime needs a
	// moment to reap exited goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after Close: %d > %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The store is untouched by the front-end's death: still open, still
	// serving.
	s := sess[0]
	if err := ss.ApplyAll(s.id, s.ops[:testBatch]); err != nil {
		t.Fatalf("store unusable after server Close: %v", err)
	}
	if _, err := ss.Snapshot(s.id); err != nil {
		t.Fatalf("store snapshot unusable after server Close: %v", err)
	}
}

// TestOversizeSnapshotIsAppError pins satellite behavior: a snapshot
// larger than one frame's payload bound comes back as an application
// error on a live connection — the connection is NOT torn down, and
// later calls on it keep working.
func TestOversizeSnapshotIsAppError(t *testing.T) {
	old := maxResponsePayload
	maxResponsePayload = 64 // far below any real grammar encoding
	defer func() { maxResponsePayload = old }()

	sess := sessions(t, 1, 10)
	s := sess[0]
	ss := store.NewSharded(1, store.Config{Ratio: -1})
	defer ss.Close()
	srv := serve(t, ss)
	cl := dial(t, srv)
	if err := cl.Open(s.id, s.g); err != nil {
		t.Fatal(err)
	}

	_, err := cl.SnapshotBytes(s.id)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("oversize snapshot returned %v, want a remote application error", err)
	}
	if !strings.Contains(err.Error(), "snapshot exceeds") {
		t.Fatalf("oversize error does not say why: %v", err)
	}
	// Same connection, still serving: the failure did not latch or close.
	if err := cl.Quiesce(); err != nil {
		t.Fatalf("connection dead after oversize snapshot error: %v", err)
	}
	if _, err := cl.CountLabel(s.id, "item"); err != nil {
		t.Fatalf("connection dead after oversize snapshot error: %v", err)
	}
}
