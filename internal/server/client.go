package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/grammar"
	"repro/internal/update"
)

// ErrGoAway reports that the server is draining: it answered (or
// interrupted) the connection with a GoAway frame. The connection is
// dead; reconnect — typically after the drain completes elsewhere —
// and resume. RetryClient does this automatically.
var ErrGoAway = errors.New("server: connection draining (go away)")

// Client is a synchronous connection to a Server: one request in
// flight at a time, responses matched by order. It is safe for
// concurrent use (calls serialize on the connection); for parallel
// load, open one Client per worker — that is what cmd/loadgen does.
//
// A Client latches the first transport-level failure (connection
// error, timeout, desynchronized or torn response, GoAway): the
// connection closes immediately and every later call fails fast with
// the same error, because after a transport fault the request/response
// pairing on the stream can no longer be trusted. Application errors
// (*RemoteError) do not latch — the stream stayed framed and healthy.
type Client struct {
	mu      sync.Mutex
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration // per-call deadline, 0 = none
	err     error         // sticky transport fault
	req     []byte        // request payload assembly
	out     []byte        // framed request bytes
	in      []byte        // response frame scratch
}

// Dial connects to a Server at addr (a TCP address).
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection (ownership transfers).
func NewClient(c net.Conn) *Client {
	return &Client{
		c:  c,
		br: bufio.NewReaderSize(c, connBufSize),
		bw: bufio.NewWriterSize(c, connBufSize),
	}
}

// SetTimeout sets the per-call deadline: each request/response round
// trip must complete within d or the call fails (and the failure
// latches — a timed-out connection may deliver the stale response
// later, so it cannot be reused). 0 disables.
func (cl *Client) SetTimeout(d time.Duration) {
	cl.mu.Lock()
	cl.timeout = d
	cl.mu.Unlock()
}

// Err returns the latched transport fault, nil while the connection is
// healthy.
func (cl *Client) Err() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.err
}

// Close closes the connection.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.err == nil {
		cl.err = errors.New("server: client closed")
	}
	return cl.c.Close()
}

// finish classifies err at the end of a call while holding cl.mu:
// application errors pass through (the connection keeps serving),
// anything else latches and closes the connection.
func (cl *Client) finish(err error) error {
	if err == nil {
		return nil
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return err
	}
	if cl.err == nil {
		cl.err = err
		cl.c.Close()
	}
	return err
}

// roundTrip frames and sends the payload in cl.req, then reads one
// response frame. The returned kind/body alias cl.in — callers copy
// what they keep, while still holding cl.mu. Transport faults latch
// here; the caller wraps its own error handling in cl.finish for the
// desync cases it detects (unexpected response types).
func (cl *Client) roundTrip() (kind byte, body []byte, err error) {
	if cl.err != nil {
		return 0, nil, fmt.Errorf("server: client unusable after: %w", cl.err)
	}
	if cl.timeout > 0 {
		cl.c.SetDeadline(time.Now().Add(cl.timeout))
	}
	var werr error
	cl.out, werr = writeFrame(cl.bw, cl.out, cl.req)
	if werr != nil {
		return 0, nil, cl.finish(werr)
	}
	if err := cl.bw.Flush(); err != nil {
		return 0, nil, cl.finish(err)
	}
	payload, grown, err := readFrame(cl.br, cl.in)
	cl.in = grown
	if err != nil {
		return 0, nil, cl.finish(err)
	}
	kind, body, err = parseResponse(payload)
	if kind == respGoAway {
		err = ErrGoAway
	}
	return kind, body, cl.finish(err)
}

// expect checks the response type; a mismatch means the stream is
// desynchronized, which is a latching fault.
func (cl *Client) expect(kind byte, want byte) error {
	if kind != want {
		return cl.finish(fmt.Errorf("server: unexpected response type 0x%02x (want 0x%02x)", kind, want))
	}
	return nil
}

// Open registers document id on the server, seeded with g (encoded on
// the wire with the grammar codec; the local g stays owned by the
// caller).
func (cl *Client) Open(id string, g *grammar.Grammar) error {
	var buf bytes.Buffer
	if err := grammar.Encode(&buf, g); err != nil {
		return err
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var err error
	cl.req, err = appendRequestHeader(cl.req[:0], reqOpen, id)
	if err != nil {
		return err
	}
	cl.req = append(cl.req, buf.Bytes()...)
	kind, _, err := cl.roundTrip()
	if err != nil {
		return err
	}
	return cl.expect(kind, respOK)
}

// Apply sends one update batch for document id and waits for the ack:
// when Apply returns nil, the batch has been applied (and, on a
// durable fleet, journaled per the store's fsync policy).
func (cl *Client) Apply(id string, ops []update.Op) error {
	return cl.ApplySeq(id, ops, 0)
}

// ApplySeq is Apply stamped with a client batch sequence (> 0): the
// server acks a batch it has already applied under the same sequence
// without re-applying it, so a retry after a lost ack is exactly-once.
// Sequences are per document and must increase by exactly 1 per new
// batch; a gap is refused. seq 0 sends an unsequenced Apply.
func (cl *Client) ApplySeq(id string, ops []update.Op, seq uint64) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var err error
	cl.req, err = appendRequestHeader(cl.req[:0], reqApply, id)
	if err != nil {
		return err
	}
	cl.req, err = update.AppendOps(cl.req, ops)
	if err != nil {
		return err
	}
	if seq > 0 {
		cl.req = binary.AppendUvarint(cl.req, seq)
	}
	kind, _, err := cl.roundTrip()
	if err != nil {
		return err
	}
	return cl.expect(kind, respOK)
}

// LastSeq returns the server's exactly-once watermark for document id:
// the sequence of the last applied sequenced batch (0 = none yet). A
// reconnecting client resumes its sequence chain from here.
func (cl *Client) LastSeq(id string) (uint64, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var err error
	cl.req, err = appendRequestHeader(cl.req[:0], reqLastSeq, id)
	if err != nil {
		return 0, err
	}
	kind, body, err := cl.roundTrip()
	if err != nil {
		return 0, err
	}
	if err := cl.expect(kind, respSeq); err != nil {
		return 0, err
	}
	seq, w := binary.Uvarint(body)
	if w <= 0 || w != len(body) {
		return 0, cl.finish(fmt.Errorf("server: bad sequence response"))
	}
	return seq, nil
}

// PointQuery returns the label at preorder index pre of document id.
func (cl *Client) PointQuery(id string, pre int64) (string, error) {
	if pre < 0 {
		return "", fmt.Errorf("server: negative preorder position %d", pre)
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var err error
	cl.req, err = appendRequestHeader(cl.req[:0], reqPointQuery, id)
	if err != nil {
		return "", err
	}
	cl.req = binary.AppendUvarint(cl.req, uint64(pre))
	kind, body, err := cl.roundTrip()
	if err != nil {
		return "", err
	}
	if err := cl.expect(kind, respLabel); err != nil {
		return "", err
	}
	n := 0
	label, err := readWireString(body, &n, update.MaxOpLabel)
	if err != nil {
		return "", cl.finish(fmt.Errorf("server: decode label response: %w", err))
	}
	return label, nil
}

// CountLabel returns the occurrence count of label in document id.
func (cl *Client) CountLabel(id, label string) (float64, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var err error
	cl.req, err = appendRequestHeader(cl.req[:0], reqCountLabel, id)
	if err != nil {
		return 0, err
	}
	cl.req = appendWireString(cl.req, label)
	kind, body, err := cl.roundTrip()
	if err != nil {
		return 0, err
	}
	if err := cl.expect(kind, respCount); err != nil {
		return 0, err
	}
	if len(body) != 8 {
		return 0, cl.finish(fmt.Errorf("server: count response of %d bytes", len(body)))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(body)), nil
}

// SnapshotBytes returns document id's current published generation in
// the encoded grammar format (a fresh copy, safe to keep).
func (cl *Client) SnapshotBytes(id string) ([]byte, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var err error
	cl.req, err = appendRequestHeader(cl.req[:0], reqSnapshot, id)
	if err != nil {
		return nil, err
	}
	kind, body, err := cl.roundTrip()
	if err != nil {
		return nil, err
	}
	if err := cl.expect(kind, respGrammar); err != nil {
		return nil, err
	}
	return append([]byte(nil), body...), nil
}

// Snapshot returns document id's current published generation as a
// decoded grammar.
func (cl *Client) Snapshot(id string) (*grammar.Grammar, error) {
	raw, err := cl.SnapshotBytes(id)
	if err != nil {
		return nil, err
	}
	return grammar.Decode(bytes.NewReader(raw))
}

// Quiesce blocks until the server's store has no asynchronous
// recompression in flight (see store.Sharded.Quiesce).
func (cl *Client) Quiesce() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.req = append(cl.req[:0], reqQuiesce)
	kind, _, err := cl.roundTrip()
	if err != nil {
		return err
	}
	return cl.expect(kind, respOK)
}
