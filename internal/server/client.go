package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"sync"

	"repro/internal/grammar"
	"repro/internal/update"
)

// Client is a synchronous connection to a Server: one request in
// flight at a time, responses matched by order. It is safe for
// concurrent use (calls serialize on the connection); for parallel
// load, open one Client per worker — that is what cmd/loadgen does.
type Client struct {
	mu  sync.Mutex
	c   net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	req []byte // request payload assembly
	out []byte // framed request bytes
	in  []byte // response frame scratch
}

// Dial connects to a Server at addr (a TCP address).
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection (ownership transfers).
func NewClient(c net.Conn) *Client {
	return &Client{
		c:  c,
		br: bufio.NewReaderSize(c, connBufSize),
		bw: bufio.NewWriterSize(c, connBufSize),
	}
}

// Close closes the connection.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.c.Close()
}

// roundTrip frames and sends the payload in cl.req, then reads one
// response frame. The returned kind/body alias cl.in — callers copy
// what they keep, while still holding cl.mu.
func (cl *Client) roundTrip() (kind byte, body []byte, err error) {
	var werr error
	cl.out, werr = writeFrame(cl.bw, cl.out, cl.req)
	if werr != nil {
		return 0, nil, werr
	}
	if err := cl.bw.Flush(); err != nil {
		return 0, nil, err
	}
	payload, grown, err := readFrame(cl.br, cl.in)
	cl.in = grown
	if err != nil {
		return 0, nil, err
	}
	return parseResponse(payload)
}

func (cl *Client) expect(kind byte, want byte) error {
	if kind != want {
		return fmt.Errorf("server: unexpected response type 0x%02x (want 0x%02x)", kind, want)
	}
	return nil
}

// Open registers document id on the server, seeded with g (encoded on
// the wire with the grammar codec; the local g stays owned by the
// caller).
func (cl *Client) Open(id string, g *grammar.Grammar) error {
	var buf bytes.Buffer
	if err := grammar.Encode(&buf, g); err != nil {
		return err
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var err error
	cl.req, err = appendRequestHeader(cl.req[:0], reqOpen, id)
	if err != nil {
		return err
	}
	cl.req = append(cl.req, buf.Bytes()...)
	kind, _, err := cl.roundTrip()
	if err != nil {
		return err
	}
	return cl.expect(kind, respOK)
}

// Apply sends one update batch for document id and waits for the ack:
// when Apply returns nil, the batch has been applied (and, on a
// durable fleet, journaled per the store's fsync policy).
func (cl *Client) Apply(id string, ops []update.Op) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var err error
	cl.req, err = appendRequestHeader(cl.req[:0], reqApply, id)
	if err != nil {
		return err
	}
	cl.req, err = update.AppendOps(cl.req, ops)
	if err != nil {
		return err
	}
	kind, _, err := cl.roundTrip()
	if err != nil {
		return err
	}
	return cl.expect(kind, respOK)
}

// PointQuery returns the label at preorder index pre of document id.
func (cl *Client) PointQuery(id string, pre int64) (string, error) {
	if pre < 0 {
		return "", fmt.Errorf("server: negative preorder position %d", pre)
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var err error
	cl.req, err = appendRequestHeader(cl.req[:0], reqPointQuery, id)
	if err != nil {
		return "", err
	}
	cl.req = binary.AppendUvarint(cl.req, uint64(pre))
	kind, body, err := cl.roundTrip()
	if err != nil {
		return "", err
	}
	if err := cl.expect(kind, respLabel); err != nil {
		return "", err
	}
	n := 0
	label, err := readWireString(body, &n, update.MaxOpLabel)
	if err != nil {
		return "", fmt.Errorf("server: decode label response: %w", err)
	}
	return label, nil
}

// CountLabel returns the occurrence count of label in document id.
func (cl *Client) CountLabel(id, label string) (float64, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var err error
	cl.req, err = appendRequestHeader(cl.req[:0], reqCountLabel, id)
	if err != nil {
		return 0, err
	}
	cl.req = appendWireString(cl.req, label)
	kind, body, err := cl.roundTrip()
	if err != nil {
		return 0, err
	}
	if err := cl.expect(kind, respCount); err != nil {
		return 0, err
	}
	if len(body) != 8 {
		return 0, fmt.Errorf("server: count response of %d bytes", len(body))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(body)), nil
}

// SnapshotBytes returns document id's current published generation in
// the encoded grammar format (a fresh copy, safe to keep).
func (cl *Client) SnapshotBytes(id string) ([]byte, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var err error
	cl.req, err = appendRequestHeader(cl.req[:0], reqSnapshot, id)
	if err != nil {
		return nil, err
	}
	kind, body, err := cl.roundTrip()
	if err != nil {
		return nil, err
	}
	if err := cl.expect(kind, respGrammar); err != nil {
		return nil, err
	}
	return append([]byte(nil), body...), nil
}

// Snapshot returns document id's current published generation as a
// decoded grammar.
func (cl *Client) Snapshot(id string) (*grammar.Grammar, error) {
	raw, err := cl.SnapshotBytes(id)
	if err != nil {
		return nil, err
	}
	return grammar.Decode(bytes.NewReader(raw))
}

// Quiesce blocks until the server's store has no asynchronous
// recompression in flight (see store.Sharded.Quiesce).
func (cl *Client) Quiesce() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.req = append(cl.req[:0], reqQuiesce)
	kind, _, err := cl.roundTrip()
	if err != nil {
		return err
	}
	return cl.expect(kind, respOK)
}
