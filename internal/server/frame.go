// Package server is the network serving front-end over a ShardedStore:
// a length-framed binary wire protocol carrying the existing update-op
// codec for writes and the grammar codec / point-query results for
// reads, over plain TCP. One frame is one request or one response:
//
//	frame := len uvarint | payload | crc32c(payload) LE uint32
//
// — the same CRC-framed record shape as the write-ahead log, so a batch
// accepted from the wire is byte-compatible with the batch the WAL
// journals. The payload is a one-byte message type followed by the
// type's body (see wire.go).
//
// The frame decoder treats the network as hostile, exactly like the WAL
// treats a file on disk: every declared length is clamped before it
// sizes an allocation, a bad CRC or torn frame is a protocol defect,
// and a connection that commits a protocol defect is closed — never
// answered, never resynchronized, never failed open.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxFramePayload bounds one frame's payload, matching the WAL's record
// cap: the two transports carry the same batch payloads, so they share
// one bound.
const MaxFramePayload = 1 << 26

// castagnoli is the CRC32C table every frame checksum uses (the WAL's).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends the framed encoding of payload to dst and returns
// the extended slice. Oversized payloads are rejected at encode time —
// they could never decode.
func AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxFramePayload {
		return dst, fmt.Errorf("server: frame payload of %d bytes exceeds %d", len(payload), MaxFramePayload)
	}
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return dst, nil
}

// DecodeFrame parses one frame from the front of data and returns its
// payload (aliasing data) and the bytes consumed. Any defect — torn
// length varint, length past MaxFramePayload, short payload or
// checksum, CRC mismatch — is an error, never a panic or an oversized
// allocation.
func DecodeFrame(data []byte) (payload []byte, n int, err error) {
	ln, w := binary.Uvarint(data)
	if w <= 0 {
		return nil, 0, fmt.Errorf("server: torn frame length")
	}
	if ln > MaxFramePayload {
		return nil, 0, fmt.Errorf("server: frame length %d exceeds %d", ln, MaxFramePayload)
	}
	body := w
	if uint64(len(data)-body) < ln+4 {
		return nil, 0, fmt.Errorf("server: short frame (%d of %d+4 bytes)", len(data)-body, ln)
	}
	payload = data[body : body+int(ln)]
	want := binary.LittleEndian.Uint32(data[body+int(ln):])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, fmt.Errorf("server: frame CRC mismatch (got %08x want %08x)", got, want)
	}
	return payload, body + int(ln) + 4, nil
}

// readFrame reads one frame from a stream into scratch (grown as
// needed) and returns the payload plus the possibly-regrown scratch for
// reuse. The length is validated before any allocation, so a hostile
// peer can never demand more memory than MaxFramePayload; every other
// defect matches DecodeFrame's.
func readFrame(br *bufio.Reader, scratch []byte) (payload, grown []byte, err error) {
	ln, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, scratch, err
	}
	if ln > MaxFramePayload {
		return nil, scratch, fmt.Errorf("server: frame length %d exceeds %d", ln, MaxFramePayload)
	}
	need := int(ln) + 4
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	scratch = scratch[:need]
	if _, err := io.ReadFull(br, scratch); err != nil {
		return nil, scratch, fmt.Errorf("server: short frame: %w", err)
	}
	payload = scratch[:ln]
	want := binary.LittleEndian.Uint32(scratch[ln:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, scratch, fmt.Errorf("server: frame CRC mismatch (got %08x want %08x)", got, want)
	}
	return payload, scratch, nil
}

// writeFrame frames payload into scratch and writes it to bw as one
// Write call, returning the reusable scratch.
func writeFrame(bw *bufio.Writer, scratch, payload []byte) ([]byte, error) {
	scratch, err := AppendFrame(scratch[:0], payload)
	if err != nil {
		return scratch, err
	}
	_, err = bw.Write(scratch)
	return scratch, err
}
