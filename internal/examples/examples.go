// Package examples holds the scaffolding shared by the runnable
// examples: the multi-document serving flags and the per-document
// corpus-session construction that domsession and weblogstream
// previously hand-rolled separately. It exists so the -shards/-docs
// surface lives in exactly one place.
package examples

import (
	"flag"
	"fmt"

	sltgrammar "repro"
	"repro/internal/datasets"
	"repro/internal/workload"
)

// Serve is the shared multi-document serving configuration of the
// examples. Docs = 1 keeps an example in its classic single-document
// narrative; Docs > 1 serves the documents through a ShardedStore with
// Shards shards.
type Serve struct {
	Shards int
	Docs   int
	Ops    int
	Seed   int64
	// WALDir, when non-empty, serves the fleet durably: per-document
	// write-ahead logs and grammar snapshots under this directory, and a
	// kill-and-reopen audit at the end of the run.
	WALDir string
	// MemBudget, when > 0, caps the fleet's resident bytes: cold
	// documents evict to their encoded form (or, durably, to disk) and
	// rehydrate on their next access.
	MemBudget int64
}

// ServeFlags registers the shared -shards/-docs/-ops/-seed flags with
// the given per-example defaults. Call Parse before reading the fields.
func ServeFlags(defaultOps int, defaultSeed int64) *Serve {
	s := &Serve{}
	flag.IntVar(&s.Shards, "shards", 1, "shard count of the multi-document store")
	flag.IntVar(&s.Docs, "docs", 1, "documents to serve (1 = single-document mode)")
	flag.IntVar(&s.Ops, "ops", defaultOps, "update operations per document")
	flag.Int64Var(&s.Seed, "seed", defaultSeed, "base RNG seed (document d varies it by d)")
	flag.StringVar(&s.WALDir, "wal", "", "serve durably: WAL + snapshot directory (must be fresh; empty = in-memory)")
	flag.Int64Var(&s.MemBudget, "membudget", 0, "resident-bytes budget of the fleet: cold documents evict (0 = unbounded)")
	return s
}

// Parse finishes flag parsing and clamps the values to sane minima.
func (s *Serve) Parse() {
	flag.Parse()
	if s.Shards < 1 {
		s.Shards = 1
	}
	if s.Docs < 1 {
		s.Docs = 1
	}
	if s.Ops < 1 {
		s.Ops = 1
	}
}

// DocID names document d consistently across the examples.
func DocID(d int) string { return fmt.Sprintf("doc-%02d", d) }

// storeConfig wires the -wal and -membudget flags into a StoreConfig.
func (s *Serve) storeConfig(cfg sltgrammar.StoreConfig) sltgrammar.StoreConfig {
	if s.WALDir != "" {
		cfg.Durability = &sltgrammar.Durability{Dir: s.WALDir, Fsync: sltgrammar.FsyncBatch}
	}
	if s.MemBudget > 0 {
		cfg.MemoryBudget = s.MemBudget
	}
	return cfg
}

// OpenStore opens the fleet the flags describe: in-memory when -wal is
// empty, durable otherwise (documents Opened afterwards are created
// under WALDir; any documents already on disk are recovered).
func (s *Serve) OpenStore(cfg sltgrammar.StoreConfig) (*sltgrammar.ShardedStore, error) {
	cfg = s.storeConfig(cfg)
	if cfg.Durability == nil {
		return sltgrammar.NewShardedStore(s.Shards, cfg), nil
	}
	return sltgrammar.OpenShardedStore(s.Shards, cfg)
}

// Reopen closes a durable fleet (audited — see CloseFleet) and
// recovers it from disk: the kill-and-reopen audit the -wal examples
// end with. The returned fleet holds exactly the state the closed one
// acked.
func (s *Serve) Reopen(ss *sltgrammar.ShardedStore, cfg sltgrammar.StoreConfig) (*sltgrammar.ShardedStore, error) {
	if err := CloseFleet(ss); err != nil {
		return nil, err
	}
	return sltgrammar.OpenShardedStore(s.Shards, s.storeConfig(cfg))
}

// CloseFleet closes a fleet and prints its durability summary line
// with the close outcome folded in. On a durable fleet, Close is the
// final fsync of every WAL tail — an error here means state the run
// already acked may never have reached disk, so callers must treat
// the returned error as a run failure (exit non-zero), not a cleanup
// detail to defer-and-forget.
func CloseFleet(ss *sltgrammar.ShardedStore) error {
	agg := ss.Stats()
	cerr := ss.Close()
	line := DurabilityLine(agg)
	if cerr != nil {
		if line == "" {
			line = fmt.Sprintf("durability: close failed: %v", cerr)
		} else {
			line += fmt.Sprintf("; close failed: %v", cerr)
		}
	}
	if line != "" {
		fmt.Println(line)
	}
	if cerr != nil {
		return fmt.Errorf("examples: fleet close: %w", cerr)
	}
	return nil
}

// DurabilityLine formats a durable fleet's WAL counters; "" for an
// in-memory fleet.
func DurabilityLine(agg sltgrammar.ShardedStats) string {
	if agg.WALAppends == 0 && agg.RecoveredOps == 0 {
		return ""
	}
	line := fmt.Sprintf("durability: %d WAL appends (%.1f KB, %d fsyncs, %.2fms), %d snapshots",
		agg.WALAppends, float64(agg.WALBytes)/1024, agg.WALSyncs,
		float64(agg.FsyncNanos)/1e6, agg.Snapshots)
	if agg.RecoveredOps > 0 || agg.TruncatedTailRecords > 0 || agg.SnapshotsCorrupt > 0 {
		line += fmt.Sprintf("; recovered %d ops from WAL tails (%d torn records dropped, %d corrupt snapshots skipped)",
			agg.RecoveredOps, agg.TruncatedTailRecords, agg.SnapshotsCorrupt)
	}
	return line
}

// ResidencyLine formats a memory-tiered fleet's residency counters; ""
// for a fleet the tier never touched (unbounded, or budget never
// exceeded).
func ResidencyLine(agg sltgrammar.ShardedStats) string {
	if agg.Evicted == 0 && agg.Evictions == 0 && agg.Hydrations == 0 {
		return ""
	}
	return fmt.Sprintf("residency: %d resident / %d evicted (%.1f KB resident), %d evictions, %d rehydrations",
		agg.Resident, agg.Evicted, float64(agg.ResidentBytes)/1024,
		agg.Evictions, agg.Hydrations)
}

// Session is one document's serving input: its compressed seed grammar,
// the update stream replaying it toward the target document, and the
// target's element count for the convergence check at the end.
type Session struct {
	ID         string
	Grammar    *sltgrammar.Grammar
	Ops        []sltgrammar.Op
	FinalNodes int
}

// CorpusSessions builds n per-document sessions over the named corpus:
// document d is generated at the given scale with seed seed+d and
// replayed by an inverse-seeded workload (insertPct percent inserts,
// workload seed derived per document), so every document is distinct
// but the whole fleet is reproducible from one seed.
func CorpusSessions(short string, scale float64, n, ops, insertPct int, seed int64) ([]*Session, error) {
	c, ok := datasets.ByShort(short)
	if !ok {
		return nil, fmt.Errorf("examples: unknown corpus %q", short)
	}
	out := make([]*Session, n)
	for d := 0; d < n; d++ {
		u := c.Generate(scale, seed+int64(d))
		seq, err := workload.Updates(u, ops, insertPct, seed+int64(1000+d))
		if err != nil {
			return nil, fmt.Errorf("examples: workload for doc %d: %w", d, err)
		}
		g, _ := sltgrammar.Compress(seq.Seed)
		out[d] = &Session{
			ID:         DocID(d),
			Grammar:    g,
			Ops:        seq.Ops,
			FinalNodes: u.Nodes(),
		}
	}
	return out, nil
}

// Append inserts frag after the last element of document id's root
// child list: the final ⊥ of the derived tree is its last preorder
// node, found in O(1) from the store's cached size vectors.
func Append(ss *sltgrammar.ShardedStore, id string, frag *sltgrammar.Unranked) error {
	st, ok := ss.Get(id)
	if !ok {
		return fmt.Errorf("examples: unknown document %q", id)
	}
	n, err := st.TreeSize()
	if err != nil {
		return err
	}
	return ss.Apply(id, sltgrammar.InsertOp(n-1, frag))
}
