package navigate

import (
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// degradedCorpus returns a corpus grammar degraded by the pinned update
// stream (post-update, pre-recompression) together with the warm cache
// that applied it — the cache owns the spine index the read-side view
// snapshots.
func degradedCorpus(t testing.TB, short string) (*grammar.Grammar, *update.Cache) {
	t.Helper()
	c, ok := datasets.ByShort(short)
	if !ok {
		t.Fatalf("unknown corpus %q", short)
	}
	u := c.Generate(0.02, 1)
	seq, err := workload.Updates(u, 120, 90, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
	cache := &update.Cache{}
	for _, op := range seq.Ops {
		if _, err := update.ApplyCached(g, op, cache); err != nil {
			t.Fatal(err)
		}
	}
	return g, cache
}

// TestSeekPreorderMatchesExpand is the read-descent differential over
// every corpus: on a degraded grammar, the indexed seek (size vectors +
// frozen spine view) and the naive seek (size vectors only) must land
// on the same terminal node — pointer-identical, since both cursors
// read the same grammar — and that node must match the expanded
// document's preorder ground truth at every position.
func TestSeekPreorderMatchesExpand(t *testing.T) {
	for _, short := range []string{"EW", "XM", "TB"} {
		t.Run(short, func(t *testing.T) {
			g, cache := degradedCorpus(t, short)
			sizes := cache.Peek()
			if sizes == nil {
				t.Fatal("cache cold after the update stream")
			}
			view := cache.SpineView()
			want, err := g.Expand(0)
			if err != nil {
				t.Fatal(err)
			}
			ci, err := NewCursor(g)
			if err != nil {
				t.Fatal(err)
			}
			ci.AttachIndex(sizes, view)
			cn, err := NewCursor(g)
			if err != nil {
				t.Fatal(err)
			}
			cn.AttachIndex(sizes, nil)
			total := sizes.Get(g.Start).Total
			for p := int64(0); p < total; p++ {
				if err := ci.SeekPreorder(p); err != nil {
					t.Fatalf("indexed seek(%d): %v", p, err)
				}
				if err := cn.SeekPreorder(p); err != nil {
					t.Fatalf("naive seek(%d): %v", p, err)
				}
				if ci.node != cn.node {
					t.Fatalf("p=%d: indexed and naive descents landed on different nodes", p)
				}
				if wn := want.PreorderIndex(int(p)); ci.node.Label != wn.Label {
					t.Fatalf("p=%d: label %v, want %v", p, ci.node.Label, wn.Label)
				}
			}
			if view != nil && ci.Stats().Jumps == 0 {
				t.Fatal("indexed cursor never used the view")
			}
			if cn.Stats().Jumps != 0 {
				t.Fatal("naive cursor took indexed jumps")
			}
		})
	}
}

// TestSeekPreorderExponential pins the tail-call arithmetic: on an
// exponentially compressing list grammar, every position must seek
// correctly through the Seg/argument descent without unfolding anything
// (the grammar stays frozen-sized).
func TestSeekPreorderExponential(t *testing.T) {
	root := xmltree.NewUnranked("r")
	for i := 0; i < 4096; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("a"))
	}
	g, _ := treerepair.Compress(root.Binary(), treerepair.Options{})
	sizes, err := g.ValSizes()
	if err != nil {
		t.Fatal(err)
	}
	before := g.Size()
	want, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCursor(g)
	if err != nil {
		t.Fatal(err)
	}
	c.AttachIndex(sizes, nil)
	total := sizes.Get(g.Start).Total
	for p := int64(0); p < total; p += 7 {
		if err := c.SeekPreorder(p); err != nil {
			t.Fatalf("seek(%d): %v", p, err)
		}
		if wn := want.PreorderIndex(int(p)); c.node.Label != wn.Label {
			t.Fatalf("p=%d: label %v, want %v", p, c.node.Label, wn.Label)
		}
	}
	if g.Size() != before {
		t.Fatal("read-side seek changed the grammar size")
	}
}

// TestSeekPreorderThenNavigate checks the cursor is fully usable after
// a seek: moves run off the rebuilt frame stack, and Parent walks back
// exactly to the seek point (the trail restarts there by contract).
func TestSeekPreorderThenNavigate(t *testing.T) {
	g, cache := degradedCorpus(t, "EW")
	sizes, view := cache.Peek(), cache.SpineView()
	c, err := NewCursor(g)
	if err != nil {
		t.Fatal(err)
	}
	c.AttachIndex(sizes, view)
	rng := rand.New(rand.NewSource(9))
	total := sizes.Get(g.Start).Total
	for trial := 0; trial < 200; trial++ {
		p := rng.Int63n(total)
		if err := c.SeekPreorder(p); err != nil {
			t.Fatalf("seek(%d): %v", p, err)
		}
		at := c.node
		if err := c.Parent(); err == nil {
			t.Fatal("Parent after a seek must stop at the seek point")
		}
		down := 0
		for !c.IsBottom() {
			if err := c.FirstChild(); err != nil {
				t.Fatalf("FirstChild after seek(%d): %v", p, err)
			}
			down++
		}
		for i := 0; i < down; i++ {
			if err := c.Parent(); err != nil {
				t.Fatalf("Parent after seek(%d): %v", p, err)
			}
		}
		if c.node != at {
			t.Fatalf("seek(%d): navigation did not return to the seek point", p)
		}
	}
}

// TestSeekPreorderErrors pins the error contract.
func TestSeekPreorderErrors(t *testing.T) {
	u := xmltree.NewUnranked("r", xmltree.NewUnranked("a"))
	g, _ := treerepair.Compress(u.Binary(), treerepair.Options{})
	c, err := NewCursor(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeekPreorder(0); err == nil {
		t.Fatal("seek without an attached size table must fail")
	}
	sizes, err := g.ValSizes()
	if err != nil {
		t.Fatal(err)
	}
	c.AttachIndex(sizes, nil)
	if err := c.SeekPreorder(-1); err == nil {
		t.Fatal("negative preorder must fail")
	}
	total := sizes.Get(g.Start).Total
	if err := c.SeekPreorder(total); err == nil {
		t.Fatal("out-of-range preorder must fail")
	}
	if err := c.SeekPreorder(0); err != nil {
		t.Fatal(err)
	}
	if c.Depth() != 0 || c.Label() != "r" {
		t.Fatalf("seek(0) landed on %q depth %d", c.Label(), c.Depth())
	}
}
