package navigate

import (
	"math/rand"
	"testing"

	"repro/internal/treerepair"
	"repro/internal/xmltree"
)

func randomUnranked(rng *rand.Rand, n int, labels []string) *xmltree.Unranked {
	root := &xmltree.Unranked{Label: labels[rng.Intn(len(labels))]}
	nodes := []*xmltree.Unranked{root}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := &xmltree.Unranked{Label: labels[rng.Intn(len(labels))]}
		p.Children = append(p.Children, c)
		nodes = append(nodes, c)
	}
	return root
}

// TestCursorMatchesTree drives random walks on the cursor and on the
// plain tree in lockstep.
func TestCursorMatchesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		u := randomUnranked(rng, 20+rng.Intn(100), []string{"a", "b", "c"})
		doc := u.Binary()
		g, _ := treerepair.Compress(doc, treerepair.Options{})
		c, err := NewCursor(g)
		if err != nil {
			t.Fatal(err)
		}
		ref := doc.Root
		var refStack []*xmltree.Node
		for step := 0; step < 300; step++ {
			if c.Label() != doc.Syms.Name(ref.Label.ID) {
				t.Fatalf("label mismatch: %s vs %s", c.Label(), doc.Syms.Name(ref.Label.ID))
			}
			if c.IsBottom() != ref.Label.IsBottom() {
				t.Fatal("IsBottom mismatch")
			}
			if c.Depth() != len(refStack) {
				t.Fatalf("depth %d vs %d", c.Depth(), len(refStack))
			}
			// Random move.
			switch k := rng.Intn(3); {
			case k < 2 && len(ref.Children) > 0:
				i := rng.Intn(len(ref.Children))
				if err := c.Child(i); err != nil {
					t.Fatal(err)
				}
				refStack = append(refStack, ref)
				ref = ref.Children[i]
			case len(refStack) > 0:
				if err := c.Parent(); err != nil {
					t.Fatal(err)
				}
				ref = refStack[len(refStack)-1]
				refStack = refStack[:len(refStack)-1]
			}
		}
	}
}

func TestCursorErrors(t *testing.T) {
	u := xmltree.NewUnranked("r", xmltree.NewUnranked("a"))
	g, _ := treerepair.Compress(u.Binary(), treerepair.Options{})
	c, err := NewCursor(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Parent(); err == nil {
		t.Fatal("Parent at root must fail")
	}
	if err := c.Child(5); err == nil {
		t.Fatal("out-of-range child must fail")
	}
	// ⊥ leaves have no children.
	if err := c.FirstChild(); err != nil {
		t.Fatal(err)
	}
	if err := c.FirstChild(); err != nil { // a's first child is ⊥
		t.Fatal(err)
	}
	if !c.IsBottom() || c.Rank() != 0 {
		t.Fatal("expected ⊥")
	}
	if err := c.FirstChild(); err == nil {
		t.Fatal("child of ⊥ must fail")
	}
}

// TestCursorOnExponentialGrammar navigates deep into a 4096-element list:
// every move is O(grammar depth), no expansion happens.
func TestCursorOnExponentialGrammar(t *testing.T) {
	root := xmltree.NewUnranked("r")
	for i := 0; i < 4096; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("a"))
	}
	g, _ := treerepair.Compress(root.Binary(), treerepair.Options{})
	c, err := NewCursor(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FirstChild(); err != nil { // first 'a'
		t.Fatal(err)
	}
	// Walk 1000 siblings down the chain and back up.
	for i := 0; i < 1000; i++ {
		if err := c.NextSibling(); err != nil {
			t.Fatal(err)
		}
		if c.Label() != "a" {
			t.Fatalf("sibling %d: label %s", i, c.Label())
		}
	}
	for i := 0; i < 1001; i++ {
		if err := c.Parent(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Label() != "r" || c.Depth() != 0 {
		t.Fatalf("did not return to root: %s depth %d", c.Label(), c.Depth())
	}
}

func TestWalkVisitsWholeTree(t *testing.T) {
	u := randomUnranked(rand.New(rand.NewSource(3)), 40, []string{"a", "b"})
	doc := u.Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	c, _ := NewCursor(g)
	var labels []string
	n, err := c.Walk(0, func(label string, depth int) bool {
		labels = append(labels, label)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != doc.Root.Size() {
		t.Fatalf("visited %d, want %d", n, doc.Root.Size())
	}
	// Preorder of the binary tree.
	i := 0
	ok := true
	doc.Root.Walk(func(v *xmltree.Node) bool {
		if labels[i] != doc.Syms.Name(v.Label.ID) {
			ok = false
		}
		i++
		return ok
	})
	if !ok {
		t.Fatal("walk order differs from preorder")
	}
	// Cursor must be back at the root.
	if c.Depth() != 0 || c.Label() != labels[0] {
		t.Fatal("walk did not restore the cursor")
	}
}

func TestWalkBudget(t *testing.T) {
	u := randomUnranked(rand.New(rand.NewSource(4)), 60, []string{"a"})
	g, _ := treerepair.Compress(u.Binary(), treerepair.Options{})
	c, _ := NewCursor(g)
	n, err := c.Walk(10, func(string, int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("budget ignored: visited %d", n)
	}
}

func TestCountLabel(t *testing.T) {
	root := xmltree.NewUnranked("log")
	for i := 0; i < 100; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("entry",
			xmltree.NewUnranked("host"), xmltree.NewUnranked("status")))
	}
	g, _ := treerepair.Compress(root.Binary(), treerepair.Options{})
	for label, want := range map[string]float64{"entry": 100, "host": 100, "log": 1, "nope": 0} {
		got, err := CountLabel(g, label)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("CountLabel(%s) = %v, want %v", label, got, want)
		}
	}
}

func TestLabelHistogram(t *testing.T) {
	u := randomUnranked(rand.New(rand.NewSource(8)), 120, []string{"a", "b", "c"})
	doc := u.Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	hist, err := LabelHistogram(g)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	var count func(v *xmltree.Unranked)
	count = func(v *xmltree.Unranked) {
		want[v.Label]++
		for _, c := range v.Children {
			count(c)
		}
	}
	count(u)
	for label, w := range want {
		if hist[label] != float64(w) {
			t.Fatalf("hist[%s] = %v, want %d", label, hist[label], w)
		}
	}
	if len(hist) != len(want) {
		t.Fatalf("histogram has %d labels, want %d", len(hist), len(want))
	}
}
