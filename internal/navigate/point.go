// Read-side indexed point queries: SeekPreorder repositions the cursor
// at a preorder index of val_G(S) WITHOUT unfolding the grammar — the
// read-only counterpart of path isolation. The descent runs the same
// size-vector arithmetic (Section III-A) over the frozen grammar, and
// when a spine view is attached (a frozen snapshot of the update path's
// isolation frontier), point lookups on long unfolded chains seek
// chunk-by-sum instead of walking siblings and re-measuring tail-call
// nests.
package navigate

import (
	"fmt"

	"repro/internal/grammar"
	"repro/internal/isolate"
	"repro/internal/xmltree"
)

// PointStats counts the read-side index activity of SeekPreorder.
type PointStats struct {
	Seeks   int64 // SeekPreorder calls
	Jumps   int64 // indexed chunk-by-sum seeks taken instead of walking
	Skipped int64 // spine entries those seeks skipped over
}

// Stats returns the cursor's point-query counters.
func (c *Cursor) Stats() PointStats { return c.stats }

// AttachIndex equips the cursor for indexed point queries: sizes is the
// grammar's size-vector table (required by SeekPreorder), view an
// optional frozen spine view published with the grammar generation —
// nil falls back to naive measure-and-descend at every level. Both are
// read-only; the cursor never mutates the grammar or the index.
func (c *Cursor) AttachIndex(sizes *grammar.SizeTable, view *isolate.SpineView) {
	c.sizes = sizes
	c.view = view
}

// SeekPreorder repositions the cursor at the node with the given
// preorder index (0-based, ⊥ leaves counted) of val_G(S), in time
// proportional to the grammar's nesting depth — never the document —
// plus O(#chunks) per indexed chain crossed. It resets the move trail:
// Parent stops at the seek point until later moves rebuild it.
func (c *Cursor) SeekPreorder(pre int64) error {
	if c.sizes == nil {
		return fmt.Errorf("navigate: SeekPreorder needs an attached size table")
	}
	sv := c.sizes.Get(c.g.Start)
	if sv == nil {
		return fmt.Errorf("navigate: no size vector for the start rule")
	}
	if pre < 0 || pre >= sv.Total {
		return fmt.Errorf("navigate: preorder %d out of range [0,%d)", pre, sv.Total)
	}
	c.frames = c.frames[:0]
	c.trail = c.trail[:0]
	c.saved = c.saved[:0]
	c.stats.Seeks++
	n := c.g.StartRule().RHS
	rem := pre
	for {
		if c.view != nil && rem > 0 {
			if s, ok := c.view.At(n); ok {
				tgt, local, skipped, found := c.view.Seek(s, rem)
				c.stats.Jumps++
				c.stats.Skipped += skipped
				n, rem = tgt, local
				if !found {
					// Spine exhausted: n is the chain continuation, which
					// may head the next spine — re-probe at the loop head.
					continue
				}
				// Target found at (or inside) entry n. Fall through to the
				// switch WITHOUT re-probing: the head entry can resolve to
				// itself, and a read-only view cannot split the spine the
				// way the update descent does.
			}
		}
		switch n.Label.Kind {
		case xmltree.Terminal:
			if rem == 0 {
				c.node = n
				return nil
			}
			rem--
			descended := false
			for i := 0; i < len(n.Children); i++ {
				// Loop invariant: rem < val size of the remaining children,
				// so the last child needs no containment check (and no
				// size walk) — descending a next-sibling chain stays linear.
				if i == len(n.Children)-1 {
					n = n.Children[i]
					descended = true
					break
				}
				sz := c.measure(n.Children[i], len(c.frames), rem+1, 0)
				if rem < sz {
					n = n.Children[i]
					descended = true
					break
				}
				rem -= sz
			}
			if !descended {
				return fmt.Errorf("navigate: internal seek error (rem=%d)", rem)
			}
		case xmltree.Nonterminal:
			rsv := c.sizes.Get(n.Label.ID)
			if rsv == nil {
				return fmt.Errorf("navigate: no size vector for rule N%d", n.Label.ID)
			}
			// val(n) in preorder: Seg[0] body nodes, val(arg1), Seg[1], ...,
			// val(argk), Seg[k]. If the target falls inside an argument,
			// descend in the caller's context without entering the rule —
			// on a tail-call nest that is one O(rank) step per level. A
			// body-segment target enters the rule instead: the body walk
			// resolves parameters through the frame.
			if rem >= rsv.Seg[0] && len(n.Children) > 0 {
				off := rsv.Seg[0]
				descended := false
				for i, a := range n.Children {
					sz := c.measure(a, len(c.frames), rem-off+1, 0)
					if rem < off+sz {
						rem -= off
						n = a
						descended = true
						break
					}
					off += sz
					if rem < off+rsv.Seg[i+1] {
						break // target in the body segment after y_{i+1}
					}
					off += rsv.Seg[i+1]
				}
				if descended {
					continue
				}
			}
			rule := c.g.Rule(n.Label.ID)
			if rule == nil {
				return fmt.Errorf("navigate: missing rule N%d", n.Label.ID)
			}
			c.frames = append(c.frames, frame{call: n})
			n = rule.RHS
		case xmltree.Parameter:
			if len(c.frames) == 0 {
				return fmt.Errorf("navigate: unbound parameter y%d", n.Label.ID)
			}
			top := c.frames[len(c.frames)-1]
			c.frames = c.frames[:len(c.frames)-1]
			n = top.call.Children[n.Label.ID-1]
		default:
			return fmt.Errorf("navigate: bad symbol")
		}
	}
}

// measure returns acc plus the number of derived-tree nodes of the
// subtree at n (parameters resolve through the frame stack at depth,
// contributing their binding's size, never themselves — matching the
// paper's size vectors). The walk aborts once the count reaches limit:
// the caller descends into the child then and never needs the exact
// size. An attached view cuts indexed chains in O(#chunks) via their
// weight sums, exactly like the update path's memoized size walk.
func (c *Cursor) measure(n *xmltree.Node, depth int, limit, acc int64) int64 {
	if acc >= limit {
		return acc
	}
	if c.view != nil {
		if s, ok := c.view.At(n); ok {
			sum, tail := c.view.Sum(s)
			acc = grammar.SatAdd(acc, sum)
			if acc >= limit {
				return acc
			}
			return c.measure(tail, depth, limit, acc)
		}
	}
	switch n.Label.Kind {
	case xmltree.Parameter:
		top := c.frames[depth-1]
		return c.measure(top.call.Children[n.Label.ID-1], depth-1, limit, acc)
	case xmltree.Nonterminal:
		acc = grammar.SatAdd(acc, c.sizes.Get(n.Label.ID).Total)
		for _, a := range n.Children {
			if acc >= limit {
				return acc
			}
			acc = c.measure(a, depth, limit, acc)
		}
		return acc
	default: // Terminal, ⊥ included — every derived node counts 1
		for {
			acc = grammar.SatAdd(acc, 1)
			if acc >= limit || len(n.Children) == 0 {
				return acc
			}
			for i := 0; i < len(n.Children)-1; i++ {
				acc = c.measure(n.Children[i], depth, limit, acc)
				if acc >= limit {
					return acc
				}
			}
			// Tail-iterate the last child so long sibling chains do not
			// recurse O(chain) deep.
			n = n.Children[len(n.Children)-1]
			if c.view != nil {
				if s, ok := c.view.At(n); ok {
					sum, tail := c.view.Sum(s)
					acc = grammar.SatAdd(acc, sum)
					if acc >= limit {
						return acc
					}
					n = tail
				}
			}
			if n.Label.Kind != xmltree.Terminal {
				return c.measure(n, depth, limit, acc)
			}
		}
	}
}
