// Package navigate provides navigation and simple queries over
// grammar-compressed trees WITHOUT decompression — the property that
// makes SLCF grammars "ideal for in-memory XML processing" (Section I):
// a DOM-style cursor that walks val_G(S) directly on the grammar, and
// usage-weighted aggregate queries that run in one pass over the rules.
package navigate

import (
	"fmt"

	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// frame records one entered nonterminal call: the call node (whose
// children are the argument subtrees) inside the enclosing rule body.
type frame struct {
	call *xmltree.Node
}

// crumb remembers a downward move so Parent can undo it exactly.
type crumb struct {
	node   *xmltree.Node
	frames []frame // the frame stack before the move (shared backing ok: frames are append-only per path)
}

// Cursor is a read-only position in val_G(S). All moves cost time
// proportional to the grammar's rule-nesting depth, never to the tree.
type Cursor struct {
	g      *grammar.Grammar
	node   *xmltree.Node // current node, always a terminal
	frames []frame       // active call stack, innermost last
	trail  []crumb       // breadcrumbs for Parent
}

// NewCursor returns a cursor at the root of val_G(S).
func NewCursor(g *grammar.Grammar) (*Cursor, error) {
	c := &Cursor{g: g}
	n, frames, err := c.normalize(g.StartRule().RHS, nil)
	if err != nil {
		return nil, err
	}
	c.node = n
	c.frames = frames
	return c, nil
}

// normalize resolves a body position to the terminal it derives: entering
// nonterminal calls (pushing frames) and exiting through parameters
// (popping frames and continuing at the bound argument).
func (c *Cursor) normalize(n *xmltree.Node, frames []frame) (*xmltree.Node, []frame, error) {
	for {
		switch n.Label.Kind {
		case xmltree.Terminal:
			return n, frames, nil
		case xmltree.Nonterminal:
			rule := c.g.Rule(n.Label.ID)
			if rule == nil {
				return nil, nil, fmt.Errorf("navigate: missing rule N%d", n.Label.ID)
			}
			frames = append(frames, frame{call: n})
			n = rule.RHS
		case xmltree.Parameter:
			if len(frames) == 0 {
				return nil, nil, fmt.Errorf("navigate: unbound parameter y%d", n.Label.ID)
			}
			top := frames[len(frames)-1]
			frames = frames[:len(frames)-1]
			n = top.call.Children[n.Label.ID-1]
		default:
			return nil, nil, fmt.Errorf("navigate: bad symbol")
		}
	}
}

// Label returns the current node's label name (e.g. the element name, or
// "⊥" for an empty node).
func (c *Cursor) Label() string { return c.g.Syms.Name(c.node.Label.ID) }

// IsBottom reports whether the cursor is on a ⊥ leaf.
func (c *Cursor) IsBottom() bool { return c.node.Label.IsBottom() }

// Rank returns the number of children of the current node.
func (c *Cursor) Rank() int { return c.g.Syms.Rank(c.node.Label.ID) }

// Depth returns the current depth in val_G(S) (root = 0).
func (c *Cursor) Depth() int { return len(c.trail) }

// Child moves to the i-th child (0-based) of the current node.
func (c *Cursor) Child(i int) error {
	if i < 0 || i >= len(c.node.Children) {
		return fmt.Errorf("navigate: child %d of rank-%d node", i, len(c.node.Children))
	}
	// Save restore-state: frames slices grow append-only along one path,
	// so copying the slice header with an explicit clone keeps Parent
	// exact even after pops.
	saved := make([]frame, len(c.frames))
	copy(saved, c.frames)
	n, frames, err := c.normalize(c.node.Children[i], c.frames)
	if err != nil {
		return err
	}
	c.trail = append(c.trail, crumb{node: c.node, frames: saved})
	c.node = n
	c.frames = frames
	return nil
}

// FirstChild moves to the first child in the binary encoding.
func (c *Cursor) FirstChild() error { return c.Child(0) }

// NextSibling moves to the next sibling in the binary encoding.
func (c *Cursor) NextSibling() error { return c.Child(1) }

// Parent moves back to the parent node. It errors at the root.
func (c *Cursor) Parent() error {
	if len(c.trail) == 0 {
		return fmt.Errorf("navigate: already at the root")
	}
	top := c.trail[len(c.trail)-1]
	c.trail = c.trail[:len(c.trail)-1]
	c.node = top.node
	c.frames = top.frames
	return nil
}

// Walk runs a preorder traversal of val_G(S) from the cursor's current
// position, calling visit with (label, depth) for every node, including ⊥
// leaves. maxNodes > 0 bounds the traversal; it returns the number of
// nodes visited. The traversal uses the cursor itself and restores its
// position on return.
func (c *Cursor) Walk(maxNodes int, visit func(label string, depth int) bool) (int, error) {
	visited := 0
	var rec func() (bool, error)
	rec = func() (bool, error) {
		if maxNodes > 0 && visited >= maxNodes {
			return false, nil
		}
		visited++
		if !visit(c.Label(), c.Depth()) {
			return false, nil
		}
		for i := 0; i < len(c.node.Children); i++ {
			if err := c.Child(i); err != nil {
				return false, err
			}
			cont, err := rec()
			if perr := c.Parent(); perr != nil {
				return false, perr
			}
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := rec()
	return visited, err
}

// CountLabel counts the occurrences of a terminal label in val_G(S)
// without decompressing: each node labeled l in a rule body corresponds
// to usage(rule) nodes of the derived tree. This answers "how many
// <item> elements does the document have" on an exponentially compressed
// grammar in one pass over the rules.
func CountLabel(g *grammar.Grammar, label string) (float64, error) {
	usage, err := g.Usage()
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, id := range g.RuleIDs() {
		u := usage[id]
		if u == 0 {
			continue
		}
		cnt := 0
		g.Rule(id).RHS.Walk(func(n *xmltree.Node) bool {
			if n.Label.Kind == xmltree.Terminal && !n.Label.IsBottom() &&
				g.Syms.Name(n.Label.ID) == label {
				cnt++
			}
			return true
		})
		total += u * float64(cnt)
	}
	return total, nil
}

// LabelHistogram returns the usage-weighted count of every terminal
// label in val_G(S) (⊥ excluded) in one pass over the grammar.
func LabelHistogram(g *grammar.Grammar) (map[string]float64, error) {
	usage, err := g.Usage()
	if err != nil {
		return nil, err
	}
	hist := make(map[string]float64)
	for _, id := range g.RuleIDs() {
		u := usage[id]
		if u == 0 {
			continue
		}
		g.Rule(id).RHS.Walk(func(n *xmltree.Node) bool {
			if n.Label.Kind == xmltree.Terminal && !n.Label.IsBottom() {
				hist[g.Syms.Name(n.Label.ID)] += u
			}
			return true
		})
	}
	return hist, nil
}
