// Package navigate provides navigation and simple queries over
// grammar-compressed trees WITHOUT decompression — the property that
// makes SLCF grammars "ideal for in-memory XML processing" (Section I):
// a DOM-style cursor that walks val_G(S) directly on the grammar, and
// usage-weighted aggregate queries that run in one pass over the rules.
package navigate

import (
	"fmt"

	"repro/internal/grammar"
	"repro/internal/isolate"
	"repro/internal/xmltree"
)

// frame records one entered nonterminal call: the call node (whose
// children are the argument subtrees) inside the enclosing rule body.
type frame struct {
	call *xmltree.Node
}

// crumb remembers a downward move so Parent can undo it exactly. Instead
// of snapshotting the whole frame stack (O(depth) copy and allocation per
// move), it records how far the move popped into the pre-move stack
// (minLen) and where the popped frames were parked on the cursor's saved
// stack — restoring is then O(frames touched by the move).
type crumb struct {
	node     *xmltree.Node
	minLen   int32 // frame-stack length the move popped down to
	savedOff int32 // offset of the popped frames in Cursor.saved
}

// Cursor is a read-only position in val_G(S). All moves cost time
// proportional to the grammar's rule-nesting depth, never to the tree,
// and allocate nothing once the internal stacks have warmed up.
type Cursor struct {
	g      *grammar.Grammar
	node   *xmltree.Node // current node, always a terminal
	frames []frame       // active call stack, innermost last
	trail  []crumb       // breadcrumbs for Parent
	saved  []frame       // LIFO park of frames popped by downward moves

	// Optional point-query accelerators; see AttachIndex (point.go).
	sizes *grammar.SizeTable
	view  *isolate.SpineView
	stats PointStats
}

// NewCursor returns a cursor at the root of val_G(S).
func NewCursor(g *grammar.Grammar) (*Cursor, error) {
	c := &Cursor{g: g}
	n, _, err := c.normalize(g.StartRule().RHS, 0)
	if err != nil {
		return nil, err
	}
	c.node = n
	return c, nil
}

// normalize resolves a body position to the terminal it derives: entering
// nonterminal calls (pushing frames) and exiting through parameters
// (popping frames and continuing at the bound argument). It mutates
// c.frames in place; base is the stack length at move start, and every
// frame popped from below the running minimum is appended to c.saved so
// the move can be undone. Returns the terminal and the minimum stack
// length reached.
func (c *Cursor) normalize(n *xmltree.Node, base int) (*xmltree.Node, int, error) {
	minLen := base
	for {
		switch n.Label.Kind {
		case xmltree.Terminal:
			return n, minLen, nil
		case xmltree.Nonterminal:
			rule := c.g.Rule(n.Label.ID)
			if rule == nil {
				return nil, minLen, fmt.Errorf("navigate: missing rule N%d", n.Label.ID)
			}
			c.frames = append(c.frames, frame{call: n})
			n = rule.RHS
		case xmltree.Parameter:
			if len(c.frames) == 0 {
				return nil, minLen, fmt.Errorf("navigate: unbound parameter y%d", n.Label.ID)
			}
			top := c.frames[len(c.frames)-1]
			if len(c.frames) <= minLen {
				c.saved = append(c.saved, top)
				minLen = len(c.frames) - 1
			}
			c.frames = c.frames[:len(c.frames)-1]
			n = top.call.Children[n.Label.ID-1]
		default:
			return nil, minLen, fmt.Errorf("navigate: bad symbol")
		}
	}
}

// restore undoes a move's frame-stack effects: it truncates to the move's
// minimum length and replays the parked frames in reverse pop order.
func (c *Cursor) restore(minLen, savedOff int) {
	c.frames = c.frames[:minLen]
	for j := len(c.saved) - 1; j >= savedOff; j-- {
		c.frames = append(c.frames, c.saved[j])
	}
	c.saved = c.saved[:savedOff]
}

// Label returns the current node's label name (e.g. the element name, or
// "⊥" for an empty node).
func (c *Cursor) Label() string { return c.g.Syms.Name(c.node.Label.ID) }

// IsBottom reports whether the cursor is on a ⊥ leaf.
func (c *Cursor) IsBottom() bool { return c.node.Label.IsBottom() }

// Rank returns the number of children of the current node.
func (c *Cursor) Rank() int { return c.g.Syms.Rank(c.node.Label.ID) }

// Depth returns the current depth in val_G(S) (root = 0).
func (c *Cursor) Depth() int { return len(c.trail) }

// Child moves to the i-th child (0-based) of the current node.
func (c *Cursor) Child(i int) error {
	if i < 0 || i >= len(c.node.Children) {
		return fmt.Errorf("navigate: child %d of rank-%d node", i, len(c.node.Children))
	}
	base := len(c.frames)
	savedOff := len(c.saved)
	n, minLen, err := c.normalize(c.node.Children[i], base)
	if err != nil {
		c.restore(minLen, savedOff) // leave the cursor where it was
		return err
	}
	c.trail = append(c.trail, crumb{
		node:     c.node,
		minLen:   int32(minLen),
		savedOff: int32(savedOff),
	})
	c.node = n
	return nil
}

// FirstChild moves to the first child in the binary encoding.
func (c *Cursor) FirstChild() error { return c.Child(0) }

// NextSibling moves to the next sibling in the binary encoding.
func (c *Cursor) NextSibling() error { return c.Child(1) }

// Parent moves back to the parent node. It errors at the root.
func (c *Cursor) Parent() error {
	if len(c.trail) == 0 {
		return fmt.Errorf("navigate: already at the root")
	}
	top := c.trail[len(c.trail)-1]
	c.trail = c.trail[:len(c.trail)-1]
	c.node = top.node
	c.restore(int(top.minLen), int(top.savedOff))
	return nil
}

// Walk runs a preorder traversal of val_G(S) from the cursor's current
// position, calling visit with (label, depth) for every node, including ⊥
// leaves. maxNodes > 0 bounds the traversal; it returns the number of
// nodes visited. The traversal uses the cursor itself and restores its
// position on return.
func (c *Cursor) Walk(maxNodes int, visit func(label string, depth int) bool) (int, error) {
	visited := 0
	var rec func() (bool, error)
	rec = func() (bool, error) {
		if maxNodes > 0 && visited >= maxNodes {
			return false, nil
		}
		visited++
		if !visit(c.Label(), c.Depth()) {
			return false, nil
		}
		for i := 0; i < len(c.node.Children); i++ {
			if err := c.Child(i); err != nil {
				return false, err
			}
			cont, err := rec()
			if perr := c.Parent(); perr != nil {
				return false, perr
			}
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := rec()
	return visited, err
}

// CountLabel counts the occurrences of a terminal label in val_G(S)
// without decompressing: each node labeled l in a rule body corresponds
// to usage(rule) nodes of the derived tree. This answers "how many
// <item> elements does the document have" on an exponentially compressed
// grammar in one pass over the rules.
func CountLabel(g *grammar.Grammar, label string) (float64, error) {
	usage, err := g.Usage()
	if err != nil {
		return 0, err
	}
	return CountLabelUsage(g, usage, label), nil
}

// CountLabelUsage is CountLabel with a precomputed usage vector (as
// returned by Grammar.Usage). Serving engines cache the vector across a
// query stream — usage only changes when the grammar does — so repeated
// label queries skip the per-call usage recomputation.
func CountLabelUsage(g *grammar.Grammar, usage []float64, label string) float64 {
	total := 0.0
	for _, id := range g.RuleIDs() {
		u := usage[id]
		if u == 0 {
			continue
		}
		cnt := 0
		g.Rule(id).RHS.Walk(func(n *xmltree.Node) bool {
			if n.Label.Kind == xmltree.Terminal && !n.Label.IsBottom() &&
				g.Syms.Name(n.Label.ID) == label {
				cnt++
			}
			return true
		})
		total += u * float64(cnt)
	}
	return total
}

// LabelHistogram returns the usage-weighted count of every terminal
// label in val_G(S) (⊥ excluded) in one pass over the grammar.
func LabelHistogram(g *grammar.Grammar) (map[string]float64, error) {
	usage, err := g.Usage()
	if err != nil {
		return nil, err
	}
	return LabelHistogramUsage(g, usage), nil
}

// LabelHistogramUsage is LabelHistogram with a precomputed usage vector;
// see CountLabelUsage.
func LabelHistogramUsage(g *grammar.Grammar, usage []float64) map[string]float64 {
	hist := make(map[string]float64)
	for _, id := range g.RuleIDs() {
		u := usage[id]
		if u == 0 {
			continue
		}
		g.Rule(id).RHS.Walk(func(n *xmltree.Node) bool {
			if n.Label.Kind == xmltree.Terminal && !n.Label.IsBottom() {
				hist[g.Syms.Name(n.Label.ID)] += u
			}
			return true
		})
	}
	return hist
}
