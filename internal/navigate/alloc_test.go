package navigate

import (
	"testing"

	"repro/internal/treerepair"
	"repro/internal/xmltree"
)

// TestCursorMovesAllocFree guards the navigation hot path: once the
// cursor's internal stacks have warmed up, Child and Parent moves must
// not allocate (no per-move frame-stack snapshots, no map creep).
func TestCursorMovesAllocFree(t *testing.T) {
	// A repetitive document compresses into a deeply rule-nested grammar,
	// which is the case where per-move snapshots used to cost O(depth).
	root := xmltree.NewUnranked("root")
	for i := 0; i < 64; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("entry",
			xmltree.NewUnranked("a"), xmltree.NewUnranked("b"), xmltree.NewUnranked("c")))
	}
	doc := root.Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})

	c, err := NewCursor(g)
	if err != nil {
		t.Fatal(err)
	}
	descend := func() int {
		depth := 0
		for !c.IsBottom() {
			if err := c.FirstChild(); err != nil {
				t.Fatal(err)
			}
			depth++
		}
		for i := 0; i < depth; i++ {
			if err := c.Parent(); err != nil {
				t.Fatal(err)
			}
		}
		return depth
	}
	if d := descend(); d < 3 {
		t.Fatalf("fixture too shallow (depth %d)", d)
	}
	allocs := testing.AllocsPerRun(50, func() { descend() })
	if allocs != 0 {
		t.Fatalf("cursor moves allocated %.1f times per descent", allocs)
	}

	// A full bounded Walk after warm-up may allocate only its closures,
	// independent of the number of nodes visited.
	c.Walk(0, func(string, int) bool { return true })
	allocs = testing.AllocsPerRun(20, func() {
		c.Walk(0, func(string, int) bool { return true })
	})
	if allocs > 4 {
		t.Fatalf("cursor Walk allocated %.1f times per traversal", allocs)
	}
}

// TestCursorDegradedAllocFree extends the guard to a degraded grammar
// (post-update, pre-recompression): moves across the long explicit
// chains and deep tail-call nests updates leave behind must stay
// alloc-free, and so must warmed-up indexed point seeks — the store
// read path calls both on every query.
func TestCursorDegradedAllocFree(t *testing.T) {
	g, cache := degradedCorpus(t, "EW")
	sizes, view := cache.Peek(), cache.SpineView()
	if view == nil {
		t.Fatal("degraded EW grammar has no spine view")
	}
	c, err := NewCursor(g)
	if err != nil {
		t.Fatal(err)
	}
	c.AttachIndex(sizes, view)
	total := sizes.Get(g.Start).Total
	positions := []int64{0, total / 3, total / 2, total - 2, total - 1}
	seekAll := func() {
		for _, p := range positions {
			if err := c.SeekPreorder(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	descend := func() {
		depth := 0
		for !c.IsBottom() {
			if err := c.FirstChild(); err != nil {
				t.Fatal(err)
			}
			depth++
		}
		for i := 0; i < depth; i++ {
			if err := c.Parent(); err != nil {
				t.Fatal(err)
			}
		}
	}
	seekAll() // warm the stacks
	descend()
	if allocs := testing.AllocsPerRun(50, seekAll); allocs != 0 {
		t.Fatalf("indexed seeks allocated %.1f times per round", allocs)
	}
	if allocs := testing.AllocsPerRun(50, descend); allocs != 0 {
		t.Fatalf("degraded-grammar moves allocated %.1f times per descent", allocs)
	}
}
