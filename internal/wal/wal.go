// Package wal is the durability layer under the store: a per-document
// write-ahead log of update operations plus periodic encoded-grammar
// snapshots, designed so that a crash at any byte boundary recovers to
// exactly the acked prefix of the update stream — no acked op lost, no
// unacked op visible.
//
// # On-disk layout
//
// Every document owns one directory (DocDir derives a filesystem-safe
// name from the document ID) holding two file kinds:
//
//	wal-<start>.log    append-only op segments, <start> = hex of the
//	                   stream position of the segment's first op
//	snap-<pos>.snap    encoded-grammar snapshot covering ops [0, pos)
//
// A segment is a header (magic, version, start position) followed by
// length-prefixed records: uvarint payload length, payload, CRC32C of
// the payload. A record's payload is one committed batch — its stream
// start position, its op count, then the ops in the internal/update
// binary codec. A snapshot file is a header plus a single such framed
// record whose payload is the covered position and the grammar in the
// grammar.Encode format (already hardened against hostile streams).
//
// # Crash tolerance
//
// Appends go through a Writer whose every file mutation is routed
// through an optional Injector, so tests crash the log at precise byte
// boundaries (torn write, fsync failure, mid-truncate) instead of
// hoping a kill lands somewhere interesting. Recovery (Recover)
// tolerates what those crashes leave behind: it loads the newest
// snapshot that passes CRC + decode, falls back to the previous one if
// the newest is corrupt, replays records while they chain contiguously
// from the snapshot position, and truncates at the first bad CRC,
// short record, or gap — never failing open past corruption. Snapshot
// rolling retains the previous snapshot and the segments it needs, so
// the fallback path always has full op coverage.
package wal

import (
	"encoding/base32"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Errors of the durability layer.
var (
	// ErrInjected is the failure a fault-injection plan reports; every
	// later operation on the same plan keeps failing with it, like a
	// process that crashed.
	ErrInjected = errors.New("wal: injected fault")
	// ErrNoSnapshot reports a document directory with no loadable
	// snapshot: recovery has no base state and must fail closed.
	ErrNoSnapshot = errors.New("wal: no valid snapshot")
	// ErrLogBroken reports an append on a Log whose earlier write or
	// fsync failed; the in-memory document has diverged from disk and
	// only reopening recovers.
	ErrLogBroken = errors.New("wal: log broken by earlier write failure")
)

// FsyncPolicy selects when appended batches are fsynced.
type FsyncPolicy int

const (
	// FsyncBatch fsyncs after every appended batch, before the ack:
	// an acked batch survives any crash. The durable default.
	FsyncBatch FsyncPolicy = iota
	// FsyncInterval fsyncs at most once per FsyncEvery, checked at
	// append time: a crash may lose up to one interval of acked ops.
	FsyncInterval
	// FsyncOff never fsyncs on the append path (the OS flushes when it
	// pleases); Close still syncs. The bench baseline for the fsync tax.
	FsyncOff
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncBatch:
		return "batch"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Options tunes a Log. The zero value selects the defaults below.
type Options struct {
	// Fsync is the append-path fsync policy (default FsyncBatch).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (0 = DefaultFsyncEvery).
	FsyncEvery time.Duration
	// SegmentBytes rolls the active segment once it holds at least
	// this many bytes (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// Injector, when non-nil, intercepts every file mutation for
	// fault-injection tests. Production logs leave it nil.
	Injector Injector
}

// Defaults; see Options.
const (
	DefaultSegmentBytes = 1 << 20
	DefaultFsyncEvery   = 100 * time.Millisecond
)

// Format bounds. Like the grammar decoder's, these exist so a few
// corrupt bytes can never demand a giant allocation: a declared length
// past its bound is treated exactly like a bad CRC.
const (
	// maxRecordBytes bounds one framed record's payload.
	maxRecordBytes = 1 << 26
)

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

func (o Options) fsyncEvery() time.Duration {
	if o.FsyncEvery <= 0 {
		return DefaultFsyncEvery
	}
	return o.FsyncEvery
}

// FileKind classifies the file an injected operation targets.
type FileKind uint8

const (
	// FileWAL is an op segment.
	FileWAL FileKind = iota
	// FileSnapshot is a snapshot file (including its temp stage).
	FileSnapshot
)

// OpKind classifies the intercepted file operation.
type OpKind uint8

const (
	// OpWrite is a data write; the injector may shorten it (torn write).
	OpWrite OpKind = iota
	// OpSync is an fsync of a file or directory.
	OpSync
	// OpRename is the snapshot temp-file publish.
	OpRename
	// OpRemove is a segment or stale-snapshot deletion (truncation).
	OpRemove
)

// Injector intercepts the log's file mutations for fault-injection
// tests. For OpWrite, p is the bytes about to be written and the
// returned n is how many of them actually reach the file — returning
// n < len(p) together with an error leaves a torn prefix on disk,
// exactly like a crash mid-write. For the other ops p is nil and n is
// ignored; a non-nil error aborts the operation before it happens.
type Injector interface {
	Inject(file FileKind, op OpKind, p []byte) (n int, err error)
}

// CrashPlan is the standard Injector: budgets of allowed operations,
// after which the plan trips and everything fails with ErrInjected —
// the moment of the simulated kill. Construct with NewCrashPlan and
// tighten the one budget under test; a tripped plan never un-trips, so
// the code under test behaves like a process that died mid-call.
type CrashPlan struct {
	mu sync.Mutex
	// WALWriteBytes is how many segment bytes may be written before
	// the plan trips mid-write (torn record). Negative = unlimited.
	WALWriteBytes int64
	// SnapshotWriteBytes is the same budget for snapshot files
	// (mid-snapshot crash). Negative = unlimited.
	SnapshotWriteBytes int64
	// Syncs is how many fsyncs succeed before one fails (fsync-error
	// crash). Negative = unlimited.
	Syncs int
	// MetaOps is how many renames/removes succeed before one fails
	// (mid-truncate / mid-publish crash). Negative = unlimited.
	MetaOps int

	tripped bool
}

// NewCrashPlan returns a plan with every budget unlimited; set the one
// under test before handing it to Options.Injector.
func NewCrashPlan() *CrashPlan {
	return &CrashPlan{WALWriteBytes: -1, SnapshotWriteBytes: -1, Syncs: -1, MetaOps: -1}
}

// Tripped reports whether the simulated crash has happened.
func (c *CrashPlan) Tripped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tripped
}

// Inject implements Injector.
func (c *CrashPlan) Inject(file FileKind, op OpKind, p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tripped {
		return 0, ErrInjected
	}
	switch op {
	case OpWrite:
		budget := &c.WALWriteBytes
		if file == FileSnapshot {
			budget = &c.SnapshotWriteBytes
		}
		if *budget < 0 {
			return len(p), nil
		}
		if int64(len(p)) <= *budget {
			*budget -= int64(len(p))
			return len(p), nil
		}
		n := int(*budget)
		*budget = 0
		c.tripped = true
		return n, ErrInjected
	case OpSync:
		if c.Syncs < 0 {
			return 0, nil
		}
		if c.Syncs > 0 {
			c.Syncs--
			return 0, nil
		}
		c.tripped = true
		return 0, ErrInjected
	case OpRename, OpRemove:
		if c.MetaOps < 0 {
			return 0, nil
		}
		if c.MetaOps > 0 {
			c.MetaOps--
			return 0, nil
		}
		c.tripped = true
		return 0, ErrInjected
	}
	return len(p), nil
}

// docDirPrefix + base32(id) names a document's directory. Base32
// (lowercase, unpadded) is reversible, case-collision-free on
// case-insensitive filesystems, and never produces path separators or
// dotfiles — any document ID is safe.
const docDirPrefix = "doc-"

var docDirEnc = base32.NewEncoding("abcdefghijklmnopqrstuvwxyz234567").WithPadding(base32.NoPadding)

// DocDir returns the directory name serving document id.
func DocDir(id string) string {
	return docDirPrefix + docDirEnc.EncodeToString([]byte(id))
}

// ParseDocDir recovers the document ID from a directory name produced
// by DocDir; ok is false for foreign directory names.
func ParseDocDir(name string) (id string, ok bool) {
	if !strings.HasPrefix(name, docDirPrefix) {
		return "", false
	}
	raw, err := docDirEnc.DecodeString(strings.TrimPrefix(name, docDirPrefix))
	if err != nil {
		return "", false
	}
	return string(raw), true
}
