// FuzzWALDecode locks in recovery's never-fail-open contract at the
// parser level: segment and snapshot bytes come straight off a disk
// that may hold torn writes, bit rot, or hostile edits, and no such
// input may panic the parsers, make them claim bytes they did not
// validate, or hand back a batch the encoder could not have produced.
package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datasets"
	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/workload"
)

func FuzzWALDecode(f *testing.F) {
	// Seed with real files from a tiny durable run, so the fuzzer
	// starts from well-formed inputs and mutates toward the edges.
	c, ok := datasets.ByShort("EW")
	if !ok {
		f.Fatal("no EW corpus")
	}
	seq, err := workload.Updates(c.Generate(0.05, 3), 20, 80, 7)
	if err != nil {
		f.Fatal(err)
	}
	g, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
	var enc bytes.Buffer
	if err := grammar.Encode(&enc, g); err != nil {
		f.Fatal(err)
	}
	dir := filepath.Join(f.TempDir(), DocDir("seed"))
	l, err := Create(dir, enc.Bytes(), Options{Fsync: FsyncOff})
	if err != nil {
		f.Fatal(err)
	}
	for off := 0; off < len(seq.Ops); off += 5 {
		end := min(off+5, len(seq.Ops))
		// Alternate sequenced and unsequenced batches so the corpus
		// holds both record shapes.
		bseq := uint64(0)
		if (off/5)%2 == 1 {
			bseq = uint64(off/5 + 1)
		}
		if err := l.AppendBatch(int64(off), bseq, seq.Ops[off:end]); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.WriteSnapshot(int64(len(seq.Ops)), 3, enc.Bytes()); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		if len(data) > 8 {
			f.Add(data[:len(data)-5]) // torn tail
			flipped := bytes.Clone(data)
			flipped[len(flipped)/2] ^= 0x20 // bit rot
			f.Add(flipped)
		}
	}
	f.Add([]byte(segMagic))
	f.Add([]byte(snapMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		hdrStart, recs, used, perr := parseSegment(data)
		if used > len(data) || used < 0 {
			t.Fatalf("parseSegment used %d of %d bytes", used, len(data))
		}
		if used == 0 && perr == nil && len(data) > 0 {
			t.Fatal("parseSegment consumed nothing without error")
		}
		if perr == nil && used != len(data) {
			t.Fatalf("no error but %d bytes unconsumed", len(data)-used)
		}
		if hdrStart < 0 {
			t.Fatalf("negative header start %d", hdrStart)
		}
		end := hdrStart
		for _, r := range recs {
			if r.start < 0 || len(r.ops) == 0 {
				t.Fatalf("parsed record start=%d ops=%d", r.start, len(r.ops))
			}
			if r.seq > MaxBatchSeq {
				t.Fatalf("parsed record sequence %d out of range", r.seq)
			}
			if r.end <= 0 || r.end > used {
				t.Fatalf("record end %d past used %d", r.end, used)
			}
			// Every parsed batch must be one the encoder could emit:
			// re-encoding must succeed and decode back identically.
			payload, err := encodeBatch(nil, r.start, r.seq, r.ops)
			if err != nil {
				t.Fatalf("parsed batch does not re-encode: %v", err)
			}
			s2, q2, ops2, err := decodeBatch(payload)
			if err != nil || s2 != r.start || q2 != r.seq || len(ops2) != len(r.ops) {
				t.Fatalf("batch round trip broke: %v", err)
			}
			end = r.start + int64(len(r.ops))
		}
		_ = end

		// The snapshot parser must hold the same line. wantPos 0 and
		// the header's own claim both get a shot.
		if g, seq, err := parseSnapshot(data, 0); err == nil && (g == nil || seq > MaxBatchSeq) {
			t.Fatal("parseSnapshot returned nil grammar or bad sequence without error")
		}
		if start, _, err := parseHeader(data, snapMagic); err == nil {
			if g, seq, err := parseSnapshot(data, start); err == nil && (g == nil || seq > MaxBatchSeq) {
				t.Fatal("parseSnapshot returned nil grammar or bad sequence without error")
			}
		}
	})
}
