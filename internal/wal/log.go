package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/update"
)

func segName(start int64) string { return fmt.Sprintf("wal-%016x.log", start) }
func snapName(pos int64) string  { return fmt.Sprintf("snap-%016x.snap", pos) }

// parseSegName extracts the start position from a segment file name.
func parseSegName(name string) (int64, bool) { return parseNumName(name, "wal-", ".log") }

// parseSnapName extracts the covered position from a snapshot file name.
func parseSnapName(name string) (int64, bool) { return parseNumName(name, "snap-", ".snap") }

func parseNumName(name, prefix, suffix string) (int64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 63)
	if err != nil {
		return 0, false
	}
	return int64(v), true
}

// Counters are the Log's cumulative durability counters. All fields
// only grow; a snapshot of them is returned by Log.Counters.
type Counters struct {
	// Appends counts acked batch appends; AppendedBytes their framed
	// on-disk size.
	Appends       int64
	AppendedBytes int64
	// Syncs counts fsyncs on the append path and snapshot publishes;
	// SyncNanos is the wall time they took.
	Syncs     int64
	SyncNanos int64
	// Snapshots counts published snapshots; SnapshotBytes their size.
	Snapshots     int64
	SnapshotBytes int64
	// SegmentsRemoved counts WAL segments deleted by truncation.
	SegmentsRemoved int64
}

// Log is one document's write-ahead log: an active append segment plus
// the sealed segments and snapshots sharing its directory. Safe for
// concurrent use; appends serialize on an internal mutex, and snapshot
// publication does its heavy file work off that mutex so a background
// snapshot never stalls the append path.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	w        *Writer // active segment
	segStart int64   // stream position of the active segment's first op
	pos      int64   // next op position (== ops durably appended)
	broken   error   // sticky first append-path failure
	lastSync time.Time
	ctr      Counters

	snapMu sync.Mutex // serializes snapshot publication
}

// Create initialises a document directory: a base snapshot covering
// position 0 (the seed grammar, so a crash before the first rolled
// snapshot still recovers) and an empty first segment. Fails if the
// directory already exists — reopening goes through Recover.
func Create(dir string, encodedGrammar []byte, opts Options) (*Log, error) {
	if err := os.Mkdir(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", dir, err)
	}
	l := &Log{dir: dir, opts: opts}
	if err := l.publishSnapshot(0, 0, encodedGrammar); err != nil {
		return nil, err
	}
	if err := l.openSegmentLocked(0); err != nil {
		return nil, err
	}
	if err := l.syncDir(); err != nil {
		return nil, err
	}
	return l, nil
}

// openSegmentLocked creates and activates the segment starting at
// stream position start. Caller holds mu (or owns l exclusively).
func (l *Log) openSegmentLocked(start int64) error {
	path := filepath.Join(l.dir, segName(start))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	w := NewWriter(f, FileWAL, l.opts.Injector, 0)
	if err := w.WriteHeader(segMagic, start); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	l.w = w
	l.segStart = start
	return nil
}

// Pos returns the stream position after the last durably appended op.
func (l *Log) Pos() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pos
}

// Counters returns a snapshot of the cumulative counters.
func (l *Log) Counters() Counters {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ctr
}

// AppendBatch appends one committed batch whose first op has stream
// position start. Batches must chain contiguously (start == Pos()); a
// gap means the caller's in-memory state and the log disagree. seq is
// the client batch sequence number the batch was applied under (0 =
// unsequenced); it rides in the record so exactly-once retry state
// survives crash recovery. Any write or fsync failure marks the log
// broken: the batch was not acked and every later append fails fast
// with ErrLogBroken, because disk may now hold a torn prefix the
// in-memory document never applied.
func (l *Log) AppendBatch(start int64, seq uint64, ops []update.Op) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("%w: %v", ErrLogBroken, l.broken)
	}
	if start != l.pos {
		return fmt.Errorf("wal: batch starts at %d, log is at %d", start, l.pos)
	}
	payload, err := encodeBatch(nil, start, seq, ops)
	if err != nil {
		return err
	}
	if l.w.Offset() >= l.opts.segmentBytes() {
		if err := l.rollSegmentLocked(); err != nil {
			l.broken = err
			return err
		}
	}
	n, err := l.w.AppendRecord(payload)
	if err != nil {
		l.broken = err
		return err
	}
	if err := l.maybeSyncLocked(); err != nil {
		l.broken = err
		return err
	}
	l.pos += int64(len(ops))
	l.ctr.Appends++
	l.ctr.AppendedBytes += n
	return nil
}

// rollSegmentLocked seals the active segment (sync + close) and opens
// the next one starting at the current position.
func (l *Log) rollSegmentLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.w.Close(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	return l.openSegmentLocked(l.pos)
}

func (l *Log) maybeSyncLocked() error {
	switch l.opts.Fsync {
	case FsyncBatch:
		return l.syncLocked()
	case FsyncInterval:
		if time.Since(l.lastSync) >= l.opts.fsyncEvery() {
			return l.syncLocked()
		}
	}
	return nil
}

func (l *Log) syncLocked() error {
	t0 := time.Now()
	if err := l.w.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.ctr.Syncs++
	l.ctr.SyncNanos += time.Since(t0).Nanoseconds()
	l.lastSync = t0
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
// A closed log is a no-op: Close already synced (or the log is broken
// and its tail is suspect anyway).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return nil
	}
	if l.broken != nil {
		return fmt.Errorf("%w: %v", ErrLogBroken, l.broken)
	}
	if err := l.syncLocked(); err != nil {
		l.broken = err
		return err
	}
	return nil
}

// Close fsyncs and closes the active segment. A broken log closes the
// file without syncing — its tail is already suspect and recovery will
// truncate it.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return nil
	}
	var err error
	if l.broken == nil {
		err = l.syncLocked()
	}
	if cerr := l.w.Close(); err == nil {
		err = cerr
	}
	l.w = nil
	return err
}

// syncDir fsyncs the document directory so created/renamed/removed
// file entries are themselves durable.
func (l *Log) syncDir() error {
	if l.opts.Injector != nil {
		if _, err := l.opts.Injector.Inject(FileSnapshot, OpSync, nil); err != nil {
			return fmt.Errorf("wal: sync dir: %w", err)
		}
	}
	d, err := os.Open(l.dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// remove deletes a file through the injector.
func (l *Log) remove(kind FileKind, path string) error {
	if l.opts.Injector != nil {
		if _, err := l.opts.Injector.Inject(kind, OpRemove, nil); err != nil {
			return fmt.Errorf("wal: remove %s: %w", filepath.Base(path), err)
		}
	}
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("wal: remove: %w", err)
	}
	return nil
}

// truncateBefore removes sealed segments every op of which is below
// pos. A sealed segment's coverage ends where the next segment starts,
// so only segments with a successor can be judged; the active segment
// is never removed. Missing coverage is never created here — the call
// only ever deletes whole files whose ops a retained snapshot already
// covers.
func (l *Log) truncateBefore(pos int64) error {
	starts, err := listNums(l.dir, parseSegName)
	if err != nil {
		return err
	}
	l.mu.Lock()
	active := l.segStart
	l.mu.Unlock()
	var removed int64
	for i := 0; i+1 < len(starts); i++ {
		if starts[i] >= active || starts[i+1] > pos {
			break
		}
		if err := l.remove(FileWAL, filepath.Join(l.dir, segName(starts[i]))); err != nil {
			return err
		}
		removed++
	}
	if removed > 0 {
		if err := l.syncDir(); err != nil {
			return err
		}
		l.mu.Lock()
		l.ctr.SegmentsRemoved += removed
		l.mu.Unlock()
	}
	return nil
}

// listNums returns the sorted positions parsed from the directory's
// file names by parse, skipping foreign files.
func listNums(dir string, parse func(string) (int64, bool)) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var out []int64
	for _, e := range ents {
		if v, ok := parse(e.Name()); ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
