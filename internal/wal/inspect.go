package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Inspection is strictly read-only: unlike Recover it never truncates,
// deletes, or repairs — walinspect must be safe to run against a live
// or evidence directory.

// SegmentInfo describes one WAL segment as found on disk.
type SegmentInfo struct {
	Name    string
	Start   int64 // stream position of the first op (from the header)
	End     int64 // stream position after the last valid op
	Records int
	Ops     int64
	Bytes   int64 // file size
	// TornBytes is the byte count after the last valid record; 0 for a
	// clean segment. Err explains the defect.
	TornBytes int64
	Err       string
}

// SnapshotInfo describes one snapshot file.
type SnapshotInfo struct {
	Name  string
	Pos   int64
	Bytes int64
	// Seq is the snapshot's recorded client batch sequence (0 when it
	// was published without one).
	Seq uint64
	// Valid reports whether the snapshot fully validates (CRC, position
	// agreement, grammar decode); Err explains a failure.
	Valid bool
	Err   string
}

// DocInfo describes one document directory.
type DocInfo struct {
	Dir       string
	ID        string // decoded document ID ("" if the name is foreign)
	Segments  []SegmentInfo
	Snapshots []SnapshotInfo
	// DurablePos is the stream position recovery would reach: the
	// newest valid snapshot's position plus the contiguous WAL chain on
	// top of it. -1 when no snapshot validates (recovery would refuse).
	DurablePos int64
	// TailOps is how many ops that chain replays past the snapshot.
	TailOps int64
}

// InspectDoc reads one document directory without modifying it.
func InspectDoc(dir string) (*DocInfo, error) {
	info := &DocInfo{Dir: dir, DurablePos: -1}
	if id, ok := ParseDocDir(filepath.Base(dir)); ok {
		info.ID = id
	}
	snaps, err := listNums(dir, parseSnapName)
	if err != nil {
		return nil, err
	}
	snapPos := int64(-1)
	for _, pos := range snaps {
		path := filepath.Join(dir, snapName(pos))
		si := SnapshotInfo{Name: snapName(pos), Pos: pos}
		if fi, err := os.Stat(path); err == nil {
			si.Bytes = fi.Size()
		}
		if _, seq, err := readSnapshot(path, pos); err != nil {
			si.Err = err.Error()
		} else {
			si.Valid = true
			si.Seq = seq
			if pos > snapPos {
				snapPos = pos
			}
		}
		info.Snapshots = append(info.Snapshots, si)
	}

	starts, err := listNums(dir, parseSegName)
	if err != nil {
		return nil, err
	}
	for _, start := range starts {
		path := filepath.Join(dir, segName(start))
		si := SegmentInfo{Name: segName(start), Start: start, End: start}
		data, err := os.ReadFile(path)
		if err != nil {
			si.Err = err.Error()
			info.Segments = append(info.Segments, si)
			continue
		}
		si.Bytes = int64(len(data))
		hdrStart, recs, used, perr := parseSegment(data)
		if used == 0 && perr != nil {
			si.Err = perr.Error()
			si.TornBytes = si.Bytes
			info.Segments = append(info.Segments, si)
			continue
		}
		si.Start = hdrStart
		si.End = hdrStart
		for _, r := range recs {
			si.Records++
			si.Ops += int64(len(r.ops))
			si.End = r.start + int64(len(r.ops))
		}
		if used < len(data) {
			si.TornBytes = int64(len(data) - used)
			if perr != nil {
				si.Err = perr.Error()
			}
		}
		info.Segments = append(info.Segments, si)
	}

	if snapPos >= 0 {
		info.DurablePos = snapPos
		// Walk the chain exactly like recovery plans it, read-only.
		expect := snapPos
	chain:
		for _, si := range info.Segments {
			if si.Err != "" && si.Records == 0 && si.TornBytes == si.Bytes {
				break // corrupt header stops the chain
			}
			data, err := os.ReadFile(filepath.Join(dir, si.Name))
			if err != nil {
				break
			}
			_, recs, _, _ := parseSegment(data)
			for _, r := range recs {
				recEnd := r.start + int64(len(r.ops))
				switch {
				case recEnd <= expect:
				case r.start <= expect:
					info.TailOps += recEnd - expect
					expect = recEnd
				default:
					break chain
				}
			}
			if si.TornBytes > 0 {
				break
			}
		}
		info.DurablePos = expect
	}
	return info, nil
}

// InspectFleet inspects every document directory under root.
func InspectFleet(root string) ([]*DocInfo, error) {
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("wal: inspect %s: %w", root, err)
	}
	var out []*DocInfo
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if _, ok := ParseDocDir(e.Name()); !ok {
			continue
		}
		info, err := InspectDoc(filepath.Join(root, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
