package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/update"
)

// Segment and snapshot file headers. Both start with a 4-byte magic
// and a uvarint version so walinspect (and future format bumps) can
// tell the files apart without trusting extensions.
const (
	segMagic   = "SLTW"
	snapMagic  = "SLTS"
	walVersion = 1
)

// castagnoli is the CRC32C table every record checksum uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer appends framed records to one file, routing every byte
// through the fault injector. It is the single funnel all durable
// bytes pass through: segments and snapshots alike, so one injection
// point covers every crash surface.
type Writer struct {
	f    *os.File
	kind FileKind
	inj  Injector
	off  int64

	scratch []byte // frame assembly buffer, reused across records
}

// NewWriter wraps an open file. off must be the current append offset
// (0 for a fresh file, the valid size for a recovered one).
func NewWriter(f *os.File, kind FileKind, inj Injector, off int64) *Writer {
	return &Writer{f: f, kind: kind, inj: inj, off: off}
}

// Offset returns the bytes written so far (including a torn prefix of
// a failed write — exactly what is on disk).
func (w *Writer) Offset() int64 { return w.off }

// write pushes p through the injector and then to the file. On an
// injected torn write the surviving prefix really reaches the file
// before the error returns — the disk state a crash would leave.
func (w *Writer) write(p []byte) error {
	n := len(p)
	var injErr error
	if w.inj != nil {
		n, injErr = w.inj.Inject(w.kind, OpWrite, p)
	}
	if n > 0 {
		m, err := w.f.Write(p[:n])
		w.off += int64(m)
		if err != nil {
			return err
		}
		if m < n {
			return io.ErrShortWrite
		}
	}
	return injErr
}

// WriteHeader writes a file header (magic, version, start position).
func (w *Writer) WriteHeader(magic string, start int64) error {
	w.scratch = append(w.scratch[:0], magic...)
	w.scratch = binary.AppendUvarint(w.scratch, walVersion)
	w.scratch = binary.AppendUvarint(w.scratch, uint64(start))
	return w.write(w.scratch)
}

// AppendRecord frames payload (uvarint length, payload, CRC32C) and
// writes it as one write call, so injected byte budgets tear records
// at byte-precise boundaries. Returns the framed size.
func (w *Writer) AppendRecord(payload []byte) (int64, error) {
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("wal: record payload of %d bytes exceeds %d", len(payload), maxRecordBytes)
	}
	w.scratch = binary.AppendUvarint(w.scratch[:0], uint64(len(payload)))
	w.scratch = append(w.scratch, payload...)
	w.scratch = binary.LittleEndian.AppendUint32(w.scratch, crc32.Checksum(payload, castagnoli))
	n := int64(len(w.scratch))
	if err := w.write(w.scratch); err != nil {
		return n, err
	}
	return n, nil
}

// Sync fsyncs the file (through the injector).
func (w *Writer) Sync() error {
	if w.inj != nil {
		if _, err := w.inj.Inject(w.kind, OpSync, nil); err != nil {
			return err
		}
	}
	return w.f.Sync()
}

// Close closes the underlying file without syncing.
func (w *Writer) Close() error { return w.f.Close() }

// nextRecord parses the framed record at data[off:]. A clean parse
// returns the payload and the offset past the record. Any defect —
// torn length varint, length past maxRecordBytes, short payload or
// checksum, CRC mismatch — is returned as an error; the caller treats
// off as the truncation point.
func nextRecord(data []byte, off int) (payload []byte, end int, err error) {
	ln, w := binary.Uvarint(data[off:])
	if w <= 0 {
		return nil, off, fmt.Errorf("wal: torn record length at offset %d", off)
	}
	if ln > maxRecordBytes {
		return nil, off, fmt.Errorf("wal: record length %d at offset %d exceeds %d", ln, off, maxRecordBytes)
	}
	body := off + w
	if uint64(len(data)-body) < ln+4 {
		return nil, off, fmt.Errorf("wal: short record at offset %d (%d of %d+4 bytes)", off, len(data)-body, ln)
	}
	payload = data[body : body+int(ln)]
	want := binary.LittleEndian.Uint32(data[body+int(ln):])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, off, fmt.Errorf("wal: CRC mismatch at offset %d (got %08x want %08x)", off, got, want)
	}
	return payload, body + int(ln) + 4, nil
}

// parseHeader validates a file header and returns the declared start
// position and the offset past the header.
func parseHeader(data []byte, magic string) (start int64, end int, err error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return 0, 0, fmt.Errorf("wal: bad magic (want %q)", magic)
	}
	off := len(magic)
	ver, w := binary.Uvarint(data[off:])
	if w <= 0 || ver != walVersion {
		return 0, 0, fmt.Errorf("wal: unsupported version %d", ver)
	}
	off += w
	s, w := binary.Uvarint(data[off:])
	if w <= 0 {
		return 0, 0, fmt.Errorf("wal: torn header")
	}
	if s > 1<<62 {
		return 0, 0, fmt.Errorf("wal: header start position %d out of range", s)
	}
	return int64(s), off + w, nil
}

// MaxBatchSeq bounds the optional per-batch client sequence number
// (see AppendBatch). The bound matches the position bound so a decoded
// sequence always fits an int64 too.
const MaxBatchSeq = 1 << 62

// encodeBatch builds a record payload for a committed batch: the
// batch's stream start position, then the count-prefixed ops (the
// shared update.AppendOps body, so the WAL and the network wire carry
// the same batch encoding), then — only when seq > 0 — the client
// batch sequence number as a trailing uvarint. Sequence-free records
// are byte-identical to the pre-sequence format, so logs written
// before sequences existed keep decoding.
func encodeBatch(dst []byte, start int64, seq uint64, ops []update.Op) ([]byte, error) {
	if start < 0 {
		return dst, fmt.Errorf("wal: negative batch start %d", start)
	}
	if seq > MaxBatchSeq {
		return dst, fmt.Errorf("wal: batch sequence %d out of range", seq)
	}
	dst = binary.AppendUvarint(dst, uint64(start))
	dst, err := update.AppendOps(dst, ops)
	if err != nil {
		return dst, fmt.Errorf("wal: %w", err)
	}
	if seq > 0 {
		dst = binary.AppendUvarint(dst, seq)
	}
	return dst, nil
}

// decodeBatch parses a record payload. The payload passed CRC, but a
// hostile or version-skewed file can still frame garbage, so every
// count is validated (update.DecodeOps' caps) and trailing bytes
// beyond the optional sequence varint are an error. seq is 0 for a
// record appended without one.
func decodeBatch(payload []byte) (start int64, seq uint64, ops []update.Op, err error) {
	s, w := binary.Uvarint(payload)
	if w <= 0 || s > 1<<62 {
		return 0, 0, nil, fmt.Errorf("wal: bad batch start position")
	}
	ops, used, err := update.DecodeOps(payload[w:])
	if err != nil {
		return 0, 0, nil, fmt.Errorf("wal: %w", err)
	}
	if rest := payload[w+used:]; len(rest) > 0 {
		sq, sw := binary.Uvarint(rest)
		if sw <= 0 || sw != len(rest) || sq == 0 || sq > MaxBatchSeq {
			return 0, 0, nil, fmt.Errorf("wal: %d trailing bytes after batch", len(rest))
		}
		seq = sq
	}
	return int64(s), seq, ops, nil
}
