package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/grammar"
	"repro/internal/update"
)

// RecoveryStats describes what Recover found and discarded.
type RecoveryStats struct {
	// SnapshotsCorrupt counts snapshot files that failed validation and
	// were skipped (and deleted) before one loaded.
	SnapshotsCorrupt int64
	// RecoveredOps is the WAL tail length replayed on top of the
	// snapshot — ops that were acked after the snapshot was cut.
	RecoveredOps int64
	// TruncatedTailRecords counts records dropped from the log tail:
	// parsed records past a break in the chain, plus one for a torn
	// final record. These were never acked (or were acked under
	// FsyncOff, which trades exactly this away).
	TruncatedTailRecords int64
	// TruncatedTailBytes is the byte count truncated or removed.
	TruncatedTailBytes int64
}

// Recovered is the result of reopening a document directory.
type Recovered struct {
	// Grammar is the snapshot state; the caller replays Tail on it to
	// reach the durable head.
	Grammar *grammar.Grammar
	// SnapshotPos is the op position the snapshot covers.
	SnapshotPos int64
	// Tail holds the ops in (SnapshotPos, Log.Pos()], in order.
	Tail []update.Op
	// BatchLens splits Tail back into the batches that were appended:
	// Tail[0:BatchLens[0]] was one AppendBatch call, and so on. Replaying
	// batch-by-batch reproduces the original maintenance cadence
	// (per-batch garbage collection), which batch-oblivious replay would
	// not.
	BatchLens []int
	// LastSeq is the highest client batch sequence number found in the
	// surviving chain (snapshot included) — the exactly-once retry
	// watermark: a reconnecting client replaying a batch with a
	// sequence at or below it must be acked idempotently, not
	// re-applied. 0 when no batch ever carried one.
	LastSeq uint64
	// Log is open and ready to append at Log.Pos().
	Log   *Log
	Stats RecoveryStats
}

// segRecord is one parsed, CRC-valid batch record.
type segRecord struct {
	start int64 // stream position of the batch's first op
	seq   uint64
	ops   []update.Op
	end   int // byte offset just past this record's frame
}

// parseSegment parses as many valid records as the segment holds. used
// is the byte offset after the last good record; a non-nil err with
// used < len(data) explains why parsing stopped there (torn tail, bad
// CRC, undecodable batch). A header failure returns used == 0.
func parseSegment(data []byte) (hdrStart int64, recs []segRecord, used int, err error) {
	hdrStart, used, err = parseHeader(data, segMagic)
	if err != nil {
		return 0, nil, 0, err
	}
	for used < len(data) {
		payload, end, rerr := nextRecord(data, used)
		if rerr != nil {
			return hdrStart, recs, used, rerr
		}
		start, seq, ops, derr := decodeBatch(payload)
		if derr != nil {
			return hdrStart, recs, used, derr
		}
		recs = append(recs, segRecord{start: start, seq: seq, ops: ops, end: end})
		used = end
	}
	return hdrStart, recs, used, nil
}

// Recover reopens a document directory after a crash (or a clean
// close — the two are deliberately indistinguishable here). It loads
// the newest snapshot that validates, falling back to older ones;
// replans the WAL tail, keeping records only while they chain
// contiguously from the snapshot position; and truncates everything
// past the first defect — a torn record, a CRC mismatch, a gap in the
// chain, a corrupt segment header. It never fails open: no byte past a
// defect is ever replayed. The returned Log appends where the
// recovered stream ends.
func Recover(dir string, opts Options) (*Recovered, error) {
	if err := removeStaleTemps(dir); err != nil {
		return nil, err
	}
	g, snapPos, snapSeq, corrupt, err := loadNewestSnapshot(dir)
	if err != nil {
		return nil, err
	}
	rec := &Recovered{Grammar: g, SnapshotPos: snapPos, LastSeq: snapSeq}
	rec.Stats.SnapshotsCorrupt = corrupt

	starts, err := listNums(dir, parseSegName)
	if err != nil {
		return nil, err
	}

	expect := snapPos // next op position the chain must produce
	activeStart := int64(-1)
	activeOff := 0 // valid byte length of the surviving last segment
	stopped := false
	for _, segStart := range starts {
		path := filepath.Join(dir, segName(segStart))
		if stopped {
			// Everything past the stop point is discarded whole.
			if fi, err := os.Stat(path); err == nil {
				rec.Stats.TruncatedTailBytes += fi.Size()
			}
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("wal: recover: drop segment: %w", err)
			}
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: recover: %w", err)
		}
		hdrStart, recs, used, perr := parseSegment(data)
		if used == 0 && perr != nil {
			// Corrupt header: the file is unusable. Stop the chain here.
			stopped = true
			rec.Stats.TruncatedTailBytes += int64(len(data))
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("wal: recover: drop segment: %w", err)
			}
			continue
		}
		if hdrStart != segStart {
			// File name and header disagree — treat like a bad header.
			stopped = true
			rec.Stats.TruncatedTailBytes += int64(len(data))
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("wal: recover: drop segment: %w", err)
			}
			continue
		}
		keepOff := headerLen(data)
		for i, r := range recs {
			recEnd := r.start + int64(len(r.ops))
			switch {
			case recEnd <= expect:
				// Fully below the snapshot: already covered (and its
				// sequence, if any, is at or below the snapshot's).
				if r.seq > rec.LastSeq {
					rec.LastSeq = r.seq
				}
				keepOff = r.end
			case r.start <= expect:
				// Chains (possibly straddling the snapshot position).
				take := r.ops[expect-r.start:]
				rec.Tail = append(rec.Tail, take...)
				rec.BatchLens = append(rec.BatchLens, len(take))
				if r.seq > rec.LastSeq {
					rec.LastSeq = r.seq
				}
				expect = recEnd
				keepOff = r.end
			default:
				// Gap: this record's ops do not chain. Everything from
				// here on is past a hole and must go.
				stopped = true
				rec.Stats.TruncatedTailRecords += int64(len(recs) - i)
				rec.Stats.TruncatedTailBytes += int64(len(data) - keepOff)
			}
			if stopped {
				break
			}
		}
		if !stopped && used < len(data) {
			// Torn or corrupt final record.
			stopped = true
			rec.Stats.TruncatedTailRecords++
			rec.Stats.TruncatedTailBytes += int64(len(data) - used)
			keepOff = used
		}
		if keepOff < len(data) {
			if err := os.Truncate(path, int64(keepOff)); err != nil {
				return nil, fmt.Errorf("wal: recover: truncate tail: %w", err)
			}
		}
		activeStart, activeOff = segStart, keepOff
	}

	l := &Log{dir: dir, opts: opts, pos: expect}
	if activeStart >= 0 {
		path := filepath.Join(dir, segName(activeStart))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: recover: reopen segment: %w", err)
		}
		l.w = NewWriter(f, FileWAL, opts.Injector, int64(activeOff))
		l.segStart = activeStart
	} else if err := l.openSegmentLocked(expect); err != nil {
		return nil, err
	}
	if err := l.syncDir(); err != nil {
		return nil, err
	}
	rec.Log = l
	rec.Stats.RecoveredOps = int64(len(rec.Tail))
	return rec, nil
}

// headerLen returns the byte length of a segment's (already validated)
// header.
func headerLen(data []byte) int {
	_, end, _ := parseHeader(data, segMagic)
	return end
}

// removeStaleTemps deletes .tmp staging files a crash abandoned.
func removeStaleTemps(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: recover: %w", err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("wal: recover: %w", err)
			}
		}
	}
	return nil
}

// loadNewestSnapshot tries snapshots newest-first, deleting each
// corrupt one it skips, and returns the first that validates along
// with its position and recorded batch sequence.
func loadNewestSnapshot(dir string) (*grammar.Grammar, int64, uint64, int64, error) {
	snaps, err := listNums(dir, parseSnapName)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	var corrupt int64
	for i := len(snaps) - 1; i >= 0; i-- {
		path := filepath.Join(dir, snapName(snaps[i]))
		g, seq, err := readSnapshot(path, snaps[i])
		if err == nil {
			return g, snaps[i], seq, corrupt, nil
		}
		corrupt++
		if err := os.Remove(path); err != nil {
			return nil, 0, 0, 0, fmt.Errorf("wal: recover: drop snapshot: %w", err)
		}
	}
	return nil, 0, 0, 0, fmt.Errorf("%w in %s", ErrNoSnapshot, dir)
}

// IsNoSnapshot reports whether err means the directory held no
// loadable snapshot.
func IsNoSnapshot(err error) bool { return errors.Is(err, ErrNoSnapshot) }
