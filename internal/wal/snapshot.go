package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/grammar"
)

// snapRetain is how many snapshots a document keeps. Two, not one: if
// the newest is corrupt (crash mid-publish escapes the rename barrier
// on some filesystems), recovery falls back to the previous — and
// truncation only ever deletes segments below the OLDER retained
// snapshot, so the fallback always has full WAL coverage up to the
// present.
const snapRetain = 2

// WriteSnapshot publishes a snapshot: encodedGrammar is the document's
// grammar.Encode bytes with every op below pos applied, and seq is the
// highest client batch sequence applied by those ops (0 = none). The
// sequence must ride in the snapshot, not only in batch records:
// truncation deletes the segments a snapshot covers, and recovery from
// a snapshot alone must still refuse a replayed duplicate. The file is
// staged as a temp, fsynced, renamed into place, and the directory
// synced — a crash at any point leaves either the old snapshot set or
// the new one, never a half-visible file under the real name. After
// publishing, older snapshots beyond the retention pair are pruned and
// fully covered WAL segments are truncated.
//
// The heavy file work runs off the append mutex, so a concurrent
// AppendBatch never waits on snapshot IO.
func (l *Log) WriteSnapshot(pos int64, seq uint64, encodedGrammar []byte) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	if pos < 0 {
		return fmt.Errorf("wal: snapshot at negative position %d", pos)
	}
	if err := l.publishSnapshot(pos, seq, encodedGrammar); err != nil {
		return err
	}
	// Prune beyond the retention pair, oldest first.
	snaps, err := listNums(l.dir, parseSnapName)
	if err != nil {
		return err
	}
	for len(snaps) > snapRetain {
		if err := l.remove(FileSnapshot, filepath.Join(l.dir, snapName(snaps[0]))); err != nil {
			return err
		}
		snaps = snaps[1:]
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	l.mu.Lock()
	l.ctr.Snapshots++
	l.ctr.SnapshotBytes += int64(len(encodedGrammar))
	l.mu.Unlock()
	// Segments below the older retained snapshot are covered twice
	// over; drop them.
	return l.truncateBefore(snaps[0])
}

// publishSnapshot stages and renames one snapshot file. The payload is
// uvarint(pos) | uvarint(seq) | grammar — the sequence sits before the
// grammar because grammar.Decode reads through a buffered reader and
// cannot report an exact consumed length for anything after it.
func (l *Log) publishSnapshot(pos int64, seq uint64, encodedGrammar []byte) error {
	if seq > MaxBatchSeq {
		return fmt.Errorf("wal: snapshot sequence %d out of range", seq)
	}
	payload := binary.AppendUvarint(nil, uint64(pos))
	payload = binary.AppendUvarint(payload, seq)
	payload = append(payload, encodedGrammar...)
	tmp := filepath.Join(l.dir, snapName(pos)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: stage snapshot: %w", err)
	}
	w := NewWriter(f, FileSnapshot, l.opts.Injector, 0)
	err = w.WriteHeader(snapMagic, pos)
	if err == nil {
		_, err = w.AppendRecord(payload)
	}
	if err == nil {
		err = w.Sync()
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if l.opts.Injector != nil {
		if _, err := l.opts.Injector.Inject(FileSnapshot, OpRename, nil); err != nil {
			return fmt.Errorf("wal: publish snapshot: %w", err)
		}
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName(pos))); err != nil {
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	return nil
}

// readSnapshot loads and fully validates one snapshot file: header,
// record CRC, position agreement with the file name, grammar decode,
// and no trailing bytes beyond the optional sequence varint. Any
// defect is an error — the caller treats the file as corrupt and falls
// back.
func readSnapshot(path string, wantPos int64) (*grammar.Grammar, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return parseSnapshot(data, wantPos)
}

// parseSnapshot is the pure validation core of readSnapshot (and the
// fuzz target's entry point). seq is the snapshot's recorded client
// batch sequence, 0 when it was published without one.
func parseSnapshot(data []byte, wantPos int64) (*grammar.Grammar, uint64, error) {
	start, off, err := parseHeader(data, snapMagic)
	if err != nil {
		return nil, 0, err
	}
	if start != wantPos {
		return nil, 0, fmt.Errorf("wal: snapshot header position %d, file name says %d", start, wantPos)
	}
	payload, end, err := nextRecord(data, off)
	if err != nil {
		return nil, 0, err
	}
	if end != len(data) {
		return nil, 0, fmt.Errorf("wal: %d trailing bytes after snapshot record", len(data)-end)
	}
	pos, w := binary.Uvarint(payload)
	if w <= 0 || int64(pos) != wantPos {
		return nil, 0, fmt.Errorf("wal: snapshot payload position mismatch")
	}
	seq, sw := binary.Uvarint(payload[w:])
	if sw <= 0 || seq > MaxBatchSeq {
		return nil, 0, fmt.Errorf("wal: bad snapshot sequence")
	}
	r := bytes.NewReader(payload[w+sw:])
	g, err := grammar.Decode(r)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: snapshot grammar: %w", err)
	}
	if r.Len() != 0 {
		return nil, 0, fmt.Errorf("wal: %d trailing bytes after snapshot grammar", r.Len())
	}
	return g, seq, nil
}
