package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datasets"
	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/workload"
)

// testWorkload compresses a small corpus seed and returns its grammar
// plus a realistic op stream (renames, inserts, deletes).
func testWorkload(t *testing.T, nOps int) (*grammar.Grammar, []update.Op) {
	t.Helper()
	c, ok := datasets.ByShort("EW")
	if !ok {
		t.Fatal("no EW corpus")
	}
	seq, err := workload.Updates(c.Generate(0.05, 3), nOps, 80, 11)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
	return g, seq.Ops
}

func encodeGrammar(t *testing.T, g *grammar.Grammar) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := grammar.Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// opsBytes canonically encodes an op slice, so two slices compare as
// byte strings.
func opsBytes(t *testing.T, ops []update.Op) []byte {
	t.Helper()
	var buf []byte
	for _, op := range ops {
		var err error
		if buf, err = update.AppendOp(buf, op); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// appendAll writes ops to the log in fixed-size batches, returning how
// many ops were acked.
func appendAll(t *testing.T, l *Log, ops []update.Op, batch int) int {
	t.Helper()
	base := l.Pos()
	for off := 0; off < len(ops); off += batch {
		end := min(off+batch, len(ops))
		if err := l.AppendBatch(base+int64(off), 0, ops[off:end]); err != nil {
			return off
		}
	}
	return len(ops)
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), filepath.Base(src))
	if err := os.Mkdir(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestLogAppendRecoverRoundTrip(t *testing.T) {
	g, ops := testWorkload(t, 60)
	seed := encodeGrammar(t, g)
	dir := filepath.Join(t.TempDir(), DocDir("doc"))
	l, err := Create(dir, seed, Options{Fsync: FsyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	if n := appendAll(t, l, ops[:40], 7); n != 40 {
		t.Fatalf("acked %d of 40 ops", n)
	}
	ctr := l.Counters()
	if ctr.Appends != 6 || ctr.Syncs < 6 || ctr.AppendedBytes == 0 {
		t.Fatalf("counters: %+v", ctr)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotPos != 0 || rec.Log.Pos() != 40 {
		t.Fatalf("recovered snapshotPos=%d pos=%d", rec.SnapshotPos, rec.Log.Pos())
	}
	if !bytes.Equal(encodeGrammar(t, rec.Grammar), seed) {
		t.Fatal("snapshot grammar differs from seed")
	}
	if !bytes.Equal(opsBytes(t, rec.Tail), opsBytes(t, ops[:40])) {
		t.Fatal("recovered tail differs from appended ops")
	}
	if rec.Stats.TruncatedTailRecords != 0 || rec.Stats.SnapshotsCorrupt != 0 {
		t.Fatalf("clean reopen reported damage: %+v", rec.Stats)
	}

	// The recovered log must keep appending where the stream ended.
	if err := rec.Log.AppendBatch(40, 0, ops[40:]); err != nil {
		t.Fatal(err)
	}
	if err := rec.Log.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := Recover(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Log.Close()
	if !bytes.Equal(opsBytes(t, rec2.Tail), opsBytes(t, ops)) {
		t.Fatal("second recovery lost ops")
	}
}

func TestAppendRejectsGapAndStaysUsable(t *testing.T) {
	g, ops := testWorkload(t, 10)
	dir := filepath.Join(t.TempDir(), DocDir("gap"))
	l, err := Create(dir, encodeGrammar(t, g), Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendBatch(5, 0, ops[5:]); err == nil {
		t.Fatal("gapped batch accepted")
	}
	if err := l.AppendBatch(0, 0, ops[:5]); err != nil {
		t.Fatalf("log unusable after rejected gap: %v", err)
	}
}

// TestRecoverEveryTruncationPoint is the exhaustive torn-tail test:
// the active segment cut at every byte boundary must recover to some
// acked batch prefix — never an error, never an op past the cut, never
// a half-applied batch.
func TestRecoverEveryTruncationPoint(t *testing.T) {
	g, ops := testWorkload(t, 36)
	seed := encodeGrammar(t, g)
	master := filepath.Join(t.TempDir(), DocDir("torn"))
	l, err := Create(master, seed, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 6
	if n := appendAll(t, l, ops, batch); n != len(ops) {
		t.Fatalf("acked %d of %d", n, len(ops))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(master, segName(0))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := copyDir(t, master)
		if err := os.Truncate(filepath.Join(dir, segName(0)), int64(cut)); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		n := len(rec.Tail)
		if n%batch != 0 {
			t.Fatalf("cut %d: recovered %d ops, not a batch multiple", cut, n)
		}
		if !bytes.Equal(opsBytes(t, rec.Tail), opsBytes(t, ops[:n])) {
			t.Fatalf("cut %d: recovered tail is not the stream prefix", cut)
		}
		if rec.Log.Pos() != int64(n) {
			t.Fatalf("cut %d: pos %d, tail %d", cut, rec.Log.Pos(), n)
		}
		// Recovery must leave the directory clean: a second recovery
		// sees the same state and reports no further damage.
		if err := rec.Log.Close(); err != nil {
			t.Fatal(err)
		}
		rec2, err := Recover(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: re-recovery failed: %v", cut, err)
		}
		if len(rec2.Tail) != n || rec2.Stats.TruncatedTailRecords != 0 {
			t.Fatalf("cut %d: recovery not idempotent: %d ops, stats %+v", cut, len(rec2.Tail), rec2.Stats)
		}
		// The reopened log must accept the rest of the stream.
		if n < len(ops) {
			if err := rec2.Log.AppendBatch(int64(n), 0, ops[n:]); err != nil {
				t.Fatalf("cut %d: append after recovery: %v", cut, err)
			}
		}
		rec2.Log.Close()
	}
}

func TestCrashPlanTearsWritesAndSticks(t *testing.T) {
	g, ops := testWorkload(t, 30)
	seed := encodeGrammar(t, g)
	dir := filepath.Join(t.TempDir(), DocDir("crash"))

	// Probe the exact on-disk size of the first two batches, so the
	// byte budget tears precisely inside the third record.
	clean, err := Create(filepath.Join(t.TempDir(), DocDir("probe")), seed, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.AppendBatch(0, 0, ops[:5]); err != nil {
		t.Fatal(err)
	}
	if err := clean.AppendBatch(5, 0, ops[5:10]); err != nil {
		t.Fatal(err)
	}
	probe := clean.Counters().AppendedBytes
	clean.Close()

	plan := NewCrashPlan()
	// Budget covers the segment header, two full batch records, and a
	// few bytes of the third — the third write tears.
	hdr := int64(len(segMagic)) + 2 // magic + version + start varints
	plan.WALWriteBytes = hdr + probe + 3
	l, err := Create(dir, seed, Options{Fsync: FsyncOff, Injector: plan})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(0, 0, ops[:5]); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(5, 0, ops[5:10]); err != nil {
		t.Fatal(err)
	}
	err = l.AppendBatch(10, 0, ops[10:15])
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write returned %v", err)
	}
	if !plan.Tripped() {
		t.Fatal("plan did not trip")
	}
	// The log is broken: nothing else may be acked.
	if err := l.AppendBatch(15, 0, ops[15:20]); !errors.Is(err, ErrLogBroken) {
		t.Fatalf("append on broken log returned %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrLogBroken) {
		t.Fatalf("sync on broken log returned %v", err)
	}
	l.Close() // crash: close without sync

	rec, err := Recover(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Log.Close()
	if !bytes.Equal(opsBytes(t, rec.Tail), opsBytes(t, ops[:10])) {
		t.Fatalf("recovered %d ops; want exactly the 10 acked", len(rec.Tail))
	}
	if rec.Stats.TruncatedTailRecords != 1 {
		t.Fatalf("want 1 truncated record (the torn one), got %+v", rec.Stats)
	}
}

func TestCrashPlanFsyncAndMetaBudgets(t *testing.T) {
	g, ops := testWorkload(t, 10)
	seed := encodeGrammar(t, g)

	plan := NewCrashPlan()
	// Create costs two syncs (base snapshot file + directory); the
	// first batch's fsync is the third, the second batch's fails.
	plan.Syncs = 3
	dir := filepath.Join(t.TempDir(), DocDir("fsync"))
	l, err := Create(dir, seed, Options{Fsync: FsyncBatch, Injector: plan})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(0, 0, ops[:3]); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(3, 0, ops[3:6]); !errors.Is(err, ErrInjected) {
		t.Fatalf("fsync budget: got %v", err)
	}
	l.Close()
	rec, err := Recover(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The second batch's bytes may be on disk (the write succeeded, the
	// fsync failed) — recovery may surface at most those, never more.
	if len(rec.Tail) != 3 && len(rec.Tail) != 6 {
		t.Fatalf("recovered %d ops, want 3 (acked) or 6 (written, unacked)", len(rec.Tail))
	}
	rec.Log.Close()

	// Meta budget: snapshot publish rename fails.
	plan2 := NewCrashPlan()
	plan2.MetaOps = 1 // Create's base-snapshot rename passes, next fails
	dir2 := filepath.Join(t.TempDir(), DocDir("meta"))
	l2, err := Create(dir2, seed, Options{Fsync: FsyncOff, Injector: plan2})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.AppendBatch(0, 0, ops[:5]); err != nil {
		t.Fatal(err)
	}
	if err := l2.WriteSnapshot(5, 0, seed); !errors.Is(err, ErrInjected) {
		t.Fatalf("snapshot rename: got %v", err)
	}
	l2.Close()
	rec2, err := Recover(dir2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Log.Close()
	if rec2.SnapshotPos != 0 || len(rec2.Tail) != 5 {
		t.Fatalf("mid-publish crash recovery: snap=%d tail=%d", rec2.SnapshotPos, len(rec2.Tail))
	}
}

func TestSnapshotRollPruneTruncate(t *testing.T) {
	g, ops := testWorkload(t, 60)
	dir := filepath.Join(t.TempDir(), DocDir("roll"))
	// Tiny segments so truncation has files to delete.
	l, err := Create(dir, encodeGrammar(t, g), Options{Fsync: FsyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	snapAt := func(pos int) {
		gg := g.Clone()
		if err := update.ApplyAll(gg, ops[:pos]); err != nil {
			t.Fatal(err)
		}
		if err := l.WriteSnapshot(int64(pos), 0, encodeGrammar(t, gg)); err != nil {
			t.Fatal(err)
		}
	}
	if n := appendAll(t, l, ops[:30], 5); n != 30 {
		t.Fatal("append failed")
	}
	snapAt(30)
	if n := appendAll(t, l, ops[30:], 5); n != 30 {
		t.Fatal("append failed")
	}
	snapAt(60)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, err := listNums(dir, parseSnapName)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0] != 30 || snaps[1] != 60 {
		t.Fatalf("retained snapshots %v, want [30 60]", snaps)
	}
	segs, err := listNums(dir, parseSegName)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0] > 30 {
		t.Fatalf("segments %v must still cover the fallback snapshot at 30", segs)
	}
	if ctr := l.Counters(); ctr.SegmentsRemoved == 0 || ctr.Snapshots != 2 {
		t.Fatalf("counters %+v: want truncation and 2 snapshots", ctr)
	}

	// Clean recovery rides the newest snapshot.
	rec, err := Recover(copyDir(t, dir), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotPos != 60 || len(rec.Tail) != 0 || rec.Log.Pos() != 60 {
		t.Fatalf("snap=%d tail=%d pos=%d", rec.SnapshotPos, len(rec.Tail), rec.Log.Pos())
	}
	wantG := g.Clone()
	if err := update.ApplyAll(wantG, ops); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeGrammar(t, rec.Grammar), encodeGrammar(t, wantG)) {
		t.Fatal("recovered grammar differs from replayed state")
	}
	rec.Log.Close()

	// Corrupt the newest snapshot: recovery falls back to pos 30 and
	// replays the retained segments — full coverage, same final state.
	dir2 := copyDir(t, dir)
	snapPath := filepath.Join(dir2, snapName(60))
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec2, err := Recover(dir2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.SnapshotPos != 30 || rec2.Stats.SnapshotsCorrupt != 1 {
		t.Fatalf("fallback: snap=%d stats=%+v", rec2.SnapshotPos, rec2.Stats)
	}
	if !bytes.Equal(opsBytes(t, rec2.Tail), opsBytes(t, ops[30:])) {
		t.Fatal("fallback tail is not ops[30:]")
	}
	rec2.Log.Close()

	// Corrupt both snapshots: recovery must refuse, not fail open.
	dir3 := copyDir(t, dir)
	for _, pos := range []int64{30, 60} {
		p := filepath.Join(dir3, snapName(pos))
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-3] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Recover(dir3, Options{}); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("double corruption recovered: %v", err)
	}
}

// TestSequenceSurvivesRecovery pins the exactly-once watermark: batch
// sequence numbers appended with records come back as Recovered.LastSeq,
// and a snapshot carries the watermark on its own — even when every
// covered segment has been truncated away, recovery must not forget
// which sequences were applied (a forgotten watermark would re-apply a
// retried batch).
func TestSequenceSurvivesRecovery(t *testing.T) {
	g, ops := testWorkload(t, 30)
	seed := encodeGrammar(t, g)
	dir := filepath.Join(t.TempDir(), DocDir("seq"))
	l, err := Create(dir, seed, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := l.AppendBatch(int64(i*5), uint64(i+1), ops[i*5:(i+1)*5]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(copyDir(t, dir), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 6 {
		t.Fatalf("recovered LastSeq %d from records, want 6", rec.LastSeq)
	}
	rec.Log.Close()

	// Publish a snapshot covering everything, then drop every segment:
	// the watermark must survive on the snapshot alone.
	l2, err := Recover(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gg := g.Clone()
	if err := update.ApplyAll(gg, ops); err != nil {
		t.Fatal(err)
	}
	if err := l2.Log.WriteSnapshot(30, 6, encodeGrammar(t, gg)); err != nil {
		t.Fatal(err)
	}
	l2.Log.Close()
	bare := copyDir(t, dir)
	segs, err := listNums(bare, parseSegName)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if err := os.Remove(filepath.Join(bare, segName(s))); err != nil {
			t.Fatal(err)
		}
	}
	rec2, err := Recover(bare, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Log.Close()
	if rec2.SnapshotPos != 30 || rec2.LastSeq != 6 {
		t.Fatalf("snapshot-only recovery: pos=%d LastSeq=%d, want 30/6", rec2.SnapshotPos, rec2.LastSeq)
	}
}

func TestDocDirNaming(t *testing.T) {
	ids := []string{"", "a", "doc-1", "π/..\\weird\x00id", "UPPER.lower"}
	for _, id := range ids {
		name := DocDir(id)
		if name != filepath.Base(name) || name == "." || name == ".." {
			t.Fatalf("DocDir(%q) = %q is not a safe file name", id, name)
		}
		got, ok := ParseDocDir(name)
		if !ok || got != id {
			t.Fatalf("ParseDocDir(DocDir(%q)) = %q, %v", id, got, ok)
		}
	}
	for _, foreign := range []string{"doc", "doc-ABC!", "snap-0", ""} {
		if _, ok := ParseDocDir(foreign); ok {
			t.Fatalf("ParseDocDir accepted %q", foreign)
		}
	}
}

func TestInspectDocMatchesRecovery(t *testing.T) {
	g, ops := testWorkload(t, 24)
	master := filepath.Join(t.TempDir(), DocDir("inspect"))
	l, err := Create(master, encodeGrammar(t, g), Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, ops, 4)
	l.Close()

	info, err := InspectDoc(master)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "inspect" || info.DurablePos != 24 || info.TailOps != 24 {
		t.Fatalf("clean inspect: %+v", info)
	}
	if len(info.Snapshots) != 1 || !info.Snapshots[0].Valid {
		t.Fatalf("snapshots: %+v", info.Snapshots)
	}

	// Tear the tail; inspect must agree with what recovery would keep,
	// and must not modify the directory.
	segPath := filepath.Join(master, segName(0))
	fi, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(segPath)
	info2, err := InspectDoc(master)
	if err != nil {
		t.Fatal(err)
	}
	if info2.DurablePos != 20 || info2.Segments[0].TornBytes == 0 {
		t.Fatalf("torn inspect: %+v", info2)
	}
	after, _ := os.ReadFile(segPath)
	if !bytes.Equal(before, after) {
		t.Fatal("inspect modified the segment")
	}
	rec, err := Recover(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Log.Close()
	if int64(len(rec.Tail)) != info2.TailOps {
		t.Fatalf("inspect said %d tail ops, recovery found %d", info2.TailOps, len(rec.Tail))
	}
}
