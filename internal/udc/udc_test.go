package udc

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/xmltree"
)

func randomUnranked(rng *rand.Rand, n int, labels []string) *xmltree.Unranked {
	root := &xmltree.Unranked{Label: labels[rng.Intn(len(labels))]}
	nodes := []*xmltree.Unranked{root}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := &xmltree.Unranked{Label: labels[rng.Intn(len(labels))]}
		p.Children = append(p.Children, c)
		nodes = append(nodes, c)
	}
	return root
}

func TestRecompressPreservesVal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	u := randomUnranked(rng, 200, []string{"a", "b", "c"})
	doc := u.Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	// Degrade the grammar with a few updates, then udc-recompress.
	ops := []update.Op{
		{Kind: update.Rename, Pos: 1, Label: "zz"},
		{Kind: update.Insert, Pos: 3, Frag: xmltree.NewUnranked("w")},
	}
	if err := update.ApplyAll(g, ops); err != nil {
		t.Fatal(err)
	}
	want, _ := g.Expand(0)

	out, st, err := Recompress(g, treerepair.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := out.Expand(0)
	if !xmltree.Equal(got, want) {
		t.Fatal("udc recompression changed val")
	}
	if st.TreeNodes != want.Size() {
		t.Fatalf("TreeNodes = %d, want %d", st.TreeNodes, want.Size())
	}
	if PeakSpace(st, out.NodeCount()) <= st.TreeNodes {
		t.Fatal("peak space must include the tree")
	}
}

func TestRecompressBudgetGuard(t *testing.T) {
	// An exponentially compressing grammar must trip the expansion guard.
	root := xmltree.NewUnranked("r")
	for i := 0; i < 4096; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("a"))
	}
	g, _ := treerepair.Compress(root.Binary(), treerepair.Options{})
	_, _, err := Recompress(g, treerepair.Options{}, 100)
	if !errors.Is(err, grammar.ErrExpandBudget) {
		t.Fatalf("want budget error, got %v", err)
	}
}

func TestDecompress(t *testing.T) {
	u := randomUnranked(rand.New(rand.NewSource(3)), 50, []string{"a", "b"})
	doc := u.Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	d, err := Decompress(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(d.Root, doc.Root) {
		t.Fatal("decompress mismatch")
	}
}
