// Package udc implements the paper's baseline for dynamic compressed
// trees: update–decompress–compress. Updates are applied to the grammar
// via path isolation exactly as in package update (that part is shared),
// but instead of recompressing the grammar directly, udc decompresses the
// grammar to the full tree — which can be exponentially larger — and
// compresses the tree from scratch with TreeRePair.
package udc

import (
	"time"

	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/xmltree"
)

// Stats reports the cost split of one udc recompression.
type Stats struct {
	TreeNodes      int           // size of the decompressed tree
	DecompressTime time.Duration // time spent expanding the grammar
	CompressTime   time.Duration // time spent running TreeRePair
	Compress       *treerepair.Stats
}

// Recompress decompresses the grammar to its tree and compresses the tree
// from scratch. maxNodes guards against exponential expansion (≤ 0 means
// unguarded).
func Recompress(g *grammar.Grammar, opt treerepair.Options, maxNodes int) (*grammar.Grammar, *Stats, error) {
	st := &Stats{}
	t0 := time.Now()
	tree, err := g.Expand(maxNodes)
	if err != nil {
		return nil, nil, err
	}
	st.DecompressTime = time.Since(t0)
	st.TreeNodes = tree.Size()

	t1 := time.Now()
	out, cst := treerepair.CompressTree(g.Syms, tree, opt)
	st.CompressTime = time.Since(t1)
	st.Compress = cst
	return out, st, nil
}

// Decompress expands the grammar to a binary document (bounded).
func Decompress(g *grammar.Grammar, maxNodes int) (*xmltree.Document, error) {
	return g.ExpandDocument(maxNodes)
}

// PeakSpace estimates the peak working-set size of a udc recompression in
// node counts: the decompressed tree plus the final grammar (the paper's
// §V-C space comparison uses exactly this notion — udc must materialize
// the tree, GrammarRePair never does).
func PeakSpace(st *Stats, finalGrammarNodes int) int {
	return st.TreeNodes + finalGrammarNodes
}
