package store

import (
	"sync"
	"sync/atomic"

	"repro/internal/grammar"
	"repro/internal/isolate"
)

// A generation is one published, immutable state of a Store's document:
// the grammar as of some batch boundary, plus the lazily-filled read
// caches that serve aggregate queries against exactly that state. The
// writer publishes a fresh generation at the end of every mutation
// critical section (ApplyAll batch, recompression swap, manual
// Recompress), and readers grab the current one with a single atomic
// pointer load — no lock, no copy.
//
// # Lifecycle and the reclaim protocol
//
// A generation is born free (no reader has seen it). The first reader
// to touch it compare-and-swaps it to shared, which pins the wrapped
// grammar immutable forever: later generations wrap fresh clones. If no
// reader touched it by the time the writer mutates again, the writer
// CASes free → reclaimed and keeps mutating the same grammar in place —
// so a write-only document never clones at all, and a document under
// mixed read/write traffic clones at most once per batch.
//
//	          reader CAS            writer CAS
//	free ────────────────▶ shared   free ─────▶ reclaimed
//	        (immutable forever)     (mutated in place, unpublished)
//
// The race between those two CASes is the whole synchronization story:
// exactly one side wins, and each side's invariant holds from its win
// onwards. A reader that loses (finds the generation reclaimed) falls
// back to the store's read lock, under which the writer — who always
// republishes before releasing the write lock — is guaranteed to have
// published a fresh acquirable generation.
type generation struct {
	g *grammar.Grammar
	// epoch is g.Epoch() frozen at publish time: readable without
	// pinning the generation (the field never changes after publish).
	epoch uint64

	state atomic.Int32

	// treeSize/hasTreeSize are prefilled by the writer before publish
	// when the size-vector cache was warm — immutable afterwards, so the
	// O(1) TreeSize fast path needs no lock at all.
	treeSize    int64
	hasTreeSize bool

	// sizes/memo are the point-query accelerators, handed off by
	// pointer at publish time — the publish itself copies nothing.
	// That is sound because the cache's table and memo are only ever
	// mutated between ensurePrivateLocked and the next publish: if a
	// reader pins this generation shared, the writer's next
	// ensurePrivateLocked loses the reclaim CAS and moves to a clone,
	// taking a fresh table copy for itself (the pinned generation keeps
	// the original) and abandoning the memo via retireMemo — so from
	// the reader's point of view both objects are frozen. A reclaimed
	// generation's sizes/memo do alias live mutable state, but a
	// reclaimed generation is unreachable to readers by definition.
	//
	// The spine view is built from the memo lazily, on the first read
	// that wants indexed descent (viewOnce) — write-only workloads
	// never pay for it. When the memo is gone (a recompression retires
	// it with the grammar it served) but the index is enabled, seed is
	// set and the same lazy build falls back to isolate.SeedView: a
	// read-only pass over the frozen grammar that indexes the start
	// rule's dominant chain, so the first post-recompression point
	// query seeks instead of walking and the writer pays nothing at
	// publish.
	sizes    *grammar.SizeTable
	memo     *isolate.Memo
	seed     bool
	viewOnce sync.Once
	view     *isolate.SpineView

	// Lazily-computed per-generation read caches, guarded by cmu. They
	// move the Store's old usage/size caching into the generation so a
	// hot query stream never invalidates another generation's caches —
	// each generation computes each aggregate at most once, ever.
	cmu          sync.Mutex
	usage        []float64
	usageErr     error
	usageDone    bool
	lazyTreeSize int64
	lazyTreeErr  error
	lazyTreeDone bool
	size         int
	sizeDone     bool
}

// Generation states. Transitions: free → shared (reader acquire) or
// free → reclaimed (writer takeback); both are terminal.
const (
	genFree int32 = iota
	genShared
	genReclaimed
)

// tryAcquire pins the generation shared, making its grammar immutable
// from the caller's point of view. It fails only when the writer
// already reclaimed the generation — the caller must then re-load the
// published pointer under the store's read lock.
func (gn *generation) tryAcquire() bool {
	for {
		switch gn.state.Load() {
		case genShared:
			return true
		case genReclaimed:
			return false
		default:
			if gn.state.CompareAndSwap(genFree, genShared) {
				return true
			}
		}
	}
}

// cachedUsage returns the generation's usage vector, computing it on
// first use. The caller must have acquired the generation. hits/misses
// are the owning Store's fleet-visible counters.
func (gn *generation) cachedUsage(hits, misses *atomic.Int64) ([]float64, error) {
	gn.cmu.Lock()
	defer gn.cmu.Unlock()
	if gn.usageDone {
		hits.Add(1)
		return gn.usage, gn.usageErr
	}
	gn.usage, gn.usageErr = gn.g.Usage()
	gn.usageDone = true
	misses.Add(1)
	return gn.usage, gn.usageErr
}

// cachedTreeSize returns the derived tree's node count for this
// generation. O(1) when the writer prefilled it at publish (any time
// the size-vector cache was warm); otherwise one ValNodeCount pass,
// cached for the generation's lifetime. The caller must have acquired
// the generation.
func (gn *generation) cachedTreeSize() (int64, error) {
	if gn.hasTreeSize {
		return gn.treeSize, nil
	}
	gn.cmu.Lock()
	defer gn.cmu.Unlock()
	if !gn.lazyTreeDone {
		gn.lazyTreeSize, gn.lazyTreeErr = gn.g.ValNodeCount()
		gn.lazyTreeDone = true
	}
	return gn.lazyTreeSize, gn.lazyTreeErr
}

// spineView returns the generation's immutable spine-index view,
// building it on first use (nil when the index is empty or naive). The
// primary source is the handed-off memo; when the memo is gone or empty
// — the post-recompression gap — and seeding is enabled, the view is
// seeded from the frozen grammar's start-RHS chain instead. The caller
// must have acquired the generation: that pin is what freezes the
// memo's chunk state, and viewOnce serializes concurrent first readers.
// The seed path mutates nothing (isolate.SeedView only reads g and
// sizes), so generations that share a frozen grammar may each seed
// without racing.
func (gn *generation) spineView() *isolate.SpineView {
	if gn.memo == nil && !gn.seed {
		return nil
	}
	gn.viewOnce.Do(func() {
		gn.view = gn.memo.View()
		if gn.view == nil && gn.seed {
			gn.view = isolate.SeedView(gn.g, gn.sizes)
		}
	})
	return gn.view
}

// cachedSize returns |G| of this generation, computed once. The caller
// must have acquired the generation.
func (gn *generation) cachedSize() int {
	gn.cmu.Lock()
	defer gn.cmu.Unlock()
	if !gn.sizeDone {
		gn.size = gn.g.Size()
		gn.sizeDone = true
	}
	return gn.size
}

// acquireGen returns the current published generation, pinned shared:
// the grammar it wraps is immutable from here on. The fast path is one
// atomic load plus one CAS; the slow path (the writer reclaimed the
// published generation between our load and acquire) retries under the
// read lock, where acquisition cannot fail — every writer critical
// section republishes a fresh free generation before unlocking.
func (s *Store) acquireGen() *generation {
	if gn := s.pub.Load(); gn.tryAcquire() {
		return gn
	}
	s.mu.RLock()
	gn := s.pub.Load()
	ok := gn.tryAcquire()
	s.mu.RUnlock()
	if !ok {
		// Unreachable while the publish protocol holds: under the read
		// lock no writer is mid-critical-section, and every completed
		// critical section ends with a fresh acquirable generation.
		panic("store: published generation reclaimed under read lock")
	}
	return gn
}

// ensurePrivateLocked makes s.g safe to mutate. Called (under the write
// lock) by every mutation path before its first grammar mutation. If no
// reader pinned the published generation, the writer reclaims it and
// mutates in place — the write-only fast path, zero copies. Otherwise
// the published grammar is immutable forever and the writer moves to a
// fresh clone. The pinned generation keeps the original size-vector
// table and the writer takes a snapshot copy (every vector is
// identical on the clone, but the live table's start vector is mutated
// in place per op, so the two sides must not share it). The isolation
// memo is not carried over at all — its spine index holds node
// pointers into the shared grammar, and a later Refold would splice
// those foreign nodes into the private copy; Install abandons it to
// the pinned generation via retireMemo.
func (s *Store) ensurePrivateLocked() {
	gn := s.pub.Load()
	if gn == nil || gn.g != s.g {
		// Already on a private working copy (cloned earlier in this
		// critical section, or never published yet).
		return
	}
	if gn.state.Load() == genReclaimed {
		return // reclaimed earlier in this critical section
	}
	if gn.state.CompareAndSwap(genFree, genReclaimed) {
		s.g.Unfreeze()
		return
	}
	s.g = s.g.Clone()
	sizes := s.cache.Peek()
	if sizes != nil {
		sizes = sizes.Snapshot(s.g.Start)
	}
	s.cache.Install(sizes)
}

// publishLocked freezes the writer's working grammar and publishes it
// as a fresh generation, prefilling the O(1) tree-size fast path from
// the warm size-vector cache. The size table and isolation memo are
// handed off by pointer — no copying on the write path; if a reader
// pins the generation, the writer's next ensurePrivateLocked takes the
// copy instead (see the generation field docs). Every mutation
// critical section must end with a publish (even one that mutated
// nothing — publishing the same grammar again is harmless), or the
// reader slow path's guarantee breaks.
func (s *Store) publishLocked() {
	g := s.g
	g.Freeze()
	gn := &generation{g: g, epoch: g.Epoch()}
	if sizes := s.cache.Peek(); sizes != nil {
		if sv := sizes.Get(g.Start); sv != nil {
			gn.treeSize = sv.Total
			gn.hasTreeSize = true
		}
		gn.sizes = sizes
		gn.memo = s.cache.Memo()
		gn.seed = !s.cache.Naive
	}
	s.pub.Store(gn)
}
