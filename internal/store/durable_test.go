package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/datasets"
	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/wal"
	"repro/internal/workload"
)

// durWorkload builds a compressed seed grammar and an update stream
// partitioned into the batches the tests will ApplyAll one by one.
func durWorkload(t *testing.T, short string, nOps, batch int) (*grammar.Grammar, [][]update.Op) {
	t.Helper()
	c, ok := datasets.ByShort(short)
	if !ok {
		t.Fatalf("no %s corpus", short)
	}
	seq, err := workload.Updates(c.Generate(0.05, 5), nOps, 70, 29)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
	var batches [][]update.Op
	for off := 0; off < len(seq.Ops); off += batch {
		batches = append(batches, seq.Ops[off:min(off+batch, len(seq.Ops))])
	}
	return g, batches
}

// encLive encodes a Store's live grammar under its read lock — the
// byte string the differential tests compare.
func encLive(t *testing.T, st *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.Query(func(g *grammar.Grammar) error {
		return grammar.Encode(&buf, g)
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// replayRef replays the first nOps ops of batches through a fresh
// in-memory Store with the same maintenance config and returns the
// encoded grammar — the clean-replay ground truth.
func replayRef(t *testing.T, g0 *grammar.Grammar, batches [][]update.Op, nOps int64) []byte {
	t.Helper()
	ref := New(g0.Clone(), Config{Ratio: -1})
	var done int64
	for _, b := range batches {
		if done == nOps {
			break
		}
		if done+int64(len(b)) > nOps {
			t.Fatalf("position %d is not a batch boundary", nOps)
		}
		if err := ref.ApplyAll(b); err != nil {
			t.Fatal(err)
		}
		done += int64(len(b))
	}
	if done != nOps {
		t.Fatalf("position %d past the stream end %d", nOps, done)
	}
	return encLive(t, ref)
}

func durCfg(dir string, snapEvery int64, fsync wal.FsyncPolicy, inj wal.Injector) Config {
	return Config{
		Ratio: -1, // byte-identity needs a deterministic maintenance path
		Durability: &Durability{
			Dir:              dir,
			Fsync:            fsync,
			SnapshotEveryOps: snapEvery,
			SegmentBytes:     512, // roll often: exercise seal/truncate
			Injector:         inj,
		},
	}
}

func TestDurableReopenByteIdentical(t *testing.T) {
	for _, short := range []string{"EW", "XM", "TB"} {
		t.Run(short, func(t *testing.T) {
			g0, batches := durWorkload(t, short, 120, 8)
			dir := t.TempDir()
			cfg := durCfg(dir, 32, wal.FsyncBatch, nil)
			st, err := CreateDurable("doc", g0.Clone(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var total int64
			for _, b := range batches[:len(batches)-1] {
				if err := st.ApplyAll(b); err != nil {
					t.Fatal(err)
				}
				total += int64(len(b))
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if err := st.Apply(batches[0][0]); !errors.Is(err, ErrClosed) {
				t.Fatalf("write after Close: %v", err)
			}

			re, err := OpenDurable("doc", cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := encLive(t, re), replayRef(t, g0, batches, total); !bytes.Equal(got, want) {
				t.Fatal("reopened grammar differs from clean replay")
			}
			stats := re.Stats()
			if !stats.Durable || stats.WALBroken {
				t.Fatalf("stats: %+v", stats)
			}
			// A clean close truncated nothing and every snapshot loaded.
			if stats.TruncatedTailRecords != 0 || stats.SnapshotsCorrupt != 0 {
				t.Fatalf("clean reopen reported damage: %+v", stats)
			}

			// The reopened Store keeps serving writes durably.
			last := batches[len(batches)-1]
			if err := re.ApplyAll(last); err != nil {
				t.Fatal(err)
			}
			total += int64(len(last))
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2, err := OpenDurable("doc", cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			if got, want := encLive(t, re2), replayRef(t, g0, batches, total); !bytes.Equal(got, want) {
				t.Fatal("second reopen diverged")
			}
		})
	}
}

// TestKillAndReopenDifferential is the fault-injection differential:
// for every corpus, a durable document is killed at randomized crash
// points — torn WAL writes, crashes inside snapshot publication,
// failed fsyncs, failed renames/removes mid-truncate — and reopened.
// The reopened state must be byte-identical to a clean sequential
// replay of some batch-aligned prefix covering at least every acked
// batch, and must keep serving writes afterwards.
func TestKillAndReopenDifferential(t *testing.T) {
	for _, short := range []string{"EW", "XM", "TB"} {
		t.Run(short, func(t *testing.T) {
			g0, batches := durWorkload(t, short, 120, 8)
			var totalOps int64
			for _, b := range batches {
				totalOps += int64(len(b))
			}
			// Probe a clean run for its WAL volume, so random byte
			// budgets land inside the actual write traffic.
			probeDir := t.TempDir()
			probe, err := CreateDurable("doc", g0.Clone(), durCfg(probeDir, 24, wal.FsyncBatch, nil))
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches {
				if err := probe.ApplyAll(b); err != nil {
					t.Fatal(err)
				}
			}
			walVolume := probe.Stats().WALBytes
			probe.Close()

			rng := rand.New(rand.NewSource(41))
			type trial struct {
				name string
				plan func() *wal.CrashPlan
			}
			var trials []trial
			for i := 0; i < 6; i++ {
				budget := rng.Int63n(walVolume + 64)
				trials = append(trials, trial{
					name: fmt.Sprintf("walbytes-%d", budget),
					plan: func() *wal.CrashPlan {
						p := wal.NewCrashPlan()
						p.WALWriteBytes = budget
						return p
					},
				})
			}
			for i := 0; i < 2; i++ {
				budget := rng.Int63n(256)
				trials = append(trials, trial{
					name: fmt.Sprintf("snapbytes-%d", budget),
					plan: func() *wal.CrashPlan {
						p := wal.NewCrashPlan()
						p.SnapshotWriteBytes = budget
						return p
					},
				})
			}
			for _, metas := range []int{1, 2} {
				m := metas
				trials = append(trials, trial{
					name: fmt.Sprintf("metaops-%d", m),
					plan: func() *wal.CrashPlan {
						p := wal.NewCrashPlan()
						p.MetaOps = m
						return p
					},
				})
			}
			syncs := 3 + int(rng.Int63n(20))
			trials = append(trials, trial{
				name: fmt.Sprintf("syncs-%d", syncs),
				plan: func() *wal.CrashPlan {
					p := wal.NewCrashPlan()
					p.Syncs = syncs
					return p
				},
			})
			trials = append(trials, trial{name: "clean", plan: wal.NewCrashPlan})

			for _, tr := range trials {
				t.Run(tr.name, func(t *testing.T) {
					dir := t.TempDir()
					plan := tr.plan()
					crashCfg := durCfg(dir, 24, wal.FsyncBatch, plan)
					st, err := CreateDurable("doc", g0.Clone(), crashCfg)
					if err != nil {
						// The crash landed inside Create itself (tiny
						// budgets): nothing was opened, nothing to check.
						return
					}
					var acked int64
					for _, b := range batches {
						if err := st.ApplyAll(b); err != nil {
							break
						}
						acked += int64(len(b))
					}
					// Simulate the kill: wait out background goroutines
					// (a dead process has none), then abandon the Store
					// WITHOUT Close — no final fsync, no flush, file
					// handles simply dropped.
					st.Wait()

					re, err := OpenDurable("doc", durCfg(dir, 24, wal.FsyncBatch, nil))
					if err != nil {
						t.Fatalf("recovery failed: %v", err)
					}
					// Find the recovered op count from the clean replay
					// comparison instead of trusting internals: it must be
					// a batch boundary ≥ acked, ≤ total.
					var boundaries []int64
					var sum int64
					boundaries = append(boundaries, 0)
					for _, b := range batches {
						sum += int64(len(b))
						boundaries = append(boundaries, sum)
					}
					got := encLive(t, re)
					match := int64(-1)
					for _, p := range boundaries {
						if p < acked || p > totalOps {
							continue
						}
						if bytes.Equal(got, replayRef(t, g0, batches, p)) {
							match = p
							break
						}
					}
					if match < 0 {
						t.Fatalf("reopened state matches no clean batch-aligned replay ≥ %d acked ops", acked)
					}
					recovered := match

					// The reopened document must accept the rest of the
					// stream and land byte-identical to the full replay.
					var done int64
					for _, b := range batches {
						if done < recovered {
							done += int64(len(b))
							continue
						}
						if err := re.ApplyAll(b); err != nil {
							t.Fatalf("append after recovery: %v", err)
						}
						done += int64(len(b))
					}
					if err := re.Close(); err != nil {
						t.Fatal(err)
					}
					re2, err := OpenDurable("doc", durCfg(dir, 24, wal.FsyncBatch, nil))
					if err != nil {
						t.Fatal(err)
					}
					defer re2.Close()
					if !bytes.Equal(encLive(t, re2), replayRef(t, g0, batches, totalOps)) {
						t.Fatal("post-recovery writes diverged from clean replay")
					}
				})
			}
		})
	}
}

// TestDurableWithRecompressionRecoversDocument: with the full
// maintenance machinery on (auto + async recompression, refold), the
// encoded bytes legitimately differ between a live grammar and its
// snapshot+replay reconstruction — but the derived document must not.
func TestDurableWithRecompressionRecoversDocument(t *testing.T) {
	g0, batches := durWorkload(t, "XM", 150, 10)
	dir := t.TempDir()
	cfg := Config{
		Ratio:   1.2,
		MinSize: 16,
		Async:   true,
		Durability: &Durability{
			Dir:              dir,
			Fsync:            wal.FsyncOff,
			SnapshotEveryOps: 30,
		},
	}
	st, err := CreateDurable("doc", g0.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := New(g0.Clone(), Config{Ratio: -1})
	for _, b := range batches {
		if err := st.ApplyAll(b); err != nil {
			t.Fatal(err)
		}
		if err := ref.ApplyAll(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable("doc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	reTree := mustTree(t, re.Snapshot())
	refTree := mustTree(t, ref.Snapshot())
	var reSyms, refSyms = re.Snapshot().Syms, ref.Snapshot().Syms
	if !sameLabeledTree(reSyms, reTree, refSyms, refTree) {
		t.Fatal("recovered document differs under recompression")
	}
}

// TestShardedDurableFleet drives a whole fleet through OpenSharded:
// many documents, concurrent writers, a hard stop, and a full-fleet
// recovery that must restore every document byte-identically.
func TestShardedDurableFleet(t *testing.T) {
	g0, batches := durWorkload(t, "EW", 96, 6)
	dir := filepath.Join(t.TempDir(), "fleet")
	cfg := durCfg(dir, 24, wal.FsyncOff, nil)
	s, err := OpenSharded(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const docs = 6
	for d := 0; d < docs; d++ {
		if _, err := s.Open(fmt.Sprintf("doc-%d", d), g0.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	// Per-document batch counts differ, so recovery positions differ.
	var wg sync.WaitGroup
	for d := 0; d < docs; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for _, b := range batches[:len(batches)-d%3] {
				if err := s.ApplyAll(fmt.Sprintf("doc-%d", d), b); err != nil {
					t.Errorf("doc-%d: %v", d, err)
					return
				}
			}
		}(d)
	}
	wg.Wait()
	s.Quiesce() // snapshot publication counts as background work
	fs := s.Stats()
	if fs.WALAppends == 0 || fs.Snapshots == 0 || fs.WALBytes == 0 {
		t.Fatalf("fleet stats show no durability activity: %+v", fs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSharded(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumDocs() != docs {
		t.Fatalf("recovered %d of %d docs", re.NumDocs(), docs)
	}
	for d := 0; d < docs; d++ {
		id := fmt.Sprintf("doc-%d", d)
		st, ok := re.Get(id)
		if !ok {
			t.Fatalf("%s missing after reopen", id)
		}
		var want int64
		for _, b := range batches[:len(batches)-d%3] {
			want += int64(len(b))
		}
		if got := encLive(t, st); !bytes.Equal(got, replayRef(t, g0, batches, want)) {
			t.Fatalf("%s diverged after fleet recovery", id)
		}
	}
	rs := re.Stats()
	if rs.RecoveredOps == 0 {
		t.Fatalf("fleet recovery stats empty: %+v", rs)
	}
}

// TestClosedFleetIsDeterministic pins the use-after-close contract
// under the race detector: writers racing Close see either a clean
// ack or ErrClosed — never a hang, never a third error — and every
// post-Close mutation fails with ErrClosed while reads keep working.
func TestClosedFleetIsDeterministic(t *testing.T) {
	g0, batches := durWorkload(t, "EW", 40, 4)
	s := NewSharded(3, Config{Ratio: -1})
	const docs = 5
	for d := 0; d < docs; d++ {
		if _, err := s.Open(fmt.Sprintf("doc-%d", d), g0.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for d := 0; d < docs; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			id := fmt.Sprintf("doc-%d", d)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := s.ApplyAll(id, batches[i%len(batches)])
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("writer saw non-ErrClosed error: %v", err)
					return
				}
				if err != nil {
					return
				}
			}
		}(d)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Every mutation path now fails deterministically...
	if err := s.ApplyAll("doc-0", batches[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("ApplyAll after Close: %v", err)
	}
	if err := s.Apply("doc-1", batches[0][0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply after Close: %v", err)
	}
	if _, err := s.Open("late", g0.Clone()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Open after Close: %v", err)
	}
	st, ok := s.Get("doc-0")
	if !ok {
		t.Fatal("doc-0 gone after Close")
	}
	if err := st.ApplyAll(batches[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Store.ApplyAll after Close: %v", err)
	}
	// ...and Close is idempotent while reads still serve.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Elements(); err != nil {
		t.Fatalf("read after Close: %v", err)
	}
	if err := s.Query("doc-0", func(*grammar.Grammar) error { return nil }); err != nil {
		t.Fatalf("Query after Close: %v", err)
	}
}

// TestWALBrokenFailsFast: once a WAL append fails, the Store must
// reject every later write before applying it — the in-memory state
// never drifts further from disk — while reads keep serving.
func TestWALBrokenFailsFast(t *testing.T) {
	g0, batches := durWorkload(t, "EW", 40, 4)
	plan := wal.NewCrashPlan()
	dir := t.TempDir()
	st, err := CreateDurable("doc", g0.Clone(), durCfg(dir, -1, wal.FsyncOff, plan))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyAll(batches[0]); err != nil {
		t.Fatal(err)
	}
	// Trip the plan so the next append tears.
	plan.WALWriteBytes = 1
	if err := st.ApplyAll(batches[1]); err == nil {
		t.Fatal("torn append acked")
	}
	epoch := st.Epoch()
	if err := st.ApplyAll(batches[2]); err == nil {
		t.Fatal("write on broken store acked")
	}
	if st.Epoch() != epoch {
		t.Fatal("broken store still applied ops")
	}
	if !st.Stats().WALBroken {
		t.Fatal("stats do not report the broken WAL")
	}
	if _, err := st.Elements(); err != nil {
		t.Fatalf("read on broken store: %v", err)
	}
	st.Close()
	// Reopen recovers the acked prefix (the torn batch was never acked).
	re, err := OpenDurable("doc", durCfg(dir, -1, wal.FsyncOff, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !bytes.Equal(encLive(t, re), replayRef(t, g0, batches, int64(len(batches[0])))) {
		t.Fatal("recovery after broken WAL diverged")
	}
}
