package store

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// TestReadPathZeroAlloc pins the "pointer grab" claim of the
// generational read path: on a quiesced store Snapshot and Epoch
// allocate nothing, and opening a cursor costs a bounded handful of
// allocations (the cursor + its descent frames), independent of |G|.
func TestReadPathZeroAlloc(t *testing.T) {
	fx := newAsyncFixture(t, Config{Ratio: -1})
	if allocs := testing.AllocsPerRun(100, func() {
		_ = fx.st.Snapshot()
		_ = fx.st.Epoch()
	}); allocs != 0 {
		t.Fatalf("Snapshot+Epoch allocated %.1f times per read", allocs)
	}
	// Aggregate reads ride the generation caches: alloc-free once warm.
	if allocs := testing.AllocsPerRun(100, func() {
		_ = fx.st.Size()
		if _, err := fx.st.TreeSize(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Size+TreeSize allocated %.1f times per read", allocs)
	}
	cursorAllocs := testing.AllocsPerRun(100, func() {
		if _, err := fx.st.Cursor(); err != nil {
			t.Fatal(err)
		}
	})
	// O(1), not zero: the cursor struct and its stacks. The bound is
	// generous; the point is that it no longer scales with the grammar
	// (the old Snapshot deep copy was O(|G|) allocations).
	if cursorAllocs > 16 {
		t.Fatalf("cursor open allocated %.1f times, want O(1)", cursorAllocs)
	}
}

// TestPinnedGenerationByteStable is the generation-protocol race
// battery: readers pin snapshots while a writer streams updates with
// asynchronous recompression swapping generations underneath, and every
// pinned snapshot must re-encode byte-identically later — a published
// generation is immutable forever, whatever the writer does next.
func TestPinnedGenerationByteStable(t *testing.T) {
	docs := shardedFixtures(t, 1, 160)
	fx := docs[0]
	st := New(fx.g0.Clone(), Config{Ratio: 1.2, MinSize: 16, Async: true})

	type pinned struct {
		g   *grammar.Grammar
		enc []byte
	}
	var (
		mu   sync.Mutex
		pins []pinned
		stop = make(chan struct{})
		wg   sync.WaitGroup
	)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := st.Snapshot()
				var buf bytes.Buffer
				if err := grammar.Encode(&buf, g); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				pins = append(pins, pinned{g, buf.Bytes()})
				mu.Unlock()
				// Aggregate reads on the same pinned generation must be
				// coherent with it, not with the advancing live document.
				if _, err := st.CountLabel("fresh0"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	const batch = 16
	for off := 0; off < len(fx.ops); off += batch {
		if err := st.ApplyAll(fx.ops[off:min(off+batch, len(fx.ops))]); err != nil {
			t.Fatal(err)
		}
		// Pin one snapshot per batch from the writer's own goroutine so
		// the battery never degenerates to zero pins on a fast machine;
		// the background readers add the racy interleavings.
		g := st.Snapshot()
		var buf bytes.Buffer
		if err := grammar.Encode(&buf, g); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		pins = append(pins, pinned{g, buf.Bytes()})
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
	st.Wait()
	if len(pins) == 0 {
		t.Fatal("readers pinned nothing")
	}
	for i, p := range pins {
		var buf bytes.Buffer
		if err := grammar.Encode(&buf, p.g); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), p.enc) {
			t.Fatalf("pinned snapshot %d of %d mutated across swaps", i, len(pins))
		}
		if err := p.g.Validate(); err != nil {
			t.Fatalf("pinned snapshot %d invalid: %v", i, err)
		}
	}
}

// tieredBudget computes a memory budget that forces eviction: a quarter
// of the unbounded fleet's resident total.
func tieredBudget(t *testing.T, docs []*docFixture, cfg Config) int64 {
	t.Helper()
	var total int64
	for _, fx := range docs {
		st := New(fx.g0.Clone(), cfg)
		total += st.ResidentBytes()
	}
	return total / 4
}

// runZipfFleet opens every fixture document in ss and applies the zipf
// schedule sequentially, interleaving reads on the drawn document so
// the read path exercises rehydration too.
func runZipfFleet(t *testing.T, ss *Sharded, docs []*docFixture, sched []workload.FleetBatch) {
	t.Helper()
	for _, fx := range docs {
		if _, err := ss.Open(fx.id, fx.g0.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	for i, b := range sched {
		if err := ss.ApplyAll(docs[b.Doc].id, b.Ops); err != nil {
			t.Fatalf("zipf batch %d (doc %s): %v", i, docs[b.Doc].id, err)
		}
		if i%7 == 0 {
			if _, err := ss.CountLabel(docs[b.Doc].id, "fresh0"); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// fleetBytes snapshots and encodes every document of a fleet.
func fleetBytes(t *testing.T, ss *Sharded, docs []*docFixture) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(docs))
	for _, fx := range docs {
		g, err := ss.Snapshot(fx.id)
		if err != nil {
			t.Fatalf("%s: %v", fx.id, err)
		}
		out[fx.id] = encodeBytes(t, g)
	}
	return out
}

// TestTieredZipfDifferential is the eviction differential: a
// budget-bounded in-memory fleet serving a zipf-skewed workload must
// end byte-identical, document for document, to an unbounded fleet
// serving the same schedule — evictions and rehydrations must be
// invisible in the final state. Recompression is disabled so
// byte-identity (not just tree equality) is the bar.
func TestTieredZipfDifferential(t *testing.T) {
	const nDocs, nOps = 12, 60
	cfg := Config{Ratio: -1}
	docs := shardedFixtures(t, nDocs, nOps)
	var streams [][]update.Op
	for _, fx := range docs {
		streams = append(streams, fx.ops)
	}
	sched := workload.ZipfFleet(streams, 10, 1.4, 99)

	free := NewSharded(3, cfg)
	defer free.Close()
	runZipfFleet(t, free, docs, sched)
	want := fleetBytes(t, free, docs)

	tcfg := cfg
	tcfg.MemoryBudget = tieredBudget(t, docs, cfg)
	tiered := NewSharded(3, tcfg)
	defer tiered.Close()
	runZipfFleet(t, tiered, docs, sched)

	st := tiered.Stats()
	if st.Evictions == 0 || st.Hydrations == 0 {
		t.Fatalf("budget %d forced no tiering: evictions=%d hydrations=%d residentBytes=%d",
			tcfg.MemoryBudget, st.Evictions, st.Hydrations, st.ResidentBytes)
	}
	if st.Resident+st.Evicted != st.Docs {
		t.Fatalf("residency split broken: resident=%d evicted=%d docs=%d",
			st.Resident, st.Evicted, st.Docs)
	}
	if free.Stats().Evictions != 0 {
		t.Fatal("unbounded fleet evicted")
	}

	got := fleetBytes(t, tiered, docs) // rehydrates evicted docs on read
	for _, fx := range docs {
		if !bytes.Equal(got[fx.id], want[fx.id]) {
			t.Fatalf("%s: tiered fleet diverged from unbounded fleet", fx.id)
		}
	}
	// Ops must survive in the fleet totals across evictions (the
	// retired-counter accumulator).
	if st.Ops != free.Stats().Ops {
		t.Fatalf("tiered fleet lost ops across evictions: %d, want %d",
			st.Ops, free.Stats().Ops)
	}
}

// TestTieredReadOnlyZipfEviction extends the tiering differential with
// a read-only phase: after the write schedule drains, a zipf-skewed
// stream of pure reads must keep the tier moving — rehydrating the
// documents it draws and, through the read path's rate-limited budget
// probe, evicting cold ones to pay for them — while every read stays
// byte-identical to the unbounded fleet's final state.
func TestTieredReadOnlyZipfEviction(t *testing.T) {
	const nDocs, nOps = 12, 60
	cfg := Config{Ratio: -1}
	docs := shardedFixtures(t, nDocs, nOps)
	var streams [][]update.Op
	for _, fx := range docs {
		streams = append(streams, fx.ops)
	}
	sched := workload.ZipfFleet(streams, 10, 1.4, 99)

	free := NewSharded(3, cfg)
	defer free.Close()
	runZipfFleet(t, free, docs, sched)
	want := fleetBytes(t, free, docs)

	tcfg := cfg
	tcfg.MemoryBudget = tieredBudget(t, docs, cfg)
	tiered := NewSharded(3, tcfg)
	defer tiered.Close()
	runZipfFleet(t, tiered, docs, sched)
	wrote := tiered.Stats()

	// Read-only zipf phase: reuse the fleet scheduler for the document
	// draw (the op batches are ignored — nothing is applied).
	for i, b := range workload.ZipfFleet(streams, 1, 1.4, 7) {
		fx := docs[b.Doc]
		g, err := tiered.Snapshot(fx.id)
		if err != nil {
			t.Fatalf("read %d (doc %s): %v", i, fx.id, err)
		}
		if !bytes.Equal(encodeBytes(t, g), want[fx.id]) {
			t.Fatalf("%s: read-only phase diverged from unbounded fleet", fx.id)
		}
		if _, err := tiered.CountLabel(fx.id, "fresh0"); err != nil {
			t.Fatal(err)
		}
	}
	st := tiered.Stats()
	if st.Hydrations <= wrote.Hydrations {
		t.Fatalf("read-only zipf phase never rehydrated: before %d, after %d",
			wrote.Hydrations, st.Hydrations)
	}
	if st.Evictions <= wrote.Evictions {
		t.Fatalf("read-only zipf phase never evicted (read-driven budget probe idle): before %d, after %d",
			wrote.Evictions, st.Evictions)
	}
	if st.Ops != wrote.Ops {
		t.Fatalf("read-only phase applied ops: %d, want %d", st.Ops, wrote.Ops)
	}
}

// TestTieredZipfDifferentialDurable runs the same differential on
// durable fleets: under a budget, cold documents are dropped entirely
// (no frozen bytes) and rehydrate through WAL recovery — snapshot +
// tail replay — and must still end byte-identical to the unbounded
// durable fleet.
func TestTieredZipfDifferentialDurable(t *testing.T) {
	const nDocs, nOps = 8, 60
	docs := shardedFixtures(t, nDocs, nOps)
	var streams [][]update.Op
	for _, fx := range docs {
		streams = append(streams, fx.ops)
	}
	sched := workload.ZipfFleet(streams, 10, 1.4, 99)

	mk := func(dir string, budget int64) Config {
		return Config{
			Ratio:        -1,
			MemoryBudget: budget,
			Durability: &Durability{
				Dir:              dir,
				Fsync:            wal.FsyncOff, // tier correctness, not crash safety
				SnapshotEveryOps: 32,           // roll snapshots: recovery replays short tails
			},
		}
	}

	free, err := OpenSharded(3, mk(t.TempDir(), 0))
	if err != nil {
		t.Fatal(err)
	}
	defer free.Close()
	runZipfFleet(t, free, docs, sched)
	want := fleetBytes(t, free, docs)

	budget := tieredBudget(t, docs, Config{Ratio: -1})
	tiered, err := OpenSharded(3, mk(t.TempDir(), budget))
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()
	runZipfFleet(t, tiered, docs, sched)

	st := tiered.Stats()
	if st.Evictions == 0 || st.Hydrations == 0 {
		t.Fatalf("durable tier idle: evictions=%d hydrations=%d", st.Evictions, st.Hydrations)
	}
	got := fleetBytes(t, tiered, docs)
	for _, fx := range docs {
		if !bytes.Equal(got[fx.id], want[fx.id]) {
			t.Fatalf("%s: tiered durable fleet diverged", fx.id)
		}
	}
}

// TestTieredConcurrentConvergence is the tiering race battery: writers
// stream per-document workloads concurrently while readers hammer
// Get/Snapshot/CountLabel and evictions run underneath (recompression
// async, tiny budget). Every document must converge to its sequential
// ground truth — compared as trees, since recompression timing is
// nondeterministic here.
func TestTieredConcurrentConvergence(t *testing.T) {
	const nDocs, nOps, batch = 6, 100, 20
	cfg := Config{Ratio: 1.3, MinSize: 16, Async: true}
	docs := shardedFixtures(t, nDocs, nOps)

	tcfg := cfg
	tcfg.MemoryBudget = tieredBudget(t, docs, cfg)
	ss := NewSharded(3, tcfg)
	defer ss.Close()
	for _, fx := range docs {
		if _, err := ss.Open(fx.id, fx.g0.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fx := docs[(i+r)%len(docs)]
				st, ok := ss.Get(fx.id)
				if !ok {
					t.Errorf("%s vanished", fx.id)
					return
				}
				// The handle may be a closed pre-eviction incarnation —
				// reads must still work and the grammar must validate.
				if err := st.Snapshot().Validate(); err != nil {
					t.Error(err)
					return
				}
				if _, err := ss.CountLabel(fx.id, "fresh0"); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	var writers sync.WaitGroup
	for _, fx := range docs {
		writers.Add(1)
		go func(fx *docFixture) {
			defer writers.Done()
			for off := 0; off < len(fx.ops); off += batch {
				if err := ss.ApplyAll(fx.id, fx.ops[off:min(off+batch, len(fx.ops))]); err != nil {
					t.Errorf("%s: %v", fx.id, err)
					return
				}
			}
		}(fx)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	ss.Quiesce()

	if st := ss.Stats(); st.Evictions == 0 {
		t.Fatalf("tiny budget %d never evicted", tcfg.MemoryBudget)
	}
	for _, fx := range docs {
		g, err := ss.Snapshot(fx.id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		if !sameLabeledTree(g.Syms, got, fx.final.Syms, fx.final.Root) {
			t.Fatalf("%s: concurrent tiered fleet did not converge to its document", fx.id)
		}
	}
}

// TestEvictedHandleSemantics pins the contract for direct *Store
// handles that survive an eviction: reads keep serving the final
// pre-eviction state, writes fail with ErrClosed (never silently
// diverge), and the by-ID write path transparently rehydrates.
func TestEvictedHandleSemantics(t *testing.T) {
	root := xmltree.NewUnranked("r", xmltree.NewUnranked("a"), xmltree.NewUnranked("b"))
	g, _ := treerepair.Compress(root.Binary(), treerepair.Options{})
	ss := NewSharded(1, Config{Ratio: -1, MemoryBudget: 1}) // everything is over budget
	defer ss.Close()
	handle, err := ss.Open("doc", g)
	if err != nil {
		t.Fatal(err)
	}
	// Any write batch triggers eviction of every idle document —
	// including this one, right after its ack. The eviction runs on the
	// shard worker after the ack, so poll for it.
	if err := ss.Apply("doc", update.Op{Kind: update.Rename, Pos: 1, Label: "z"}); err != nil {
		t.Fatal(err)
	}
	evicted := false
	for i := 0; i < 2000 && !evicted; i++ {
		evicted = ss.Stats().Evicted == 1
		if !evicted {
			time.Sleep(time.Millisecond)
		}
	}
	if !evicted {
		t.Fatal("document never evicted under budget 1")
	}
	preEvict := encodeBytes(t, handle.Snapshot())
	if err := handle.Apply(update.Op{Kind: update.Rename, Pos: 1, Label: "w"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("write on evicted handle: err=%v, want ErrClosed", err)
	}
	if !bytes.Equal(encodeBytes(t, handle.Snapshot()), preEvict) {
		t.Fatal("evicted handle's final state moved")
	}
	// The by-ID path rehydrates and the rejected write never applied.
	if err := ss.Apply("doc", update.Op{Kind: update.Rename, Pos: 1, Label: "y"}); err != nil {
		t.Fatal(err)
	}
	gNow, err := ss.Snapshot("doc")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := gNow.ValNodeCount(); err != nil || n == 0 {
		t.Fatalf("rehydrated document unreadable: n=%d err=%v", n, err)
	}
	if hist, err := ss.CountLabel("doc", "w"); err != nil || hist != 0 {
		t.Fatalf("rejected write leaked into the document: count(w)=%v err=%v", hist, err)
	}
	if st := ss.Stats(); st.Hydrations == 0 {
		t.Fatal("no rehydration counted")
	}
}

// TestIncrementalSizeExact pins the incremental |G| accounting behind
// the batch policy and Stats: across a workload that exercises every
// rule-set mutation (per-batch GC of stranded rules, re-folding,
// recompression), the incrementally maintained size must equal a
// from-scratch walk of the published grammar after every batch.
func TestIncrementalSizeExact(t *testing.T) {
	docs := shardedFixtures(t, 1, 200)
	fx := docs[0]
	st := New(fx.g0.Clone(), Config{Ratio: 1.2, MinSize: 16, RefoldSpine: 8})
	for off := 0; off < len(fx.ops); off += 16 {
		end := min(off+16, len(fx.ops))
		if err := st.ApplyAll(fx.ops[off:end]); err != nil {
			t.Fatal(err)
		}
		if got, want := st.Stats().Size, st.Snapshot().Size(); got != want {
			t.Fatalf("after %d ops: incremental |G| %d, recomputed %d", end, got, want)
		}
	}
	st.Recompress()
	if got, want := st.Stats().Size, st.Snapshot().Size(); got != want {
		t.Fatalf("after recompress: incremental |G| %d, recomputed %d", got, want)
	}
}
