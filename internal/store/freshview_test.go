package store

import (
	"fmt"
	"testing"

	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/xmltree"
)

// flatUniqueDoc builds a flat document of n children with unique labels:
// incompressible, so its next-sibling chain survives recompression as an
// explicit spine — exactly the shape whose index used to go dark after
// every recompression.
func flatUniqueDoc(n int) *xmltree.Document {
	root := xmltree.NewUnranked("log")
	for i := 0; i < n; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked(fmt.Sprintf("u%04d", i)))
	}
	return root.Binary()
}

// TestFreshViewAfterRecompress pins the stale-empty-view bugfix: a
// generation published right after Recompress must carry a live spine
// view (seeded from the fresh chain), so the very first point query
// seeks instead of silently degrading to naive descent.
func TestFreshViewAfterRecompress(t *testing.T) {
	g, _ := treerepair.Compress(flatUniqueDoc(200), treerepair.Options{})
	st := New(g, Config{Ratio: -1})
	st.Recompress()

	n, err := st.TreeSize()
	if err != nil {
		t.Fatal(err)
	}
	cur, err := st.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	// A target deep in the chain: without a view this walks ~every
	// sibling; with the seeded view it must seek.
	if err := cur.SeekPreorder(n - 3); err != nil {
		t.Fatal(err)
	}
	if s := cur.Stats(); s.Jumps == 0 {
		t.Fatalf("first point query after Recompress took no indexed jumps (stats %+v): published view is empty", s)
	}
	// And the seeded index must not change any answer.
	for _, pre := range []int64{0, 1, n / 2, n - 3, n - 1} {
		got, err := st.PointQuery(pre)
		if err != nil {
			t.Fatal(err)
		}
		want, err := st.PointQueryNaive(pre)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("PointQuery(%d) = %q, naive = %q", pre, got, want)
		}
	}
}

// TestFreshViewAfterAsyncSwap is the same pin for the asynchronous swap
// path: after a background recompression completes, the published
// generation must serve indexed point queries immediately.
func TestFreshViewAfterAsyncSwap(t *testing.T) {
	g, _ := treerepair.Compress(flatUniqueDoc(32), treerepair.Options{})
	st := New(g, Config{Ratio: 1.1, MinSize: 8, MaxRatio: 64, Async: true})

	// Unique-label appends keep the document incompressible, so the
	// surviving chain stays long enough to seed. Wait after every op so
	// the inflight run lands instead of being discarded on tail overflow
	// (the swap, not the write race, is what this test pins).
	for i := 0; i < 500 && st.Stats().AsyncRecompressions == 0; i++ {
		sz, err := st.TreeSize()
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Apply(update.Op{Kind: update.Insert, Pos: sz - 1,
			Frag: xmltree.NewUnranked(fmt.Sprintf("z%04d", i))}); err != nil {
			t.Fatal(err)
		}
		st.Wait()
	}
	if st.Stats().AsyncRecompressions == 0 {
		t.Skip("no async recompression completed")
	}
	cur, err := st.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	// A target deep inside the original 32-element chain (the appended
	// elements become siblings of the root, a separate short chain).
	if err := cur.SeekPreorder(60); err != nil {
		t.Fatal(err)
	}
	if s := cur.Stats(); s.Jumps == 0 {
		t.Fatalf("first point query after async swap took no indexed jumps (stats %+v)", s)
	}
	got, err := st.PointQuery(60)
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.PointQueryNaive(60)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("PointQuery(60) = %q, naive = %q", got, want)
	}
}
