// Tests for the PR 5 isolation-frontier features of the Store: the
// indexed-vs-naive differential, the re-fold policy, the
// isolation-cost recompression trigger, and the fleet-wide
// recompression gate.
package store

import (
	"bytes"
	"testing"

	"repro/internal/datasets"
	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// streamFixture is a pinned workload against a compressed corpus
// document.
func streamFixture(t *testing.T, short string, ops int, seed int64) (*grammar.Grammar, []update.Op) {
	t.Helper()
	c, ok := datasets.ByShort(short)
	if !ok {
		t.Fatalf("unknown corpus %q", short)
	}
	u := c.Generate(0.05, 1)
	seq, err := workload.Updates(u, ops, 90, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
	return g, seq.Ops
}

// flatLogGrammar compresses a small flat log document — the append
// fixture of the gate test.
func flatLogGrammar(n int) *grammar.Grammar {
	root := xmltree.NewUnranked("log")
	for i := 0; i < n; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("rec"))
	}
	g, _ := treerepair.Compress(root.Binary(), treerepair.Options{})
	return g
}

// TestFrontierVsNaiveByteIdentical replays the same streams through an
// indexed Store and a naive-descent Store and demands byte-identical
// Snapshot encodings at every batch boundary (and so byte-identical
// Query output — readers see the same grammar). The spine index must be
// a pure routing accelerator: same unfolds, same mutations, same
// grammar evolution.
func TestFrontierVsNaiveByteIdentical(t *testing.T) {
	for _, short := range []string{"EW", "XM", "TB"} {
		for _, seed := range []int64{5, 29} {
			g, ops := streamFixture(t, short, 200, seed)
			// Recompression disabled: the two engines must stay in
			// lockstep op for op (GrammarRePair is already pinned by the
			// parity harness).
			si := New(g.Clone(), Config{Ratio: -1})
			sn := New(g, Config{Ratio: -1})
			sn.cache.Naive = true
			for done := 0; done < len(ops); done += 25 {
				end := min(done+25, len(ops))
				if err := si.ApplyAll(ops[done:end]); err != nil {
					t.Fatalf("%s/%d indexed: %v", short, seed, err)
				}
				if err := sn.ApplyAll(ops[done:end]); err != nil {
					t.Fatalf("%s/%d naive: %v", short, seed, err)
				}
				var bi, bn bytes.Buffer
				if err := grammar.Encode(&bi, si.Snapshot()); err != nil {
					t.Fatal(err)
				}
				if err := grammar.Encode(&bn, sn.Snapshot()); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(bi.Bytes(), bn.Bytes()) {
					t.Fatalf("%s seed %d: snapshots diverge after %d ops", short, seed, end)
				}
			}
			ist, nst := si.Stats(), sn.Stats()
			if ist.IsolationJumps == 0 {
				t.Fatalf("%s seed %d: index never engaged: %+v", short, seed, ist)
			}
			if nst.IsolationJumps != 0 || nst.SpineNodes != 0 {
				t.Fatalf("%s seed %d: naive store used the index: %+v", short, seed, nst)
			}
		}
	}
}

// TestRefoldPolicyDifferential drives an aggressively re-folding Store
// and a naive baseline through the same stream: the derived documents
// must match exactly at every boundary even though the grammars now
// differ (re-folding moves explicit material into fresh rules).
func TestRefoldPolicyDifferential(t *testing.T) {
	g, ops := streamFixture(t, "EW", 300, 3)
	refolding := New(g.Clone(), Config{
		Ratio:          1e9, // size trigger effectively off
		MinSize:        1,
		CostStepsPerOp: -1, // cost trigger off
		RefoldSpine:    24, // fold eagerly
		RefoldColdOps:  8,
	})
	baseline := New(g, Config{Ratio: -1})
	baseline.cache.Naive = true
	for done := 0; done < len(ops); done += 20 {
		end := min(done+20, len(ops))
		if err := refolding.ApplyAll(ops[done:end]); err != nil {
			t.Fatalf("refolding store: %v", err)
		}
		if err := baseline.ApplyAll(ops[done:end]); err != nil {
			t.Fatalf("baseline store: %v", err)
		}
		gr, gb := refolding.Snapshot(), baseline.Snapshot()
		tr, err := gr.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := gb.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		if !sameLabeledTree(gr.Syms, tr, gb.Syms, tb) {
			t.Fatalf("documents diverge after %d ops", end)
		}
		if err := gr.Validate(); err != nil {
			t.Fatalf("refolded grammar invalid after %d ops: %v", end, err)
		}
	}
	st := refolding.Stats()
	if st.Refolds == 0 || st.RefoldedNodes == 0 {
		t.Fatalf("re-folding never fired: %+v", st)
	}
	// Aggregate reads stay consistent with the ground truth document.
	re, err := refolding.Elements()
	if err != nil {
		t.Fatal(err)
	}
	be, err := baseline.Elements()
	if err != nil {
		t.Fatal(err)
	}
	if re != be {
		t.Fatalf("Elements: refolding %d, baseline %d", re, be)
	}
}

// TestStorePointQueryDifferential routes point lookups through the
// published generation's spine view and demands agreement with the
// naive descent and the expanded document at every sampled position —
// the read-side counterpart of TestFrontierVsNaiveByteIdentical. Both
// paths read the same pinned generation, so any disagreement is an
// index bug, not a race.
func TestStorePointQueryDifferential(t *testing.T) {
	for _, short := range []string{"EW", "XM", "TB"} {
		t.Run(short, func(t *testing.T) {
			g, ops := streamFixture(t, short, 200, 5)
			st := New(g, Config{Ratio: -1})
			for done := 0; done < len(ops); done += 25 {
				if err := st.ApplyAll(ops[done:min(done+25, len(ops))]); err != nil {
					t.Fatal(err)
				}
			}
			snap := st.Snapshot()
			want, err := snap.Expand(0)
			if err != nil {
				t.Fatal(err)
			}
			total, err := st.TreeSize()
			if err != nil {
				t.Fatal(err)
			}
			for p := int64(0); p < total; p += 3 {
				li, err := st.PointQuery(p)
				if err != nil {
					t.Fatalf("PointQuery(%d): %v", p, err)
				}
				ln, err := st.PointQueryNaive(p)
				if err != nil {
					t.Fatalf("PointQueryNaive(%d): %v", p, err)
				}
				if li != ln {
					t.Fatalf("p=%d: indexed %q, naive %q", p, li, ln)
				}
				if w := snap.Syms.Name(want.PreorderIndex(int(p)).Label.ID); li != w {
					t.Fatalf("p=%d: %q, want expanded %q", p, li, w)
				}
			}
			// The store cursor comes out pre-indexed. EW's update stream
			// leaves long unfolded chains, so there the view must actually
			// engage (other corpora may legitimately publish no view when
			// no chain grew long enough).
			c, err := st.Cursor()
			if err != nil {
				t.Fatal(err)
			}
			for p := int64(0); p < total; p += 13 {
				if err := c.SeekPreorder(p); err != nil {
					t.Fatalf("cursor seek(%d): %v", p, err)
				}
			}
			if short == "EW" && c.Stats().Jumps == 0 {
				t.Fatal("indexed store cursor never used the spine view")
			}
		})
	}
}

// TestFoldFirstRecompression pins the fold-first policy: when the cost
// trigger hands the grammar to GrammarRePair, cold spines fold into
// fresh rules first (shrinking the compressor's input), and the result
// still derives exactly the naive baseline's document.
func TestFoldFirstRecompression(t *testing.T) {
	g, ops := streamFixture(t, "EW", 300, 3)
	folding := New(g.Clone(), Config{
		Ratio:          1e9, // size trigger effectively off
		MinSize:        1,
		CostStepsPerOp: 1,       // any real walking fires at the boundary
		RefoldSpine:    1 << 30, // boundary re-folds off: only fold-first folds
	})
	baseline := New(g, Config{Ratio: -1})
	baseline.cache.Naive = true
	for done := 0; done < len(ops); done += 150 {
		end := min(done+150, len(ops))
		if err := folding.ApplyAll(ops[done:end]); err != nil {
			t.Fatalf("folding store: %v", err)
		}
		if err := baseline.ApplyAll(ops[done:end]); err != nil {
			t.Fatalf("baseline store: %v", err)
		}
	}
	st := folding.Stats()
	if st.CostRecompressions == 0 {
		t.Fatalf("cost trigger never fired: %+v", st)
	}
	if st.FoldFirstRuns == 0 || st.RefoldRules == 0 {
		t.Fatalf("no recompression input was pre-folded: %+v", st)
	}
	gf, gb := folding.Snapshot(), baseline.Snapshot()
	if err := gf.Validate(); err != nil {
		t.Fatalf("fold-first grammar invalid: %v", err)
	}
	tf, err := gf.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := gb.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameLabeledTree(gf.Syms, tf, gb.Syms, tb) {
		t.Fatal("fold-first store diverged from the naive baseline")
	}
}

// TestCostTriggerRecompression pins the isolation-cost trigger: with
// the size trigger effectively disabled, sustained descent work alone
// must fire a recompression (and reset its own baseline afterwards).
func TestCostTriggerRecompression(t *testing.T) {
	g, ops := streamFixture(t, "EW", 200, 9)
	s := New(g, Config{
		Ratio:          1e9, // never by size
		MinSize:        1,
		CostStepsPerOp: 1, // any real walking fires
		RefoldSpine:    -1,
	})
	for done := 0; done < len(ops); done += 20 {
		end := min(done+20, len(ops))
		if err := s.ApplyAll(ops[done:end]); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CostRecompressions == 0 {
		t.Fatalf("cost trigger never fired: %+v", st)
	}
	if st.Recompressions < st.CostRecompressions {
		t.Fatalf("cost firings (%d) not reflected in recompressions (%d)",
			st.CostRecompressions, st.Recompressions)
	}
}

// TestRecompressGateBounds pins the fleet-wide scheduler: with a
// width-1 gate shared by two Stores and the first Store's asynchronous
// run held in flight, the second Store's policy firing must defer (not
// spawn), and fire for real once the gate frees up.
func TestRecompressGateBounds(t *testing.T) {
	shared := NewRecompressGate(1)
	cfg := Config{Ratio: 1.01, MinSize: 1, Async: true, Gate: shared}

	a := New(flatLogGrammar(64), cfg)
	ga := newGate(1)
	ga.install(a)
	b := New(flatLogGrammar(64), cfg)

	// Degrade a store until its policy fires; with the gated compressor
	// installed, a spawned run parks inside the compressor and holds the
	// shared gate slot.
	degrade := func(s *Store, n int) {
		for i := 0; i < n; i++ {
			ts, err := s.TreeSize()
			if err != nil {
				t.Fatal(err)
			}
			op := update.Op{Kind: update.Insert, Pos: ts - 1, Frag: xmltree.NewUnranked("rec")}
			if err := s.Apply(op); err != nil {
				t.Fatal(err)
			}
		}
	}
	degrade(a, 12)
	<-ga.entered // A's run is in flight, gate slot taken

	// B degrades: its policy fires but must defer on the saturated gate.
	degrade(b, 24)
	if st := b.Stats(); st.DeferredRecompressions == 0 {
		t.Fatalf("B never deferred: %+v", st)
	} else if st.AsyncRecompressions != 0 {
		t.Fatalf("B recompressed through a saturated gate: %+v", st)
	}

	// Release A; its run completes and frees the gate. B's next batch
	// boundary fires for real.
	close(ga.release)
	a.Wait()
	degrade(b, 12)
	b.Wait()
	if st := b.Stats(); st.Recompressions == 0 {
		t.Fatalf("B never recompressed after the gate freed: %+v", st)
	}
}

// TestShardedSharedGate pins the fleet wiring: MaxConcurrentRecompressions
// materializes one shared gate for every document of a Sharded store,
// and the deferred counter aggregates into ShardedStats.
func TestShardedSharedGate(t *testing.T) {
	ss := NewSharded(2, Config{
		Ratio: 1.01, MinSize: 1, Async: true,
		MaxConcurrentRecompressions: 1,
	})
	defer ss.Close()
	if ss.cfg.Gate == nil {
		t.Fatal("NewSharded did not materialize the shared gate")
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		if _, err := ss.Open(id, flatLogGrammar(48)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 10; round++ {
		for _, id := range ss.Docs() {
			st, _ := ss.Get(id)
			ts, err := st.TreeSize()
			if err != nil {
				t.Fatal(err)
			}
			op := update.Op{Kind: update.Insert, Pos: ts - 1, Frag: xmltree.NewUnranked("rec")}
			if err := ss.Apply(id, op); err != nil {
				t.Fatal(err)
			}
		}
	}
	ss.Quiesce()
	agg := ss.Stats()
	var perDoc int64
	for _, id := range ss.Docs() {
		st, _ := ss.Get(id)
		perDoc += st.Stats().DeferredRecompressions
	}
	if agg.DeferredRecompressions != perDoc {
		t.Fatalf("aggregate deferred %d, per-doc sum %d", agg.DeferredRecompressions, perDoc)
	}
	if agg.Recompressions == 0 {
		t.Fatalf("fleet never recompressed: %+v", agg)
	}
}
