package store

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/xmltree"
)

// gate instruments a Store's compressor so a test can hold an
// asynchronous recompression in flight deliberately: the first n calls
// block until release is closed, later calls pass straight through.
// This is the deterministic "slow compressor" that pins the swap
// protocol.
type gate struct {
	entered   chan struct{} // one buffered signal per gated call, sent before parking
	release   chan struct{}
	remaining atomic.Int32
}

func newGate(n int) *gate {
	g := &gate{
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	g.remaining.Store(int32(n))
	return g
}

func (ga *gate) install(s *Store) {
	inner := s.compress
	s.compress = func(g *grammar.Grammar, o core.Options) (*grammar.Grammar, *core.Stats) {
		if ga.remaining.Add(-1) >= 0 {
			ga.entered <- struct{}{}
			<-ga.release
		}
		return inner(g, o)
	}
}

// asyncFixture is an append-friendly log document plus its plain-tree
// ground truth; applyRec appends one record through the Store and the
// reference tree in lockstep.
type asyncFixture struct {
	st   *Store
	syms *xmltree.SymbolTable
	ref  *xmltree.Node
	ops  int
}

func newAsyncFixture(t *testing.T, cfg Config) *asyncFixture {
	t.Helper()
	root := xmltree.NewUnranked("log")
	for i := 0; i < 64; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("rec"))
	}
	doc := root.Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	return &asyncFixture{st: New(g, cfg), syms: doc.Syms, ref: doc.Root.Copy()}
}

func (fx *asyncFixture) applyRec(t *testing.T) {
	t.Helper()
	n, err := fx.st.TreeSize()
	if err != nil {
		t.Fatal(err)
	}
	op := update.Op{Kind: update.Insert, Pos: n - 1, Frag: xmltree.NewUnranked("rec")}
	if err := fx.st.Apply(op); err != nil {
		t.Fatal(err)
	}
	fx.ref, err = update.ApplyTree(fx.syms, fx.ref, op)
	if err != nil {
		t.Fatal(err)
	}
	fx.ops++
}

// check asserts the Store still derives exactly the reference tree — the
// "never a lost update" property of the swap protocol.
func (fx *asyncFixture) check(t *testing.T, when string) {
	t.Helper()
	snap := fx.st.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatalf("%s: invalid grammar: %v", when, err)
	}
	if !sameLabeledTree(snap.Syms, mustTree(t, snap), fx.syms, fx.ref) {
		t.Fatalf("%s: store diverged from the reference tree", when)
	}
}

// driveInflight appends records until an asynchronous recompression is
// in flight. RecompressionInflight flips under the write lock at the
// batch boundary that triggers the run, so once it reads true no op has
// raced the snapshot yet — the tail is deterministically empty here.
func (fx *asyncFixture) driveInflight(t *testing.T) {
	t.Helper()
	for i := 0; i < 2048; i++ {
		fx.applyRec(t)
		if fx.st.Stats().RecompressionInflight {
			return
		}
	}
	t.Fatal("policy never started an async recompression")
}

// TestAsyncSwapClean: no write races the in-flight run, so the epoch
// check passes and the compressed grammar (plus its pre-warmed size
// vectors) swaps in without any writer stall or cache warm-up pass.
func TestAsyncSwapClean(t *testing.T) {
	ga := newGate(1)
	fx := newAsyncFixture(t, Config{Async: true, Ratio: 1.5, MinSize: 8})
	ga.install(fx.st)

	fx.driveInflight(t)
	grown := fx.st.Size()
	missesBefore := fx.st.Stats().SizeCacheMisses
	close(ga.release)
	fx.st.Wait()

	stats := fx.st.Stats()
	if stats.AsyncRecompressions != 1 || stats.DiscardedRecompressions != 0 {
		t.Fatalf("async=%d discarded=%d, want 1/0",
			stats.AsyncRecompressions, stats.DiscardedRecompressions)
	}
	if stats.ReplayedTailOps != 0 {
		t.Fatalf("clean swap replayed %d tail ops", stats.ReplayedTailOps)
	}
	if stats.Size >= grown {
		t.Fatalf("swap did not shrink the grammar (%d -> %d)", grown, stats.Size)
	}
	// Cache hand-off: the swap installed the vectors computed off the
	// lock, so no new cold ValSizes pass may appear — the next op must
	// hit the warm cache.
	fx.applyRec(t)
	if got := fx.st.Stats().SizeCacheMisses; got != missesBefore {
		t.Fatalf("swap cost a cache warm-up pass (misses %d -> %d)", missesBefore, got)
	}
	if epoch := fx.st.Epoch(); epoch != uint64(fx.ops) {
		t.Fatalf("epoch %d after %d ops", epoch, fx.ops)
	}
	fx.check(t, "after clean swap")
}

// TestAsyncSwapReplaysTail: writes racing the in-flight run land in the
// tail and are replayed onto the compressed result before the swap —
// the race costs nothing and loses nothing.
func TestAsyncSwapReplaysTail(t *testing.T) {
	ga := newGate(1)
	fx := newAsyncFixture(t, Config{Async: true, Ratio: 1.5, MinSize: 8})
	ga.install(fx.st)

	fx.driveInflight(t)
	const racing = 5
	for i := 0; i < racing; i++ {
		fx.applyRec(t) // these race the blocked compression
	}
	close(ga.release)
	fx.st.Wait()

	stats := fx.st.Stats()
	if stats.AsyncRecompressions != 1 {
		t.Fatalf("async recompressions = %d, want 1", stats.AsyncRecompressions)
	}
	if stats.ReplayedTailOps != racing {
		t.Fatalf("replayed %d tail ops, want %d", stats.ReplayedTailOps, racing)
	}
	if stats.DiscardedRecompressions != 0 {
		t.Fatalf("replayable tail was discarded (%d)", stats.DiscardedRecompressions)
	}
	if epoch := fx.st.Epoch(); epoch != uint64(fx.ops) {
		t.Fatalf("epoch %d after %d ops — replay lost the continuity", epoch, fx.ops)
	}
	fx.check(t, "after tail replay")
}

// TestAsyncSwapDiscardOnOverflow: more racing writes than MaxTail must
// discard the run — never block writers, never lose their updates — and
// the policy then recompresses on a later batch.
func TestAsyncSwapDiscardOnOverflow(t *testing.T) {
	ga := newGate(1)
	fx := newAsyncFixture(t, Config{Async: true, Ratio: 1.5, MinSize: 8, MaxTail: 2})
	ga.install(fx.st)

	fx.driveInflight(t)
	for i := 0; i < 6; i++ { // > MaxTail
		fx.applyRec(t)
	}
	close(ga.release)
	fx.st.Wait()

	stats := fx.st.Stats()
	if stats.DiscardedRecompressions != 1 {
		t.Fatalf("discarded = %d, want 1", stats.DiscardedRecompressions)
	}
	if stats.Recompressions != 0 {
		t.Fatalf("an overflowed run still swapped in (%d)", stats.Recompressions)
	}
	fx.check(t, "after discarded run")

	// The grammar is still degraded, so the policy must fire again; the
	// gate is exhausted, so this run completes immediately and swaps.
	for i := 0; i < 512 && fx.st.Stats().Recompressions == 0; i++ {
		fx.applyRec(t)
		fx.st.Wait()
	}
	if fx.st.Stats().Recompressions == 0 {
		t.Fatal("policy never recovered after a discarded run")
	}
	fx.check(t, "after recovery")
}

// TestAsyncDiscardAfterManualRecompress: a manual synchronous Recompress
// during an in-flight run replaces the grammar generation; the stale
// async result must be discarded even though the epoch is unchanged.
func TestAsyncDiscardAfterManualRecompress(t *testing.T) {
	ga := newGate(1)
	fx := newAsyncFixture(t, Config{Async: true, Ratio: 1.5, MinSize: 8})
	ga.install(fx.st)

	fx.driveInflight(t)
	// Wait until the background run is parked inside the gate; only then
	// does the manual run below bypass it (the gate is single-shot).
	<-ga.entered
	fx.st.Recompress()
	close(ga.release)
	fx.st.Wait()

	stats := fx.st.Stats()
	if stats.AsyncRecompressions != 0 || stats.DiscardedRecompressions != 1 {
		t.Fatalf("async=%d discarded=%d, want 0/1 after manual recompression",
			stats.AsyncRecompressions, stats.DiscardedRecompressions)
	}
	if stats.Recompressions != 1 {
		t.Fatalf("recompressions = %d, want the manual run only", stats.Recompressions)
	}
	fx.check(t, "after manual recompression")
}

// TestEpochReadAllocFree guards the swap protocol's read-side cost: the
// epoch check (Store.Epoch) and the sharded document lookup must not
// allocate — they sit on every read of a serving system.
func TestEpochReadAllocFree(t *testing.T) {
	fx := newAsyncFixture(t, Config{Ratio: -1})
	if allocs := testing.AllocsPerRun(100, func() {
		_ = fx.st.Epoch()
		_ = fx.st.Size()
	}); allocs != 0 {
		t.Fatalf("Store.Epoch/Size allocated %.1f times per read", allocs)
	}

	ss := NewSharded(4, Config{Ratio: -1})
	defer ss.Close()
	root := xmltree.NewUnranked("r", xmltree.NewUnranked("a"))
	g, _ := treerepair.Compress(root.Binary(), treerepair.Options{})
	if _, err := ss.Open("doc-0", g); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		st, ok := ss.Get("doc-0")
		if !ok {
			t.Fatal("doc-0 vanished")
		}
		_ = st.Epoch()
	}); allocs != 0 {
		t.Fatalf("sharded lookup + epoch check allocated %.1f times per read", allocs)
	}
}
