package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/grammar"
	"repro/internal/update"
	"repro/internal/wal"
)

// Durability makes a Store (or a whole Sharded fleet) durable: every
// committed batch is appended to a per-document write-ahead log before
// ApplyAll acks, and encoded-grammar snapshots roll in the background
// so recovery replays a bounded tail instead of the whole history. See
// internal/wal for the on-disk format and the crash-tolerance
// contract.
type Durability struct {
	// Dir is the root directory; each document owns one subdirectory
	// under it (wal.DocDir).
	Dir string
	// Fsync is the append-path fsync policy (default wal.FsyncBatch:
	// an acked batch survives any crash).
	Fsync wal.FsyncPolicy
	// FsyncEvery is the wal.FsyncInterval period (0 = wal default).
	FsyncEvery time.Duration
	// SnapshotEveryOps rolls a new snapshot once this many ops have
	// been logged past the last one (0 = DefaultSnapshotEveryOps,
	// negative = never snapshot automatically).
	SnapshotEveryOps int64
	// SegmentBytes is the WAL segment roll size (0 = wal default).
	SegmentBytes int64
	// Injector, when non-nil, intercepts every WAL file mutation —
	// the fault-injection hook crash tests drive. Production leaves
	// it nil.
	Injector wal.Injector
}

// DefaultSnapshotEveryOps bounds recovery replay to a few hundred ops
// per document.
const DefaultSnapshotEveryOps = 512

func (d *Durability) walOptions() wal.Options {
	return wal.Options{
		Fsync:        d.Fsync,
		FsyncEvery:   d.FsyncEvery,
		SegmentBytes: d.SegmentBytes,
		Injector:     d.Injector,
	}
}

func (d *Durability) snapshotEvery() int64 {
	if d.SnapshotEveryOps == 0 {
		return DefaultSnapshotEveryOps
	}
	return d.SnapshotEveryOps
}

func (d *Durability) docDir(id string) string {
	return filepath.Join(d.Dir, wal.DocDir(id))
}

func encodeGrammar(g *grammar.Grammar) ([]byte, error) {
	var buf bytes.Buffer
	if err := grammar.Encode(&buf, g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// CreateDurable opens a NEW durable document: the grammar is written
// as the base snapshot (covering position 0) before the Store accepts
// a single op, so a crash at any later moment — including before the
// first rolled snapshot — recovers at least the seed state. Fails if
// the document directory already exists; reopening goes through
// OpenDurable.
func CreateDurable(id string, g *grammar.Grammar, cfg Config) (*Store, error) {
	d := cfg.Durability
	if d == nil {
		return nil, fmt.Errorf("store: CreateDurable without Config.Durability")
	}
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: durability root: %w", err)
	}
	seed, err := encodeGrammar(g)
	if err != nil {
		return nil, fmt.Errorf("store: encode seed of %q: %w", id, err)
	}
	l, err := wal.Create(d.docDir(id), seed, d.walOptions())
	if err != nil {
		return nil, err
	}
	st := New(g, cfg)
	st.attachWAL(l, d, 0)
	return st, nil
}

// OpenDurable reopens a durable document after a crash or a clean
// close: the newest valid snapshot loads (falling back past corrupt
// ones), the WAL tail replays batch-by-batch through the normal apply
// path — same per-batch garbage collection, same maintenance cadence
// as the original ApplyAll calls — and the Store resumes serving at
// exactly the acked prefix of the update stream.
func OpenDurable(id string, cfg Config) (*Store, error) {
	d := cfg.Durability
	if d == nil {
		return nil, fmt.Errorf("store: OpenDurable without Config.Durability")
	}
	rec, err := wal.Recover(d.docDir(id), d.walOptions())
	if err != nil {
		return nil, fmt.Errorf("store: recover %q: %w", id, err)
	}
	st := New(rec.Grammar, cfg)
	off := 0
	for _, n := range rec.BatchLens {
		if err := st.ApplyAll(rec.Tail[off : off+n]); err != nil {
			rec.Log.Close()
			return nil, fmt.Errorf("store: replay %q: %w", id, err)
		}
		off += n
	}
	// Replay may have launched asynchronous recompressions; they swap
	// (or discard) on their own and never change the derived document.
	st.attachWAL(rec.Log, d, rec.SnapshotPos)
	// Restore the exactly-once watermark: a client retrying a batch that
	// was applied (and logged) before the crash must be acked
	// idempotently, not re-applied.
	st.lastSeq = rec.LastSeq
	st.recovered = rec.Stats
	return st, nil
}

// attachWAL arms the durability path on a Store whose in-memory state
// already matches the log's durable position. Called before the Store
// is shared, so no locking.
func (s *Store) attachWAL(l *wal.Log, d *Durability, lastSnapPos int64) {
	s.wl = l
	s.walPos = l.Pos()
	// The WAL position and the grammar's update epoch advance in
	// lockstep from here on, but their absolute values differ when the
	// grammar was decoded from a snapshot (epoch restarts at zero) or
	// replayed; the base reconciles them.
	s.epochBase = s.walPos - int64(s.g.Epoch())
	s.lastSnapPos = lastSnapPos
	s.snapEvery = d.snapshotEvery()
}

// appendWALLocked logs the committed prefix of a batch — stamped with
// its client sequence number, so the exactly-once watermark is exactly
// as durable as the ops it covers — before the ack. A WAL failure
// means the ops are applied in memory but not durable: the log (and
// this Store's write path) is broken until reopen, and the caller must
// surface the WAL error — the batch was NOT acked.
func (s *Store) appendWALLocked(ops []update.Op, seq uint64) error {
	if s.wl == nil || len(ops) == 0 {
		return nil
	}
	if err := s.wl.AppendBatch(s.walPos, seq, ops); err != nil {
		s.walBroken = err
		return fmt.Errorf("store: wal append: %w", err)
	}
	s.walPos += int64(len(ops))
	return nil
}

// SyncWAL forces an fsync of the document's WAL tail regardless of the
// configured fsync policy — the drain hook: a graceful front-end drain
// syncs every resident document after the last in-flight batch, so
// every acked write survives a post-drain kill even under FsyncOff or
// FsyncInterval. No-op for in-memory Stores.
func (s *Store) SyncWAL() error {
	s.mu.RLock()
	wl := s.wl
	s.mu.RUnlock()
	if wl == nil {
		return nil
	}
	return wl.Sync()
}

// maybeSnapshotLocked rolls a snapshot once enough ops have been
// logged past the last one. ApplyAll publishes the batch's generation
// right before calling this (after garbage collection, so no stranded
// rule is ever frozen into a snapshot), so instead of cloning the
// grammar we pin that generation shared and encode it off the lock —
// snapshot publication costs the writer no copy at all, only a
// possible copy-on-write at the NEXT batch's first op. The encode and
// all file IO run in a background goroutine so writers never wait on
// snapshot publication.
func (s *Store) maybeSnapshotLocked() {
	if s.wl == nil || s.snapInflight || s.walBroken != nil || s.closed {
		return
	}
	if s.snapEvery < 0 || s.walPos-s.lastSnapPos < s.snapEvery {
		return
	}
	if int64(s.g.Epoch())+s.epochBase != s.walPos {
		// The in-memory document and the log disagree on the op count —
		// a snapshot here could cover ops the log never saw. Refuse;
		// this is unreachable while the log is healthy.
		return
	}
	pos := s.walPos
	seq := s.lastSeq // watermark covered by pos (both under the lock)
	gn := s.pub.Load()
	if gn.g != s.g || !gn.tryAcquire() {
		// Unreachable while the ApplyAll ordering holds (publish, then
		// snapshot check, all under the write lock): refuse rather than
		// encode a grammar the writer may keep mutating.
		return
	}
	s.snapInflight = true
	s.activeRuns++ // Wait/Quiesce/Close cover snapshot publication too
	go func() {
		enc, err := encodeGrammar(gn.g)
		if err == nil {
			err = s.wl.WriteSnapshot(pos, seq, enc)
		}
		s.mu.Lock()
		s.snapInflight = false
		if err == nil {
			if pos > s.lastSnapPos {
				s.lastSnapPos = pos
			}
		} else {
			// The snapshot failed but no acked data is at risk — the WAL
			// still holds every op. Recovery just replays a longer tail.
			s.snapshotFailures++
		}
		s.activeRuns--
		s.runsDone.Broadcast()
		s.mu.Unlock()
	}()
}

// Close flushes and closes the Store. Pending background work
// (asynchronous recompressions, snapshot publication) completes first;
// a durable Store then fsyncs and closes its WAL, so a clean Close
// loses nothing even under FsyncOff. After Close every mutation
// returns ErrClosed; reads keep working on the final state.
func (s *Store) Close() error {
	s.mu.Lock()
	for s.activeRuns > 0 {
		s.runsDone.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.wl != nil {
		err = s.wl.Close()
	}
	s.mu.Unlock()
	return err
}
