package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/datasets"
	"repro/internal/grammar"
	"repro/internal/navigate"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// sameLabeledTree compares two trees whose labels live in different
// symbol tables by comparing label names.
func sameLabeledTree(stA *xmltree.SymbolTable, a *xmltree.Node, stB *xmltree.SymbolTable, b *xmltree.Node) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Label.Kind != xmltree.Terminal || b.Label.Kind != xmltree.Terminal {
		return false
	}
	if stA.Name(a.Label.ID) != stB.Name(b.Label.ID) {
		return false
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !sameLabeledTree(stA, a.Children[i], stB, b.Children[i]) {
			return false
		}
	}
	return true
}

func mustTree(t *testing.T, g *grammar.Grammar) *xmltree.Node {
	t.Helper()
	tree, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestDifferentialStream is the differential stream test of the Store:
// a workload.Updates sequence replays through (a) the Store, (b) the
// per-op update.Apply path with fresh size vectors, and (c) the plain
// update.ApplyTree ground truth, asserting identical documents after
// every batch boundary.
func TestDifferentialStream(t *testing.T) {
	c, ok := datasets.ByShort("XM")
	if !ok {
		t.Fatal("no XM corpus")
	}
	u := c.Generate(0.03, 5)
	seq, err := workload.Updates(u, 240, 90, 23)
	if err != nil {
		t.Fatal(err)
	}

	g0, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
	// Auto-recompression on for the Store: the differential property must
	// hold across recompression boundaries too.
	st := New(g0.Clone(), Config{Ratio: 1.3, MinSize: 16})
	gPerOp := g0.Clone()
	ref := seq.Seed.Root.Copy()
	refSyms := seq.Seed.Syms.Clone()

	const batch = 40
	for done := 0; done < len(seq.Ops); done += batch {
		end := done + batch
		if end > len(seq.Ops) {
			end = len(seq.Ops)
		}
		ops := seq.Ops[done:end]
		if err := st.ApplyAll(ops); err != nil {
			t.Fatalf("store batch at %d: %v", done, err)
		}
		for i, op := range ops {
			if err := update.Apply(gPerOp, op); err != nil {
				t.Fatalf("per-op %d: %v", done+i, err)
			}
			ref, err = update.ApplyTree(refSyms, ref, op)
			if err != nil {
				t.Fatalf("tree op %d: %v", done+i, err)
			}
		}

		snap := st.Snapshot()
		if err := snap.Validate(); err != nil {
			t.Fatalf("invalid store grammar after %d ops: %v", end, err)
		}
		got := mustTree(t, snap)
		if !sameLabeledTree(snap.Syms, got, refSyms, ref) {
			t.Fatalf("store diverged from tree ground truth after %d ops", end)
		}
		perOp := mustTree(t, gPerOp)
		if !sameLabeledTree(gPerOp.Syms, perOp, refSyms, ref) {
			t.Fatalf("per-op path diverged from tree ground truth after %d ops", end)
		}
	}

	// The workload must land exactly on the corpus document.
	snap := st.Snapshot()
	got := mustTree(t, snap)
	if !sameLabeledTree(snap.Syms, got, seq.Final.Syms, seq.Final.Root) {
		t.Fatal("store did not converge to the final document")
	}

	stats := st.Stats()
	if stats.Ops != int64(len(seq.Ops)) {
		t.Fatalf("stats.Ops = %d, want %d", stats.Ops, len(seq.Ops))
	}
	if stats.SizeCacheHits == 0 {
		t.Fatal("size-vector cache never hit across batched ops")
	}
	// One cold miss per grammar generation (initial + per recompression).
	if want := stats.Recompressions + 1; stats.SizeCacheMisses > want {
		t.Fatalf("cache misses %d exceed grammar generations %d", stats.SizeCacheMisses, want)
	}
}

// TestRootEdgeCases covers the document-boundary operations: delete at
// preorder 0 (the root) and insert at the final ⊥ (append past the last
// element).
func TestRootEdgeCases(t *testing.T) {
	mk := func() (*Store, *xmltree.Document) {
		u := xmltree.NewUnranked("log",
			xmltree.NewUnranked("a"), xmltree.NewUnranked("b"))
		doc := u.Binary()
		g, _ := treerepair.Compress(doc, treerepair.Options{})
		return New(g, Config{Ratio: -1}), doc
	}

	// Insert at the final ⊥: the last node in preorder.
	st, doc := mk()
	n, err := st.TreeSize()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(update.Op{Kind: update.Insert, Pos: n - 1,
		Frag: xmltree.NewUnranked("tail")}); err != nil {
		t.Fatalf("append at final ⊥: %v", err)
	}
	ref, err := update.ApplyTree(doc.Syms, doc.Root.Copy(), update.Op{
		Kind: update.Insert, Pos: n - 1, Frag: xmltree.NewUnranked("tail")})
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if !sameLabeledTree(snap.Syms, mustTree(t, snap), doc.Syms, ref) {
		t.Fatal("append at final ⊥ diverged")
	}

	// Delete at preorder 0: the document degenerates to a single ⊥.
	st, _ = mk()
	if err := st.Apply(update.Op{Kind: update.Delete, Pos: 0}); err != nil {
		t.Fatalf("delete at root: %v", err)
	}
	if n, err := st.TreeSize(); err != nil || n != 1 {
		t.Fatalf("after root delete: tree size %d (%v), want 1", n, err)
	}
	if el, err := st.Elements(); err != nil || el != 0 {
		t.Fatalf("after root delete: %d elements (%v), want 0", el, err)
	}
}

// TestAutoRecompression: an append-heavy stream must trip the ratio
// trigger and keep the live grammar near the recompressed optimum.
func TestAutoRecompression(t *testing.T) {
	root := xmltree.NewUnranked("log")
	for i := 0; i < 64; i++ {
		root.Children = append(root.Children, xmltree.NewUnranked("rec"))
	}
	doc := root.Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	st := New(g, Config{Ratio: 1.5, MinSize: 8})

	for i := 0; i < 256; i++ {
		n, err := st.TreeSize()
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Apply(update.Op{Kind: update.Insert, Pos: n - 1,
			Frag: xmltree.NewUnranked("rec")}); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Recompressions == 0 {
		t.Fatal("policy never recompressed an append-heavy stream")
	}
	if el, err := st.Elements(); err != nil || el != 64+256+1 {
		t.Fatalf("element count %d (%v), want %d", el, err, 64+256+1)
	}
	// The live grammar must track the policy's own bound.
	if float64(stats.Size) > stats.EffectiveRatio*float64(stats.LastCompressedSize) {
		t.Fatalf("|G|=%d beyond ratio %.2f × last=%d",
			stats.Size, stats.EffectiveRatio, stats.LastCompressedSize)
	}
	if stats.PeakSize < stats.Size {
		t.Fatal("peak below current size")
	}
}

// TestPolicyBackoff: recompressing an incompressible document must back
// the effective trigger ratio off instead of recompressing in a loop.
func TestPolicyBackoff(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := &xmltree.Unranked{Label: "r"}
	for i := 0; i < 40; i++ {
		u.Children = append(u.Children, xmltree.NewUnranked(fmt.Sprintf("u%d%d", i, rng.Intn(10))))
	}
	g, _ := treerepair.Compress(u.Binary(), treerepair.Options{})
	st := New(g, Config{Ratio: 1.01, MinSize: 1, MaxRatio: 8})

	// Rename churn with fresh labels keeps the document incompressible.
	for i := 0; i < 120; i++ {
		if err := st.Apply(update.Op{Kind: update.Rename, Pos: 1,
			Label: fmt.Sprintf("x%d", i)}); err != nil {
			t.Fatal(err)
		}
		n, _ := st.TreeSize()
		if err := st.Apply(update.Op{Kind: update.Insert, Pos: n - 1,
			Frag: xmltree.NewUnranked(fmt.Sprintf("y%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Recompressions == 0 {
		t.Skip("grammar never crossed the trigger")
	}
	if stats.EffectiveRatio <= 1.01 {
		t.Fatalf("effective ratio %.3f never backed off", stats.EffectiveRatio)
	}
}

// TestSaturationSentinel: on an exponentially compressing grammar the
// element count must fail with grammar.ErrSaturated, and Stats must
// report Saturated instead of a bogus count.
func TestSaturationSentinel(t *testing.T) {
	// S → D_0, D_i → f(D_{i+1}, D_{i+1}) doubles 70 times: 2^70 nodes.
	syms := xmltree.NewSymbolTable()
	f := syms.InternElement("f")
	g := grammar.New(syms)
	prev := g.NewRule(0, xmltree.New(xmltree.Term(f), xmltree.NewBottom(), xmltree.NewBottom()))
	for i := 0; i < 70; i++ {
		prev = g.NewRule(0, xmltree.New(xmltree.Term(f),
			xmltree.New(xmltree.Nonterm(prev.ID)),
			xmltree.New(xmltree.Nonterm(prev.ID))))
	}
	g.StartRule().RHS = xmltree.New(xmltree.Nonterm(prev.ID))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	st := New(g, Config{Ratio: -1})
	if _, err := st.Elements(); !errors.Is(err, grammar.ErrSaturated) {
		t.Fatalf("Elements error = %v, want ErrSaturated", err)
	}
	stats := st.Stats()
	if !stats.Saturated || stats.Elements != 0 {
		t.Fatalf("Stats = {Saturated:%v Elements:%d}, want saturated/0",
			stats.Saturated, stats.Elements)
	}
}

// TestConcurrentReaders hammers the Store with one writer and many
// aggregate readers; run under -race this is the regression test for the
// RWMutex discipline.
func TestConcurrentReaders(t *testing.T) {
	c, _ := datasets.ByShort("XM")
	u := c.Generate(0.02, 9)
	seq, err := workload.Updates(u, 150, 90, 41)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
	st := New(g, Config{Ratio: 1.3, MinSize: 16})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r % 4 {
				case 0:
					if _, err := st.CountLabel("item"); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := st.LabelHistogram(); err != nil {
						t.Error(err)
						return
					}
				case 2:
					_ = st.Stats()
					_, _ = st.TreeSize()
				case 3:
					cur, err := st.Cursor()
					if err != nil {
						t.Error(err)
						return
					}
					for cur.FirstChild() == nil {
					}
				}
			}
		}(r)
	}

	const batch = 10
	for done := 0; done < len(seq.Ops); done += batch {
		end := done + batch
		if end > len(seq.Ops) {
			end = len(seq.Ops)
		}
		if err := st.ApplyAll(seq.Ops[done:end]); err != nil {
			t.Fatalf("batch at %d: %v", done, err)
		}
	}
	close(stop)
	wg.Wait()

	snap := st.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	got := mustTree(t, snap)
	if !sameLabeledTree(snap.Syms, got, seq.Final.Syms, seq.Final.Root) {
		t.Fatal("store diverged under concurrent reads")
	}
}

// TestSnapshotInvalidationSafety: a snapshot taken before updates and
// recompressions must keep deriving the old document.
func TestSnapshotInvalidationSafety(t *testing.T) {
	u := xmltree.NewUnranked("r", xmltree.NewUnranked("a"), xmltree.NewUnranked("b"))
	doc := u.Binary()
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	st := New(g, Config{Ratio: -1})

	snap := st.Snapshot()
	before := mustTree(t, snap)

	if err := st.Apply(update.Op{Kind: update.Rename, Pos: 1, Label: "zz"}); err != nil {
		t.Fatal(err)
	}
	st.Recompress()

	after := mustTree(t, snap)
	if !xmltree.Equal(before, after) {
		t.Fatal("snapshot changed under later updates")
	}
	live := st.Snapshot()
	if sameLabeledTree(live.Syms, mustTree(t, live), snap.Syms, before) {
		t.Fatal("live store did not change")
	}
}

// TestUsageCache: repeated label queries must be served from one cached
// usage vector, updates and recompressions must invalidate it, and the
// cached answers must always match a cold navigate.CountLabel pass.
func TestUsageCache(t *testing.T) {
	c, _ := datasets.ByShort("XM")
	u := c.Generate(0.02, 5)
	seq, err := workload.Updates(u, 40, 90, 13)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
	st := New(g, Config{Ratio: -1})

	check := func(when string) {
		for _, label := range []string{"item", "listitem", "nosuchlabel"} {
			got, err := st.CountLabel(label)
			if err != nil {
				t.Fatalf("%s: CountLabel(%s): %v", when, label, err)
			}
			var want float64
			if err := st.Query(func(g *grammar.Grammar) error {
				w, err := navigate.CountLabel(g, label)
				want = w
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: CountLabel(%s) cached %v, cold %v", when, label, got, want)
			}
		}
	}

	check("fresh")
	s0 := st.Stats()
	if s0.UsageCacheMisses != 1 || s0.UsageCacheHits < 2 {
		t.Fatalf("fresh: usage cache hits=%d misses=%d, want >=2/1",
			s0.UsageCacheHits, s0.UsageCacheMisses)
	}

	if err := st.ApplyAll(seq.Ops); err != nil {
		t.Fatal(err)
	}
	check("after updates")
	s1 := st.Stats()
	if s1.UsageCacheMisses != 2 {
		t.Fatalf("updates must invalidate the usage cache (misses=%d, want 2)", s1.UsageCacheMisses)
	}

	st.Recompress()
	check("after recompression")
	if s2 := st.Stats(); s2.UsageCacheMisses != 3 {
		t.Fatalf("recompression must invalidate the usage cache (misses=%d, want 3)", s2.UsageCacheMisses)
	}
}
