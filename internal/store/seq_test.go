package store

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/update"
	"repro/internal/wal"
)

// TestApplyAllSeqExactlyOnce pins the in-memory dup/gap semantics: a
// duplicate sequence acks without re-applying (byte-identical state,
// DupBatches bumped), a gapped sequence is rejected without applying,
// and the watermark advances one batch at a time.
func TestApplyAllSeqExactlyOnce(t *testing.T) {
	g0, batches := durWorkload(t, "XM", 40, 10)
	st := New(g0.Clone(), Config{Ratio: -1})

	if err := st.ApplyAllSeq(batches[0], 1); err != nil {
		t.Fatal(err)
	}
	after1 := encLive(t, st)
	if got := st.LastSeq(); got != 1 {
		t.Fatalf("LastSeq %d, want 1", got)
	}

	// Retry of batch 1: acked, nothing applied.
	if err := st.ApplyAllSeq(batches[0], 1); err != nil {
		t.Fatalf("duplicate sequence not acked: %v", err)
	}
	if !bytes.Equal(encLive(t, st), after1) {
		t.Fatal("duplicate sequence re-applied the batch")
	}
	if ds := st.Stats(); ds.DupBatches != 1 || ds.Batches != 1 {
		t.Fatalf("dup=%d batches=%d, want 1/1", ds.DupBatches, ds.Batches)
	}

	// Gap: batch 3 before batch 2 means batch 2 was lost in transit.
	if err := st.ApplyAllSeq(batches[2], 3); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gapped sequence returned %v, want ErrSeqGap", err)
	}
	if !bytes.Equal(encLive(t, st), after1) {
		t.Fatal("gapped sequence mutated the store")
	}

	if err := st.ApplyAllSeq(batches[1], 2); err != nil {
		t.Fatal(err)
	}
	if got := st.LastSeq(); got != 2 {
		t.Fatalf("LastSeq %d, want 2", got)
	}

	// A different batch under an old sequence is still just acked: the
	// sequence, not the payload, is the identity.
	if err := st.ApplyAllSeq(batches[2], 1); err != nil {
		t.Fatal(err)
	}
	if st.Stats().DupBatches != 2 {
		t.Fatal("old sequence not counted as duplicate")
	}
}

// TestSeqWatermarkSurvivesKillAndReopen drives sequenced batches into a
// durable Store, simulates a crash (no Close), reopens, and retries the
// last batch: recovery must restore the watermark from the WAL records
// so the retry dup-acks instead of double-applying.
func TestSeqWatermarkSurvivesKillAndReopen(t *testing.T) {
	g0, batches := durWorkload(t, "XM", 60, 10)
	dir := t.TempDir()
	cfg := durCfg(dir, -1, wal.FsyncBatch, nil)

	st, err := CreateDurable("doc", g0.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if err := st.ApplyAllSeq(b, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	want := encLive(t, st)
	// Crash: abandon st without Close.

	re, err := OpenDurable("doc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.LastSeq(); got != uint64(len(batches)) {
		t.Fatalf("recovered LastSeq %d, want %d", got, len(batches))
	}
	// The client never saw the last ack: it retries the final batch.
	if err := re.ApplyAllSeq(batches[len(batches)-1], uint64(len(batches))); err != nil {
		t.Fatal(err)
	}
	if re.Stats().DupBatches != 1 {
		t.Fatal("retried batch was not dup-acked")
	}
	if !bytes.Equal(encLive(t, re), want) {
		t.Fatal("retry after recovery double-applied the batch")
	}
	// The next fresh sequence continues the chain.
	extra := update.Op{Kind: update.Rename, Pos: 0, Label: "retryroot"}
	if err := re.ApplyAllSeq([]update.Op{extra}, uint64(len(batches)+1)); err != nil {
		t.Fatal(err)
	}
}

// TestSeqWatermarkSurvivesEviction pins the tiering seam: an in-memory
// fleet under a tiny budget evicts a document between two deliveries of
// the same sequenced batch; the rehydrated incarnation must still
// remember the watermark.
func TestSeqWatermarkSurvivesEviction(t *testing.T) {
	g0, batches := durWorkload(t, "XM", 30, 10)
	ss := NewSharded(2, Config{Ratio: -1, MemoryBudget: 1})
	defer ss.Close()
	for _, id := range []string{"a", "b", "c"} {
		if _, err := ss.Open(id, g0.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.ApplyAllSeq("a", batches[0], 1); err != nil {
		t.Fatal(err)
	}
	// Touch the other documents so "a" becomes the eviction victim, then
	// force the budget pass by writing.
	for _, id := range []string{"b", "c"} {
		if err := ss.ApplyAll(id, batches[0]); err != nil {
			t.Fatal(err)
		}
	}
	if seq, err := ss.LastSeq("a"); err != nil || seq != 1 {
		t.Fatalf("LastSeq after eviction cycle: %d, %v; want 1", seq, err)
	}
	if err := ss.ApplyAllSeq("a", batches[0], 1); err != nil {
		t.Fatal(err)
	}
	if ds := ss.Stats(); ds.DupBatches != 1 {
		t.Fatalf("fleet DupBatches %d, want 1", ds.DupBatches)
	}
	if err := ss.ApplyAllSeq("a", batches[1], 2); err != nil {
		t.Fatal(err)
	}
}
