// Sharded is the multi-document serving layer: document IDs are hashed
// across N shards, each shard owning its documents' Stores plus one
// worker goroutine that applies that shard's update batches. Updates to
// documents in different shards therefore never contend — neither on a
// lock nor on a queue — while reads go straight to the per-document
// Store's lock-free generation and never touch a worker at all.
//
// The shard is deliberately the unit of write parallelism AND of write
// backpressure: one worker per shard bounds the number of grammars
// mutating concurrently to the shard count, whatever the document count,
// so a fleet of thousands of documents cannot stampede the CPU. Size
// the shard count to the write parallelism wanted (e.g. GOMAXPROCS);
// same-shard documents serialize behind each other by design.
//
// Combined with per-Store asynchronous recompression (Config.Async),
// the write path of a shard is never stalled by GrammarRePair either:
// the worker keeps draining batches while compressions run beside it
// and swap in under the epoch protocol.
//
// # Memory tiering
//
// With Config.MemoryBudget > 0 the fleet additionally bounds its
// resident footprint. Every document tracks a last-use clock (bumped by
// worker batches and direct reads) and a ResidentBytes estimate; when
// the fleet total exceeds the budget, the coldest documents are
// evicted: an in-memory fleet freezes them to their grammar.Encode
// bytes (typically 1–2 orders of magnitude smaller than the live
// arenas + caches), a durable fleet drops them entirely — the WAL
// already holds everything — and rehydrates through wal.Recover. The
// next Apply/Get/Query on an evicted document reopens it transparently.
// Eviction closes the document's Store first, so a caller still
// holding a direct *Store handle across an eviction observes
// deterministic behavior: reads keep serving the final pre-eviction
// state, writes fail with ErrClosed (route writes through
// Sharded.ApplyAll, which always targets the live incarnation).
package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/grammar"
	"repro/internal/update"
	"repro/internal/wal"
)

// Errors returned by the sharded layer.
var (
	// ErrUnknownDoc reports an operation addressed to a document ID that
	// was never opened (or has been dropped).
	ErrUnknownDoc = errors.New("store: unknown document")
	// ErrClosed reports a mutation against a closed Store or Sharded
	// store: Apply/ApplyAll/Open after Close fail with it
	// deterministically (reads keep working on the final state).
	ErrClosed = errors.New("store: closed")
	// ErrSeqGap reports a sequenced batch that skips past the document's
	// exactly-once watermark: at least one earlier batch was lost between
	// the client and the store, so applying this one would silently drop
	// it. The batch is rejected without applying anything.
	ErrSeqGap = errors.New("store: batch sequence gap")
)

// Sharded serves many documents concurrently. See the type comment at
// the top of this file for the architecture; create one with NewSharded.
type Sharded struct {
	cfg    Config
	shards []*shard
	closed atomic.Bool

	// Memory-tier state. useClock is a fleet-wide logical clock stamped
	// into each document's lastUse on every touch; residentBytes sums
	// the footprint estimates of the resident documents.
	useClock      atomic.Int64
	residentBytes atomic.Int64
	evictions     atomic.Int64
	hydrations    atomic.Int64
	evictFailures atomic.Int64
	// readChecks rate-limits the read path's over-budget probe: every
	// readEvictEvery-th resident read runs the maybeEvict check, so a
	// read-only fleet still converges back under budget (the worker-side
	// check only runs at write batch boundaries) without putting the
	// O(docs) victim scan on every lookup.
	readChecks atomic.Int64
	// evictMu admits one evictor at a time (TryLock — a concurrent
	// over-budget signal just lets the incumbent finish the job).
	evictMu sync.Mutex

	// retired accumulates the monotonic counters of evicted Stores so
	// fleet totals survive eviction: a rehydrated document restarts its
	// Store counters from zero, but Stats() starts from this.
	retiredMu sync.Mutex
	retired   ShardedStats
}

// docEntry is one document's slot in the fleet: a stable identity that
// survives evictions, pointing at the live Store while resident and at
// the frozen encoded bytes while evicted (durable fleets keep neither —
// the WAL is the cold copy). mu serializes state transitions
// (hydrate/evict) and worker writes; reads load st without it.
type docEntry struct {
	id string
	mu sync.Mutex
	st atomic.Pointer[Store]
	// frozen is the encoded grammar of an evicted in-memory document;
	// nil while resident and always nil on durable fleets. frozenSeq
	// preserves the exactly-once watermark across the freeze (durable
	// fleets recover it from the WAL instead).
	frozen    []byte
	frozenSeq uint64

	lastUse   atomic.Int64
	footprint atomic.Int64 // resident-bytes estimate last accounted
}

// shard is one hash bucket: its documents, and the worker serializing
// their updates. mu guards only the docs map, so reads never queue
// behind a writer; the jobs channel has its own send lock — senders
// hold sendMu.RLock across the (possibly blocking) send and Close takes
// sendMu.Lock before closing the channel, so a send can never race the
// close and a blocked sender never delays a reader.
type shard struct {
	mu   sync.RWMutex
	docs map[string]*docEntry

	sendMu sync.RWMutex
	jobs   chan shardJob
	closed bool // guarded by sendMu
}

// shardJob is one update batch handed to a shard worker. seq is the
// batch's exactly-once sequence number (0 = unsequenced).
type shardJob struct {
	e    *docEntry
	ops  []update.Op
	seq  uint64
	done chan<- error
}

// NewSharded returns a multi-document store with the given shard count
// (n <= 0 selects GOMAXPROCS) whose documents all use cfg. One worker
// goroutine per shard is started; call Close to stop them.
//
// With Config.MaxConcurrentRecompressions > 0 (and no explicit Gate)
// the fleet shares one RecompressGate of that width: however many
// documents degrade at once, at most that many background GrammarRePair
// runs execute concurrently — the rest defer and fire at a later batch
// boundary (summed in ShardedStats.DeferredRecompressions).
func NewSharded(n int, cfg ...Config) *Sharded {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	var c Config
	if len(cfg) > 0 {
		c = cfg[0]
	}
	if c.Gate == nil && c.MaxConcurrentRecompressions > 0 {
		c.Gate = NewRecompressGate(c.MaxConcurrentRecompressions)
	}
	s := &Sharded{cfg: c, shards: make([]*shard, n)}
	for i := range s.shards {
		sh := &shard{docs: make(map[string]*docEntry), jobs: make(chan shardJob)}
		s.shards[i] = sh
		go s.work(sh)
	}
	return s
}

// OpenSharded is the durable fleet constructor: it creates (or reuses)
// cfg.Durability.Dir and recovers every document directory found under
// it — newest valid snapshot, WAL tail replay, torn tails truncated —
// before returning. A fleet killed at any moment reopens here to
// exactly the acked prefix of every document's update stream. New
// documents are then added with Open as usual. Under a MemoryBudget
// the recovered fleet is trimmed to the budget before the first
// request is served.
func OpenSharded(n int, cfg Config) (*Sharded, error) {
	if cfg.Durability == nil {
		return nil, fmt.Errorf("store: OpenSharded without Config.Durability")
	}
	if err := os.MkdirAll(cfg.Durability.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: durability root: %w", err)
	}
	ents, err := os.ReadDir(cfg.Durability.Dir)
	if err != nil {
		return nil, fmt.Errorf("store: durability root: %w", err)
	}
	s := NewSharded(n, cfg)
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		id, ok := wal.ParseDocDir(e.Name())
		if !ok {
			continue
		}
		st, err := OpenDurable(id, s.cfg)
		if err != nil {
			s.Close()
			return nil, err
		}
		de := &docEntry{id: id}
		de.st.Store(st)
		s.accountResident(de, st)
		sh := s.shardFor(id)
		sh.mu.Lock()
		sh.docs[id] = de
		sh.mu.Unlock()
	}
	s.maybeEvict()
	return s, nil
}

// work drains one shard's update batches until Close. The over-budget
// check runs after the ack is sent, so eviction work (encode + close)
// never sits on a writer's latency.
func (s *Sharded) work(sh *shard) {
	for j := range sh.jobs {
		j.done <- s.applyEntry(j.e, j.ops, j.seq)
		if s.cfg.MemoryBudget > 0 {
			s.maybeEvict()
		}
	}
}

// applyEntry applies one batch to a document, rehydrating it first if
// it was evicted. Holding e.mu across the ApplyAll makes writes
// eviction-transparent: the evictor's TryLock fails while a batch is in
// flight, so a worker-path write can never land on a closing Store.
func (s *Sharded) applyEntry(e *docEntry, ops []update.Op, seq uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, err := s.hydrateLocked(e)
	if err != nil {
		return err
	}
	err = st.ApplyAllSeq(ops, seq)
	if s.cfg.MemoryBudget > 0 {
		s.touch(e)
		s.refreshFootprintLocked(e, st)
	}
	return err
}

// touch stamps the document with the fleet's logical use clock.
func (s *Sharded) touch(e *docEntry) {
	e.lastUse.Store(s.useClock.Add(1))
}

// accountResident records a newly resident Store's footprint. Only
// budgeted fleets pay the O(|G|) estimate walk; an unbudgeted fleet
// computes footprints on demand in Stats.
func (s *Sharded) accountResident(e *docEntry, st *Store) {
	if s.cfg.MemoryBudget <= 0 {
		return
	}
	s.touch(e)
	fp := st.ResidentBytes()
	s.residentBytes.Add(fp - e.footprint.Swap(fp))
}

// refreshFootprintLocked re-estimates a resident document's footprint
// after a write batch (grammar growth, recompression shrink, frontier
// churn all move it). Caller holds e.mu and MemoryBudget > 0.
func (s *Sharded) refreshFootprintLocked(e *docEntry, st *Store) {
	fp := st.ResidentBytes()
	s.residentBytes.Add(fp - e.footprint.Swap(fp))
}

// hydrateLocked returns the document's live Store, reopening it if it
// was evicted: durable fleets recover from the WAL (newest snapshot +
// tail replay), in-memory fleets decode the frozen bytes. Caller holds
// e.mu.
func (s *Sharded) hydrateLocked(e *docEntry) (*Store, error) {
	if st := e.st.Load(); st != nil {
		return st, nil
	}
	if s.closed.Load() {
		return nil, fmt.Errorf("%w: %q", ErrClosed, e.id)
	}
	var st *Store
	if s.cfg.Durability != nil {
		var err error
		if st, err = OpenDurable(e.id, s.cfg); err != nil {
			return nil, fmt.Errorf("store: rehydrate %q: %w", e.id, err)
		}
	} else {
		g, err := grammar.Decode(bytes.NewReader(e.frozen))
		if err != nil {
			// Unreachable: frozen came from encoding our own grammar.
			return nil, fmt.Errorf("store: rehydrate %q: %w", e.id, err)
		}
		st = New(g, s.cfg)
		st.lastSeq = e.frozenSeq // not yet shared: no lock needed
	}
	e.frozen = nil
	e.frozenSeq = 0
	e.st.Store(st)
	s.hydrations.Add(1)
	s.accountResident(e, st)
	return st, nil
}

// readEvictEvery is the read path's eviction-probe period (a power of
// two so the rate limit is one atomic add and a mask).
const readEvictEvery = 64

// stForRead resolves a docEntry to its live Store for the read path:
// alloc-free while resident, transparent rehydration when evicted.
// Budgeted fleets also run the rate-limited over-budget probe here, so
// pure read traffic (which rehydrates cold documents and can push the
// fleet over budget without ever crossing a write batch boundary)
// still triggers eviction. No entry lock is held at this point, as
// maybeEvict requires.
func (s *Sharded) stForRead(e *docEntry) (*Store, error) {
	if st := e.st.Load(); st != nil {
		if s.cfg.MemoryBudget > 0 {
			s.touch(e)
			if s.readChecks.Add(1)&(readEvictEvery-1) == 0 {
				s.maybeEvict()
			}
		}
		return st, nil
	}
	e.mu.Lock()
	st, err := s.hydrateLocked(e)
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.maybeEvict()
	return st, nil
}

// maybeEvict trims the fleet back under MemoryBudget, coldest documents
// first. One evictor runs at a time; documents whose entry lock is held
// (a write batch or hydration in flight — by definition hot) are
// skipped. Callers must not hold any entry lock.
func (s *Sharded) maybeEvict() {
	if s.cfg.MemoryBudget <= 0 || s.residentBytes.Load() <= s.cfg.MemoryBudget {
		return
	}
	if !s.evictMu.TryLock() {
		return
	}
	defer s.evictMu.Unlock()
	type victim struct {
		e    *docEntry
		used int64
	}
	var victims []victim
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, e := range sh.docs {
			if e.st.Load() != nil {
				victims = append(victims, victim{e, e.lastUse.Load()})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].used < victims[j].used })
	for _, v := range victims {
		if s.residentBytes.Load() <= s.cfg.MemoryBudget || s.closed.Load() {
			return
		}
		s.evictEntry(v.e)
	}
}

// evictEntry freezes one document out of residency. Caller holds
// evictMu. Returns false when the entry was busy (skip it — it is hot)
// or the freeze failed (counted in EvictFailures; the document stays
// resident and serviceable).
func (s *Sharded) evictEntry(e *docEntry) bool {
	if !e.mu.TryLock() {
		return false
	}
	defer e.mu.Unlock()
	st := e.st.Load()
	if st == nil {
		return false
	}
	// Close first: it waits out in-flight background work (async
	// recompressions, snapshot publication), then fsyncs and closes a
	// durable WAL. Afterwards the Store serves exactly its final state
	// to any reader still holding the handle and rejects writes with
	// ErrClosed — so the frozen bytes encoded below can never miss a
	// racing direct-handle write.
	if err := st.Close(); err != nil {
		// The WAL close failed; dropping the Store could orphan acked
		// data. Keep it resident (reads fine, writes already broken) and
		// let the operator see the counter.
		s.evictFailures.Add(1)
		return false
	}
	if s.cfg.Durability == nil {
		enc, err := encodeGrammar(st.Snapshot())
		if err != nil {
			// Unreachable for a valid grammar; keep the document
			// resident rather than lose it.
			s.evictFailures.Add(1)
			return false
		}
		e.frozen = enc
		e.frozenSeq = st.LastSeq()
	}
	ds := st.Stats()
	s.retiredMu.Lock()
	addStats(&s.retired, ds)
	s.retiredMu.Unlock()
	e.st.Store(nil)
	s.residentBytes.Add(-e.footprint.Swap(0))
	s.evictions.Add(1)
	return true
}

// shardFor hashes a document ID to its shard (FNV-1a, inlined so the
// read path stays alloc-free).
func (s *Sharded) shardFor(id string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return s.shards[h%uint64(len(s.shards))]
}

// Open registers a new document under id, wrapping g in a Store with the
// Sharded store's Config (taking ownership of g), and returns the Store.
// Opening an existing ID is an error — use Get for lookups. On a durable
// fleet (Config.Durability) the document directory and its base snapshot
// are created before Open returns, so even a document that crashes
// before its first update recovers its seed grammar; directories from a
// previous process are reopened by OpenSharded, not Open.
func (s *Sharded) Open(id string, g *grammar.Grammar) (*Store, error) {
	sh := s.shardFor(id)
	sh.sendMu.RLock()
	closed := sh.closed
	sh.sendMu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	sh.mu.Lock()
	if _, ok := sh.docs[id]; ok {
		sh.mu.Unlock()
		return nil, fmt.Errorf("store: document %q already open", id)
	}
	var st *Store
	if s.cfg.Durability != nil {
		var err error
		if st, err = CreateDurable(id, g, s.cfg); err != nil {
			sh.mu.Unlock()
			return nil, err
		}
	} else {
		st = New(g, s.cfg)
	}
	e := &docEntry{id: id}
	e.st.Store(st)
	s.accountResident(e, st)
	sh.docs[id] = e
	sh.mu.Unlock()
	s.maybeEvict()
	return st, nil
}

// Get returns the Store serving id, for direct reads (Query, CountLabel,
// Snapshot, Stats, ...). The lookup is alloc-free while the document is
// resident; an evicted document is rehydrated first. The returned
// handle is the document's current incarnation — after an eviction it
// keeps serving its final state but rejects writes with ErrClosed, so
// long-lived writers should go through Apply/ApplyAll by ID instead of
// caching the handle.
func (s *Sharded) Get(id string) (*Store, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.docs[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	st, err := s.stForRead(e)
	if err != nil {
		return nil, false
	}
	return st, true
}

// get is Get with the error preserved for the read helpers.
func (s *Sharded) get(id string) (*Store, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.docs[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDoc, id)
	}
	return s.stForRead(e)
}

// Drop removes the document from the store and reports whether it was
// present. In-flight recompressions of the dropped Store complete (and
// are discarded or swapped) on their own; Wait on the returned Store if
// that matters.
func (s *Sharded) Drop(id string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	e, ok := sh.docs[id]
	delete(sh.docs, id)
	sh.mu.Unlock()
	if ok && e.st.Load() != nil {
		s.residentBytes.Add(-e.footprint.Swap(0))
	}
	return ok
}

// Apply performs one update operation on document id through the shard's
// worker.
func (s *Sharded) Apply(id string, op update.Op) error {
	return s.ApplyAll(id, []update.Op{op})
}

// ApplyAll performs a batch of operations on document id. Batches are
// serialized per shard (one worker each) and the call returns when the
// batch has been applied; batches for documents in different shards run
// in parallel. An evicted document is rehydrated by the worker before
// the batch applies — eviction is invisible to writers on this path.
func (s *Sharded) ApplyAll(id string, ops []update.Op) error {
	return s.ApplyAllSeq(id, ops, 0)
}

// ApplyAllSeq is ApplyAll with an exactly-once batch sequence number
// (see Store.ApplyAllSeq): duplicates of already-applied sequences ack
// idempotently, gaps fail with ErrSeqGap.
func (s *Sharded) ApplyAllSeq(id string, ops []update.Op, seq uint64) error {
	if len(ops) == 0 {
		return nil
	}
	sh := s.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.docs[id]
	sh.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDoc, id)
	}
	// The send may block behind the worker's current batch; only sendMu
	// is held then, so readers (and the docs map) stay available. A doc
	// dropped between the lookup and the send still receives the batch —
	// Drop removes it from the registry, it does not cancel its queue.
	sh.sendMu.RLock()
	if sh.closed {
		sh.sendMu.RUnlock()
		return fmt.Errorf("%w: %q", ErrClosed, id)
	}
	done := make(chan error, 1)
	sh.jobs <- shardJob{e: e, ops: ops, seq: seq, done: done}
	sh.sendMu.RUnlock()
	return <-done
}

// LastSeq returns document id's exactly-once watermark (see
// Store.LastSeq) — what a reconnecting client resumes its numbering
// from.
func (s *Sharded) LastSeq(id string) (uint64, error) {
	st, err := s.get(id)
	if err != nil {
		return 0, err
	}
	return st.LastSeq(), nil
}

// SyncWAL fsyncs the WAL tail of every resident durable document — the
// graceful-drain hook: called after the last in-flight batch has
// finished, it makes every acked write durable before the process
// exits, whatever the configured fsync policy. Returns the first sync
// error.
func (s *Sharded) SyncWAL() error {
	var err error
	for _, st := range s.residentStores() {
		if serr := st.SyncWAL(); err == nil {
			err = serr
		}
	}
	return err
}

// Query runs fn on document id's current published generation,
// lock-free (see Store.Query).
func (s *Sharded) Query(id string, fn func(*grammar.Grammar) error) error {
	st, err := s.get(id)
	if err != nil {
		return err
	}
	return st.Query(fn)
}

// CountLabel counts label occurrences in document id (served from the
// generation's cached usage vector).
func (s *Sharded) CountLabel(id, label string) (float64, error) {
	st, err := s.get(id)
	if err != nil {
		return 0, err
	}
	return st.CountLabel(label)
}

// PointQuery returns the label at preorder index pre of document id,
// via the document's indexed read path (see Store.PointQuery) — the
// read primitive the network front-end serves.
func (s *Sharded) PointQuery(id string, pre int64) (string, error) {
	st, err := s.get(id)
	if err != nil {
		return "", err
	}
	return st.PointQuery(pre)
}

// Snapshot returns an invalidation-safe immutable snapshot of document
// id — an atomic generation grab, not a copy.
func (s *Sharded) Snapshot(id string) (*grammar.Grammar, error) {
	st, err := s.get(id)
	if err != nil {
		return nil, err
	}
	return st.Snapshot(), nil
}

// Docs returns the IDs of every open document (resident or evicted),
// sorted.
func (s *Sharded) Docs() []string {
	var ids []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id := range sh.docs {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// NumDocs returns the number of open documents (resident or evicted).
func (s *Sharded) NumDocs() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.docs)
		sh.mu.RUnlock()
	}
	return n
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// residentStores snapshots the currently resident Stores.
func (s *Sharded) residentStores() []*Store {
	var stores []*Store
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, e := range sh.docs {
			if st := e.st.Load(); st != nil {
				stores = append(stores, st)
			}
		}
		sh.mu.RUnlock()
	}
	return stores
}

// Quiesce blocks until no resident document has an asynchronous
// recompression in flight. Safe to call concurrently with writers (runs
// they start are waited for too); call it after writers are done and
// before comparing snapshots byte-for-byte.
func (s *Sharded) Quiesce() {
	for _, st := range s.residentStores() {
		st.Wait()
	}
}

// Close stops the shard workers and closes every resident document
// Store: pending background work (asynchronous recompressions, snapshot
// publication) completes, and on a durable fleet each document's WAL
// tail is fsynced and closed — a clean Close loses nothing even under
// FsyncOff. Writes after Close fail with ErrClosed deterministically;
// reads keep working on the final state of resident documents (evicted
// documents no longer rehydrate). Close is idempotent and returns the
// first per-document close error.
func (s *Sharded) Close() error {
	s.closed.Store(true)
	for _, sh := range s.shards {
		sh.sendMu.Lock()
		if !sh.closed {
			sh.closed = true
			close(sh.jobs)
		}
		sh.sendMu.Unlock()
	}
	var err error
	for _, st := range s.residentStores() {
		if cerr := st.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ShardedStats aggregates the per-document Store counters across every
// open document — including, via an internal retired-counter
// accumulator, the lifetime counters of Store incarnations that have
// since been evicted (Size/PeakSize/ResidentBytes always reflect only
// the currently resident documents).
type ShardedStats struct {
	Shards int
	Docs   int

	Ops     int64
	Batches int64
	// DupBatches counts sequenced batches acked idempotently across the
	// fleet — retried batches whose original ack was lost.
	DupBatches int64

	Recompressions          int64
	AsyncRecompressions     int64
	DiscardedRecompressions int64
	ReplayedTailOps         int64
	CostRecompressions      int64
	DeferredRecompressions  int64 // policy firings deferred by the shared gate
	Refolds                 int64
	RefoldedNodes           int64
	RefoldRules             int64
	FoldFirstRuns           int64
	StallNanos              int64

	Size     int // Σ |G| over resident documents
	PeakSize int // Σ resident per-document peaks

	// Memory-tier gauges and counters (MemoryBudget fleets; an
	// unbudgeted fleet reports Resident == Docs and live byte totals).
	Resident      int   // documents currently live
	Evicted       int   // documents currently frozen out
	Evictions     int64 // lifetime eviction count
	Hydrations    int64 // lifetime rehydration count
	EvictFailures int64 // evictions abandoned (close/encode failure)
	ResidentBytes int64 // Σ footprint estimate of resident documents

	// Durability counters summed over the fleet (zero when in-memory).
	WALAppends           int64
	WALBytes             int64
	WALSyncs             int64
	FsyncNanos           int64
	Snapshots            int64
	SnapshotFailures     int64
	RecoveredOps         int64
	TruncatedTailRecords int64
	SnapshotsCorrupt     int64
	// BrokenDocs counts documents whose WAL write path has failed;
	// they serve reads but reject writes until reopened.
	BrokenDocs int
}

// addStats folds one Store's monotonic counters into a fleet total.
// Point-in-time gauges (Size, PeakSize, ResidentBytes, broken state)
// are deliberately excluded: they are summed over resident documents
// only, by the caller.
func addStats(out *ShardedStats, ds Stats) {
	out.Ops += ds.Ops
	out.Batches += ds.Batches
	out.DupBatches += ds.DupBatches
	out.Recompressions += ds.Recompressions
	out.AsyncRecompressions += ds.AsyncRecompressions
	out.DiscardedRecompressions += ds.DiscardedRecompressions
	out.ReplayedTailOps += ds.ReplayedTailOps
	out.CostRecompressions += ds.CostRecompressions
	out.DeferredRecompressions += ds.DeferredRecompressions
	out.Refolds += ds.Refolds
	out.RefoldedNodes += ds.RefoldedNodes
	out.RefoldRules += ds.RefoldRules
	out.FoldFirstRuns += ds.FoldFirstRuns
	out.StallNanos += ds.StallNanos
	out.WALAppends += ds.WALAppends
	out.WALBytes += ds.WALBytes
	out.WALSyncs += ds.WALSyncs
	out.FsyncNanos += ds.FsyncNanos
	out.Snapshots += ds.Snapshots
	out.SnapshotFailures += ds.SnapshotFailures
	out.RecoveredOps += ds.RecoveredOps
	out.TruncatedTailRecords += ds.TruncatedTailRecords
	out.SnapshotsCorrupt += ds.SnapshotsCorrupt
}

// Stats sums the counters of every open document, starting from the
// retired accumulator so fleet totals are monotonic across evictions.
// It holds the evictor's lock for the duration so an eviction can never
// be observed half-accounted (folded into retired but still resident);
// an over-budget check racing a Stats call is simply deferred to the
// next batch boundary.
func (s *Sharded) Stats() ShardedStats {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	s.retiredMu.Lock()
	out := s.retired
	s.retiredMu.Unlock()
	out.Shards = len(s.shards)
	out.Evictions = s.evictions.Load()
	out.Hydrations = s.hydrations.Load()
	out.EvictFailures = s.evictFailures.Load()
	for _, sh := range s.shards {
		sh.mu.RLock()
		entries := make([]*docEntry, 0, len(sh.docs))
		for _, e := range sh.docs {
			entries = append(entries, e)
		}
		sh.mu.RUnlock()
		for _, e := range entries {
			out.Docs++
			st := e.st.Load()
			if st == nil {
				out.Evicted++
				continue
			}
			out.Resident++
			ds := st.Stats()
			addStats(&out, ds)
			out.Size += ds.Size
			out.PeakSize += ds.PeakSize
			out.ResidentBytes += ds.ResidentBytes
			if ds.WALBroken {
				out.BrokenDocs++
			}
		}
	}
	return out
}
