// Sharded is the multi-document serving layer: document IDs are hashed
// across N shards, each shard owning its documents' Stores plus one
// worker goroutine that applies that shard's update batches. Updates to
// documents in different shards therefore never contend — neither on a
// lock nor on a queue — while reads go straight to the per-document
// Store under its read lock and never touch a worker at all.
//
// The shard is deliberately the unit of write parallelism AND of write
// backpressure: one worker per shard bounds the number of grammars
// mutating concurrently to the shard count, whatever the document count,
// so a fleet of thousands of documents cannot stampede the CPU. Size
// the shard count to the write parallelism wanted (e.g. GOMAXPROCS);
// same-shard documents serialize behind each other by design.
//
// Combined with per-Store asynchronous recompression (Config.Async),
// the write path of a shard is never stalled by GrammarRePair either:
// the worker keeps draining batches while compressions run beside it
// and swap in under the epoch protocol.

package store

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"repro/internal/grammar"
	"repro/internal/update"
	"repro/internal/wal"
)

// Errors returned by the sharded layer.
var (
	// ErrUnknownDoc reports an operation addressed to a document ID that
	// was never opened (or has been dropped).
	ErrUnknownDoc = errors.New("store: unknown document")
	// ErrClosed reports a mutation against a closed Store or Sharded
	// store: Apply/ApplyAll/Open after Close fail with it
	// deterministically (reads keep working on the final state).
	ErrClosed = errors.New("store: closed")
)

// Sharded serves many documents concurrently. See the type comment at
// the top of this file for the architecture; create one with NewSharded.
type Sharded struct {
	cfg    Config
	shards []*shard
}

// shard is one hash bucket: its documents, and the worker serializing
// their updates. mu guards only the docs map, so reads never queue
// behind a writer; the jobs channel has its own send lock — senders
// hold sendMu.RLock across the (possibly blocking) send and Close takes
// sendMu.Lock before closing the channel, so a send can never race the
// close and a blocked sender never delays a reader.
type shard struct {
	mu   sync.RWMutex
	docs map[string]*Store

	sendMu sync.RWMutex
	jobs   chan shardJob
	closed bool // guarded by sendMu
}

// shardJob is one update batch handed to a shard worker.
type shardJob struct {
	st   *Store
	ops  []update.Op
	done chan<- error
}

// NewSharded returns a multi-document store with the given shard count
// (n <= 0 selects GOMAXPROCS) whose documents all use cfg. One worker
// goroutine per shard is started; call Close to stop them.
//
// With Config.MaxConcurrentRecompressions > 0 (and no explicit Gate)
// the fleet shares one RecompressGate of that width: however many
// documents degrade at once, at most that many background GrammarRePair
// runs execute concurrently — the rest defer and fire at a later batch
// boundary (summed in ShardedStats.DeferredRecompressions).
func NewSharded(n int, cfg ...Config) *Sharded {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	var c Config
	if len(cfg) > 0 {
		c = cfg[0]
	}
	if c.Gate == nil && c.MaxConcurrentRecompressions > 0 {
		c.Gate = NewRecompressGate(c.MaxConcurrentRecompressions)
	}
	s := &Sharded{cfg: c, shards: make([]*shard, n)}
	for i := range s.shards {
		sh := &shard{docs: make(map[string]*Store), jobs: make(chan shardJob)}
		s.shards[i] = sh
		go sh.work()
	}
	return s
}

// OpenSharded is the durable fleet constructor: it creates (or reuses)
// cfg.Durability.Dir and recovers every document directory found under
// it — newest valid snapshot, WAL tail replay, torn tails truncated —
// before returning. A fleet killed at any moment reopens here to
// exactly the acked prefix of every document's update stream. New
// documents are then added with Open as usual.
func OpenSharded(n int, cfg Config) (*Sharded, error) {
	if cfg.Durability == nil {
		return nil, fmt.Errorf("store: OpenSharded without Config.Durability")
	}
	if err := os.MkdirAll(cfg.Durability.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: durability root: %w", err)
	}
	ents, err := os.ReadDir(cfg.Durability.Dir)
	if err != nil {
		return nil, fmt.Errorf("store: durability root: %w", err)
	}
	s := NewSharded(n, cfg)
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		id, ok := wal.ParseDocDir(e.Name())
		if !ok {
			continue
		}
		st, err := OpenDurable(id, s.cfg)
		if err != nil {
			s.Close()
			return nil, err
		}
		sh := s.shardFor(id)
		sh.mu.Lock()
		sh.docs[id] = st
		sh.mu.Unlock()
	}
	return s, nil
}

// work drains one shard's update batches until Close.
func (sh *shard) work() {
	for j := range sh.jobs {
		j.done <- j.st.ApplyAll(j.ops)
	}
}

// shardFor hashes a document ID to its shard (FNV-1a, inlined so the
// read path stays alloc-free).
func (s *Sharded) shardFor(id string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return s.shards[h%uint64(len(s.shards))]
}

// Open registers a new document under id, wrapping g in a Store with the
// Sharded store's Config (taking ownership of g), and returns the Store.
// Opening an existing ID is an error — use Get for lookups. On a durable
// fleet (Config.Durability) the document directory and its base snapshot
// are created before Open returns, so even a document that crashes
// before its first update recovers its seed grammar; directories from a
// previous process are reopened by OpenSharded, not Open.
func (s *Sharded) Open(id string, g *grammar.Grammar) (*Store, error) {
	sh := s.shardFor(id)
	sh.sendMu.RLock()
	closed := sh.closed
	sh.sendMu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.docs[id]; ok {
		return nil, fmt.Errorf("store: document %q already open", id)
	}
	var st *Store
	if s.cfg.Durability != nil {
		var err error
		if st, err = CreateDurable(id, g, s.cfg); err != nil {
			return nil, err
		}
	} else {
		st = New(g, s.cfg)
	}
	sh.docs[id] = st
	return st, nil
}

// Get returns the Store serving id, for direct reads (Query, CountLabel,
// Snapshot, Stats, ...). The lookup is alloc-free.
func (s *Sharded) Get(id string) (*Store, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	st, ok := sh.docs[id]
	sh.mu.RUnlock()
	return st, ok
}

// Drop removes the document from the store and reports whether it was
// present. In-flight recompressions of the dropped Store complete (and
// are discarded or swapped) on their own; Wait on the returned Store if
// that matters.
func (s *Sharded) Drop(id string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.docs[id]
	delete(sh.docs, id)
	return ok
}

// Apply performs one update operation on document id through the shard's
// worker.
func (s *Sharded) Apply(id string, op update.Op) error {
	return s.ApplyAll(id, []update.Op{op})
}

// ApplyAll performs a batch of operations on document id. Batches are
// serialized per shard (one worker each) and the call returns when the
// batch has been applied; batches for documents in different shards run
// in parallel.
func (s *Sharded) ApplyAll(id string, ops []update.Op) error {
	if len(ops) == 0 {
		return nil
	}
	sh := s.shardFor(id)
	sh.mu.RLock()
	st, ok := sh.docs[id]
	sh.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDoc, id)
	}
	// The send may block behind the worker's current batch; only sendMu
	// is held then, so readers (and the docs map) stay available. A doc
	// dropped between the lookup and the send still receives the batch —
	// Drop removes it from the registry, it does not cancel its queue.
	sh.sendMu.RLock()
	if sh.closed {
		sh.sendMu.RUnlock()
		return fmt.Errorf("%w: %q", ErrClosed, id)
	}
	done := make(chan error, 1)
	sh.jobs <- shardJob{st: st, ops: ops, done: done}
	sh.sendMu.RUnlock()
	return <-done
}

// Query runs fn on document id's live grammar under its read lock.
func (s *Sharded) Query(id string, fn func(*grammar.Grammar) error) error {
	st, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDoc, id)
	}
	return st.Query(fn)
}

// CountLabel counts label occurrences in document id (served from the
// Store's cached usage vector).
func (s *Sharded) CountLabel(id, label string) (float64, error) {
	st, ok := s.Get(id)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownDoc, id)
	}
	return st.CountLabel(label)
}

// Snapshot returns an invalidation-safe deep copy of document id.
func (s *Sharded) Snapshot(id string) (*grammar.Grammar, error) {
	st, ok := s.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDoc, id)
	}
	return st.Snapshot(), nil
}

// Docs returns the IDs of every open document, sorted.
func (s *Sharded) Docs() []string {
	var ids []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id := range sh.docs {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// NumDocs returns the number of open documents.
func (s *Sharded) NumDocs() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.docs)
		sh.mu.RUnlock()
	}
	return n
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Quiesce blocks until no document has an asynchronous recompression in
// flight. Safe to call concurrently with writers (runs they start are
// waited for too); call it after writers are done and before comparing
// snapshots byte-for-byte.
func (s *Sharded) Quiesce() {
	for _, sh := range s.shards {
		sh.mu.RLock()
		stores := make([]*Store, 0, len(sh.docs))
		for _, st := range sh.docs {
			stores = append(stores, st)
		}
		sh.mu.RUnlock()
		for _, st := range stores {
			st.Wait()
		}
	}
}

// Close stops the shard workers and closes every document Store:
// pending background work (asynchronous recompressions, snapshot
// publication) completes, and on a durable fleet each document's WAL
// tail is fsynced and closed — a clean Close loses nothing even under
// FsyncOff. Writes after Close fail with ErrClosed deterministically;
// reads keep working on the final state. Close is idempotent and
// returns the first per-document close error.
func (s *Sharded) Close() error {
	for _, sh := range s.shards {
		sh.sendMu.Lock()
		if !sh.closed {
			sh.closed = true
			close(sh.jobs)
		}
		sh.sendMu.Unlock()
	}
	var err error
	for _, sh := range s.shards {
		sh.mu.RLock()
		stores := make([]*Store, 0, len(sh.docs))
		for _, st := range sh.docs {
			stores = append(stores, st)
		}
		sh.mu.RUnlock()
		for _, st := range stores {
			if cerr := st.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

// ShardedStats aggregates the per-document Store counters across every
// open document.
type ShardedStats struct {
	Shards int
	Docs   int

	Ops     int64
	Batches int64

	Recompressions          int64
	AsyncRecompressions     int64
	DiscardedRecompressions int64
	ReplayedTailOps         int64
	CostRecompressions      int64
	DeferredRecompressions  int64 // policy firings deferred by the shared gate
	Refolds                 int64
	RefoldedNodes           int64
	RefoldRules             int64
	StallNanos              int64

	Size     int // Σ |G| over all documents
	PeakSize int // Σ per-document peaks

	// Durability counters summed over the fleet (zero when in-memory).
	WALAppends           int64
	WALBytes             int64
	WALSyncs             int64
	FsyncNanos           int64
	Snapshots            int64
	SnapshotFailures     int64
	RecoveredOps         int64
	TruncatedTailRecords int64
	SnapshotsCorrupt     int64
	// BrokenDocs counts documents whose WAL write path has failed;
	// they serve reads but reject writes until reopened.
	BrokenDocs int
}

// Stats sums the counters of every open document.
func (s *Sharded) Stats() ShardedStats {
	out := ShardedStats{Shards: len(s.shards)}
	for _, sh := range s.shards {
		sh.mu.RLock()
		stores := make([]*Store, 0, len(sh.docs))
		for _, st := range sh.docs {
			stores = append(stores, st)
		}
		sh.mu.RUnlock()
		for _, st := range stores {
			ds := st.Stats()
			out.Docs++
			out.Ops += ds.Ops
			out.Batches += ds.Batches
			out.Recompressions += ds.Recompressions
			out.AsyncRecompressions += ds.AsyncRecompressions
			out.DiscardedRecompressions += ds.DiscardedRecompressions
			out.ReplayedTailOps += ds.ReplayedTailOps
			out.CostRecompressions += ds.CostRecompressions
			out.DeferredRecompressions += ds.DeferredRecompressions
			out.Refolds += ds.Refolds
			out.RefoldedNodes += ds.RefoldedNodes
			out.RefoldRules += ds.RefoldRules
			out.StallNanos += ds.StallNanos
			out.Size += ds.Size
			out.PeakSize += ds.PeakSize
			out.WALAppends += ds.WALAppends
			out.WALBytes += ds.WALBytes
			out.WALSyncs += ds.WALSyncs
			out.FsyncNanos += ds.FsyncNanos
			out.Snapshots += ds.Snapshots
			out.SnapshotFailures += ds.SnapshotFailures
			out.RecoveredOps += ds.RecoveredOps
			out.TruncatedTailRecords += ds.TruncatedTailRecords
			out.SnapshotsCorrupt += ds.SnapshotsCorrupt
			if ds.WALBroken {
				out.BrokenDocs++
			}
		}
	}
	return out
}
