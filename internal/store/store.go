// Package store is the long-lived dynamic-document engine of the
// reproduction: a Store wraps a grammar-compressed XML document and owns
// its maintenance across an unbounded stream of update operations — the
// production shape of the paper's §III/§V-C protocol that the examples
// and experiments previously hand-rolled.
//
// # Lifecycle
//
// A Store is created around an existing grammar (New takes ownership of
// it) and from then on every mutation goes through Apply/ApplyAll and
// every read through Query/Snapshot/the aggregate helpers. Three
// maintenance concerns are automated:
//
//   - Size-vector caching. Path isolation needs the size vectors
//     size(A,0..k) of every rule, but only the start rule's right-hand
//     side changes under updates (internal/isolate/isolate.go), so the
//     Store computes the full map once and afterwards refreshes just the
//     start rule's vector per operation — O(|RHS_S|) instead of the
//     O(|G|) ValSizes pass per op that update.Apply pays. Non-start
//     entries are invalidated only by recompression, which replaces the
//     grammar wholesale.
//
//   - Batched garbage collection. Deletes strand rules; stranded rules
//     are unreachable from the start symbol and therefore invisible to
//     isolation and queries, so ApplyAll runs one GarbageCollect per
//     batch instead of one per delete.
//
//   - Self-tuning recompression. Updates degrade the grammar; the Store
//     triggers GrammarRePair when |G| grows past Ratio × |G| at the last
//     compression. The effective ratio adapts to the workload: when a
//     recompression barely shrinks the grammar the trigger backs off
//     (up to MaxRatio) so incompressible churn is not recompressed in a
//     tight loop, and when recompression pays off the trigger resets to
//     the configured base. Set Ratio < 0 for manual-only Recompress.
//
// # Asynchronous recompression
//
// With Config.Async the O(|G|) GrammarRePair pass moves off the write
// lock entirely. When the policy fires, the Store clones the grammar
// under the lock (the only stall writers ever see, Stats.StallNanos),
// stamps the clone with the grammar's update epoch, and compresses the
// clone in a background goroutine, which also pre-computes the new
// grammar's size vectors. On completion the swap protocol runs under the
// write lock:
//
//   - epoch unchanged → the snapshot still derives the live document;
//     the compressed grammar and its pre-warmed size-vector cache are
//     swapped in (update.Cache.Install — no O(|G|) warm-up under the
//     lock).
//   - epoch advanced by at most MaxTail ops → the ops that raced the
//     compression (the tail, recorded while a run is in flight) are
//     replayed onto the compressed copy, then it is swapped in. A write
//     racing a recompression is therefore never lost.
//   - tail overflow, a replay error, or an intervening manual
//     Recompress → the run is discarded
//     (Stats.DiscardedRecompressions) and the policy simply fires again
//     later.
//
// # Concurrency: generational zero-copy reads
//
// A Store is safe for concurrent use. Mutations take the write lock;
// reads do not take it at all: every mutation critical section ends by
// publishing an immutable grammar generation through an atomic pointer,
// and Snapshot, Cursor, Query, Size, TreeSize, Elements, CountLabel and
// LabelHistogram serve from the current generation lock-free — a
// Snapshot is a pointer grab, not a copy, and it is invalidation-safe
// forever because a generation any reader has touched is never mutated
// again (the writer moves to a fresh clone; see generation.go for the
// free/shared/reclaimed protocol). A write-only document is never
// cloned at all: the writer reclaims each unread generation and keeps
// mutating it in place. Per-generation aggregate caches (usage vector,
// tree size, |G|) ride the generation, so hot query streams never
// invalidate each other. Stats still takes the read lock — it reports
// writer-side counters. For many documents, see Sharded in this
// package.
package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/grammar"
	"repro/internal/navigate"
	"repro/internal/update"
	"repro/internal/wal"
)

// Config tunes a Store. The zero value selects the defaults below.
type Config struct {
	// MaxRank is the paper's k_in for recompression runs (0 = default 4).
	MaxRank int
	// Ratio triggers auto-recompression when |G| exceeds
	// Ratio × |G_lastCompressed|. 0 selects DefaultRatio; a negative
	// value disables auto-recompression (Recompress stays available).
	Ratio float64
	// MaxRatio caps how far the self-tuning policy may back the trigger
	// off when recompressions stop paying (0 = DefaultMaxRatio).
	MaxRatio float64
	// MinSize suppresses auto-recompression below this grammar size, so
	// small documents are not recompressed on every few ops
	// (0 = DefaultMinSize).
	MinSize int
	// Async moves policy-triggered recompression off the write lock: the
	// grammar is cloned and compressed in a background goroutine and the
	// result is swapped in under the epoch protocol (see the package
	// comment). Manual Recompress stays synchronous either way.
	Async bool
	// MaxTail bounds how many update operations may race an in-flight
	// asynchronous recompression and still be replayed onto its result;
	// past the bound the run is discarded instead (0 = DefaultMaxTail,
	// negative = never replay).
	MaxTail int
	// CostStepsPerOp triggers recompression from observed isolation cost
	// rather than grammar growth: when the average naive descent work per
	// operation since the last recompression exceeds this many walk
	// steps, the grammar's unfolded shape has degraded enough to be worth
	// recompressing even though |G| is within Ratio. 0 selects
	// DefaultCostStepsPerOp; negative disables the cost trigger.
	// Inactive (like the whole policy) when Ratio < 0.
	CostStepsPerOp int
	// RefoldSpine triggers incremental re-folding at batch boundaries
	// once the isolation frontier indexes at least this many spine
	// entries: cold segments (untouched for RefoldColdOps operations)
	// are folded back into fresh rules, shrinking the explicit start RHS
	// without a recompression. 0 selects DefaultRefoldSpine; negative
	// disables re-folding. Inactive when Ratio < 0.
	RefoldSpine int
	// RefoldColdOps is how many operations a spine segment must go
	// untouched before it counts as cold (0 = DefaultRefoldColdOps).
	RefoldColdOps int
	// Gate, when non-nil, bounds how many background GrammarRePair runs
	// may execute concurrently across every Store sharing the gate — the
	// fleet-wide recompression scheduler. A policy firing while the gate
	// is saturated is deferred (Stats.DeferredRecompressions) and simply
	// fires again at a later batch boundary. Only asynchronous runs
	// consult the gate.
	Gate *RecompressGate
	// MaxConcurrentRecompressions, when > 0 and Gate is nil, makes
	// NewSharded create one shared gate of that width for the whole
	// fleet. Ignored by single-document Stores (set Gate directly there).
	MaxConcurrentRecompressions int
	// MemoryBudget, when > 0, bounds a Sharded fleet's resident
	// footprint: once the summed ResidentBytes estimate of every live
	// document exceeds the budget, the coldest documents (least recently
	// written or queried) are evicted — in-memory fleets freeze them to
	// their encoded bytes, durable fleets drop them entirely and
	// rehydrate through WAL recovery — and reopen transparently on the
	// next Apply/Get/Query. Ignored by single-document Stores.
	MemoryBudget int64
	// Durability, when non-nil, arms the write-ahead log: committed
	// batches hit disk before ApplyAll acks and snapshots roll in the
	// background (see the Durability type). Durable Stores are built
	// with CreateDurable/OpenDurable (or the Sharded layer's
	// OpenSharded); plain New ignores this field.
	Durability *Durability
}

// RecompressGate is a semaphore shared between Stores that bounds
// fleet-wide concurrent background recompressions; see Config.Gate.
type RecompressGate struct {
	sem chan struct{}
}

// NewRecompressGate returns a gate admitting n concurrent background
// recompressions (n < 1 is clamped to 1).
func NewRecompressGate(n int) *RecompressGate {
	if n < 1 {
		n = 1
	}
	return &RecompressGate{sem: make(chan struct{}, n)}
}

func (g *RecompressGate) tryAcquire() bool {
	select {
	case g.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (g *RecompressGate) release() { <-g.sem }

// Policy defaults; see Config.
const (
	DefaultRatio    = 1.5
	DefaultMaxRatio = 4.0
	DefaultMinSize  = 64
	DefaultMaxTail  = 128
	// DefaultCostStepsPerOp: a healthy indexed descent does a few dozen
	// naive steps; thousands per op mean the walk is grinding through
	// degraded unfold material the index cannot cover.
	DefaultCostStepsPerOp = 4096
	// DefaultRefoldSpine/DefaultRefoldColdOps: re-fold once the index
	// holds a few thousand entries, folding segments no op has touched
	// for a few hundred operations.
	DefaultRefoldSpine   = 4096
	DefaultRefoldColdOps = 256
	// refoldMaxChunks bounds one batch boundary's folding work.
	refoldMaxChunks = 8
	// costTriggerMinOps: the cost trigger needs a sample this large
	// before the steps/op average is trustworthy.
	costTriggerMinOps = 32
)

// payoffThreshold is the minimum shrink factor (size before / size after)
// a recompression must achieve for the policy to keep its current
// trigger; below it the trigger backs off multiplicatively.
const payoffThreshold = 1.15

// Stats is a point-in-time snapshot of a Store's counters.
type Stats struct {
	Ops     int64 // operations applied
	Renames int64
	Inserts int64
	Deletes int64
	Batches int64 // Apply/ApplyAll calls
	// DupBatches counts sequenced batches acked idempotently because
	// their sequence was at or below the watermark — each one is a
	// client retry whose original ack was lost (the exactly-once path
	// doing its job). LastSeq is the current watermark.
	DupBatches int64
	LastSeq    uint64

	Recompressions          int64 // GrammarRePair runs swapped in (auto + manual)
	AsyncRecompressions     int64 // of those, runs compressed off the write lock
	DiscardedRecompressions int64 // async runs thrown away (tail overflow / raced)
	ReplayedTailOps         int64 // ops replayed onto async results before swap
	CostRecompressions      int64 // runs fired by the isolation-cost trigger
	DeferredRecompressions  int64 // async runs deferred by a saturated Gate
	// StallNanos is the cumulative write-lock time spent on
	// recompression work: the whole GrammarRePair pass for synchronous
	// runs, only the snapshot clone and the swap for asynchronous ones —
	// the number the async mode exists to shrink.
	StallNanos int64
	// RecompressionInflight reports an asynchronous run between snapshot
	// and swap at the time of the Stats call.
	RecompressionInflight bool

	SizeCacheHits    int64 // ops served from the warm size-vector cache
	SizeCacheMisses  int64 // full ValSizes recomputations
	UsageCacheHits   int64 // label queries served from the warm usage cache
	UsageCacheMisses int64 // usage-vector recomputations
	GCRuns           int64 // garbage-collection passes
	RulesCollected   int64 // rules removed by those passes

	// Isolation-frontier counters (internal/isolate's spine index).
	// IsolationSteps is the naive descent work the cost trigger watches;
	// IsolationJumps/IsolationSkipped are the seeks that replaced walks
	// and the entries they skipped; SpineNodes/Spines gauge the live
	// index; the Refold counters record incremental re-folding activity.
	IsolationSteps   int64
	IsolationJumps   int64
	IsolationSkipped int64
	SpineNodes       int
	Spines           int
	Refolds          int64 // batch boundaries that folded ≥ 1 segment
	RefoldedNodes    int64 // spine entries folded back into rules
	RefoldRules      int64 // fresh rules those folds created
	FoldFirstRuns    int64 // recompressions whose input a pre-fold shrank

	Size               int     // current |G|
	PeakSize           int     // max |G| observed at any batch boundary
	LastCompressedSize int     // |G| right after the last recompression
	EffectiveRatio     float64 // current self-tuned trigger ratio
	// ResidentBytes is the memory-tier footprint estimate of the live
	// document (see Store.ResidentBytes).
	ResidentBytes int64

	// Elements is the document's element count. When the derived tree is
	// too large for int64 (exponentially compressing grammars) Saturated
	// is true and Elements is 0 — never a bogus huge number.
	Elements  int64
	Saturated bool

	// Durability counters; all zero for in-memory Stores.
	Durable    bool
	WALAppends int64 // acked batches appended to the log
	WALBytes   int64 // their framed on-disk size
	WALSyncs   int64 // fsyncs on the append + snapshot paths
	FsyncNanos int64 // wall time inside those fsyncs
	Snapshots  int64 // snapshots published over this Store's lifetime
	// WALBroken reports a write-path durability failure: applied state
	// and disk have diverged and every later write fails fast until
	// the document is reopened through recovery.
	WALBroken        bool
	SnapshotFailures int64
	// Recovery results, set once at OpenDurable time.
	RecoveredOps         int64 // WAL tail ops replayed at open
	TruncatedTailRecords int64 // unacked torn records dropped at open
	SnapshotsCorrupt     int64 // corrupt snapshots skipped at open
}

// Store is a grammar-compressed document under a stream of updates. See
// the package comment for the lifecycle.
type Store struct {
	mu    sync.RWMutex
	g     *grammar.Grammar
	cache update.Cache

	// pub is the read half of the Store: the current published
	// generation (immutable grammar + generation-owned aggregate
	// caches), replaced at the end of every mutation critical section
	// and acquired by readers without the lock. See generation.go.
	pub atomic.Pointer[generation]

	// usageHits/usageMisses count label-query cache traffic across all
	// generations; the cached vectors themselves live on the generation.
	usageHits, usageMisses atomic.Int64

	cfg      Config
	effRatio float64 // current trigger; self-tunes within [base, MaxRatio]

	lastCompressed int
	peakSize       int
	// sizeRest is |G| minus the start rule's RHS edges. Between the
	// events that mint or delete rules (GC, re-folding, recompression —
	// each refreshes it) updates mutate only the start rule, so the
	// batch policy reads |G| as sizeRest plus a walk of the start RHS
	// alone instead of a full O(|G|) pass per batch.
	sizeRest  int
	pendingGC bool

	// Asynchronous recompression state (all guarded by mu). gen counts
	// grammar swaps (sync and async): a completion whose recorded gen no
	// longer matches arrived after a manual Recompress replaced the
	// grammar and must be discarded regardless of epochs. While a run is
	// in flight, every applied op is also appended to tail (up to
	// maxTail) so the completion can replay the race instead of wasting
	// the compression.
	inflight     bool
	gen          uint64
	tail         []update.Op
	tailOverflow bool
	// activeRuns counts background goroutines between launch and the end
	// of their completion; runsDone broadcasts every decrement. A plain
	// WaitGroup would be misuse here: Wait may run concurrently with an
	// Add-from-zero triggered by a still-active writer.
	activeRuns int
	runsDone   *sync.Cond

	// compress is the GrammarRePair entry point; tests inject a slow or
	// instrumented compressor to pin the swap protocol deterministically.
	compress func(*grammar.Grammar, core.Options) (*grammar.Grammar, *core.Stats)

	// Cost-trigger baseline: the frontier counters at the last
	// recompression, so the trigger watches steps/op since then.
	costBaseSteps int64
	costBaseOps   int64

	// Durability state (all guarded by mu; nil wl = in-memory Store).
	// walPos counts ops durably appended; it tracks the grammar's
	// update epoch through epochBase (walPos == epoch + epochBase while
	// the log is healthy — snapshot-decoded grammars restart their
	// epoch at zero, the base reconciles them). walBroken is the sticky
	// first WAL failure: applied memory and disk have diverged, so
	// every later write fails fast until reopen-through-recovery.
	closed           bool
	wl               *wal.Log
	walPos           int64
	epochBase        int64
	walBroken        error
	lastSnapPos      int64 // walPos covered by the newest published snapshot
	snapEvery        int64
	snapInflight     bool
	snapshotFailures int64
	recovered        wal.RecoveryStats

	// Exactly-once retry state (guarded by mu): lastSeq is the highest
	// client batch sequence applied (persisted with each WAL record and
	// snapshot, restored at OpenDurable); dupBatches counts sequenced
	// batches acked idempotently without re-applying.
	lastSeq    uint64
	dupBatches int64

	ops, renames, inserts, deletes int64
	batches                        int64
	recompressions                 int64
	asyncRecompressions            int64
	discardedRecompressions        int64
	replayedTailOps                int64
	costRecompressions             int64
	deferredRecompressions         int64
	refolds, refoldedNodes         int64
	refoldRules                    int64
	foldFirstRuns                  int64
	stallNanos                     int64
	gcRuns, rulesCollected         int64
}

// maxTail resolves the configured replay bound.
func (s *Store) maxTail() int {
	switch {
	case s.cfg.MaxTail < 0:
		return 0
	case s.cfg.MaxTail == 0:
		return DefaultMaxTail
	}
	return s.cfg.MaxTail
}

// New wraps a grammar in a Store, taking ownership: the caller must not
// mutate g afterwards (reads through Query/Snapshot instead).
func New(g *grammar.Grammar, cfg ...Config) *Store {
	var c Config
	if len(cfg) > 0 {
		c = cfg[0]
	}
	if c.Ratio == 0 {
		c.Ratio = DefaultRatio
	}
	if c.MaxRatio == 0 {
		c.MaxRatio = DefaultMaxRatio
	}
	if c.MaxRatio < c.Ratio {
		c.MaxRatio = c.Ratio
	}
	if c.MinSize == 0 {
		c.MinSize = DefaultMinSize
	}
	size := g.Size()
	s := &Store{
		g:              g,
		cfg:            c,
		effRatio:       c.Ratio,
		lastCompressed: size,
		peakSize:       size,
		compress:       core.Compress,
	}
	s.runsDone = sync.NewCond(&s.mu)
	s.sizeRest = size - s.startEdgesLocked()
	// Warm the size-vector cache while no reader can hold the lock yet,
	// so TreeSize/Elements/Stats are O(1) from the first call. On error
	// (invalid grammar) the cache stays cold and the first Apply
	// surfaces the problem.
	s.cache.Sizes(g)
	// Publish generation zero so readers never observe a nil pointer.
	// New's ownership contract becomes load-bearing here: the caller's g
	// is frozen from this point on.
	s.publishLocked()
	return s
}

// Apply performs one update operation.
func (s *Store) Apply(op update.Op) error {
	return s.ApplyAll([]update.Op{op})
}

// ApplyAll performs a batch of operations: one shared size-vector cache
// across the batch, one garbage collection at the end, one
// recompression-policy check at the batch boundary. On a durable Store
// the committed prefix is appended to the write-ahead log — and, per
// the fsync policy, on disk — before the call returns: a batch that
// acks survives a crash. A WAL failure outranks an in-batch apply
// error in the return value (whatever applied in memory, the batch is
// NOT durable) and breaks the write path until the document is
// reopened through recovery.
func (s *Store) ApplyAll(ops []update.Op) error {
	return s.ApplyAllSeq(ops, 0)
}

// ApplyAllSeq is ApplyAll with an exactly-once batch sequence number
// (0 = unsequenced, plain ApplyAll semantics). Sequences make network
// retry safe: a client that lost its connection mid-ack re-sends the
// batch under the same sequence, and the store — which tracks the last
// applied sequence, persisted with the WAL batch record — acks the
// duplicate idempotently without re-applying it. A sequence more than
// one past the watermark is a gap (a lost batch between client and
// store) and is rejected without applying anything. The sequence is
// consumed only when at least one op commits, so a batch rejected
// whole (validation error on op 0) leaves the watermark unchanged and
// exactly matches what the WAL recorded.
func (s *Store) ApplyAllSeq(ops []update.Op, seq uint64) error {
	if len(ops) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.walBroken != nil {
		// Fail fast BEFORE applying: memory already diverged from disk
		// once; applying more ops would widen the divergence.
		return fmt.Errorf("store: wal broken (reopen to recover): %w", s.walBroken)
	}
	if seq > 0 {
		if seq > wal.MaxBatchSeq {
			return fmt.Errorf("store: batch sequence %d out of range", seq)
		}
		if seq <= s.lastSeq {
			// Already applied (and, on a durable Store, logged): a retry
			// of a batch whose ack was lost. Ack again, apply nothing.
			s.dupBatches++
			return nil
		}
		if seq != s.lastSeq+1 {
			return fmt.Errorf("%w: batch sequence %d, store is at %d", ErrSeqGap, seq, s.lastSeq)
		}
	}
	s.batches++
	var applyErr error
	committed := len(ops)
	for i := range ops {
		if err := s.applyLocked(ops[i]); err != nil {
			// Ops before i are committed (and batch maintenance ran);
			// the index makes the partial state diagnosable.
			applyErr = fmt.Errorf("store: op %d of %d: %w", i, len(ops), err)
			committed = i
			break
		}
	}
	walErr := s.appendWALLocked(ops[:committed], seq)
	if seq > 0 && committed > 0 && walErr == nil {
		s.lastSeq = seq
	}
	s.finishBatchLocked()
	// Publish before the snapshot check so the snapshot path can pin the
	// just-published generation instead of cloning the grammar. The
	// publish happens even on a WAL failure: whatever applied in memory
	// is the state readers must see.
	s.publishLocked()
	if walErr != nil {
		return walErr
	}
	s.maybeSnapshotLocked()
	return applyErr
}

// LastSeq returns the exactly-once watermark: the highest batch
// sequence number applied (0 if none ever carried one). A reconnecting
// client resumes its per-document numbering from here.
func (s *Store) LastSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastSeq
}

func (s *Store) applyLocked(op update.Op) error {
	s.ensurePrivateLocked()
	stranded, err := update.ApplyCached(s.g, op, &s.cache)
	if err != nil {
		return err
	}
	if s.inflight {
		// A recompression is racing this write. Record the op so the
		// completion can replay it onto the compressed result; past the
		// bound, stop recording and mark the run for discard.
		if !s.tailOverflow && len(s.tail) < s.maxTail() {
			s.tail = append(s.tail, op)
		} else {
			s.tailOverflow = true
		}
	}
	s.pendingGC = s.pendingGC || stranded
	s.ops++
	switch op.Kind {
	case update.Rename:
		s.renames++
	case update.Insert:
		s.inserts++
	case update.Delete:
		s.deletes++
	}
	return nil
}

// finishBatchLocked runs the deferred garbage collection and the
// recompression/re-fold policy at a batch boundary. (Usage staleness
// needs no handling here: usage vectors are cached per generation, and
// the batch publishes a fresh generation right after this returns.)
func (s *Store) finishBatchLocked() {
	size := s.gcLocked()
	if size < 0 {
		size = s.sizeRest + s.startEdgesLocked()
	}
	if size > s.peakSize {
		s.peakSize = size
	}
	if s.cfg.Ratio < 0 {
		return
	}
	fire := size >= s.cfg.MinSize && float64(size) > s.effRatio*float64(s.lastCompressed)
	costFired := false
	if !fire && s.costTriggerLocked() {
		// The grammar is within the size budget but its unfolded shape
		// makes isolation grind: recompress anyway.
		fire = true
		costFired = true
	}
	if fire {
		started := true
		if s.cfg.Async {
			// A firing can be absorbed (run already inflight, or the
			// fleet gate is saturated); only a launched run counts as a
			// cost-triggered recompression, or the counter would inflate
			// by one per batch boundary until the inflight run lands.
			started = s.startAsyncRecompressLocked(costFired)
		} else {
			s.recompressLocked(costFired)
		}
		if started && costFired {
			s.costRecompressions++
		}
		return
	}
	s.refoldLocked()
}

// costTriggerLocked reports whether observed isolation cost — naive
// descent steps per operation since the last recompression — exceeds
// the configured budget.
func (s *Store) costTriggerLocked() bool {
	if s.cfg.CostStepsPerOp < 0 {
		return false
	}
	budget := int64(s.cfg.CostStepsPerOp)
	if budget == 0 {
		budget = DefaultCostStepsPerOp
	}
	opsSince := s.ops - s.costBaseOps
	if opsSince < costTriggerMinOps {
		return false
	}
	stepsSince := s.cache.FrontierStats().Steps - s.costBaseSteps
	return stepsSince/opsSince > budget
}

// resetCostBaselineLocked re-anchors the cost trigger after a
// recompression (the unfolded shape it measured is gone).
func (s *Store) resetCostBaselineLocked() {
	s.costBaseSteps = s.cache.FrontierStats().Steps
	s.costBaseOps = s.ops
}

// refoldLocked runs one bounded incremental re-folding pass when the
// isolation frontier has grown past the configured spine budget: cold
// indexed segments fold back into fresh rules, shrinking the explicit
// start RHS (and every future clone and recompression input) without
// a GrammarRePair run. Document content is untouched, so no epoch bump
// — an in-flight asynchronous recompression swaps in regardless, which
// simply discards the fold's rules along with the rest of the degraded
// grammar.
func (s *Store) refoldLocked() {
	if s.cfg.RefoldSpine < 0 {
		return
	}
	minSpine := s.cfg.RefoldSpine
	if minSpine == 0 {
		minSpine = DefaultRefoldSpine
	}
	if s.cache.FrontierStats().Entries < minSpine {
		return
	}
	coldOps := int64(s.cfg.RefoldColdOps)
	if coldOps == 0 {
		coldOps = DefaultRefoldColdOps
	}
	// Folding mints fresh rules — a mutation. Normally applyLocked has
	// already privatized the grammar this critical section; if not (and
	// a reader forces a clone here) the clone retired the memo and
	// Refold below is a harmless no-op.
	s.ensurePrivateLocked()
	folds, entries := s.cache.Refold(s.g, coldOps, refoldMaxChunks)
	if folds > 0 {
		s.refolds++
		s.refoldRules += int64(folds)
		s.refoldedNodes += int64(entries)
		// Folding minted rules, so the incremental |G| split moved.
		s.sizeRest = s.g.Size() - s.startEdgesLocked()
	}
}

// foldFirstLocked re-folds every cold spine run back into fresh rules
// right before a recompression consumes the grammar: GrammarRePair's
// pass is O(input size), and the unfolded chains the frontier indexes
// are exactly the material folding removes — so folding first shrinks
// the compressor's input (and an asynchronous run's snapshot clone)
// without changing the document. Age and chunk budgets are waived
// (coldOps 0, unbounded chunks): everything foldable folds, since the
// recompression invalidates the index anyway. A no-op when re-folding
// is disabled or the frontier is empty/naive.
//
// Only COST-triggered recompressions fold first. The spine index is a
// cache whose contents depend on reader activity (a reader pinning a
// generation forces the writer to clone and retire the memo), so a
// fold injects that history into the compressor's input. The cost
// trigger is already reader-sensitive by nature — it measures observed
// descent work — but the ratio trigger and manual Recompress are pure
// functions of the op stream, and must stay byte-deterministic no
// matter who read what (pinned by TestShardedDifferentialConcurrency's
// concurrent-vs-sequential byte equality).
func (s *Store) foldFirstLocked() {
	if s.cfg.RefoldSpine < 0 {
		return
	}
	// Folding mints rules — a mutation; privatize first. If a reader
	// forces a clone here the cache hand-off retires the memo and the
	// Refold below is a harmless no-op.
	s.ensurePrivateLocked()
	folds, entries := s.cache.Refold(s.g, 0, 1<<30)
	if folds > 0 {
		s.foldFirstRuns++
		s.refolds++
		s.refoldRules += int64(folds)
		s.refoldedNodes += int64(entries)
		s.sizeRest = s.g.Size() - s.startEdgesLocked()
	}
}

// startAsyncRecompressLocked launches one background GrammarRePair run:
// clone the grammar under the lock (the only writer-visible stall), then
// compress the clone and pre-compute its size vectors off the lock. At
// most one run is in flight per Store; while the policy keeps firing the
// grammar just keeps growing until the swap lands.
func (s *Store) startAsyncRecompressLocked(foldFirst bool) bool {
	if s.inflight {
		return false
	}
	if s.cfg.Gate != nil && !s.cfg.Gate.tryAcquire() {
		// The fleet's recompression budget is spent; defer — the policy
		// fires again at a later batch boundary.
		s.deferredRecompressions++
		return false
	}
	start := time.Now()
	// Fold-first before the snapshot clone: the fold shrinks both the
	// clone (the writer-visible stall) and the background compressor's
	// input.
	if foldFirst {
		s.foldFirstLocked()
	}
	snap := s.g.Clone()
	s.stallNanos += time.Since(start).Nanoseconds()
	s.inflight = true
	s.tail = s.tail[:0]
	s.tailOverflow = false
	gen := s.gen
	epoch := snap.Epoch()
	s.activeRuns++
	go func() {
		if s.cfg.Gate != nil {
			defer s.cfg.Gate.release()
		}
		g2, st := s.compress(snap, core.Options{MaxRank: s.cfg.MaxRank})
		sizes, szErr := g2.ValSizes()
		s.completeAsync(gen, epoch, g2, st, sizes, szErr)
	}()
	return true
}

// completeAsync is the swap protocol: called from the background
// goroutine with the compressed grammar, its pre-warmed size vectors,
// and the gen/epoch stamps recorded at snapshot time.
func (s *Store) completeAsync(gen, epoch uint64, g2 *grammar.Grammar, st *core.Stats, sizes *grammar.SizeTable, szErr error) {
	s.mu.Lock()
	// Writers are only stalled while the lock is actually held — waiting
	// for it above is the completion goroutine's problem, not theirs —
	// so the stall clock starts here.
	start := time.Now()
	defer func() {
		s.stallNanos += time.Since(start).Nanoseconds()
		s.activeRuns--
		s.runsDone.Broadcast()
		s.mu.Unlock()
	}()
	s.inflight = false
	tail := s.tail
	s.tail = nil
	discard := func() {
		s.discardedRecompressions++
	}
	if gen != s.gen || szErr != nil || s.tailOverflow {
		// The grammar was replaced under the run (manual Recompress), the
		// result is unusable, or too many writes raced it.
		discard()
		return
	}
	stranded := false
	switch {
	case s.g.Epoch() == epoch:
		// No write raced the run; the snapshot still derives the live
		// document. Hand the pre-warmed vectors to the cache — no O(|G|)
		// pass under the lock.
		s.cache.Install(sizes)
	case len(tail) > 0 && s.g.Epoch() == epoch+uint64(len(tail)):
		// Writes raced the run but every one of them is in the tail:
		// replay them onto the compressed copy. g2 derives exactly the
		// snapshot document, so the ops' preorder positions are valid in
		// order, and each replayed op bumps g2's epoch — after the loop
		// the epochs line up again and no update is lost.
		s.cache.Install(sizes)
		for _, op := range tail {
			str, err := update.ApplyCached(g2, op, &s.cache)
			if err != nil {
				// Should be impossible (same document); put the cache back
				// in service of the live grammar and drop the run.
				s.cache.Invalidate()
				s.cache.Sizes(s.g)
				discard()
				return
			}
			stranded = stranded || str
		}
		s.replayedTailOps += int64(len(tail))
	default:
		// Epoch moved in a way the tail does not explain (it was trimmed,
		// or a non-update mutation happened): not safe to swap.
		discard()
		return
	}
	s.g = g2
	s.gen++
	s.pendingGC = stranded
	// Install retired the spine index with the pre-swap grammar (and a
	// tail replay only re-registers runs it happened to walk); the
	// generation published below seeds a compact view from the
	// compressed start-RHS chain lazily, on the first read that wants
	// indexed descent (generation.spineView), so the swap pays nothing.
	// The swap is a mutation critical section like any other: readers
	// must move to the compressed grammar, so publish it. Generations
	// pinned on the pre-swap grammar keep deriving the old state —
	// that grammar is frozen and untouched forever.
	s.publishLocked()
	s.resetCostBaselineLocked()
	s.recompressions++
	s.asyncRecompressions++
	// The policy baseline is what actually went live — including any
	// growth the tail replay just added — or sustained racing writes
	// would make every subsequent trigger fire earlier than Ratio says.
	s.lastCompressed = g2.Size()
	s.sizeRest = s.lastCompressed - s.startEdgesLocked()
	if st.MaxIntermediate > s.peakSize {
		s.peakSize = st.MaxIntermediate
	}
	s.tunePolicy(st.InputSize, st.FinalSize)
}

// tunePolicy adapts the trigger ratio to a recompression's payoff: a run
// that barely shrank the grammar backs the trigger off (the churn is
// incompressible right now), a paying run resets it to the base.
func (s *Store) tunePolicy(before, after int) {
	if after > 0 && float64(before)/float64(after) < payoffThreshold {
		s.effRatio *= 1.5
		if s.effRatio > s.cfg.MaxRatio {
			s.effRatio = s.cfg.MaxRatio
		}
	} else {
		s.effRatio = s.cfg.Ratio
	}
}

// gcLocked runs the deferred garbage collection; it returns the
// post-collection |G| measured by the collector's reachability walk, or
// -1 when no collection was pending (the caller falls back to the
// incremental size).
func (s *Store) gcLocked() int {
	if !s.pendingGC {
		return -1
	}
	s.pendingGC = false
	s.ensurePrivateLocked()
	removed, size, startEdges := s.g.GarbageCollectSized()
	s.gcRuns++
	s.rulesCollected += int64(removed)
	if removed > 0 {
		s.cache.DropDeleted(s.g)
	}
	s.sizeRest = size - startEdges
	return size
}

// startEdgesLocked returns the start rule's RHS edge count — the only
// per-batch size walk the incremental |G| accounting needs.
func (s *Store) startEdgesLocked() int {
	return s.g.Rule(s.g.Start).RHS.Edges()
}

// recompressLocked runs GrammarRePair synchronously under the write
// lock, swaps in the result, invalidates the size-vector cache, and lets
// the trigger ratio adapt to the payoff.
func (s *Store) recompressLocked(foldFirst bool) *core.Stats {
	start := time.Now()
	// Fold-first: shrink the compressor's input before the O(|G|) pass.
	// The payoff measurement below uses the post-fold size, so the
	// trigger tuning sees only what GrammarRePair itself achieved.
	if foldFirst {
		s.foldFirstLocked()
	}
	before := s.g.Size()
	g2, st := s.compress(s.g, core.Options{MaxRank: s.cfg.MaxRank})
	s.g = g2
	s.gen++
	s.cache.Invalidate()
	// Re-warm under the already-held write lock: readers polling
	// aggregates on a write-idle Store must not each pay a full
	// ValSizes pass. Publish after the warm-up so the new generation's
	// O(1) tree-size fast path is prefilled.
	s.cache.Sizes(g2)
	// Invalidate retired the spine index with the old grammar; the
	// generation published below seeds a compact view from the fresh
	// start-RHS chain lazily, on the first read that wants indexed
	// descent (generation.spineView) — without that, every point query
	// after a recompression would descend naively until chains happen
	// to re-grow, and seeding here eagerly would bill every
	// recompression for an index only readers need.
	s.publishLocked()
	s.resetCostBaselineLocked()
	s.recompressions++
	s.lastCompressed = g2.Size()
	s.sizeRest = s.lastCompressed - s.startEdgesLocked()
	if st.MaxIntermediate > s.peakSize {
		s.peakSize = st.MaxIntermediate
	}
	s.tunePolicy(before, g2.Size())
	s.stallNanos += time.Since(start).Nanoseconds()
	return st
}

// Recompress forces a synchronous GrammarRePair run regardless of the
// policy and returns its stats. If an asynchronous run is in flight its
// result will be discarded when it completes — the manual run already
// replaced the grammar it was compressing.
func (s *Store) Recompress() *core.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked()
	return s.recompressLocked(false)
}

// Wait blocks until no asynchronous recompression is in flight
// (swapped in or discarded). It is safe to call concurrently with
// writers — a run they start while Wait sleeps is simply waited for
// too, so on return there was an instant with no run in flight.
func (s *Store) Wait() {
	s.mu.Lock()
	for s.activeRuns > 0 {
		s.runsDone.Wait()
	}
	s.mu.Unlock()
}

// Epoch returns the published grammar's update epoch: the number of
// update operations applied to the document as of the last completed
// batch. This is the stamp the asynchronous swap protocol compares;
// reading it is a single atomic load — alloc-free and pin-free, so
// monitoring polls never force the writer onto a clone.
func (s *Store) Epoch() uint64 {
	return s.pub.Load().epoch
}

// Query runs fn on the current published generation, lock-free and
// concurrently with writers: fn observes the document as of the last
// completed batch and never blocks (or is blocked by) ApplyAll. fn must
// treat the grammar as strictly read-only — mutation entry points panic
// on a published grammar — but unlike the old read-lock contract it MAY
// retain the grammar past the call: a published generation is immutable
// forever.
func (s *Store) Query(fn func(*grammar.Grammar) error) error {
	return fn(s.acquireGen().g)
}

// Snapshot returns the current published generation's grammar: an
// atomic pointer grab, not a copy. The grammar is immutable and
// invalidation-safe — later updates and recompressions are applied to
// fresh copies, never to a grammar a Snapshot handed out — so cursors
// built over it stay valid indefinitely. Callers that need a private
// mutable grammar (e.g. to feed a hand-rolled compression pass) must
// Clone it themselves.
func (s *Store) Snapshot() *grammar.Grammar {
	return s.acquireGen().g
}

// Cursor returns a DOM-style cursor over a snapshot of the document.
// Like Snapshot, opening it is O(depth) in the derived tree and does
// not copy the grammar. The cursor comes pre-equipped for indexed
// point queries: the generation's size-vector snapshot and (when the
// isolation frontier indexes long unfolded chains) its frozen spine
// view are attached, so SeekPreorder routes chunk-by-sum instead of
// walking sibling chains — see navigate.Cursor.SeekPreorder.
func (s *Store) Cursor() (*navigate.Cursor, error) {
	gn := s.acquireGen()
	c, err := navigate.NewCursor(gn.g)
	if err != nil {
		return nil, err
	}
	if gn.sizes != nil {
		c.AttachIndex(gn.sizes, gn.spineView())
	}
	return c, nil
}

// PointQuery returns the label of the node at the given preorder index
// (0-based, ⊥ leaves counted) of the published document, via the
// indexed seek of Cursor. For a stream of lookups, open one Cursor and
// SeekPreorder repeatedly instead — that amortizes the cursor
// allocation across the stream.
func (s *Store) PointQuery(pre int64) (string, error) {
	return s.pointQuery(pre, true)
}

// PointQueryNaive is PointQuery without the spine view: the same
// size-vector descent, but long unfolded chains are walked and
// re-measured node by node. It exists as the differential baseline for
// the indexed path (same grammar, same generation, same answer).
func (s *Store) PointQueryNaive(pre int64) (string, error) {
	return s.pointQuery(pre, false)
}

func (s *Store) pointQuery(pre int64, indexed bool) (string, error) {
	gn := s.acquireGen()
	if gn.sizes == nil {
		return "", fmt.Errorf("store: no size vectors published (invalid grammar?)")
	}
	c, err := navigate.NewCursor(gn.g)
	if err != nil {
		return "", err
	}
	if indexed {
		c.AttachIndex(gn.sizes, gn.spineView())
	} else {
		c.AttachIndex(gn.sizes, nil)
	}
	if err := c.SeekPreorder(pre); err != nil {
		return "", err
	}
	return c.Label(), nil
}

// Size returns the current grammar size |G|, cached per generation.
func (s *Store) Size() int {
	return s.acquireGen().cachedSize()
}

// TreeSize returns the node count of the derived binary tree, saturating
// at math.MaxInt64 for exponentially compressing grammars. O(1) whenever
// the size-vector cache was warm at publish time (any time after the
// first applied op).
func (s *Store) TreeSize() (int64, error) {
	return s.acquireGen().cachedTreeSize()
}

func (s *Store) treeSizeLocked() (int64, error) {
	if sizes := s.cache.Peek(); sizes != nil {
		if sv := sizes.Get(s.g.Start); sv != nil {
			return sv.Total, nil
		}
	}
	return s.g.ValNodeCount()
}

// Elements returns the document's element count, or grammar.ErrSaturated
// when the derived tree exceeds the int64 range.
func (s *Store) Elements() (int64, error) {
	n, err := s.TreeSize()
	if err != nil {
		return 0, err
	}
	if grammar.Saturated(n) {
		return 0, grammar.ErrSaturated
	}
	return (n - 1) / 2, nil
}

func (s *Store) elementsLocked() (int64, error) {
	n, err := s.treeSizeLocked()
	if err != nil {
		return 0, err
	}
	if grammar.Saturated(n) {
		return 0, grammar.ErrSaturated
	}
	return (n - 1) / 2, nil
}

// CountLabel counts occurrences of an element label in the document
// without decompressing. The usage vector is cached on the generation,
// so a hot query stream pays one Usage pass per published generation
// instead of one per query — and queries against an old pinned
// generation never invalidate a newer one's cache.
func (s *Store) CountLabel(label string) (float64, error) {
	gn := s.acquireGen()
	usage, err := gn.cachedUsage(&s.usageHits, &s.usageMisses)
	if err != nil {
		return 0, err
	}
	return navigate.CountLabelUsage(gn.g, usage, label), nil
}

// LabelHistogram returns the occurrence count of every element label,
// served from the same generation-cached usage vector as CountLabel.
func (s *Store) LabelHistogram() (map[string]float64, error) {
	gn := s.acquireGen()
	usage, err := gn.cachedUsage(&s.usageHits, &s.usageMisses)
	if err != nil {
		return nil, err
	}
	return navigate.LabelHistogramUsage(gn.g, usage), nil
}

// Memory-tier footprint coefficients: per-unit estimates of what one
// grammar tree node (arena slot + child pointers + Aux), one rule
// (header + registry slot + size vectors), and one isolation-frontier
// spine entry cost resident. Accounting estimates for eviction
// decisions, not exact heap measurements — what matters is that the
// estimate scales with the real footprint.
const (
	bytesPerNode       = 96
	bytesPerRule       = 112
	bytesPerSpineEntry = 48
)

// ResidentBytes estimates the document's resident memory footprint —
// grammar nodes, rule table, and the isolation-frontier index — the
// quantity Config.MemoryBudget bounds fleet-wide. Cold documents evict
// to their encoded bytes, typically 1–2 orders of magnitude smaller.
func (s *Store) ResidentBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.residentBytesLocked()
}

func (s *Store) residentBytesLocked() int64 {
	return int64(s.g.NodeCount())*bytesPerNode +
		int64(s.g.NumRules())*bytesPerRule +
		int64(s.cache.FrontierStats().Entries)*bytesPerSpineEntry
}

// Stats returns a snapshot of the Store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Ops:        s.ops,
		Renames:    s.renames,
		Inserts:    s.inserts,
		Deletes:    s.deletes,
		Batches:    s.batches,
		DupBatches: s.dupBatches,
		LastSeq:    s.lastSeq,

		Recompressions:          s.recompressions,
		AsyncRecompressions:     s.asyncRecompressions,
		DiscardedRecompressions: s.discardedRecompressions,
		ReplayedTailOps:         s.replayedTailOps,
		CostRecompressions:      s.costRecompressions,
		DeferredRecompressions:  s.deferredRecompressions,
		StallNanos:              s.stallNanos,
		RecompressionInflight:   s.inflight,
		SizeCacheHits:           s.cache.Hits,
		SizeCacheMisses:         s.cache.Misses,
		GCRuns:                  s.gcRuns,
		RulesCollected:          s.rulesCollected,
		Refolds:                 s.refolds,
		RefoldedNodes:           s.refoldedNodes,
		RefoldRules:             s.refoldRules,
		FoldFirstRuns:           s.foldFirstRuns,

		Size:               s.sizeRest + s.startEdgesLocked(),
		PeakSize:           s.peakSize,
		LastCompressedSize: s.lastCompressed,
		EffectiveRatio:     s.effRatio,
		ResidentBytes:      s.residentBytesLocked(),
	}
	fs := s.cache.FrontierStats()
	st.IsolationSteps = fs.Steps
	st.IsolationJumps = fs.Jumps
	st.IsolationSkipped = fs.Skipped
	st.SpineNodes = fs.Entries
	st.Spines = fs.Spines
	st.UsageCacheHits = s.usageHits.Load()
	st.UsageCacheMisses = s.usageMisses.Load()
	if s.wl != nil {
		ctr := s.wl.Counters()
		st.Durable = true
		st.WALAppends = ctr.Appends
		st.WALBytes = ctr.AppendedBytes
		st.WALSyncs = ctr.Syncs
		st.FsyncNanos = ctr.SyncNanos
		st.Snapshots = ctr.Snapshots
		st.WALBroken = s.walBroken != nil
		st.SnapshotFailures = s.snapshotFailures
		st.RecoveredOps = s.recovered.RecoveredOps
		st.TruncatedTailRecords = s.recovered.TruncatedTailRecords
		st.SnapshotsCorrupt = s.recovered.SnapshotsCorrupt
	}
	if st.Size > st.PeakSize {
		st.PeakSize = st.Size
	}
	if n, err := s.elementsLocked(); errors.Is(err, grammar.ErrSaturated) {
		st.Saturated = true
	} else if err == nil {
		st.Elements = n
	}
	return st
}
