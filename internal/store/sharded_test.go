package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/datasets"
	"repro/internal/grammar"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// docFixture is one document of a multi-document workload: its seed
// grammar, the op stream replaying it to the corpus, and the expected
// final document.
type docFixture struct {
	id    string
	g0    *grammar.Grammar
	ops   []update.Op
	final *xmltree.Document
}

// shardedFixtures builds n disjoint per-document workloads over the XM
// corpus (distinct generation and workload seeds per document).
func shardedFixtures(t *testing.T, n, opsPerDoc int) []*docFixture {
	t.Helper()
	c, ok := datasets.ByShort("XM")
	if !ok {
		t.Fatal("no XM corpus")
	}
	docs := make([]*docFixture, n)
	for d := 0; d < n; d++ {
		u := c.Generate(0.02, int64(5+d))
		seq, err := workload.Updates(u, opsPerDoc, 90, int64(100+d))
		if err != nil {
			t.Fatal(err)
		}
		g0, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
		docs[d] = &docFixture{
			id:    fmt.Sprintf("doc-%02d", d),
			g0:    g0,
			ops:   seq.Ops,
			final: seq.Final,
		}
	}
	return docs
}

// encodeBytes renders a grammar in the persistent binary format — the
// byte-identity yardstick of the differential test.
func encodeBytes(t *testing.T, g *grammar.Grammar) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := grammar.Encode(&b, g); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// replaySequential replays one document's ops through a fresh
// single-document Store with the same config and batch size — the
// ground truth the concurrent run must be byte-identical to.
func replaySequential(t *testing.T, fx *docFixture, cfg Config, batch int) []byte {
	t.Helper()
	st := New(fx.g0.Clone(), cfg)
	for done := 0; done < len(fx.ops); done += batch {
		end := min(done+batch, len(fx.ops))
		if err := st.ApplyAll(fx.ops[done:end]); err != nil {
			t.Fatalf("%s: sequential batch at %d: %v", fx.id, done, err)
		}
	}
	return encodeBytes(t, st.Snapshot())
}

// TestShardedDifferentialConcurrency is the differential concurrency
// test of the sharded layer: M writer goroutines apply disjoint
// per-document workloads through a ShardedStore while readers stream
// Query/CountLabel, and every final snapshot must be byte-identical to
// a sequential single-Store replay of the same document. Recompression
// is synchronous here so the per-document grammar evolution is a pure
// function of its op stream — any byte difference is cross-document
// interference. Run under -race this also pins the locking discipline
// of the shard workers.
func TestShardedDifferentialConcurrency(t *testing.T) {
	const (
		nDocs  = 6
		nOps   = 120
		batch  = 20
		shards = 4
	)
	cfg := Config{Ratio: 1.3, MinSize: 16}
	docs := shardedFixtures(t, nDocs, nOps)

	want := make(map[string][]byte, nDocs)
	for _, fx := range docs {
		want[fx.id] = replaySequential(t, fx, cfg, batch)
	}

	ss := NewSharded(shards, cfg)
	defer ss.Close()
	for _, fx := range docs {
		if _, err := ss.Open(fx.id, fx.g0.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if ss.NumDocs() != nDocs || ss.NumShards() != shards {
		t.Fatalf("store has %d docs / %d shards", ss.NumDocs(), ss.NumShards())
	}

	// Readers stream aggregate queries against every document while the
	// writers run; their results are not asserted (they see intermediate
	// states), their memory accesses are what -race checks.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, fx := range docs {
					switch r {
					case 0:
						if _, err := ss.CountLabel(fx.id, "item"); err != nil {
							t.Error(err)
							return
						}
					case 1:
						if err := ss.Query(fx.id, func(g *grammar.Grammar) error {
							_ = g.Size()
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					default:
						st, ok := ss.Get(fx.id)
						if !ok {
							t.Errorf("%s vanished", fx.id)
							return
						}
						_ = st.Stats()
						_, _ = st.TreeSize()
					}
				}
			}
		}(r)
	}

	var writers sync.WaitGroup
	for _, fx := range docs {
		writers.Add(1)
		go func(fx *docFixture) {
			defer writers.Done()
			for done := 0; done < len(fx.ops); done += batch {
				end := min(done+batch, len(fx.ops))
				if err := ss.ApplyAll(fx.id, fx.ops[done:end]); err != nil {
					t.Errorf("%s: batch at %d: %v", fx.id, done, err)
					return
				}
			}
		}(fx)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	ss.Quiesce()

	for _, fx := range docs {
		snap, err := ss.Snapshot(fx.id)
		if err != nil {
			t.Fatal(err)
		}
		if err := snap.Validate(); err != nil {
			t.Fatalf("%s: invalid final grammar: %v", fx.id, err)
		}
		if got := encodeBytes(t, snap); !bytes.Equal(got, want[fx.id]) {
			t.Fatalf("%s: concurrent snapshot differs from sequential replay (%d vs %d bytes)",
				fx.id, len(got), len(want[fx.id]))
		}
		// And both must be the workload's final document.
		if !sameLabeledTree(snap.Syms, mustTree(t, snap), fx.final.Syms, fx.final.Root) {
			t.Fatalf("%s: did not converge to the corpus document", fx.id)
		}
	}

	stats := ss.Stats()
	if stats.Ops != int64(nDocs*nOps) {
		t.Fatalf("aggregate ops %d, want %d", stats.Ops, nDocs*nOps)
	}
	if stats.Docs != nDocs || stats.Shards != shards {
		t.Fatalf("aggregate stats %d docs / %d shards", stats.Docs, stats.Shards)
	}
}

// TestShardedAsyncConvergence runs the same disjoint workloads with
// asynchronous recompression enabled: swaps race the writers for real,
// so grammar bytes are timing-dependent, but after Quiesce every
// document must still derive exactly its corpus document — the
// "discard or replay, never a lost update" property end to end.
func TestShardedAsyncConvergence(t *testing.T) {
	const (
		nDocs = 4
		nOps  = 100
		batch = 10
	)
	cfg := Config{Ratio: 1.2, MinSize: 16, Async: true}
	docs := shardedFixtures(t, nDocs, nOps)

	ss := NewSharded(2, cfg)
	defer ss.Close()
	for _, fx := range docs {
		if _, err := ss.Open(fx.id, fx.g0.Clone()); err != nil {
			t.Fatal(err)
		}
	}

	var writers sync.WaitGroup
	for _, fx := range docs {
		writers.Add(1)
		go func(fx *docFixture) {
			defer writers.Done()
			for done := 0; done < len(fx.ops); done += batch {
				end := min(done+batch, len(fx.ops))
				if err := ss.ApplyAll(fx.id, fx.ops[done:end]); err != nil {
					t.Errorf("%s: batch at %d: %v", fx.id, done, err)
					return
				}
			}
		}(fx)
	}
	writers.Wait()
	ss.Quiesce()

	swapped, discarded := int64(0), int64(0)
	for _, fx := range docs {
		st, ok := ss.Get(fx.id)
		if !ok {
			t.Fatalf("%s vanished", fx.id)
		}
		ds := st.Stats()
		swapped += ds.AsyncRecompressions
		discarded += ds.DiscardedRecompressions
		snap := st.Snapshot()
		if err := snap.Validate(); err != nil {
			t.Fatalf("%s: invalid final grammar: %v", fx.id, err)
		}
		if !sameLabeledTree(snap.Syms, mustTree(t, snap), fx.final.Syms, fx.final.Root) {
			t.Fatalf("%s: lost an update across %d swaps / %d discards",
				fx.id, ds.AsyncRecompressions, ds.DiscardedRecompressions)
		}
	}
	t.Logf("async runs: %d swapped, %d discarded", swapped, discarded)
}

// TestShardedLifecycle covers the registry surface: duplicate opens,
// unknown documents, Drop, and writes after Close.
func TestShardedLifecycle(t *testing.T) {
	ss := NewSharded(2, Config{Ratio: -1})
	u := xmltree.NewUnranked("r", xmltree.NewUnranked("a"))
	g, _ := treerepair.Compress(u.Binary(), treerepair.Options{})
	if _, err := ss.Open("d", g); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Open("d", g.Clone()); err == nil {
		t.Fatal("duplicate open must fail")
	}
	if err := ss.Apply("nope", update.Op{Kind: update.Rename, Pos: 0, Label: "x"}); err == nil {
		t.Fatal("apply to unknown doc must fail")
	}
	if _, err := ss.Snapshot("nope"); err == nil {
		t.Fatal("snapshot of unknown doc must fail")
	}
	if err := ss.Apply("d", update.Op{Kind: update.Rename, Pos: 0, Label: "x"}); err != nil {
		t.Fatal(err)
	}
	if got := ss.Docs(); len(got) != 1 || got[0] != "d" {
		t.Fatalf("Docs() = %v", got)
	}
	if !ss.Drop("d") || ss.Drop("d") {
		t.Fatal("Drop must report presence exactly once")
	}
	ss.Close()
	ss.Close() // idempotent
	if _, err := ss.Open("late", g.Clone()); err == nil {
		t.Fatal("open after close must fail")
	}
}
