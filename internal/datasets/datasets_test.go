package datasets

import (
	"testing"

	"repro/internal/core"
	"repro/internal/treerepair"
	"repro/internal/xmltree"
)

func TestCorporaMetadata(t *testing.T) {
	cs := Corpora()
	if len(cs) != 6 {
		t.Fatalf("want 6 corpora, got %d", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if seen[c.Short] {
			t.Fatalf("duplicate short tag %s", c.Short)
		}
		seen[c.Short] = true
		if c.PaperEdges <= 0 || c.DefaultEdges <= 0 {
			t.Fatalf("%s: missing sizes", c.Name)
		}
	}
	if _, ok := ByShort("XM"); !ok {
		t.Fatal("ByShort(XM) failed")
	}
	if _, ok := ByShort("ZZ"); ok {
		t.Fatal("ByShort(ZZ) should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, c := range Corpora() {
		a := c.Generate(0.02, 1)
		b := c.Generate(0.02, 1)
		if a.Edges() != b.Edges() {
			t.Fatalf("%s: generation not deterministic (%d vs %d)", c.Name, a.Edges(), b.Edges())
		}
	}
}

func TestGenerateTargetsEdgeCount(t *testing.T) {
	for _, c := range Corpora() {
		u := c.Generate(0.05, 7)
		target := int(float64(c.DefaultEdges) * 0.05)
		if u.Edges() < target || u.Edges() > target+target/2+200 {
			t.Fatalf("%s: edges %d far from target %d", c.Name, u.Edges(), target)
		}
	}
}

func TestDepthRegimes(t *testing.T) {
	// Depth must land in the same regime as Table III: shallow for the
	// record lists, deep for Treebank.
	depths := map[string][2]int{
		"EW": {2, 2}, "ET": {4, 8}, "NC": {2, 4},
		"MD": {5, 8}, "XM": {6, 14}, "TB": {20, 60},
	}
	for _, c := range Corpora() {
		u := c.Generate(0.03, 3)
		d := u.Depth()
		want := depths[c.Short]
		if d < want[0] || d > want[1] {
			t.Fatalf("%s: depth %d outside regime [%d,%d]", c.Name, d, want[0], want[1])
		}
	}
}

// TestCompressionRegimes is the calibration check for the Table III
// reproduction: each corpus must compress in the same regime the paper
// reports — exponentially for EW/ET/NC, low single digits for MD, around
// a tenth for XM, around a fifth for TB.
func TestCompressionRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("compression calibration is slow")
	}
	bands := map[string][2]float64{
		"EW": {0, 0.5}, "ET": {0, 0.5}, "NC": {0, 0.5},
		"MD": {0.8, 9}, "XM": {5, 19}, "TB": {12, 35},
	}
	for _, c := range Corpora() {
		u := c.Generate(0.15, 11)
		doc := u.Binary()
		g, _ := treerepair.Compress(doc, treerepair.Options{})
		ratio := 100 * float64(g.Size()) / float64(u.Edges())
		b := bands[c.Short]
		if ratio < b[0] || ratio > b[1] {
			t.Errorf("%s: ratio %.3f%% outside band [%.1f, %.1f] (|G|=%d, edges=%d)",
				c.Name, ratio, b[0], b[1], g.Size(), u.Edges())
		}
	}
}

func TestGnGeneratesCorrectString(t *testing.T) {
	for n := 1; n <= 4; n++ {
		g := Gn(n)
		if err := g.Validate(); err != nil {
			t.Fatalf("Gn(%d) invalid: %v", n, err)
		}
		tree, err := g.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		doc := &xmltree.Document{Syms: g.Syms, Root: tree}
		u, err := doc.ToUnranked()
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(u.Children)) != GnStringLength(n) {
			t.Fatalf("Gn(%d): %d children, want %d", n, len(u.Children), GnStringLength(n))
		}
		// Shape a (ba)^k b.
		if u.Children[0].Label != "a" || u.Children[len(u.Children)-1].Label != "b" {
			t.Fatalf("Gn(%d): wrong endpoints", n)
		}
		for i := 1; i < len(u.Children)-1; i++ {
			want := "b"
			if i%2 == 0 {
				want = "a"
			}
			if u.Children[i].Label != want {
				t.Fatalf("Gn(%d): position %d is %s, want %s", n, i, u.Children[i].Label, want)
			}
		}
	}
}

func TestGnSizeLinear(t *testing.T) {
	for n := 2; n <= 12; n++ {
		g := Gn(n)
		if got, want := g.Size(), 12+2*n; got != want {
			t.Fatalf("|Gn(%d)| = %d, want %d", n, got, want)
		}
	}
}

// TestGnRecompression checks the Fig. 3 property: the optimized
// GrammarRePair recompresses Gn to a grammar of comparable (linear in n)
// size with bounded blow-up, and val is preserved.
func TestGnRecompression(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		g := Gn(n)
		want, err := g.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		out, st := core.Compress(g, core.Options{})
		if err := out.Validate(); err != nil {
			t.Fatalf("Gn(%d): %v", n, err)
		}
		got, err := out.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		if !xmltree.Equal(got, want) {
			t.Fatalf("Gn(%d): val changed", n)
		}
		if out.Size() > 4*g.Size() {
			t.Fatalf("Gn(%d): recompressed size %d vs input %d", n, out.Size(), g.Size())
		}
		blowup := float64(st.MaxIntermediate) / float64(out.Size())
		if blowup > 6 {
			t.Fatalf("Gn(%d): optimized blow-up %.1f too large", n, blowup)
		}
	}
}
