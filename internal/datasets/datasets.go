// Package datasets generates the synthetic stand-ins for the paper's six
// evaluation corpora (Table III) and the Gn grammar family of Fig. 3.
//
// The paper evaluates on structure-only versions of well-known XML files.
// Those files cannot be shipped, so each generator reproduces the axes
// that drive every experiment: edge count, depth, label-alphabet size and
// — decisive for RePair — the regularity profile. EXI-Weblog,
// EXI-Telecomp and NCBI are perfectly regular record lists (they compress
// exponentially, ratio < 0.1 %); Medline is records with optional and
// repeated fields (low single-digit ratio); XMark is a moderately diverse
// auction-site schema (ratio around 10 %); Treebank is deep, skewed and
// irregular (ratio around 20 %). See DESIGN.md §2 for the substitution
// rationale.
package datasets

import (
	"math/rand"

	"repro/internal/xmltree"
)

// Corpus describes one synthetic corpus together with the paper's
// reference numbers for Table III.
type Corpus struct {
	Name     string
	Short    string // the paper's two-letter tag (EW, XM, ET, TB, MD, NC)
	Moderate bool   // true for the moderately compressing files of Fig. 4

	PaperEdges    int     // Table III #edges
	PaperDepth    int     // Table III dp
	PaperCEdges   int     // Table III c-edges (GrammarRePair result)
	PaperRatioPct float64 // Table III ratio (%)

	// DefaultEdges is the laptop-friendly default size; Generate(scale)
	// aims at DefaultEdges·scale edges.
	DefaultEdges int

	gen func(targetEdges int, rng *rand.Rand) *xmltree.Unranked
}

// Generate builds the corpus at the given scale (1.0 = DefaultEdges) with
// a deterministic seed.
func (c Corpus) Generate(scale float64, seed int64) *xmltree.Unranked {
	target := int(float64(c.DefaultEdges) * scale)
	if target < 16 {
		target = 16
	}
	return c.gen(target, rand.New(rand.NewSource(seed)))
}

// Corpora returns the six corpora in the paper's Table III order.
func Corpora() []Corpus {
	return []Corpus{
		{
			Name: "EXI-Weblog", Short: "EW", Moderate: false,
			PaperEdges: 93434, PaperDepth: 2, PaperCEdges: 42, PaperRatioPct: 0.04,
			DefaultEdges: 93434, gen: genWeblog,
		},
		{
			Name: "XMark", Short: "XM", Moderate: true,
			PaperEdges: 167864, PaperDepth: 11, PaperCEdges: 22105, PaperRatioPct: 13.17,
			DefaultEdges: 100000, gen: genXMark,
		},
		{
			Name: "EXI-Telecomp", Short: "ET", Moderate: false,
			PaperEdges: 177633, PaperDepth: 6, PaperCEdges: 107, PaperRatioPct: 0.06,
			DefaultEdges: 177633, gen: genTelecomp,
		},
		{
			Name: "Treebank", Short: "TB", Moderate: true,
			PaperEdges: 2437665, PaperDepth: 35, PaperCEdges: 503830, PaperRatioPct: 20.67,
			DefaultEdges: 120000, gen: genTreebank,
		},
		{
			Name: "Medline", Short: "MD", Moderate: true,
			PaperEdges: 2866079, PaperDepth: 6, PaperCEdges: 118067, PaperRatioPct: 4.12,
			DefaultEdges: 150000, gen: genMedline,
		},
		{
			Name: "NCBI", Short: "NC", Moderate: false,
			PaperEdges: 3642224, PaperDepth: 3, PaperCEdges: 59, PaperRatioPct: 0.01,
			DefaultEdges: 400000, gen: genNCBI,
		},
	}
}

// ByShort returns the corpus with the given two-letter tag.
func ByShort(short string) (Corpus, bool) {
	for _, c := range Corpora() {
		if c.Short == short {
			return c, true
		}
	}
	return Corpus{}, false
}

func el(label string, children ...*xmltree.Unranked) *xmltree.Unranked {
	return xmltree.NewUnranked(label, children...)
}

// genWeblog: depth 2, perfectly regular web-server log records.
// Each record contributes 7 edges.
func genWeblog(target int, _ *rand.Rand) *xmltree.Unranked {
	root := el("log")
	for root.Edges() < target {
		root.Children = append(root.Children, el("request",
			el("host"), el("ident"), el("authuser"),
			el("time"), el("line"), el("status")))
	}
	return root
}

// genTelecomp: depth 6, perfectly regular measurement records with a
// fixed nested structure (18 edges per record).
func genTelecomp(target int, _ *rand.Rand) *xmltree.Unranked {
	record := func() *xmltree.Unranked {
		return el("measurement",
			el("header", el("id"), el("timestamp", el("date"), el("time"))),
			el("source", el("network", el("cell", el("lac"), el("ci")))),
			el("values",
				el("value", el("unit"), el("quantity")),
				el("value", el("unit"), el("quantity")),
				el("value", el("unit"), el("quantity"))))
	}
	root := el("telecomp")
	for root.Edges() < target {
		root.Children = append(root.Children, record())
	}
	return root
}

// genNCBI: depth 3, extremely regular SNP records (12 edges each).
func genNCBI(target int, _ *rand.Rand) *xmltree.Unranked {
	record := func() *xmltree.Unranked {
		return el("snp",
			el("id"), el("chromosome"), el("position"),
			el("alleles", el("ref"), el("alt")),
			el("frequency", el("population"), el("value")),
			el("validation"), el("build"), el("type"))
	}
	root := el("snps")
	for root.Edges() < target {
		root.Children = append(root.Children, record())
	}
	return root
}

// genMedline: depth 6, citation records with optional and repeated
// fields — highly repetitive overall but with per-record variation, which
// keeps the ratio in the low single digits.
func genMedline(target int, rng *rand.Rand) *xmltree.Unranked {
	author := func() *xmltree.Unranked {
		a := el("author", el("lastname"), el("forename"), el("initials"))
		if rng.Intn(100) < 8 {
			a.Children = append(a.Children, el("affiliation"))
		}
		return a
	}
	mesh := func() *xmltree.Unranked {
		m := el("meshheading", el("descriptorname"))
		if rng.Intn(100) < 25 {
			m.Children = append(m.Children, el("qualifiername"))
		}
		return m
	}
	citation := func() *xmltree.Unranked {
		c := el("medlinecitation", el("pmid"),
			el("datecreated", el("year"), el("month"), el("day")))
		art := el("article",
			el("journal",
				el("issn"),
				el("journalissue", el("volume"), el("issue"),
					el("pubdate", el("year"), el("month")))),
			el("articletitle"),
			el("pagination", el("medlinepgn")))
		if rng.Intn(100) < 60 {
			art.Children = append(art.Children, el("abstract", el("abstracttext")))
		}
		al := el("authorlist")
		for a := 1 + rng.Intn(4); a > 0; a-- {
			al.Children = append(al.Children, author())
		}
		art.Children = append(art.Children, al)
		c.Children = append(c.Children, art)
		ml := el("meshheadinglist")
		for m := rng.Intn(7); m > 0; m-- {
			ml.Children = append(ml.Children, mesh())
		}
		if len(ml.Children) > 0 {
			c.Children = append(c.Children, ml)
		}
		return c
	}
	root := el("medline")
	for root.Edges() < target {
		root.Children = append(root.Children, citation())
	}
	return root
}

// genXMark: depth ~11, the auction-site schema of the XMark benchmark
// with randomized repetition counts and optional parts — moderately
// diverse, compressing to roughly a tenth of its edges.
func genXMark(target int, rng *rand.Rand) *xmltree.Unranked {
	var text func(depth int) *xmltree.Unranked
	text = func(depth int) *xmltree.Unranked {
		t := el("text")
		if depth > 0 && rng.Intn(100) < 30 {
			pl := el("parlist")
			for i := 1 + rng.Intn(2); i > 0; i-- {
				pl.Children = append(pl.Children, el("listitem", text(depth-1)))
			}
			t.Children = append(t.Children, pl)
		} else {
			for i := 1 + rng.Intn(3); i > 0; i-- {
				t.Children = append(t.Children, el("keyword"))
			}
		}
		return t
	}
	item := func() *xmltree.Unranked {
		it := el("item", el("location"), el("quantity"), el("name"),
			el("payment"), el("description", text(2)), el("shipping"))
		for i := 1 + rng.Intn(3); i > 0; i-- {
			it.Children = append(it.Children, el("incategory"))
		}
		if rng.Intn(100) < 60 {
			mb := el("mailbox")
			for m := rng.Intn(3); m > 0; m-- {
				mb.Children = append(mb.Children,
					el("mail", el("from"), el("to"), el("date"), text(1)))
			}
			it.Children = append(it.Children, mb)
		}
		return it
	}
	person := func() *xmltree.Unranked {
		p := el("person", el("name"), el("emailaddress"))
		if rng.Intn(100) < 50 {
			p.Children = append(p.Children, el("phone"))
		}
		if rng.Intn(100) < 60 {
			p.Children = append(p.Children, el("address",
				el("street"), el("city"), el("country"), el("zipcode")))
		}
		if rng.Intn(100) < 40 {
			w := el("watches")
			for i := 1 + rng.Intn(4); i > 0; i-- {
				w.Children = append(w.Children, el("watch"))
			}
			p.Children = append(p.Children, w)
		}
		return p
	}
	openAuction := func() *xmltree.Unranked {
		oa := el("open_auction", el("initial"), el("reserve"))
		for b := 1 + rng.Intn(5); b > 0; b-- {
			oa.Children = append(oa.Children,
				el("bidder", el("date"), el("time"), el("increase")))
		}
		oa.Children = append(oa.Children, el("current"), el("itemref"), el("seller"),
			el("annotation", el("description", text(1))))
		return oa
	}
	closedAuction := func() *xmltree.Unranked {
		return el("closed_auction", el("seller"), el("buyer"), el("itemref"),
			el("price"), el("date"), el("quantity"), el("type"),
			el("annotation", el("description", text(1))))
	}

	regions := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	root := el("site")
	regs := el("regions")
	for _, r := range regions {
		regs.Children = append(regs.Children, el(r))
	}
	cats := el("categories")
	people := el("people")
	open := el("open_auctions")
	closed := el("closed_auctions")
	root.Children = append(root.Children, regs, cats, people, open, closed)

	for root.Edges() < target {
		switch rng.Intn(10) {
		case 0, 1, 2:
			reg := regs.Children[rng.Intn(len(regs.Children))]
			reg.Children = append(reg.Children, item())
		case 3:
			cats.Children = append(cats.Children,
				el("category", el("name"), el("description", text(1))))
		case 4, 5:
			people.Children = append(people.Children, person())
		case 6, 7:
			open.Children = append(open.Children, openAuction())
		default:
			closed.Children = append(closed.Children, closedAuction())
		}
	}
	return root
}

// treebankProductions is a small probabilistic CFG modeled on Penn
// Treebank parse structure. Derivation trees repeat sub-productions
// heavily (as real parse corpora do) but combine them irregularly, which
// is what keeps real Treebank at a ~20 % ratio — by far the hardest of
// the paper's corpora.
var treebankProductions = map[string][][]string{
	"S":    {{"NP", "VP"}, {"NP", "VP"}, {"NP", "VP", "PP"}, {"S", "CC", "S"}, {"SBAR", "NP", "VP"}},
	"NP":   {{"DT", "NN"}, {"DT", "NN"}, {"PRP"}, {"DT", "JJ", "NN"}, {"NP", "PP"}, {"NNP"}, {"NP", "SBAR"}},
	"VP":   {{"VB", "NP"}, {"VB", "NP"}, {"VBD", "NP"}, {"VBD", "NP", "PP"}, {"MD", "VB", "NP"}, {"VBZ", "ADJP"}},
	"PP":   {{"IN", "NP"}, {"IN", "NP"}, {"TO", "NP"}},
	"SBAR": {{"IN", "S"}, {"WHNP", "S"}},
	"ADJP": {{"JJ"}, {"RB", "JJ"}},
}

// genTreebank: deep, irregular parse trees from a skewed PCFG.
func genTreebank(target int, rng *rand.Rand) *xmltree.Unranked {
	var derive func(tag string, depth int) *xmltree.Unranked
	derive = func(tag string, depth int) *xmltree.Unranked {
		n := el(tag)
		prods, ok := treebankProductions[tag]
		if !ok || depth <= 0 {
			return n // part-of-speech leaf
		}
		prod := prods[rng.Intn(len(prods))]
		for _, sym := range prod {
			n.Children = append(n.Children, derive(sym, depth-1))
		}
		return n
	}
	root := el("treebank")
	for root.Edges() < target {
		root.Children = append(root.Children, derive("S", 24))
	}
	return root
}
