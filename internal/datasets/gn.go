package datasets

import (
	"repro/internal/grammar"
	"repro/internal/xmltree"
)

// Gn builds the paper's exponential string-grammar family from the
// Fig. 3 experiment, encoded as an SLCF tree grammar. The string grammar
//
//	S   → a A_n A_n b
//	A_i → A_{i-1} A_{i-1}     (1 ≤ i ≤ n)
//	A_0 → b a
//
// produces a(ba)^(2^(n+1))b. Following the paper's hint ("consider one
// additional root symbol, under which these grammars generate long
// children lists"), the string becomes the child list of a root element f
// in the binary encoding: string symbols are rank-2 terminals chained via
// next-sibling, and every string nonterminal becomes a rank-1 nonterminal
// that takes the remainder of the sibling chain as its parameter.
//
// GrammarRePair must recompress this to the (ab)-aligned grammar of
// essentially the same size; without the Algorithm 8 optimization the
// intermediate grammar blows up with the size of the *string* (Fig. 3).
func Gn(n int) *grammar.Grammar {
	st := xmltree.NewSymbolTable()
	f := st.InternElement("f")
	a := st.InternElement("a")
	b := st.InternElement("b")
	g := grammar.New(st)

	// A_0(y1) → b(⊥, a(⊥, y1))  — the string "ba" prepended to the chain.
	prev := g.NewRule(1, xmltree.New(xmltree.Term(b),
		xmltree.NewBottom(),
		xmltree.New(xmltree.Term(a), xmltree.NewBottom(), xmltree.New(xmltree.Param(1)))))
	for i := 1; i <= n; i++ {
		prev = g.NewRule(1, xmltree.New(xmltree.Nonterm(prev.ID),
			xmltree.New(xmltree.Nonterm(prev.ID), xmltree.New(xmltree.Param(1)))))
	}
	// S → f(a(⊥, A_n(A_n(b(⊥,⊥)))), ⊥)
	g.StartRule().RHS = xmltree.New(xmltree.Term(f),
		xmltree.New(xmltree.Term(a),
			xmltree.NewBottom(),
			xmltree.New(xmltree.Nonterm(prev.ID),
				xmltree.New(xmltree.Nonterm(prev.ID),
					xmltree.New(xmltree.Term(b), xmltree.NewBottom(), xmltree.NewBottom())))),
		xmltree.NewBottom())
	return g
}

// GnStringLength returns the length of the string Gn generates:
// 2·2^(n+1) + 2 symbols (a, (ba)^(2^(n+1)), b).
func GnStringLength(n int) int64 {
	return 2<<(uint(n)+1) + 2
}
