// Package loadgen replays fleet workload schedules against a serving
// front-end (repro/internal/server) over N client connections and
// measures what a serving benchmark actually needs: aggregate update
// throughput and the client-observed batch latency distribution
// (p50/p99), not just ns/op. It is the engine under cmd/loadgen and
// the benchsuite's ServeStream track, so both report from the same
// replay loop.
package loadgen

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/server"
	"repro/internal/update"
	"repro/internal/workload"
)

// Config describes one load-generation run against a live server.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// Conns is the number of client connections the schedule is spread
	// over (min 1). Batches for one document always ride the same
	// connection (conn = doc index mod Conns), so per-document op order
	// is preserved — the property every differential in this repo
	// depends on.
	Conns int
	// IDs names the documents, index-aligned with the schedule's Doc
	// indices. Every document must already be open on the server.
	IDs []string
	// Schedule is the batch sequence to replay (e.g. workload.ZipfFleet).
	Schedule []workload.FleetBatch
	// Retry, when non-nil, replays through exactly-once RetryClients
	// instead of plain Clients: sequence-stamped applies, reconnect
	// with backoff through transport faults (for runs against a chaos
	// proxy or a server that drains mid-run). Addr and per-connection
	// seeds are filled in from this Config; the counters land in
	// Report.Retry.
	Retry *server.RetryConfig
}

// Report is the outcome of a run.
type Report struct {
	// Ops and Batches count the applied work.
	Ops     int
	Batches int
	// Elapsed is the wall clock of the whole replay (all connections).
	Elapsed time.Duration
	// P50 and P99 are client-observed per-batch apply latencies
	// (request write to ack read).
	P50, P99 time.Duration
	// Latencies holds every batch latency, sorted ascending, so callers
	// aggregating multiple runs (the benchsuite) can merge distributions
	// instead of averaging quantiles.
	Latencies []time.Duration
	// Retry sums the fault-handling counters over all connections when
	// the run used Config.Retry (zero otherwise).
	Retry server.RetryStats
}

// Throughput returns applied update ops per second.
func (r Report) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Quantile returns the q-quantile (0..1) of the sorted latencies.
func Quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Run replays the schedule. Each connection gets the subsequence of
// batches owned by its documents and replays them synchronously (one
// in-flight batch per connection, latency = full request/ack round
// trip); connections run concurrently, so aggregate throughput scales
// with Conns until the server or the store saturates.
func Run(cfg Config) (Report, error) {
	var rep Report
	conns := cfg.Conns
	if conns < 1 {
		conns = 1
	}
	if len(cfg.Schedule) == 0 {
		return rep, fmt.Errorf("loadgen: empty schedule")
	}
	// Partition the schedule by owning connection, preserving order.
	parts := make([][]workload.FleetBatch, conns)
	for _, fb := range cfg.Schedule {
		if fb.Doc < 0 || fb.Doc >= len(cfg.IDs) {
			return rep, fmt.Errorf("loadgen: schedule references document %d of %d", fb.Doc, len(cfg.IDs))
		}
		c := fb.Doc % conns
		parts[c] = append(parts[c], fb)
	}
	// Plain Client and RetryClient share the Apply surface the replay
	// loop needs.
	type applier interface {
		Apply(id string, ops []update.Op) error
		Close() error
	}
	clients := make([]applier, conns)
	retriers := make([]*server.RetryClient, 0, conns)
	for c := range clients {
		if cfg.Retry != nil {
			rcfg := *cfg.Retry
			rcfg.Addr = cfg.Addr
			rcfg.Seed += int64(c) // decorrelate the backoff jitter per connection
			rc, err := server.DialRetry(rcfg)
			if err != nil {
				return rep, fmt.Errorf("loadgen: conn %d: %w", c, err)
			}
			defer rc.Close()
			clients[c] = rc
			retriers = append(retriers, rc)
			continue
		}
		cl, err := server.Dial(cfg.Addr)
		if err != nil {
			return rep, fmt.Errorf("loadgen: conn %d: %w", c, err)
		}
		defer cl.Close()
		clients[c] = cl
	}

	type connResult struct {
		ops  int
		lats []time.Duration
		err  error
	}
	results := make([]connResult, conns)
	start := time.Now()
	done := make(chan int, conns)
	for c := 0; c < conns; c++ {
		go func(c int) {
			defer func() { done <- c }()
			r := &results[c]
			r.lats = make([]time.Duration, 0, len(parts[c]))
			for _, fb := range parts[c] {
				t0 := time.Now()
				if err := clients[c].Apply(cfg.IDs[fb.Doc], fb.Ops); err != nil {
					r.err = fmt.Errorf("loadgen: conn %d doc %s: %w", c, cfg.IDs[fb.Doc], err)
					return
				}
				r.lats = append(r.lats, time.Since(t0))
				r.ops += len(fb.Ops)
			}
		}(c)
	}
	for c := 0; c < conns; c++ {
		<-done
	}
	rep.Elapsed = time.Since(start)
	for c := range results {
		if err := results[c].err; err != nil {
			return rep, err
		}
		rep.Ops += results[c].ops
		rep.Batches += len(results[c].lats)
		rep.Latencies = append(rep.Latencies, results[c].lats...)
	}
	sort.Slice(rep.Latencies, func(i, j int) bool { return rep.Latencies[i] < rep.Latencies[j] })
	rep.P50 = Quantile(rep.Latencies, 0.50)
	rep.P99 = Quantile(rep.Latencies, 0.99)
	for _, rc := range retriers {
		st := rc.Stats()
		rep.Retry.Retries += st.Retries
		rep.Retry.Reconnects += st.Reconnects
		rep.Retry.Timeouts += st.Timeouts
	}
	return rep, nil
}
