// Package workload generates the update workloads of the paper's dynamic
// experiments (Section V-C): insert/delete sequences produced with the
// inverse-operation seeding technique, and random-rename workloads.
//
// Inverse seeding ("a well-known technique for approximating realistic
// update workloads"): starting from the final document — the corpus
// itself — inverse operations are applied backwards until a seed document
// is reached. Replaying the recorded forward operations transforms the
// seed back into the corpus, so every inserted fragment is a genuine
// piece of the document and every intermediate state is realistic.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/update"
	"repro/internal/xmltree"
)

// Sequence is a generated workload: apply Ops (in order) to the Seed
// document and you obtain the Final document.
type Sequence struct {
	Seed  *xmltree.Document
	Final *xmltree.Document
	Ops   []update.Op
}

// maxFragmentElements caps the size of a single inserted fragment so one
// operation cannot move a large fraction of the document.
const maxFragmentElements = 24

// Updates builds a Sequence of n operations with the given insert
// percentage (the paper uses 90) against the final document.
func Updates(final *xmltree.Unranked, n int, insertPct int, seed int64) (*Sequence, error) {
	rng := rand.New(rand.NewSource(seed))
	finalDoc := final.Binary()
	st := finalDoc.Syms
	cur := finalDoc.Root.Copy()

	ops := make([]update.Op, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(100) < insertPct {
			op, next, ok := invertInsert(st, cur, rng)
			if !ok {
				// Document too small to remove anything; fall back to a
				// forward delete (inverted below) to grow it again.
				var err error
				op, next, err = invertDelete(st, cur, rng)
				if err != nil {
					return nil, fmt.Errorf("workload: op %d: %w", i, err)
				}
			}
			ops = append(ops, op)
			cur = next
		} else {
			op, next, err := invertDelete(st, cur, rng)
			if err != nil {
				return nil, fmt.Errorf("workload: op %d: %w", i, err)
			}
			ops = append(ops, op)
			cur = next
		}
	}
	// ops were recorded last-to-first.
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
	return &Sequence{
		Seed:  &xmltree.Document{Syms: st, Root: cur},
		Final: finalDoc,
		Ops:   ops,
	}, nil
}

// invertInsert derives a forward INSERT operation by removing a small
// element subtree from the current (later) state: the removed element is
// exactly what the forward operation inserts.
func invertInsert(st *xmltree.SymbolTable, cur *xmltree.Node, rng *rand.Rand) (update.Op, *xmltree.Node, bool) {
	positions := elementPositions(cur)
	if len(positions) <= 1 {
		return update.Op{}, cur, false
	}
	// Try to find a small removable element (never the document root).
	for attempt := 0; attempt < 32; attempt++ {
		p := positions[1+rng.Intn(len(positions)-1)]
		node := cur.PreorderIndex(int(p))
		frag, err := xmltree.DecodeElement(st, node)
		if err != nil || frag.Nodes() > maxFragmentElements {
			continue
		}
		op := update.Op{Kind: update.Insert, Pos: p, Frag: frag}
		next, err := update.ApplyTree(st, cur, update.Op{Kind: update.Delete, Pos: p})
		if err != nil {
			continue
		}
		return op, next, true
	}
	return update.Op{}, cur, false
}

// maxInvertAttempts bounds the fragment-sampling retry loop of
// invertDelete; without a bound a document on which DecodeElement keeps
// failing would spin forever.
const maxInvertAttempts = 128

// invertDelete derives a forward DELETE operation by inserting a copy of
// a random small document fragment into the current state: the forward
// delete removes exactly that fragment. It fails (instead of panicking)
// when the document has degenerated so far that no insert position or no
// decodable fragment exists.
func invertDelete(st *xmltree.SymbolTable, cur *xmltree.Node, rng *rand.Rand) (update.Op, *xmltree.Node, error) {
	// Insert positions are 1..Size()-1 (never before the document root at
	// preorder 0); a single-node document has none.
	if cur.Size() < 2 {
		return update.Op{}, cur, fmt.Errorf("document too small to seed an insert (size %d)", cur.Size())
	}
	positions := elementPositions(cur)
	if len(positions) == 0 {
		return update.Op{}, cur, fmt.Errorf("document has no element to use as a fragment")
	}
	var frag *xmltree.Unranked
	for attempt := 0; attempt < maxInvertAttempts; attempt++ {
		p := positions[rng.Intn(len(positions))]
		node := cur.PreorderIndex(int(p))
		f, err := xmltree.DecodeElement(st, node)
		if err == nil && (f.Nodes() <= maxFragmentElements || attempt > 32) {
			frag = f
			if frag.Nodes() > maxFragmentElements {
				frag.Children = nil // degrade to a single element
			}
			break
		}
	}
	if frag == nil {
		return update.Op{}, cur, fmt.Errorf("no decodable fragment after %d attempts", maxInvertAttempts)
	}
	// Insert before a random position (possibly a ⊥, i.e. an append),
	// but never before the document root at preorder 0.
	p := int64(1 + rng.Intn(cur.Size()-1))
	next, err := update.ApplyTree(st, cur, update.Op{Kind: update.Insert, Pos: p, Frag: frag})
	if err != nil {
		return update.Op{}, cur, fmt.Errorf("backward insert at %d failed: %w", p, err)
	}
	return update.Op{Kind: update.Delete, Pos: p}, next, nil
}

// elementPositions lists the preorder indices of all non-⊥ nodes.
func elementPositions(root *xmltree.Node) []int64 {
	var out []int64
	var i int64
	root.Walk(func(n *xmltree.Node) bool {
		if !n.Label.IsBottom() {
			out = append(out, i)
		}
		i++
		return true
	})
	return out
}

// Renames builds the Fig. 6 workload: n renames of distinct random
// element nodes to fresh labels not used in the document. Renames do not
// move preorder positions, so all operations address the original tree.
func Renames(doc *xmltree.Document, n int, seed int64) []update.Op {
	rng := rand.New(rand.NewSource(seed))
	positions := elementPositions(doc.Root)
	rng.Shuffle(len(positions), func(i, j int) {
		positions[i], positions[j] = positions[j], positions[i]
	})
	if n > len(positions) {
		n = len(positions)
	}
	ops := make([]update.Op, n)
	for i := 0; i < n; i++ {
		ops[i] = update.Op{
			Kind:  update.Rename,
			Pos:   positions[i],
			Label: fmt.Sprintf("fresh%d", i),
		}
	}
	return ops
}
