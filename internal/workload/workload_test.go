package workload

import (
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/treerepair"
	"repro/internal/update"
	"repro/internal/xmltree"
)

func randomUnranked(rng *rand.Rand, n int, labels []string) *xmltree.Unranked {
	root := &xmltree.Unranked{Label: labels[rng.Intn(len(labels))]}
	nodes := []*xmltree.Unranked{root}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := &xmltree.Unranked{Label: labels[rng.Intn(len(labels))]}
		p.Children = append(p.Children, c)
		nodes = append(nodes, c)
	}
	return root
}

// TestUpdatesReplayToFinal is the defining property of inverse seeding:
// applying the forward ops to the seed yields the final document.
func TestUpdatesReplayToFinal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		final := randomUnranked(rng, 60+rng.Intn(100), []string{"a", "b", "c"})
		seq, err := Updates(final, 40, 90, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		got, err := update.ApplyTreeAll(seq.Seed.Syms, seq.Seed.Root.Copy(), seq.Ops)
		if err != nil {
			t.Fatalf("replay failed: %v", err)
		}
		if !xmltree.Equal(got, seq.Final.Root) {
			t.Fatal("replaying the ops on the seed does not give the final document")
		}
	}
}

// TestUpdatesReplayOnGrammar replays the same workload through the
// compressed grammar and checks it converges to the final document too.
func TestUpdatesReplayOnGrammar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	final := randomUnranked(rng, 120, []string{"a", "b", "c"})
	seq, err := Updates(final, 60, 90, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := treerepair.Compress(seq.Seed, treerepair.Options{})
	if err := update.ApplyAll(g, seq.Ops); err != nil {
		t.Fatal(err)
	}
	got, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, seq.Final.Root) {
		t.Fatal("grammar replay does not converge to the final document")
	}
}

func TestUpdatesInsertDeleteMix(t *testing.T) {
	final := datasets.Corpora()[0].Generate(0.02, 3) // EXI-Weblog small
	seq, err := Updates(final, 200, 90, 7)
	if err != nil {
		t.Fatal(err)
	}
	ins, del := 0, 0
	for _, op := range seq.Ops {
		switch op.Kind {
		case update.Insert:
			ins++
		case update.Delete:
			del++
		default:
			t.Fatalf("unexpected op kind %v", op.Kind)
		}
	}
	if ins+del != 200 {
		t.Fatalf("got %d ops", ins+del)
	}
	if ins < 150 || del > 50 {
		t.Fatalf("mix off: %d inserts / %d deletes (want ≈ 90/10)", ins, del)
	}
	// The seed must be smaller than the final document (mostly inserts).
	if seq.Seed.Root.Size() >= seq.Final.Root.Size() {
		t.Fatalf("seed (%d) should be smaller than final (%d)",
			seq.Seed.Root.Size(), seq.Final.Root.Size())
	}
}

func TestUpdatesDeterministic(t *testing.T) {
	final := randomUnranked(rand.New(rand.NewSource(1)), 80, []string{"a", "b"})
	s1, _ := Updates(final, 30, 90, 42)
	s2, _ := Updates(final, 30, 90, 42)
	if len(s1.Ops) != len(s2.Ops) {
		t.Fatal("not deterministic")
	}
	for i := range s1.Ops {
		if s1.Ops[i].Kind != s2.Ops[i].Kind || s1.Ops[i].Pos != s2.Ops[i].Pos {
			t.Fatalf("op %d differs", i)
		}
	}
	if !xmltree.Equal(s1.Seed.Root, s2.Seed.Root) {
		t.Fatal("seeds differ")
	}
}

func TestRenames(t *testing.T) {
	u := randomUnranked(rand.New(rand.NewSource(2)), 100, []string{"a", "b"})
	doc := u.Binary()
	ops := Renames(doc, 30, 9)
	if len(ops) != 30 {
		t.Fatalf("got %d ops", len(ops))
	}
	seen := map[int64]bool{}
	for _, op := range ops {
		if op.Kind != update.Rename {
			t.Fatal("non-rename op")
		}
		if seen[op.Pos] {
			t.Fatal("duplicate rename position")
		}
		seen[op.Pos] = true
		if doc.Root.PreorderIndex(int(op.Pos)).Label.IsBottom() {
			t.Fatal("rename addresses a ⊥ node")
		}
	}
	// Fresh labels: applying to the grammar must succeed and produce
	// labels not present before.
	g, _ := treerepair.Compress(doc, treerepair.Options{})
	if err := update.ApplyAll(g, ops); err != nil {
		t.Fatal(err)
	}
}

func TestRenamesCappedAtElementCount(t *testing.T) {
	u := xmltree.NewUnranked("r", xmltree.NewUnranked("a"))
	ops := Renames(u.Binary(), 100, 1)
	if len(ops) != 2 {
		t.Fatalf("got %d ops, want 2 (only 2 elements)", len(ops))
	}
}

// TestUpdatesTinyDocument is the regression test for the invertDelete
// bounds: on a degenerate single-element document the generator must
// neither panic (rng.Intn on a non-positive range) nor spin in an
// unbounded retry loop — it either produces a valid replayable sequence
// or fails with an error.
func TestUpdatesTinyDocument(t *testing.T) {
	tiny := &xmltree.Unranked{Label: "root"}
	for seed := int64(0); seed < 20; seed++ {
		seq, err := Updates(tiny, 50, 90, seed)
		if err != nil {
			// Degeneration to an un-seedable document is a legal outcome;
			// panicking is not.
			continue
		}
		got, err := update.ApplyTreeAll(seq.Seed.Syms, seq.Seed.Root.Copy(), seq.Ops)
		if err != nil {
			t.Fatalf("seed %d: replay failed: %v", seed, err)
		}
		if !xmltree.Equal(got, seq.Final.Root) {
			t.Fatalf("seed %d: tiny-document replay diverged", seed)
		}
	}
}

// TestInvertDeleteSingleNode drives invertDelete directly into the case
// that used to panic: a document that is a single node has no insert
// position, so the inversion must return an error.
func TestInvertDeleteSingleNode(t *testing.T) {
	st := xmltree.NewSymbolTable()
	rng := rand.New(rand.NewSource(1))
	if _, _, err := invertDelete(st, xmltree.NewBottom(), rng); err == nil {
		t.Fatal("single-node document must not seed an insert")
	}
}
