package workload

import (
	"math/rand"

	"repro/internal/update"
)

// FleetBatch is one step of a multi-document fleet workload: a batch of
// operations addressed to one document.
type FleetBatch struct {
	Doc int // index into the per-document streams the schedule was built from
	Ops []update.Op
}

// ZipfFleet interleaves per-document op streams into a single fleet
// schedule with Zipf-skewed document popularity: document 0 is the
// hottest, the tail is cold — the access pattern a memory tier must
// serve well (hot documents stay resident, cold documents evict and
// occasionally rehydrate). Each scheduled batch takes the next `batch`
// ops (fewer at a stream's end) from the drawn document's stream; a
// draw landing on an exhausted stream probes linearly to the next
// document with ops left. Every stream is therefore delivered
// completely and in order — replaying the schedule leaves each document
// in exactly the state its own stream produces, which makes
// tiered-vs-unbounded fleet differentials trivial.
//
// skew must be > 1 (the rand.Zipf exponent); batch < 1 is clamped to 1.
// The schedule is deterministic per (streams, batch, skew, seed).
func ZipfFleet(streams [][]update.Op, batch int, skew float64, seed int64) []FleetBatch {
	if len(streams) == 0 {
		return nil
	}
	if batch < 1 {
		batch = 1
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, skew, 1, uint64(len(streams)-1))
	next := make([]int, len(streams)) // per-stream cursor
	remaining := 0
	for _, ops := range streams {
		remaining += len(ops)
	}
	var out []FleetBatch
	for remaining > 0 {
		d := int(zipf.Uint64())
		for next[d] >= len(streams[d]) {
			d = (d + 1) % len(streams)
		}
		ops := streams[d][next[d]:]
		if len(ops) > batch {
			ops = ops[:batch]
		}
		next[d] += len(ops)
		remaining -= len(ops)
		out = append(out, FleetBatch{Doc: d, Ops: ops})
	}
	return out
}
