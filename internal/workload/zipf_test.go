package workload

import (
	"testing"

	"repro/internal/update"
)

func zipfStreams(docs, opsPerDoc int) [][]update.Op {
	streams := make([][]update.Op, docs)
	for d := range streams {
		ops := make([]update.Op, opsPerDoc)
		for i := range ops {
			ops[i] = update.Op{Kind: update.Rename, Pos: int64(i), Label: "x"}
		}
		streams[d] = ops
	}
	return streams
}

// TestZipfFleetComplete is the defining property of the fleet schedule:
// every stream is delivered completely and in order, whatever the skew.
func TestZipfFleetComplete(t *testing.T) {
	const docs, perDoc, batch = 16, 37, 5
	streams := zipfStreams(docs, perDoc)
	sched := ZipfFleet(streams, batch, 1.3, 42)
	next := make([]int, docs)
	total := 0
	for _, b := range sched {
		if b.Doc < 0 || b.Doc >= docs {
			t.Fatalf("batch addresses document %d of %d", b.Doc, docs)
		}
		if len(b.Ops) == 0 || len(b.Ops) > batch {
			t.Fatalf("batch size %d outside (0, %d]", len(b.Ops), batch)
		}
		for i := range b.Ops {
			want := streams[b.Doc][next[b.Doc]+i]
			if b.Ops[i].Pos != want.Pos {
				t.Fatalf("doc %d delivered out of order: op pos %d, want %d",
					b.Doc, b.Ops[i].Pos, want.Pos)
			}
		}
		next[b.Doc] += len(b.Ops)
		total += len(b.Ops)
	}
	for d, n := range next {
		if n != perDoc {
			t.Fatalf("doc %d delivered %d of %d ops", d, n, perDoc)
		}
	}
	if total != docs*perDoc {
		t.Fatalf("delivered %d ops, want %d", total, docs*perDoc)
	}
}

// TestZipfFleetSkew checks the popularity shape: low-index documents
// must receive markedly more batches than the tail.
func TestZipfFleetSkew(t *testing.T) {
	const docs = 32
	streams := zipfStreams(docs, 64)
	sched := ZipfFleet(streams, 4, 1.2, 7)
	counts := make([]int, docs)
	for _, b := range sched {
		counts[b.Doc]++
	}
	head := counts[0] + counts[1] + counts[2] + counts[3]
	tail := counts[docs-4] + counts[docs-3] + counts[docs-2] + counts[docs-1]
	// With every stream the same length the totals converge as streams
	// drain, but the head must still be scheduled first and most often
	// early on: compare first-touch order instead of raw totals too.
	firstTouch := make([]int, docs)
	for i := range firstTouch {
		firstTouch[i] = -1
	}
	for i, b := range sched {
		if firstTouch[b.Doc] == -1 {
			firstTouch[b.Doc] = i
		}
	}
	if firstTouch[0] > firstTouch[docs-1] && head <= tail {
		t.Fatalf("no zipf skew visible: head batches %d, tail batches %d, first-touch head %d tail %d",
			head, tail, firstTouch[0], firstTouch[docs-1])
	}
}

// TestZipfFleetDeterministic pins the schedule: same inputs, same
// schedule — byte for byte. The exact prefix is pinned so an accidental
// change to the generator (or a Go rand behavior change) is caught, not
// silently absorbed into benchmarks.
func TestZipfFleetDeterministic(t *testing.T) {
	streams := zipfStreams(8, 16)
	a := ZipfFleet(streams, 3, 1.4, 11)
	b := ZipfFleet(streams, 3, 1.4, 11)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Doc != b[i].Doc || len(a[i].Ops) != len(b[i].Ops) {
			t.Fatalf("schedules diverge at batch %d", i)
		}
	}
	// Pin the first documents drawn for seed 11. If this fails after an
	// intentional generator change, re-pin AND regenerate BENCH records
	// that used the old schedule.
	wantPrefix := []int{5, 0, 0, 0, 0, 4, 0, 0}
	for i, want := range wantPrefix {
		if a[i].Doc != want {
			t.Fatalf("schedule prefix changed at batch %d: doc %d, want %d (full prefix %v)",
				i, a[i].Doc, want, wantPrefix)
		}
	}
}
